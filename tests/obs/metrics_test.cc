// Metrics core: canonical keys, log2 bucketing, registry sharding,
// deterministic merge semantics, and byte-stable JSON. The suite also
// builds (with inverted expectations where noted) under PPR_OBS_OFF,
// proving the compile-out path keeps the API shape.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace ppr::obs {
namespace {

TEST(CanonicalMetricKeyTest, SortsLabelsAndFormatsBraces) {
  EXPECT_EQ(CanonicalMetricKey("plain", {}), "plain");
  EXPECT_EQ(CanonicalMetricKey("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  // Construction order cannot change the key.
  EXPECT_EQ(CanonicalMetricKey("m", {{"a", "1"}, {"b", "2"}}),
            CanonicalMetricKey("m", {{"b", "2"}, {"a", "1"}}));
}

TEST(HistogramTest, BucketIndexEdges) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // The top bucket absorbs the tail.
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}), 63u);
  // Every bucket's lower bound lands back in that bucket.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketLowerBound(i)), i) << i;
  }
}

TEST(MetricRegistryTest, CountersGaugesHistograms) {
  MetricRegistry registry;
  registry.GetCounter("c")->Add(3);
  registry.GetCounter("c")->Add();
  registry.GetCounter("c", {{"k", "v"}})->Add(10);
  registry.GetGauge("g")->Set(2.5);
  Histogram* h = registry.GetHistogram("h");
  h->Record(0);
  h->Record(5);
  h->Record(9);
  const Snapshot snap = registry.TakeSnapshot();
#if !defined(PPR_OBS_OFF)
  EXPECT_EQ(snap.counters.at("c"), 4u);
  EXPECT_EQ(snap.counters.at("c{k=v}"), 10u);
  EXPECT_EQ(snap.gauges.at("g"), 2.5);
  const HistogramSnapshot& hs = snap.histograms.at("h");
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 14u);
  EXPECT_EQ(hs.min, 0u);
  EXPECT_EQ(hs.max, 9u);
  // 0 -> bucket 0; 5 -> bucket 3 [4,8); 9 -> bucket 4 [8,16); trailing
  // zeros trimmed.
  const std::vector<std::uint64_t> want = {1, 0, 0, 1, 1};
  EXPECT_EQ(hs.buckets, want);
  EXPECT_FALSE(snap.Empty());
#else
  // Compile-out: mutators are no-ops and registries hold nothing.
  EXPECT_TRUE(snap.Empty());
  EXPECT_EQ(registry.GetCounter("c")->value(), 0u);
#endif
}

#if !defined(PPR_OBS_OFF)

TEST(MetricRegistryTest, ShardsMergeAcrossThreads) {
  MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      // Each thread resolves its own cell for the same key.
      Counter* c = registry.GetCounter("shared");
      Histogram* h = registry.GetHistogram("lat");
      for (int i = 0; i < kPerThread; ++i) {
        c->Add();
        h->Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : pool) t.join();
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("lat").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.histograms.at("lat").min, 0u);
  EXPECT_EQ(snap.histograms.at("lat").max,
            static_cast<std::uint64_t>(kPerThread - 1));
}

TEST(SnapshotTest, MergeIsCommutative) {
  MetricRegistry ra;
  ra.GetCounter("c")->Add(1);
  ra.GetCounter("only_a")->Add(7);
  ra.GetGauge("g")->Set(1.0);
  ra.GetHistogram("h")->Record(3);
  MetricRegistry rb;
  rb.GetCounter("c")->Add(2);
  rb.GetGauge("g")->Set(4.0);
  rb.GetHistogram("h")->Record(100);
  rb.GetHistogram("only_b")->Record(1);

  Snapshot ab = ra.TakeSnapshot();
  ab.Merge(rb.TakeSnapshot());
  Snapshot ba = rb.TakeSnapshot();
  ba.Merge(ra.TakeSnapshot());
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.ToJson(), ba.ToJson());
  EXPECT_EQ(ab.counters.at("c"), 3u);
  EXPECT_EQ(ab.counters.at("only_a"), 7u);
  EXPECT_EQ(ab.gauges.at("g"), 4.0);  // gauges merge by max
  EXPECT_EQ(ab.histograms.at("h").count, 2u);
  EXPECT_EQ(ab.histograms.at("h").min, 3u);
  EXPECT_EQ(ab.histograms.at("h").max, 100u);
  EXPECT_EQ(ab.histograms.at("h").sum, 103u);
}

TEST(SnapshotTest, QuantileUsesBucketLowerBounds) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("h");
  // 50 samples in [16,32) and 50 in [1024,2048).
  for (int i = 0; i < 50; ++i) h->Record(20);
  for (int i = 0; i < 50; ++i) h->Record(1500);
  const HistogramSnapshot hs = registry.TakeSnapshot().histograms.at("h");
  EXPECT_EQ(hs.Quantile(0.25), 16u);
  EXPECT_EQ(hs.Quantile(0.99), 1024u);
  EXPECT_EQ(hs.Quantile(0.0), 16u);
}

TEST(SnapshotTest, ToJsonIsSortedAndByteStable) {
  MetricRegistry registry;
  // Register in anti-sorted order; the export must not care.
  registry.GetCounter("z")->Add(26);
  registry.GetCounter("a", {{"x", "1"}})->Add(1);
  registry.GetGauge("mid")->Set(0.5);
  registry.GetHistogram("h")->Record(2);
  const std::string json = registry.TakeSnapshot().ToJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"a{x=1}\":1,\"z\":26},"
            "\"gauges\":{\"mid\":0.5},"
            "\"histograms\":{\"h\":{\"buckets\":[0,0,1],\"count\":1,"
            "\"max\":2,\"min\":2,\"sum\":2}},"
            "\"schema\":1}");
  // Byte-stable across re-snapshots.
  EXPECT_EQ(json, registry.TakeSnapshot().ToJson());
}

TEST(SnapshotTest, EmptySnapshotStillValidJson) {
  EXPECT_EQ(Snapshot{}.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"schema\":1}");
}

#endif  // !PPR_OBS_OFF

// HistogramSnapshot::Record and ValueAtQuantile operate on the plain
// snapshot struct — available (and exercised) even under PPR_OBS_OFF,
// which is what lets the stream sim report percentiles in every build.

TEST(SnapshotTest, DirectRecordMatchesHistogramSemantics) {
  HistogramSnapshot hs;
  hs.Record(0);
  hs.Record(20);
  hs.Record(1500);
  EXPECT_EQ(hs.count, 3u);
  EXPECT_EQ(hs.sum, 1520u);
  EXPECT_EQ(hs.min, 0u);
  EXPECT_EQ(hs.max, 1500u);
  ASSERT_EQ(hs.buckets.size(), Histogram::BucketIndex(1500) + 1);
  EXPECT_EQ(hs.buckets[0], 1u);                            // v == 0
  EXPECT_EQ(hs.buckets[Histogram::BucketIndex(20)], 1u);   // [16, 32)
  EXPECT_EQ(hs.buckets[Histogram::BucketIndex(1500)], 1u); // [1024, 2048)
}

TEST(SnapshotTest, ValueAtQuantileInterpolatesWithinBuckets) {
  HistogramSnapshot hs;
  // 100 samples spread through [1024, 2048): one bucket.
  for (int i = 0; i < 100; ++i) hs.Record(1024 + i * 10);
  // The nearest-rank Quantile snaps every answer to 1024; the
  // interpolated estimator spreads across the bucket instead.
  EXPECT_EQ(hs.Quantile(0.5), 1024u);
  const double p10 = hs.ValueAtQuantile(0.10);
  const double p50 = hs.ValueAtQuantile(0.50);
  const double p95 = hs.ValueAtQuantile(0.95);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p95);
  EXPECT_NEAR(p50, 1536.0, 16.0);  // bucket midpoint
  EXPECT_GE(p10, 1024.0);
  EXPECT_LE(p95, 2048.0);
}

TEST(SnapshotTest, ValueAtQuantileClampsToObservedRange) {
  HistogramSnapshot hs;
  hs.Record(1000);  // bucket [512, 1024), observed min == max == 1000
  EXPECT_EQ(hs.ValueAtQuantile(0.0), 1000.0);
  EXPECT_EQ(hs.ValueAtQuantile(0.5), 1000.0);
  EXPECT_EQ(hs.ValueAtQuantile(1.0), 1000.0);
  // Empty histogram: defined, zero.
  EXPECT_EQ(HistogramSnapshot{}.ValueAtQuantile(0.5), 0.0);
}

TEST(SnapshotTest, ValueAtQuantileCrossesBuckets) {
  HistogramSnapshot hs;
  for (int i = 0; i < 90; ++i) hs.Record(10);    // [8, 16)
  for (int i = 0; i < 10; ++i) hs.Record(4000);  // [2048, 4096)
  EXPECT_LT(hs.ValueAtQuantile(0.5), 16.0);
  EXPECT_GE(hs.ValueAtQuantile(0.95), 2048.0);
}

}  // namespace
}  // namespace ppr::obs
