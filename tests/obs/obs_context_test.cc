// The thread-local ObsContext: null-safe helpers, RAII scoping and
// restoration, and the record_timings gate the sim relies on for
// deterministic snapshots.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <thread>

namespace ppr::obs {
namespace {

TEST(ObsContextTest, HelpersAreNoOpsWithoutContext) {
  // Must not crash or leak state anywhere.
  Count("orphan", 5);
  CountLabeled("orphan", {{"k", "v"}}, 2);
  Observe("orphan_h", 1);
  ObserveLabeled("orphan_h", {{"k", "v"}}, 1);
  ObserveDuration("orphan_ns", 1);
  TraceInstant("orphan", "test");
  TraceComplete("orphan", "test", 1, 1);
  EXPECT_EQ(CurrentMetrics(), nullptr);
  EXPECT_EQ(CurrentTracer(), nullptr);
}

TEST(ObsContextTest, ScopedContextRoutesAndRestores) {
  MetricRegistry outer_registry;
  MetricRegistry inner_registry;
  Tracer tracer;
  {
    ScopedObsContext outer(&outer_registry, &tracer);
    Count("c");
    {
      ScopedObsContext inner(&inner_registry);
      Count("c", 10);
      TraceInstant("inner", "test");  // inner scope has no tracer
    }
    Count("c");  // outer again
    TraceInstant("outer", "test");
  }
  Count("c", 100);  // no context: dropped
#if !defined(PPR_OBS_OFF)
  EXPECT_EQ(outer_registry.TakeSnapshot().counters.at("c"), 2u);
  EXPECT_EQ(inner_registry.TakeSnapshot().counters.at("c"), 10u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "outer");
#else
  EXPECT_TRUE(outer_registry.TakeSnapshot().Empty());
  EXPECT_TRUE(inner_registry.TakeSnapshot().Empty());
#endif
  EXPECT_EQ(CurrentMetrics(), nullptr);
}

TEST(ObsContextTest, ObserveLabeledRoutesToLabeledHistogram) {
  MetricRegistry registry;
  {
    ScopedObsContext scope(&registry);
    ObserveLabeled("stream_latency", {{"controller", "deadline"}}, 100);
    ObserveLabeled("stream_latency", {{"controller", "deadline"}}, 200);
    ObserveLabeled("stream_latency", {{"controller", "fixed-rate"}}, 300);
  }
#if !defined(PPR_OBS_OFF)
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("stream_latency{controller=deadline}").count,
            2u);
  EXPECT_EQ(snap.histograms.at("stream_latency{controller=fixed-rate}").count,
            1u);
#endif
}

TEST(ObsContextTest, RecordTimingsGateSuppressesDurations) {
  MetricRegistry registry;
  {
    ScopedObsContext scope(&registry, nullptr, /*record_timings=*/false);
    ObserveDuration("op_ns", 123);
    Observe("value", 7);  // plain histograms are not gated
  }
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.count("op_ns"), 0u);
#if !defined(PPR_OBS_OFF)
  EXPECT_EQ(snap.histograms.at("value").count, 1u);
#endif
}

TEST(ObsContextTest, ContextIsPerThread) {
  MetricRegistry registry;
  ScopedObsContext scope(&registry);
  std::thread other([] {
    // A fresh thread starts with no context, whatever this one set.
    EXPECT_EQ(CurrentMetrics(), nullptr);
    Count("other_thread");  // dropped
  });
  other.join();
  Count("main_thread");
#if !defined(PPR_OBS_OFF)
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.count("other_thread"), 0u);
  EXPECT_EQ(snap.counters.at("main_thread"), 1u);
#endif
}

}  // namespace
}  // namespace ppr::obs
