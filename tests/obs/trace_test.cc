// Tracer: ring eviction, exporter formats (JSONL and Chrome trace,
// sorted keys), and the ScopedTimer bridge into latency histograms.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ppr::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

#if !defined(PPR_OBS_OFF)

TEST(TracerTest, RecordsInstantAndCompleteEvents) {
  Tracer tracer;
  tracer.Instant("hello", "test", {{"n", 7}});
  tracer.Complete("work", "test", /*ts_ns=*/100, /*dur_ns=*/50);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "hello");
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_GT(events[0].ts_ns, 0u);  // defaulted to now
  EXPECT_GT(events[0].tid, 0u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "n");
  EXPECT_EQ(events[0].args[0].second, 7);
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].ts_ns, 100u);
  EXPECT_EQ(events[1].dur_ns, 50u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, RingEvictsOldestAndCountsDropped) {
  Tracer tracer(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.Instant("e" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.Events();
  EXPECT_EQ(events.front().name, "e6");  // oldest survivor
  EXPECT_EQ(events.back().name, "e9");
}

TEST(TracerTest, JsonlHasSortedKeysPerLine) {
  Tracer tracer;
  tracer.Complete("work", "cat\"egory", /*ts_ns=*/2000, /*dur_ns=*/1500,
                  {{"z", 1}, {"a", 2}});
  const std::string path = TempPath("trace_test.jsonl");
  ASSERT_TRUE(tracer.WriteJsonl(path));
  const std::string line = ReadFile(path);
  EXPECT_EQ(line,
            "{\"args\":{\"a\":2,\"z\":1},\"cat\":\"cat\\\"egory\","
            "\"dur\":1500,\"name\":\"work\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":1,\"ts\":2000}\n");
}

TEST(TracerTest, ChromeTraceWrapsEventsInMicroseconds) {
  Tracer tracer;
  tracer.Complete("work", "test", /*ts_ns=*/2000, /*dur_ns=*/1500);
  tracer.Instant("mark", "test");
  const std::string path = TempPath("trace_test.json");
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  const std::string doc = ReadFile(path);
  EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":2.000"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_EQ(doc.substr(doc.size() - 4), "\n]}\n");
}

TEST(ScopedTimerTest, FeedsHistogramAndTracer) {
  MetricRegistry registry;
  Tracer tracer;
  {
    ScopedTimer timer(registry.GetHistogram("op_ns"), &tracer, "op", "test",
                      {{"k", 1}});
    // Some measurable work.
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  const Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("op_ns").count, 1u);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[0].name, "op");
  EXPECT_EQ(events[0].dur_ns, snap.histograms.at("op_ns").sum);
}

#else  // PPR_OBS_OFF

TEST(TracerTest, CompiledOutTracerStaysEmptyButExportsValidDocs) {
  Tracer tracer;
  tracer.Instant("hello", "test");
  tracer.Complete("work", "test", 100, 50);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.Events().empty());
  const std::string jsonl = TempPath("trace_off.jsonl");
  const std::string chrome = TempPath("trace_off.json");
  ASSERT_TRUE(tracer.WriteJsonl(jsonl));
  ASSERT_TRUE(tracer.WriteChromeTrace(chrome));
  EXPECT_EQ(ReadFile(jsonl), "");
  EXPECT_EQ(ReadFile(chrome),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

#endif  // PPR_OBS_OFF

}  // namespace
}  // namespace ppr::obs
