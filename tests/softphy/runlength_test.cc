#include "softphy/runlength.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::softphy {
namespace {

using SRun = ::ppr::softphy::Run;

TEST(ComputeRunsTest, EmptyInput) {
  EXPECT_TRUE(ComputeRuns({}).empty());
}

TEST(ComputeRunsTest, SingleRun) {
  const auto runs = ComputeRuns({true, true, true});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (SRun{true, 3}));
}

TEST(ComputeRunsTest, Alternating) {
  const auto runs = ComputeRuns({true, false, true, false});
  ASSERT_EQ(runs.size(), 4u);
  for (const auto& r : runs) EXPECT_EQ(r.length, 1u);
}

TEST(ComputeRunsTest, MixedLengths) {
  const auto runs =
      ComputeRuns({false, false, true, true, true, false, true});
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0], (SRun{false, 2}));
  EXPECT_EQ(runs[1], (SRun{true, 3}));
  EXPECT_EQ(runs[2], (SRun{false, 1}));
  EXPECT_EQ(runs[3], (SRun{true, 1}));
}

TEST(RunLengthFormTest, AllGoodPacket) {
  const auto form = ToRunLengthForm({true, true, true, true});
  EXPECT_TRUE(form.AllGood());
  EXPECT_EQ(form.leading_good, 4u);
  EXPECT_EQ(form.NumBadRuns(), 0u);
  EXPECT_EQ(form.TotalCodewords(), 4u);
}

TEST(RunLengthFormTest, AllBadPacket) {
  const auto form = ToRunLengthForm({false, false, false});
  EXPECT_EQ(form.leading_good, 0u);
  ASSERT_EQ(form.NumBadRuns(), 1u);
  EXPECT_EQ(form.bad[0], 3u);
  EXPECT_EQ(form.good_after[0], 0u);
  EXPECT_EQ(form.BadRunOffset(0), 0u);
}

TEST(RunLengthFormTest, PaperFormAlternation) {
  // g g b b g b -> leading 2, bad runs {2,1}, good-after {1,0}.
  const auto form =
      ToRunLengthForm({true, true, false, false, true, false});
  EXPECT_EQ(form.leading_good, 2u);
  ASSERT_EQ(form.NumBadRuns(), 2u);
  EXPECT_EQ(form.bad[0], 2u);
  EXPECT_EQ(form.good_after[0], 1u);
  EXPECT_EQ(form.bad[1], 1u);
  EXPECT_EQ(form.good_after[1], 0u);
  EXPECT_EQ(form.BadRunOffset(0), 2u);
  EXPECT_EQ(form.BadRunOffset(1), 5u);
  EXPECT_EQ(form.TotalCodewords(), 6u);
}

TEST(RunLengthFormTest, OffsetsIndexOriginalLabels) {
  Rng rng(121);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<bool> labels;
    const std::size_t n = 1 + rng.UniformInt(200);
    for (std::size_t i = 0; i < n; ++i) labels.push_back(rng.Bernoulli(0.7));
    const auto form = ToRunLengthForm(labels);

    EXPECT_EQ(form.TotalCodewords(), labels.size());
    for (std::size_t i = 0; i < form.NumBadRuns(); ++i) {
      const std::size_t off = form.BadRunOffset(i);
      // Every codeword in the bad run is labeled bad.
      for (std::size_t k = 0; k < form.bad[i]; ++k) {
        EXPECT_FALSE(labels[off + k]);
      }
      // The codeword before the run (if any) is good.
      if (off > 0) {
        EXPECT_TRUE(labels[off - 1]);
      }
      // The codeword after the run (if any) is good.
      const std::size_t end = off + form.bad[i];
      if (end < labels.size()) {
        EXPECT_TRUE(labels[end]);
      }
    }
  }
}

TEST(RunLengthFormTest, RunsAndFormAgreeOnTotals) {
  Rng rng(122);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> labels;
    const std::size_t n = 1 + rng.UniformInt(300);
    for (std::size_t i = 0; i < n; ++i) labels.push_back(rng.Bernoulli(0.5));
    const auto runs = ComputeRuns(labels);
    std::size_t total = 0;
    for (const auto& r : runs) total += r.length;
    EXPECT_EQ(total, n);
    EXPECT_EQ(ToRunLengthForm(labels).TotalCodewords(), n);
  }
}

}  // namespace
}  // namespace ppr::softphy
