#include "softphy/classifier.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/channel.h"

namespace ppr::softphy {
namespace {

phy::DecodedSymbol Sym(double hint) {
  phy::DecodedSymbol d;
  d.hint = hint;
  d.hamming_distance = static_cast<int>(hint);
  return d;
}

TEST(ThresholdClassifierTest, DefaultEtaIsSix) {
  const ThresholdClassifier c;
  EXPECT_DOUBLE_EQ(c.eta(), 6.0);
}

TEST(ThresholdClassifierTest, BoundaryInclusive) {
  const ThresholdClassifier c(6.0);
  EXPECT_TRUE(c.IsGood(Sym(6.0)));
  EXPECT_FALSE(c.IsGood(Sym(6.5)));
  EXPECT_TRUE(c.IsGood(Sym(0.0)));
}

TEST(ThresholdClassifierTest, LabelsVector) {
  const ThresholdClassifier c(2.0);
  const std::vector<phy::DecodedSymbol> symbols{Sym(0), Sym(3), Sym(2),
                                                Sym(9)};
  const auto labels = c.Label(symbols);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_TRUE(labels[0]);
  EXPECT_FALSE(labels[1]);
  EXPECT_TRUE(labels[2]);
  EXPECT_FALSE(labels[3]);
}

TEST(ThresholdClassifierTest, MonotoneInEta) {
  // Raising eta can only turn "bad" labels into "good" ones.
  Rng rng(111);
  std::vector<phy::DecodedSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(Sym(static_cast<double>(rng.UniformInt(33))));
  }
  for (double eta = 0.0; eta < 32.0; eta += 1.0) {
    const auto lo = ThresholdClassifier(eta).Label(symbols);
    const auto hi = ThresholdClassifier(eta + 1.0).Label(symbols);
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      EXPECT_TRUE(!lo[i] || hi[i]);  // lo good implies hi good
    }
  }
}

TEST(AdaptiveThresholdTest, StartsAtInitialEta) {
  AdaptiveThresholdClassifier::Config config;
  config.initial_eta = 4.0;
  const AdaptiveThresholdClassifier c(config);
  EXPECT_DOUBLE_EQ(c.eta(), 4.0);
}

TEST(AdaptiveThresholdTest, RaisesEtaWhenFalseAlarmsExceedTarget) {
  AdaptiveThresholdClassifier::Config config;
  config.initial_eta = 2.0;
  config.target_false_alarm = 0.01;
  config.batch = 100;
  AdaptiveThresholdClassifier c(config);
  // Feed a batch where 20% of correct codewords were labeled bad.
  for (int i = 0; i < 100; ++i) {
    c.Observe(/*labeled_good=*/i % 5 != 0, /*actually_correct=*/true);
  }
  EXPECT_GT(c.eta(), 2.0);
}

TEST(AdaptiveThresholdTest, LowersEtaWhenFalseAlarmsBelowTarget) {
  AdaptiveThresholdClassifier::Config config;
  config.initial_eta = 10.0;
  config.target_false_alarm = 0.05;
  config.batch = 100;
  AdaptiveThresholdClassifier c(config);
  for (int i = 0; i < 100; ++i) {
    c.Observe(/*labeled_good=*/true, /*actually_correct=*/true);
  }
  EXPECT_LT(c.eta(), 10.0);
}

TEST(AdaptiveThresholdTest, RespectsBounds) {
  AdaptiveThresholdClassifier::Config config;
  config.initial_eta = 0.5;
  config.min_eta = 0.0;
  config.max_eta = 1.0;
  config.step = 10.0;  // oversized step must clamp
  config.batch = 10;
  AdaptiveThresholdClassifier c(config);
  for (int i = 0; i < 10; ++i) c.Observe(true, true);
  EXPECT_GE(c.eta(), 0.0);
  for (int i = 0; i < 10; ++i) c.Observe(false, true);
  EXPECT_LE(c.eta(), 1.0);
}

TEST(AdaptiveThresholdTest, ConvergesOnRealisticHintDistribution) {
  // Drive the adaptive threshold with hints drawn from the real
  // despreader at a fixed chip error rate; eta should settle somewhere
  // that keeps the false alarm rate near target without the caller ever
  // interpreting hint semantics (section 3.3's layering argument).
  const phy::ChipCodebook cb;
  Rng rng(112);
  AdaptiveThresholdClassifier::Config config;
  config.initial_eta = 16.0;  // deliberately far off
  config.target_false_alarm = 0.01;
  config.batch = 512;
  AdaptiveThresholdClassifier c(config);

  for (int i = 0; i < 20000; ++i) {
    const auto sym = static_cast<std::uint8_t>(rng.UniformInt(16));
    const auto received = static_cast<phy::ChipWord>(
        cb.Codeword(sym) ^ phy::SampleChipErrorMask(rng, 0.04));
    int distance = 0;
    const int decoded = cb.DecodeHard(received, &distance);
    phy::DecodedSymbol d;
    d.hint = static_cast<double>(distance);
    const bool labeled_good = c.IsGood(d);
    c.Observe(labeled_good, decoded == sym);
  }
  // At 4% chip error rate nearly all codewords decode correctly with
  // distance <= 4; eta must have come down from 16 toward the bulk of
  // the correct-hint mass.
  EXPECT_LT(c.eta(), 10.0);
  EXPECT_GT(c.eta(), 0.5);
}

}  // namespace
}  // namespace ppr::softphy
