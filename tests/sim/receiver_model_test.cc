#include "sim/receiver_model.h"

#include <gtest/gtest.h>

#include <map>
#include "sim/topology.h"

namespace ppr::sim {
namespace {

// Two-node world: one sender at the origin, one receiver `d` meters
// away, no shadowing so SNR is exact.
struct TwoNodeWorld {
  std::vector<Point> positions;
  MediumConfig mconfig;

  explicit TwoNodeWorld(double d) {
    positions = {{0.0, 0.0}, {d, 0.0}};
    mconfig.shadowing_sigma_db = 0.0;
  }
};

ReceiverModelConfig SmallFrames() {
  ReceiverModelConfig config;
  config.payload_octets = 100;
  config.seed = 7;
  // These tests exercise the SINR-driven decode logic in isolation;
  // the stochastic link impairments are covered by their own tests.
  config.impairment_rate = 0.0;
  config.good_chip_floor = 0.0;
  config.fading_enabled = false;
  return config;
}

Transmission At(double start_s, std::size_t sender, std::uint16_t seq,
                double frame_chips) {
  Transmission t;
  t.sender = sender;
  t.seq = seq;
  t.start_s = start_s;
  t.duration_s = frame_chips * kSecondsPerChip;
  return t;
}

TEST(ReceiverModelTest, StrongLinkDecodesCleanly) {
  const TwoNodeWorld world(2.0);  // very strong link
  const RadioMedium medium(world.positions, world.mconfig);
  const ReceiverModel model(medium, SmallFrames());
  const double chips = static_cast<double>(model.Layout().TotalChips());

  std::vector<Transmission> schedule{At(0.0, 0, 0, chips)};
  int receptions = 0;
  model.ProcessReceiver(1, schedule, [&](const ReceptionRecord& r) {
    ++receptions;
    EXPECT_TRUE(r.preamble_sync);
    EXPECT_TRUE(r.postamble_sync);
    EXPECT_TRUE(r.header_ok);
    EXPECT_TRUE(r.trailer_ok);
    ASSERT_EQ(r.trace.size(), model.Layout().TotalSymbols());
    for (const auto& cw : r.trace) {
      EXPECT_TRUE(cw.correct);
      EXPECT_EQ(cw.distance, 0);
    }
  });
  EXPECT_EQ(receptions, 1);
}

TEST(ReceiverModelTest, InaudibleLinkSkipped) {
  const TwoNodeWorld world(500.0);  // way below the noise floor
  const RadioMedium medium(world.positions, world.mconfig);
  const ReceiverModel model(medium, SmallFrames());
  const double chips = static_cast<double>(model.Layout().TotalChips());
  std::vector<Transmission> schedule{At(0.0, 0, 0, chips)};
  int receptions = 0;
  model.ProcessReceiver(1, schedule,
                        [&](const ReceptionRecord&) { ++receptions; });
  EXPECT_EQ(receptions, 0);
}

TEST(ReceiverModelTest, MarginalLinkShowsElevatedDistances) {
  // Pick a distance where SNR sits near the decoding edge: hints must
  // spread upward and some codewords go wrong (the Figure 3 regime).
  const TwoNodeWorld world(55.0);
  const RadioMedium medium(world.positions, world.mconfig);
  const ReceiverModel model(medium, SmallFrames());
  // Sanity: the link is audible but weak.
  ASSERT_GT(medium.LinkSnrDb(0, 1), -2.0);
  ASSERT_LT(medium.LinkSnrDb(0, 1), 6.0);

  const double chips = static_cast<double>(model.Layout().TotalChips());
  std::vector<Transmission> schedule;
  for (std::uint16_t i = 0; i < 20; ++i) {
    schedule.push_back(
        At(i * 2.0 * chips * kSecondsPerChip, 0, i, chips));
  }
  std::size_t nonzero_hints = 0, total = 0, wrong = 0;
  model.ProcessReceiver(1, schedule, [&](const ReceptionRecord& r) {
    for (const auto& cw : r.trace) {
      ++total;
      if (cw.distance > 0) ++nonzero_hints;
      if (!cw.correct) ++wrong;
    }
  });
  ASSERT_GT(total, 0u);
  EXPECT_GT(nonzero_hints, total / 20);
}

TEST(ReceiverModelTest, CollisionCorruptsOverlapOnly) {
  // Sender 0 five meters out, sender 1 right next to the receiver (the
  // near-far situation that makes collisions fatal). The second
  // transmission overlaps the tail of the first: overlapped codewords
  // see strongly negative SIR and break; the head stays clean.
  std::vector<Point> positions{{0, 5}, {4.2, 5}, {5, 5}};
  MediumConfig mconfig;
  mconfig.shadowing_sigma_db = 0.0;
  const RadioMedium medium(positions, mconfig);
  const ReceiverModel model(medium, SmallFrames());
  const auto total_chips = static_cast<double>(model.Layout().TotalChips());
  const double frame_s = total_chips * kSecondsPerChip;

  std::vector<Transmission> schedule{
      At(0.0, 0, 0, total_chips),
      At(0.6 * frame_s, 1, 0, total_chips),
  };
  bool saw_first = false;
  model.ProcessReceiver(2, schedule, [&](const ReceptionRecord& r) {
    if (r.sender != 0) return;
    saw_first = true;
    EXPECT_TRUE(r.preamble_sync);
    const std::size_t n = r.trace.size();
    const auto overlap_start = static_cast<std::size_t>(0.6 * n);
    std::size_t head_wrong = 0, tail_wrong = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!r.trace[i].correct) {
        if (i < overlap_start) {
          ++head_wrong;
        } else {
          ++tail_wrong;
        }
      }
    }
    EXPECT_EQ(head_wrong, 0u);
    EXPECT_GT(tail_wrong, (n - overlap_start) / 4);
  });
  EXPECT_TRUE(saw_first);
}

TEST(ReceiverModelTest, LockedReceiverMissesSecondPreamble) {
  // Both packets fully overlap in time with the second starting inside
  // the first: the receiver preamble-locks the first and cannot
  // preamble-sync the second ("undesirable capture" unless postambles
  // are used).
  std::vector<Point> positions{{4, 5}, {6, 5}, {5, 5}};
  MediumConfig mconfig;
  mconfig.shadowing_sigma_db = 0.0;
  const RadioMedium medium(positions, mconfig);
  const ReceiverModel model(medium, SmallFrames());
  const auto total_chips = static_cast<double>(model.Layout().TotalChips());
  const double frame_s = total_chips * kSecondsPerChip;

  std::vector<Transmission> schedule{
      At(0.0, 0, 0, total_chips),
      At(0.3 * frame_s, 1, 0, total_chips),
  };
  bool second_seen = false;
  model.ProcessReceiver(2, schedule, [&](const ReceptionRecord& r) {
    if (r.sender != 1) return;
    second_seen = true;
    EXPECT_FALSE(r.preamble_sync);
    // Its tail extends past the first packet's end, so the postamble is
    // clean and recovers it.
    EXPECT_TRUE(r.postamble_sync);
    EXPECT_TRUE(r.trailer_ok);
  });
  EXPECT_TRUE(second_seen);
}

TEST(ReceiverModelTest, TruePatternIsDeterministicPerFrame) {
  const TwoNodeWorld world(2.0);
  const RadioMedium medium(world.positions, world.mconfig);
  const ReceiverModel model(medium, SmallFrames());
  const double chips = static_cast<double>(model.Layout().TotalChips());
  std::vector<Transmission> schedule{At(0.0, 0, 5, chips)};

  std::vector<std::uint8_t> first_run;
  model.ProcessReceiver(1, schedule, [&](const ReceptionRecord& r) {
    for (const auto& cw : r.trace) first_run.push_back(cw.true_symbol);
  });
  std::vector<std::uint8_t> second_run;
  model.ProcessReceiver(1, schedule, [&](const ReceptionRecord& r) {
    for (const auto& cw : r.trace) second_run.push_back(cw.true_symbol);
  });
  EXPECT_EQ(first_run, second_run);
  ASSERT_FALSE(first_run.empty());

  // Sync prefix symbols are the preamble pattern (zero symbols).
  EXPECT_EQ(first_run[0], 0u);
  EXPECT_EQ(first_run[7], 0u);
  // SFD 0xA7: low nibble 7 first.
  EXPECT_EQ(first_run[8], 0x7u);
  EXPECT_EQ(first_run[9], 0xAu);
}

TEST(ReceiverModelTest, ImpairmentBurstRateVariesPerLink) {
  // Different links draw burst-entry rates from a wide lognormal, so
  // error counts on otherwise-identical strong links differ heavily.
  std::vector<Point> positions{{0, 0}, {2, 0}, {4, 0}, {2, 2}};
  MediumConfig mconfig;
  mconfig.shadowing_sigma_db = 0.0;
  const RadioMedium medium(positions, mconfig);
  ReceiverModelConfig config;
  config.payload_octets = 200;
  config.seed = 7;
  config.fading_enabled = false;  // isolate the impairment process
  config.impairment_rate = 2e-3;  // make bursts common enough to count
  const ReceiverModel model(medium, config);
  const double chips = static_cast<double>(model.Layout().TotalChips());

  // Senders 0..2 each transmit 40 frames; receiver is node 3.
  std::vector<Transmission> schedule;
  for (std::uint16_t f = 0; f < 40; ++f) {
    for (std::uint16_t i = 0; i < 3; ++i) {
      schedule.push_back(At((f * 3.0 + i) * 1.5 * chips * kSecondsPerChip, i,
                            f, chips));
    }
  }
  std::map<std::size_t, std::size_t> wrong;
  model.ProcessReceiver(3, schedule, [&](const ReceptionRecord& r) {
    for (const auto& cw : r.trace) {
      if (!cw.correct) ++wrong[r.sender];
    }
  });
  ASSERT_EQ(wrong.size(), 3u);
  std::size_t lo = SIZE_MAX, hi = 0;
  for (const auto& [sender, n] : wrong) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_GT(hi, 2 * std::max<std::size_t>(lo, 1));
}

TEST(ReceiverModelTest, ImpairmentBurstsAreContiguous) {
  // In-burst codewords cluster: the error process is bursty, not iid.
  const TwoNodeWorld world(2.0);
  const RadioMedium medium(world.positions, world.mconfig);
  ReceiverModelConfig config;
  config.payload_octets = 1500;
  config.seed = 9;
  config.fading_enabled = false;
  config.impairment_rate = 3e-3;
  config.impairment_spread_sigma = 0.0;  // same rate for the one link
  config.good_chip_floor = 0.0;
  const ReceiverModel model(medium, config);
  const double chips = static_cast<double>(model.Layout().TotalChips());
  std::vector<Transmission> schedule;
  for (std::uint16_t i = 0; i < 10; ++i) {
    schedule.push_back(At(i * 1.5 * chips * kSecondsPerChip, 0, i, chips));
  }
  std::size_t wrong = 0, wrong_adjacent = 0, total = 0;
  model.ProcessReceiver(1, schedule, [&](const ReceptionRecord& r) {
    for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
      ++total;
      if (!r.trace[i].correct) {
        ++wrong;
        if (!r.trace[i + 1].correct) ++wrong_adjacent;
      }
    }
  });
  ASSERT_GT(wrong, 30u);
  const double marginal = static_cast<double>(wrong) / total;
  const double conditional =
      static_cast<double>(wrong_adjacent) / static_cast<double>(wrong);
  EXPECT_GT(conditional, 5.0 * marginal);
}

TEST(ReceiverModelTest, FadingCreatesBurstyErrorsOnMarginalLink) {
  // Block fading must produce contiguous stretches of elevated hints
  // rather than uniformly sprinkled errors.
  const TwoNodeWorld world(40.0);
  const RadioMedium medium(world.positions, world.mconfig);
  ReceiverModelConfig config;
  config.payload_octets = 1500;  // ~49 ms frame, several fade segments
  config.seed = 7;
  config.impairment_rate = 0.0;
  config.good_chip_floor = 0.0;
  config.fading_enabled = true;
  config.ricean_k = 0.5;  // deep fades
  const ReceiverModel model(medium, config);
  const double chips = static_cast<double>(model.Layout().TotalChips());
  std::vector<Transmission> schedule;
  for (std::uint16_t i = 0; i < 10; ++i) {
    schedule.push_back(At(i * 2.0 * chips * kSecondsPerChip, 0, i, chips));
  }
  std::size_t wrong = 0, wrong_adjacent = 0, total = 0;
  model.ProcessReceiver(1, schedule, [&](const ReceptionRecord& r) {
    for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
      ++total;
      if (!r.trace[i].correct) {
        ++wrong;
        if (!r.trace[i + 1].correct) ++wrong_adjacent;
      }
    }
  });
  ASSERT_GT(wrong, 50u);
  // Burstiness: the probability that the codeword after a wrong one is
  // also wrong must far exceed the marginal error rate.
  const double marginal = static_cast<double>(wrong) / total;
  const double conditional =
      static_cast<double>(wrong_adjacent) / static_cast<double>(wrong);
  EXPECT_GT(conditional, 3.0 * marginal);
}

TEST(ReceiverModelTest, PayloadRangesConsistentWithLayout) {
  const TwoNodeWorld world(2.0);
  const RadioMedium medium(world.positions, world.mconfig);
  const ReceiverModel model(medium, SmallFrames());
  EXPECT_EQ(model.PayloadCwCount(), 200u);
  EXPECT_EQ(model.PayloadCwOffset(),
            2 * (frame::kSyncPrefixOctets + frame::kHeaderOctets));
  EXPECT_EQ(model.BodyCwCount(), 2 * model.Layout().BodyOctets());
}

}  // namespace
}  // namespace ppr::sim
