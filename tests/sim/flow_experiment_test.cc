#include "sim/flow_experiment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace ppr::sim {
namespace {

FlowExperimentConfig SmallConfig(std::size_t threads) {
  FlowExperimentConfig config;
  config.engine.n_source = 16;
  config.engine.symbol_bytes = 32;
  config.engine.max_deficit = 3;
  config.engine.record_loss = 0.2;
  config.flows = 400;
  config.num_shards = 8;
  config.num_threads = threads;
  config.seed = 21;
  return config;
}

bool TotalsEqual(const engine::EngineStats& a, const engine::EngineStats& b) {
  return a.flows_spawned == b.flows_spawned &&
         a.flows_completed == b.flows_completed &&
         a.flows_failed == b.flows_failed && a.rounds == b.rounds &&
         a.repairs_sent == b.repairs_sent &&
         a.repairs_delivered == b.repairs_delivered &&
         a.batch_calls == b.batch_calls && a.batch_bytes == b.batch_bytes;
}

TEST(FlowExperimentTest, RunsEveryFlowExactlyOnce) {
  const FlowExperimentResult result = RunFlowEngineExperiment(SmallConfig(2));
  EXPECT_EQ(result.shards, 8u);
  EXPECT_EQ(result.totals.flows_spawned, 400u);
  EXPECT_EQ(result.totals.flows_completed + result.totals.flows_failed, 400u);
#if !defined(PPR_OBS_OFF)
  EXPECT_FALSE(result.metrics.Empty());
#endif
}

// The determinism contract: shards — not threads — are the unit of
// execution, so the merged totals AND the merged metric snapshot are
// bit-identical at any thread count.
TEST(FlowExperimentTest, ResultsAreThreadCountInvariant) {
  const FlowExperimentResult serial = RunFlowEngineExperiment(SmallConfig(1));
  const FlowExperimentResult parallel =
      RunFlowEngineExperiment(SmallConfig(4));
  EXPECT_TRUE(TotalsEqual(serial.totals, parallel.totals));
  EXPECT_EQ(serial.metrics.ToJson(), parallel.metrics.ToJson());
}

TEST(FlowExperimentTest, SeedChangesTheTrajectory) {
  FlowExperimentConfig other = SmallConfig(2);
  other.seed = 22;
  const FlowExperimentResult a = RunFlowEngineExperiment(SmallConfig(2));
  const FlowExperimentResult b = RunFlowEngineExperiment(other);
  EXPECT_FALSE(TotalsEqual(a.totals, b.totals));
}

TEST(FlowExperimentTest, RejectsZeroShards) {
  FlowExperimentConfig config = SmallConfig(1);
  config.num_shards = 0;
  EXPECT_THROW(RunFlowEngineExperiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace ppr::sim
