// Streaming recovery sweep: thread-count determinism of
// RunStreamRecoveryExperiment (points and merged metrics identical at
// any worker count), cell-level channel pairing (a cell's realization
// does not depend on which other cells the sweep includes), and the
// deadline-vs-ack-deficit acceptance point the stream_latency_bench
// gate pins.
#include <gtest/gtest.h>

#include <cstddef>

#include "sim/stream_experiment.h"
#include "stream/redundancy.h"

namespace ppr::sim {
namespace {

using stream::ControllerKind;

StreamSweepConfig SmallConfig() {
  StreamSweepConfig config;
  config.loss_rates = {0.1, 0.2};
  config.window_sizes = {16};
  config.session.total_packets = 300;
  config.seed = 99;
  return config;
}

void ExpectSamePoints(const StreamExperimentResult& a,
                      const StreamExperimentResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const auto& pa = a.points[i];
    const auto& pb = b.points[i];
    EXPECT_EQ(pa.loss_rate, pb.loss_rate);
    EXPECT_EQ(pa.window_size, pb.window_size);
    EXPECT_EQ(pa.controller, pb.controller);
    EXPECT_EQ(pa.p50_latency_us, pb.p50_latency_us);
    EXPECT_EQ(pa.p95_latency_us, pb.p95_latency_us);
    EXPECT_EQ(pa.p99_latency_us, pb.p99_latency_us);
    EXPECT_EQ(pa.goodput_pps, pb.goodput_pps);
    EXPECT_EQ(pa.repair_overhead, pb.repair_overhead);
    EXPECT_EQ(pa.stats.repair_sent, pb.stats.repair_sent);
    EXPECT_EQ(pa.stats.source_sent, pb.stats.source_sent);
  }
}

TEST(StreamExperimentTest, DeterministicAcrossThreadCounts) {
  auto config = SmallConfig();
  config.num_threads = 1;
  const auto serial = RunStreamRecoveryExperiment(config);
  config.num_threads = 4;
  const auto parallel = RunStreamRecoveryExperiment(config);
  ExpectSamePoints(serial, parallel);
  // The merged metric registries are rebuilt in grid order, so they
  // must match byte for byte too.
  EXPECT_EQ(serial.metrics.ToJson(), parallel.metrics.ToJson());
}

TEST(StreamExperimentTest, CellRealizationIndependentOfSweepComposition) {
  // The (0.2, 16) cell must produce identical results whether or not
  // the sweep also includes other loss rates: cell channels are seeded
  // from (sweep seed, loss, window), not enumeration order.
  auto wide = SmallConfig();
  const auto wide_result = RunStreamRecoveryExperiment(wide);
  auto narrow = SmallConfig();
  narrow.loss_rates = {0.2};
  const auto narrow_result = RunStreamRecoveryExperiment(narrow);
  for (const auto kind :
       {ControllerKind::kFixedRate, ControllerKind::kAckDeficit,
        ControllerKind::kDeadline}) {
    const auto* a = wide_result.Find(0.2, 16, kind);
    const auto* b = narrow_result.Find(0.2, 16, kind);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->p95_latency_us, b->p95_latency_us);
    EXPECT_EQ(a->stats.repair_sent, b->stats.repair_sent);
  }
}

TEST(StreamExperimentTest, FindReturnsNullForMissingPoint) {
  const auto result = RunStreamRecoveryExperiment(SmallConfig());
  EXPECT_EQ(result.Find(0.5, 16, ControllerKind::kDeadline), nullptr);
  EXPECT_NE(result.Find(0.1, 16, ControllerKind::kDeadline), nullptr);
}

// The claim stream_latency_bench gates on, pinned here so a controller
// regression fails in unit tests, not just in the bench leg: on a
// bursty lossy link with sparse feedback and a shallow window, the
// deadline controller's protect path substitutes early repairs for the
// reactive controller's feedback-lagged ones — strictly lower p95
// recovery latency at equal-or-lower repair overhead.
TEST(StreamExperimentTest, DeadlineBeatsAckDeficitAtTheGatePoint) {
  StreamSweepConfig config;
  config.loss_rates = {0.15};
  config.window_sizes = {16};
  config.controllers = {ControllerKind::kAckDeficit,
                        ControllerKind::kDeadline};
  config.session.feedback_interval_us = 16'000;
  config.session.total_packets = 2'000;
  config.seed = 20070827;
  const auto result = RunStreamRecoveryExperiment(config);
  const auto* deadline = result.Find(0.15, 16, ControllerKind::kDeadline);
  const auto* deficit = result.Find(0.15, 16, ControllerKind::kAckDeficit);
  ASSERT_NE(deadline, nullptr);
  ASSERT_NE(deficit, nullptr);
  EXPECT_LT(deadline->p95_latency_us, deficit->p95_latency_us);
  EXPECT_LE(deadline->repair_overhead, deficit->repair_overhead);
}

}  // namespace
}  // namespace ppr::sim
