#include "sim/experiment.h"

#include <gtest/gtest.h>

namespace ppr::sim {
namespace {

// A short, low-load run keeps the test fast while still exercising the
// whole pipeline (schedule -> decode -> schemes -> per-link stats).
ExperimentConfig FastConfig(double load_bps = 3500.0,
                            bool carrier_sense = false) {
  auto config = MakePaperConfig(load_bps, carrier_sense, /*duration_s=*/8.0,
                                /*seed=*/21);
  config.receiver.payload_octets = 300;  // smaller frames, faster decode
  return config;
}

std::vector<SchemeConfig> AllSchemes() {
  std::vector<SchemeConfig> schemes;
  for (const auto scheme :
       {Scheme::kPacketCrc, Scheme::kFragmentedCrc, Scheme::kPpr}) {
    for (const bool post : {false, true}) {
      SchemeConfig c;
      c.scheme = scheme;
      c.postamble = post;
      c.num_fragments = 10;
      c.eta = 6.0;
      schemes.push_back(c);
    }
  }
  return schemes;
}

TEST(TestbedExperimentTest, ProducesLinksAndTransmissions) {
  const TestbedExperiment experiment(FastConfig());
  const auto result = experiment.Run(AllSchemes());
  EXPECT_GT(result.total_transmissions, 10u);
  EXPECT_GT(result.links.size(), 8u);
  for (const auto& link : result.links) {
    EXPECT_GE(link.snr_db, 0.0);
    EXPECT_EQ(link.schemes.size(), 6u);
  }
}

TEST(TestbedExperimentTest, FdrBoundedByOne) {
  const TestbedExperiment experiment(FastConfig());
  const auto result = experiment.Run(AllSchemes());
  for (const auto& link : result.links) {
    for (std::size_t k = 0; k < link.schemes.size(); ++k) {
      EXPECT_GE(link.Fdr(k), 0.0);
      EXPECT_LE(link.Fdr(k), 1.0 + 1e-9);
    }
  }
}

TEST(TestbedExperimentTest, PprDominatesFragWhichDominatesPacketCrc) {
  // Aggregate delivered bits must be ordered PPR >= FragCRC >= PacketCRC
  // within a postamble variant: PPR delivers a superset of fragment
  // bits, which is a superset of whole-packet bits (all three read the
  // same traces).
  const TestbedExperiment experiment(FastConfig(9000.0));
  const auto schemes = AllSchemes();  // [pkt, pkt+post, frag, frag+post, ppr, ppr+post]
  const auto result = experiment.Run(schemes);
  std::vector<std::size_t> delivered(schemes.size(), 0);
  for (const auto& link : result.links) {
    for (std::size_t k = 0; k < schemes.size(); ++k) {
      delivered[k] += link.schemes[k].delivered_bits;
    }
  }
  EXPECT_LE(delivered[0], delivered[2]);  // packet <= frag (no postamble)
  EXPECT_LE(delivered[1], delivered[3]);  // same with postamble
  // PPR can drop a handful of false-alarm codewords that a fully-clean
  // fragment would deliver, so allow a small tolerance on its dominance.
  EXPECT_LE(static_cast<double>(delivered[2]),
            1.02 * static_cast<double>(delivered[4]));
  EXPECT_LE(static_cast<double>(delivered[3]),
            1.02 * static_cast<double>(delivered[5]));
}

TEST(TestbedExperimentTest, PostambleNeverHurts) {
  const TestbedExperiment experiment(FastConfig(9000.0));
  const auto schemes = AllSchemes();
  const auto result = experiment.Run(schemes);
  for (std::size_t pair = 0; pair < 3; ++pair) {
    std::size_t without = 0, with = 0;
    for (const auto& link : result.links) {
      without += link.schemes[2 * pair].delivered_bits;
      with += link.schemes[2 * pair + 1].delivered_bits;
    }
    EXPECT_GE(with, without) << "scheme pair " << pair;
  }
}

TEST(TestbedExperimentTest, ObserverSeesEveryAudibleReception) {
  const TestbedExperiment experiment(FastConfig());
  std::size_t observed = 0;
  std::size_t with_trace = 0;
  const auto result = experiment.Run(
      AllSchemes(), [&](const ReceptionRecord& r, const ReceiverModel&) {
        ++observed;
        if (!r.trace.empty()) ++with_trace;
      });
  EXPECT_GT(observed, result.total_transmissions);  // multiple receivers
  EXPECT_EQ(observed, with_trace);
}

TEST(TestbedExperimentTest, DeterministicAcrossRuns) {
  const TestbedExperiment a(FastConfig());
  const TestbedExperiment b(FastConfig());
  const auto schemes = AllSchemes();
  const auto ra = a.Run(schemes);
  const auto rb = b.Run(schemes);
  ASSERT_EQ(ra.links.size(), rb.links.size());
  for (std::size_t i = 0; i < ra.links.size(); ++i) {
    for (std::size_t k = 0; k < schemes.size(); ++k) {
      EXPECT_EQ(ra.links[i].schemes[k].delivered_bits,
                rb.links[i].schemes[k].delivered_bits);
    }
  }
}

TEST(TestbedExperimentTest, ThroughputAccountsOverhead) {
  const TestbedExperiment experiment(FastConfig());
  const auto schemes = AllSchemes();
  const auto result = experiment.Run(schemes);
  for (const auto& link : result.links) {
    if (link.schemes[4].delivered_bits == 0) continue;
    const double ppr_tput = link.ThroughputBps(
        4, schemes[4], result.payload_octets, result.duration_s);
    EXPECT_GT(ppr_tput, 0.0);
    // Raw delivered rate is an upper bound on overhead-adjusted goodput.
    EXPECT_LE(ppr_tput, static_cast<double>(link.schemes[4].delivered_bits) /
                            result.duration_s + 1e-9);
  }
}

TEST(LinkRecoveryExperimentTest, RunsBothStrategiesOverAudibleLinks) {
  // A small testbed so the per-link ARQ exchanges stay fast.
  auto config = MakePaperConfig(3500.0, true, /*duration_s=*/1.0);
  config.testbed.num_senders = 4;
  config.testbed.num_receivers = 2;
  config.medium = IndoorMediumConfig(config.testbed, /*seed=*/11);
  config.min_link_snr_db = 6.0;

  RecoveryExperimentConfig recovery;
  recovery.payload_octets = 60;
  recovery.packets_per_link = 1;
  recovery.seed = 77;

  recovery.arq.recovery = arq::RecoveryMode::kChunkRetransmit;
  const auto chunk = RunLinkRecoveryExperiment(config, recovery);
  recovery.arq.recovery = arq::RecoveryMode::kCodedRepair;
  const auto coded = RunLinkRecoveryExperiment(config, recovery);

  ASSERT_FALSE(chunk.links.empty());
  // The audible link set and per-link SNRs are strategy-independent.
  ASSERT_EQ(chunk.links.size(), coded.links.size());
  for (std::size_t i = 0; i < chunk.links.size(); ++i) {
    EXPECT_EQ(chunk.links[i].sender, coded.links[i].sender);
    EXPECT_EQ(chunk.links[i].receiver, coded.links[i].receiver);
    EXPECT_DOUBLE_EQ(chunk.links[i].snr_db, coded.links[i].snr_db);
    EXPECT_GE(chunk.links[i].snr_db, config.min_link_snr_db);
  }
  EXPECT_EQ(chunk.packets, coded.packets);
  EXPECT_EQ(chunk.completed, chunk.packets);
  EXPECT_EQ(coded.completed, coded.packets);
}

TEST(MakePaperConfigTest, MatchesPaperParameters) {
  const auto config = MakePaperConfig(13800.0, true);
  EXPECT_DOUBLE_EQ(config.traffic.offered_load_bps, 13800.0);
  EXPECT_TRUE(config.traffic.carrier_sense);
  EXPECT_EQ(config.receiver.payload_octets, 1500u);
  EXPECT_EQ(config.testbed.num_senders, 23u);
  EXPECT_EQ(config.testbed.num_receivers, 4u);
}

}  // namespace
}  // namespace ppr::sim
