#include "sim/traffic.h"

#include <gtest/gtest.h>
#include <map>

#include "sim/topology.h"

namespace ppr::sim {
namespace {

MediumConfig SeededMedium() {
  MediumConfig config;
  config.seed = 11;
  return config;
}

struct World {
  TestbedTopology topo;
  RadioMedium medium;
  std::vector<std::size_t> senders;

  World() : medium(topo.Positions(), SeededMedium()) {
    for (std::size_t i = 0; i < topo.NumSenders(); ++i) {
      senders.push_back(topo.SenderId(i));
    }
  }
};

TrafficConfig BaseTraffic() {
  TrafficConfig config;
  config.offered_load_bps = 3500.0;
  config.duration_s = 30.0;
  config.frame_total_chips = 1534 * 64;
  config.payload_bits = 12000;
  config.seed = 5;
  return config;
}

TEST(TrafficTest, ScheduleSortedAndInBounds) {
  World s;
  const auto schedule = GenerateSchedule(BaseTraffic(), s.medium, s.senders);
  ASSERT_FALSE(schedule.empty());
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].start_s, schedule[i - 1].start_s);
  }
  for (const auto& t : schedule) {
    EXPECT_GE(t.start_s, 0.0);
    EXPECT_LT(t.start_s, 30.0);
    EXPECT_NEAR(t.duration_s, 1534 * 64 * kSecondsPerChip, 1e-12);
  }
}

TEST(TrafficTest, OfferedLoadSetsArrivalRate) {
  World s;
  auto config = BaseTraffic();
  config.duration_s = 100.0;
  const auto schedule = GenerateSchedule(config, s.medium, s.senders);
  // Expected packets: 23 senders * load/packet_bits * duration.
  const double expected =
      23.0 * (3500.0 / 12000.0) * 100.0;
  EXPECT_NEAR(static_cast<double>(schedule.size()), expected,
              0.25 * expected);
}

TEST(TrafficTest, HigherLoadMorePackets) {
  World s;
  auto low = BaseTraffic();
  auto high = BaseTraffic();
  high.offered_load_bps = 13800.0;
  const auto nl = GenerateSchedule(low, s.medium, s.senders).size();
  const auto nh = GenerateSchedule(high, s.medium, s.senders).size();
  EXPECT_GT(nh, 2 * nl);
}

TEST(TrafficTest, NoSelfOverlapPerSender) {
  World s;
  auto config = BaseTraffic();
  config.offered_load_bps = 20000.0;  // force queueing
  const auto schedule = GenerateSchedule(config, s.medium, s.senders);
  std::map<std::size_t, double> last_end;
  for (const auto& t : schedule) {
    const auto it = last_end.find(t.sender);
    if (it != last_end.end()) {
      EXPECT_GE(t.start_s, it->second - 1e-12);
    }
    last_end[t.sender] = t.End();
  }
}

TEST(TrafficTest, SequenceNumbersIncreasePerSender) {
  World s;
  const auto schedule = GenerateSchedule(BaseTraffic(), s.medium, s.senders);
  std::map<std::size_t, int> last_seq;
  for (const auto& t : schedule) {
    const auto it = last_seq.find(t.sender);
    if (it != last_seq.end()) {
      EXPECT_EQ(static_cast<int>(t.seq), it->second + 1);
    }
    last_seq[t.sender] = t.seq;
  }
}

TEST(TrafficTest, DeterministicPerSeed) {
  World s;
  const auto a = GenerateSchedule(BaseTraffic(), s.medium, s.senders);
  const auto b = GenerateSchedule(BaseTraffic(), s.medium, s.senders);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sender, b[i].sender);
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
  }
}

TEST(TrafficTest, CarrierSenseReducesOverlap) {
  World s;
  auto cs_off = BaseTraffic();
  cs_off.offered_load_bps = 13800.0;
  auto cs_on = cs_off;
  cs_on.carrier_sense = true;
  cs_on.cs_threshold_dbm = -95.0;  // hear nearly everyone

  auto overlap_fraction = [](const std::vector<Transmission>& schedule) {
    std::size_t overlapping = 0;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      for (std::size_t j = i + 1; j < schedule.size(); ++j) {
        if (schedule[j].start_s >= schedule[i].End()) break;
        ++overlapping;
      }
    }
    return schedule.empty()
               ? 0.0
               : static_cast<double>(overlapping) /
                     static_cast<double>(schedule.size());
  };

  const auto off_schedule = GenerateSchedule(cs_off, s.medium, s.senders);
  const auto on_schedule = GenerateSchedule(cs_on, s.medium, s.senders);
  EXPECT_LT(overlap_fraction(on_schedule),
            0.5 * overlap_fraction(off_schedule));
}

}  // namespace
}  // namespace ppr::sim
