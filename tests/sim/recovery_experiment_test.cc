// Testbed-wide recovery-strategy experiments: the OverhearingRelays
// topology hook, the thread-pool sharding of RunLinkRecoveryExperiment
// (deterministic at any thread count), and the three-strategy sweep.
#include <gtest/gtest.h>

#include <string>

#include "fec/gf256.h"
#include "sim/experiment.h"

namespace ppr::sim {
namespace {

ExperimentConfig SmallConfig() {
  auto config = MakePaperConfig(3500.0, true, /*duration_s=*/1.0);
  // Dense enough that some audible links have an overhearer in range.
  config.testbed.num_senders = 9;
  config.testbed.num_receivers = 2;
  config.medium = IndoorMediumConfig(config.testbed, /*seed=*/11);
  config.min_link_snr_db = 6.0;
  return config;
}

RecoveryExperimentConfig SmallRecovery() {
  RecoveryExperimentConfig recovery;
  recovery.payload_octets = 60;
  recovery.packets_per_link = 2;
  recovery.seed = 88;
  return recovery;
}

TEST(OverhearingRelaysTest, OrdersByBottleneckSnrAndExcludesEndpoints) {
  const auto config = SmallConfig();
  const TestbedTopology topology(config.testbed);
  const RadioMedium medium(topology.Positions(), config.medium);
  const std::size_t sender = topology.SenderId(0);
  const std::size_t receiver = topology.ReceiverId(0);
  const auto relays = OverhearingRelays(medium, sender, receiver, -100.0);
  ASSERT_EQ(relays.size(), topology.NumNodes() - 2);
  double prev = 1e9;
  for (const auto node : relays) {
    EXPECT_NE(node, sender);
    EXPECT_NE(node, receiver);
    const double bottleneck = std::min(medium.LinkSnrDb(sender, node),
                                       medium.LinkSnrDb(node, receiver));
    EXPECT_LE(bottleneck, prev);
    prev = bottleneck;
  }
  // A demanding threshold keeps only the overhearers that clear it.
  const auto strong = OverhearingRelays(medium, sender, receiver, 10.0);
  EXPECT_LT(strong.size(), relays.size());
  for (const auto node : strong) {
    EXPECT_GE(std::min(medium.LinkSnrDb(sender, node),
                       medium.LinkSnrDb(node, receiver)),
              10.0);
  }
}

void ExpectSameResults(const RecoveryExperimentResult& a,
                       const RecoveryExperimentResult& b) {
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].sender, b.links[i].sender);
    EXPECT_EQ(a.links[i].receiver, b.links[i].receiver);
    EXPECT_EQ(a.links[i].relay, b.links[i].relay);
    EXPECT_EQ(a.links[i].completed, b.links[i].completed);
    EXPECT_EQ(a.links[i].repair_bits, b.links[i].repair_bits);
    EXPECT_EQ(a.links[i].source_repair_bits, b.links[i].source_repair_bits);
    EXPECT_EQ(a.links[i].relay_repair_bits, b.links[i].relay_repair_bits);
    EXPECT_EQ(a.links[i].feedback_bits, b.links[i].feedback_bits);
    EXPECT_EQ(a.links[i].feedback_rounds, b.links[i].feedback_rounds);
    EXPECT_EQ(a.links[i].direct_collision_frames,
              b.links[i].direct_collision_frames);
    EXPECT_EQ(a.links[i].joint_collision_frames,
              b.links[i].joint_collision_frames);
    EXPECT_EQ(a.links[i].direct_loss_frames, b.links[i].direct_loss_frames);
    EXPECT_EQ(a.links[i].joint_loss_frames, b.links[i].joint_loss_frames);
  }
  EXPECT_EQ(a.total_repair_bits, b.total_repair_bits);
  EXPECT_EQ(a.total_feedback_bits, b.total_feedback_bits);
  EXPECT_EQ(a.total_joint_collision_frames, b.total_joint_collision_frames);
  EXPECT_EQ(a.total_joint_loss_frames, b.total_joint_loss_frames);
  // The merged metric snapshot is part of the deterministic contract:
  // identical maps AND identical serialized bytes.
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.metrics.ToJson(), b.metrics.ToJson());
}

// The satellite property: sharding the sweep across a thread pool must
// not change a single bit of the results, because per-link seeds are
// fixed before any worker runs — including multi-relay rosters, whose
// tie-broken recruitment order is a pure function of the medium.
TEST(LinkRecoveryExperimentTest, IdenticalResultsAtAnyThreadCount) {
  const auto config = SmallConfig();
  for (const std::size_t max_relays : {1u, 2u}) {
    for (const auto mode : {arq::RecoveryMode::kCodedRepair,
                            arq::RecoveryMode::kRelayCodedRepair}) {
      auto recovery = SmallRecovery();
      recovery.arq.recovery = mode;
      recovery.max_relays = max_relays;
      recovery.num_threads = 1;
      const auto serial = RunLinkRecoveryExperiment(config, recovery);
      for (const std::size_t threads : {2u, 5u, 16u}) {
        recovery.num_threads = threads;
        const auto sharded = RunLinkRecoveryExperiment(config, recovery);
        ExpectSameResults(serial, sharded);
      }
    }
  }
}

TEST(LinkRecoveryExperimentTest, RelayModeRecruitsOverhearers) {
  const auto config = SmallConfig();
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  const auto result = RunLinkRecoveryExperiment(config, recovery);
  ASSERT_FALSE(result.links.empty());
  EXPECT_EQ(result.completed, result.packets);
  std::size_t with_relay = 0;
  for (const auto& link : result.links) {
    if (link.relay == kNoRelay) {
      EXPECT_TRUE(link.relays.empty());
      continue;
    }
    ++with_relay;
    ASSERT_FALSE(link.relays.empty());
    EXPECT_EQ(link.relays.front(), link.relay);
    EXPECT_LE(link.relays.size(), recovery.max_relays);
    EXPECT_NE(link.relay, link.sender);
    EXPECT_NE(link.relay, link.receiver);
    // The per-party split accounts for all repair traffic.
    EXPECT_EQ(link.source_repair_bits + link.relay_repair_bits,
              link.repair_bits);
  }
  EXPECT_GT(with_relay, 0u);
}

// The tentpole's testbed-level acceptance: sweeping the relay roster
// over identical links, a second relay strictly reduces total repair
// airtime on at least one lossy link, and the shared recruitment cache
// serves the added legs.
TEST(LinkRecoveryExperimentTest, SecondRelayReducesRepairAirtimeSomewhere) {
  auto config = SmallConfig();
  // Admit weaker links and raise the impairment-burst rate so repair
  // rounds actually happen on this shrunken testbed.
  config.min_link_snr_db = 2.0;
  config.receiver.impairment_rate = 0.02;
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  recovery.relay_min_snr_db = -10.0;  // deeper roster
  recovery.max_relays = 1;
  recovery.relay_count_sweep = {2};
  const auto cmp = CompareLinkRecoveryStrategies(config, recovery);
  ASSERT_EQ(cmp.relay_sweep.size(), 1u);
  const auto& one = cmp.relay;
  const auto& two = cmp.relay_sweep.front().second;
  ASSERT_EQ(one.links.size(), two.links.size());
  EXPECT_EQ(two.completed, two.packets);
  std::size_t improved = 0;
  for (std::size_t i = 0; i < one.links.size(); ++i) {
    ASSERT_EQ(one.links[i].sender, two.links[i].sender);
    ASSERT_EQ(one.links[i].receiver, two.links[i].receiver);
    if (two.links[i].relays.size() < 2) continue;
    if (two.links[i].completed == two.links[i].packets &&
        two.links[i].repair_bits < one.links[i].repair_bits) {
      ++improved;
    }
  }
  EXPECT_GT(improved, 0u);
  // The relay leg and the sweep leg ran over the same links: the
  // second leg's rosters all came from the shared cache.
  EXPECT_GT(cmp.relay_cache_hits, 0u);
  EXPECT_GT(cmp.relay_cache_misses, 0u);
}

// A dense (>= 4 overhearers per link) roster under a finite per-round
// budget: relay bits per round are capped on every link, the cap
// genuinely binds (some link exceeds it when unbudgeted), deferrals
// are recorded, and recovery still completes.
TEST(LinkRecoveryExperimentTest, AirtimeBudgetCapsDenseRosters) {
  auto config = SmallConfig();
  config.min_link_snr_db = 2.0;
  config.receiver.impairment_rate = 0.02;
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  recovery.relay_min_snr_db = -25.0;  // dense: admit marginal overhearers
  recovery.max_relays = 4;
  const auto unbudgeted = RunLinkRecoveryExperiment(config, recovery);
  constexpr std::size_t kBudget = 300;
  recovery.arq.relay_airtime_budget_bits = kBudget;
  const auto budgeted = RunLinkRecoveryExperiment(config, recovery);
  EXPECT_EQ(budgeted.completed, budgeted.packets);
  std::size_t dense_links = 0;
  std::size_t deferrals = 0;
  std::size_t binding_links = 0;
  ASSERT_EQ(budgeted.links.size(), unbudgeted.links.size());
  for (std::size_t i = 0; i < budgeted.links.size(); ++i) {
    EXPECT_LE(budgeted.links[i].max_round_relay_bits, kBudget);
    if (unbudgeted.links[i].max_round_relay_bits > kBudget) ++binding_links;
    if (budgeted.links[i].relays.size() >= 4) ++dense_links;
    deferrals += budgeted.links[i].relay_deferrals;
  }
  EXPECT_GT(dense_links, 0u);
  EXPECT_GT(binding_links, 0u);
  EXPECT_GT(deferrals, 0u);
}

// The shared-medium acceptance: under kSharedInterferer every
// impairment burst that hits the destination's initial reception hits
// the recruited overhearers too, so the overhear-loss-given-direct-loss
// conditional rises to certainty while the independent leg keeps
// coincidental overlap only — and correlated losses visibly devalue the
// relays (fewer relay repair bits, more source repair bits, over the
// identical links and seeds).
TEST(LinkRecoveryExperimentTest, SharedInterfererCorrelatesOverhearLoss) {
  auto config = SmallConfig();
  // Rare bursts on otherwise-clean links: losses are collision-driven,
  // so the correlation mode is what decides whether a relay's copy
  // survives when the destination's dies.
  config.receiver.impairment_rate = 0.002;
  auto recovery = SmallRecovery();
  recovery.packets_per_link = 6;
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  recovery.relay_min_snr_db = -10.0;
  recovery.max_relays = 2;

  recovery.correlation = arq::CollisionCorrelation::kIndependent;
  const auto independent = RunLinkRecoveryExperiment(config, recovery);
  recovery.correlation = arq::CollisionCorrelation::kSharedInterferer;
  const auto shared = RunLinkRecoveryExperiment(config, recovery);

  EXPECT_EQ(independent.completed, independent.packets);
  EXPECT_EQ(shared.completed, shared.packets);

  // The shared interferer is one draw per transmission: a burst at the
  // destination IS a burst at every relay-holding listener.
  ASSERT_GT(shared.total_direct_collision_frames, 0u);
  EXPECT_EQ(shared.total_joint_collision_frames,
            shared.total_direct_collision_frames);
  ASSERT_GT(shared.total_direct_loss_frames, 0u);
  const double shared_cond =
      static_cast<double>(shared.total_joint_loss_frames) /
      static_cast<double>(shared.total_direct_loss_frames);
  const double independent_cond =
      independent.total_direct_loss_frames == 0
          ? 0.0
          : static_cast<double>(independent.total_joint_loss_frames) /
                static_cast<double>(independent.total_direct_loss_frames);
  EXPECT_GT(shared_cond, 0.0);
  EXPECT_GT(shared_cond, independent_cond);

  // Correlated collisions are the regime where relays stop looking
  // like free repair capacity: their copies die with the
  // destination's, so they carry measurably less of the repair burden.
  EXPECT_LT(shared.total_relay_repair_bits, independent.total_relay_repair_bits);
  EXPECT_GT(shared.total_source_repair_bits,
            independent.total_source_repair_bits);

  // Per-link accessor agrees with the totals' story somewhere.
  std::size_t correlated_links = 0;
  for (const auto& link : shared.links) {
    if (link.OverhearLossGivenDirectLoss() > 0.0) ++correlated_links;
  }
  EXPECT_GT(correlated_links, 0u);
}

// Joint-loss stats are part of the deterministic result contract:
// identical at every thread count, in both correlation modes.
TEST(LinkRecoveryExperimentTest, SharedModeIdenticalAtAnyThreadCount) {
  auto config = SmallConfig();
  config.receiver.impairment_rate = 0.002;
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  recovery.relay_min_snr_db = -10.0;
  recovery.max_relays = 2;
  recovery.correlation = arq::CollisionCorrelation::kSharedInterferer;
  recovery.num_threads = 1;
  const auto serial = RunLinkRecoveryExperiment(config, recovery);
  for (const std::size_t threads : {3u, 16u}) {
    recovery.num_threads = threads;
    const auto sharded = RunLinkRecoveryExperiment(config, recovery);
    ExpectSameResults(serial, sharded);
  }
}

// Merged per-link registry snapshots at 1, 2, and 8 threads are
// byte-identical: per-link registries record only deterministic
// quantities (timings are off in the sim scope) and merge in link
// order. Exercised in both correlation modes so the chip-medium
// counters are covered too.
TEST(LinkRecoveryExperimentTest, MetricSnapshotsInvariantAcrossThreadCounts) {
  const auto config = SmallConfig();
  for (const auto correlation : {arq::CollisionCorrelation::kIndependent,
                                 arq::CollisionCorrelation::kSharedInterferer}) {
    auto recovery = SmallRecovery();
    recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
    recovery.max_relays = 2;
    recovery.correlation = correlation;
    recovery.num_threads = 1;
    const auto serial = RunLinkRecoveryExperiment(config, recovery);
#if !defined(PPR_OBS_OFF)
    ASSERT_FALSE(serial.metrics.Empty());
#else
    ASSERT_TRUE(serial.metrics.Empty());
#endif
    for (const std::size_t threads : {2u, 8u}) {
      recovery.num_threads = threads;
      const auto sharded = RunLinkRecoveryExperiment(config, recovery);
      EXPECT_EQ(serial.metrics, sharded.metrics);
      EXPECT_EQ(serial.metrics.ToJson(), sharded.metrics.ToJson());
    }
  }
}

#if !defined(PPR_OBS_OFF)
// The registry snapshot is not a parallel bookkeeping system that can
// drift: its counters are incremented at the same sites that feed the
// legacy stats structs, so the two must agree exactly.
TEST(LinkRecoveryExperimentTest, MetricSnapshotAgreesWithLegacyStats) {
  const auto config = SmallConfig();
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  recovery.max_relays = 2;
  recovery.correlation = arq::CollisionCorrelation::kSharedInterferer;
  const auto result = RunLinkRecoveryExperiment(config, recovery);
  const auto& c = result.metrics.counters;
  const auto counter = [&](const std::string& key) {
    const auto it = c.find(key);
    return it == c.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(counter("arq.session.feedback_bits"), result.total_feedback_bits);
  EXPECT_EQ(counter("arq.session.repair_bits.source") +
                counter("arq.session.repair_bits.relay"),
            result.total_repair_bits);
  EXPECT_EQ(counter("arq.session.repair_bits.source"),
            result.total_source_repair_bits);
  EXPECT_EQ(counter("arq.session.repair_bits.relay"),
            result.total_relay_repair_bits);
  EXPECT_EQ(counter("arq.session.completed") + counter("arq.session.failed"),
            result.packets);
  EXPECT_EQ(counter("arq.session.completed"), result.completed);
  EXPECT_EQ(counter("medium.ref_collisions"),
            result.total_direct_collision_frames);
  EXPECT_EQ(counter("medium.joint_collisions"),
            result.total_joint_collision_frames);
  EXPECT_EQ(counter("medium.ref_losses"), result.total_direct_loss_frames);
  EXPECT_EQ(counter("medium.joint_losses"), result.total_joint_loss_frames);
  std::size_t feedback_rounds = 0;
  for (const auto& link : result.links) feedback_rounds += link.feedback_rounds;
  EXPECT_EQ(counter("arq.session.rounds"), feedback_rounds);
  // Coded repair ran, so GF(256) work was attributed to the active
  // backend — and to no unavailable one.
  const std::string gf_key = "fec.gf256.bytes{impl=" +
                             std::string(fec::GfImplName(fec::GfActiveImpl())) +
                             "}";
  EXPECT_GT(counter(gf_key), 0u);
  for (const auto& [key, value] : c) {
    if (key.rfind("fec.gf256.", 0) == 0) {
      EXPECT_GT(value, 0u) << key;
    }
  }
}
#endif  // !PPR_OBS_OFF

// The ISSUE's reporting criterion: one call evaluates all three
// strategies over the identical link set.
TEST(CompareLinkRecoveryStrategiesTest, ReportsAllThreeStrategies) {
  const auto config = SmallConfig();
  const auto cmp = CompareLinkRecoveryStrategies(config, SmallRecovery());
  ASSERT_FALSE(cmp.chunk.links.empty());
  ASSERT_EQ(cmp.chunk.links.size(), cmp.coded.links.size());
  ASSERT_EQ(cmp.chunk.links.size(), cmp.relay.links.size());
  for (std::size_t i = 0; i < cmp.chunk.links.size(); ++i) {
    EXPECT_EQ(cmp.chunk.links[i].sender, cmp.relay.links[i].sender);
    EXPECT_EQ(cmp.chunk.links[i].receiver, cmp.relay.links[i].receiver);
    // Two-party strategies never recruit relays.
    EXPECT_EQ(cmp.chunk.links[i].relay, kNoRelay);
    EXPECT_EQ(cmp.coded.links[i].relay, kNoRelay);
  }
  EXPECT_EQ(cmp.chunk.completed, cmp.chunk.packets);
  EXPECT_EQ(cmp.coded.completed, cmp.coded.packets);
  EXPECT_EQ(cmp.relay.completed, cmp.relay.packets);
  // Relay-coded repair never charges the source more than sender-only
  // coded repair across the testbed.
  EXPECT_LE(cmp.relay.total_source_repair_bits,
            cmp.coded.total_source_repair_bits);
}

}  // namespace
}  // namespace ppr::sim
