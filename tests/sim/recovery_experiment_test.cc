// Testbed-wide recovery-strategy experiments: the OverhearingRelays
// topology hook, the thread-pool sharding of RunLinkRecoveryExperiment
// (deterministic at any thread count), and the three-strategy sweep.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace ppr::sim {
namespace {

ExperimentConfig SmallConfig() {
  auto config = MakePaperConfig(3500.0, true, /*duration_s=*/1.0);
  // Dense enough that some audible links have an overhearer in range.
  config.testbed.num_senders = 9;
  config.testbed.num_receivers = 2;
  config.medium = IndoorMediumConfig(config.testbed, /*seed=*/11);
  config.min_link_snr_db = 6.0;
  return config;
}

RecoveryExperimentConfig SmallRecovery() {
  RecoveryExperimentConfig recovery;
  recovery.payload_octets = 60;
  recovery.packets_per_link = 2;
  recovery.seed = 88;
  return recovery;
}

TEST(OverhearingRelaysTest, OrdersByBottleneckSnrAndExcludesEndpoints) {
  const auto config = SmallConfig();
  const TestbedTopology topology(config.testbed);
  const RadioMedium medium(topology.Positions(), config.medium);
  const std::size_t sender = topology.SenderId(0);
  const std::size_t receiver = topology.ReceiverId(0);
  const auto relays = OverhearingRelays(medium, sender, receiver, -100.0);
  ASSERT_EQ(relays.size(), topology.NumNodes() - 2);
  double prev = 1e9;
  for (const auto node : relays) {
    EXPECT_NE(node, sender);
    EXPECT_NE(node, receiver);
    const double bottleneck = std::min(medium.LinkSnrDb(sender, node),
                                       medium.LinkSnrDb(node, receiver));
    EXPECT_LE(bottleneck, prev);
    prev = bottleneck;
  }
  // A demanding threshold keeps only the overhearers that clear it.
  const auto strong = OverhearingRelays(medium, sender, receiver, 10.0);
  EXPECT_LT(strong.size(), relays.size());
  for (const auto node : strong) {
    EXPECT_GE(std::min(medium.LinkSnrDb(sender, node),
                       medium.LinkSnrDb(node, receiver)),
              10.0);
  }
}

void ExpectSameResults(const RecoveryExperimentResult& a,
                       const RecoveryExperimentResult& b) {
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].sender, b.links[i].sender);
    EXPECT_EQ(a.links[i].receiver, b.links[i].receiver);
    EXPECT_EQ(a.links[i].relay, b.links[i].relay);
    EXPECT_EQ(a.links[i].completed, b.links[i].completed);
    EXPECT_EQ(a.links[i].repair_bits, b.links[i].repair_bits);
    EXPECT_EQ(a.links[i].source_repair_bits, b.links[i].source_repair_bits);
    EXPECT_EQ(a.links[i].relay_repair_bits, b.links[i].relay_repair_bits);
    EXPECT_EQ(a.links[i].feedback_bits, b.links[i].feedback_bits);
    EXPECT_EQ(a.links[i].feedback_rounds, b.links[i].feedback_rounds);
  }
  EXPECT_EQ(a.total_repair_bits, b.total_repair_bits);
  EXPECT_EQ(a.total_feedback_bits, b.total_feedback_bits);
}

// The satellite property: sharding the sweep across a thread pool must
// not change a single bit of the results, because per-link seeds are
// fixed before any worker runs.
TEST(LinkRecoveryExperimentTest, IdenticalResultsAtAnyThreadCount) {
  const auto config = SmallConfig();
  for (const auto mode : {arq::RecoveryMode::kCodedRepair,
                          arq::RecoveryMode::kRelayCodedRepair}) {
    auto recovery = SmallRecovery();
    recovery.arq.recovery = mode;
    recovery.num_threads = 1;
    const auto serial = RunLinkRecoveryExperiment(config, recovery);
    for (const std::size_t threads : {2u, 5u, 16u}) {
      recovery.num_threads = threads;
      const auto sharded = RunLinkRecoveryExperiment(config, recovery);
      ExpectSameResults(serial, sharded);
    }
  }
}

TEST(LinkRecoveryExperimentTest, RelayModeRecruitsOverhearers) {
  const auto config = SmallConfig();
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  const auto result = RunLinkRecoveryExperiment(config, recovery);
  ASSERT_FALSE(result.links.empty());
  EXPECT_EQ(result.completed, result.packets);
  std::size_t with_relay = 0;
  for (const auto& link : result.links) {
    if (link.relay == kNoRelay) continue;
    ++with_relay;
    EXPECT_NE(link.relay, link.sender);
    EXPECT_NE(link.relay, link.receiver);
    // The per-party split accounts for all repair traffic.
    EXPECT_EQ(link.source_repair_bits + link.relay_repair_bits,
              link.repair_bits);
  }
  EXPECT_GT(with_relay, 0u);
}

// The ISSUE's reporting criterion: one call evaluates all three
// strategies over the identical link set.
TEST(CompareLinkRecoveryStrategiesTest, ReportsAllThreeStrategies) {
  const auto config = SmallConfig();
  const auto cmp = CompareLinkRecoveryStrategies(config, SmallRecovery());
  ASSERT_FALSE(cmp.chunk.links.empty());
  ASSERT_EQ(cmp.chunk.links.size(), cmp.coded.links.size());
  ASSERT_EQ(cmp.chunk.links.size(), cmp.relay.links.size());
  for (std::size_t i = 0; i < cmp.chunk.links.size(); ++i) {
    EXPECT_EQ(cmp.chunk.links[i].sender, cmp.relay.links[i].sender);
    EXPECT_EQ(cmp.chunk.links[i].receiver, cmp.relay.links[i].receiver);
    // Two-party strategies never recruit relays.
    EXPECT_EQ(cmp.chunk.links[i].relay, kNoRelay);
    EXPECT_EQ(cmp.coded.links[i].relay, kNoRelay);
  }
  EXPECT_EQ(cmp.chunk.completed, cmp.chunk.packets);
  EXPECT_EQ(cmp.coded.completed, cmp.coded.packets);
  EXPECT_EQ(cmp.relay.completed, cmp.relay.packets);
  // Relay-coded repair never charges the source more than sender-only
  // coded repair across the testbed.
  EXPECT_LE(cmp.relay.total_source_repair_bits,
            cmp.coded.total_source_repair_bits);
}

}  // namespace
}  // namespace ppr::sim
