#include "sim/medium.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppr::sim {
namespace {

TEST(UnitConversionTest, DbmMilliwattRoundTrip) {
  EXPECT_NEAR(DbmToMilliwatts(0.0), 1.0, 1e-12);
  EXPECT_NEAR(DbmToMilliwatts(10.0), 10.0, 1e-12);
  EXPECT_NEAR(DbmToMilliwatts(-30.0), 1e-3, 1e-15);
  for (double dbm : {-90.0, -40.0, 0.0, 20.0}) {
    EXPECT_NEAR(MilliwattsToDbm(DbmToMilliwatts(dbm)), dbm, 1e-9);
  }
}

TEST(DistanceTest, Euclidean) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

MediumConfig NoShadowing() {
  MediumConfig config;
  config.shadowing_sigma_db = 0.0;
  return config;
}

TEST(RadioMediumTest, SymmetricGains) {
  const std::vector<Point> positions{{0, 0}, {10, 0}, {3, 7}};
  const RadioMedium medium(positions, MediumConfig{});
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(medium.RxPowerMw(a, b), medium.RxPowerMw(b, a));
    }
  }
}

TEST(RadioMediumTest, PowerDecaysWithDistance) {
  const std::vector<Point> positions{{0, 0}, {2, 0}, {8, 0}, {25, 0}};
  const RadioMedium medium(positions, NoShadowing());
  EXPECT_GT(medium.RxPowerMw(0, 1), medium.RxPowerMw(0, 2));
  EXPECT_GT(medium.RxPowerMw(0, 2), medium.RxPowerMw(0, 3));
}

TEST(RadioMediumTest, LogDistanceSlope) {
  // Without shadowing, a 10x distance increase costs 10*n dB.
  MediumConfig config = NoShadowing();
  config.path_loss_exponent = 3.0;
  const std::vector<Point> positions{{0, 0}, {2, 0}, {20, 0}};
  const RadioMedium medium(positions, config);
  const double drop =
      medium.RxPowerDbm(0, 1) - medium.RxPowerDbm(0, 2);
  EXPECT_NEAR(drop, 30.0, 1e-9);
}

TEST(RadioMediumTest, ReferenceLossAnchorsAbsoluteScale) {
  MediumConfig config = NoShadowing();
  config.tx_power_dbm = 0.0;
  config.reference_loss_db = 40.0;
  config.path_loss_exponent = 3.0;
  const std::vector<Point> positions{{0, 0}, {1, 0}};
  const RadioMedium medium(positions, config);
  EXPECT_NEAR(medium.RxPowerDbm(0, 1), -40.0, 1e-9);
}

TEST(RadioMediumTest, ShadowingIsDeterministicPerSeed) {
  const std::vector<Point> positions{{0, 0}, {5, 5}, {9, 2}};
  MediumConfig config;
  config.seed = 33;
  const RadioMedium a(positions, config);
  const RadioMedium b(positions, config);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(a.RxPowerMw(i, j), b.RxPowerMw(i, j));
    }
  }
  config.seed = 34;
  const RadioMedium c(positions, config);
  EXPECT_NE(a.RxPowerMw(0, 1), c.RxPowerMw(0, 1));
}

TEST(RadioMediumTest, LinkSnrReferencesNoiseFloor) {
  MediumConfig config = NoShadowing();
  config.noise_floor_dbm = -98.0;
  const std::vector<Point> positions{{0, 0}, {1, 0}};
  const RadioMedium medium(positions, config);
  EXPECT_NEAR(medium.LinkSnrDb(0, 1),
              medium.RxPowerDbm(0, 1) + 98.0, 1e-9);
  EXPECT_NEAR(medium.NoiseFloorMw(), DbmToMilliwatts(-98.0), 1e-15);
}

TEST(RadioMediumTest, MinimumDistanceClamped) {
  // Coincident nodes must not produce infinite power.
  const std::vector<Point> positions{{0, 0}, {0, 0}};
  const RadioMedium medium(positions, NoShadowing());
  EXPECT_TRUE(std::isfinite(medium.RxPowerDbm(0, 1)));
}

}  // namespace
}  // namespace ppr::sim
