#include "sim/delivery.h"

#include <gtest/gtest.h>

#include "sim/topology.h"

namespace ppr::sim {
namespace {

// Builds a synthetic reception record over a model with 100-octet
// payloads; `wrong` marks payload codeword indices decoded incorrectly
// (with a high hint), `lying` marks wrong codewords with a *good* hint
// (SoftPHY misses).
struct Fixture {
  std::vector<Point> positions{{0, 0}, {2, 0}};
  MediumConfig mconfig;
  RadioMedium medium;
  ReceiverModel model;

  Fixture()
      : medium((mconfig.shadowing_sigma_db = 0.0, positions), mconfig),
        model(medium, [] {
          ReceiverModelConfig c;
          c.payload_octets = 100;
          return c;
        }()) {}

  ReceptionRecord MakeRecord(const std::vector<std::size_t>& wrong,
                             const std::vector<std::size_t>& lying = {}) {
    ReceptionRecord r;
    r.sender = 0;
    r.receiver = 1;
    r.preamble_sync = true;
    r.postamble_sync = true;
    r.header_ok = true;
    r.trailer_ok = true;
    r.trace.resize(model.Layout().TotalSymbols());
    for (auto& cw : r.trace) {
      cw.correct = true;
      cw.distance = 0;
    }
    for (std::size_t i : wrong) {
      auto& cw = r.trace[model.PayloadCwOffset() + i];
      cw.correct = false;
      cw.distance = 14;
    }
    for (std::size_t i : lying) {
      auto& cw = r.trace[model.PayloadCwOffset() + i];
      cw.correct = false;
      cw.distance = 2;  // below eta: an undetected miss
    }
    return r;
  }
};

SchemeConfig Packet(bool post = false) {
  return SchemeConfig{Scheme::kPacketCrc, post, 30, 6.0};
}
SchemeConfig Frag(std::size_t n = 10, bool post = false) {
  return SchemeConfig{Scheme::kFragmentedCrc, post, n, 6.0};
}
SchemeConfig Ppr(double eta = 6.0, bool post = false) {
  return SchemeConfig{Scheme::kPpr, post, 30, eta};
}

TEST(DeliveryTest, CleanFrameDeliversFullyUnderAllSchemes) {
  Fixture f;
  const auto record = f.MakeRecord({});
  for (const auto& scheme : {Packet(), Frag(), Ppr()}) {
    const auto out = EvaluateDelivery(record, f.model, scheme);
    EXPECT_TRUE(out.acquired);
    EXPECT_EQ(out.delivered_bits, 800u) << scheme.Name();
    EXPECT_EQ(out.wrong_bits, 0u);
  }
}

TEST(DeliveryTest, PacketCrcIsAllOrNothing) {
  Fixture f;
  const auto record = f.MakeRecord({50});
  const auto out = EvaluateDelivery(record, f.model, Packet());
  EXPECT_TRUE(out.acquired);
  EXPECT_EQ(out.delivered_bits, 0u);
}

TEST(DeliveryTest, PacketCrcFailsOnCorruptCrcField) {
  Fixture f;
  auto record = f.MakeRecord({});
  // Corrupt a CRC-field codeword (just past the payload codewords).
  record.trace[f.model.PayloadCwOffset() + f.model.PayloadCwCount()].correct =
      false;
  const auto out = EvaluateDelivery(record, f.model, Packet());
  EXPECT_EQ(out.delivered_bits, 0u);
}

TEST(DeliveryTest, FragmentedCrcLosesOnlyTouchedFragments) {
  Fixture f;
  // 10 fragments of 10 octets = 20 codewords each; corrupt one codeword
  // in fragment 3.
  const auto record = f.MakeRecord({3 * 20 + 5});
  const auto out = EvaluateDelivery(record, f.model, Frag(10));
  EXPECT_TRUE(out.acquired);
  EXPECT_EQ(out.delivered_bits, 800u - 80u);
}

TEST(DeliveryTest, FragmentedCrcDegeneratesToPacketCrcAtOneFragment) {
  Fixture f;
  const auto record = f.MakeRecord({7});
  const auto out = EvaluateDelivery(record, f.model, Frag(1));
  EXPECT_EQ(out.delivered_bits, 0u);
}

TEST(DeliveryTest, PprDeliversExactlyGoodLabeledCorrectBits) {
  Fixture f;
  const auto record = f.MakeRecord({10, 11, 12, 80});
  const auto out = EvaluateDelivery(record, f.model, Ppr());
  EXPECT_TRUE(out.acquired);
  // 200 payload codewords, 4 wrong with distance 14 > eta: excluded.
  EXPECT_EQ(out.delivered_bits, (200u - 4u) * 4u);
  EXPECT_EQ(out.wrong_bits, 0u);
}

TEST(DeliveryTest, PprMissesCountAsWrongBits) {
  Fixture f;
  const auto record = f.MakeRecord({10}, {55, 56});
  const auto out = EvaluateDelivery(record, f.model, Ppr());
  EXPECT_EQ(out.delivered_bits, (200u - 3u) * 4u);
  EXPECT_EQ(out.wrong_bits, 2u * 4u);
}

TEST(DeliveryTest, PprEtaZeroIsStrictest) {
  Fixture f;
  auto record = f.MakeRecord({});
  // A correct codeword with distance 3: delivered at eta 6, dropped at
  // eta 0 (a false alarm).
  record.trace[f.model.PayloadCwOffset() + 9].distance = 3;
  EXPECT_EQ(EvaluateDelivery(record, f.model, Ppr(6.0)).delivered_bits, 800u);
  EXPECT_EQ(EvaluateDelivery(record, f.model, Ppr(0.0)).delivered_bits,
            800u - 4u);
}

TEST(DeliveryTest, NoPostambleVariantNeedsPreambleAndHeader) {
  Fixture f;
  auto record = f.MakeRecord({});
  record.preamble_sync = false;  // only the postamble was heard
  for (const auto& scheme : {Packet(false), Frag(10, false), Ppr(6.0, false)}) {
    EXPECT_FALSE(EvaluateDelivery(record, f.model, scheme).acquired);
  }
  for (const auto& scheme : {Packet(true), Frag(10, true), Ppr(6.0, true)}) {
    EXPECT_TRUE(EvaluateDelivery(record, f.model, scheme).acquired);
  }
}

TEST(DeliveryTest, TrailerSubstitutesForCorruptHeaderOnlyWithPostamble) {
  Fixture f;
  auto record = f.MakeRecord({});
  record.header_ok = false;  // header destroyed, trailer fine
  EXPECT_FALSE(EvaluateDelivery(record, f.model, Packet(false)).acquired);
  EXPECT_TRUE(EvaluateDelivery(record, f.model, Packet(true)).acquired);
}

TEST(DeliveryTest, NothingAcquiredNothingDelivered) {
  Fixture f;
  auto record = f.MakeRecord({});
  record.preamble_sync = false;
  record.postamble_sync = false;
  for (const auto& scheme : {Packet(true), Frag(10, true), Ppr(6.0, true)}) {
    const auto out = EvaluateDelivery(record, f.model, scheme);
    EXPECT_FALSE(out.acquired);
    EXPECT_EQ(out.delivered_bits, 0u);
  }
}

TEST(SchemeAirtimeTest, OverheadOrdering) {
  // Packet CRC (no postamble) is leanest; postamble adds 15 octets;
  // FragCRC adds 4 octets per fragment.
  const std::size_t payload = 1500;
  const auto base = SchemeAirtimeOctets(Packet(false), payload);
  EXPECT_EQ(base, frame::kSyncPrefixOctets + frame::kHeaderOctets + payload +
                      frame::kPayloadCrcOctets);
  EXPECT_EQ(SchemeAirtimeOctets(Packet(true), payload),
            base + frame::kTrailerOctets + frame::kSyncSuffixOctets);
  EXPECT_EQ(SchemeAirtimeOctets(Frag(30, false), payload), base + 120);
  EXPECT_EQ(SchemeAirtimeOctets(Ppr(6.0, true), payload),
            base + frame::kTrailerOctets + frame::kSyncSuffixOctets);
}

TEST(SchemeConfigTest, NamesAreDescriptive) {
  EXPECT_EQ(Packet(false).Name(), "Packet CRC, no postamble");
  EXPECT_EQ(Frag(30, true).Name(), "Fragmented CRC, postamble decoding");
  EXPECT_EQ(Ppr(6.0, true).Name(), "PPR, postamble decoding");
}

}  // namespace
}  // namespace ppr::sim
