// Collision recovery through the testbed sweep: the differential
// guarantee (contention 0 is bit-identical to plain coded repair), the
// episode accounting under both collision-correlation modes, and the
// acceptance sweep (resolve beats the discard baseline on repair bits
// at equal delivery under high shared-interferer contention).
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace ppr::sim {
namespace {

ExperimentConfig SmallConfig() {
  auto config = MakePaperConfig(3500.0, true, /*duration_s=*/1.0);
  config.testbed.num_senders = 6;
  config.testbed.num_receivers = 2;
  config.medium = IndoorMediumConfig(config.testbed, /*seed=*/11);
  config.min_link_snr_db = 6.0;
  return config;
}

RecoveryExperimentConfig SmallRecovery() {
  RecoveryExperimentConfig recovery;
  recovery.payload_octets = 60;
  recovery.packets_per_link = 2;
  recovery.seed = 88;
  recovery.arq.codewords_per_fec_symbol = 4;
  return recovery;
}

void ExpectIdenticalTotals(const RecoveryExperimentResult& a,
                           const RecoveryExperimentResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.total_repair_bits, b.total_repair_bits);
  EXPECT_EQ(a.total_feedback_bits, b.total_feedback_bits);
  EXPECT_EQ(a.total_source_repair_bits, b.total_source_repair_bits);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_EQ(a.links[i].repair_bits, b.links[i].repair_bits) << "link " << i;
    EXPECT_EQ(a.links[i].feedback_bits, b.links[i].feedback_bits);
    EXPECT_EQ(a.links[i].completed, b.links[i].completed);
    EXPECT_EQ(a.links[i].feedback_rounds, b.links[i].feedback_rounds);
  }
}

// The differential test pinned by the issue: compiling the subsystem
// in and selecting kCollisionResolve changes NOTHING until contention
// is dialed up — at 0.0 every draw comes from the same seed chains as
// a kCodedRepair run.
TEST(CollisionExperimentTest, ZeroContentionIsBitIdenticalToCodedRepair) {
  const auto config = SmallConfig();
  auto recovery = SmallRecovery();
  recovery.correlation = arq::CollisionCorrelation::kIndependent;

  recovery.arq.recovery = arq::RecoveryMode::kCodedRepair;
  const auto coded = RunLinkRecoveryExperiment(config, recovery);

  recovery.arq.recovery = arq::RecoveryMode::kCollisionResolve;
  recovery.collision_contention = 0.0;
  const auto collision = RunLinkRecoveryExperiment(config, recovery);

  ExpectIdenticalTotals(coded, collision);
  EXPECT_EQ(collision.total_collision_episodes, 0u);
  EXPECT_EQ(collision.total_collision_rank_gained, 0u);
}

TEST(CollisionExperimentTest, EpisodesRunUnderBothCorrelationModes) {
  const auto config = SmallConfig();
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kCollisionResolve;
  recovery.collision_contention = 1.0;
  recovery.collision_chip_error_p = 0.0;

  for (const auto correlation : {arq::CollisionCorrelation::kIndependent,
                                 arq::CollisionCorrelation::kSharedInterferer}) {
    recovery.correlation = correlation;
    const auto result = RunLinkRecoveryExperiment(config, recovery);
    ASSERT_FALSE(result.links.empty());
    EXPECT_GT(result.packets, 0u);
    // Every packet collides at contention 1.
    EXPECT_EQ(result.total_collision_episodes, result.packets);
    EXPECT_GT(result.total_collision_pairs_resolved, 0u);
    EXPECT_GT(result.total_collision_codewords_stripped, 0u);
    EXPECT_GT(result.total_collision_rank_gained, 0u);
    // Delivered despite the collision -> counted recovered, and the
    // exchange completed.
    EXPECT_EQ(result.total_collided_recovered_frames, result.completed);
    EXPECT_GT(result.completed, 0u);
  }
}

// The issue's acceptance sweep: high contention, shared-interferer
// mode — stripping resolves double collisions and banked equations
// raise rank, so total repair bits land strictly below the discard
// baseline at equal (or better) delivery.
TEST(CollisionExperimentTest, ResolveBeatsDiscardAtHighContention) {
  const auto config = SmallConfig();
  auto recovery = SmallRecovery();
  recovery.arq.recovery = arq::RecoveryMode::kCollisionResolve;
  recovery.correlation = arq::CollisionCorrelation::kSharedInterferer;
  recovery.collision_contention = 0.9;
  recovery.collision_chip_error_p = 0.002;

  recovery.collision_resolve = true;
  const auto resolve = RunLinkRecoveryExperiment(config, recovery);

  recovery.collision_resolve = false;
  const auto discard = RunLinkRecoveryExperiment(config, recovery);

  // Same links, same episode draws: the discard leg saw the same
  // collisions but distilled nothing from them.
  EXPECT_EQ(resolve.packets, discard.packets);
  EXPECT_EQ(resolve.total_collision_episodes,
            discard.total_collision_episodes);
  EXPECT_GT(resolve.total_collision_episodes, 0u);
  EXPECT_EQ(discard.total_collision_rank_gained, 0u);
  EXPECT_EQ(discard.total_collision_pairs_resolved, 0u);

  EXPECT_GT(resolve.total_collision_pairs_resolved, 0u);
  EXPECT_GT(resolve.total_collision_rank_gained, 0u);
  EXPECT_GE(resolve.completed, discard.completed);
  EXPECT_LT(resolve.total_repair_bits, discard.total_repair_bits);
}

}  // namespace
}  // namespace ppr::sim
