#include "sim/topology.h"

#include <gtest/gtest.h>
#include <set>

#include "sim/medium.h"

namespace ppr::sim {
namespace {

TEST(TestbedTopologyTest, PaperNodeCounts) {
  const TestbedTopology topo;
  EXPECT_EQ(topo.NumSenders(), 23u);
  EXPECT_EQ(topo.NumReceivers(), 4u);
  EXPECT_EQ(topo.NumNodes(), 27u);
  EXPECT_EQ(topo.Positions().size(), 27u);
}

TEST(TestbedTopologyTest, IdsPartitionNodes) {
  const TestbedTopology topo;
  for (std::size_t i = 0; i < topo.NumSenders(); ++i) {
    EXPECT_FALSE(topo.IsReceiver(topo.SenderId(i)));
  }
  for (std::size_t i = 0; i < topo.NumReceivers(); ++i) {
    EXPECT_TRUE(topo.IsReceiver(topo.ReceiverId(i)));
  }
}

TEST(TestbedTopologyTest, NodesInsideFloor) {
  const TestbedTopology topo;
  for (const auto& p : topo.Positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, topo.config().floor_width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, topo.config().floor_height_m);
  }
}

TEST(TestbedTopologyTest, DeterministicPerSeed) {
  TestbedConfig config;
  config.seed = 5;
  const TestbedTopology a(config), b(config);
  for (std::size_t i = 0; i < a.NumNodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.Positions()[i].x, b.Positions()[i].x);
    EXPECT_DOUBLE_EQ(a.Positions()[i].y, b.Positions()[i].y);
  }
}

TEST(TestbedTopologyTest, SendersSpreadAcrossRooms) {
  const TestbedTopology topo;
  // With round-robin room assignment, senders land in all nine rooms:
  // count distinct 3x3 cells among sender positions.
  const double room_w = topo.config().floor_width_m / 3;
  const double room_h = topo.config().floor_height_m / 3;
  std::set<int> rooms;
  for (std::size_t i = 0; i < topo.NumSenders(); ++i) {
    const auto& p = topo.Positions()[i];
    const int cell = static_cast<int>(p.x / room_w) +
                     3 * static_cast<int>(p.y / room_h);
    rooms.insert(cell);
  }
  EXPECT_EQ(rooms.size(), 9u);
}

TEST(TestbedTopologyTest, EachReceiverHearsAHandfulOfSenders) {
  // Mirrors the paper: "each sink had between 4 and 8 sender nodes that
  // it could hear" in the absence of other traffic. We accept a
  // slightly wider band since the layout is synthetic.
  const TestbedTopology topo;
  const RadioMedium medium(topo.Positions(),
                           IndoorMediumConfig(topo.config(), 11));
  for (std::size_t r = 0; r < topo.NumReceivers(); ++r) {
    int audible = 0;
    for (std::size_t s = 0; s < topo.NumSenders(); ++s) {
      if (medium.LinkSnrDb(topo.SenderId(s), topo.ReceiverId(r)) >= 0.0) {
        ++audible;
      }
    }
    EXPECT_GE(audible, 3) << "receiver " << r;
    EXPECT_LE(audible, 14) << "receiver " << r;
  }
}

}  // namespace
}  // namespace ppr::sim
