#include "sim/topology.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <set>

#include "sim/medium.h"

namespace ppr::sim {
namespace {

TEST(TestbedTopologyTest, PaperNodeCounts) {
  const TestbedTopology topo;
  EXPECT_EQ(topo.NumSenders(), 23u);
  EXPECT_EQ(topo.NumReceivers(), 4u);
  EXPECT_EQ(topo.NumNodes(), 27u);
  EXPECT_EQ(topo.Positions().size(), 27u);
}

TEST(TestbedTopologyTest, IdsPartitionNodes) {
  const TestbedTopology topo;
  for (std::size_t i = 0; i < topo.NumSenders(); ++i) {
    EXPECT_FALSE(topo.IsReceiver(topo.SenderId(i)));
  }
  for (std::size_t i = 0; i < topo.NumReceivers(); ++i) {
    EXPECT_TRUE(topo.IsReceiver(topo.ReceiverId(i)));
  }
}

TEST(TestbedTopologyTest, NodesInsideFloor) {
  const TestbedTopology topo;
  for (const auto& p : topo.Positions()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, topo.config().floor_width_m);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, topo.config().floor_height_m);
  }
}

TEST(TestbedTopologyTest, DeterministicPerSeed) {
  TestbedConfig config;
  config.seed = 5;
  const TestbedTopology a(config), b(config);
  for (std::size_t i = 0; i < a.NumNodes(); ++i) {
    EXPECT_DOUBLE_EQ(a.Positions()[i].x, b.Positions()[i].x);
    EXPECT_DOUBLE_EQ(a.Positions()[i].y, b.Positions()[i].y);
  }
}

TEST(TestbedTopologyTest, SendersSpreadAcrossRooms) {
  const TestbedTopology topo;
  // With round-robin room assignment, senders land in all nine rooms:
  // count distinct 3x3 cells among sender positions.
  const double room_w = topo.config().floor_width_m / 3;
  const double room_h = topo.config().floor_height_m / 3;
  std::set<int> rooms;
  for (std::size_t i = 0; i < topo.NumSenders(); ++i) {
    const auto& p = topo.Positions()[i];
    const int cell = static_cast<int>(p.x / room_w) +
                     3 * static_cast<int>(p.y / room_h);
    rooms.insert(cell);
  }
  EXPECT_EQ(rooms.size(), 9u);
}

TEST(TestbedTopologyTest, EachReceiverHearsAHandfulOfSenders) {
  // Mirrors the paper: "each sink had between 4 and 8 sender nodes that
  // it could hear" in the absence of other traffic. We accept a
  // slightly wider band since the layout is synthetic.
  const TestbedTopology topo;
  const RadioMedium medium(topo.Positions(),
                           IndoorMediumConfig(topo.config(), 11));
  for (std::size_t r = 0; r < topo.NumReceivers(); ++r) {
    int audible = 0;
    for (std::size_t s = 0; s < topo.NumSenders(); ++s) {
      if (medium.LinkSnrDb(topo.SenderId(s), topo.ReceiverId(r)) >= 0.0) {
        ++audible;
      }
    }
    EXPECT_GE(audible, 3) << "receiver " << r;
    EXPECT_LE(audible, 14) << "receiver " << r;
  }
}

// Satellite: relay recruitment determinism. Two overhearers placed
// mirror-symmetric about the sender-receiver axis (no shadowing, no
// walls) tie exactly on bottleneck SNR; the roster must order the tie
// by node id, not by incidental sort behavior, so sharded sweeps are
// seed-stable at any thread count.
TEST(OverhearingRelaysTest, ExactBottleneckTiesOrderByNodeId) {
  MediumConfig config;
  config.shadowing_sigma_db = 0.0;  // ties must be exact
  // node 0 = sender, 1 = receiver, 2..5 = candidates in two mirror
  // pairs; the closer pair (ids 4, 5) ranks ahead of the farther
  // (ids 2, 3) on bottleneck SNR.
  const std::vector<Point> positions = {
      {0.0, 0.0}, {10.0, 0.0},
      {5.0, 3.0}, {5.0, -3.0},
      {5.0, 1.0}, {5.0, -1.0},
  };
  const RadioMedium medium(positions, config);
  ASSERT_DOUBLE_EQ(
      std::min(medium.LinkSnrDb(0, 2), medium.LinkSnrDb(2, 1)),
      std::min(medium.LinkSnrDb(0, 3), medium.LinkSnrDb(3, 1)));
  const auto relays = OverhearingRelays(medium, 0, 1, -200.0);
  EXPECT_EQ(relays, (std::vector<std::size_t>{4, 5, 2, 3}));
}

TEST(OverhearingRelayCacheTest, MemoizesPerLinkAndThreshold) {
  const TestbedTopology topology;
  const RadioMedium medium(topology.Positions(),
                           IndoorMediumConfig(topology.config(), 11));
  OverhearingRelayCache cache(medium);
  const std::size_t sender = topology.SenderId(0);
  const std::size_t receiver = topology.ReceiverId(0);
  const auto& first = cache.Get(sender, receiver, 3.0);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const auto& again = cache.Get(sender, receiver, 3.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(&first, &again);  // the cached vector itself
  EXPECT_EQ(again, OverhearingRelays(medium, sender, receiver, 3.0));
  // A different threshold or link is its own entry.
  cache.Get(sender, receiver, 6.0);
  cache.Get(sender, topology.ReceiverId(1), 3.0);
  EXPECT_EQ(cache.misses(), 3u);
}

}  // namespace
}  // namespace ppr::sim
