#include "ppr/receiver_pipeline.h"

#include <gtest/gtest.h>

#include "common/crc.h"
#include "common/rng.h"
#include "phy/channel.h"

namespace ppr::core {
namespace {

PipelineConfig TestConfig() {
  PipelineConfig config;
  config.modem.samples_per_chip = 4;
  config.max_payload_octets = 256;
  return config;
}

std::vector<std::uint8_t> RandomPayload(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return payload;
}

frame::FrameHeader MakeHeader(std::size_t len, std::uint16_t seq = 1) {
  frame::FrameHeader h;
  h.length = static_cast<std::uint16_t>(len);
  h.dst = 0xD;
  h.src = 0x5;
  h.seq = seq;
  return h;
}

TEST(ReceiverPipelineTest, CleanFrameRecoveredViaPreamble) {
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(201);

  const auto payload = RandomPayload(rng, 60);
  const auto wave = mod.Modulate(MakeHeader(60), payload);

  phy::SampleVec air(wave.size() + 800, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 400);

  const auto frames = rx.Process(air);
  ASSERT_EQ(frames.size(), 1u);
  const auto& f = frames[0];
  EXPECT_EQ(f.sync, RecoveredFrame::SyncSource::kPreamble);
  EXPECT_EQ(f.frame_start_sample, 400u);
  EXPECT_EQ(f.header, MakeHeader(60));
  EXPECT_FALSE(f.header_from_trailer);

  const BitVec bits = f.PayloadBits();
  EXPECT_EQ(bits.ToBytes(), payload);
  for (const auto& s : f.body_symbols) {
    EXPECT_EQ(s.hamming_distance, 0);
  }
}

TEST(ReceiverPipelineTest, RecoversUnderModerateNoise) {
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(202);

  const auto payload = RandomPayload(rng, 100);
  const auto wave = mod.Modulate(MakeHeader(100), payload);
  phy::SampleVec air(wave.size() + 600, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 300);
  // 6 dB chip SNR: chip errors ~2e-3, codewords decode fine.
  const double sigma = phy::NoiseSigmaForEcN0(std::pow(10.0, 0.6), 1.0, 4);
  phy::AddAwgn(air, sigma, rng);

  const auto frames = rx.Process(air);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].PayloadBits().ToBytes(), payload);
}

TEST(ReceiverPipelineTest, PostambleRecoversFrameWithDestroyedPreamble) {
  // Obliterate the preamble region with a strong interfering burst:
  // the preamble path fails, the postamble path must roll back and
  // recover the frame (the section 4 scenario).
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(203);

  const auto payload = RandomPayload(rng, 80);
  const auto wave = mod.Modulate(MakeHeader(80), payload);
  phy::SampleVec air(wave.size() + 1000, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 500);

  // Jam the first 15 octets of the frame (preamble+SFD+header) with
  // noise at ~10x the signal power; the payload stays clean.
  const std::size_t jam_len = 15 * 64 * 4;
  for (std::size_t i = 500; i < 500 + jam_len; ++i) {
    air[i] += phy::Sample{rng.Normal(0.0, 3.0), rng.Normal(0.0, 3.0)};
  }

  const auto frames = rx.Process(air);
  ASSERT_EQ(frames.size(), 1u);
  const auto& f = frames[0];
  EXPECT_EQ(f.sync, RecoveredFrame::SyncSource::kPostamble);
  EXPECT_TRUE(f.header_from_trailer);
  EXPECT_EQ(f.header, MakeHeader(80));

  // The payload (outside the jammed region) must be intact.
  EXPECT_EQ(f.PayloadBits().ToBytes(), payload);
  // The jammed header codewords carry high Hamming hints: SoftPHY marks
  // them bad rather than silently delivering garbage.
  double head_hint = 0.0;
  for (std::size_t i = 0; i < 10; ++i) {
    head_hint += f.body_symbols[i].hint;
  }
  EXPECT_GT(head_hint / 10.0, 6.0);
}

TEST(ReceiverPipelineTest, PreambleFrameNotDuplicatedByPostamble) {
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(204);
  const auto payload = RandomPayload(rng, 40);
  const auto wave = mod.Modulate(MakeHeader(40), payload);
  phy::SampleVec air(wave.size() + 400, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 200);
  const auto frames = rx.Process(air);
  // Exactly one frame despite both sync patterns being present.
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].sync, RecoveredFrame::SyncSource::kPreamble);
}

TEST(ReceiverPipelineTest, TwoBackToBackFramesBothRecovered) {
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(205);

  const auto p1 = RandomPayload(rng, 50);
  const auto p2 = RandomPayload(rng, 70);
  const auto w1 = mod.Modulate(MakeHeader(50, 1), p1);
  const auto w2 = mod.Modulate(MakeHeader(70, 2), p2);

  phy::SampleVec air(w1.size() + w2.size() + 1500, phy::Sample{0.0, 0.0});
  phy::MixInto(air, w1, 300);
  phy::MixInto(air, w2, 300 + w1.size() + 600);

  const auto frames = rx.Process(air);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.seq, 1u);
  EXPECT_EQ(frames[1].header.seq, 2u);
  EXPECT_EQ(frames[0].PayloadBits().ToBytes(), p1);
  EXPECT_EQ(frames[1].PayloadBits().ToBytes(), p2);
}

TEST(ReceiverPipelineTest, CollisionAnatomyBothPartialsRecovered) {
  // The Figure 5 / Figure 13 scenario: a strong frame is being
  // received when a weaker frame starts underneath it (near-far). The
  // strong frame is preamble-synced; the weak frame's preamble and
  // header are buried (SIR -6 dB), so only its postamble — transmitted
  // after the strong frame ended — can recover it, partially.
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(206);

  const auto p1 = RandomPayload(rng, 120);
  const auto p2 = RandomPayload(rng, 120);
  auto w1 = mod.Modulate(MakeHeader(120, 1), p1);
  auto w2 = mod.Modulate(MakeHeader(120, 2), p2);
  // Independent carrier phases, as for two unsynchronized senders.
  phy::ApplyCarrierOffset(w1, 0.0, 0.9);
  phy::ApplyCarrierOffset(w2, 0.0, 3.7);
  phy::ApplyGain(w1, 2.0);  // +6 dB: the nearby sender

  phy::SampleVec air;
  const std::size_t start1 = 400;
  // Overlap: packet 2 starts 60% into packet 1.
  const std::size_t start2 = start1 + (w1.size() * 3) / 5;
  air.assign(start2 + w2.size() + 400, phy::Sample{0.0, 0.0});
  phy::MixInto(air, w1, start1);
  phy::MixInto(air, w2, start2);

  const auto frames = rx.Process(air);
  ASSERT_EQ(frames.size(), 2u);

  const auto& f1 = frames[0];
  const auto& f2 = frames[1];
  EXPECT_EQ(f1.sync, RecoveredFrame::SyncSource::kPreamble);
  EXPECT_EQ(f1.header.seq, 1u);
  EXPECT_EQ(f2.sync, RecoveredFrame::SyncSource::kPostamble);
  EXPECT_EQ(f2.header.seq, 2u);

  // The weak frame's buried head carries high hints; its clean tail
  // decodes confidently and correctly.
  auto mean_hint = [](const std::vector<phy::DecodedSymbol>& symbols,
                      std::size_t from, std::size_t to) {
    double acc = 0.0;
    for (std::size_t i = from; i < to; ++i) acc += symbols[i].hint;
    return acc / static_cast<double>(to - from);
  };
  const std::size_t n2 = f2.body_symbols.size();
  EXPECT_GT(mean_hint(f2.body_symbols, 0, n2 / 3), 4.0);
  EXPECT_LT(mean_hint(f2.body_symbols, (2 * n2) / 3, n2), 1.0);

  // Tail payload bytes of the weak frame match ground truth.
  const auto payload_symbols = f2.PayloadSymbols();
  ASSERT_EQ(payload_symbols.size(), 240u);
  for (std::size_t i = 200; i < 240; ++i) {
    const std::uint8_t true_nibble =
        (i % 2 == 0) ? (p2[i / 2] >> 4) : (p2[i / 2] & 0xF);
    EXPECT_EQ(payload_symbols[i].symbol, true_nibble) << "nibble " << i;
  }

  // The strong frame survives its overlap region largely intact (+6 dB
  // SIR with DSSS processing gain), with at most mildly elevated hints.
  const std::size_t n1 = f1.body_symbols.size();
  EXPECT_LT(mean_hint(f1.body_symbols, 0, n1 / 3), 1.0);
  EXPECT_LT(mean_hint(f1.body_symbols, (2 * n1) / 3, n1), 6.0);
}

TEST(ReceiverPipelineTest, OversizedLengthFieldRejected) {
  // A frame whose header length exceeds the configured maximum must be
  // rejected rather than trigger a huge rollback.
  auto config = TestConfig();
  config.max_payload_octets = 64;
  const FrameModulator mod(config.modem);
  const ReceiverPipeline rx(config);
  Rng rng(207);
  const auto payload = RandomPayload(rng, 100);  // > max
  const auto wave = mod.Modulate(MakeHeader(100), payload);
  phy::SampleVec air(wave.size() + 400, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 200);
  EXPECT_TRUE(rx.Process(air).empty());
}

TEST(ReceiverPipelineTest, EmptyAirYieldsNothing) {
  const ReceiverPipeline rx(TestConfig());
  Rng rng(208);
  phy::SampleVec air(20000, phy::Sample{0.0, 0.0});
  phy::AddAwgn(air, 0.5, rng);
  EXPECT_TRUE(rx.Process(air).empty());
}

TEST(StreamingReceiverTest, FindsFrameAcrossChunkedPushes) {
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  StreamingReceiver rx(config);
  Rng rng(209);

  const auto payload = RandomPayload(rng, 64);
  const auto wave = mod.Modulate(MakeHeader(64), payload);
  phy::SampleVec air(wave.size() + 1200, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 700);

  // Feed in uneven chunks.
  std::size_t pos = 0;
  Rng chunk_rng(210);
  while (pos < air.size()) {
    const std::size_t n =
        std::min(air.size() - pos, 500 + chunk_rng.UniformInt(3000));
    rx.Push(phy::SampleVec(air.begin() + static_cast<std::ptrdiff_t>(pos),
                           air.begin() + static_cast<std::ptrdiff_t>(pos + n)));
    pos += n;
  }
  rx.Flush();
  ASSERT_EQ(rx.Frames().size(), 1u);
  EXPECT_EQ(rx.Frames()[0].frame_start_sample, 700u);
  EXPECT_EQ(rx.Frames()[0].PayloadBits().ToBytes(), payload);
}

TEST(StreamingReceiverTest, NoDuplicateEmissionAcrossScans) {
  const auto config = TestConfig();
  const FrameModulator mod(config.modem);
  StreamingReceiver rx(config);
  Rng rng(211);
  const auto payload = RandomPayload(rng, 32);
  const auto wave = mod.Modulate(MakeHeader(32), payload);
  phy::SampleVec air(wave.size() + 600, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 100);

  rx.Push(air);
  rx.Push(phy::SampleVec(4000, phy::Sample{0.0, 0.0}));
  rx.Push(phy::SampleVec(4000, phy::Sample{0.0, 0.0}));
  rx.Flush();
  EXPECT_EQ(rx.Frames().size(), 1u);
}

}  // namespace
}  // namespace ppr::core
