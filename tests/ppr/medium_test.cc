// The waveform shared broadcast medium: bit-for-bit equivalence of the
// single-listener / kIndependent configuration with the pre-medium
// point-to-point channel, correlated burst spans under a shared
// interferer (scaled by listener geometry), roster-invariant seed
// derivation, and the joint-loss stats.
#include "ppr/medium.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <numbers>
#include <set>

#include "phy/channel.h"
#include "ppr/link.h"

namespace ppr::core {
namespace {

WaveformChannelParams BaseParams() {
  WaveformChannelParams params;
  params.pipeline.modem.samples_per_chip = 4;
  params.pipeline.max_payload_octets = 400;
  params.ec_n0_db = 6.0;
  params.seed = 31;
  return params;
}

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords; ++i) {
    bits.AppendUint(rng.UniformInt(16), 4);
  }
  return bits;
}

void ExpectSameSymbols(const std::vector<phy::DecodedSymbol>& a,
                       const std::vector<phy::DecodedSymbol>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].symbol, b[i].symbol);
    EXPECT_EQ(a[i].hamming_distance, b[i].hamming_distance);
    EXPECT_EQ(a[i].hint, b[i].hint);
  }
}

std::set<std::size_t> WrongCodewords(const BitVec& sent,
                                     const std::vector<phy::DecodedSymbol>& rx) {
  std::set<std::size_t> wrong;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    if (rx[i].symbol != sent.ReadUint(4 * i, 4)) wrong.insert(i);
  }
  return wrong;
}

// Reference implementation: the pre-medium MakeWaveformChannel, kept
// verbatim as the golden draw sequence the kIndependent single-listener
// medium must reproduce bit-for-bit.
arq::BodyChannel MakeLegacyReferenceChannel(const WaveformChannelParams& p) {
  struct State {
    WaveformChannelParams params;
    FrameModulator modulator;
    ReceiverPipeline pipeline;
    Rng rng;
    std::uint16_t next_seq = 1;
    explicit State(const WaveformChannelParams& p)
        : params(p), modulator(p.pipeline.modem), pipeline(p.pipeline),
          rng(p.seed) {}
  };
  auto state = std::make_shared<State>(p);
  return [state](const BitVec& bits) -> std::vector<phy::DecodedSymbol> {
    auto& s = *state;
    const std::size_t nibbles = bits.size() / 4;
    BitVec padded = bits;
    while (padded.size() % 8 != 0) padded.PushBack(false);
    const auto payload = padded.ToBytes();

    frame::FrameHeader header;
    header.length = static_cast<std::uint16_t>(payload.size());
    header.dst = 2;
    header.src = 1;
    header.seq = s.next_seq++;

    phy::SampleVec wave = s.modulator.Modulate(header, payload);
    phy::ApplyCarrierOffset(wave, 0.0,
                            s.rng.UniformDouble(0.0, 2.0 * std::numbers::pi));
    const int sps = s.params.pipeline.modem.samples_per_chip;
    const std::size_t guard = static_cast<std::size_t>(64 * sps);
    phy::SampleVec air(wave.size() + 2 * guard, phy::Sample{0.0, 0.0});
    phy::MixInto(air, wave, guard);

    if (s.rng.Bernoulli(s.params.collision_probability)) {
      std::vector<std::uint8_t> junk(s.params.interferer_octets);
      for (auto& b : junk) {
        b = static_cast<std::uint8_t>(s.rng.UniformInt(256));
      }
      phy::SampleVec burst = s.modulator.ModulateOctets(junk);
      phy::ApplyCarrierOffset(
          burst, 0.0, s.rng.UniformDouble(0.0, 2.0 * std::numbers::pi));
      const double gain =
          std::pow(10.0, s.params.interferer_relative_db / 20.0);
      const std::size_t span =
          air.size() > burst.size() ? air.size() - burst.size() : 1;
      const std::size_t offset = s.rng.UniformInt(span);
      phy::MixInto(air, burst, offset, gain);
    }

    const double sigma = phy::NoiseSigmaForEcN0(
        std::pow(10.0, s.params.ec_n0_db / 10.0),
        s.params.pipeline.modem.amplitude, sps);
    phy::AddAwgn(air, sigma, s.rng);

    const auto frames = s.pipeline.Process(air);
    for (const auto& f : frames) {
      if (f.header.seq != header.seq || f.header.length != payload.size()) {
        continue;
      }
      auto symbols = f.PayloadSymbols();
      if (symbols.size() < nibbles) break;
      symbols.resize(nibbles);
      return symbols;
    }
    std::vector<phy::DecodedSymbol> bad(nibbles);
    for (auto& d : bad) {
      d.symbol = 0;
      d.hint = std::numeric_limits<double>::infinity();
      d.hamming_distance = phy::kChipsPerSymbol;
    }
    return bad;
  };
}

// The equivalence pin (tentpole acceptance): MakeWaveformChannel — now
// a single-listener kIndependent medium — reproduces the pre-medium
// channel bit-for-bit across clean, noisy, and collided transmissions.
TEST(WaveformMediumTest, SoloIndependentListenerMatchesLegacyChannel) {
  auto params = BaseParams();
  params.ec_n0_db = 5.0;
  params.collision_probability = 0.6;
  params.interferer_relative_db = 0.0;
  params.interferer_octets = 60;
  params.seed = 77;

  const auto medium_channel = MakeWaveformChannel(params);
  const auto legacy_channel = MakeLegacyReferenceChannel(params);
  Rng payload(501);
  for (int call = 0; call < 4; ++call) {
    const BitVec body = RandomBody(payload, 120);
    ExpectSameSymbols(medium_channel(body), legacy_channel(body));
  }
}

// In kIndependent mode a broadcast is exactly N private channels: same
// draws as each listener's own MakeWaveformChannel, any roster size.
TEST(WaveformMediumTest, IndependentBroadcastMatchesPrivateChannels) {
  auto direct = BaseParams();
  direct.collision_probability = 0.5;
  direct.interferer_octets = 60;
  direct.seed = 81;
  auto overhear = BaseParams();
  overhear.ec_n0_db = 8.0;
  overhear.seed = 82;

  auto medium = WaveformMedium::Create(
      arq::CollisionCorrelation::kIndependent, direct.seed);
  medium->AddListener(ListenerFromChannelParams(direct));
  medium->AddListener(ListenerFromChannelParams(overhear));

  const auto direct_private = MakeWaveformChannel(direct);
  const auto overhear_private = MakeWaveformChannel(overhear);

  Rng payload(502);
  const BitVec body = RandomBody(payload, 150);
  const auto receptions = medium->Transmit({body});
  ASSERT_EQ(receptions.size(), 2u);
  ExpectSameSymbols(receptions[0].symbols, direct_private(body));
  ExpectSameSymbols(receptions[1].symbols, overhear_private(body));
}

// The satellite property: under kSharedInterferer a forced collision
// corrupts the SAME symbol span at the destination and the relay —
// projected through each listener's geometry, so a listener where the
// interferer arrives 20 dB down loses far less of that span.
TEST(WaveformMediumTest, SharedInterfererCorruptsSameSpanScaledByGeometry) {
  auto listener = BaseParams();
  listener.ec_n0_db = 12.0;  // noise effectively off: only the burst hurts
  listener.interferer_relative_db = 3.0;

  SharedClimate climate;
  climate.collision_probability = 1.0;  // forced collision
  climate.interferer_octets = 50;

  auto medium = WaveformMedium::Create(
      arq::CollisionCorrelation::kSharedInterferer, /*medium_seed=*/300,
      climate);
  auto dest = ListenerFromChannelParams(listener);
  dest.seed = 1;
  auto relay = ListenerFromChannelParams(listener);
  relay.seed = 2;
  auto far = ListenerFromChannelParams(listener);  // far from the interferer
  far.seed = 3;
  far.interferer_relative_db = -20.0;
  medium->AddListener(dest);
  medium->AddListener(relay);
  medium->AddListener(far);

  Rng payload(503);
  const BitVec body = RandomBody(payload, 220);
  const auto receptions = medium->Transmit({body});
  ASSERT_EQ(receptions.size(), 3u);
  EXPECT_TRUE(receptions[0].collided);
  EXPECT_TRUE(receptions[1].collided);
  EXPECT_TRUE(receptions[2].collided);

  const auto wrong_dest = WrongCodewords(body, receptions[0].symbols);
  const auto wrong_relay = WrongCodewords(body, receptions[1].symbols);
  const auto wrong_far = WrongCodewords(body, receptions[2].symbols);
  ASSERT_FALSE(wrong_dest.empty());
  ASSERT_FALSE(wrong_relay.empty());

  // Same burst, same span: the corrupted windows overlap.
  const std::size_t lo =
      std::max(*wrong_dest.begin(), *wrong_relay.begin());
  const std::size_t hi =
      std::min(*wrong_dest.rbegin(), *wrong_relay.rbegin());
  EXPECT_LE(lo, hi) << "corrupted spans do not overlap";

  // Geometry scales the damage: at -20 dB the same burst costs far
  // fewer codewords.
  EXPECT_LT(wrong_far.size(), wrong_dest.size());

  const auto& ms = medium->medium_stats();
  EXPECT_EQ(ms.reference_collision_frames, 1u);
  EXPECT_EQ(ms.joint_collision_frames, 1u);
  EXPECT_EQ(ms.joint_corrupted_frames, 1u);
}

// Shared-mode draws derive from (medium seed, sender, tx index,
// listener): adding listeners cannot change what an existing listener
// receives.
TEST(WaveformMediumTest, RosterSizeCannotReorderSharedDraws) {
  auto params = BaseParams();
  params.interferer_relative_db = 0.0;
  SharedClimate climate;
  climate.collision_probability = 0.7;
  climate.interferer_octets = 40;

  Rng payload(504);
  const BitVec body = RandomBody(payload, 100);
  const BitVec repair = RandomBody(payload, 44);

  auto solo = WaveformMedium::Create(
      arq::CollisionCorrelation::kSharedInterferer, 42, climate);
  solo->AddListener(ListenerFromChannelParams(params));
  const auto solo_rx = solo->Transmit({body});
  const auto solo_repair = solo->MakeListenerChannel(0)(repair);

  auto duo = WaveformMedium::Create(
      arq::CollisionCorrelation::kSharedInterferer, 42, climate);
  duo->AddListener(ListenerFromChannelParams(params));
  auto other = ListenerFromChannelParams(params);
  other.seed = 99;
  other.gain = 0.7;
  duo->AddListener(other);
  const auto duo_rx = duo->Transmit({body});
  const auto duo_repair = duo->MakeListenerChannel(0)(repair);

  ExpectSameSymbols(solo_rx[0].symbols, duo_rx[0].symbols);
  ExpectSameSymbols(solo_repair, duo_repair);
}

// Per-sender transmission counters: two senders on one medium keep
// disjoint seed chains, and an explicit Transmission::seed override
// reproduces a transmission exactly.
TEST(WaveformMediumTest, SenderStreamsAndSeedOverride) {
  auto params = BaseParams();
  SharedClimate climate;
  climate.collision_probability = 1.0;
  climate.interferer_octets = 30;
  auto medium = WaveformMedium::Create(
      arq::CollisionCorrelation::kSharedInterferer, 17, climate);
  medium->AddListener(ListenerFromChannelParams(params));

  EXPECT_NE(medium->SeedForTransmission(0, 1),
            medium->SeedForTransmission(1, 1));

  Rng payload(505);
  const BitVec body = RandomBody(payload, 80);
  Transmission tx;
  tx.body_bits = body;
  tx.seed = medium->SeedForTransmission(0, 1);
  const auto a = medium->Transmit(tx);
  const auto b = medium->Transmit(tx);  // same forced seed: identical draw
  EXPECT_EQ(a[0].collided, b[0].collided);
  ExpectSameSymbols(a[0].symbols, b[0].symbols);
}

}  // namespace
}  // namespace ppr::core
