#include "ppr/link.h"

#include <gtest/gtest.h>

namespace ppr::core {
namespace {

WaveformChannelParams CleanParams() {
  WaveformChannelParams params;
  params.pipeline.modem.samples_per_chip = 4;
  params.pipeline.max_payload_octets = 600;
  params.ec_n0_db = 12.0;  // effectively error-free
  params.seed = 31;
  return params;
}

BitVec RandomPayloadBits(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

TEST(WaveformChannelTest, CleanChannelDeliversExactBits) {
  const auto channel = MakeWaveformChannel(CleanParams());
  Rng rng(221);
  const BitVec payload = RandomPayloadBits(rng, 120);
  const auto symbols = channel(payload);
  ASSERT_EQ(symbols.size(), payload.size() / 4);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(symbols[i].symbol, payload.ReadUint(i * 4, 4));
  }
}

TEST(WaveformChannelTest, HandlesNonOctetBodies) {
  // Retransmission wires are nibble- but not octet-aligned; the channel
  // must pad and trim transparently.
  const auto channel = MakeWaveformChannel(CleanParams());
  Rng rng(222);
  BitVec payload;
  for (int i = 0; i < 101; ++i) payload.AppendUint(rng.UniformInt(16), 4);
  ASSERT_NE(payload.size() % 8, 0u);
  const auto symbols = channel(payload);
  ASSERT_EQ(symbols.size(), 101u);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(symbols[i].symbol, payload.ReadUint(i * 4, 4));
  }
}

TEST(WaveformChannelTest, NoisyChannelReportsBadHints) {
  auto params = CleanParams();
  params.ec_n0_db = -2.0;  // chip errors ~21%: plenty of corruption
  const auto channel = MakeWaveformChannel(params);
  Rng rng(223);
  const BitVec payload = RandomPayloadBits(rng, 200);
  const auto symbols = channel(payload);
  double mean_hint = 0.0;
  for (const auto& s : symbols) mean_hint += std::min(s.hint, 32.0);
  mean_hint /= static_cast<double>(symbols.size());
  EXPECT_GT(mean_hint, 1.0);
}

TEST(WaveformPpArqTest, CompletesOverCleanLink) {
  arq::PpArqConfig arq_config;
  Rng rng(224);
  const auto stats =
      RunWaveformPpArq(150, arq_config, CleanParams(), rng);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.data_transmissions, 1u);
}

TEST(WaveformPpArqTest, RecoversFromCollisions) {
  auto params = CleanParams();
  params.collision_probability = 0.5;
  params.interferer_relative_db = 0.0;  // equal power: real damage
  params.interferer_octets = 60;
  params.seed = 41;
  arq::PpArqConfig arq_config;
  Rng rng(225);
  const auto stats = RunWaveformPpArq(250, arq_config, params, rng);
  EXPECT_TRUE(stats.success);
}

TEST(WaveformPpArqTest, PartialRetransmissionsSmallerThanPacket) {
  // The Figure 16 property on the real waveform link: retransmission
  // frames are (median) well below the 250-byte packet size.
  auto params = CleanParams();
  params.collision_probability = 0.6;
  params.interferer_relative_db = 0.0;
  params.interferer_octets = 60;
  params.seed = 42;
  arq::PpArqConfig arq_config;
  Rng rng(226);

  std::vector<std::size_t> retx_bits;
  for (int i = 0; i < 6; ++i) {
    const auto stats = RunWaveformPpArq(250, arq_config, params, rng);
    EXPECT_TRUE(stats.success);
    retx_bits.insert(retx_bits.end(), stats.retransmission_bits.begin(),
                     stats.retransmission_bits.end());
  }
  ASSERT_FALSE(retx_bits.empty());
  std::size_t below_full = 0;
  for (const auto bits : retx_bits) {
    if (bits < 250 * 8) ++below_full;
  }
  // The majority of retransmissions are partial.
  EXPECT_GT(2 * below_full, retx_bits.size());
}

TEST(WaveformRelayTest, ComparisonGrowsRelayLegOnDemand) {
  // Without relay params the comparison is the two-strategy original.
  auto params = CleanParams();
  const auto duplex = CompareRecoveryStrategies(60, {}, params, 51);
  EXPECT_FALSE(duplex.relay.has_value());
  EXPECT_TRUE(duplex.chunk.success);
  EXPECT_TRUE(duplex.coded.success);
  // No relay leg -> no shared medium -> nothing to recover from.
  EXPECT_EQ(duplex.collided_recovered, 0u);
}

TEST(WaveformRelayTest, RelayRecoversOverDegradedDirectLink) {
  // Degraded, collision-prone direct path; the relay overhears and
  // reaches the destination over clean hops.
  auto direct = CleanParams();
  direct.ec_n0_db = 5.0;
  direct.collision_probability = 0.6;
  direct.interferer_relative_db = 0.0;
  direct.interferer_octets = 60;
  direct.seed = 52;

  RelayWaveformParams relay;
  relay.overhear = CleanParams();
  relay.overhear.seed = 53;
  relay.relay_link = CleanParams();
  relay.relay_link.seed = 54;

  const auto cmp = CompareRecoveryStrategies(100, {}, direct, 55, &relay);
  ASSERT_TRUE(cmp.relay.has_value());
  EXPECT_TRUE(cmp.relay->totals.success);
  ASSERT_EQ(cmp.relay->parties.size(), 3u);
  // The source never pays more repair than it does carrying it alone.
  std::size_t coded_repair_bits = 0;
  for (const auto bits : cmp.coded.retransmission_bits) {
    coded_repair_bits += bits;
  }
  EXPECT_GT(coded_repair_bits, 0u);
  EXPECT_LE(cmp.relay->parties[arq::kSessionSourceId].repair_bits,
            coded_repair_bits);
  // Collided-but-clean frames are reported separately from corrupted
  // ones and mirror the shared medium's reference count.
  EXPECT_EQ(cmp.collided_recovered,
            cmp.relay_medium.medium.reference_collided_recovered_frames);
  EXPECT_LE(cmp.collided_recovered,
            cmp.relay_medium.medium.reference_collision_frames);
}

TEST(WaveformRelayTest, TwoRelaySessionRunsOverRealChannels) {
  // Degraded direct path, two overhearing relays on their own real
  // waveform hops; the N-party session completes and accounts one
  // party slot per relay.
  auto direct = CleanParams();
  direct.ec_n0_db = 5.0;
  direct.collision_probability = 0.6;
  direct.interferer_relative_db = 0.0;
  direct.interferer_octets = 60;
  direct.seed = 61;

  std::vector<RelayWaveformParams> relays(2);
  relays[0].overhear = CleanParams();
  relays[0].overhear.seed = 62;
  relays[0].relay_link = CleanParams();
  relays[0].relay_link.seed = 63;
  relays[1].overhear = CleanParams();
  relays[1].overhear.seed = 64;
  relays[1].relay_link = CleanParams();
  relays[1].relay_link.seed = 65;

  Rng payload_rng(66);
  const auto stats =
      RunWaveformMultiRelayRecovery(150, {}, direct, relays, payload_rng);
  EXPECT_TRUE(stats.totals.success);
  ASSERT_EQ(stats.parties.size(), 4u);
  EXPECT_GT(stats.parties[arq::kSessionRelayId].repair_bits +
                stats.parties[arq::kSessionRelayId + 1].repair_bits,
            0u);
}

TEST(WaveformRelayTest, SharedInterfererCorrelatesListenerLosses) {
  // The same collision-prone direct path and two clean-ish overhearers,
  // run under both correlation modes over varied per-packet seeds. The
  // shared medium makes every interferer draw hit the whole roster:
  // every collided destination copy is a collided overhearer copy, and
  // every lost destination copy is a lost overhearer copy — while the
  // independent legs keep coincidence-level overlap only.
  const auto run = [&](arq::CollisionCorrelation corr) {
    struct Totals {
      std::size_t ok = 0;
      arq::SharedMediumStats medium;
    } totals;
    for (int p = 0; p < 5; ++p) {
      WaveformChannelParams direct = CleanParams();
      direct.ec_n0_db = 4.5;
      direct.collision_probability = 0.7;
      direct.interferer_relative_db = 3.0;
      direct.interferer_octets = 100;
      direct.seed = 520 + 17 * p;
      std::vector<RelayWaveformParams> relays(2);
      for (int r = 0; r < 2; ++r) {
        relays[r].overhear = direct;
        relays[r].overhear.ec_n0_db = 10.0;
        relays[r].overhear.seed = 7000 + 100 * p + r;
        relays[r].relay_link = direct;
        relays[r].relay_link.ec_n0_db = 10.0;
        relays[r].relay_link.collision_probability = 0.1;
        relays[r].relay_link.seed = 8000 + 100 * p + r;
      }
      Rng payload_rng(66 + p);
      WaveformMediumStats ms;
      const auto stats = RunWaveformMultiRelayRecovery(
          100, {}, direct, relays, payload_rng, corr, &ms);
      if (stats.totals.success) ++totals.ok;
      EXPECT_EQ(ms.listeners.size(), 3u);  // destination + two overhearers
      totals.medium.broadcast_frames += ms.medium.broadcast_frames;
      totals.medium.reference_collision_frames +=
          ms.medium.reference_collision_frames;
      totals.medium.reference_corrupted_frames +=
          ms.medium.reference_corrupted_frames;
      totals.medium.joint_collision_frames += ms.medium.joint_collision_frames;
      totals.medium.joint_corrupted_frames += ms.medium.joint_corrupted_frames;
    }
    return totals;
  };

  const auto independent = run(arq::CollisionCorrelation::kIndependent);
  const auto shared = run(arq::CollisionCorrelation::kSharedInterferer);
  EXPECT_EQ(independent.ok, 5u);
  EXPECT_EQ(shared.ok, 5u);

  // Shared mode: a collision at the destination IS a collision at the
  // overhearers, and with both overhearers inside the burst's
  // footprint, every direct loss is a joint loss.
  ASSERT_GT(shared.medium.reference_collision_frames, 0u);
  EXPECT_EQ(shared.medium.joint_collision_frames,
            shared.medium.reference_collision_frames);
  ASSERT_GT(shared.medium.reference_corrupted_frames, 0u);
  EXPECT_EQ(arq::OverhearLossGivenDirectLoss(shared.medium), 1.0);
  // Independent mode: private draws spare the overhearers on some of
  // the destination's bad transmissions.
  EXPECT_LT(arq::OverhearLossGivenDirectLoss(independent.medium), 1.0);
}

}  // namespace
}  // namespace ppr::core
