#include "ppr/link.h"

#include <gtest/gtest.h>

namespace ppr::core {
namespace {

WaveformChannelParams CleanParams() {
  WaveformChannelParams params;
  params.pipeline.modem.samples_per_chip = 4;
  params.pipeline.max_payload_octets = 600;
  params.ec_n0_db = 12.0;  // effectively error-free
  params.seed = 31;
  return params;
}

BitVec RandomPayloadBits(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

TEST(WaveformChannelTest, CleanChannelDeliversExactBits) {
  const auto channel = MakeWaveformChannel(CleanParams());
  Rng rng(221);
  const BitVec payload = RandomPayloadBits(rng, 120);
  const auto symbols = channel(payload);
  ASSERT_EQ(symbols.size(), payload.size() / 4);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(symbols[i].symbol, payload.ReadUint(i * 4, 4));
  }
}

TEST(WaveformChannelTest, HandlesNonOctetBodies) {
  // Retransmission wires are nibble- but not octet-aligned; the channel
  // must pad and trim transparently.
  const auto channel = MakeWaveformChannel(CleanParams());
  Rng rng(222);
  BitVec payload;
  for (int i = 0; i < 101; ++i) payload.AppendUint(rng.UniformInt(16), 4);
  ASSERT_NE(payload.size() % 8, 0u);
  const auto symbols = channel(payload);
  ASSERT_EQ(symbols.size(), 101u);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(symbols[i].symbol, payload.ReadUint(i * 4, 4));
  }
}

TEST(WaveformChannelTest, NoisyChannelReportsBadHints) {
  auto params = CleanParams();
  params.ec_n0_db = -2.0;  // chip errors ~21%: plenty of corruption
  const auto channel = MakeWaveformChannel(params);
  Rng rng(223);
  const BitVec payload = RandomPayloadBits(rng, 200);
  const auto symbols = channel(payload);
  double mean_hint = 0.0;
  for (const auto& s : symbols) mean_hint += std::min(s.hint, 32.0);
  mean_hint /= static_cast<double>(symbols.size());
  EXPECT_GT(mean_hint, 1.0);
}

TEST(WaveformPpArqTest, CompletesOverCleanLink) {
  arq::PpArqConfig arq_config;
  Rng rng(224);
  const auto stats =
      RunWaveformPpArq(150, arq_config, CleanParams(), rng);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.data_transmissions, 1u);
}

TEST(WaveformPpArqTest, RecoversFromCollisions) {
  auto params = CleanParams();
  params.collision_probability = 0.5;
  params.interferer_relative_db = 0.0;  // equal power: real damage
  params.interferer_octets = 60;
  params.seed = 41;
  arq::PpArqConfig arq_config;
  Rng rng(225);
  const auto stats = RunWaveformPpArq(250, arq_config, params, rng);
  EXPECT_TRUE(stats.success);
}

TEST(WaveformPpArqTest, PartialRetransmissionsSmallerThanPacket) {
  // The Figure 16 property on the real waveform link: retransmission
  // frames are (median) well below the 250-byte packet size.
  auto params = CleanParams();
  params.collision_probability = 0.6;
  params.interferer_relative_db = 0.0;
  params.interferer_octets = 60;
  params.seed = 42;
  arq::PpArqConfig arq_config;
  Rng rng(226);

  std::vector<std::size_t> retx_bits;
  for (int i = 0; i < 6; ++i) {
    const auto stats = RunWaveformPpArq(250, arq_config, params, rng);
    EXPECT_TRUE(stats.success);
    retx_bits.insert(retx_bits.end(), stats.retransmission_bits.begin(),
                     stats.retransmission_bits.end());
  }
  ASSERT_FALSE(retx_bits.empty());
  std::size_t below_full = 0;
  for (const auto bits : retx_bits) {
    if (bits < 250 * 8) ++below_full;
  }
  // The majority of retransmissions are partial.
  EXPECT_GT(2 * below_full, retx_bits.size());
}

}  // namespace
}  // namespace ppr::core
