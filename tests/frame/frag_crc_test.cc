#include "frame/frag_crc.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::frame {
namespace {

std::vector<std::uint8_t> RandomPayload(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return payload;
}

TEST(FragmentPlanTest, EvenSplit) {
  const FragmentPlan plan(100, 4);
  EXPECT_EQ(plan.num_fragments(), 4u);
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(plan.FragmentSize(f), 25u);
    EXPECT_EQ(plan.FragmentOffset(f), 25u * f);
  }
  EXPECT_EQ(plan.WireOctets(), 100u + 16u);
}

TEST(FragmentPlanTest, UnevenSplitFrontLoadsRemainder) {
  const FragmentPlan plan(10, 3);  // 4, 3, 3
  EXPECT_EQ(plan.FragmentSize(0), 4u);
  EXPECT_EQ(plan.FragmentSize(1), 3u);
  EXPECT_EQ(plan.FragmentSize(2), 3u);
  EXPECT_EQ(plan.FragmentOffset(0), 0u);
  EXPECT_EQ(plan.FragmentOffset(1), 4u);
  EXPECT_EQ(plan.FragmentOffset(2), 7u);
}

TEST(FragmentPlanTest, ClampsFragmentsToPayloadSize) {
  const FragmentPlan plan(3, 10);
  EXPECT_EQ(plan.num_fragments(), 3u);  // no empty fragments
}

TEST(FragmentPlanTest, RejectsZeroFragments) {
  EXPECT_THROW(FragmentPlan(10, 0), std::invalid_argument);
}

TEST(FragmentPlanTest, OffsetsTileThePayload) {
  Rng rng(95);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(2000);
    const std::size_t f = 1 + rng.UniformInt(50);
    const FragmentPlan plan(n, f);
    std::size_t covered = 0;
    for (std::size_t i = 0; i < plan.num_fragments(); ++i) {
      EXPECT_EQ(plan.FragmentOffset(i), covered);
      covered += plan.FragmentSize(i);
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(FragCrcTest, CleanWireDeliversEverything) {
  Rng rng(96);
  const auto payload = RandomPayload(rng, 300);
  const FragmentPlan plan(payload.size(), 6);
  const auto wire = BuildFragmentedPayload(payload, plan);
  ASSERT_EQ(wire.size(), plan.WireOctets());

  const auto result = CheckFragmentedPayload(wire, plan);
  EXPECT_EQ(result.delivered_octets, payload.size());
  EXPECT_EQ(result.payload, payload);
  for (bool ok : result.fragment_ok) EXPECT_TRUE(ok);
}

TEST(FragCrcTest, CorruptionLosesOnlyTheTouchedFragment) {
  Rng rng(97);
  const auto payload = RandomPayload(rng, 300);
  const FragmentPlan plan(payload.size(), 6);
  auto wire = BuildFragmentedPayload(payload, plan);

  // Corrupt one byte inside fragment 2's data region.
  const std::size_t frag2_wire_offset =
      plan.FragmentOffset(2) + 2 * 4;  // data before it + two CRCs
  wire[frag2_wire_offset + 1] ^= 0xFF;

  const auto result = CheckFragmentedPayload(wire, plan);
  EXPECT_FALSE(result.fragment_ok[2]);
  EXPECT_EQ(result.delivered_octets, payload.size() - plan.FragmentSize(2));
  for (std::size_t f = 0; f < plan.num_fragments(); ++f) {
    if (f != 2) {
      EXPECT_TRUE(result.fragment_ok[f]) << f;
    }
  }
  // Unaffected fragments deliver their exact bytes.
  for (std::size_t i = 0; i < plan.FragmentSize(0); ++i) {
    EXPECT_EQ(result.payload[i], payload[i]);
  }
}

TEST(FragCrcTest, CorruptCrcFieldLosesFragment) {
  Rng rng(98);
  const auto payload = RandomPayload(rng, 120);
  const FragmentPlan plan(payload.size(), 3);
  auto wire = BuildFragmentedPayload(payload, plan);
  // Last 4 octets are fragment 2's CRC.
  wire[wire.size() - 1] ^= 0x01;
  const auto result = CheckFragmentedPayload(wire, plan);
  EXPECT_FALSE(result.fragment_ok[2]);
  EXPECT_TRUE(result.fragment_ok[0]);
  EXPECT_TRUE(result.fragment_ok[1]);
}

TEST(FragCrcTest, WireSizeMismatchThrows) {
  const FragmentPlan plan(100, 4);
  const std::vector<std::uint8_t> short_wire(50, 0);
  EXPECT_THROW(CheckFragmentedPayload(short_wire, plan),
               std::invalid_argument);
}

// Sweep fragment counts (the Table 2 axis): all-clean wires must always
// deliver the full payload regardless of fragmentation.
class FragmentCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FragmentCountSweep, CleanRoundTrip) {
  Rng rng(99);
  const auto payload = RandomPayload(rng, 1500);
  const FragmentPlan plan(payload.size(), GetParam());
  const auto wire = BuildFragmentedPayload(payload, plan);
  const auto result = CheckFragmentedPayload(wire, plan);
  EXPECT_EQ(result.payload, payload);
}

INSTANTIATE_TEST_SUITE_P(Table2Counts, FragmentCountSweep,
                         ::testing::Values(1, 10, 30, 100, 300));

}  // namespace
}  // namespace ppr::frame
