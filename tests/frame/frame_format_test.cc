#include "frame/frame_format.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::frame {
namespace {

TEST(FrameHeaderTest, EncodeDecodeRoundTrip) {
  FrameHeader h;
  h.length = 1500;
  h.dst = 0xBEEF;
  h.src = 0xCAFE;
  h.seq = 42;
  const auto octets = EncodeHeader(h);
  ASSERT_EQ(octets.size(), kHeaderOctets);
  const auto decoded = DecodeHeader(octets);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, h);
}

TEST(FrameHeaderTest, CrcDetectsCorruption) {
  FrameHeader h;
  h.length = 250;
  h.dst = 1;
  h.src = 2;
  h.seq = 3;
  auto octets = EncodeHeader(h);
  for (std::size_t i = 0; i < octets.size(); ++i) {
    auto copy = octets;
    copy[i] ^= 0x01;
    EXPECT_FALSE(DecodeHeader(copy).has_value()) << "octet " << i;
  }
}

TEST(FrameHeaderTest, RejectsShortInput) {
  const std::vector<std::uint8_t> octets(kHeaderOctets - 1, 0);
  EXPECT_FALSE(DecodeHeader(octets).has_value());
}

TEST(FrameLayoutTest, OffsetsArePacked) {
  const FrameLayout layout(1500);
  EXPECT_EQ(layout.HeaderOffset(), kSyncPrefixOctets);
  EXPECT_EQ(layout.PayloadOffset(), kSyncPrefixOctets + kHeaderOctets);
  EXPECT_EQ(layout.PayloadCrcOffset(), layout.PayloadOffset() + 1500);
  EXPECT_EQ(layout.TrailerOffset(), layout.PayloadCrcOffset() + 4);
  EXPECT_EQ(layout.PostambleOffset(), layout.TrailerOffset() + kTrailerOctets);
  EXPECT_EQ(layout.TotalOctets(), layout.PostambleOffset() + kSyncSuffixOctets);
}

TEST(FrameLayoutTest, TotalsForPaperFrameSizes) {
  // 1500-byte payload: 34 octets of overhead.
  EXPECT_EQ(FrameLayout(1500).TotalOctets(), 1534u);
  EXPECT_EQ(FrameLayout(250).TotalOctets(), 284u);
  EXPECT_EQ(FrameLayout(1500).TotalSymbols(), 2 * 1534u);
  EXPECT_EQ(FrameLayout(1500).TotalChips(), 64 * 1534u);
}

TEST(FrameLayoutTest, BodyExcludesSyncFields) {
  const FrameLayout layout(100);
  EXPECT_EQ(layout.BodyOctets(),
            kHeaderOctets + 100 + kPayloadCrcOctets + kTrailerOctets);
}

TEST(BuildFrameOctetsTest, LayoutAndContents) {
  Rng rng(91);
  std::vector<std::uint8_t> payload(64);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  FrameHeader h;
  h.length = static_cast<std::uint16_t>(payload.size());
  h.dst = 7;
  h.src = 9;
  h.seq = 1;

  const auto octets = BuildFrameOctets(h, payload);
  const FrameLayout layout(payload.size());
  ASSERT_EQ(octets.size(), layout.TotalOctets());

  // Sync prefix.
  for (std::size_t i = 0; i < kPreambleOctets; ++i) {
    EXPECT_EQ(octets[i], kPreambleOctet);
  }
  EXPECT_EQ(octets[kPreambleOctets], kSfdOctet);

  // Header parses.
  const auto hdr = DecodeHeader(
      std::span(octets).subspan(layout.HeaderOffset(), kHeaderOctets));
  ASSERT_TRUE(hdr.has_value());
  EXPECT_EQ(*hdr, h);

  // Payload is verbatim.
  for (std::size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(octets[layout.PayloadOffset() + i], payload[i]);
  }

  // Trailer replicates the header bytes exactly.
  const auto trailer = DecodeHeader(
      std::span(octets).subspan(layout.TrailerOffset(), kTrailerOctets));
  ASSERT_TRUE(trailer.has_value());
  EXPECT_EQ(*trailer, h);

  // Sync suffix.
  for (std::size_t i = 0; i < kPostambleOctets; ++i) {
    EXPECT_EQ(octets[layout.PostambleOffset() + i], kPostambleOctet);
  }
  EXPECT_EQ(octets[layout.PostambleOffset() + kPostambleOctets], kPostSfdOctet);
}

TEST(BuildFrameOctetsTest, PayloadCrcMatches) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  FrameHeader h;
  h.length = 5;
  const auto octets = BuildFrameOctets(h, payload);
  const FrameLayout layout(5);
  const std::uint32_t embedded =
      (static_cast<std::uint32_t>(octets[layout.PayloadCrcOffset()]) << 24) |
      (static_cast<std::uint32_t>(octets[layout.PayloadCrcOffset() + 1]) << 16) |
      (static_cast<std::uint32_t>(octets[layout.PayloadCrcOffset() + 2]) << 8) |
      static_cast<std::uint32_t>(octets[layout.PayloadCrcOffset() + 3]);
  EXPECT_EQ(embedded, PayloadCrc(payload));
}

TEST(SyncPatternsTest, AreDistinct) {
  const auto pre = PreamblePatternOctets();
  const auto post = PostamblePatternOctets();
  EXPECT_EQ(pre.size(), post.size());
  EXPECT_NE(pre, post);
  // Both the run and the delimiter differ, so even partial overlaps do
  // not alias.
  EXPECT_NE(pre.front(), post.front());
  EXPECT_NE(pre.back(), post.back());
}

TEST(BuildFrameOctetsTest, EmptyPayload) {
  FrameHeader h;
  h.length = 0;
  const auto octets = BuildFrameOctets(h, {});
  EXPECT_EQ(octets.size(), FrameLayout(0).TotalOctets());
}

}  // namespace
}  // namespace ppr::frame
