#include "phy/despreader.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/channel.h"
#include "phy/spreader.h"

namespace ppr::phy {
namespace {

BitVec RandomOctetBits(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

TEST(DespreadHardTest, CleanChipsRoundTrip) {
  const ChipCodebook cb;
  Rng rng(41);
  const BitVec bits = RandomOctetBits(rng, 32);
  const BitVec chips = SpreadBits(cb, bits);
  const auto decoded = DespreadHard(cb, chips);
  ASSERT_EQ(decoded.size(), bits.size() / 4);
  for (const auto& d : decoded) {
    EXPECT_EQ(d.hamming_distance, 0);
    EXPECT_DOUBLE_EQ(d.hint, 0.0);
  }
  EXPECT_EQ(DecodedSymbolsToBits(decoded), bits);
}

TEST(DespreadHardTest, RejectsPartialCodeword) {
  const ChipCodebook cb;
  EXPECT_THROW(DespreadHard(cb, BitVec(31, false)), std::invalid_argument);
}

TEST(DespreadHardTest, HintEqualsInjectedErrorCountWhenSmall) {
  const ChipCodebook cb;
  Rng rng(42);
  for (int errors = 0; errors <= 5; ++errors) {
    const BitVec bits = RandomOctetBits(rng, 2);
    BitVec chips = SpreadBits(cb, bits);
    // Flip `errors` chips of the first codeword.
    for (int e = 0; e < errors; ++e) chips.Flip(static_cast<std::size_t>(e));
    const auto decoded = DespreadHard(cb, chips);
    EXPECT_EQ(decoded[0].hamming_distance, errors);
  }
}

TEST(DespreadHardTest, HeavyCorruptionYieldsLargeHint) {
  const ChipCodebook cb;
  Rng rng(43);
  const BitVec bits = RandomOctetBits(rng, 8);
  BitVec chips = SpreadBits(cb, bits);
  // 50% chip error rate: effectively random chips.
  for (std::size_t i = 0; i < chips.size(); ++i) {
    if (rng.Bernoulli(0.5)) chips.Flip(i);
  }
  const auto decoded = DespreadHard(cb, chips);
  double mean_hint = 0.0;
  for (const auto& d : decoded) mean_hint += d.hint;
  mean_hint /= static_cast<double>(decoded.size());
  // Random 32-chip words sit far from every codeword.
  EXPECT_GT(mean_hint, 6.0);
}

TEST(DespreadSoftTest, HammingKindMatchesHardDecoder) {
  const ChipCodebook cb;
  Rng rng(44);
  const BitVec bits = RandomOctetBits(rng, 16);
  const BitVec chips = SpreadBits(cb, bits);
  std::vector<double> soft(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    soft[i] = (chips.Get(i) ? 1.0 : -1.0) + rng.Normal(0.0, 0.3);
  }
  BitVec hard;
  for (double v : soft) hard.PushBack(v >= 0.0);

  const auto via_soft = DespreadSoft(cb, soft, HintKind::kHammingDistance);
  const auto via_hard = DespreadHard(cb, hard);
  ASSERT_EQ(via_soft.size(), via_hard.size());
  for (std::size_t i = 0; i < via_soft.size(); ++i) {
    EXPECT_EQ(via_soft[i].symbol, via_hard[i].symbol);
    EXPECT_EQ(via_soft[i].hamming_distance, via_hard[i].hamming_distance);
  }
}

TEST(DespreadSoftTest, CorrelationHintIsMonotoneLowerIsBetter) {
  // A cleaner codeword must not get a worse (higher) correlation hint
  // than a heavily corrupted one, on average (monotonicity contract,
  // section 3.3).
  const ChipCodebook cb;
  Rng rng(45);
  double clean_hint = 0.0, noisy_hint = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const BitVec bits = RandomOctetBits(rng, 1);
    const BitVec chips = SpreadBits(cb, bits);
    std::vector<double> clean(chips.size()), noisy(chips.size());
    for (std::size_t i = 0; i < chips.size(); ++i) {
      const double level = chips.Get(i) ? 1.0 : -1.0;
      clean[i] = level + rng.Normal(0.0, 0.1);
      noisy[i] = level + rng.Normal(0.0, 1.2);
    }
    clean_hint +=
        DespreadSoft(cb, clean, HintKind::kSoftCorrelation)[0].hint;
    noisy_hint +=
        DespreadSoft(cb, noisy, HintKind::kSoftCorrelation)[0].hint;
  }
  EXPECT_LT(clean_hint / trials, noisy_hint / trials);
}

TEST(DespreadSoftTest, MatchedFilterEnergyHintTracksSignalLevel) {
  const ChipCodebook cb;
  Rng rng(46);
  const BitVec bits = RandomOctetBits(rng, 1);
  const BitVec chips = SpreadBits(cb, bits);
  std::vector<double> strong(chips.size()), weak(chips.size());
  for (std::size_t i = 0; i < chips.size(); ++i) {
    const double level = chips.Get(i) ? 1.0 : -1.0;
    strong[i] = 2.0 * level;
    weak[i] = 0.2 * level;
  }
  const auto s = DespreadSoft(cb, strong, HintKind::kMatchedFilterEnergy);
  const auto w = DespreadSoft(cb, weak, HintKind::kMatchedFilterEnergy);
  EXPECT_LT(s[0].hint, w[0].hint);  // stronger signal -> better hint
}

TEST(ToLogicalNibbleOrderTest, SwapsPairs) {
  std::vector<DecodedSymbol> tx(4);
  tx[0].symbol = 0x7;  // low nibble of octet 0 (transmitted first)
  tx[1].symbol = 0xA;  // high nibble of octet 0
  tx[2].symbol = 0x4;
  tx[3].symbol = 0x3;
  const auto logical = ToLogicalNibbleOrder(tx);
  EXPECT_EQ(logical[0].symbol, 0xA);
  EXPECT_EQ(logical[1].symbol, 0x7);
  EXPECT_EQ(logical[2].symbol, 0x3);
  EXPECT_EQ(logical[3].symbol, 0x4);
}

TEST(ToLogicalNibbleOrderTest, RejectsOddCount) {
  EXPECT_THROW(ToLogicalNibbleOrder(std::vector<DecodedSymbol>(3)),
               std::invalid_argument);
}

// Sweep chip error rates: decoded-symbol error rate should grow with
// chip error rate, and the Hamming hint should separate correct from
// incorrect codewords (the Figure 3 property).
class ChipErrorSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ChipErrorSweepTest, HintSeparatesCorrectFromIncorrect) {
  const double p = GetParam();
  const ChipCodebook cb;
  Rng rng(47);
  double correct_hint_sum = 0.0;
  std::size_t correct_n = 0;
  double incorrect_hint_sum = 0.0;
  std::size_t incorrect_n = 0;

  for (int trial = 0; trial < 3000; ++trial) {
    const auto sym = static_cast<std::uint8_t>(rng.UniformInt(16));
    const ChipWord sent = cb.Codeword(sym);
    const ChipWord received = sent ^ SampleChipErrorMask(rng, p);
    int distance = 0;
    const int decoded = cb.DecodeHard(received, &distance);
    if (decoded == sym) {
      correct_hint_sum += distance;
      ++correct_n;
    } else {
      incorrect_hint_sum += distance;
      ++incorrect_n;
    }
  }
  ASSERT_GT(correct_n, 0u);
  if (incorrect_n > 10) {
    EXPECT_GT(incorrect_hint_sum / static_cast<double>(incorrect_n),
              correct_hint_sum / static_cast<double>(correct_n));
  }
}

INSTANTIATE_TEST_SUITE_P(ErrorRates, ChipErrorSweepTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.3));

}  // namespace
}  // namespace ppr::phy
