#include "phy/msk_modem.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "phy/channel.h"

namespace ppr::phy {
namespace {

BitVec RandomChips(Rng& rng, std::size_t n) {
  BitVec chips;
  for (std::size_t i = 0; i < n; ++i) chips.PushBack(rng.Bernoulli(0.5));
  return chips;
}

TEST(MskModulatorTest, OutputLength) {
  ModemConfig config;
  config.samples_per_chip = 4;
  const MskModulator mod(config);
  const BitVec chips(100, false);
  EXPECT_EQ(mod.Modulate(chips).size(), mod.NumSamples(100));
  EXPECT_EQ(mod.NumSamples(100), 101u * 4u);
}

TEST(MskModulatorTest, RejectsTooFewSamplesPerChip) {
  ModemConfig config;
  config.samples_per_chip = 1;
  EXPECT_THROW(MskModulator mod(config), std::invalid_argument);
}

TEST(MskModulatorTest, EvenChipsOnIChannelOddOnQ) {
  ModemConfig config;
  config.samples_per_chip = 8;
  const MskModulator mod(config);

  // Single chip 0 (even index): all energy on I, none on Q.
  BitVec one_chip;
  one_chip.PushBack(true);
  const auto wave = mod.Modulate(one_chip);
  double i_energy = 0.0, q_energy = 0.0;
  for (const auto& s : wave) {
    i_energy += s.real() * s.real();
    q_energy += s.imag() * s.imag();
  }
  EXPECT_GT(i_energy, 0.0);
  EXPECT_DOUBLE_EQ(q_energy, 0.0);

  // Two chips: the second (odd) chip puts energy on Q.
  BitVec two_chips;
  two_chips.PushBack(true);
  two_chips.PushBack(true);
  const auto wave2 = mod.Modulate(two_chips);
  q_energy = 0.0;
  for (const auto& s : wave2) q_energy += s.imag() * s.imag();
  EXPECT_GT(q_energy, 0.0);
}

TEST(MskModulatorTest, ConstantEnvelopeInSteadyState) {
  // MSK is constant-envelope: once both channels carry pulses, |s(t)|
  // is constant (half-sine pulses on I/Q offset by one chip).
  ModemConfig config;
  config.samples_per_chip = 16;
  const MskModulator mod(config);
  Rng rng(51);
  const BitVec chips = RandomChips(rng, 64);
  const auto wave = mod.Modulate(chips);
  // Skip the ramp-up (first chip) and ramp-down (last chip).
  const std::size_t sps = 16;
  double min_mag = 1e9, max_mag = 0.0;
  for (std::size_t n = 2 * sps; n + 2 * sps < wave.size(); ++n) {
    const double mag = std::abs(wave[n]);
    min_mag = std::min(min_mag, mag);
    max_mag = std::max(max_mag, mag);
  }
  EXPECT_NEAR(min_mag, max_mag, 1e-9);
  EXPECT_NEAR(max_mag, 1.0, 1e-9);
}

TEST(MskDemodTest, CleanRoundTrip) {
  ModemConfig config;
  config.samples_per_chip = 4;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  Rng rng(52);
  const BitVec chips = RandomChips(rng, 256);
  const auto wave = mod.Modulate(chips);
  const auto soft = demod.Demodulate(wave, 0, chips.size());
  EXPECT_EQ(HardChips(soft), chips);
}

TEST(MskDemodTest, SoftOutputScale) {
  // A clean chip correlates to amplitude * pulse energy.
  ModemConfig config;
  config.samples_per_chip = 4;
  config.amplitude = 2.0;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  BitVec chips;
  chips.PushBack(true);
  chips.PushBack(false);
  const auto wave = mod.Modulate(chips);
  const auto soft = demod.Demodulate(wave, 0, 2);
  EXPECT_NEAR(soft[0], 2.0 * demod.PulseEnergy(), 1e-9);
  EXPECT_NEAR(soft[1], -2.0 * demod.PulseEnergy(), 1e-9);
}

TEST(MskDemodTest, PulseEnergyEqualsSamplesPerChip) {
  // sum over 2*sps samples of sin^2(pi m / (2 sps)) == sps.
  for (int sps : {2, 4, 8, 16}) {
    ModemConfig config;
    config.samples_per_chip = sps;
    const MskDemodulator demod(config);
    EXPECT_NEAR(demod.PulseEnergy(), static_cast<double>(sps), 1e-9);
  }
}

TEST(MskDemodTest, TruncatedCaptureDegradesGracefully) {
  ModemConfig config;
  config.samples_per_chip = 4;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  Rng rng(53);
  const BitVec chips = RandomChips(rng, 32);
  auto wave = mod.Modulate(chips);
  wave.resize(wave.size() / 2);  // lose the second half
  const auto soft = demod.Demodulate(wave, 0, chips.size());
  ASSERT_EQ(soft.size(), chips.size());
  // Early chips still demodulate; missing chips give ~zero soft values.
  EXPECT_NE(soft.front(), 0.0);
  EXPECT_EQ(soft.back(), 0.0);
}

TEST(MskDemodTest, DemodulateChipAtHandlesNegativeBase) {
  ModemConfig config;
  config.samples_per_chip = 4;
  const MskDemodulator demod(config);
  const SampleVec samples(64, Sample{1.0, 0.0});
  // Fully before the capture: zero.
  EXPECT_EQ(demod.DemodulateChipAt(samples, -100, true), 0.0);
  // Straddling the start: partial (positive) correlation.
  const double partial = demod.DemodulateChipAt(samples, -2, true);
  const double full = demod.DemodulateChipAt(samples, 0, true);
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, full);
}

// BER sweep: the measured chip error rate through AWGN must track the
// analytic Q(sqrt(2 Ec/N0)) within Monte-Carlo tolerance.
class MskBerTest : public ::testing::TestWithParam<double> {};

TEST_P(MskBerTest, MatchesTheoreticalChipErrorRate) {
  const double ec_n0_db = GetParam();
  const double ec_n0 = std::pow(10.0, ec_n0_db / 10.0);

  ModemConfig config;
  config.samples_per_chip = 4;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  Rng rng(54);

  const std::size_t n_chips = 60000;
  const BitVec chips = RandomChips(rng, n_chips);
  auto wave = mod.Modulate(chips);
  const double sigma =
      NoiseSigmaForEcN0(ec_n0, config.amplitude, config.samples_per_chip);
  AddAwgn(wave, sigma, rng);

  const auto soft = demod.Demodulate(wave, 0, n_chips);
  const BitVec decoded = HardChips(soft);
  const double measured =
      static_cast<double>(decoded.HammingDistance(chips)) /
      static_cast<double>(n_chips);
  const double expected = ChipErrorProbability(ec_n0);
  EXPECT_NEAR(measured, expected, std::max(0.005, 0.25 * expected))
      << "at Ec/N0 = " << ec_n0_db << " dB";
}

INSTANTIATE_TEST_SUITE_P(SnrSweep, MskBerTest,
                         ::testing::Values(0.0, 2.0, 4.0, 6.0, 8.0));

}  // namespace
}  // namespace ppr::phy
