#include "phy/spreader.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::phy {
namespace {

TEST(SpreaderTest, BitsToSymbolsLowNibbleFirst) {
  // Octet 0xA7: low nibble 0x7 is transmitted first (802.15.4
  // convention), then high nibble 0xA.
  const std::uint8_t bytes[] = {0xA7};
  const auto symbols = BitsToSymbols(BitVec::FromBytes(bytes));
  ASSERT_EQ(symbols.size(), 2u);
  EXPECT_EQ(symbols[0], 0x7);
  EXPECT_EQ(symbols[1], 0xA);
}

TEST(SpreaderTest, MultiOctetOrdering) {
  const std::uint8_t bytes[] = {0x12, 0x34};
  const auto symbols = BitsToSymbols(BitVec::FromBytes(bytes));
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_EQ(symbols[0], 0x2);
  EXPECT_EQ(symbols[1], 0x1);
  EXPECT_EQ(symbols[2], 0x4);
  EXPECT_EQ(symbols[3], 0x3);
}

TEST(SpreaderTest, SymbolsToBitsInverts) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec bits;
    const std::size_t octets = 1 + rng.UniformInt(100);
    for (std::size_t i = 0; i < octets * 8; ++i) {
      bits.PushBack(rng.Bernoulli(0.5));
    }
    EXPECT_EQ(SymbolsToBits(BitsToSymbols(bits)), bits);
  }
}

TEST(SpreaderTest, RejectsNonNibbleInput) {
  EXPECT_THROW(BitsToSymbols(BitVec::FromString("101")),
               std::invalid_argument);
}

TEST(SpreaderTest, SpreadProducesThirtyTwoChipsPerSymbol) {
  const ChipCodebook cb;
  const std::vector<std::uint8_t> symbols{0, 5, 15};
  const BitVec chips = SpreadSymbols(cb, symbols);
  EXPECT_EQ(chips.size(), 3u * kChipsPerSymbol);
}

TEST(SpreaderTest, SpreadEmitsCodebookRows) {
  const ChipCodebook cb;
  const std::vector<std::uint8_t> symbols{9};
  const BitVec chips = SpreadSymbols(cb, symbols);
  for (int i = 0; i < kChipsPerSymbol; ++i) {
    EXPECT_EQ(chips.Get(static_cast<std::size_t>(i)), cb.Chip(9, i));
  }
}

TEST(SpreaderTest, SpreadBitsRoundTripThroughCleanDecode) {
  const ChipCodebook cb;
  Rng rng(32);
  BitVec bits;
  for (int i = 0; i < 8 * 64; ++i) bits.PushBack(rng.Bernoulli(0.5));
  const BitVec chips = SpreadBits(cb, bits);
  ASSERT_EQ(chips.size(), (bits.size() / 4) * kChipsPerSymbol);

  // Decode each window and reassemble.
  std::vector<std::uint8_t> symbols;
  for (std::size_t pos = 0; pos < chips.size(); pos += kChipsPerSymbol) {
    ChipWord w = 0;
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      if (chips.Get(pos + static_cast<std::size_t>(i))) w |= ChipWord{1} << i;
    }
    symbols.push_back(static_cast<std::uint8_t>(cb.DecodeHard(w, nullptr)));
  }
  EXPECT_EQ(SymbolsToBits(symbols), bits);
}

}  // namespace
}  // namespace ppr::phy
