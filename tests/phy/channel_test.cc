#include "phy/channel.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ppr::phy {
namespace {

TEST(QFunctionTest, KnownValues) {
  EXPECT_NEAR(QFunction(0.0), 0.5, 1e-12);
  EXPECT_NEAR(QFunction(1.0), 0.158655, 1e-5);
  EXPECT_NEAR(QFunction(3.0), 0.001350, 1e-5);
  EXPECT_NEAR(QFunction(-1.0), 1.0 - 0.158655, 1e-5);
}

TEST(QFunctionTest, Monotone) {
  double prev = 1.0;
  for (double x = -4.0; x <= 4.0; x += 0.25) {
    const double q = QFunction(x);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(ChipErrorProbabilityTest, HalfAtZeroSnr) {
  EXPECT_DOUBLE_EQ(ChipErrorProbability(0.0), 0.5);
  EXPECT_DOUBLE_EQ(ChipErrorProbability(-1.0), 0.5);
}

TEST(ChipErrorProbabilityTest, DecreasesWithSnr) {
  double prev = 0.5;
  for (double snr_db = -10.0; snr_db <= 10.0; snr_db += 1.0) {
    const double p = ChipErrorProbability(std::pow(10.0, snr_db / 10.0));
    EXPECT_LE(p, prev);
    prev = p;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(AddAwgnTest, ZeroSigmaIsIdentity) {
  SampleVec samples(16, Sample{1.0, -2.0});
  Rng rng(61);
  AddAwgn(samples, 0.0, rng);
  for (const auto& s : samples) {
    EXPECT_EQ(s, (Sample{1.0, -2.0}));
  }
}

TEST(AddAwgnTest, NoisePowerMatchesSigma) {
  SampleVec samples(200000, Sample{0.0, 0.0});
  Rng rng(62);
  const double sigma = 0.7;
  AddAwgn(samples, sigma, rng);
  double power = 0.0;
  for (const auto& s : samples) power += std::norm(s);
  power /= static_cast<double>(samples.size());
  // Complex noise power = 2 * sigma^2.
  EXPECT_NEAR(power, 2.0 * sigma * sigma, 0.01);
}

TEST(ApplyGainTest, ScalesSamples) {
  SampleVec samples{{1.0, 1.0}, {2.0, -2.0}};
  ApplyGain(samples, 0.5);
  EXPECT_EQ(samples[0], (Sample{0.5, 0.5}));
  EXPECT_EQ(samples[1], (Sample{1.0, -1.0}));
}

TEST(ApplyCarrierOffsetTest, PhaseOnlyRotation) {
  SampleVec samples(8, Sample{1.0, 0.0});
  ApplyCarrierOffset(samples, 0.0, std::numbers::pi / 2);
  for (const auto& s : samples) {
    EXPECT_NEAR(s.real(), 0.0, 1e-12);
    EXPECT_NEAR(s.imag(), 1.0, 1e-12);
  }
}

TEST(ApplyCarrierOffsetTest, FrequencyAdvancesPhase) {
  SampleVec samples(4, Sample{1.0, 0.0});
  ApplyCarrierOffset(samples, 0.25, 0.0);  // quarter cycle per sample
  EXPECT_NEAR(samples[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(samples[1].imag(), 1.0, 1e-12);
  EXPECT_NEAR(samples[2].real(), -1.0, 1e-12);
  EXPECT_NEAR(samples[3].imag(), -1.0, 1e-12);
}

TEST(ApplyCarrierOffsetTest, PreservesMagnitude) {
  SampleVec samples{{3.0, 4.0}, {-1.0, 2.0}};
  ApplyCarrierOffset(samples, 0.01, 0.3);
  EXPECT_NEAR(std::abs(samples[0]), 5.0, 1e-12);
  EXPECT_NEAR(std::abs(samples[1]), std::sqrt(5.0), 1e-12);
}

TEST(MixIntoTest, SuperposesAtOffset) {
  SampleVec mix(4, Sample{1.0, 0.0});
  const SampleVec signal{{1.0, 1.0}, {2.0, 2.0}};
  MixInto(mix, signal, 2);
  EXPECT_EQ(mix[1], (Sample{1.0, 0.0}));
  EXPECT_EQ(mix[2], (Sample{2.0, 1.0}));
  EXPECT_EQ(mix[3], (Sample{3.0, 2.0}));
}

TEST(MixIntoTest, GrowsDestination) {
  SampleVec mix;
  const SampleVec signal{{1.0, 0.0}};
  MixInto(mix, signal, 5);
  ASSERT_EQ(mix.size(), 6u);
  EXPECT_EQ(mix[4], (Sample{0.0, 0.0}));
  EXPECT_EQ(mix[5], (Sample{1.0, 0.0}));
}

TEST(MixIntoTest, AppliesGain) {
  SampleVec mix(1, Sample{0.0, 0.0});
  const SampleVec signal{{2.0, -2.0}};
  MixInto(mix, signal, 0, 0.25);
  EXPECT_EQ(mix[0], (Sample{0.5, -0.5}));
}

TEST(FractionalDelayTest, IntegerDelayShifts) {
  const SampleVec signal{{1.0, 0.0}, {2.0, 0.0}};
  const auto out = FractionalDelay(signal, 3.0);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[2], (Sample{0.0, 0.0}));
  EXPECT_EQ(out[3], (Sample{1.0, 0.0}));
  EXPECT_EQ(out[4], (Sample{2.0, 0.0}));
}

TEST(FractionalDelayTest, HalfSampleInterpolates) {
  const SampleVec signal{{2.0, 0.0}};
  const auto out = FractionalDelay(signal, 0.5);
  EXPECT_NEAR(out[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(out[1].real(), 1.0, 1e-12);
}

TEST(FractionalDelayTest, PreservesTotalMassLinearly) {
  Rng rng(63);
  SampleVec signal(50);
  double mass = 0.0;
  for (auto& s : signal) {
    s = Sample{rng.Normal(), rng.Normal()};
    mass += s.real();
  }
  const auto out = FractionalDelay(signal, 7.3);
  double out_mass = 0.0;
  for (const auto& s : out) out_mass += s.real();
  EXPECT_NEAR(out_mass, mass, 1e-9);
}

TEST(SampleChipErrorMaskTest, EdgeProbabilities) {
  Rng rng(64);
  EXPECT_EQ(SampleChipErrorMask(rng, 0.0), 0u);
  EXPECT_EQ(SampleChipErrorMask(rng, 1.0), 0xFFFFFFFFu);
  EXPECT_EQ(SampleChipErrorMask(rng, -0.5), 0u);
}

// The sampled error rate must match p across both sampler branches
// (geometric skipping below 0.1, per-chip Bernoulli above).
class ChipErrorMaskTest : public ::testing::TestWithParam<double> {};

TEST_P(ChipErrorMaskTest, MeanErrorRateMatchesP) {
  const double p = GetParam();
  Rng rng(65);
  std::size_t errors = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    errors += static_cast<std::size_t>(
        std::popcount(SampleChipErrorMask(rng, p)));
  }
  const double measured =
      static_cast<double>(errors) / (32.0 * trials);
  EXPECT_NEAR(measured, p, std::max(0.002, 0.05 * p));
}

INSTANTIATE_TEST_SUITE_P(Rates, ChipErrorMaskTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.099, 0.1,
                                           0.2, 0.5, 0.9));

TEST(NoiseSigmaForEcN0Test, InvertsDefinition) {
  // Ec/N0 = A^2 * sps / (2 sigma^2); check round trip.
  const double ec_n0 = 3.16;  // ~5 dB
  const double amplitude = 1.7;
  const int sps = 8;
  const double sigma = NoiseSigmaForEcN0(ec_n0, amplitude, sps);
  const double back = amplitude * amplitude * sps / (2.0 * sigma * sigma);
  EXPECT_NEAR(back, ec_n0, 1e-12);
}

}  // namespace
}  // namespace ppr::phy
