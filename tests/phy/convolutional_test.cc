#include "phy/convolutional.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::phy {
namespace {

BitVec RandomBits(Rng& rng, std::size_t n) {
  BitVec bits;
  for (std::size_t i = 0; i < n; ++i) bits.PushBack(rng.Bernoulli(0.5));
  return bits;
}

TEST(ConvolutionalTest, EncodeRate) {
  Rng rng(301);
  const BitVec bits = RandomBits(rng, 100);
  const BitVec coded = ConvolutionalEncode(bits);
  EXPECT_EQ(coded.size(), 2 * (100 + 6));
}

TEST(ConvolutionalTest, CleanDecodeRoundTrip) {
  Rng rng(302);
  for (const std::size_t n : {4u, 32u, 200u}) {
    const BitVec bits = RandomBits(rng, n);
    const BitVec coded = ConvolutionalEncode(bits);
    const auto result = ViterbiDecodeHard(coded, n);
    EXPECT_EQ(result.bits, bits);
    EXPECT_DOUBLE_EQ(result.path_metric, 0.0);
  }
}

TEST(ConvolutionalTest, CorrectsScatteredErrors) {
  // Free distance 10: any pattern of <= 2 well-separated errors (and
  // many denser ones) must be corrected.
  Rng rng(303);
  const BitVec bits = RandomBits(rng, 120);
  const BitVec coded = ConvolutionalEncode(bits);
  for (int trial = 0; trial < 50; ++trial) {
    BitVec corrupted = coded;
    const std::size_t a = rng.UniformInt(corrupted.size() / 2);
    const std::size_t b =
        corrupted.size() / 2 + rng.UniformInt(corrupted.size() / 2);
    corrupted.Flip(a);
    corrupted.Flip(b);
    EXPECT_EQ(ViterbiDecodeHard(corrupted, 120).bits, bits);
  }
}

TEST(ConvolutionalTest, CorrectsBscAtFivePercent) {
  Rng rng(304);
  const BitVec bits = RandomBits(rng, 400);
  const BitVec coded = ConvolutionalEncode(bits);
  int perfect = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    BitVec corrupted = coded;
    for (std::size_t i = 0; i < corrupted.size(); ++i) {
      if (rng.Bernoulli(0.05)) corrupted.Flip(i);
    }
    if (ViterbiDecodeHard(corrupted, 400).bits == bits) ++perfect;
  }
  EXPECT_GE(perfect, trials / 2);
}

TEST(ConvolutionalTest, SoftDecodingBeatsHardAtSameSnr) {
  // The textbook 2-3 dB soft-decision gain (section 3.1's rationale
  // for the correlation metric): at an Eb/N0 where hard decoding
  // starts failing, soft decoding still succeeds more often.
  Rng rng(305);
  const std::size_t n = 300;
  int hard_ok = 0, soft_ok = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const BitVec bits = RandomBits(rng, n);
    const BitVec coded = ConvolutionalEncode(bits);
    std::vector<double> soft(coded.size());
    BitVec hard;
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double level = coded.Get(i) ? 1.0 : -1.0;
      soft[i] = level + rng.Normal(0.0, 0.95);
      hard.PushBack(soft[i] >= 0.0);
    }
    if (ViterbiDecodeHard(hard, n).bits == bits) ++hard_ok;
    if (ViterbiDecodeSoft(soft, n).bits == bits) ++soft_ok;
  }
  EXPECT_GT(soft_ok, hard_ok);
}

TEST(ConvolutionalTest, ReliabilityFlagsCorruptedRegion) {
  // SOVA-style margins: bits near a burst of channel errors must carry
  // lower reliability than bits in clean regions.
  Rng rng(306);
  const std::size_t n = 200;
  const BitVec bits = RandomBits(rng, n);
  BitVec coded = ConvolutionalEncode(bits);
  // Concentrated burst in the middle of the codeword stream.
  const std::size_t burst_first = coded.size() / 2;
  for (std::size_t i = 0; i < 8; ++i) coded.Flip(burst_first + i);

  const auto result = ViterbiDecodeHard(coded, n);
  // Average reliability around the burst (info-bit index ~ burst/2) vs
  // the head of the packet.
  const std::size_t burst_bit = burst_first / 2;
  double near = 0.0, far = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    near += result.reliability[burst_bit - 8 + i];
    far += result.reliability[i];
  }
  EXPECT_LT(near, far);
}

TEST(ConvolutionalTest, SoftPhySymbolsFollowMonotonicityContract) {
  Rng rng(307);
  const std::size_t n = 160;  // 40 symbols
  const BitVec bits = RandomBits(rng, n);
  BitVec coded = ConvolutionalEncode(bits);
  for (std::size_t i = 0; i < 10; ++i) coded.Flip(100 + i);

  const auto result = ViterbiDecodeHard(coded, n);
  const auto symbols = ViterbiToSoftPhySymbols(result);
  ASSERT_EQ(symbols.size(), n / 4);
  // Decoded nibbles match the decoded bit stream.
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    EXPECT_EQ(symbols[i].symbol, result.bits.ReadUint(i * 4, 4));
  }
  // The corrupted region's symbols have worse (higher) hints than the
  // cleanest symbols.
  double min_hint = 1e18, max_hint = -1e18;
  for (const auto& s : symbols) {
    min_hint = std::min(min_hint, s.hint);
    max_hint = std::max(max_hint, s.hint);
  }
  EXPECT_LT(min_hint, max_hint);
}

TEST(ConvolutionalTest, RejectsLengthMismatch) {
  EXPECT_THROW(ViterbiDecodeHard(BitVec(10, false), 100),
               std::invalid_argument);
  EXPECT_THROW(ViterbiDecodeSoft(std::vector<double>(10, 0.0), 100),
               std::invalid_argument);
}

// Property sweep: round trip across sizes and seeds.
class ConvRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvRoundTripTest, CleanAndSingleError) {
  Rng rng(310 + GetParam());
  const BitVec bits = RandomBits(rng, GetParam());
  const BitVec coded = ConvolutionalEncode(bits);
  EXPECT_EQ(ViterbiDecodeHard(coded, GetParam()).bits, bits);
  BitVec one_err = coded;
  one_err.Flip(coded.size() / 3);
  EXPECT_EQ(ViterbiDecodeHard(one_err, GetParam()).bits, bits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvRoundTripTest,
                         ::testing::Values(8, 40, 100, 256, 500));

}  // namespace
}  // namespace ppr::phy
