#include "phy/frame_sync.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "frame/frame_format.h"
#include "phy/channel.h"
#include "phy/spreader.h"

namespace ppr::phy {
namespace {

SampleVec ModulateOctets(const ModemConfig& config,
                         const std::vector<std::uint8_t>& octets) {
  const ChipCodebook cb;
  const MskModulator mod(config);
  return mod.Modulate(SpreadBits(cb, BitVec::FromBytes(octets)));
}

ModemConfig TestModem() {
  ModemConfig config;
  config.samples_per_chip = 4;
  return config;
}

TEST(WaveformCorrelatorTest, PerfectMatchScoresOne) {
  const auto ref = ModulateOctets(TestModem(), frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);
  EXPECT_NEAR(corr.ScoreAt(ref, 0), 1.0, 1e-9);
}

TEST(WaveformCorrelatorTest, ScoreBoundedByOne) {
  Rng rng(81);
  const auto ref = ModulateOctets(TestModem(), frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);
  SampleVec junk(ref.size() * 3);
  for (auto& s : junk) s = Sample{rng.Normal(), rng.Normal()};
  for (std::size_t n = 0; n + ref.size() <= junk.size(); n += 7) {
    const double score = corr.ScoreAt(junk, n);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0 + 1e-9);
  }
}

TEST(WaveformCorrelatorTest, FindsEmbeddedPatternUnderNoise) {
  Rng rng(82);
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);

  const std::size_t offset = 777;
  SampleVec air(offset + ref.size() + 500, Sample{0.0, 0.0});
  MixInto(air, ref, offset);
  AddAwgn(air, 0.4, rng);

  const auto hits = corr.FindPeaks(air, 0.6, ref.size());
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].sample_offset, offset);
  EXPECT_GT(hits[0].score, 0.6);
}

TEST(WaveformCorrelatorTest, InvariantToPhaseRotation) {
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);
  SampleVec rotated = ref;
  ApplyCarrierOffset(rotated, 0.0, 1.1);  // constant phase offset
  EXPECT_NEAR(corr.ScoreAt(rotated, 0), 1.0, 1e-9);
}

TEST(WaveformCorrelatorTest, PreambleAndPostambleAreDistinguishable) {
  // The two sync patterns must not trigger each other's correlators,
  // otherwise a postamble could masquerade as a preamble (section 4
  // requires a well-known sequence that "differentiates it from a
  // preamble").
  const auto config = TestModem();
  const auto pre = ModulateOctets(config, frame::PreamblePatternOctets());
  const auto post = ModulateOctets(config, frame::PostamblePatternOctets());
  const WaveformCorrelator pre_corr(pre);
  const WaveformCorrelator post_corr(post);
  EXPECT_LT(pre_corr.ScoreAt(post, 0), 0.5);
  EXPECT_LT(post_corr.ScoreAt(pre, 0), 0.5);
}

TEST(WaveformCorrelatorTest, FindPeaksSeparatesTwoPatterns) {
  Rng rng(83);
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);

  const std::size_t first = 200, second = 200 + 3 * ref.size();
  SampleVec air(second + ref.size() + 200, Sample{0.0, 0.0});
  MixInto(air, ref, first);
  MixInto(air, ref, second);
  AddAwgn(air, 0.2, rng);

  const auto hits = corr.FindPeaks(air, 0.6, ref.size());
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].sample_offset, first);
  EXPECT_EQ(hits[1].sample_offset, second);
}

TEST(WaveformCorrelatorTest, NearbyPeaksKeepTheStronger) {
  // Two candidate offsets within the separation window: FindPeaks must
  // keep the higher-scoring one.
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);
  SampleVec air(ref.size() + 100, Sample{0.0, 0.0});
  MixInto(air, ref, 50);
  const auto hits = corr.FindPeaks(air, 0.3, ref.size());
  ASSERT_GE(hits.size(), 1u);
  EXPECT_EQ(hits[0].sample_offset, 50u);
}

TEST(WaveformCorrelatorTest, BestInRangeFindsMaximum) {
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);
  SampleVec air(ref.size() + 64, Sample{0.0, 0.0});
  MixInto(air, ref, 17);
  const auto best = corr.BestInRange(air, 0, air.size());
  EXPECT_EQ(best.sample_offset, 17u);
  EXPECT_NEAR(best.score, 1.0, 1e-9);
}

TEST(WaveformCorrelatorTest, EmptyOrShortInputYieldsNoHits) {
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);
  const SampleVec tiny(10, Sample{1.0, 0.0});
  EXPECT_TRUE(corr.FindPeaks(tiny, 0.5, 4).empty());
  EXPECT_EQ(corr.ScoreAt(tiny, 0), 0.0);
}

// Sweep noise levels: detection must hold at moderate noise and the
// score must degrade monotonically on average.
class SyncNoiseSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SyncNoiseSweepTest, DetectsPatternAtModerateNoise) {
  const double sigma = GetParam();
  Rng rng(84);
  const auto config = TestModem();
  const auto ref = ModulateOctets(config, frame::PreamblePatternOctets());
  const WaveformCorrelator corr(ref);

  int detected = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    SampleVec air(ref.size() + 400, Sample{0.0, 0.0});
    MixInto(air, ref, 123);
    AddAwgn(air, sigma, rng);
    const auto best = corr.BestInRange(air, 0, air.size());
    if (best.sample_offset == 123 && best.score >= 0.5) ++detected;
  }
  EXPECT_GE(detected, 18) << "sigma = " << sigma;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, SyncNoiseSweepTest,
                         ::testing::Values(0.1, 0.3, 0.5));

}  // namespace
}  // namespace ppr::phy
