#include "phy/timing_recovery.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phy/channel.h"

namespace ppr::phy {
namespace {

BitVec RandomChips(Rng& rng, std::size_t n) {
  BitVec chips;
  for (std::size_t i = 0; i < n; ++i) chips.PushBack(rng.Bernoulli(0.5));
  return chips;
}

TEST(FindChipTimingTest, RecoversInjectedOffset) {
  ModemConfig config;
  config.samples_per_chip = 8;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  Rng rng(71);
  const BitVec chips = RandomChips(rng, 128);
  const auto wave = mod.Modulate(chips);

  for (std::size_t offset : {0u, 3u, 7u, 11u, 15u}) {
    SampleVec shifted(offset, Sample{0.0, 0.0});
    shifted.insert(shifted.end(), wave.begin(), wave.end());
    const auto estimate =
        FindChipTiming(demod, shifted, 2 * config.samples_per_chip, 64);
    EXPECT_EQ(estimate.offset_samples, offset) << "offset " << offset;
  }
}

TEST(FindChipTimingTest, WorksMidStream) {
  // Non-data-aided search must lock anywhere in a transmission — the
  // property postamble decoding depends on (section 4).
  ModemConfig config;
  config.samples_per_chip = 8;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  Rng rng(72);
  const BitVec chips = RandomChips(rng, 256);
  auto wave = mod.Modulate(chips);
  AddAwgn(wave, 0.3, rng);

  // Drop the first 100 chips' samples plus 5: the best offset within
  // one pulse period should recover chip alignment (parity ambiguity
  // of one chip is inherent to an even/odd search span).
  const std::size_t drop = 100 * 8 + 5;
  const SampleVec tail(wave.begin() + drop, wave.end());
  const auto estimate =
      FindChipTiming(demod, tail, 2 * config.samples_per_chip, 64);
  // Chip boundaries in the tail occur at samples congruent to 3 mod 8.
  EXPECT_EQ(estimate.offset_samples % 8, 3u);
}

TEST(FindChipTimingTest, MetricPeaksAtTrueOffsetUnderNoise) {
  ModemConfig config;
  config.samples_per_chip = 4;
  const MskModulator mod(config);
  const MskDemodulator demod(config);
  Rng rng(73);
  const BitVec chips = RandomChips(rng, 512);
  auto wave = mod.Modulate(chips);
  AddAwgn(wave, 0.5, rng);
  const auto estimate =
      FindChipTiming(demod, wave, 2 * config.samples_per_chip, 256);
  EXPECT_EQ(estimate.offset_samples % 4, 0u);
  EXPECT_GT(estimate.metric, 0.0);
}

TEST(MuellerMullerTest, ZeroErrorOnSymmetricInput) {
  // Perfectly sampled antipodal chips produce zero timing error.
  MuellerMullerTracker tracker(0.1);
  for (int i = 0; i < 20; ++i) {
    tracker.Update(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_NEAR(tracker.Correction(), 0.0, 1e-12);
}

// Random (not alternating) chip polarities: on strictly alternating
// chips the M&M error term cancels identically, so the detector needs
// polarity runs to observe a timing offset.
std::vector<double> RandomLevels(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<double> levels(static_cast<std::size_t>(n));
  for (auto& l : levels) l = rng.Bernoulli(0.5) ? 1.0 : -1.0;
  return levels;
}

TEST(MuellerMullerTest, LateSamplingDrivesNegativeCorrection) {
  // Sampling late leaks some of the *previous* chip's polarity into the
  // current sample; the M&M error is then positive on average, so the
  // correction must move the sampling instant earlier (negative).
  MuellerMullerTracker tracker(0.05);
  const auto levels = RandomLevels(101, 400);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    tracker.Update(0.8 * levels[i] + 0.2 * levels[i - 1]);
  }
  EXPECT_LT(tracker.Correction(), 0.0);
}

TEST(MuellerMullerTest, EarlySamplingDrivesPositiveCorrection) {
  // Sampling early leaks the *next* chip's polarity.
  MuellerMullerTracker tracker(0.05);
  const auto levels = RandomLevels(102, 400);
  for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
    tracker.Update(0.8 * levels[i] + 0.2 * levels[i + 1]);
  }
  EXPECT_GT(tracker.Correction(), 0.0);
}

TEST(MuellerMullerTest, CorrectionScaleTracksGain) {
  auto run = [](double gain) {
    MuellerMullerTracker tracker(gain);
    const auto levels = RandomLevels(103, 200);
    for (std::size_t i = 1; i < levels.size(); ++i) {
      tracker.Update(0.7 * levels[i] + 0.3 * levels[i - 1]);
    }
    return tracker.Correction();
  };
  EXPECT_NEAR(run(0.1) / run(0.05), 2.0, 1e-9);
}

}  // namespace
}  // namespace ppr::phy
