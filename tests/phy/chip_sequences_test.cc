#include "phy/chip_sequences.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::phy {
namespace {

// Rows of the 802.15.4 symbol-to-chip table (chips c0..c31). Symbol 0 is
// the standard's base sequence; 1 and 8 pin down the rotation and
// odd-chip-inversion derivation rules independently.
constexpr const char* kSymbol0 = "11011001110000110101001000101110";
constexpr const char* kSymbol1 = "11101101100111000011010100100010";
constexpr const char* kSymbol8 = "10001100100101100000011101111011";

std::string CodewordString(const ChipCodebook& cb, int symbol) {
  std::string s;
  for (int i = 0; i < kChipsPerSymbol; ++i) {
    s.push_back(cb.Chip(symbol, i) ? '1' : '0');
  }
  return s;
}

TEST(ChipCodebookTest, MatchesStandardTableRows) {
  const ChipCodebook cb;
  EXPECT_EQ(CodewordString(cb, 0), kSymbol0);
  EXPECT_EQ(CodewordString(cb, 1), kSymbol1);
  EXPECT_EQ(CodewordString(cb, 8), kSymbol8);
}

TEST(ChipCodebookTest, Symbols1Through7AreRotationsOfSymbol0) {
  const ChipCodebook cb;
  for (int s = 1; s < 8; ++s) {
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      const int src = (i - 4 * s + 8 * kChipsPerSymbol) % kChipsPerSymbol;
      EXPECT_EQ(cb.Chip(s, i), cb.Chip(0, src))
          << "symbol " << s << " chip " << i;
    }
  }
}

TEST(ChipCodebookTest, UpperSymbolsInvertOddChips) {
  const ChipCodebook cb;
  for (int s = 0; s < 8; ++s) {
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      const bool expect =
          (i % 2 == 1) ? !cb.Chip(s, i) : cb.Chip(s, i);
      EXPECT_EQ(cb.Chip(s + 8, i), expect);
    }
  }
}

TEST(ChipCodebookTest, AllCodewordsDistinct) {
  const ChipCodebook cb;
  for (int a = 0; a < kNumSymbols; ++a) {
    for (int b = a + 1; b < kNumSymbols; ++b) {
      EXPECT_NE(cb.Codeword(a), cb.Codeword(b));
    }
  }
}

TEST(ChipCodebookTest, CodebookIsQuasiOrthogonal) {
  // The sparse codeword space is what gives Hamming distance its
  // discriminating power as a SoftPHY hint (section 3.2).
  const ChipCodebook cb;
  EXPECT_GE(cb.MinPairwiseDistance(), 12);
}

TEST(ChipCodebookTest, CleanCodewordsDecodeWithZeroDistance) {
  const ChipCodebook cb;
  for (int s = 0; s < kNumSymbols; ++s) {
    int distance = -1;
    EXPECT_EQ(cb.DecodeHard(cb.Codeword(s), &distance), s);
    EXPECT_EQ(distance, 0);
  }
}

TEST(ChipCodebookTest, DecodeToleratesErrorsBelowHalfMinDistance) {
  const ChipCodebook cb;
  const int tolerable = (cb.MinPairwiseDistance() - 1) / 2;
  Rng rng(21);
  for (int s = 0; s < kNumSymbols; ++s) {
    for (int trial = 0; trial < 25; ++trial) {
      ChipWord word = cb.Codeword(s);
      // Flip exactly `tolerable` distinct chips.
      int flipped = 0;
      while (flipped < tolerable) {
        const auto pos = static_cast<int>(rng.UniformInt(kChipsPerSymbol));
        const ChipWord mask = ChipWord{1} << pos;
        if ((word ^ cb.Codeword(s)) & mask) continue;  // already flipped
        word ^= mask;
        ++flipped;
      }
      int distance = -1;
      EXPECT_EQ(cb.DecodeHard(word, &distance), s);
      EXPECT_EQ(distance, tolerable);
    }
  }
}

TEST(ChipCodebookTest, DistanceReportedIsMinimumOverCodebook) {
  const ChipCodebook cb;
  Rng rng(22);
  for (int trial = 0; trial < 200; ++trial) {
    const auto word = static_cast<ChipWord>(rng.Next());
    int reported = -1;
    const int symbol = cb.DecodeHard(word, &reported);
    for (int s = 0; s < kNumSymbols; ++s) {
      EXPECT_GE(ChipHamming(word, cb.Codeword(s)), reported);
    }
    EXPECT_EQ(ChipHamming(word, cb.Codeword(symbol)), reported);
  }
}

TEST(ChipCodebookTest, SoftDecodeAgreesWithHardOnCleanAntipodalInput) {
  const ChipCodebook cb;
  for (int s = 0; s < kNumSymbols; ++s) {
    std::array<double, kChipsPerSymbol> soft{};
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      soft[static_cast<std::size_t>(i)] = cb.Chip(s, i) ? 1.0 : -1.0;
    }
    double corr = 0.0, margin = 0.0;
    EXPECT_EQ(cb.DecodeSoft(soft, &corr, &margin), s);
    EXPECT_DOUBLE_EQ(corr, kChipsPerSymbol);
    EXPECT_GT(margin, 0.0);
  }
}

TEST(ChipCodebookTest, SoftDecodeWeighsReliability) {
  // Corrupt several chips but give the corrupted ones tiny magnitude:
  // soft decoding should still pick the right symbol.
  const ChipCodebook cb;
  Rng rng(23);
  for (int s = 0; s < kNumSymbols; ++s) {
    std::array<double, kChipsPerSymbol> soft{};
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      soft[static_cast<std::size_t>(i)] = cb.Chip(s, i) ? 1.0 : -1.0;
    }
    for (int k = 0; k < 10; ++k) {
      const auto pos = rng.UniformInt(kChipsPerSymbol);
      soft[pos] = -0.05 * soft[pos];  // flipped sign, low confidence
    }
    EXPECT_EQ(cb.DecodeSoft(soft, nullptr, nullptr), s);
  }
}

TEST(ChipCodebookTest, CodewordBitsMatchesChipAccessor) {
  const ChipCodebook cb;
  for (int s = 0; s < kNumSymbols; ++s) {
    const BitVec bits = cb.CodewordBits(s);
    ASSERT_EQ(bits.size(), static_cast<std::size_t>(kChipsPerSymbol));
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      EXPECT_EQ(bits.Get(static_cast<std::size_t>(i)), cb.Chip(s, i));
    }
  }
}

// Exhaustive single-error sweep: any one-chip error must decode to the
// transmitted symbol with distance exactly 1.
class SingleChipErrorTest : public ::testing::TestWithParam<int> {};

TEST_P(SingleChipErrorTest, DecodesCorrectlyWithDistanceOne) {
  const ChipCodebook cb;
  const int s = GetParam();
  for (int pos = 0; pos < kChipsPerSymbol; ++pos) {
    const ChipWord word = cb.Codeword(s) ^ (ChipWord{1} << pos);
    int distance = -1;
    EXPECT_EQ(cb.DecodeHard(word, &distance), s);
    EXPECT_EQ(distance, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSymbols, SingleChipErrorTest,
                         ::testing::Range(0, kNumSymbols));

}  // namespace
}  // namespace ppr::phy
