#include "phy/sample_buffer.h"

#include <gtest/gtest.h>

namespace ppr::phy {
namespace {

Sample S(double v) { return Sample{v, -v}; }

TEST(SampleRingBufferTest, StartsEmpty) {
  SampleRingBuffer buf(8);
  EXPECT_EQ(buf.EndIndex(), 0u);
  EXPECT_EQ(buf.OldestAvailable(), 0u);
  EXPECT_FALSE(buf.Contains(0));
}

TEST(SampleRingBufferTest, PushAndReadBack) {
  SampleRingBuffer buf(8);
  for (int i = 0; i < 5; ++i) buf.Push(S(i));
  EXPECT_EQ(buf.EndIndex(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(buf.Contains(i));
    EXPECT_EQ(buf.At(i), S(static_cast<double>(i)));
  }
}

TEST(SampleRingBufferTest, EvictsOldestBeyondCapacity) {
  SampleRingBuffer buf(4);
  for (int i = 0; i < 10; ++i) buf.Push(S(i));
  EXPECT_EQ(buf.EndIndex(), 10u);
  EXPECT_EQ(buf.OldestAvailable(), 6u);
  EXPECT_FALSE(buf.Contains(5));
  EXPECT_TRUE(buf.Contains(6));
  for (std::uint64_t i = 6; i < 10; ++i) {
    EXPECT_EQ(buf.At(i), S(static_cast<double>(i)));
  }
}

TEST(SampleRingBufferTest, EvictedAndFutureReadAsZero) {
  SampleRingBuffer buf(4);
  for (int i = 0; i < 8; ++i) buf.Push(S(i + 1));
  EXPECT_EQ(buf.At(0), (Sample{0.0, 0.0}));   // evicted
  EXPECT_EQ(buf.At(99), (Sample{0.0, 0.0}));  // not yet written
}

TEST(SampleRingBufferTest, WindowSpansEvictionBoundary) {
  SampleRingBuffer buf(4);
  for (int i = 0; i < 6; ++i) buf.Push(S(i));  // retains 2..5
  const auto window = buf.Window(1, 4);        // 1 evicted, 2..4 live
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window[0], (Sample{0.0, 0.0}));
  EXPECT_EQ(window[1], S(2));
  EXPECT_EQ(window[2], S(3));
  EXPECT_EQ(window[3], S(4));
}

TEST(SampleRingBufferTest, PushAllMatchesIndividualPushes) {
  SampleRingBuffer a(16), b(16);
  SampleVec chunk;
  for (int i = 0; i < 10; ++i) chunk.push_back(S(i * 2));
  a.PushAll(chunk);
  for (const auto& s : chunk) b.Push(s);
  EXPECT_EQ(a.EndIndex(), b.EndIndex());
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.At(i), b.At(i));
  }
}

TEST(SampleRingBufferTest, RollbackWindowOfOneMaxPacket) {
  // The postamble use case: buffer sized to a packet; after the whole
  // packet has streamed in, every sample of it is still retrievable.
  const std::size_t packet = 1000;
  SampleRingBuffer buf(packet);
  for (std::size_t i = 0; i < packet; ++i) {
    buf.Push(S(static_cast<double>(i)));
  }
  const auto window = buf.Window(0, packet);
  for (std::size_t i = 0; i < packet; ++i) {
    EXPECT_EQ(window[i], S(static_cast<double>(i)));
  }
}

}  // namespace
}  // namespace ppr::phy
