#include "engine/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

namespace ppr::engine {
namespace {

TEST(FlowArenaTest, AllocateGivesDistinctLiveSlots) {
  FlowArena arena(64, 4);
  const FlowHandle a = arena.Allocate();
  const FlowHandle b = arena.Allocate();
  EXPECT_NE(a, b);
  EXPECT_TRUE(arena.Alive(a));
  EXPECT_TRUE(arena.Alive(b));
  EXPECT_NE(arena.Get(a), arena.Get(b));
  EXPECT_EQ(arena.active(), 2u);
}

// The generation check is the whole point of handles: a handle held
// past Retire() must be DETECTED, not silently honored against the
// slot's next occupant.
TEST(FlowArenaTest, UseAfterRetireIsDetected) {
  FlowArena arena(64);
  const FlowHandle h = arena.Allocate();
  arena.Retire(h);
  EXPECT_FALSE(arena.Alive(h));
  EXPECT_THROW(arena.Get(h), std::logic_error);
  EXPECT_THROW(arena.Retire(h), std::logic_error);  // double retire
  // The slot's NEXT occupant reuses the index but not the generation,
  // so the stale handle stays dead even with the slot live again.
  const FlowHandle next = arena.Allocate();
  EXPECT_EQ(next.index, h.index);
  EXPECT_NE(next.generation, h.generation);
  EXPECT_FALSE(arena.Alive(h));
  EXPECT_THROW(arena.Get(h), std::logic_error);
  EXPECT_TRUE(arena.Alive(next));
}

TEST(FlowArenaTest, NeverAllocatedAndOutOfRangeHandlesAreDead) {
  FlowArena arena(32);
  EXPECT_FALSE(arena.Alive(FlowHandle{0, 1}));
  EXPECT_THROW(arena.Get(FlowHandle{0, 1}), std::logic_error);
  arena.Allocate();
  EXPECT_FALSE(arena.Alive(FlowHandle{99, 1}));
  EXPECT_THROW(arena.Get(FlowHandle{99, 1}), std::logic_error);
  // Even generations are free by construction: a forged even-handle
  // never reads a slot.
  EXPECT_FALSE(arena.Alive(FlowHandle{0, 2}));
}

// LIFO reuse is deterministic: the next Allocate after a Retire
// returns exactly the retired index with its generation advanced by
// one allocate/retire cycle (two bumps).
TEST(FlowArenaTest, RetireAndReuseIsLifoAndDeterministic) {
  FlowArena arena(64, 4);
  const FlowHandle a = arena.Allocate();
  const FlowHandle b = arena.Allocate();
  const FlowHandle c = arena.Allocate();
  arena.Retire(b);
  arena.Retire(a);
  // LIFO: `a` was retired last, so it comes back first.
  const FlowHandle a2 = arena.Allocate();
  EXPECT_EQ(a2.index, a.index);
  EXPECT_EQ(a2.generation, a.generation + 2);
  const FlowHandle b2 = arena.Allocate();
  EXPECT_EQ(b2.index, b.index);
  EXPECT_EQ(b2.generation, b.generation + 2);
  EXPECT_TRUE(arena.Alive(c));
  EXPECT_EQ(arena.active(), 3u);
  EXPECT_EQ(arena.capacity(), 3u);  // no new slots were created
}

// Slabs never move: a slot pointer taken before lots of growth still
// addresses the same bytes after it.
TEST(FlowArenaTest, SlotStorageIsStableAcrossSlabGrowth) {
  FlowArena arena(16, 4);  // tiny slabs force repeated growth
  const FlowHandle h = arena.Allocate();
  std::byte* p = arena.Get(h);
  std::memset(p, 0x5A, 16);
  std::vector<FlowHandle> extra;
  for (int i = 0; i < 1000; ++i) extra.push_back(arena.Allocate());
  EXPECT_EQ(arena.Get(h), p);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(p[i], std::byte{0x5A});
  EXPECT_EQ(arena.capacity(), 1001u);
}

// 100k allocate/retire churn (the ASan/UBSan CI leg runs this test
// under sanitizers): active()/capacity() bookkeeping stays exact and
// the working set stays bounded by the high-water mark, proving
// retire-and-reuse rather than leak-and-grow.
TEST(FlowArenaTest, ChurnReusesSlotsWithoutGrowth) {
  constexpr std::size_t kChurn = 100'000;
  constexpr std::size_t kLive = 64;
  FlowArena arena(48, 32);
  std::vector<FlowHandle> live;
  for (std::size_t i = 0; i < kLive; ++i) live.push_back(arena.Allocate());
  const std::size_t high_water = arena.capacity();
  for (std::size_t i = 0; i < kChurn; ++i) {
    // Retire a rotating victim, touch the survivor set, reallocate.
    const std::size_t victim = i % kLive;
    arena.Retire(live[victim]);
    EXPECT_EQ(arena.active(), kLive - 1);
    live[victim] = arena.Allocate();
    arena.Get(live[victim])[0] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(arena.active(), kLive);
  EXPECT_EQ(arena.capacity(), high_water);
  for (const FlowHandle h : live) EXPECT_TRUE(arena.Alive(h));
}

}  // namespace
}  // namespace ppr::engine
