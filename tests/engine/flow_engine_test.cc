#include "engine/flow_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "arq/link_sim.h"
#include "arq/recovery_session.h"
#include "arq/recovery_strategy.h"
#include "common/crc.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "phy/chip_sequences.h"

namespace ppr::engine {
namespace {

EngineConfig SmallConfig(std::uint64_t seed = 1) {
  EngineConfig config;
  config.n_source = 16;
  config.symbol_bytes = 64;
  config.max_deficit = 3;
  config.record_loss = 0.2;
  config.seed = seed;
  return config;
}

bool StatsEqual(const EngineStats& a, const EngineStats& b) {
  return a.flows_spawned == b.flows_spawned &&
         a.flows_completed == b.flows_completed &&
         a.flows_failed == b.flows_failed &&
         a.compat_completed == b.compat_completed && a.rounds == b.rounds &&
         a.repairs_sent == b.repairs_sent &&
         a.repairs_delivered == b.repairs_delivered &&
         a.batch_calls == b.batch_calls && a.batch_bytes == b.batch_bytes;
}

// FinishFlow memcmps every recovered symbol against the flow's ground
// truth and throws on divergence, so "RunAll returned and everything
// completed" IS the decode-correctness assertion.
TEST(FlowEngineTest, NativeFlowsDecodeAndRetire) {
  FlowEngine engine(SmallConfig());
  std::vector<FlowHandle> handles;
  for (FlowId f = 0; f < 512; ++f) handles.push_back(engine.SpawnFlow(f));
  EXPECT_EQ(engine.active_flows(), 512u);
  engine.RunAll();
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.flows_spawned, 512u);
  EXPECT_EQ(stats.flows_completed + stats.flows_failed, 512u);
  // Small deficits against 20% record loss and a 64-round cap: a
  // failed flow would mean the solver or planner lost an equation.
  EXPECT_EQ(stats.flows_completed, 512u);
  EXPECT_EQ(engine.active_flows(), 0u);
  // Completion retires the slot: every handle is stale, detectably so.
  for (const FlowHandle h : handles) EXPECT_FALSE(engine.FlowAlive(h));
  EXPECT_GT(stats.repairs_sent, stats.repairs_delivered);  // lossy channel
  EXPECT_GT(stats.rounds, 0u);
}

// CodecKind::kReedSolomon flows precompute parity at spawn and run
// pure-bookkeeping rounds; FinishFlow still memcmps every recovered
// symbol, so completion is the decode-correctness assertion.
TEST(FlowEngineTest, ReedSolomonFlowsDecodeAndRetire) {
  EngineConfig config = SmallConfig(3);
  config.codec = fec::CodecKind::kReedSolomon;
  FlowEngine engine(config);
  for (FlowId f = 0; f < 512; ++f) engine.SpawnFlow(f);
  engine.RunAll();
  const EngineStats& stats = engine.stats();
  EXPECT_EQ(stats.flows_spawned, 512u);
  EXPECT_EQ(stats.flows_completed, 512u);
  EXPECT_EQ(engine.active_flows(), 0u);
  EXPECT_GT(stats.repairs_sent, stats.repairs_delivered);  // lossy channel
}

TEST(FlowEngineTest, ReedSolomonIsDeterministicAndRejectsOddSymbols) {
  const auto run = [](std::uint64_t seed) {
    EngineConfig config = SmallConfig(seed);
    config.codec = fec::CodecKind::kReedSolomon;
    FlowEngine engine(config);
    for (FlowId f = 0; f < 128; ++f) engine.SpawnFlow(f);
    engine.RunAll();
    return engine.stats();
  };
  EXPECT_TRUE(StatsEqual(run(9), run(9)));

  EngineConfig odd = SmallConfig();
  odd.codec = fec::CodecKind::kReedSolomon;
  odd.symbol_bytes = 63;
  EXPECT_THROW(FlowEngine{odd}, std::invalid_argument);
}

TEST(FlowEngineTest, TrajectoryIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    FlowEngine engine(SmallConfig(seed));
    for (FlowId f = 0; f < 256; ++f) engine.SpawnFlow(f);
    engine.RunAll();
    return engine.stats();
  };
  const EngineStats a = run(7);
  const EngineStats b = run(7);
  EXPECT_TRUE(StatsEqual(a, b));
  // A different seed draws different deficits/losses: some field moves.
  const EngineStats c = run(8);
  EXPECT_FALSE(StatsEqual(a, c));
}

// The batching claim, asserted structurally: with many flows due per
// tick, the mean fused-encode span must be many flows wide — far above
// the one-symbol span an unbatched per-flow encode would issue.
TEST(FlowEngineTest, BatchPlannerFusesCrossFlowSpans) {
  const EngineConfig config = SmallConfig();
  FlowEngine engine(config);
  for (FlowId f = 0; f < 256; ++f) engine.SpawnFlow(f);
  engine.RunAll();
  const EngineStats& stats = engine.stats();
  ASSERT_GT(stats.batch_calls, 0u);
  const double mean_span =
      static_cast<double>(stats.batch_bytes) / stats.batch_calls;
  EXPECT_GE(mean_span, 4.0 * config.symbol_bytes);
  // One fused call per (tick, repair slot), not one per flow: far
  // fewer calls than repairs put on the air.
  EXPECT_LT(stats.batch_calls, stats.repairs_sent / 4);
}

TEST(FlowEngineTest, RunUntilAdvancesVirtualTimeIncrementally) {
  FlowEngine engine(SmallConfig());
  for (FlowId f = 0; f < 64; ++f) engine.SpawnFlow(f);
  // First tick only: every flow gets exactly one round.
  const std::size_t first = engine.RunUntil(engine.config().round_interval);
  EXPECT_EQ(first, 64u);
  EXPECT_EQ(engine.now(), engine.config().round_interval);
  EXPECT_EQ(engine.stats().rounds, 64u);
  EXPECT_GT(engine.active_flows(), 0u);  // nobody decodes in zero repairs...
  engine.RunAll();
  EXPECT_EQ(engine.active_flows(), 0u);
  EXPECT_EQ(engine.stats().flows_completed + engine.stats().flows_failed, 64u);
}

#if !defined(PPR_OBS_OFF)
TEST(FlowEngineTest, ExportsEngineMetrics) {
  obs::MetricRegistry registry;
  obs::ScopedObsContext scope(&registry);
  FlowEngine engine(SmallConfig());
  for (FlowId f = 0; f < 64; ++f) engine.SpawnFlow(f);
  engine.RunAll();
  const obs::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("engine.flows.completed"),
            engine.stats().flows_completed);
  EXPECT_EQ(snap.gauges.at("engine.flows.active"), 0.0);  // all retired
  EXPECT_GT(snap.histograms.at("engine.batch.span_bytes").count, 0u);
  EXPECT_GT(snap.histograms.at("engine.sched.lag").count, 0u);
}
#endif  // !PPR_OBS_OFF

// ---------------------------------------------------- compat sessions

arq::GilbertElliottParams DegradedParams() {
  arq::GilbertElliottParams params;
  params.p_good_to_bad = 0.03;
  params.p_bad_to_good = 0.12;
  params.chip_error_good = 0.004;
  params.chip_error_bad = 0.25;
  return params;
}

arq::GilbertElliottParams StrongParams() {
  arq::GilbertElliottParams params;
  params.p_good_to_bad = 0.001;
  params.p_bad_to_good = 0.5;
  params.chip_error_good = 0.0005;
  params.chip_error_bad = 0.05;
  return params;
}

// The EXACT golden two-relay exchange of
// tests/arq/recovery_session_test.cc (seeds 691-696), rebuilt as a
// live session object so the engine can adopt it. The channel lambdas
// hold references to the Rngs, so the rig keeps them alive and at
// stable addresses alongside the session.
struct GoldenRig {
  phy::ChipCodebook cb;
  Rng direct{692};
  Rng overhear_a{693};
  Rng hop_a{694};
  Rng overhear_b{695};
  Rng hop_b{696};
  std::unique_ptr<arq::RecoverySession> session;
};

std::unique_ptr<GoldenRig> MakeGoldenRig() {
  auto rig = std::make_unique<GoldenRig>();
  Rng prng(691);
  BitVec payload;
  for (std::size_t i = 0; i < 180 * 8; ++i) {
    payload.PushBack(prng.Bernoulli(0.5));
  }
  arq::PpArqConfig config;
  config.recovery = arq::RecoveryMode::kRelayCodedRepair;
  config.relay_parties = 2;
  const auto strategy = arq::MakeRecoveryStrategy(config);
  const BitVec body = arq::PpArqSender::MakeBody(payload);
  const std::size_t total_codewords = body.size() / config.bits_per_codeword;

  arq::SessionConfig topology;
  topology.edges.push_back(
      {arq::kSessionSourceId, arq::kSessionDestinationId,
       arq::MakeGilbertElliottChannel(rig->cb, DegradedParams(),
                                      rig->direct)});
  topology.edges.push_back(
      {arq::kSessionSourceId, arq::kSessionRelayId,
       arq::MakeGilbertElliottChannel(rig->cb, StrongParams(),
                                      rig->overhear_a)});
  topology.edges.push_back(
      {arq::kSessionRelayId, arq::kSessionDestinationId,
       arq::MakeGilbertElliottChannel(rig->cb, StrongParams(), rig->hop_a)});
  topology.edges.push_back(
      {arq::kSessionSourceId, arq::kSessionRelayId + 1,
       arq::MakeGilbertElliottChannel(rig->cb, StrongParams(),
                                      rig->overhear_b)});
  topology.edges.push_back(
      {arq::kSessionRelayId + 1, arq::kSessionDestinationId,
       arq::MakeGilbertElliottChannel(rig->cb, StrongParams(), rig->hop_b)});

  rig->session =
      std::make_unique<arq::RecoverySession>(std::move(topology));
  rig->session->AddParty(strategy->MakeSourceParticipant(body, 1));
  rig->session->AddParty(
      strategy->MakeDestinationParticipant(1, total_codewords));
  rig->session->AddParty(strategy->MakeRelayParticipant(1, 1, total_codewords));
  rig->session->AddParty(strategy->MakeRelayParticipant(2, 1, total_codewords));
  rig->session->TransmitInitial(arq::kSessionSourceId, body);
  return rig;
}

// The same transcript serialization the arq golden test pins.
std::uint32_t TranscriptCrc(const arq::SessionRunStats& stats) {
  BitVec transcript;
  transcript.AppendUint(stats.rounds, 16);
  transcript.AppendUint(stats.totals.data_transmissions, 16);
  transcript.AppendUint(stats.totals.forward_bits, 32);
  transcript.AppendUint(stats.totals.feedback_bits, 32);
  for (const auto& party : stats.parties) {
    transcript.AppendUint(party.repair_bits, 32);
    transcript.AppendUint(party.repair_messages, 16);
    transcript.AppendUint(party.feedback_bits, 32);
  }
  for (const auto bits : stats.totals.retransmission_bits) {
    transcript.AppendUint(bits, 32);
  }
  return Crc32Bits(transcript);
}

// The compat pin: adopting the golden session into the engine —
// where its rounds interleave with other flows' scheduler events —
// must reproduce the direct session.Run(32) transcript bit for bit,
// CRC-pinned to the same constant tests/arq pins.
TEST(FlowEngineTest, CompatSessionPreservesGoldenTranscript) {
  constexpr std::uint32_t kGoldenTranscriptCrc = 0x074B461A;

  const auto direct_rig = MakeGoldenRig();
  const arq::SessionRunStats direct = direct_rig->session->Run(32);
  ASSERT_TRUE(direct.totals.success);
  EXPECT_EQ(TranscriptCrc(direct), kGoldenTranscriptCrc);

  auto engine_rig = MakeGoldenRig();
  FlowEngine engine(SmallConfig());
  // Native flows interleave with the compat session on the same queue.
  for (FlowId f = 0; f < 32; ++f) engine.SpawnFlow(f);
  const std::size_t index = engine.AddCompatSession(
      std::move(engine_rig->session), /*max_rounds=*/32);
  engine.RunAll();
  ASSERT_TRUE(engine.CompatDone(index));
  const arq::SessionRunStats& via_engine = engine.CompatResult(index);
  EXPECT_TRUE(via_engine.totals.success);
  EXPECT_EQ(TranscriptCrc(via_engine), kGoldenTranscriptCrc);
  EXPECT_EQ(engine.stats().compat_completed, 1u);
}

}  // namespace
}  // namespace ppr::engine
