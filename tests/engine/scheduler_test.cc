#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace ppr::engine {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(30, 3);
  q.Push(10, 1);
  q.Push(20, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PeekTime(), 10u);
  EXPECT_EQ(q.Pop()->key, 1u);
  EXPECT_EQ(q.Pop()->key, 2u);
  EXPECT_EQ(q.Pop()->key, 3u);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_TRUE(q.Empty());
}

// Determinism at any flow count hangs on this: same-time events pop in
// push order, never in heap-internal order.
TEST(EventQueueTest, EqualTimesBreakTiesByPushOrder) {
  EventQueue q;
  for (std::uint64_t k = 0; k < 100; ++k) q.Push(7, k);
  for (std::uint64_t k = 0; k < 100; ++k) {
    const auto e = q.Pop();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->key, k);
  }
}

TEST(EventQueueTest, PopDueLeavesFutureEventsQueued) {
  EventQueue q;
  q.Push(5, 50);
  q.Push(1, 10);
  q.Push(3, 30);
  q.Push(3, 31);
  q.Push(9, 90);
  std::vector<FlowEvent> due;
  EXPECT_EQ(q.PopDue(3, due), 3u);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].key, 10u);
  EXPECT_EQ(due[1].key, 30u);
  EXPECT_EQ(due[2].key, 31u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.PeekTime(), 5u);
  // An empty harvest when nothing is due.
  EXPECT_EQ(q.PopDue(4, due), 0u);
  EXPECT_EQ(due.size(), 3u);
}

// Random interleaving against a reference model: the heap agrees with
// a stable sort by (time, insertion order) for any push/pop pattern.
TEST(EventQueueTest, RandomizedAgainstStableSortModel) {
  Rng rng(811);
  EventQueue q;
  std::vector<FlowEvent> model;  // kept sorted lazily at drain
  std::uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t t = rng.UniformInt(50);
    q.Push(t, seq);
    model.push_back(FlowEvent{t, seq, seq});
    ++seq;
  }
  std::stable_sort(model.begin(), model.end(),
                   [](const FlowEvent& a, const FlowEvent& b) {
                     return a.time < b.time;
                   });
  for (const FlowEvent& want : model) {
    const auto got = q.Pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->time, want.time);
    EXPECT_EQ(got->key, want.key);
  }
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace ppr::engine
