// Collision capture model: geometry, clean-region fidelity, XOR
// superposition words, determinism, and the pair-XOR decoder.
#include "collide/capture.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {
namespace {

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords; ++i) {
    bits.AppendUint(rng.UniformInt(16), 4);
  }
  return bits;
}

std::uint8_t NibbleOf(const BitVec& body, std::size_t codeword) {
  return static_cast<std::uint8_t>(body.ReadUint(codeword * 4, 4));
}

TEST(CollisionCaptureTest, ZeroNoiseCleanRegionsDecodeExactly) {
  const phy::ChipCodebook codebook;
  Rng rng(7);
  const BitVec a = RandomBody(rng, 24);
  const BitVec b = RandomBody(rng, 10);
  const auto c = SimulateCollisionCapture(codebook, a, b, /*offset=*/5,
                                          /*chip_error_p=*/0.0, rng);
  EXPECT_EQ(c.a_codewords, 24u);
  EXPECT_EQ(c.b_codewords, 10u);
  EXPECT_EQ(c.overlap_begin, 5u);
  EXPECT_EQ(c.overlap_end, 15u);
  EXPECT_EQ(c.overlap_chips.size(), 10u);
  for (std::size_t i = 0; i < c.a_codewords; ++i) {
    if (i >= c.overlap_begin && i < c.overlap_end) continue;
    EXPECT_EQ(c.a_symbols[i].symbol, NibbleOf(a, i)) << "codeword " << i;
    EXPECT_EQ(c.a_symbols[i].hamming_distance, 0) << "codeword " << i;
  }
  // B lies fully inside A here, so there is no tail.
  EXPECT_TRUE(c.b_tail.empty());

  // With a late offset B extends past A's end; the tail (codewords
  // past A's end) is clean too.
  const auto late = SimulateCollisionCapture(codebook, a, b, /*offset=*/20,
                                             /*chip_error_p=*/0.0, rng);
  ASSERT_EQ(late.b_tail.size(), late.b_codewords - late.TailBegin());
  for (std::size_t t = 0; t < late.b_tail.size(); ++t) {
    EXPECT_EQ(late.b_tail[t].symbol, NibbleOf(b, late.TailBegin() + t));
  }
}

TEST(CollisionCaptureTest, ZeroNoiseOverlapWordsAreExactXor) {
  const phy::ChipCodebook codebook;
  Rng rng(11);
  const BitVec a = RandomBody(rng, 16);
  const BitVec b = RandomBody(rng, 16);
  const auto c = SimulateCollisionCapture(codebook, a, b, /*offset=*/3,
                                          /*chip_error_p=*/0.0, rng);
  for (std::size_t i = c.overlap_begin; i < c.overlap_end; ++i) {
    const phy::ChipWord expected =
        codebook.Codeword(NibbleOf(a, i)) ^
        codebook.Codeword(NibbleOf(b, c.BIndexAt(i)));
    EXPECT_EQ(c.overlap_chips[i - c.overlap_begin], expected)
        << "overlap position " << i;
  }
}

TEST(CollisionCaptureTest, OverlapSymbolsCarryInfiniteHint) {
  const phy::ChipCodebook codebook;
  Rng rng(13);
  const BitVec a = RandomBody(rng, 12);
  const BitVec b = RandomBody(rng, 12);
  const auto c = SimulateCollisionCapture(codebook, a, b, 4, 0.01, rng);
  const auto initial = InitialSymbolsFromCapture(c);
  ASSERT_EQ(initial.size(), c.a_codewords);
  for (std::size_t i = c.overlap_begin; i < c.overlap_end; ++i) {
    EXPECT_EQ(initial[i].hint, std::numeric_limits<double>::infinity());
  }
  for (std::size_t i = 0; i < c.overlap_begin; ++i) {
    EXPECT_LT(initial[i].hint, std::numeric_limits<double>::infinity());
  }
}

TEST(CollisionCaptureTest, DeterministicGivenRngSeed) {
  const phy::ChipCodebook codebook;
  Rng body_rng(17);
  const BitVec a = RandomBody(body_rng, 20);
  const BitVec b = RandomBody(body_rng, 20);
  Rng r1(99), r2(99);
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 6, 0.02, r1);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 6, 0.02, r2);
  EXPECT_EQ(c1.overlap_chips, c2.overlap_chips);
  ASSERT_EQ(c1.a_symbols.size(), c2.a_symbols.size());
  for (std::size_t i = 0; i < c1.a_symbols.size(); ++i) {
    EXPECT_EQ(c1.a_symbols[i].symbol, c2.a_symbols[i].symbol);
    EXPECT_EQ(c1.a_symbols[i].hint, c2.a_symbols[i].hint);
  }
}

TEST(DecodeXorNibbleTest, ExactForEveryPairAtZeroNoise) {
  const phy::ChipCodebook codebook;
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      const phy::ChipWord word =
          codebook.Codeword(x) ^ codebook.Codeword(y);
      int distance = -1;
      const std::uint8_t got = DecodeXorNibble(codebook, word, &distance);
      EXPECT_EQ(got, static_cast<std::uint8_t>(x ^ y))
          << "pair (" << x << ", " << y << ")";
      EXPECT_EQ(distance, 0);
    }
  }
}

TEST(DecodeXorNibbleTest, ToleratesLightChipNoise) {
  const phy::ChipCodebook codebook;
  Rng rng(23);
  std::size_t correct = 0;
  constexpr std::size_t kTrials = 200;
  for (std::size_t t = 0; t < kTrials; ++t) {
    const int x = static_cast<int>(rng.UniformInt(16));
    const int y = static_cast<int>(rng.UniformInt(16));
    phy::ChipWord word = codebook.Codeword(x) ^ codebook.Codeword(y);
    // Flip two random chips.
    word ^= phy::ChipWord{1} << rng.UniformInt(phy::kChipsPerSymbol);
    word ^= phy::ChipWord{1} << rng.UniformInt(phy::kChipsPerSymbol);
    int distance = 0;
    const std::uint8_t got = DecodeXorNibble(codebook, word, &distance);
    EXPECT_LE(distance, 2);
    if (got == static_cast<std::uint8_t>(x ^ y)) ++correct;
  }
  // The pair code's distance spectrum is weaker than the codebook's,
  // but 2-chip noise should still decode correctly most of the time.
  EXPECT_GE(correct, kTrials * 3 / 4);
}

TEST(DrawCollisionEpisodeTest, OffsetsDistinctAndDeterministic) {
  const phy::ChipCodebook codebook;
  Rng body_rng(31);
  const BitVec a = RandomBody(body_rng, 32);
  CollisionEpisodeParams params;
  params.b_octets = 12;
  params.chip_error_p = 0.0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng r1(seed), r2(seed);
    const auto e1 = DrawCollisionEpisode(codebook, a, params, r1);
    const auto e2 = DrawCollisionEpisode(codebook, a, params, r2);
    EXPECT_NE(e1.first.offset, e1.second.offset) << "seed " << seed;
    EXPECT_GE(e1.first.offset, 1u);
    EXPECT_GE(e1.second.offset, 1u);
    EXPECT_EQ(e1.first.offset, e2.first.offset);
    EXPECT_EQ(e1.second.offset, e2.second.offset);
    EXPECT_EQ(e1.b_body.ToBytes(), e2.b_body.ToBytes());
  }
}

TEST(CollisionCaptureTest, RejectsDegenerateGeometry) {
  const phy::ChipCodebook codebook;
  Rng rng(37);
  const BitVec a = RandomBody(rng, 8);
  const BitVec b = RandomBody(rng, 4);
  EXPECT_THROW(SimulateCollisionCapture(codebook, a, b, 8, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(SimulateCollisionCapture(codebook, a, BitVec{}, 2, 0.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppr::collide
