// ZigZag stripper properties: full round-trip resolution at zero
// noise across offsets, correctness of accepted values under light
// noise, and clean abandonment under hostile thresholds.
#include "collide/zigzag.h"

#include <gtest/gtest.h>

#include "collide/capture.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {
namespace {

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords; ++i) {
    bits.AppendUint(rng.UniformInt(16), 4);
  }
  return bits;
}

std::uint8_t NibbleOf(const BitVec& body, std::size_t codeword) {
  return static_cast<std::uint8_t>(body.ReadUint(codeword * 4, 4));
}

TEST(ZigZagTest, ZeroNoiseResolvesBothPacketsAcrossOffsets) {
  const phy::ChipCodebook codebook;
  Rng rng(101);
  const StripConfig config;
  for (std::size_t trial = 0; trial < 12; ++trial) {
    const std::size_t a_cw = 16 + 4 * trial;
    const BitVec a = RandomBody(rng, a_cw);
    const BitVec b = RandomBody(rng, a_cw);
    // Every distinct offset pair with full mutual overlap.
    for (std::size_t d1 = 1; d1 <= 4; ++d1) {
      const std::size_t d2 = d1 + 1 + trial % 3;
      const auto c1 =
          SimulateCollisionCapture(codebook, a, b, d1, 0.0, rng);
      const auto c2 =
          SimulateCollisionCapture(codebook, a, b, d2, 0.0, rng);
      const StripResult r = StripPair(codebook, c1, c2, config);
      EXPECT_TRUE(r.a_complete) << "a_cw=" << a_cw << " d1=" << d1;
      EXPECT_TRUE(r.b_complete) << "a_cw=" << a_cw << " d1=" << d1;
      EXPECT_FALSE(r.abandoned);
      EXPECT_GT(r.stripped, 0u);
      for (std::size_t i = 0; i < a_cw; ++i) {
        ASSERT_TRUE(r.a[i].known);
        EXPECT_EQ(r.a[i].value, NibbleOf(a, i)) << "A codeword " << i;
      }
      for (std::size_t j = 0; j < r.b.size(); ++j) {
        ASSERT_TRUE(r.b[j].known);
        EXPECT_EQ(r.b[j].value, NibbleOf(b, j)) << "B codeword " << j;
      }
    }
  }
}

TEST(ZigZagTest, AcceptedValuesCorrectUnderLightNoise) {
  const phy::ChipCodebook codebook;
  Rng rng(211);
  StripConfig config;
  config.max_hint = 3;
  config.max_chain_suspicion = 24.0;
  std::size_t accepted = 0, correct = 0;
  for (std::size_t trial = 0; trial < 20; ++trial) {
    const BitVec a = RandomBody(rng, 24);
    const BitVec b = RandomBody(rng, 24);
    const auto c1 = SimulateCollisionCapture(codebook, a, b, 2, 0.01, rng);
    const auto c2 = SimulateCollisionCapture(codebook, a, b, 5, 0.01, rng);
    const StripResult r = StripPair(codebook, c1, c2, config);
    for (std::size_t i = 0; i < r.a.size(); ++i) {
      if (!r.a[i].known || !r.a[i].via_strip) continue;
      ++accepted;
      if (r.a[i].value == NibbleOf(a, i)) ++correct;
    }
    for (std::size_t j = 0; j < r.b.size(); ++j) {
      if (!r.b[j].known || !r.b[j].via_strip) continue;
      ++accepted;
      if (r.b[j].value == NibbleOf(b, j)) ++correct;
    }
  }
  ASSERT_GT(accepted, 0u);
  // Confidence-bounded stripping: nearly everything accepted is right.
  EXPECT_GE(correct * 100, accepted * 95);
}

TEST(ZigZagTest, HostileThresholdsAbandonCleanly) {
  const phy::ChipCodebook codebook;
  Rng rng(307);
  const BitVec a = RandomBody(rng, 24);
  const BitVec b = RandomBody(rng, 24);
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 2, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 7, 0.0, rng);
  StripConfig config;
  config.max_chain_suspicion = -1.0;  // no chain is ever acceptable
  const StripResult r = StripPair(codebook, c1, c2, config);
  EXPECT_TRUE(r.abandoned);
  EXPECT_EQ(r.stripped, 0u);
  // Clean regions remain seeded: abandonment loses the overlap only.
  for (std::size_t i = 0; i < c1.overlap_begin; ++i) {
    EXPECT_TRUE(r.a[i].known);
  }
}

TEST(ZigZagTest, ChainSuspicionAccumulatesAlongStrips) {
  const phy::ChipCodebook codebook;
  Rng rng(401);
  const BitVec a = RandomBody(rng, 20);
  const BitVec b = RandomBody(rng, 20);
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 2, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 4, 0.0, rng);
  const StripResult r = StripPair(codebook, c1, c2, StripConfig{});
  for (std::size_t i = 0; i < r.a.size(); ++i) {
    if (r.a[i].via_strip) {
      // A stripped value's chain includes its parent's suspicion.
      EXPECT_GE(r.a[i].suspicion, 0.0);
    }
  }
  EXPECT_GT(r.rounds, 0u);
}

TEST(ZigZagTest, MismatchedShapesThrow) {
  const phy::ChipCodebook codebook;
  Rng rng(503);
  const BitVec a = RandomBody(rng, 16);
  const BitVec a_short = RandomBody(rng, 12);
  const BitVec b = RandomBody(rng, 16);
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 2, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a_short, b, 3, 0.0, rng);
  EXPECT_THROW(StripPair(codebook, c1, c2, StripConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppr::collide
