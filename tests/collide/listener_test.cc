// The listener end to end: unit equations from stripped symbols,
// cross-cancelled equations from abandoned regions, stats accounting,
// and the full collision exchange (resolve beats discard on repair
// bits at equal delivery).
#include "collide/listener.h"

#include <gtest/gtest.h>

#include "arq/link_sim.h"
#include "arq/pp_arq.h"
#include "arq/recovery_strategy.h"
#include "collide/capture.h"
#include "collide/runner.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {
namespace {

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords; ++i) {
    bits.AppendUint(rng.UniformInt(16), 4);
  }
  return bits;
}

CollisionListenerConfig SmallSymbols() {
  CollisionListenerConfig config;
  config.codewords_per_fec_symbol = 4;
  return config;
}

TEST(CollisionListenerTest, CleanEpisodeResolvesPairAndEmitsUnitEquations) {
  const phy::ChipCodebook codebook;
  Rng rng(901);
  const BitVec a = RandomBody(rng, 32);
  CollisionEpisodeParams params;
  params.b_octets = 16;
  params.chip_error_p = 0.0;
  const auto episode = DrawCollisionEpisode(codebook, a, params, rng);

  CollisionListener listener(SmallSymbols());
  const ResolvedCollision r = listener.Resolve(codebook, episode);
  EXPECT_TRUE(r.a_resolved);
  EXPECT_TRUE(r.b_resolved);
  ASSERT_FALSE(r.equations.empty());
  // Unit equations carry the ground-truth symbol bytes.
  for (const auto& eq : r.equations) {
    std::size_t terms = 0, s = 0;
    for (std::size_t k = 0; k < eq.coefs.size(); ++k) {
      if (eq.coefs[k] != 0) { s = k; ++terms; }
    }
    ASSERT_EQ(terms, 1u);
    BitVec expected;
    for (std::size_t i = s * 4; i < (s + 1) * 4; ++i) {
      expected.AppendUint(a.ReadUint(i * 4, 4), 4);
    }
    EXPECT_EQ(eq.data, expected.ToBytes()) << "symbol " << s;
  }
  const CollisionStats& stats = listener.stats();
  EXPECT_EQ(stats.episodes_seen, 1u);
  EXPECT_EQ(stats.pairs_resolved, 1u);
  EXPECT_EQ(stats.episodes_abandoned, 0u);
  EXPECT_GT(stats.codewords_stripped, 0u);
  EXPECT_EQ(stats.equations_banked, r.equations.size());
}

TEST(CollisionListenerTest, AbandonedEpisodeStillBanksEquations) {
  const phy::ChipCodebook codebook;
  Rng rng(911);
  const BitVec a = RandomBody(rng, 32);
  const BitVec b = RandomBody(rng, 32);
  // Hand-built episode with symbol-aligned offsets so the algebraic
  // path has material, and strip thresholds that forbid stripping.
  CollisionEpisode episode;
  episode.b_body = b;
  episode.first = SimulateCollisionCapture(codebook, a, b, 4, 0.0, rng);
  episode.second = SimulateCollisionCapture(codebook, a, b, 8, 0.0, rng);

  CollisionListenerConfig config = SmallSymbols();
  config.strip.max_chain_suspicion = -1.0;  // stripping always bails
  CollisionListener listener(config);
  const ResolvedCollision r = listener.Resolve(codebook, episode);
  EXPECT_FALSE(r.a_resolved);
  EXPECT_TRUE(r.strip.abandoned);
  EXPECT_GT(listener.stats().cross_cancelled, 0u);
  EXPECT_EQ(listener.stats().episodes_abandoned, 1u);
  // With stripping disabled, knowledge comes from clean regions only:
  // the second capture's clean prefix [0, 8) covers codewords 4..7,
  // which lie inside the first capture's overlap, so symbol 1 alone
  // may surface as a unit equation. Everything else must be a
  // two-term cross-cancellation.
  std::size_t two_term = 0;
  for (const auto& eq : r.equations) {
    std::size_t terms = 0, s = 0;
    for (std::size_t k = 0; k < eq.coefs.size(); ++k) {
      if (eq.coefs[k] != 0) { s = k; ++terms; }
    }
    ASSERT_GE(terms, 1u);
    ASSERT_LE(terms, 2u);
    if (terms == 2) {
      ++two_term;
    } else {
      EXPECT_EQ(s, 1u);
    }
  }
  EXPECT_GT(two_term, 0u);
}

TEST(CollisionRunnerTest, ResolveDeliversWithFewerRepairBitsThanDiscard) {
  arq::PpArqConfig config;
  config.recovery = arq::RecoveryMode::kCollisionResolve;
  config.codewords_per_fec_symbol = 4;
  const auto strategy = arq::MakeRecoveryStrategy(config);

  const phy::ChipCodebook codebook;
  CollisionEpisodeParams params;
  params.b_octets = 40;
  params.chip_error_p = 0.0;
  CollisionListenerConfig listener_config;
  listener_config.codewords_per_fec_symbol = 4;

  std::size_t resolve_repair = 0, discard_repair = 0;
  std::size_t resolve_ok = 0, discard_ok = 0, pairs = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng payload_rng(seed);
    BitVec payload;
    for (std::size_t i = 0; i < 40; ++i) {
      payload.AppendUint(payload_rng.UniformInt(256), 8);
    }
    for (const bool resolve : {true, false}) {
      // Identical episode and repair-channel draws for the two legs.
      Rng episode_rng(seed * 1000);
      Rng channel_rng(seed * 2000);
      const auto channel =
          arq::MakeChipErrorChannel(codebook, 0.0, channel_rng);
      const auto outcome = RunCollisionRecoveryExchange(
          payload, config, *strategy, channel, params, episode_rng,
          listener_config, resolve);
      EXPECT_TRUE(outcome.totals.success);
      std::size_t repair = 0;
      for (const auto bits : outcome.totals.retransmission_bits) {
        repair += bits;
      }
      if (resolve) {
        resolve_repair += repair;
        resolve_ok += outcome.totals.success;
        pairs += outcome.resolved_pair;
      } else {
        discard_repair += repair;
        discard_ok += outcome.totals.success;
        EXPECT_EQ(outcome.rank_gained, 0u);
        EXPECT_EQ(outcome.collide.episodes_seen, 0u);
      }
    }
  }
  EXPECT_EQ(resolve_ok, discard_ok);
  EXPECT_GT(pairs, 0u);
  // Collision recovery yields strictly cheaper repair at equal delivery.
  EXPECT_LT(resolve_repair, discard_repair);
}

TEST(CollisionListenerTest, StatsAccumulateAcrossEpisodes) {
  const phy::ChipCodebook codebook;
  Rng rng(977);
  CollisionListener listener(SmallSymbols());
  for (int i = 0; i < 3; ++i) {
    const BitVec a = RandomBody(rng, 24);
    CollisionEpisodeParams params;
    params.b_octets = 12;
    params.chip_error_p = 0.0;
    const auto episode = DrawCollisionEpisode(codebook, a, params, rng);
    listener.Resolve(codebook, episode);
  }
  EXPECT_EQ(listener.stats().episodes_seen, 3u);
  CollisionStats sum;
  sum += listener.stats();
  sum += listener.stats();
  EXPECT_EQ(sum.episodes_seen, 6u);
}

}  // namespace
}  // namespace ppr::collide
