// The algebraic banking path: cross-cancelled two-term equations are
// verified against ground truth and shown to raise decoder rank
// without any symbol being individually known.
#include "collide/ledger.h"

#include <gtest/gtest.h>

#include "collide/capture.h"
#include "collide/zigzag.h"
#include "common/rng.h"
#include "fec/coded_repair.h"
#include "fec/rlnc.h"
#include "phy/chip_sequences.h"

namespace ppr::collide {
namespace {

constexpr std::size_t kCps = 4;  // codewords per FEC symbol
constexpr std::size_t kCodewords = 32;

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords; ++i) {
    bits.AppendUint(rng.UniformInt(16), 4);
  }
  return bits;
}

// Expected data of the two-term equation S_s ^ S_{s+1}: the XOR of the
// ground-truth nibbles of the two symbols, packed MSB-first.
std::vector<std::uint8_t> ExpectedXorData(const BitVec& a, std::size_t s,
                                          std::size_t sym_delta) {
  BitVec packed;
  for (std::size_t i = s * kCps; i < (s + 1) * kCps; ++i) {
    const auto x = a.ReadUint(i * 4, 4);
    const auto y = a.ReadUint((i + sym_delta * kCps) * 4, 4);
    packed.AppendUint(x ^ y, 4);
  }
  return packed.ToBytes();
}

// A strip result that resolved nothing, so CrossCancel considers every
// symbol pair.
StripResult NothingStripped(std::size_t a_codewords,
                            std::size_t b_codewords) {
  StripResult r;
  r.a.resize(a_codewords);
  r.b.resize(b_codewords);
  r.abandoned = true;
  return r;
}

TEST(CollisionLedgerTest, CrossCancelMatchesGroundTruth) {
  const phy::ChipCodebook codebook;
  Rng rng(601);
  const BitVec a = RandomBody(rng, kCodewords);
  const BitVec b = RandomBody(rng, kCodewords);
  // Symbol-aligned offsets: delta = 4 codewords = exactly one symbol.
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 4, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 8, 0.0, rng);
  CollisionLedger ledger(kCodewords, kCps);
  ledger.Bank(c1);
  ledger.Bank(c2);
  const auto equations = ledger.CrossCancel(
      codebook, NothingStripped(kCodewords, kCodewords), StripConfig{});
  ASSERT_FALSE(equations.empty());
  for (const auto& eq : equations) {
    ASSERT_EQ(eq.coefs.size(), kCodewords / kCps);
    std::size_t s = 0, s2 = 0, terms = 0;
    for (std::size_t k = 0; k < eq.coefs.size(); ++k) {
      if (eq.coefs[k] == 0) continue;
      EXPECT_EQ(eq.coefs[k], 1);
      if (terms == 0) s = k; else s2 = k;
      ++terms;
    }
    ASSERT_EQ(terms, 2u);
    EXPECT_EQ(s2, s + 1);
    EXPECT_EQ(eq.data, ExpectedXorData(a, s, 1));
    EXPECT_EQ(eq.suspicion, 0.0);
  }
}

TEST(CollisionLedgerTest, MisalignedOffsetsEmitNothing) {
  const phy::ChipCodebook codebook;
  Rng rng(677);
  const BitVec a = RandomBody(rng, kCodewords);
  const BitVec b = RandomBody(rng, kCodewords);
  // delta = 3 codewords: not a whole symbol, so no symbol-level
  // equation is expressible.
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 4, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 7, 0.0, rng);
  CollisionLedger ledger(kCodewords, kCps);
  ledger.Bank(c1);
  ledger.Bank(c2);
  EXPECT_TRUE(ledger
                  .CrossCancel(codebook,
                               NothingStripped(kCodewords, kCodewords),
                               StripConfig{})
                  .empty());
}

TEST(CollisionLedgerTest, BankedEquationsRaiseDecoderRank) {
  const phy::ChipCodebook codebook;
  Rng rng(701);
  const BitVec a = RandomBody(rng, kCodewords);
  const BitVec b = RandomBody(rng, kCodewords);
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 4, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 8, 0.0, rng);
  CollisionLedger ledger(kCodewords, kCps);
  ledger.Bank(c1);
  ledger.Bank(c2);
  const auto equations = ledger.CrossCancel(
      codebook, NothingStripped(kCodewords, kCodewords), StripConfig{});
  ASSERT_GE(equations.size(), 2u);

  // A session that trusts nothing: rank must come from the equations.
  const std::size_t num_symbols = kCodewords / kCps;
  std::vector<std::vector<std::uint8_t>> received(
      num_symbols, std::vector<std::uint8_t>(kCps / 2, 0));
  fec::CodedRepairSession session(received,
                                  std::vector<bool>(num_symbols, false),
                                  std::vector<double>(num_symbols, 0.0));
  const std::size_t before = session.Deficit();
  std::size_t gained = 0;
  for (const auto& eq : equations) {
    if (session.ConsumeEquation(eq.coefs, eq.data, eq.suspicion,
                                /*evictable=*/true,
                                fec::kCollisionResolvedParty)) {
      ++gained;
    }
  }
  EXPECT_GT(gained, 0u);
  EXPECT_EQ(session.Deficit(), before - gained);
  EXPECT_EQ(session.equations_from(fec::kCollisionResolvedParty), gained);
  // Two-term chains over n symbols can contribute at most n-1
  // independent rows; no spurious full-rank decode from XORs alone.
  EXPECT_GT(session.Deficit(), 0u);
}

TEST(CollisionLedgerTest, StripResolvedPairsAreSkipped) {
  const phy::ChipCodebook codebook;
  Rng rng(809);
  const BitVec a = RandomBody(rng, kCodewords);
  const BitVec b = RandomBody(rng, kCodewords);
  const auto c1 = SimulateCollisionCapture(codebook, a, b, 4, 0.0, rng);
  const auto c2 = SimulateCollisionCapture(codebook, a, b, 8, 0.0, rng);
  CollisionLedger ledger(kCodewords, kCps);
  ledger.Bank(c1);
  ledger.Bank(c2);
  // Everything resolved: the ledger has nothing to add.
  StripResult all_known = NothingStripped(kCodewords, kCodewords);
  for (auto& k : all_known.a) k = KnownNibble{true, true, 0, 0.0};
  EXPECT_TRUE(
      ledger.CrossCancel(codebook, all_known, StripConfig{}).empty());
}

TEST(CollisionLedgerTest, RejectsNonTilingSymbolSize) {
  EXPECT_THROW(CollisionLedger(30, kCps), std::invalid_argument);
  EXPECT_THROW(CollisionLedger(kCodewords, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ppr::collide
