#include "fec/rlnc.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fec/gf256.h"

namespace ppr::fec {
namespace {

std::vector<std::uint8_t> Decoded(const RlncDecoder& d, std::size_t i) {
  const auto sym = d.Symbol(i);
  return {sym.begin(), sym.end()};
}

std::vector<std::vector<std::uint8_t>> RandomBlock(Rng& rng, std::size_t n,
                                                   std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> block(n);
  for (auto& s : block) {
    s.resize(bytes);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  return block;
}

TEST(RlncTest, RepairCoefficientsAreDeterministicPerSeed) {
  const auto a = RepairCoefficients(42, 16);
  const auto b = RepairCoefficients(42, 16);
  const auto c = RepairCoefficients(43, 16);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 16u);
}

TEST(RlncTest, SystematicRoundtripNoLoss) {
  Rng rng(301);
  const auto block = RandomBlock(rng, 12, 20);
  RlncDecoder decoder(12, 20);
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_TRUE(decoder.AddSource(i, block[i]));
  }
  ASSERT_TRUE(decoder.Complete());
  for (std::size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(Decoded(decoder, i), block[i]);
  }
}

// Systematic encode -> erase a fraction of source symbols -> decode from
// the survivors plus repair symbols.
void RoundtripAtLoss(double loss, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = 32, bytes = 16;
  const auto block = RandomBlock(rng, n, bytes);
  RlncEncoder encoder(block);

  RlncDecoder decoder(n, bytes);
  std::size_t erased = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(loss)) {
      ++erased;
    } else {
      decoder.AddSource(i, block[i]);
    }
  }
  std::uint32_t next_seed = 1;
  std::size_t repairs_used = 0;
  while (!decoder.Complete()) {
    decoder.AddRepair(encoder.MakeRepair(next_seed++));
    ++repairs_used;
    ASSERT_LT(repairs_used, n + 16u) << "decoder failed to reach full rank";
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(Decoded(decoder, i), block[i]) << "loss=" << loss;
  }
  // Random GF(256) combinations are independent with high probability:
  // barely more repairs than erasures.
  EXPECT_LE(repairs_used, erased + 2) << "loss=" << loss;
}

TEST(RlncTest, RoundtripLightLoss) { RoundtripAtLoss(0.1, 302); }
TEST(RlncTest, RoundtripModerateLoss) { RoundtripAtLoss(0.4, 303); }
TEST(RlncTest, RoundtripHeavyLoss) { RoundtripAtLoss(0.8, 304); }

TEST(RlncTest, DecodesFromRepairAlone) {
  Rng rng(305);
  const std::size_t n = 10, bytes = 8;
  const auto block = RandomBlock(rng, n, bytes);
  RlncEncoder encoder(block);
  RlncDecoder decoder(n, bytes);
  std::uint32_t seed = 7;
  while (!decoder.Complete()) {
    decoder.AddRepair(encoder.MakeRepair(seed++));
    ASSERT_LT(seed, 7u + n + 8u);
  }
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(Decoded(decoder, i), block[i]);
}

TEST(RlncTest, DuplicatesDoNotIncreaseRank) {
  Rng rng(306);
  const auto block = RandomBlock(rng, 8, 4);
  RlncEncoder encoder(block);
  RlncDecoder decoder(8, 4);
  EXPECT_TRUE(decoder.AddSource(3, block[3]));
  EXPECT_FALSE(decoder.AddSource(3, block[3]));
  const auto repair = encoder.MakeRepair(99);
  EXPECT_TRUE(decoder.AddRepair(repair));
  EXPECT_FALSE(decoder.AddRepair(repair));
  EXPECT_EQ(decoder.rank(), 2u);
}

TEST(RlncTest, RejectsShapeMismatch) {
  RlncDecoder decoder(4, 8);
  EXPECT_THROW(decoder.AddEquation(std::vector<std::uint8_t>(3, 1),
                                   std::vector<std::uint8_t>(8, 0)),
               std::invalid_argument);
  EXPECT_THROW(decoder.AddEquation(std::vector<std::uint8_t>(4, 1),
                                   std::vector<std::uint8_t>(7, 0)),
               std::invalid_argument);
  EXPECT_THROW(RlncEncoder({}), std::invalid_argument);
  EXPECT_THROW(RlncEncoder({{1, 2}, {3}}), std::invalid_argument);
}

// Encode and decode must be bit-identical on every compiled GF(256)
// backend: the same repair symbols on the wire, the same rank
// progression, the same decoded block.
TEST(RlncTest, EncodeAndDecodeAreBackendInvariant) {
  struct Transcript {
    std::vector<RepairSymbol> repairs;
    std::vector<std::size_t> ranks;
    std::vector<std::vector<std::uint8_t>> decoded;
  };
  const auto run = [] {
    Rng rng(305);
    const std::size_t n = 24, bytes = 33;  // odd size: vector tails in play
    std::vector<std::vector<std::uint8_t>> block(n);
    for (auto& s : block) {
      s.resize(bytes);
      for (auto& b : s) b = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    const RlncEncoder encoder(block);
    Transcript t;
    RlncDecoder decoder(n, bytes);
    for (std::size_t i = 8; i < n; ++i) decoder.AddSource(i, block[i]);
    std::uint32_t seed = 1;
    while (!decoder.Complete()) {
      t.repairs.push_back(encoder.MakeRepair(seed++));
      decoder.AddRepair(t.repairs.back());
      t.ranks.push_back(decoder.rank());
    }
    for (std::size_t i = 0; i < n; ++i) t.decoded.push_back(Decoded(decoder, i));
    return t;
  };

  const Transcript reference = [&] {
    GfImplScope scope(GfImpl::kScalar);
    return run();
  }();
  EXPECT_EQ(reference.decoded.size(), 24u);
  for (const GfImpl impl : GfAvailableImpls()) {
    GfImplScope scope(impl);
    ASSERT_TRUE(scope.ok());
    const Transcript got = run();
    EXPECT_EQ(got.repairs, reference.repairs) << GfImplName(impl);
    EXPECT_EQ(got.ranks, reference.ranks) << GfImplName(impl);
    EXPECT_EQ(got.decoded, reference.decoded) << GfImplName(impl);
  }
}

TEST(RlncTest, ResetReturnsToRankZeroAndDecodesAgain) {
  Rng rng(99);
  const auto block = RandomBlock(rng, 8, 16);
  RlncEncoder encoder(block);
  RlncDecoder decoder(8, 16);
  for (std::uint32_t s = 0; decoder.rank() < 8; ++s) {
    decoder.AddRepair(encoder.MakeRepair(s));
  }
  ASSERT_TRUE(decoder.Complete());

  // Reset keeps the shape but drops the basis; the decoder then
  // decodes a different ingest order to the same symbols.
  decoder.Reset();
  EXPECT_EQ(decoder.rank(), 0u);
  EXPECT_FALSE(decoder.Complete());
  for (std::size_t i = 0; i < 4; ++i) decoder.AddSource(i, block[i]);
  for (std::uint32_t s = 100; decoder.rank() < 8; ++s) {
    decoder.AddRepair(encoder.MakeRepair(s));
  }
  ASSERT_TRUE(decoder.Complete());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(Decoded(decoder, i), block[i]);
}

}  // namespace
}  // namespace ppr::fec
