// The span-based EquationSink ingest surface (satellite of the flow
// engine PR): RlncDecoder's span forms must be bit-equivalent to the
// owning-vector forms they shadow, reachable polymorphically, and
// allocation-recycling (Reset parks rows for reuse) must not change
// decode results.
#include "fec/equation_sink.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fec/rlnc.h"

namespace ppr::fec {
namespace {

std::vector<std::uint8_t> Decoded(const RlncDecoder& d, std::size_t i) {
  const auto sym = d.Symbol(i);
  return {sym.begin(), sym.end()};
}

std::vector<std::vector<std::uint8_t>> RandomBlock(Rng& rng, std::size_t n,
                                                   std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> block(n);
  for (auto& s : block) {
    s.resize(bytes);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  return block;
}

TEST(EquationSinkTest, RepairCoefficientsIntoMatchesAllocatingForm) {
  for (std::uint32_t seed : {0u, 1u, 42u, 0xFFFFFFFFu}) {
    const auto want = RepairCoefficients(seed, 24);
    std::vector<std::uint8_t> got(24);
    RepairCoefficientsInto(seed, got);
    EXPECT_EQ(got, want) << "seed=" << seed;
  }
}

// The same lossy decode driven through AddEquation (owning vectors)
// and AddEquationSpan (borrowed spans) lands on identical rank
// trajectories and identical recovered symbols.
TEST(EquationSinkTest, SpanIngestMatchesOwningIngest) {
  Rng rng(907);
  const auto block = RandomBlock(rng, 12, 40);
  const RlncEncoder encoder(block);

  RlncDecoder owning(12, 40);
  RlncDecoder span(12, 40);
  // Half the systematic symbols arrive; repairs carry the rest.
  for (std::size_t i = 0; i < 12; i += 2) {
    EXPECT_TRUE(owning.AddSource(i, block[i]));
    EXPECT_TRUE(span.AddSourceSpan(i, block[i]));
  }
  for (std::uint32_t seed = 1; !owning.Complete(); ++seed) {
    const RepairSymbol repair = encoder.MakeRepair(seed);
    const auto coefs = RepairCoefficients(seed, 12);
    const bool a = owning.AddEquation(coefs, repair.data);
    const bool b = span.AddEquationSpan(coefs, repair.data);
    EXPECT_EQ(a, b) << "seed=" << seed;
    EXPECT_EQ(owning.rank(), span.rank());
  }
  ASSERT_TRUE(span.Complete());
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(Decoded(owning, i), block[i]);
    EXPECT_EQ(Decoded(span, i), block[i]);
  }
}

// A driver holding only the abstract sink — the flow engine's
// position — decodes through it.
TEST(EquationSinkTest, PolymorphicIngestDecodes) {
  Rng rng(911);
  const auto block = RandomBlock(rng, 8, 24);
  const RlncEncoder encoder(block);
  RlncDecoder decoder(8, 24);
  EquationSink& sink = decoder;
  ASSERT_EQ(sink.equation_width(), 8u);
  ASSERT_EQ(sink.equation_bytes(), 24u);
  std::vector<std::uint8_t> coefs(sink.equation_width());
  for (std::uint32_t seed = 1; !decoder.Complete(); ++seed) {
    const RepairSymbol repair = encoder.MakeRepair(seed);
    RepairCoefficientsInto(repair.seed, coefs);
    sink.ConsumeEquationSpan(coefs, repair.data);
  }
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(Decoded(decoder, i), block[i]);
}

TEST(EquationSinkTest, AddRepairBatchMatchesSerialAddRepair) {
  Rng rng(919);
  const auto block = RandomBlock(rng, 10, 32);
  const RlncEncoder encoder(block);
  std::vector<RepairSymbol> repairs;
  for (std::uint32_t seed = 1; seed <= 14; ++seed) {
    repairs.push_back(encoder.MakeRepair(seed));
  }
  RlncDecoder serial(10, 32);
  RlncDecoder batched(10, 32);
  std::size_t serial_gained = 0;
  for (const auto& r : repairs) {
    if (serial.Complete()) break;  // the batch form stops here too
    if (serial.AddRepair(r)) ++serial_gained;
  }
  const std::size_t batch_gained = batched.AddRepairBatch(repairs);
  EXPECT_EQ(batch_gained, serial_gained);
  EXPECT_EQ(batched.rank(), serial.rank());
  ASSERT_TRUE(batched.Complete());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(Decoded(batched, i), block[i]);
  }
}

// Reset() recycles pivot rows through the spare pool; the second
// decode must be exactly as good as a fresh decoder's.
TEST(EquationSinkTest, ResetRecyclesRowsAcrossDecodes) {
  Rng rng(929);
  RlncDecoder decoder(9, 48);
  for (int round = 0; round < 3; ++round) {
    const auto block = RandomBlock(rng, 9, 48);
    const RlncEncoder encoder(block);
    for (std::uint32_t seed = 1; !decoder.Complete(); ++seed) {
      decoder.AddRepair(encoder.MakeRepair(PartySeed(0, seed + round * 64)));
    }
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_EQ(Decoded(decoder, i), block[i]) << "round=" << round;
    }
    decoder.Reset();
    EXPECT_EQ(decoder.rank(), 0u);
  }
}

}  // namespace
}  // namespace ppr::fec
