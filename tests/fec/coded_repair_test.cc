#include "fec/coded_repair.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/crc.h"
#include "common/rng.h"
#include "fec/gf256.h"

namespace ppr::fec {
namespace {

BitVec RandomBody(Rng& rng, std::size_t bits) {
  BitVec body;
  for (std::size_t i = 0; i < bits; ++i) body.PushBack(rng.Bernoulli(0.5));
  return body;
}

TEST(BodySymbolsTest, RoundtripWithTailPadding) {
  Rng rng(401);
  const BitVec body = RandomBody(rng, 4 * 101);  // 101 codewords, ragged tail
  const auto symbols = BodyToSymbols(body, 4, 8);  // 32-bit symbols
  EXPECT_EQ(symbols.size(), (101u + 7u) / 8u);
  for (const auto& s : symbols) EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(SymbolsToBody(symbols, body.size()), body);
}

TEST(BodySymbolsTest, RejectsNonOctetSymbols) {
  const BitVec body(40, false);
  EXPECT_THROW(BodyToSymbols(body, 4, 3), std::invalid_argument);  // 12 bits
}

// Builds a session over a body where `erased` symbols are labeled bad.
struct Fixture {
  BitVec body;
  std::vector<std::vector<std::uint8_t>> truth;
  RlncEncoder encoder;

  Fixture(Rng& rng, std::size_t codewords)
      : body(RandomBody(rng, codewords * 4)),
        truth(BodyToSymbols(body, 4, 8)),
        encoder(truth) {}
};

TEST(CodedRepairSessionTest, DeficitEqualsErasuresAndRepairFills) {
  Rng rng(402);
  Fixture f(rng, 128);  // 16 symbols
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  // Erase symbols 2, 7, 8 (receiver's copy is garbage, flagged bad).
  for (const std::size_t s : {2u, 7u, 8u}) {
    good[s] = false;
    suspicion[s] = 16.0;
    for (auto& b : received[s]) b ^= 0xFF;
  }
  CodedRepairSession session(received, good, suspicion);
  EXPECT_EQ(session.Deficit(), 3u);
  EXPECT_FALSE(session.CanDecode());

  std::uint32_t seed = 1;
  while (!session.CanDecode()) {
    session.ConsumeRepair(f.encoder.MakeRepair(seed++));
    ASSERT_LT(seed, 16u);
  }
  const auto decoded = session.Decode();
  EXPECT_EQ(decoded, f.truth);
}

TEST(CodedRepairSessionTest, EvictionRecoversFromConfidentMiss) {
  Rng rng(403);
  Fixture f(rng, 128);
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  // Symbol 5 is WRONG but labeled good (a SoftPHY miss); it is merely
  // the most suspect of the trusted rows.
  received[5][1] ^= 0x40;
  suspicion[5] = 5.0;

  CodedRepairSession session(received, good, suspicion);
  ASSERT_TRUE(session.CanDecode());  // full rank, but poisoned
  EXPECT_NE(session.Decode(), f.truth);

  // External verification fails -> evict; one repair then restores rank.
  EXPECT_EQ(session.EvictSuspects(), 1u);
  EXPECT_EQ(session.Deficit(), 1u);
  std::uint32_t seed = 9;
  while (!session.CanDecode()) session.ConsumeRepair(f.encoder.MakeRepair(seed++));
  EXPECT_EQ(session.Decode(), f.truth);
}

TEST(CodedRepairSessionTest, EvictionEscalatesToRepairOnlyDecode) {
  Rng rng(404);
  Fixture f(rng, 64);  // 8 symbols
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  const std::vector<double> suspicion(f.truth.size(), 1.0);
  // Every symbol is subtly wrong yet trusted: the worst-case miss.
  for (auto& s : received) s[0] ^= 0x01;

  CodedRepairSession session(received, good, suspicion);
  // Bank enough repairs that eviction can fall back on them entirely.
  std::uint32_t seed = 1;
  for (std::size_t k = 0; k < f.truth.size() + 2; ++k) {
    session.ConsumeRepair(f.encoder.MakeRepair(seed++));
  }
  // Repeated failed verifies: evictions double until nothing is trusted.
  while (session.num_trusted() > 0) session.EvictSuspects();
  ASSERT_TRUE(session.CanDecode());
  EXPECT_EQ(session.Decode(), f.truth);
  EXPECT_EQ(session.EvictSuspects(), 0u);  // nothing left to distrust
}

TEST(PartySeedTest, PartitionsAreDisjointAndSourceKeepsPlainCounters) {
  EXPECT_EQ(PartySeed(0, 1), 1u);
  EXPECT_EQ(PartySeed(0, 7), 7u);
  EXPECT_EQ(PartySeed(1, 1), (1u << 24) | 1u);
  EXPECT_EQ(PartySeed(2, 0xFFFFFF), (2u << 24) | 0xFFFFFFu);
  // A relay counter wraps within its own partition, never into another.
  EXPECT_EQ(PartySeed(1, 0x1000001), (1u << 24) | 1u);
}

TEST(PartySeedTest, ProjectionsInvertThePartitionForArbitraryRelayIds) {
  for (const std::uint32_t party : {0u, 1u, 2u, 7u, 63u, 200u, 255u}) {
    for (const std::uint32_t counter : {0u, 1u, 0x123456u, 0xFFFFFFu}) {
      const std::uint32_t seed =
          PartySeed(static_cast<std::uint8_t>(party), counter);
      EXPECT_EQ(SeedParty(seed), party);
      EXPECT_EQ(SeedCounter(seed), counter);
    }
  }
  // Distinct parties can never collide, whatever their counters do.
  EXPECT_NE(SeedParty(PartySeed(3, 0xFFFFFF)), SeedParty(PartySeed(4, 0)));
}

// Per-party provenance: a poisoned relay's equations are evicted as a
// group (they all share the relay's wrong body image), while another
// relay's stream stays banked.
TEST(CodedRepairSessionTest, EvictionDistrustsAPoisonedRelayAsAGroup) {
  Rng rng(471);
  Fixture f(rng, 96);  // 12 symbols
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  good[2] = good[5] = good[9] = false;  // three honest erasures
  for (auto& b : received[2]) b ^= 0xFF;
  CodedRepairSession session(received, good, suspicion);
  ASSERT_EQ(session.Deficit(), 3u);

  const std::vector<bool> have(f.truth.size(), true);
  // Relay 1 is honest: two equations over the true block.
  for (std::uint32_t c = 1; c <= 2; ++c) {
    const std::uint32_t seed = PartySeed(1, c);
    const auto repair = MakeMaskedRepair(f.truth, have, seed);
    session.ConsumeEquation(MaskedCoefficients(seed, have), repair.data,
                            /*suspicion=*/1.0, /*evictable=*/true,
                            /*party=*/1);
  }
  // Relay 2's copy carries a confident miss: every equation it streams
  // is consistent with the wrong body.
  auto poisoned_copy = f.truth;
  poisoned_copy[7][1] ^= 0x40;
  for (std::uint32_t c = 1; c <= 3; ++c) {
    const std::uint32_t seed = PartySeed(2, c);
    const auto repair = MakeMaskedRepair(poisoned_copy, have, seed);
    session.ConsumeEquation(MaskedCoefficients(seed, have), repair.data,
                            /*suspicion=*/4.0, /*evictable=*/true,
                            /*party=*/2);
  }
  ASSERT_EQ(session.equations_from(1), 2u);
  ASSERT_EQ(session.equations_from(2), 3u);
  ASSERT_TRUE(session.CanDecode());
  EXPECT_NE(session.Decode(), f.truth);  // relay 2's poison is in the basis

  // One eviction pass: relay 2 is the most suspect candidate, and its
  // WHOLE stream is distrusted in one step — relay 1's survives.
  EXPECT_EQ(session.EvictSuspects(), 3u);
  EXPECT_EQ(session.equations_from(2), 0u);
  EXPECT_EQ(session.equations_from(1), 2u);
  std::uint32_t source_seed = 1;
  while (!session.CanDecode()) {
    session.ConsumeRepair(f.encoder.MakeRepair(source_seed++));
    ASSERT_LT(source_seed, 16u);
  }
  EXPECT_EQ(session.Decode(), f.truth);
}

TEST(MaskedRepairTest, DestinationReproducesTheMaskedEquation) {
  Rng rng(406);
  Fixture f(rng, 128);
  std::vector<bool> have(f.truth.size(), true);
  have[3] = have[11] = false;  // the relay missed two symbols
  const std::uint32_t seed = PartySeed(1, 9);
  const auto repair = MakeMaskedRepair(f.truth, have, seed);
  EXPECT_EQ(repair.seed, seed);
  // The destination regenerates the same masked coefficients and the
  // equation holds over the true source block.
  const auto coefs = MaskedCoefficients(seed, have);
  EXPECT_EQ(coefs[3], 0);
  EXPECT_EQ(coefs[11], 0);
  std::vector<std::uint8_t> expect(f.truth.front().size(), 0);
  for (std::size_t i = 0; i < f.truth.size(); ++i) {
    for (std::size_t b = 0; b < expect.size(); ++b) {
      expect[b] ^= GfMul(coefs[i], f.truth[i][b]);
    }
  }
  EXPECT_EQ(repair.data, expect);
}

TEST(MaskedRepairTest, MaskedEquationsFillAnErasureTheyCover) {
  Rng rng(407);
  Fixture f(rng, 128);  // 16 symbols
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  good[5] = false;
  suspicion[5] = 16.0;
  for (auto& b : received[5]) b ^= 0xFF;
  CodedRepairSession session(received, good, suspicion);
  EXPECT_EQ(session.Deficit(), 1u);

  // A relay that also missed symbol 9 can still cover the erasure at 5.
  std::vector<bool> have(f.truth.size(), true);
  have[9] = false;
  std::uint32_t counter = 1;
  while (!session.CanDecode()) {
    const std::uint32_t seed = PartySeed(1, counter++);
    const auto repair = MakeMaskedRepair(f.truth, have, seed);
    session.ConsumeEquation(MaskedCoefficients(seed, have), repair.data,
                            /*suspicion=*/0.5, /*evictable=*/true);
    ASSERT_LT(counter, 8u);
  }
  EXPECT_EQ(session.Decode(), f.truth);
}

TEST(CodedRepairSessionTest, EvictionDistrustsPoisonedRelayEquations) {
  Rng rng(408);
  Fixture f(rng, 128);
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  good[2] = false;  // one honest erasure keeps the deficit open
  suspicion[2] = 16.0;
  for (auto& b : received[2]) b ^= 0xFF;
  CodedRepairSession session(received, good, suspicion);
  EXPECT_EQ(session.Deficit(), 1u);

  // The relay's copy of symbol 7 is wrong-but-confident: its equation
  // passes any wire CRC yet is inconsistent with the true block.
  auto relay_copy = f.truth;
  relay_copy[7][0] ^= 0x20;
  const std::vector<bool> have(f.truth.size(), true);
  const std::uint32_t seed = PartySeed(1, 1);
  const auto poisoned = MakeMaskedRepair(relay_copy, have, seed);
  session.ConsumeEquation(MaskedCoefficients(seed, have), poisoned.data,
                          /*suspicion=*/3.0, /*evictable=*/true);
  ASSERT_TRUE(session.CanDecode());
  EXPECT_NE(session.Decode(), f.truth);  // the poison is in the basis

  // Failed external verify: the relay equation is the most suspect row
  // and the first evicted; a source repair then finishes it honestly.
  EXPECT_EQ(session.EvictSuspects(), 1u);
  EXPECT_EQ(session.Deficit(), 1u);
  std::uint32_t source_seed = 1;
  while (!session.CanDecode()) {
    session.ConsumeRepair(f.encoder.MakeRepair(source_seed++));
    ASSERT_LT(source_seed, 8u);
  }
  EXPECT_EQ(session.Decode(), f.truth);
}

// The full session transcript — decoded bytes, rank/deficit trajectory,
// eviction behavior — must not depend on which GF(256) kernel backend
// is dispatched. The decoded-body CRC is additionally pinned as a
// golden constant so a cross-version drift (Rng, seeds, elimination
// order) cannot hide behind "all backends drifted together".
TEST(CodedRepairSessionTest, TranscriptIsBackendInvariantGolden) {
  constexpr std::uint32_t kGoldenBodyCrc = 0xF5378E50;

  struct Transcript {
    std::vector<std::size_t> deficits;
    std::vector<std::vector<std::uint8_t>> decoded;
    std::uint32_t body_crc = 0;
  };
  const auto run = [] {
    Rng rng(440);
    Fixture f(rng, 136);  // 17 symbols: a tail-padded odd block
    auto received = f.truth;
    std::vector<bool> good(f.truth.size(), true);
    std::vector<double> suspicion(f.truth.size(), 0.0);
    for (const std::size_t s : {1u, 6u, 13u}) {  // honest erasures
      good[s] = false;
      suspicion[s] = 16.0;
      for (auto& b : received[s]) b ^= 0xFF;
    }
    received[4][2] ^= 0x08;  // wrong-but-confident SoftPHY miss
    suspicion[4] = 5.0;

    Transcript t;
    CodedRepairSession session(received, good, suspicion);
    t.deficits.push_back(session.Deficit());

    // A relay with a partial (and slightly poisoned) copy streams two
    // masked equations.
    auto relay_copy = f.truth;
    relay_copy[9][0] ^= 0x20;
    std::vector<bool> have(f.truth.size(), true);
    have[2] = false;
    for (std::uint32_t c = 1; c <= 2; ++c) {
      const std::uint32_t seed = PartySeed(1, c);
      const auto repair = MakeMaskedRepair(relay_copy, have, seed);
      session.ConsumeEquation(MaskedCoefficients(seed, have), repair.data,
                              /*suspicion=*/3.0, /*evictable=*/true);
      t.deficits.push_back(session.Deficit());
    }
    // Source repairs close the remaining deficit; the first decode is
    // poisoned (the miss at 4 or a poisoned relay row is in the basis),
    // so verification fails and eviction rounds run until it is honest.
    std::uint32_t seed = 1;
    while (!session.CanDecode() && seed < 64) {
      session.ConsumeRepair(f.encoder.MakeRepair(seed++));
      t.deficits.push_back(session.Deficit());
    }
    for (int round = 0; round < 16 && session.Decode() != f.truth; ++round) {
      session.EvictSuspects();
      while (!session.CanDecode() && seed < 64) {
        session.ConsumeRepair(f.encoder.MakeRepair(seed++));
      }
      t.deficits.push_back(session.Deficit());
    }
    EXPECT_EQ(session.Decode(), f.truth) << "session failed to converge";
    t.decoded = session.Decode();
    std::vector<std::uint8_t> body;
    for (const auto& s : t.decoded) body.insert(body.end(), s.begin(), s.end());
    t.body_crc = Crc32(body);
    return t;
  };

  const Transcript reference = [&] {
    GfImplScope scope(GfImpl::kScalar);
    return run();
  }();
  EXPECT_EQ(reference.body_crc, kGoldenBodyCrc);
  for (const GfImpl impl : GfAvailableImpls()) {
    GfImplScope scope(impl);
    ASSERT_TRUE(scope.ok());
    const Transcript got = run();
    EXPECT_EQ(got.deficits, reference.deficits) << GfImplName(impl);
    EXPECT_EQ(got.decoded, reference.decoded) << GfImplName(impl);
    EXPECT_EQ(got.body_crc, kGoldenBodyCrc) << GfImplName(impl);
  }
}

TEST(CodedRepairSessionTest, RejectsShapeMismatch) {
  Rng rng(405);
  Fixture f(rng, 64);
  EXPECT_THROW(CodedRepairSession(f.truth, std::vector<bool>(3, true),
                                  std::vector<double>(f.truth.size(), 0.0)),
               std::invalid_argument);
  CodedRepairSession session(f.truth, std::vector<bool>(f.truth.size(), true),
                             std::vector<double>(f.truth.size(), 0.0));
  EXPECT_THROW(session.ConsumeRepair(RepairSymbol{1, {0, 1, 2}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppr::fec
