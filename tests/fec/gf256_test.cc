#include "fec/gf256.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace ppr::fec {
namespace {

TEST(Gf256Test, LogExpRoundtrip) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(GfExp(GfLog(static_cast<std::uint8_t>(a))), a);
  }
  // exp is 255-periodic (the multiplicative group order).
  for (unsigned p = 0; p < 255; ++p) {
    EXPECT_EQ(GfExp(p), GfExp(p + 255));
  }
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, 1), x);
    EXPECT_EQ(GfMul(1, x), x);
    EXPECT_EQ(GfMul(x, 0), 0);
    EXPECT_EQ(GfMul(0, x), 0);
  }
}

TEST(Gf256Test, MulCommutes) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 0; b < 256; b += 5) {
      EXPECT_EQ(GfMul(static_cast<std::uint8_t>(a),
                      static_cast<std::uint8_t>(b)),
                GfMul(static_cast<std::uint8_t>(b),
                      static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, MulAssociates) {
  Rng rng(271);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto c = static_cast<std::uint8_t>(rng.UniformInt(256));
    EXPECT_EQ(GfMul(GfMul(a, b), c), GfMul(a, GfMul(b, c)));
  }
}

TEST(Gf256Test, MulDistributesOverXor) {
  // Addition in GF(2^8) is XOR: a*(b+c) == a*b + a*c.
  Rng rng(272);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto c = static_cast<std::uint8_t>(rng.UniformInt(256));
    EXPECT_EQ(GfMul(a, b ^ c), GfMul(a, b) ^ GfMul(a, c));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, GfInv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Rng rng(273);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    EXPECT_EQ(GfDiv(a, b), GfMul(a, GfInv(b)));
    EXPECT_EQ(GfMul(GfDiv(a, b), b), a);
  }
}

TEST(Gf256Test, AxpyMatchesScalarReference) {
  Rng rng(274);
  for (const std::size_t len : {std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{64},
                                std::size_t{1000}}) {
    for (const unsigned coef : {0u, 1u, 2u, 0x53u, 0xFFu}) {
      std::vector<std::uint8_t> dst(len), src(len), expect(len);
      for (std::size_t i = 0; i < len; ++i) {
        dst[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
        src[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
        expect[i] = dst[i] ^ GfMul(static_cast<std::uint8_t>(coef), src[i]);
      }
      GfAxpy(dst, static_cast<std::uint8_t>(coef), src);
      EXPECT_EQ(dst, expect) << "len=" << len << " coef=" << coef;
    }
  }
}

TEST(Gf256Test, ScaleMatchesScalarReference) {
  Rng rng(275);
  std::vector<std::uint8_t> data(257), expect(257);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  for (const unsigned coef : {0u, 1u, 0xA7u}) {
    auto scaled = data;
    for (std::size_t i = 0; i < data.size(); ++i) {
      expect[i] = GfMul(static_cast<std::uint8_t>(coef), data[i]);
    }
    GfScale(scaled, static_cast<std::uint8_t>(coef));
    EXPECT_EQ(scaled, expect) << "coef=" << coef;
  }
}

TEST(Gf256DispatchTest, ScalarAlwaysAvailableAndActiveIsAvailable) {
  EXPECT_TRUE(GfImplAvailable(GfImpl::kScalar));
  const auto impls = GfAvailableImpls();
  ASSERT_FALSE(impls.empty());
  EXPECT_EQ(impls.front(), GfImpl::kScalar);
  EXPECT_NE(std::find(impls.begin(), impls.end(), GfActiveImpl()),
            impls.end());
}

TEST(Gf256DispatchTest, ImplNamesRoundtrip) {
  for (const GfImpl impl : {GfImpl::kScalar, GfImpl::kSsse3, GfImpl::kAvx2,
                            GfImpl::kNeon, GfImpl::kGfni, GfImpl::kAvx512}) {
    const auto back = GfImplFromName(GfImplName(impl));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, impl);
  }
  EXPECT_FALSE(GfImplFromName("pshufb").has_value());
  EXPECT_FALSE(GfImplFromName("").has_value());
}

TEST(Gf256DispatchTest, SetImplRejectsUnavailableBackends) {
  const GfImpl before = GfActiveImpl();
  for (const GfImpl impl : {GfImpl::kScalar, GfImpl::kSsse3, GfImpl::kAvx2,
                            GfImpl::kNeon, GfImpl::kGfni, GfImpl::kAvx512}) {
    if (!GfImplAvailable(impl)) {
      EXPECT_FALSE(GfSetImpl(impl));
      EXPECT_EQ(GfActiveImpl(), before);
    }
  }
}

// Every backend must agree byte-for-byte with the table multiply across
// coef 0/1/random, lengths spanning 0-4 KiB with non-multiple-of-16
// tails, and deliberately misaligned spans: SIMD kernels use unaligned
// loads, and the symbol buffers they see in practice carry no alignment
// guarantee.
TEST(Gf256DispatchTest, AxpyAgreesWithTableMultiplyOnEveryBackend) {
  Rng rng(276);
  const std::size_t lengths[] = {0,  1,  3,   7,   8,    15,   16,  17,
                                 31, 33, 63,  64,  65,   100,  127, 255,
                                 256, 257, 1000, 1024, 1033, 4095, 4096};
  for (const GfImpl impl : GfAvailableImpls()) {
    GfImplScope guard(impl);
    ASSERT_TRUE(guard.ok());
    for (const std::size_t len : lengths) {
      for (const unsigned coef :
           {0u, 1u, 2u, 0x53u, 0x80u, 0xFFu,
            1u + static_cast<unsigned>(rng.UniformInt(255))}) {
        // Backing stores three bytes longer than the span: the spans
        // start at offsets 1 and 2, so vector loads are misaligned and
        // an overrun would corrupt (checkable) padding.
        std::vector<std::uint8_t> dst_buf(len + 3), src_buf(len + 3);
        for (auto& b : dst_buf) b = static_cast<std::uint8_t>(rng.UniformInt(256));
        for (auto& b : src_buf) b = static_cast<std::uint8_t>(rng.UniformInt(256));
        const auto dst_pad = dst_buf;
        std::span<std::uint8_t> dst(dst_buf.data() + 1, len);
        std::span<const std::uint8_t> src(src_buf.data() + 2, len);
        std::vector<std::uint8_t> expect(len);
        for (std::size_t i = 0; i < len; ++i) {
          expect[i] = dst[i] ^ GfMul(static_cast<std::uint8_t>(coef), src[i]);
        }
        GfAxpy(dst, static_cast<std::uint8_t>(coef), src);
        EXPECT_TRUE(std::equal(expect.begin(), expect.end(), dst.begin()))
            << GfImplName(impl) << " len=" << len << " coef=" << coef;
        EXPECT_EQ(dst_buf[0], dst_pad[0]) << "underrun";
        EXPECT_EQ(dst_buf[len + 1], dst_pad[len + 1]) << "overrun";
        EXPECT_EQ(dst_buf[len + 2], dst_pad[len + 2]) << "overrun";
      }
    }
  }
}

TEST(Gf256DispatchTest, ScaleAgreesWithTableMultiplyOnEveryBackend) {
  Rng rng(277);
  for (const GfImpl impl : GfAvailableImpls()) {
    GfImplScope guard(impl);
    ASSERT_TRUE(guard.ok());
    for (const std::size_t len : {std::size_t{0}, std::size_t{5},
                                  std::size_t{16}, std::size_t{63},
                                  std::size_t{257}, std::size_t{4096}}) {
      for (const unsigned coef : {0u, 1u, 0xA7u}) {
        std::vector<std::uint8_t> data(len), expect(len);
        for (std::size_t i = 0; i < len; ++i) {
          data[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
          expect[i] = GfMul(static_cast<std::uint8_t>(coef), data[i]);
        }
        GfScale(data, static_cast<std::uint8_t>(coef));
        EXPECT_EQ(data, expect)
            << GfImplName(impl) << " len=" << len << " coef=" << coef;
      }
    }
  }
}

// GfAxpyN must equal term-by-term GfAxpy (it only reorders the walk
// into dst blocks), including coef 0 and 1 terms and a term count that
// crosses the internal block size.
TEST(Gf256DispatchTest, AxpyNMatchesSequentialAxpyOnEveryBackend) {
  Rng rng(278);
  for (const GfImpl impl : GfAvailableImpls()) {
    GfImplScope guard(impl);
    ASSERT_TRUE(guard.ok());
    for (const std::size_t len : {std::size_t{0}, std::size_t{4},
                                  std::size_t{100}, std::size_t{1024},
                                  std::size_t{4096}, std::size_t{5000}}) {
      std::vector<std::uint8_t> dst(len), expect(len);
      for (std::size_t i = 0; i < len; ++i) {
        dst[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
      }
      expect = dst;
      std::vector<std::vector<std::uint8_t>> srcs(9);
      std::vector<GfTerm> terms;
      std::uint8_t coef = 0;  // first terms exercise coef 0 and 1
      for (auto& s : srcs) {
        s.resize(len);
        for (auto& b : s) b = static_cast<std::uint8_t>(rng.UniformInt(256));
        terms.push_back({coef, s});
        coef = coef < 2 ? coef + 1
                        : static_cast<std::uint8_t>(1 + rng.UniformInt(255));
      }
      for (const auto& t : terms) GfAxpy(expect, t.coef, t.src);
      GfAxpyN(dst, terms);
      EXPECT_EQ(dst, expect) << GfImplName(impl) << " len=" << len;
    }
  }
}

}  // namespace
}  // namespace ppr::fec
