#include "fec/gf256.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace ppr::fec {
namespace {

TEST(Gf256Test, LogExpRoundtrip) {
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(GfExp(GfLog(static_cast<std::uint8_t>(a))), a);
  }
  // exp is 255-periodic (the multiplicative group order).
  for (unsigned p = 0; p < 255; ++p) {
    EXPECT_EQ(GfExp(p), GfExp(p + 255));
  }
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, 1), x);
    EXPECT_EQ(GfMul(1, x), x);
    EXPECT_EQ(GfMul(x, 0), 0);
    EXPECT_EQ(GfMul(0, x), 0);
  }
}

TEST(Gf256Test, MulCommutes) {
  for (unsigned a = 0; a < 256; a += 3) {
    for (unsigned b = 0; b < 256; b += 5) {
      EXPECT_EQ(GfMul(static_cast<std::uint8_t>(a),
                      static_cast<std::uint8_t>(b)),
                GfMul(static_cast<std::uint8_t>(b),
                      static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256Test, MulAssociates) {
  Rng rng(271);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto c = static_cast<std::uint8_t>(rng.UniformInt(256));
    EXPECT_EQ(GfMul(GfMul(a, b), c), GfMul(a, GfMul(b, c)));
  }
}

TEST(Gf256Test, MulDistributesOverXor) {
  // Addition in GF(2^8) is XOR: a*(b+c) == a*b + a*c.
  Rng rng(272);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto c = static_cast<std::uint8_t>(rng.UniformInt(256));
    EXPECT_EQ(GfMul(a, b ^ c), GfMul(a, b) ^ GfMul(a, c));
  }
}

TEST(Gf256Test, EveryNonzeroElementHasInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(GfMul(x, GfInv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Rng rng(273);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.UniformInt(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.UniformInt(255));
    EXPECT_EQ(GfDiv(a, b), GfMul(a, GfInv(b)));
    EXPECT_EQ(GfMul(GfDiv(a, b), b), a);
  }
}

TEST(Gf256Test, AxpyMatchesScalarReference) {
  Rng rng(274);
  for (const std::size_t len : {std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{64},
                                std::size_t{1000}}) {
    for (const unsigned coef : {0u, 1u, 2u, 0x53u, 0xFFu}) {
      std::vector<std::uint8_t> dst(len), src(len), expect(len);
      for (std::size_t i = 0; i < len; ++i) {
        dst[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
        src[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
        expect[i] = dst[i] ^ GfMul(static_cast<std::uint8_t>(coef), src[i]);
      }
      GfAxpy(dst, static_cast<std::uint8_t>(coef), src);
      EXPECT_EQ(dst, expect) << "len=" << len << " coef=" << coef;
    }
  }
}

TEST(Gf256Test, ScaleMatchesScalarReference) {
  Rng rng(275);
  std::vector<std::uint8_t> data(257), expect(257);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  for (const unsigned coef : {0u, 1u, 0xA7u}) {
    auto scaled = data;
    for (std::size_t i = 0; i < data.size(); ++i) {
      expect[i] = GfMul(static_cast<std::uint8_t>(coef), data[i]);
    }
    GfScale(scaled, static_cast<std::uint8_t>(coef));
    EXPECT_EQ(scaled, expect) << "coef=" << coef;
  }
}

}  // namespace
}  // namespace ppr::fec
