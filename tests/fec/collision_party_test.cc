// Collision provenance: equations banked under kCollisionResolvedParty
// form one eviction group. A poisoned stripping chain (confidently
// wrong values threaded through every equation it emitted) must be
// evictable in one step without stranding the decoder's basis.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fec/coded_repair.h"
#include "fec/rlnc.h"

namespace ppr::fec {
namespace {

BitVec RandomBody(Rng& rng, std::size_t bits) {
  BitVec body;
  for (std::size_t i = 0; i < bits; ++i) body.PushBack(rng.Bernoulli(0.5));
  return body;
}

struct Fixture {
  BitVec body;
  std::vector<std::vector<std::uint8_t>> truth;
  RlncEncoder encoder;

  Fixture(Rng& rng, std::size_t codewords)
      : body(RandomBody(rng, codewords * 4)),
        truth(BodyToSymbols(body, 4, 8)),
        encoder(truth) {}
};

// A unit equation naming symbol `s` with the given data bytes.
std::vector<std::uint8_t> UnitCoefs(std::size_t n, std::size_t s) {
  std::vector<std::uint8_t> coefs(n, 0);
  coefs[s] = 1;
  return coefs;
}

TEST(CollisionPartyTest, TagIsOutsideTheRelayRoster) {
  // Relay rosters are capped well below 0xFF, so the collision tag can
  // never alias a relay's eviction group.
  EXPECT_EQ(kCollisionResolvedParty, 0xFF);
}

TEST(CollisionPartyTest, PoisonedStrippingChainEvictsAsOneGroup) {
  Rng rng(1201);
  Fixture f(rng, 128);  // 16 symbols of 8 codewords
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  // Three symbols were lost to the collision overlap.
  for (const std::size_t s : {2u, 7u, 8u}) {
    good[s] = false;
    suspicion[s] = 16.0;
    for (auto& b : received[s]) b ^= 0xFF;
  }
  CodedRepairSession session(received, good, suspicion);
  ASSERT_EQ(session.Deficit(), 3u);

  // A stripping chain that went wrong early threads the same error
  // through every value it resolved: all three banked equations are
  // confidently wrong.
  for (const std::size_t s : {2u, 7u, 8u}) {
    auto data = f.truth[s];
    data[0] ^= 0x40;  // the chain's propagated miss
    ASSERT_TRUE(session.ConsumeEquation(UnitCoefs(f.truth.size(), s), data,
                                        /*suspicion=*/8.0,
                                        /*evictable=*/true,
                                        /*party=*/kCollisionResolvedParty));
  }
  ASSERT_EQ(session.equations_from(kCollisionResolvedParty), 3u);
  ASSERT_TRUE(session.CanDecode());
  EXPECT_NE(session.Decode(), f.truth);  // the poison is in the basis

  // External verification fails -> one eviction pass distrusts the
  // WHOLE collision group, not one equation at a time.
  EXPECT_EQ(session.EvictSuspects(), 3u);
  EXPECT_EQ(session.equations_from(kCollisionResolvedParty), 0u);
  EXPECT_EQ(session.Deficit(), 3u);

  // The basis is not stranded: ordinary source repairs finish the job.
  std::uint32_t seed = 1;
  while (!session.CanDecode()) {
    session.ConsumeRepair(f.encoder.MakeRepair(seed++));
    ASSERT_LT(seed, 16u);
  }
  EXPECT_EQ(session.Decode(), f.truth);
}

TEST(CollisionPartyTest, HonestCollisionEquationsSurviveRelayEviction) {
  Rng rng(1301);
  Fixture f(rng, 64);  // 8 symbols
  auto received = f.truth;
  std::vector<bool> good(f.truth.size(), true);
  std::vector<double> suspicion(f.truth.size(), 0.0);
  for (const std::size_t s : {1u, 4u}) {
    good[s] = false;
    suspicion[s] = 16.0;
    for (auto& b : received[s]) b ^= 0xFF;
  }
  CodedRepairSession session(received, good, suspicion);
  ASSERT_EQ(session.Deficit(), 2u);

  // The collision listener banked a correct unit equation (low
  // suspicion: the chain was short and confident).
  ASSERT_TRUE(session.ConsumeEquation(UnitCoefs(f.truth.size(), 1),
                                      f.truth[1], /*suspicion=*/1.0,
                                      /*evictable=*/true,
                                      kCollisionResolvedParty));
  // A relay's stream carries a confident miss for the other hole.
  const std::vector<bool> have(f.truth.size(), true);
  auto poisoned_copy = f.truth;
  poisoned_copy[4][1] ^= 0x08;
  const std::uint32_t seed = PartySeed(1, 1);
  const auto repair = MakeMaskedRepair(poisoned_copy, have, seed);
  ASSERT_TRUE(session.ConsumeEquation(MaskedCoefficients(seed, have),
                                      repair.data, /*suspicion=*/6.0,
                                      /*evictable=*/true, /*party=*/1));
  ASSERT_TRUE(session.CanDecode());
  EXPECT_NE(session.Decode(), f.truth);

  // Eviction targets the most suspect group: the relay, not the
  // collision bank.
  EXPECT_EQ(session.EvictSuspects(), 1u);
  EXPECT_EQ(session.equations_from(1), 0u);
  EXPECT_EQ(session.equations_from(kCollisionResolvedParty), 1u);
  std::uint32_t source_seed = 1;
  while (!session.CanDecode()) {
    session.ConsumeRepair(f.encoder.MakeRepair(source_seed++));
    ASSERT_LT(source_seed, 16u);
  }
  EXPECT_EQ(session.Decode(), f.truth);
}

}  // namespace
}  // namespace ppr::fec
