// Additive-FFT properties: the subspace-polynomial tables against a
// symbolic expansion of W_i, forward/inverse round trips on every
// size/coset, and the transform against naive novel-basis evaluation.
#include "fec/fft.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fec/gf65536.h"

namespace ppr::fec {
namespace {

// Symbolic polynomial over GF(2^16): coefficient vector, index = power.
using Poly = std::vector<Gf16>;

Poly PolyMul(const Poly& a, const Poly& b) {
  Poly out(a.size() + b.size() - 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] ^= Gf16Mul(a[i], b[j]);
    }
  }
  return out;
}

Gf16 PolyEval(const Poly& p, Gf16 x) {
  Gf16 acc = 0;
  for (std::size_t i = p.size(); i-- > 0;) {
    acc = static_cast<Gf16>(Gf16Mul(acc, x) ^ p[i]);
  }
  return acc;
}

// W_i(x) = prod over v in V_i = {0..2^i-1} of (x ^ v), expanded.
Poly SubspacePoly(unsigned i) {
  Poly w{0, 1};  // x ^ 0
  for (unsigned v = 1; v < (1u << i); ++v) {
    w = PolyMul(w, Poly{static_cast<Gf16>(v), 1});
  }
  return w;
}

// WHat_i evaluated at `u` via the expansion (the table-free reference
// for SkewAt and DerivativeConst).
TEST(AdditiveFftTest, TablesMatchSymbolicSubspacePolynomials) {
  const AdditiveFft& fft = AdditiveFft::Instance();
  for (unsigned i = 0; i <= 6; ++i) {
    const Poly w = SubspacePoly(i);
    const Gf16 norm = PolyEval(w, static_cast<Gf16>(1u << i));  // W_i(beta_i)
    ASSERT_NE(norm, 0u);
    // DerivativeConst: a linearized polynomial's derivative is its
    // x-coefficient; WHat normalizes by W_i(beta_i).
    EXPECT_EQ(fft.DerivativeConst(i), Gf16Div(w[1], norm)) << "i=" << i;
    // SkewAt against direct evaluation, including V_i roots (skew 0).
    Rng rng(100 + i);
    for (int trial = 0; trial < 200; ++trial) {
      const auto u = static_cast<unsigned>(rng.UniformInt(65536));
      EXPECT_EQ(fft.SkewAt(i, u),
                Gf16Div(PolyEval(w, static_cast<Gf16>(u)), norm))
          << "i=" << i << " u=" << u;
    }
    for (unsigned u = 0; u < (1u << i); ++u) {
      EXPECT_EQ(fft.SkewAt(i, u), 0u) << "V_" << i << " root " << u;
    }
    EXPECT_EQ(fft.SkewAt(i, 1u << i), 1u);  // the normalization anchor
  }
}

TEST(AdditiveFftTest, ForwardInverseRoundTrip) {
  const AdditiveFft& fft = AdditiveFft::Instance();
  Rng rng(42);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                              std::size_t{64}, std::size_t{256}}) {
    for (const std::size_t base : {std::size_t{0}, n, 4 * n}) {
      const std::size_t words = 3;
      std::vector<Gf16> data(n * words);
      for (auto& v : data) v = static_cast<Gf16>(rng.UniformInt(65536));
      auto copy = data;
      fft.Fft(copy.data(), words, n, base);
      fft.Ifft(copy.data(), words, n, base);
      ASSERT_EQ(copy, data) << "fft+ifft n=" << n << " base=" << base;
      fft.Ifft(copy.data(), words, n, base);
      fft.Fft(copy.data(), words, n, base);
      ASSERT_EQ(copy, data) << "ifft+fft n=" << n << " base=" << base;
    }
  }
}

// The transform against naive evaluation: FFT of novel-basis
// coefficients must equal XOR_j coef_j * X_j(u) at every point of the
// coset, with X_j(u) = prod over set bits i of j of WHat_i(u).
TEST(AdditiveFftTest, FftMatchesNaiveNovelBasisEvaluation) {
  const AdditiveFft& fft = AdditiveFft::Instance();
  Rng rng(43);
  const std::size_t n = 16;
  for (const std::size_t base : {std::size_t{0}, std::size_t{16},
                                 std::size_t{96}}) {
    std::vector<Gf16> coefs(n);
    for (auto& v : coefs) v = static_cast<Gf16>(rng.UniformInt(65536));
    auto evals = coefs;
    fft.Fft(evals.data(), /*words=*/1, n, base);
    for (std::size_t u = 0; u < n; ++u) {
      Gf16 want = 0;
      for (std::size_t j = 0; j < n; ++j) {
        Gf16 basis = 1;
        for (unsigned i = 0; i < 16; ++i) {
          if (j & (std::size_t{1} << i)) {
            basis = Gf16Mul(basis,
                            fft.SkewAt(i, static_cast<unsigned>(base + u)));
          }
        }
        want ^= Gf16Mul(coefs[j], basis);
      }
      ASSERT_EQ(evals[u], want) << "base=" << base << " u=" << u;
    }
  }
}

// Derivative against the product rule applied symbolically: expand
// f = sum f_j X_j into monomials, differentiate (char 2: even powers
// vanish), and re-expand the transform's claimed coefficients.
TEST(AdditiveFftTest, DerivativeMatchesMonomialDifferentiation) {
  const AdditiveFft& fft = AdditiveFft::Instance();
  Rng rng(44);
  const std::size_t n = 16;
  // Novel-basis polynomials X_j as monomial expansions.
  std::vector<Poly> basis(n);
  for (std::size_t j = 0; j < n; ++j) {
    Poly x{1};
    for (unsigned i = 0; i < 4; ++i) {
      if (j & (std::size_t{1} << i)) {
        Poly w = SubspacePoly(i);
        const Gf16 norm = PolyEval(w, static_cast<Gf16>(1u << i));
        for (auto& c : w) c = Gf16Div(c, norm);
        x = PolyMul(x, w);
      }
    }
    basis[j] = x;
  }
  std::vector<Gf16> coefs(n);
  for (auto& v : coefs) v = static_cast<Gf16>(rng.UniformInt(65536));

  // Monomial image of f and its formal derivative.
  Poly mono(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < basis[j].size(); ++p) {
      mono[p] ^= Gf16Mul(coefs[j], basis[j][p]);
    }
  }
  Poly dmono(n, 0);
  for (std::size_t p = 1; p < n; p += 2) dmono[p - 1] = mono[p];

  // The transform's derivative, re-expanded to monomials.
  auto dcoefs = coefs;
  std::vector<Gf16> scratch(n);
  fft.Derivative(dcoefs.data(), /*words=*/1, n, scratch.data());
  Poly got(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t p = 0; p < basis[j].size(); ++p) {
      got[p] ^= Gf16Mul(dcoefs[j], basis[j][p]);
    }
  }
  EXPECT_EQ(got, dmono);
}

}  // namespace
}  // namespace ppr::fec
