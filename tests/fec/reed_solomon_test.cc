// Reed-Solomon codec properties: encode -> erase -> decode recovers
// bit-identical payloads across block shapes (including non-powers of
// two and m > k), at-capacity erasure patterns, the EquationSink
// unit-row contract, and agreement with RLNC on identical erasure
// patterns and seeds.
#include "fec/reed_solomon.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "fec/rlnc.h"

namespace ppr::fec {
namespace {

std::vector<std::vector<std::uint8_t>> RandomBlock(Rng& rng, std::size_t n,
                                                   std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> block(n);
  for (auto& s : block) {
    s.resize(bytes);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  }
  return block;
}

std::vector<std::uint8_t> ToVec(std::span<const std::uint8_t> s) {
  return {s.begin(), s.end()};
}

// Encodes `block`, erases the given data/parity positions, decodes,
// and checks every source symbol comes back bit-identical.
void RoundTrip(const std::vector<std::vector<std::uint8_t>>& block,
               std::size_t m, const std::vector<std::size_t>& erased_data,
               const std::vector<std::size_t>& erased_parity) {
  const std::size_t k = block.size();
  const std::size_t bytes = block.front().size();
  ReedSolomonEncoder enc(k, m, bytes);
  for (std::size_t i = 0; i < k; ++i) enc.SetSource(i, block[i]);
  enc.Finish();

  ReedSolomonDecoder dec(k, m, bytes);
  for (std::size_t i = 0; i < k; ++i) {
    if (std::find(erased_data.begin(), erased_data.end(), i) ==
        erased_data.end()) {
      dec.AddSourceSpan(i, block[i]);
    }
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (std::find(erased_parity.begin(), erased_parity.end(), j) ==
        erased_parity.end()) {
      dec.AddParitySpan(j, enc.Parity(j));
    }
  }
  ASSERT_TRUE(dec.CanDecode())
      << "k=" << k << " m=" << m << " e_d=" << erased_data.size()
      << " e_p=" << erased_parity.size();
  dec.Decode();
  ASSERT_TRUE(dec.Complete());
  for (std::size_t i = 0; i < k; ++i) {
    ASSERT_EQ(ToVec(dec.Symbol(i)), block[i])
        << "k=" << k << " m=" << m << " symbol " << i;
  }
}

TEST(ReedSolomonTest, RoundTripAcrossShapes) {
  Rng rng(7001);
  struct Shape {
    std::size_t k, m, bytes;
  };
  for (const Shape s : {Shape{1, 1, 2}, Shape{2, 1, 8}, Shape{5, 3, 10},
                        Shape{8, 4, 32}, Shape{48, 16, 64}, Shape{100, 37, 20},
                        Shape{256, 128, 8}, Shape{60, 80, 6}}) {
    const auto block = RandomBlock(rng, s.k, s.bytes);
    // At-capacity: erase as many data symbols as parity allows (all
    // parity kept), plus a mixed pattern splitting the budget.
    std::vector<std::size_t> data_idx(s.k);
    std::iota(data_idx.begin(), data_idx.end(), 0);
    for (std::size_t t = data_idx.size(); t > 1; --t) {
      std::swap(data_idx[t - 1], data_idx[rng.UniformInt(t)]);
    }
    const std::size_t full = std::min(s.m, s.k);
    RoundTrip(block, s.m,
              {data_idx.begin(), data_idx.begin() + full}, {});
    const std::size_t e_d = full / 2;
    std::vector<std::size_t> parity_idx(s.m);
    std::iota(parity_idx.begin(), parity_idx.end(), 0);
    for (std::size_t t = parity_idx.size(); t > 1; --t) {
      std::swap(parity_idx[t - 1], parity_idx[rng.UniformInt(t)]);
    }
    const std::size_t e_p = s.m - full;  // keep exactly `full` parities
    RoundTrip(block, s.m, {data_idx.begin(), data_idx.begin() + e_d},
              {parity_idx.begin(),
               parity_idx.begin() + std::min(s.m - e_d, e_p + (full - e_d))});
  }
}

TEST(ReedSolomonTest, NoErasuresIsANoop) {
  Rng rng(7002);
  const auto block = RandomBlock(rng, 12, 16);
  RoundTrip(block, 4, {}, {});
}

TEST(ReedSolomonTest, DuplicateAndBadShapesRejected) {
  Rng rng(7003);
  const auto block = RandomBlock(rng, 4, 8);
  ReedSolomonDecoder dec(4, 2, 8);
  EXPECT_TRUE(dec.AddSourceSpan(1, block[1]));
  EXPECT_FALSE(dec.AddSourceSpan(1, block[1]));  // duplicate
  EXPECT_THROW(dec.AddSourceSpan(9, block[0]), std::invalid_argument);
  EXPECT_THROW(ReedSolomonDecoder(4, 2, 7), std::invalid_argument);
  EXPECT_THROW(ReedSolomonEncoder(0, 2, 8), std::invalid_argument);
  EXPECT_THROW(dec.Decode(), std::logic_error);  // CanDecode() false
}

TEST(ReedSolomonTest, EquationSinkConsumesUnitRowsOnly) {
  Rng rng(7004);
  const std::size_t k = 6, m = 3, bytes = 12;
  const auto block = RandomBlock(rng, k, bytes);
  ReedSolomonEncoder enc(k, m, bytes);
  for (std::size_t i = 0; i < k; ++i) enc.SetSource(i, block[i]);
  enc.Finish();

  ReedSolomonDecoder dec(k, m, bytes);
  EquationSink& sink = dec;
  ASSERT_EQ(sink.equation_width(), k + m);
  ASSERT_EQ(sink.equation_bytes(), bytes);

  std::vector<std::uint8_t> coefs(k + m, 0);
  // Dense row: rejected, no state change.
  coefs[0] = 3;
  coefs[2] = 7;
  EXPECT_FALSE(sink.ConsumeEquationSpan(coefs, block[0]));
  // Scaled unit row: also rejected (an erasure code consumes verbatim
  // symbols, not multiples).
  std::fill(coefs.begin(), coefs.end(), 0);
  coefs[1] = 5;
  EXPECT_FALSE(sink.ConsumeEquationSpan(coefs, block[1]));
  EXPECT_EQ(dec.known_data(), 0u);

  // Unit source rows and unit parity rows are consumed.
  for (std::size_t i = 2; i < k; ++i) {
    std::fill(coefs.begin(), coefs.end(), 0);
    coefs[i] = 1;
    EXPECT_TRUE(sink.ConsumeEquationSpan(coefs, block[i]));
  }
  for (std::size_t j = 0; j < 2; ++j) {
    std::fill(coefs.begin(), coefs.end(), 0);
    coefs[k + j] = 1;
    EXPECT_TRUE(sink.ConsumeEquationSpan(coefs, enc.Parity(j)));
  }
  ASSERT_TRUE(dec.CanDecode());
  dec.Decode();
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(ToVec(dec.Symbol(i)), block[i]);
  }
}

// RS and RLNC on identical erasure patterns and repair budgets must
// both recover the identical source block (bit-identical payloads).
TEST(ReedSolomonTest, AgreesWithRlncOnIdenticalErasurePatterns) {
  Rng rng(7005);
  const std::size_t k = 24, m = 8, bytes = 16;
  for (int trial = 0; trial < 10; ++trial) {
    const auto block = RandomBlock(rng, k, bytes);

    std::vector<std::size_t> idx(k);
    std::iota(idx.begin(), idx.end(), 0);
    for (std::size_t t = idx.size(); t > 1; --t) {
      std::swap(idx[t - 1], idx[rng.UniformInt(t)]);
    }
    const std::size_t e_d = 1 + rng.UniformInt(m);
    const std::vector<std::size_t> erased(idx.begin(), idx.begin() + e_d);

    // RS path.
    ReedSolomonEncoder enc(k, m, bytes);
    for (std::size_t i = 0; i < k; ++i) enc.SetSource(i, block[i]);
    enc.Finish();
    ReedSolomonDecoder rs(k, m, bytes);
    for (std::size_t i = 0; i < k; ++i) {
      if (std::find(erased.begin(), erased.end(), i) == erased.end()) {
        rs.AddSourceSpan(i, block[i]);
      }
    }
    for (std::size_t j = 0; j < e_d; ++j) rs.AddParitySpan(j, enc.Parity(j));
    ASSERT_TRUE(rs.CanDecode());
    rs.Decode();

    // RLNC path: same surviving systematic symbols, e_d seeded repairs.
    RlncEncoder rlnc_enc{std::vector<std::vector<std::uint8_t>>(block)};
    RlncDecoder rlnc(k, bytes);
    for (std::size_t i = 0; i < k; ++i) {
      if (std::find(erased.begin(), erased.end(), i) == erased.end()) {
        rlnc.AddSource(i, block[i]);
      }
    }
    std::uint32_t seed = 1000 + static_cast<std::uint32_t>(trial);
    while (!rlnc.Complete()) {
      rlnc.AddRepair(rlnc_enc.MakeRepair(seed++));
    }

    for (std::size_t i = 0; i < k; ++i) {
      const auto want = block[i];
      ASSERT_EQ(ToVec(rs.Symbol(i)), want) << "rs symbol " << i;
      const auto got = rlnc.Symbol(i);
      ASSERT_EQ(std::vector<std::uint8_t>(got.begin(), got.end()), want)
          << "rlnc symbol " << i;
    }
  }
}

TEST(ReedSolomonTest, EncoderResetReusesBlock) {
  Rng rng(7006);
  ReedSolomonEncoder enc(4, 2, 8);
  const auto a = RandomBlock(rng, 4, 8);
  for (std::size_t i = 0; i < 4; ++i) enc.SetSource(i, a[i]);
  enc.Finish();
  const auto parity_a = ToVec(enc.Parity(0));
  enc.Reset();
  const auto b = RandomBlock(rng, 4, 8);
  for (std::size_t i = 0; i < 4; ++i) enc.SetSource(i, b[i]);
  enc.Finish();
  EXPECT_NE(ToVec(enc.Parity(0)), parity_a);

  // Parity is deterministic per block content.
  ReedSolomonEncoder enc2(4, 2, 8);
  for (std::size_t i = 0; i < 4; ++i) enc2.SetSource(i, b[i]);
  enc2.Finish();
  EXPECT_EQ(ToVec(enc.Parity(0)), ToVec(enc2.Parity(0)));
  EXPECT_EQ(ToVec(enc.Parity(1)), ToVec(enc2.Parity(1)));
}

}  // namespace
}  // namespace ppr::fec
