// GF(2^16) field properties: the log/exp tables against a bitwise
// carryless-multiply reference, inverse/division round-trips, and the
// dispatched span kernels (AVX2 where the host has it) against the
// always-scalar reference on ragged, unaligned spans.
#include "fec/gf65536.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ppr::fec {
namespace {

// Bitwise reference multiply: shift-and-xor, reduced by the primitive
// polynomial — no tables involved.
Gf16 RefMul(Gf16 a, Gf16 b) {
  std::uint32_t acc = 0;
  std::uint32_t x = a;
  for (unsigned i = 0; i < 16; ++i) {
    if (b & (1u << i)) acc ^= x << i;
  }
  for (int bit = 31; bit >= 16; --bit) {
    if (acc & (1u << bit)) acc ^= kGf16PrimitivePoly << (bit - 16);
  }
  return static_cast<Gf16>(acc);
}

TEST(Gf65536Test, AlphaIsPrimitive) {
  // alpha = 2 must have full order: its powers hit every nonzero
  // element exactly once before cycling.
  std::vector<bool> seen(65536, false);
  for (unsigned p = 0; p < 65535; ++p) {
    const Gf16 v = Gf16Exp(p);
    ASSERT_NE(v, 0u);
    ASSERT_FALSE(seen[v]) << "power " << p;
    seen[v] = true;
  }
  EXPECT_EQ(Gf16Exp(65535), Gf16Exp(0));  // doubled table wraps
  EXPECT_EQ(Gf16Exp(0), 1u);
}

TEST(Gf65536Test, MulMatchesCarrylessReference) {
  Rng rng(9001);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto a = static_cast<Gf16>(rng.UniformInt(65536));
    const auto b = static_cast<Gf16>(rng.UniformInt(65536));
    ASSERT_EQ(Gf16Mul(a, b), RefMul(a, b)) << a << " * " << b;
  }
  EXPECT_EQ(Gf16Mul(0, 0x1234), 0u);
  EXPECT_EQ(Gf16Mul(0x1234, 0), 0u);
  EXPECT_EQ(Gf16Mul(1, 0xFFFF), 0xFFFFu);
  EXPECT_EQ(Gf16Mul(0xFFFF, 1), 0xFFFFu);
}

TEST(Gf65536Test, InverseAndDivisionRoundTrip) {
  Rng rng(9002);
  for (int trial = 0; trial < 20000; ++trial) {
    const auto a = static_cast<Gf16>(1 + rng.UniformInt(65535));
    const auto b = static_cast<Gf16>(1 + rng.UniformInt(65535));
    ASSERT_EQ(Gf16Mul(a, Gf16Inv(a)), 1u) << a;
    ASSERT_EQ(Gf16Div(Gf16Mul(a, b), b), a);
    ASSERT_EQ(Gf16Mul(Gf16Div(a, b), b), a);
  }
  EXPECT_EQ(Gf16Div(0, 0x4242), 0u);
}

TEST(Gf65536Test, LogExpRoundTrip) {
  Rng rng(9003);
  for (int trial = 0; trial < 10000; ++trial) {
    const auto a = static_cast<Gf16>(1 + rng.UniformInt(65535));
    ASSERT_EQ(Gf16Exp(Gf16Log(a)), a);
  }
}

// The dispatched span ops against the scalar reference, across ragged
// lengths (tails, sub-vector spans) and offset starts (unaligned
// loads), with sentinel padding proving nothing writes out of range.
TEST(Gf65536Test, SpanKernelsMatchReference) {
  Rng rng(9004);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{31},
                              std::size_t{32}, std::size_t{33},
                              std::size_t{100}, std::size_t{1023}}) {
    for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
      std::vector<Gf16> src(n + offset + 4), dst(n + offset + 4),
          want(n + offset + 4);
      for (auto& v : src) v = static_cast<Gf16>(rng.UniformInt(65536));
      for (auto& v : dst) v = static_cast<Gf16>(rng.UniformInt(65536));
      want = dst;
      for (const Gf16 coef :
           {Gf16{0}, Gf16{1}, Gf16{2}, static_cast<Gf16>(rng.UniformInt(65536)),
            Gf16{0xFFFF}}) {
        auto got = dst;
        Gf16Axpy({got.data() + offset, n}, coef, {src.data() + offset, n});
        auto exp = want;
        gf16_ref::Axpy({exp.data() + offset, n}, coef, {src.data() + offset, n});
        ASSERT_EQ(got, exp) << "axpy n=" << n << " coef=" << coef;

        auto gs = dst;
        Gf16Scale({gs.data() + offset, n}, coef);
        auto es = want;
        gf16_ref::Scale({es.data() + offset, n}, coef);
        ASSERT_EQ(gs, es) << "scale n=" << n << " coef=" << coef;
      }
    }
  }
}

TEST(Gf65536Test, FusedButterfliesMatchComposition) {
  Rng rng(9005);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{31}, std::size_t{64}, std::size_t{513}}) {
    std::vector<Gf16> x(n), y(n);
    for (auto& v : x) v = static_cast<Gf16>(rng.UniformInt(65536));
    for (auto& v : y) v = static_cast<Gf16>(rng.UniformInt(65536));
    for (const Gf16 skew :
         {Gf16{0}, Gf16{1}, static_cast<Gf16>(rng.UniformInt(65536))}) {
      // Forward: x ^= skew*y; y ^= x.
      auto fx = x, fy = y;
      Gf16ButterflyFwd(fx, fy, skew);
      auto wx = x, wy = y;
      gf16_ref::Axpy(wx, skew, wy);
      for (std::size_t i = 0; i < n; ++i) wy[i] ^= wx[i];
      ASSERT_EQ(fx, wx) << "fwd n=" << n << " skew=" << skew;
      ASSERT_EQ(fy, wy);

      // Inverse: y ^= x; x ^= skew*y — and it must undo the forward.
      Gf16ButterflyInv(fx, fy, skew);
      ASSERT_EQ(fx, x) << "inv n=" << n << " skew=" << skew;
      ASSERT_EQ(fy, y);
    }
  }
}

}  // namespace
}  // namespace ppr::fec
