// SeedForCollisionRound: a pure, salted seed derivation whose stream
// can never alias the per-transmission seed chain on the same medium —
// plus the collided-but-recovered accounting that keeps resolved
// collisions out of the corruption column.
#include <gtest/gtest.h>

#include <set>

#include "arq/chip_medium.h"

namespace ppr::arq {
namespace {

TEST(SeedForCollisionRoundTest, IsPure) {
  EXPECT_EQ(SeedForCollisionRound(1, 2, 3), SeedForCollisionRound(1, 2, 3));
  EXPECT_NE(SeedForCollisionRound(1, 2, 3), SeedForCollisionRound(1, 2, 4));
  EXPECT_NE(SeedForCollisionRound(1, 2, 3), SeedForCollisionRound(1, 3, 3));
  EXPECT_NE(SeedForCollisionRound(2, 2, 3), SeedForCollisionRound(1, 2, 3));
}

TEST(SeedForCollisionRoundTest, DoesNotOverlapTransmissionSeeds) {
  // Exhaustive small-grid check: the collision-round orbit and the
  // transmission orbit of the same medium seed are disjoint, so a
  // collision resolver drawing noise can never replay (or be replayed
  // by) a transmission's channel draws.
  constexpr std::uint64_t kGrid = 24;
  for (const std::uint64_t medium : {1ull, 42ull, 0x9E3779B97F4A7C15ull}) {
    std::set<std::uint64_t> transmission;
    for (std::uint64_t s = 0; s < kGrid; ++s) {
      for (std::uint64_t t = 0; t < kGrid; ++t) {
        transmission.insert(SeedForTransmission(medium, s, t));
      }
    }
    for (std::uint64_t a = 0; a < kGrid; ++a) {
      for (std::uint64_t b = 0; b < kGrid; ++b) {
        EXPECT_EQ(transmission.count(SeedForCollisionRound(medium, a, b)),
                  0u)
            << "medium=" << medium << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(SeedForCollisionRoundTest, DistinctArgumentsGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 32; ++a) {
    for (std::uint64_t b = 0; b < 32; ++b) {
      seen.insert(SeedForCollisionRound(7, a, b));
    }
  }
  EXPECT_EQ(seen.size(), 32u * 32u);
}

TEST(JointLossStatsTest, CollidedButCleanCountsAsRecoveredNotCorrupted) {
  ListenerLossStats ref, other;
  SharedMediumStats medium;
  const std::vector<ListenerLossStats*> listeners = {&ref, &other};

  // Broadcast 1: the reference collides but decodes clean (capture
  // effect or a resolver recovered it); the other listener is clean.
  AccumulateJointLossStats({{true, false}, {false, false}}, listeners,
                           medium);
  // Broadcast 2: the reference collides AND corrupts.
  AccumulateJointLossStats({{true, true}, {false, false}}, listeners,
                           medium);
  // Broadcast 3: nothing happens.
  AccumulateJointLossStats({{false, false}, {false, false}}, listeners,
                           medium);

  EXPECT_EQ(ref.broadcast_frames, 3u);
  EXPECT_EQ(ref.collision_frames, 2u);
  EXPECT_EQ(ref.corrupted_frames, 1u);
  EXPECT_EQ(ref.collided_recovered_frames, 1u);
  EXPECT_EQ(other.collided_recovered_frames, 0u);
  EXPECT_EQ(medium.reference_collision_frames, 2u);
  EXPECT_EQ(medium.reference_corrupted_frames, 1u);
  EXPECT_EQ(medium.reference_collided_recovered_frames, 1u);
}

}  // namespace
}  // namespace ppr::arq
