#include "arq/recovery_strategy.h"

#include <gtest/gtest.h>

#include "arq/link_sim.h"
#include "common/rng.h"

namespace ppr::arq {
namespace {

BitVec RandomPayload(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

GilbertElliottParams BurstyParams() {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.02;
  params.p_bad_to_good = 0.15;
  params.chip_error_good = 0.002;
  params.chip_error_bad = 0.25;
  return params;
}

// Drives one exchange through the strategy interface and returns the
// receiver's assembled payload alongside the run stats.
struct Outcome {
  bool success = false;
  BitVec payload;
  ArqRunStats stats;
};

Outcome RunExchange(const RecoveryStrategy& strategy,
                    const PpArqConfig& config, const BitVec& payload,
                    std::uint64_t channel_seed,
                    std::size_t max_rounds = 32) {
  const phy::ChipCodebook cb;
  Rng channel_rng(channel_seed);
  const auto channel =
      MakeGilbertElliottChannel(cb, BurstyParams(), channel_rng);

  Outcome out;
  const BitVec body = PpArqSender::MakeBody(payload);
  auto sender = strategy.MakeSender(body, 1);
  auto receiver =
      strategy.MakeReceiver(1, body.size() / config.bits_per_codeword);
  out.stats.forward_bits += body.size();
  ++out.stats.data_transmissions;
  receiver->IngestInitial(channel(body));
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const auto fb = receiver->BuildFeedbackWire();
    if (!fb.has_value()) break;
    out.stats.feedback_bits += fb->size();
    const RepairPlan plan = sender->HandleFeedback(*fb);
    out.stats.forward_bits += plan.wire_bits;
    out.stats.retransmission_bits.push_back(plan.wire_bits);
    ++out.stats.data_transmissions;
    std::vector<ReceivedRepairFrame> received;
    for (const auto& frame : plan.frames) {
      received.push_back(
          ReceivedRepairFrame{frame.range, frame.aux, channel(frame.bits)});
    }
    receiver->IngestRepair(received);
  }
  out.success = receiver->Complete();
  out.payload = receiver->AssembledPayload();
  return out;
}

// Satellite: the generalized feedback wire round-trips any roster size
// the protocol supports, including zero-count parties (a party the
// destination wants silent this round).
TEST(CodedFeedbackWireTest, RoundTripsForRostersOfOneThroughEight) {
  Rng rng(551);
  for (std::size_t parties = 1; parties <= 8; ++parties) {
    for (int trial = 0; trial < 32; ++trial) {
      CodedFeedbackWire fb;
      fb.seq = static_cast<std::uint16_t>(rng.UniformInt(0x10000));
      for (std::size_t i = 0; i < parties; ++i) {
        // Mix zero counts in liberally.
        fb.requested.push_back(rng.Bernoulli(0.25)
                                   ? 0
                                   : rng.UniformInt(0x10000));
      }
      const BitVec wire = EncodeCodedFeedbackWire(fb);
      EXPECT_EQ(wire.size(), 16u + 8u + parties * 16u);
      const auto decoded = DecodeCodedFeedbackWire(wire);
      ASSERT_TRUE(decoded.has_value());
      EXPECT_EQ(*decoded, fb);
    }
  }
}

TEST(CodedFeedbackWireTest, RejectsTruncatedAndDegenerateWires) {
  CodedFeedbackWire fb;
  fb.seq = 77;
  fb.requested = {3, 0, 9};
  const BitVec wire = EncodeCodedFeedbackWire(fb);
  // Every strict prefix fails to decode: a wire that promises three
  // counts must carry all three.
  for (std::size_t bits = 0; bits < wire.size(); ++bits) {
    EXPECT_EQ(DecodeCodedFeedbackWire(wire.Slice(0, bits)), std::nullopt)
        << "prefix of " << bits << " bits";
  }
  // A zero party count is not a wire.
  BitVec empty_roster;
  empty_roster.AppendUint(77, 16);
  empty_roster.AppendUint(0, 8);
  EXPECT_EQ(DecodeCodedFeedbackWire(empty_roster), std::nullopt);
  // Encoding rejects rosters the 8-bit count field cannot carry.
  EXPECT_THROW(EncodeCodedFeedbackWire(CodedFeedbackWire{1, {}}),
               std::invalid_argument);
  EXPECT_THROW(
      EncodeCodedFeedbackWire(CodedFeedbackWire{
          1, std::vector<std::size_t>(300, 1)}),
      std::invalid_argument);
  EXPECT_THROW(EncodeCodedFeedbackWire(CodedFeedbackWire{1, {0x10000}}),
               std::invalid_argument);
}

TEST(RecoveryStrategyTest, FactoryDispatchesOnMode) {
  PpArqConfig config;
  EXPECT_STREQ(MakeRecoveryStrategy(config)->Name(), "chunk-retransmit");
  config.recovery = RecoveryMode::kCodedRepair;
  EXPECT_STREQ(MakeRecoveryStrategy(config)->Name(), "coded-repair");
}

TEST(RecoveryStrategyTest, CodedConfigMustMakeOctetSymbols) {
  PpArqConfig config;
  config.recovery = RecoveryMode::kCodedRepair;
  config.codewords_per_fec_symbol = 3;  // 12 bits: not whole octets
  EXPECT_THROW(MakeRecoveryStrategy(config), std::invalid_argument);
}

TEST(RecoveryStrategyTest, BothStrategiesCompleteOnCleanChannel) {
  Rng prng(501);
  const BitVec payload = RandomPayload(prng, 120);
  const phy::ChipCodebook cb;
  for (const auto mode :
       {RecoveryMode::kChunkRetransmit, RecoveryMode::kCodedRepair}) {
    PpArqConfig config;
    config.recovery = mode;
    Rng channel_rng(502);
    const auto channel = MakeChipErrorChannel(cb, 0.0, channel_rng);
    const auto stats = RunPpArqExchange(payload, config, channel);
    EXPECT_TRUE(stats.success);
    EXPECT_EQ(stats.data_transmissions, 1u);
    EXPECT_TRUE(stats.retransmission_bits.empty());
  }
}

// The acceptance criterion of the coded-repair subsystem: on the same
// simulated trace (identically seeded channels), kCodedRepair delivers
// byte-identical packets to kChunkRetransmit.
TEST(RecoveryStrategyTest, CodedRepairDeliversByteIdenticalPackets) {
  for (const std::uint64_t seed : {511ull, 512ull, 513ull, 514ull}) {
    Rng prng(seed);
    const BitVec payload = RandomPayload(prng, 200);

    PpArqConfig chunk_config;
    const auto chunk = RunExchange(*MakeRecoveryStrategy(chunk_config),
                                   chunk_config, payload, seed ^ 0xC0FFEE);

    PpArqConfig coded_config;
    coded_config.recovery = RecoveryMode::kCodedRepair;
    const auto coded = RunExchange(*MakeRecoveryStrategy(coded_config),
                                   coded_config, payload, seed ^ 0xC0FFEE);

    ASSERT_TRUE(chunk.success) << "seed=" << seed;
    ASSERT_TRUE(coded.success) << "seed=" << seed;
    EXPECT_EQ(chunk.payload, payload) << "seed=" << seed;
    EXPECT_EQ(coded.payload, payload) << "seed=" << seed;
    EXPECT_EQ(coded.payload, chunk.payload) << "seed=" << seed;
    // Both modes actually exercised the repair path on this channel.
    EXPECT_FALSE(chunk.stats.retransmission_bits.empty());
    EXPECT_FALSE(coded.stats.retransmission_bits.empty());
  }
}

TEST(RecoveryStrategyTest, ChunkStrategyMatchesLegacyExchange) {
  // RunPpArqExchange must be bit-for-bit the pre-strategy behavior:
  // same channel draws, same stats.
  Rng prng(521);
  const BitVec payload = RandomPayload(prng, 300);
  const phy::ChipCodebook cb;

  PpArqConfig config;
  Rng rng_a(522);
  auto channel_a = MakeGilbertElliottChannel(cb, BurstyParams(), rng_a);
  const auto via_dispatch = RunPpArqExchange(payload, config, channel_a);

  Rng rng_b(522);
  auto channel_b = MakeGilbertElliottChannel(cb, BurstyParams(), rng_b);
  const auto via_strategy = RunRecoveryExchange(
      payload, config, *MakeRecoveryStrategy(config), channel_b);

  EXPECT_EQ(via_dispatch.success, via_strategy.success);
  EXPECT_EQ(via_dispatch.data_transmissions, via_strategy.data_transmissions);
  EXPECT_EQ(via_dispatch.forward_bits, via_strategy.forward_bits);
  EXPECT_EQ(via_dispatch.feedback_bits, via_strategy.feedback_bits);
  EXPECT_EQ(via_dispatch.retransmission_bits,
            via_strategy.retransmission_bits);
}

TEST(RecoveryStrategyTest, LargeRepairBurstsSplitIntoBodySizedFrames) {
  // A worst-case deficit (everything erased) must not produce a repair
  // frame larger than the original packet: carriers that accepted the
  // initial transmission must keep accepting repair frames.
  Rng prng(541);
  const BitVec body = PpArqSender::MakeBody(RandomPayload(prng, 250));
  PpArqConfig config;
  config.recovery = RecoveryMode::kCodedRepair;
  auto sender = MakeRecoveryStrategy(config)->MakeSender(body, 1);

  const BitVec wire = EncodeCodedFeedbackWire(
      CodedFeedbackWire{/*seq=*/1, {0xFFFF}});  // deficit: everything (clamped)
  const auto plan = sender->HandleFeedback(wire);
  ASSERT_GT(plan.frames.size(), 1u);
  std::size_t total_bits = 0;
  for (const auto& f : plan.frames) {
    EXPECT_LE(f.bits.size(), body.size());
    EXPECT_EQ(f.range.length, f.bits.size() / config.bits_per_codeword);
    total_bits += f.bits.size();
  }
  EXPECT_LE(total_bits, plan.wire_bits);
}

TEST(RecoveryStrategyTest, UnparsableFeedbackThrows) {
  Rng prng(542);
  const BitVec body = PpArqSender::MakeBody(RandomPayload(prng, 60));
  for (const auto mode :
       {RecoveryMode::kChunkRetransmit, RecoveryMode::kCodedRepair}) {
    PpArqConfig config;
    config.recovery = mode;
    auto sender = MakeRecoveryStrategy(config)->MakeSender(body, 1);
    EXPECT_THROW(sender->HandleFeedback(BitVec(8, false)), std::logic_error);
  }
}

// Tentpole satellite: the coded-repair strategy under
// CodecKind::kReedSolomon streams RS parity instead of RLNC equations
// but delivers byte-identical packets on the same channel trace.
TEST(RecoveryStrategyTest, ReedSolomonCodedRepairDeliversIdenticalPackets) {
  for (const std::uint64_t seed : {611ull, 612ull, 613ull}) {
    Rng prng(seed);
    const BitVec payload = RandomPayload(prng, 200);

    PpArqConfig rlnc_config;
    rlnc_config.recovery = RecoveryMode::kCodedRepair;
    const auto rlnc = RunExchange(*MakeRecoveryStrategy(rlnc_config),
                                  rlnc_config, payload, seed ^ 0xBEEF);

    PpArqConfig rs_config;
    rs_config.recovery = RecoveryMode::kCodedRepair;
    rs_config.fec_codec = fec::CodecKind::kReedSolomon;
    const auto rs = RunExchange(*MakeRecoveryStrategy(rs_config), rs_config,
                                payload, seed ^ 0xBEEF);

    ASSERT_TRUE(rlnc.success) << "seed=" << seed;
    ASSERT_TRUE(rs.success) << "seed=" << seed;
    EXPECT_EQ(rs.payload, payload) << "seed=" << seed;
    EXPECT_EQ(rs.payload, rlnc.payload) << "seed=" << seed;
    // The channel actually erased something: the RS parity path ran.
    EXPECT_FALSE(rs.stats.retransmission_bits.empty());
  }
}

TEST(RecoveryStrategyTest, ReedSolomonNeedsEvenSymbolBytesAndNoRelay) {
  // 6 codewords x 4 bits = 3 bytes per FEC symbol: whole octets (fine
  // for RLNC) but odd (rejected for GF(2^16) RS).
  PpArqConfig odd;
  odd.recovery = RecoveryMode::kCodedRepair;
  odd.codewords_per_fec_symbol = 6;
  EXPECT_NO_THROW(MakeRecoveryStrategy(odd));
  odd.fec_codec = fec::CodecKind::kReedSolomon;
  EXPECT_THROW(MakeRecoveryStrategy(odd), std::invalid_argument);
  // Relay repair needs dense masked equations — RLNC only.
  PpArqConfig relay;
  relay.recovery = RecoveryMode::kRelayCodedRepair;
  relay.fec_codec = fec::CodecKind::kReedSolomon;
  EXPECT_THROW(MakeRecoveryStrategy(relay), std::invalid_argument);
}

TEST(RecoveryStrategyTest, CodedFeedbackIsCompact) {
  // Coded feedback is a fixed 40-bit (seq, party_count = 1, deficit)
  // record, far below the chunk-mode feedback with its per-gap
  // verification data.
  Rng prng(531);
  const BitVec payload = RandomPayload(prng, 200);
  PpArqConfig config;
  config.recovery = RecoveryMode::kCodedRepair;
  const auto out =
      RunExchange(*MakeRecoveryStrategy(config), config, payload, 532);
  ASSERT_TRUE(out.success);
  ASSERT_GT(out.stats.data_transmissions, 1u);
  const std::size_t rounds = out.stats.data_transmissions - 1;
  EXPECT_EQ(out.stats.feedback_bits, rounds * 40u);
}

}  // namespace
}  // namespace ppr::arq
