#include "arq/pp_arq.h"

#include <gtest/gtest.h>

#include "common/crc.h"
#include "common/rng.h"

namespace ppr::arq {
namespace {

BitVec RandomPayload(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

// Produces the receiver's view of a body: each codeword decoded either
// faithfully (hint 0/low) or corrupted (wrong symbol). `corrupt`
// returns true for codeword indices to trash; `hint_for` supplies the
// hint for corrupted codewords (default: clearly bad).
std::vector<phy::DecodedSymbol> Receive(
    const BitVec& body, const std::function<bool(std::size_t)>& corrupt,
    double bad_hint = 16.0, double good_hint = 0.0) {
  std::vector<phy::DecodedSymbol> out;
  const std::size_t n = body.size() / 4;
  for (std::size_t i = 0; i < n; ++i) {
    phy::DecodedSymbol d;
    const auto true_sym = static_cast<std::uint8_t>(body.ReadUint(i * 4, 4));
    if (corrupt(i)) {
      d.symbol = static_cast<std::uint8_t>(true_sym ^ 0x5);
      d.hint = bad_hint;
      d.hamming_distance = static_cast<int>(bad_hint);
    } else {
      d.symbol = true_sym;
      d.hint = good_hint;
      d.hamming_distance = 0;
    }
    out.push_back(d);
  }
  return out;
}

PpArqConfig DefaultConfig() {
  PpArqConfig config;
  config.eta = 6.0;
  return config;
}

TEST(PpArqSenderTest, MakeBodyAppendsCrc) {
  Rng rng(151);
  const BitVec payload = RandomPayload(rng, 32);
  const BitVec body = PpArqSender::MakeBody(payload);
  EXPECT_EQ(body.size(), payload.size() + 32);
  EXPECT_EQ(body.ReadUint(payload.size(), 32), Crc32Bits(payload));
}

TEST(PpArqSenderTest, RejectsRaggedBody) {
  EXPECT_THROW(PpArqSender(BitVec(13, false), 1, DefaultConfig()),
               std::invalid_argument);
}

TEST(PpArqReceiverTest, CleanReceptionCompletesImmediately) {
  Rng rng(152);
  const BitVec payload = RandomPayload(rng, 64);
  const BitVec body = PpArqSender::MakeBody(payload);
  PpArqReceiver receiver(1, body.size() / 4, DefaultConfig());
  receiver.IngestInitial(Receive(body, [](std::size_t) { return false; }));
  EXPECT_TRUE(receiver.Complete());
  EXPECT_FALSE(receiver.BuildFeedback().has_value());
  EXPECT_EQ(receiver.AssembledPayload(), payload);
}

TEST(PpArqReceiverTest, RequestsCoverExactlyTheBadRuns) {
  Rng rng(153);
  const BitVec payload = RandomPayload(rng, 128);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t n = body.size() / 4;
  // Bad burst at codewords [40, 50).
  PpArqReceiver receiver(1, n, DefaultConfig());
  receiver.IngestInitial(Receive(
      body, [](std::size_t i) { return i >= 40 && i < 50; }));
  EXPECT_FALSE(receiver.Complete());
  const auto fb = receiver.BuildFeedback();
  ASSERT_TRUE(fb.has_value());
  ASSERT_EQ(fb->requests.size(), 1u);
  EXPECT_EQ(fb->requests[0].offset, 40u);
  EXPECT_EQ(fb->requests[0].length, 10u);
}

TEST(PpArqReceiverTest, NoRequestContainsOnlyGoodCodewords) {
  // Section 5.1's invariant: "no segment that is not asked for will
  // have any 'bad' codewords".
  Rng rng(154);
  const BitVec payload = RandomPayload(rng, 256);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t n = body.size() / 4;

  std::vector<bool> is_bad(n, false);
  for (int burst = 0; burst < 8; ++burst) {
    const std::size_t start = rng.UniformInt(n - 10);
    const std::size_t len = 1 + rng.UniformInt(9);
    for (std::size_t i = start; i < start + len; ++i) is_bad[i] = true;
  }
  PpArqReceiver receiver(1, n, DefaultConfig());
  receiver.IngestInitial(
      Receive(body, [&](std::size_t i) { return is_bad[i]; }));
  const auto fb = receiver.BuildFeedback();
  ASSERT_TRUE(fb.has_value());

  std::vector<bool> requested(n, false);
  for (const auto& r : fb->requests) {
    for (std::size_t i = r.offset; i < r.offset + r.length; ++i) {
      requested[i] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (is_bad[i]) {
      EXPECT_TRUE(requested[i]) << "bad codeword " << i << " not requested";
    }
  }
}

TEST(PpArqSenderTest, RetransmitsRequestedRanges) {
  Rng rng(155);
  const BitVec payload = RandomPayload(rng, 64);
  const BitVec body = PpArqSender::MakeBody(payload);
  PpArqSender sender(body, 1, DefaultConfig());

  DecodedFeedback fb;
  fb.feedback.seq = 1;
  fb.feedback.requests = {{10, 5}, {30, 8}};
  for (const auto& gap :
       ComputeGaps(fb.feedback.requests, sender.total_codewords())) {
    GapCheck check;
    check.range = gap;
    check.crc32 = Crc32Bits(body.Slice(gap.offset * 4, gap.length * 4));
    fb.gaps.push_back(check);
  }
  const auto retx = sender.HandleFeedback(fb);
  ASSERT_EQ(retx.segments.size(), 2u);
  EXPECT_EQ(retx.segments[0].range, (CodewordRange{10, 5}));
  EXPECT_EQ(retx.segments[0].bits, body.Slice(40, 20));
  EXPECT_EQ(retx.segments[1].range, (CodewordRange{30, 8}));
}

TEST(PpArqSenderTest, GapCrcMismatchTriggersGapResend) {
  // A SoftPHY miss: the receiver's gap CRC won't match the sender's
  // bits, so the sender must resend that gap even though it was not
  // requested (step 4 of the protocol).
  Rng rng(156);
  const BitVec payload = RandomPayload(rng, 64);
  const BitVec body = PpArqSender::MakeBody(payload);
  PpArqSender sender(body, 1, DefaultConfig());

  DecodedFeedback fb;
  fb.feedback.seq = 1;
  fb.feedback.requests = {{50, 10}};
  const auto gaps = ComputeGaps(fb.feedback.requests, sender.total_codewords());
  ASSERT_EQ(gaps.size(), 2u);
  // First gap: wrong CRC (receiver holds corrupted bits it thinks are
  // fine). Second gap: correct CRC.
  GapCheck bad_gap;
  bad_gap.range = gaps[0];
  bad_gap.crc32 = 0xDEADBEEF;
  fb.gaps.push_back(bad_gap);
  GapCheck good_gap;
  good_gap.range = gaps[1];
  good_gap.crc32 =
      Crc32Bits(body.Slice(gaps[1].offset * 4, gaps[1].length * 4));
  fb.gaps.push_back(good_gap);

  const auto retx = sender.HandleFeedback(fb);
  // Gap [0,50) mismatched and request [50,60) merge into one segment.
  ASSERT_EQ(retx.segments.size(), 1u);
  EXPECT_EQ(retx.segments[0].range, (CodewordRange{0, 60}));
}

TEST(PpArqSenderTest, LiteralGapMismatchDetected) {
  Rng rng(157);
  const BitVec payload = RandomPayload(rng, 32);
  const BitVec body = PpArqSender::MakeBody(payload);
  PpArqSender sender(body, 1, DefaultConfig());

  DecodedFeedback fb;
  fb.feedback.seq = 1;
  fb.feedback.requests = {{4, static_cast<std::size_t>(body.size() / 4 - 4)}};
  GapCheck gap;  // literal gap of 4 codewords (16 bits < 32)
  gap.range = {0, 4};
  gap.literal = true;
  gap.literal_bits = body.Slice(0, 16);
  gap.literal_bits.Flip(3);  // receiver holds one wrong bit
  fb.gaps.push_back(gap);

  const auto retx = sender.HandleFeedback(fb);
  ASSERT_EQ(retx.segments.size(), 1u);
  EXPECT_EQ(retx.segments[0].range.offset, 0u);  // merged full resend
}

TEST(PpArqProtocolTest, OneRoundRecoversBurstLoss) {
  Rng rng(158);
  const BitVec payload = RandomPayload(rng, 200);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t n = body.size() / 4;
  const auto config = DefaultConfig();

  PpArqSender sender(body, 1, config);
  PpArqReceiver receiver(1, n, config);
  receiver.IngestInitial(Receive(
      body, [](std::size_t i) { return i >= 100 && i < 140; }));

  const auto fb = receiver.BuildFeedback();
  ASSERT_TRUE(fb.has_value());
  const BitVec wire = receiver.EncodeFeedbackWire(*fb);
  const auto decoded = DecodeFeedback(wire, n, 4, 32);
  ASSERT_TRUE(decoded.has_value());
  const auto retx = sender.HandleFeedback(*decoded);

  // Deliver retransmission cleanly.
  std::vector<ReceivedSegment> segments;
  for (const auto& seg : retx.segments) {
    ReceivedSegment rs;
    rs.range = seg.range;
    rs.symbols = Receive(seg.bits, [](std::size_t) { return false; });
    segments.push_back(rs);
  }
  receiver.IngestRetransmission(segments);
  EXPECT_TRUE(receiver.Complete());
  EXPECT_EQ(receiver.AssembledPayload(), payload);
}

TEST(PpArqProtocolTest, MissRecoveredViaGapCrc) {
  // Corrupt codewords whose hints LIE (look good): the first feedback
  // round won't request them, but the gap CRC mismatch makes the sender
  // push corrections; the receiver accepts them and completes.
  Rng rng(159);
  const BitVec payload = RandomPayload(rng, 100);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t n = body.size() / 4;
  const auto config = DefaultConfig();

  PpArqSender sender(body, 1, config);
  PpArqReceiver receiver(1, n, config);
  // Codewords 10..12 are wrong with deceptively good hints (miss);
  // codewords 60..70 are honestly bad.
  receiver.IngestInitial(Receive(
      body,
      [](std::size_t i) { return (i >= 10 && i < 13) || (i >= 60 && i < 70); },
      /*bad_hint=*/16.0));
  // Manually overwrite the miss hints to look good.
  {
    auto symbols = Receive(
        body,
        [](std::size_t i) {
          return (i >= 10 && i < 13) || (i >= 60 && i < 70);
        },
        16.0);
    for (std::size_t i = 10; i < 13; ++i) symbols[i].hint = 1.0;
    PpArqReceiver fresh(1, n, config);
    fresh.IngestInitial(symbols);

    std::size_t rounds = 0;
    while (!fresh.Complete() && rounds < 8) {
      const auto fb = fresh.BuildFeedback();
      ASSERT_TRUE(fb.has_value());
      const auto decoded =
          DecodeFeedback(fresh.EncodeFeedbackWire(*fb), n, 4, 32);
      ASSERT_TRUE(decoded.has_value());
      const auto retx = sender.HandleFeedback(*decoded);
      std::vector<ReceivedSegment> segments;
      for (const auto& seg : retx.segments) {
        ReceivedSegment rs;
        rs.range = seg.range;
        rs.symbols = Receive(seg.bits, [](std::size_t) { return false; });
        segments.push_back(rs);
      }
      fresh.IngestRetransmission(segments);
      ++rounds;
    }
    EXPECT_TRUE(fresh.Complete());
    EXPECT_EQ(fresh.AssembledPayload(), payload);
    EXPECT_LE(rounds, 2u);
  }
}

TEST(PpArqReceiverTest, AllGoodButCrcFailEscalatesToFullRequest) {
  Rng rng(160);
  const BitVec payload = RandomPayload(rng, 50);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t n = body.size() / 4;
  PpArqReceiver receiver(1, n, DefaultConfig());
  // Every codeword claims to be good but one is wrong.
  auto symbols = Receive(body, [](std::size_t i) { return i == 7; },
                         /*bad_hint=*/0.0);
  receiver.IngestInitial(symbols);
  EXPECT_FALSE(receiver.Complete());
  const auto fb = receiver.BuildFeedback();
  ASSERT_TRUE(fb.has_value());
  ASSERT_EQ(fb->requests.size(), 1u);
  EXPECT_EQ(fb->requests[0], (CodewordRange{0, n}));
}

TEST(PpArqReceiverTest, BetterHintWinsOnReingestion) {
  Rng rng(161);
  const BitVec payload = RandomPayload(rng, 40);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t n = body.size() / 4;
  PpArqReceiver receiver(1, n, DefaultConfig());

  // First copy: codeword 5 wrong with hint 10.
  receiver.IngestInitial(Receive(
      body, [](std::size_t i) { return i == 5; }, /*bad_hint=*/10.0));
  // Second full copy: everything right with hint 2 — the improvement
  // must replace codeword 5 (and complete the packet).
  receiver.IngestInitial(Receive(
      body, [](std::size_t) { return false; }, 16.0, /*good_hint=*/2.0));
  EXPECT_TRUE(receiver.Complete());
}

TEST(CoveredByRequestsTest, SubRangesAndMisses) {
  const std::vector<CodewordRange> requests{{10, 20}, {50, 5}};
  EXPECT_TRUE(CoveredByRequests({10, 20}, requests));
  EXPECT_TRUE(CoveredByRequests({15, 5}, requests));
  EXPECT_TRUE(CoveredByRequests({50, 5}, requests));
  EXPECT_FALSE(CoveredByRequests({9, 5}, requests));
  EXPECT_FALSE(CoveredByRequests({25, 10}, requests));
  EXPECT_FALSE(CoveredByRequests({48, 5}, requests));
}

}  // namespace
}  // namespace ppr::arq
