#include "arq/link_sim.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr::arq {
namespace {

BitVec RandomPayload(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

TEST(ChipErrorChannelTest, CleanChannelIsTransparent) {
  const phy::ChipCodebook cb;
  Rng rng(171);
  auto channel = MakeChipErrorChannel(cb, 0.0, rng);
  Rng prng(172);
  const BitVec payload = RandomPayload(prng, 50);
  const auto symbols = channel(payload);
  ASSERT_EQ(symbols.size(), payload.size() / 4);
  EXPECT_EQ(SymbolsToLogicalBits(symbols), payload);
  for (const auto& s : symbols) EXPECT_EQ(s.hamming_distance, 0);
}

TEST(ChipErrorChannelTest, ErrorsScaleWithRate) {
  const phy::ChipCodebook cb;
  Rng rng(173);
  Rng prng(174);
  const BitVec payload = RandomPayload(prng, 2000);

  auto count_symbol_errors = [&](double p) {
    auto channel = MakeChipErrorChannel(cb, p, rng);
    const auto symbols = channel(payload);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      if (symbols[i].symbol != payload.ReadUint(i * 4, 4)) ++errors;
    }
    return errors;
  };
  const auto low = count_symbol_errors(0.05);
  const auto high = count_symbol_errors(0.3);
  EXPECT_LT(low, high);
  EXPECT_EQ(count_symbol_errors(0.0), 0u);
}

TEST(PpArqExchangeTest, SucceedsOverCleanChannel) {
  const phy::ChipCodebook cb;
  Rng rng(175);
  auto channel = MakeChipErrorChannel(cb, 0.0, rng);
  Rng prng(176);
  const auto stats =
      RunPpArqExchange(RandomPayload(prng, 200), PpArqConfig{}, channel);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.data_transmissions, 1u);
  EXPECT_TRUE(stats.retransmission_bits.empty());
}

TEST(PpArqExchangeTest, ConvergesOverNoisyChannel) {
  const phy::ChipCodebook cb;
  Rng rng(177);
  auto channel = MakeChipErrorChannel(cb, 0.12, rng);
  Rng prng(178);
  const auto stats =
      RunPpArqExchange(RandomPayload(prng, 500), PpArqConfig{}, channel);
  EXPECT_TRUE(stats.success);
  EXPECT_GE(stats.data_transmissions, 1u);
}

TEST(PpArqExchangeTest, ConvergesOverBurstyChannel) {
  const phy::ChipCodebook cb;
  Rng rng(179);
  GilbertElliottParams params;
  params.p_good_to_bad = 0.02;
  params.p_bad_to_good = 0.15;
  params.chip_error_bad = 0.25;
  auto channel = MakeGilbertElliottChannel(cb, params, rng);
  Rng prng(180);
  const auto stats =
      RunPpArqExchange(RandomPayload(prng, 500), PpArqConfig{}, channel);
  EXPECT_TRUE(stats.success);
}

TEST(PpArqExchangeTest, RetransmitsLessThanWholePacketOnBurstyChannel) {
  // The headline PP-ARQ property (Figure 16): retransmissions are a
  // fraction of the packet size, not the whole packet.
  const phy::ChipCodebook cb;
  Rng rng(181);
  GilbertElliottParams params;
  params.p_good_to_bad = 0.01;
  params.p_bad_to_good = 0.2;
  params.chip_error_bad = 0.3;
  auto channel = MakeGilbertElliottChannel(cb, params, rng);
  Rng prng(182);

  const std::size_t payload_octets = 500;
  std::size_t total_retx_bits = 0;
  std::size_t retx_count = 0;
  for (int i = 0; i < 20; ++i) {
    const auto stats = RunPpArqExchange(RandomPayload(prng, payload_octets),
                                        PpArqConfig{}, channel);
    EXPECT_TRUE(stats.success);
    for (const auto bits : stats.retransmission_bits) {
      total_retx_bits += bits;
      ++retx_count;
    }
  }
  if (retx_count > 0) {
    const double mean_retx =
        static_cast<double>(total_retx_bits) / static_cast<double>(retx_count);
    EXPECT_LT(mean_retx, payload_octets * 8 / 2.0)
        << "PP-ARQ retransmissions should be far below the packet size";
  }
}

TEST(WholePacketArqTest, SucceedsFirstTryOnCleanChannel) {
  const phy::ChipCodebook cb;
  Rng rng(183);
  auto channel = MakeChipErrorChannel(cb, 0.0, rng);
  Rng prng(184);
  const auto stats = RunWholePacketArq(RandomPayload(prng, 100), channel);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.data_transmissions, 1u);
}

TEST(WholePacketArqTest, RetriesUntilCleanCopy) {
  const phy::ChipCodebook cb;
  Rng rng(185);
  // At this chip error rate some codewords decode wrong, so whole
  // packets need occasional retries; aggregate over several packets so
  // at least one retry is overwhelmingly likely.
  auto channel = MakeChipErrorChannel(cb, 0.12, rng);
  Rng prng(186);
  std::size_t total_transmissions = 0;
  const int packets = 10;
  for (int i = 0; i < packets; ++i) {
    const auto stats = RunWholePacketArq(RandomPayload(prng, 60), channel,
                                         /*max_rounds=*/500);
    EXPECT_TRUE(stats.success);
    total_transmissions += stats.data_transmissions;
  }
  EXPECT_GT(total_transmissions, static_cast<std::size_t>(packets));
}

TEST(FragmentedArqTest, SucceedsOnCleanChannel) {
  const phy::ChipCodebook cb;
  Rng rng(187);
  auto channel = MakeChipErrorChannel(cb, 0.0, rng);
  Rng prng(188);
  const auto stats =
      RunFragmentedArq(RandomPayload(prng, 300), 10, channel);
  EXPECT_TRUE(stats.success);
  EXPECT_EQ(stats.data_transmissions, 1u);
}

TEST(FragmentedArqTest, OnlyMissingFragmentsRetransmit) {
  const phy::ChipCodebook cb;
  Rng rng(189);
  auto channel = MakeChipErrorChannel(cb, 0.06, rng);
  Rng prng(190);
  const std::size_t payload_octets = 600;
  const auto stats =
      RunFragmentedArq(RandomPayload(prng, payload_octets), 20, channel, 100);
  EXPECT_TRUE(stats.success);
  if (!stats.retransmission_bits.empty()) {
    // Later rounds carry fewer bits than the full first transmission.
    const std::size_t full =
        payload_octets * 8 + 20 * 32;  // payload + per-fragment CRCs
    for (const auto bits : stats.retransmission_bits) {
      EXPECT_LT(bits, full);
    }
  }
}

TEST(ArqComparisonTest, PpArqBeatsWholePacketOnRetransmittedBits) {
  // The motivating claim of the paper: under partial corruption,
  // retransmitting only bad runs costs far fewer bits than
  // retransmitting whole packets.
  const phy::ChipCodebook cb;
  GilbertElliottParams params;
  params.p_good_to_bad = 0.002;  // ~1 burst per 500 codewords
  params.p_bad_to_good = 0.15;
  params.chip_error_bad = 0.3;
  Rng prng(191);
  const std::size_t octets = 200;
  std::size_t pp_forward = 0, wp_forward = 0;
  int pp_fail = 0, wp_fail = 0;
  for (int i = 0; i < 15; ++i) {
    const BitVec payload = RandomPayload(prng, octets);
    Rng rng_a(1000 + i), rng_b(1000 + i);
    auto chan_a = MakeGilbertElliottChannel(cb, params, rng_a);
    auto chan_b = MakeGilbertElliottChannel(cb, params, rng_b);
    const auto pp = RunPpArqExchange(payload, PpArqConfig{}, chan_a, 64);
    const auto wp = RunWholePacketArq(payload, chan_b, 1000);
    if (!pp.success) ++pp_fail;
    if (!wp.success) ++wp_fail;
    pp_forward += pp.forward_bits;
    wp_forward += wp.forward_bits;
  }
  EXPECT_EQ(pp_fail, 0);
  EXPECT_EQ(wp_fail, 0);
  EXPECT_LT(pp_forward, wp_forward);
}

}  // namespace
}  // namespace ppr::arq
