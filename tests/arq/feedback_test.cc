#include "arq/feedback.h"

#include <gtest/gtest.h>

#include "common/crc.h"
#include "common/rng.h"

namespace ppr::arq {
namespace {

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords * 4; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

TEST(RangeFieldWidthTest, CoversOffsets) {
  EXPECT_EQ(RangeFieldWidth(0), 1u);
  EXPECT_EQ(RangeFieldWidth(1), 1u);
  EXPECT_EQ(RangeFieldWidth(2), 2u);
  EXPECT_EQ(RangeFieldWidth(255), 8u);
  EXPECT_EQ(RangeFieldWidth(256), 9u);
  EXPECT_EQ(RangeFieldWidth(3068), 12u);
}

TEST(ComputeGapsTest, NoRequestsIsOneFullGap) {
  const auto gaps = ComputeGaps({}, 100);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (CodewordRange{0, 100}));
}

TEST(ComputeGapsTest, RequestsCarveComplement) {
  const std::vector<CodewordRange> requests{{10, 5}, {50, 10}};
  const auto gaps = ComputeGaps(requests, 100);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (CodewordRange{0, 10}));
  EXPECT_EQ(gaps[1], (CodewordRange{15, 35}));
  EXPECT_EQ(gaps[2], (CodewordRange{60, 40}));
}

TEST(ComputeGapsTest, EdgeTouchingRequests) {
  const std::vector<CodewordRange> requests{{0, 10}, {90, 10}};
  const auto gaps = ComputeGaps(requests, 100);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0], (CodewordRange{10, 80}));
}

TEST(ComputeGapsTest, FullCoverNoGaps) {
  EXPECT_TRUE(ComputeGaps({{0, 64}}, 64).empty());
}

TEST(FeedbackCodecTest, RoundTripRequestsAndGapChecks) {
  Rng rng(141);
  const std::size_t total = 500;
  const BitVec body = RandomBody(rng, total);

  FeedbackPacket fb;
  fb.seq = 0x1234;
  fb.requests = {{20, 7}, {100, 50}, {400, 12}};

  const BitVec wire = EncodeFeedback(fb, body, total, 4, 32);
  const auto decoded = DecodeFeedback(wire, total, 4, 32);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->feedback, fb);

  // Gap checks align with the gap layout and verify against the body.
  const auto gaps = ComputeGaps(fb.requests, total);
  ASSERT_EQ(decoded->gaps.size(), gaps.size());
  for (std::size_t g = 0; g < gaps.size(); ++g) {
    EXPECT_EQ(decoded->gaps[g].range, gaps[g]);
    const BitVec gap_bits = body.Slice(gaps[g].offset * 4, gaps[g].length * 4);
    if (decoded->gaps[g].literal) {
      EXPECT_EQ(decoded->gaps[g].literal_bits, gap_bits);
    } else {
      EXPECT_EQ(decoded->gaps[g].crc32, Crc32Bits(gap_bits));
    }
  }
}

TEST(FeedbackCodecTest, ShortGapsGoLiteral) {
  Rng rng(142);
  const std::size_t total = 100;
  const BitVec body = RandomBody(rng, total);
  FeedbackPacket fb;
  fb.seq = 1;
  // Gap of 3 codewords (12 bits) between requests: below the 32-bit
  // checksum, so it must travel as literal bits.
  fb.requests = {{0, 10}, {13, 87}};
  const BitVec wire = EncodeFeedback(fb, body, total, 4, 32);
  const auto decoded = DecodeFeedback(wire, total, 4, 32);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->gaps.size(), 1u);
  EXPECT_TRUE(decoded->gaps[0].literal);
  EXPECT_EQ(decoded->gaps[0].literal_bits.size(), 12u);
}

TEST(FeedbackCodecTest, EmptyRequestsEncodesWholeBodyCheck) {
  Rng rng(143);
  const std::size_t total = 64;
  const BitVec body = RandomBody(rng, total);
  FeedbackPacket fb;
  fb.seq = 9;
  const BitVec wire = EncodeFeedback(fb, body, total, 4, 32);
  const auto decoded = DecodeFeedback(wire, total, 4, 32);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->feedback.requests.empty());
  ASSERT_EQ(decoded->gaps.size(), 1u);
  EXPECT_EQ(decoded->gaps[0].crc32, Crc32Bits(body));
}

TEST(FeedbackCodecTest, RejectsTruncatedWire) {
  Rng rng(144);
  const std::size_t total = 200;
  const BitVec body = RandomBody(rng, total);
  FeedbackPacket fb;
  fb.seq = 2;
  fb.requests = {{10, 20}};
  const BitVec wire = EncodeFeedback(fb, body, total, 4, 32);
  for (std::size_t cut : {std::size_t{8}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_FALSE(DecodeFeedback(wire.Slice(0, cut), total, 4, 32).has_value());
  }
}

TEST(FeedbackCodecTest, RejectsOutOfOrderOrOutOfBoundsRanges) {
  // Hand-craft a wire with a range past the end of the packet.
  const std::size_t total = 50;
  const unsigned width = RangeFieldWidth(total);
  BitVec wire;
  wire.AppendUint(1, 16);   // seq
  wire.AppendUint(1, 16);   // one request
  wire.AppendUint(49, width);
  wire.AppendUint(10, width);  // 49 + 10 > 50
  EXPECT_FALSE(DecodeFeedback(wire, total, 4, 32).has_value());
}

TEST(RetransmissionCodecTest, RoundTrip) {
  Rng rng(145);
  const std::size_t total = 300;
  RetransmissionPacket packet;
  packet.seq = 77;
  for (const auto& range :
       {CodewordRange{5, 10}, CodewordRange{50, 3}, CodewordRange{200, 40}}) {
    RetransmitSegment seg;
    seg.range = range;
    seg.bits = RandomBody(rng, range.length);
    packet.segments.push_back(seg);
  }
  const BitVec wire = EncodeRetransmission(packet, total, 4);
  const auto decoded = DecodeRetransmission(wire, total, 4);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, packet);
}

TEST(RetransmissionCodecTest, SegmentsAreNibbleAligned) {
  // Every segment's payload bits must start at a multiple of 4 within
  // the wire so retransmitted codewords inherit per-codeword hints.
  Rng rng(146);
  const std::size_t total = 128;
  RetransmissionPacket packet;
  packet.seq = 3;
  RetransmitSegment seg;
  seg.range = {7, 9};
  seg.bits = RandomBody(rng, 9);
  packet.segments.push_back(seg);

  const BitVec wire = EncodeRetransmission(packet, total, 4);
  // Header: 16 + 16 + 2 fields * width bits, then padding to nibble.
  const unsigned width = RangeFieldWidth(total);
  const std::size_t descriptor_bits = 32 + 2 * width;
  const std::size_t aligned = (descriptor_bits + 3) & ~std::size_t{3};
  // The segment bits start right after alignment; check round trip of
  // content at that offset.
  EXPECT_EQ(wire.Slice(aligned, 36), seg.bits);
}

TEST(RetransmissionCodecTest, EmptySegments) {
  RetransmissionPacket packet;
  packet.seq = 5;
  const BitVec wire = EncodeRetransmission(packet, 100, 4);
  const auto decoded = DecodeRetransmission(wire, 100, 4);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->segments.empty());
}

TEST(RetransmissionCodecTest, RejectsTruncatedWire) {
  Rng rng(147);
  RetransmissionPacket packet;
  packet.seq = 6;
  RetransmitSegment seg;
  seg.range = {0, 20};
  seg.bits = RandomBody(rng, 20);
  packet.segments.push_back(seg);
  const BitVec wire = EncodeRetransmission(packet, 64, 4);
  EXPECT_FALSE(
      DecodeRetransmission(wire.Slice(0, wire.size() - 8), 64, 4).has_value());
}

// The wire size of a feedback packet should track the DP cost model
// within a small per-chunk overhead (the model is an idealization; the
// wire uses fixed-width fields and 16-bit counts).
TEST(FeedbackCodecTest, WireSizeTracksCostModel) {
  Rng rng(148);
  const std::size_t total = 3000;  // ~1500-byte packet
  const BitVec body = RandomBody(rng, total);
  FeedbackPacket fb;
  fb.seq = 1;
  fb.requests = {{100, 30}, {500, 4}, {2000, 100}};
  const BitVec wire = EncodeFeedback(fb, body, total, 4, 32);

  // Descriptors: 32 header bits + 2 * width per request; gaps: <= 32
  // bits each.
  const unsigned width = RangeFieldWidth(total);
  const std::size_t expected =
      32 + fb.requests.size() * 2 * width +
      ComputeGaps(fb.requests, total).size() * 32;
  EXPECT_EQ(wire.size(), expected);
}

}  // namespace
}  // namespace ppr::arq
