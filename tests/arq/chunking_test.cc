#include "arq/chunking.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace ppr::arq {
namespace {

ChunkingConfig DefaultConfig(std::size_t packet_bits = 12000) {
  ChunkingConfig c;
  c.packet_bits = packet_bits;
  c.checksum_bits = 32;
  c.bits_per_codeword = 4;
  return c;
}

softphy::RunLengthForm MakeForm(std::size_t leading,
                                std::vector<std::size_t> bad,
                                std::vector<std::size_t> good_after) {
  softphy::RunLengthForm form;
  form.leading_good = leading;
  form.bad = std::move(bad);
  form.good_after = std::move(good_after);
  return form;
}

TEST(ChunkingTest, NoBadRunsYieldsNoChunks) {
  const auto result =
      ComputeOptimalChunks(MakeForm(100, {}, {}), DefaultConfig());
  EXPECT_TRUE(result.chunks.empty());
  EXPECT_DOUBLE_EQ(result.cost_bits, 0.0);
}

TEST(ChunkingTest, SingleBadRunIsOneChunk) {
  const auto form = MakeForm(10, {5}, {20});
  const auto result = ComputeOptimalChunks(form, DefaultConfig());
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].first_bad_run, 0u);
  EXPECT_EQ(result.chunks[0].last_bad_run, 0u);
  EXPECT_EQ(result.chunks[0].offset_codewords, 10u);
  EXPECT_EQ(result.chunks[0].length_codewords, 5u);
  EXPECT_DOUBLE_EQ(result.cost_bits,
                   IntactChunkCost(form, DefaultConfig(), 0, 0));
}

TEST(ChunkingTest, Equation4BaseCost) {
  // C(c_ii) = log2(S) + log2(lambda_b bits) + min(lambda_g bits, 32).
  const auto config = DefaultConfig(4096);
  const auto form = MakeForm(0, {4}, {100});
  const double expected =
      std::log2(4096.0) + std::log2(4.0 * 4.0) + 32.0;
  EXPECT_DOUBLE_EQ(IntactChunkCost(form, config, 0, 0), expected);
}

TEST(ChunkingTest, Equation4ShortGoodRunSendsBitsNotChecksum) {
  const auto config = DefaultConfig(4096);
  // Good run of 3 codewords = 12 bits < 32-bit checksum.
  const auto form = MakeForm(0, {4}, {3});
  const double expected = std::log2(4096.0) + std::log2(16.0) + 12.0;
  EXPECT_DOUBLE_EQ(IntactChunkCost(form, config, 0, 0), expected);
}

TEST(ChunkingTest, ShortGapsMergeIntoOneChunk) {
  // Many bad runs separated by 1-codeword good runs: describing each
  // run individually costs ~log S + log lambda + 4 bits each, whereas
  // one chunk costs 2 log S + the tiny interior good runs. The DP must
  // merge.
  const auto form =
      MakeForm(50, {2, 3, 1, 2, 4}, {1, 1, 1, 1, 30});
  const auto result = ComputeOptimalChunks(form, DefaultConfig());
  ASSERT_EQ(result.chunks.size(), 1u);
  EXPECT_EQ(result.chunks[0].first_bad_run, 0u);
  EXPECT_EQ(result.chunks[0].last_bad_run, 4u);
}

TEST(ChunkingTest, DistantBadRunsStaySeparate) {
  // Two bad runs separated by a huge good run: resending the good run
  // (4000 bits) dwarfs the cost of describing two chunks.
  const auto form = MakeForm(0, {2, 2}, {1000, 10});
  const auto result = ComputeOptimalChunks(form, DefaultConfig());
  ASSERT_EQ(result.chunks.size(), 2u);
  EXPECT_EQ(result.chunks[0].first_bad_run, 0u);
  EXPECT_EQ(result.chunks[1].first_bad_run, 1u);
}

TEST(ChunkingTest, ChunksCoverAllBadRunsExactlyOnce) {
  Rng rng(131);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t L = 1 + rng.UniformInt(12);
    std::vector<std::size_t> bad(L), good(L);
    for (std::size_t i = 0; i < L; ++i) {
      bad[i] = 1 + rng.UniformInt(20);
      good[i] = rng.UniformInt(60);
    }
    if (good.back() == 0) good.back() = 0;  // trailing bad run allowed
    const auto form = MakeForm(rng.UniformInt(10), bad, good);
    const auto result = ComputeOptimalChunks(form, DefaultConfig());

    std::size_t covered = 0;
    std::size_t prev_end = 0;
    for (const auto& c : result.chunks) {
      EXPECT_EQ(c.first_bad_run, covered);
      EXPECT_GE(c.first_bad_run, prev_end);
      covered = c.last_bad_run + 1;
      prev_end = covered;
      // Chunk extent starts at its first bad run and ends at the end of
      // its last bad run.
      EXPECT_EQ(c.offset_codewords, form.BadRunOffset(c.first_bad_run));
      EXPECT_EQ(c.offset_codewords + c.length_codewords,
                form.BadRunOffset(c.last_bad_run) + form.bad[c.last_bad_run]);
    }
    EXPECT_EQ(covered, L);
  }
}

TEST(ChunkingTest, MatchesBruteForceOnRandomInputs) {
  // The DP must find the same optimal cost as exhaustive enumeration of
  // all 2^(L-1) partitions (optimal substructure, section 5.1).
  Rng rng(132);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t L = 1 + rng.UniformInt(9);
    std::vector<std::size_t> bad(L), good(L);
    for (std::size_t i = 0; i < L; ++i) {
      bad[i] = 1 + rng.UniformInt(30);
      good[i] = rng.UniformInt(40);
    }
    const auto form = MakeForm(rng.UniformInt(20), bad, good);
    const auto config = DefaultConfig(1 + rng.UniformInt(100000));

    const auto dp = ComputeOptimalChunks(form, config);
    const auto bf = ComputeOptimalChunksBruteForce(form, config);
    EXPECT_NEAR(dp.cost_bits, bf.cost_bits, 1e-9) << "trial " << trial;
  }
}

TEST(ChunkingTest, DpCostNeverExceedsSingleChunkOrAllSingles) {
  Rng rng(133);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t L = 2 + rng.UniformInt(10);
    std::vector<std::size_t> bad(L), good(L);
    for (std::size_t i = 0; i < L; ++i) {
      bad[i] = 1 + rng.UniformInt(25);
      good[i] = rng.UniformInt(50);
    }
    const auto form = MakeForm(0, bad, good);
    const auto config = DefaultConfig();
    const auto dp = ComputeOptimalChunks(form, config);

    const double one_chunk = IntactChunkCost(form, config, 0, L - 1);
    double all_singles = 0.0;
    for (std::size_t i = 0; i < L; ++i) {
      all_singles += IntactChunkCost(form, config, i, i);
    }
    EXPECT_LE(dp.cost_bits, one_chunk + 1e-9);
    EXPECT_LE(dp.cost_bits, all_singles + 1e-9);
  }
}

TEST(ChunkingTest, CostMonotoneInGoodRunLength) {
  // Growing an interior good run can only increase (or hold) the
  // optimal cost: either it gets resent (more bits) or the split cost
  // was already cheaper.
  const auto config = DefaultConfig();
  double prev = 0.0;
  for (std::size_t g = 1; g <= 512; g *= 2) {
    const auto form = MakeForm(0, {4, 4}, {g, 10});
    const double cost = ComputeOptimalChunks(form, config).cost_bits;
    EXPECT_GE(cost, prev);
    prev = cost;
  }
}

TEST(ChunkingTest, BruteForceGuardsAgainstHugeInputs) {
  std::vector<std::size_t> bad(25, 1), good(25, 1);
  const auto form = MakeForm(0, bad, good);
  EXPECT_THROW(ComputeOptimalChunksBruteForce(form, DefaultConfig()),
               std::invalid_argument);
}

// Parameterized sweep over packet sizes: DP==bruteforce invariant must
// hold across the cost model's log S scaling.
class ChunkingPacketSizeTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkingPacketSizeTest, DpMatchesBruteForce) {
  Rng rng(134 + GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t L = 1 + rng.UniformInt(8);
    std::vector<std::size_t> bad(L), good(L);
    for (std::size_t i = 0; i < L; ++i) {
      bad[i] = 1 + rng.UniformInt(15);
      good[i] = rng.UniformInt(30);
    }
    const auto form = MakeForm(0, bad, good);
    const auto config = DefaultConfig(GetParam());
    EXPECT_NEAR(ComputeOptimalChunks(form, config).cost_bits,
                ComputeOptimalChunksBruteForce(form, config).cost_bits, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(PacketSizes, ChunkingPacketSizeTest,
                         ::testing::Values(256, 2000, 12000, 65536));

}  // namespace
}  // namespace ppr::arq
