#include "arq/adaptive_burst.h"

#include <gtest/gtest.h>

#include "arq/link_sim.h"
#include "arq/recovery_strategy.h"
#include "common/crc.h"
#include "common/rng.h"
#include "fec/coded_repair.h"
#include "fec/rlnc.h"

namespace ppr::arq {
namespace {

TEST(BurstSizeForTargetTest, CleanChannelRequestsExactlyTheDeficit) {
  for (const std::size_t deficit : {1u, 3u, 17u, 64u}) {
    EXPECT_EQ(BurstSizeForTarget(deficit, 1.0, 0.95, 1024), deficit);
  }
  EXPECT_EQ(BurstSizeForTarget(0, 0.5, 0.95, 1024), 0u);
}

TEST(BurstSizeForTargetTest, LossGrowsTheBurst) {
  const std::size_t clean = BurstSizeForTarget(10, 1.0, 0.9, 1024);
  const std::size_t mild = BurstSizeForTarget(10, 0.8, 0.9, 1024);
  const std::size_t harsh = BurstSizeForTarget(10, 0.4, 0.9, 1024);
  EXPECT_EQ(clean, 10u);
  EXPECT_GT(mild, clean);
  EXPECT_GT(harsh, mild);
  // At delivery rate p the burst must at least cover deficit / p in
  // expectation to hit any target above one half.
  EXPECT_GE(harsh, 25u);
}

TEST(BurstSizeForTargetTest, HigherTargetNeverShrinksTheBurst) {
  const std::size_t relaxed = BurstSizeForTarget(8, 0.7, 0.5, 1024);
  const std::size_t strict = BurstSizeForTarget(8, 0.7, 0.99, 1024);
  EXPECT_GE(strict, relaxed);
}

TEST(BurstSizeForTargetTest, CapBoundsTheRequest) {
  EXPECT_EQ(BurstSizeForTarget(10, 0.05, 0.99, 40), 40u);
  EXPECT_EQ(BurstSizeForTarget(50, 1.0, 0.9, 40), 40u);
}

TEST(RepairDeliveryEstimatorTest, PriorUntilEvidenceThenObservedRate) {
  RepairDeliveryEstimator est(0.8);
  EXPECT_DOUBLE_EQ(est.DeliveryRate(), 0.8);
  est.OnRequested(20);
  est.OnDelivered(10);
  EXPECT_DOUBLE_EQ(est.DeliveryRate(), 0.5);
  est.OnRequested(20);
  est.OnDelivered(20);
  EXPECT_DOUBLE_EQ(est.DeliveryRate(), 0.75);
}

TEST(RepairDeliveryEstimatorTest, SilenceClampsToFloor) {
  RepairDeliveryEstimator est(0.8);
  est.OnRequested(100);
  EXPECT_DOUBLE_EQ(est.DeliveryRate(), RepairDeliveryEstimator::kFloor);
}

// --------------------------------------------------------------------
// The satellite's end-to-end property, driven through the real coded
// receiver: a lossy round grows the next burst beyond the deficit,
// while a clean round converges the request to deficit + 0.

// A receiver with `erased` trailing codewords unusable, so the session
// opens with a known deficit.
std::unique_ptr<RecoveryReceiver> ReceiverWithErasures(
    const PpArqConfig& config, const BitVec& body, std::size_t erased_codewords,
    std::unique_ptr<RecoveryReceiver> receiver) {
  const std::size_t n = body.size() / config.bits_per_codeword;
  std::vector<phy::DecodedSymbol> symbols(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool erased = i + erased_codewords >= n;
    auto value = static_cast<std::uint8_t>(body.ReadUint(i * 4, 4));
    if (erased) value = static_cast<std::uint8_t>(value ^ 0xF);  // garbage
    symbols[i].symbol = value;
    symbols[i].hint =
        erased ? std::numeric_limits<double>::infinity() : 0.0;
  }
  receiver->IngestInitial(symbols);
  return receiver;
}

struct WireRequest {
  std::uint16_t seq;
  std::size_t count;
};

WireRequest ParseRequest(const BitVec& wire) {
  const auto fb = DecodeCodedFeedbackWire(wire);
  EXPECT_TRUE(fb.has_value());
  return {fb->seq, fb->requested.front()};
}

TEST(AdaptiveCodedSizingTest, CleanDeliveryConvergesToDeficitPlusZero) {
  PpArqConfig config;
  config.recovery = RecoveryMode::kCodedRepair;
  Rng rng(701);
  BitVec payload;
  for (std::size_t i = 0; i < 160 * 8; ++i) payload.PushBack(rng.Bernoulli(0.5));
  const BitVec body = PpArqSender::MakeBody(payload);
  const auto strategy = MakeRecoveryStrategy(config);
  // The trailing 64 bad codewords cross a symbol boundary (328 is not a
  // multiple of 16), so 5 of the 21 FEC symbols are unusable.
  auto receiver = ReceiverWithErasures(
      config, body, 4 * config.codewords_per_fec_symbol,
      strategy->MakeReceiver(1, body.size() / 4));

  const auto wire1 = receiver->BuildFeedbackWire();
  ASSERT_TRUE(wire1.has_value());
  const auto req1 = ParseRequest(*wire1);
  // Round one runs on the prior (repair_overhead headroom).
  EXPECT_GT(req1.count, 5u);

  // Deliver every requested record with a valid CRC — but all of them
  // the SAME honest repair symbol (one single-record frame per copy, so
  // every claimed seed is seed 1): delivery looks perfect while rank
  // grows by only one, and the next request must be exactly the
  // remaining deficit with zero headroom.
  const fec::RlncEncoder encoder(
      fec::BodyToSymbols(body, 4, config.codewords_per_fec_symbol));
  const fec::RepairSymbol repair = encoder.MakeRepair(1);
  BitVec bits = BitVec::FromBytes(repair.data);
  bits.AppendUint(Crc32Bits(BitVec::FromBytes(repair.data)), 32);
  std::vector<phy::DecodedSymbol> symbols(bits.size() / 4);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    symbols[i].symbol = static_cast<std::uint8_t>(bits.ReadUint(i * 4, 4));
    symbols[i].hint = 0.0;
  }
  std::vector<ReceivedRepairFrame> frames(req1.count);
  for (auto& frame : frames) {
    frame.range = CodewordRange{0, bits.size() / 4};
    frame.aux = 1;
    frame.symbols = symbols;
  }
  receiver->IngestRepair(frames);

  const auto wire2 = receiver->BuildFeedbackWire();
  ASSERT_TRUE(wire2.has_value());
  const auto req2 = ParseRequest(*wire2);
  EXPECT_EQ(req2.count, 4u);  // deficit 5 - 1 rank gained, plus zero
}

TEST(AdaptiveCodedSizingTest, LossyDeliveryGrowsTheBurst) {
  PpArqConfig config;
  config.recovery = RecoveryMode::kCodedRepair;
  Rng rng(702);
  BitVec payload;
  for (std::size_t i = 0; i < 160 * 8; ++i) payload.PushBack(rng.Bernoulli(0.5));
  const BitVec body = PpArqSender::MakeBody(payload);
  const auto strategy = MakeRecoveryStrategy(config);
  auto receiver = ReceiverWithErasures(
      config, body, 4 * config.codewords_per_fec_symbol,
      strategy->MakeReceiver(1, body.size() / 4));

  const auto wire1 = receiver->BuildFeedbackWire();
  ASSERT_TRUE(wire1.has_value());
  const auto req1 = ParseRequest(*wire1);

  // Every record of round one is lost (the repair frame never decodes);
  // the delivery estimate collapses and the burst must grow.
  receiver->IngestRepair({});
  const auto wire2 = receiver->BuildFeedbackWire();
  ASSERT_TRUE(wire2.has_value());
  const auto req2 = ParseRequest(*wire2);
  EXPECT_GT(req2.count, req1.count);
  EXPECT_GT(req2.count, 4u * 4u);  // far beyond the deficit
}

}  // namespace
}  // namespace ppr::arq
