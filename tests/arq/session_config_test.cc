// SessionConfig + RunRound stepping (satellites of the flow engine
// PR): the immutable-topology constructor must reproduce the
// deprecated setter path bit for bit, and stepping a session one
// RunRound at a time — the way the flow engine drives compat sessions
// — must equal the blocking Run() loop exactly.
#include "arq/recovery_session.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <utility>

#include "arq/link_sim.h"
#include "arq/pp_arq.h"
#include "arq/recovery_strategy.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"

namespace ppr::arq {
namespace {

BitVec RandomPayload(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

GilbertElliottParams DegradedParams() {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.03;
  params.p_bad_to_good = 0.12;
  params.chip_error_good = 0.004;
  params.chip_error_bad = 0.25;
  return params;
}

GilbertElliottParams StrongParams() {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.001;
  params.p_bad_to_good = 0.5;
  params.chip_error_good = 0.0005;
  params.chip_error_bad = 0.05;
  return params;
}

bool StatsEqual(const SessionRunStats& a, const SessionRunStats& b) {
  if (a.totals.success != b.totals.success ||
      a.totals.data_transmissions != b.totals.data_transmissions ||
      a.totals.forward_bits != b.totals.forward_bits ||
      a.totals.feedback_bits != b.totals.feedback_bits ||
      a.totals.retransmission_bits != b.totals.retransmission_bits ||
      a.rounds != b.rounds ||
      a.max_round_relay_bits != b.max_round_relay_bits ||
      a.relay_deferrals != b.relay_deferrals ||
      a.parties.size() != b.parties.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.parties.size(); ++i) {
    if (a.parties[i].repair_bits != b.parties[i].repair_bits ||
        a.parties[i].repair_messages != b.parties[i].repair_messages ||
        a.parties[i].feedback_bits != b.parties[i].feedback_bits) {
      return false;
    }
  }
  return true;
}

// One lossy three-party exchange, built either through SessionConfig
// (config=true) or through the deprecated setters (config=false), then
// driven either by Run(32) (stepped=false) or by RunRound stepping
// (stepped=true). All four combinations must produce identical stats.
SessionRunStats RunGoldenExchange(bool via_config, bool stepped) {
  const phy::ChipCodebook cb;
  Rng prng(731);
  const BitVec payload = RandomPayload(prng, 150);
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  config.relay_parties = 1;
  const auto strategy = MakeRecoveryStrategy(config);
  const BitVec body = PpArqSender::MakeBody(payload);
  const std::size_t total_codewords = body.size() / config.bits_per_codeword;

  Rng direct(732), overhear(733), hop(734);
  auto direct_ch = MakeGilbertElliottChannel(cb, DegradedParams(), direct);
  auto overhear_ch = MakeGilbertElliottChannel(cb, StrongParams(), overhear);
  auto hop_ch = MakeGilbertElliottChannel(cb, StrongParams(), hop);

  RecoverySession session = [&] {
    if (!via_config) return RecoverySession();
    SessionConfig topology;
    topology.edges.push_back(
        {kSessionSourceId, kSessionDestinationId, direct_ch});
    topology.edges.push_back({kSessionSourceId, kSessionRelayId, overhear_ch});
    topology.edges.push_back(
        {kSessionRelayId, kSessionDestinationId, hop_ch});
    return RecoverySession(std::move(topology));
  }();
  session.AddParty(strategy->MakeSourceParticipant(body, 1));
  session.AddParty(strategy->MakeDestinationParticipant(1, total_codewords));
  session.AddParty(strategy->MakeRelayParticipant(1, 1, total_codewords));
  if (!via_config) {
    session.SetEdgeChannel(kSessionSourceId, kSessionDestinationId, direct_ch);
    session.SetEdgeChannel(kSessionSourceId, kSessionRelayId, overhear_ch);
    session.SetEdgeChannel(kSessionRelayId, kSessionDestinationId, hop_ch);
  }
  session.TransmitInitial(kSessionSourceId, body);
  if (!stepped) return session.Run(32);
  for (std::size_t round = 0; round < 32; ++round) {
    if (!session.RunRound()) return session.stats();
  }
  return session.Conclude();
}

TEST(SessionConfigTest, ConfigAndSetterPathsAreBitIdentical) {
  const SessionRunStats setter = RunGoldenExchange(false, false);
  const SessionRunStats config = RunGoldenExchange(true, false);
  ASSERT_TRUE(setter.totals.success);
  EXPECT_TRUE(StatsEqual(setter, config));
}

TEST(SessionConfigTest, RunRoundSteppingEqualsBlockingRun) {
  const SessionRunStats blocking = RunGoldenExchange(true, false);
  const SessionRunStats stepped = RunGoldenExchange(true, true);
  ASSERT_TRUE(blocking.totals.success);
  EXPECT_TRUE(StatsEqual(blocking, stepped));
  // And mixed: setter-built, stepped.
  EXPECT_TRUE(StatsEqual(blocking, RunGoldenExchange(false, true)));
}

TEST(SessionConfigTest, ConstructionRejectsDegenerateTopology) {
  SessionConfig self_loop;
  self_loop.edges.push_back({1, 1, BodyChannel{}});
  EXPECT_THROW(RecoverySession{std::move(self_loop)}, std::invalid_argument);

  SessionConfig null_broadcast;
  null_broadcast.initial_broadcast =
      SessionBroadcast{0, {1}, BroadcastBodyChannel{}};
  EXPECT_THROW(RecoverySession{std::move(null_broadcast)},
               std::invalid_argument);
}

// Config edges may name parties that do not exist yet — validation
// waits until traffic first moves, then rejects the unknown party.
TEST(SessionConfigTest, UnknownPartyIsRejectedAtFirstTraffic) {
  const phy::ChipCodebook cb;
  Rng prng(741);
  const BitVec payload = RandomPayload(prng, 40);
  PpArqConfig config;
  config.recovery = RecoveryMode::kCodedRepair;
  const auto strategy = MakeRecoveryStrategy(config);
  const BitVec body = PpArqSender::MakeBody(payload);

  SessionConfig topology;
  Rng channel_rng(742);
  topology.edges.push_back(
      {kSessionSourceId, /*to=*/7,
       MakeGilbertElliottChannel(cb, StrongParams(), channel_rng)});
  RecoverySession session{std::move(topology)};
  session.AddParty(strategy->MakeSourceParticipant(body, 1));
  session.AddParty(strategy->MakeDestinationParticipant(
      1, body.size() / config.bits_per_codeword));
  EXPECT_THROW(session.TransmitInitial(kSessionSourceId, body),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppr::arq
