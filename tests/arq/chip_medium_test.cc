// The chip-level shared broadcast medium: legacy equivalence of the
// independent mode, correlated impairment spans under a shared
// interferer, roster-invariant seed derivation, and the joint-loss
// accounting.
#include "arq/chip_medium.h"

#include <gtest/gtest.h>

#include <set>

#include "arq/link_sim.h"

namespace ppr::arq {
namespace {

BitVec RandomBody(Rng& rng, std::size_t codewords) {
  BitVec bits;
  for (std::size_t i = 0; i < codewords; ++i) {
    bits.AppendUint(rng.UniformInt(16), 4);
  }
  return bits;
}

GilbertElliottParams BurstyParams(double chip_error_bad = 0.2) {
  GilbertElliottParams ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.2;
  ge.chip_error_good = 0.0005;
  ge.chip_error_bad = chip_error_bad;
  return ge;
}

void ExpectSameSymbols(const std::vector<phy::DecodedSymbol>& a,
                       const std::vector<phy::DecodedSymbol>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].symbol, b[i].symbol);
    EXPECT_EQ(a[i].hamming_distance, b[i].hamming_distance);
    EXPECT_EQ(a[i].hint, b[i].hint);
  }
}

std::set<std::size_t> WrongCodewords(const BitVec& sent,
                                     const std::vector<phy::DecodedSymbol>& rx) {
  std::set<std::size_t> wrong;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    if (rx[i].symbol != sent.ReadUint(4 * i, 4)) wrong.insert(i);
  }
  return wrong;
}

// The equivalence pin: in kIndependent mode every listener — across a
// broadcast and interleaved unicast (repair) traffic — reproduces the
// legacy MakeGilbertElliottChannel draw for draw.
TEST(ChipMediumTest, IndependentModeMatchesLegacyChannels) {
  const phy::ChipCodebook codebook;
  const auto ge_a = BurstyParams();
  auto ge_b = BurstyParams();
  ge_b.chip_error_bad = 0.3;

  auto medium = ChipMedium::Create(
      codebook, CollisionCorrelation::kIndependent, /*medium_seed=*/7,
      BurstyParams());
  medium->AddListener(ge_a, Rng(41));
  medium->AddListener(ge_b, Rng(42));
  const auto broadcast = medium->MakeBroadcastChannel();
  const auto unicast0 = medium->MakeUnicastChannel(0);

  Rng legacy_a(41);
  Rng legacy_b(42);
  const auto channel_a = MakeGilbertElliottChannel(codebook, ge_a, legacy_a);
  const auto channel_b = MakeGilbertElliottChannel(codebook, ge_b, legacy_b);

  Rng payload(99);
  const BitVec initial = RandomBody(payload, 160);
  const auto receptions = broadcast(initial);
  ASSERT_EQ(receptions.size(), 2u);
  ExpectSameSymbols(receptions[0], channel_a(initial));
  ExpectSameSymbols(receptions[1], channel_b(initial));

  // Unicast repair traffic continues listener 0's stream exactly where
  // the legacy channel's next call would be.
  for (int round = 0; round < 3; ++round) {
    const BitVec repair = RandomBody(payload, 52);
    ExpectSameSymbols(unicast0(repair), channel_a(repair));
  }
}

// A shared interferer must impair the same codeword span at every
// listener — scaled by each listener's own bad-state chip error rate —
// while a listener the burst cannot hurt (chip_error_bad == clean
// rate) still reports the collision but loses nothing.
TEST(ChipMediumTest, SharedInterfererImpairsSameSpan) {
  const phy::ChipCodebook codebook;
  auto process = BurstyParams();
  process.p_good_to_bad = 0.1;

  auto medium = ChipMedium::Create(
      codebook, CollisionCorrelation::kSharedInterferer, /*medium_seed=*/21,
      process);
  // Destination and overhearer both vulnerable (chips flip at 40% in
  // the burst); the third listener's radio is unaffected by the burst.
  auto vulnerable = BurstyParams(0.4);
  vulnerable.chip_error_good = 0.0;
  auto immune = vulnerable;
  immune.chip_error_bad = 0.0;
  medium->AddListener(vulnerable, Rng(1));
  medium->AddListener(vulnerable, Rng(2));
  medium->AddListener(immune, Rng(3));

  Rng payload(7);
  const BitVec body = RandomBody(payload, 200);
  const auto receptions = medium->Broadcast(body);

  const auto wrong0 = WrongCodewords(body, receptions[0]);
  const auto wrong1 = WrongCodewords(body, receptions[1]);
  const auto wrong2 = WrongCodewords(body, receptions[2]);
  ASSERT_FALSE(wrong0.empty());  // the burst did real damage
  ASSERT_FALSE(wrong1.empty());
  EXPECT_TRUE(wrong2.empty());  // collided, but this radio shrugged it off

  // Same burst, same span: the two vulnerable listeners' corrupted
  // codewords overlap (private chip flips fray the edges, nothing
  // more).
  std::set<std::size_t> both;
  for (const auto k : wrong0) {
    if (wrong1.count(k)) both.insert(k);
  }
  EXPECT_FALSE(both.empty());

  // Collision flags are the shared draw: identical at every listener.
  const auto& s0 = medium->StatsFor(0);
  const auto& s1 = medium->StatsFor(1);
  const auto& s2 = medium->StatsFor(2);
  EXPECT_EQ(s0.collision_frames, 1u);
  EXPECT_EQ(s1.collision_frames, 1u);
  EXPECT_EQ(s2.collision_frames, 1u);
  EXPECT_EQ(s1.joint_collision_frames, 1u);
  EXPECT_EQ(s1.joint_corrupted_frames, 1u);
  EXPECT_EQ(s2.joint_corrupted_frames, 0u);
  EXPECT_EQ(OverhearLossGivenDirectLoss(s1), 1.0);
  EXPECT_EQ(OverhearLossGivenDirectLoss(s2), 0.0);
  const auto& ms = medium->medium_stats();
  EXPECT_EQ(ms.joint_collision_frames, 1u);
  EXPECT_EQ(ms.joint_corrupted_frames, 1u);
}

// SeedForTransmission is a pure function: same inputs same seed,
// different sender or index different seed.
TEST(ChipMediumTest, SeedForTransmissionIsPure) {
  EXPECT_EQ(SeedForTransmission(1, 2, 3), SeedForTransmission(1, 2, 3));
  EXPECT_NE(SeedForTransmission(1, 2, 3), SeedForTransmission(1, 2, 4));
  EXPECT_NE(SeedForTransmission(1, 2, 3), SeedForTransmission(1, 3, 3));
  EXPECT_NE(SeedForTransmission(2, 2, 3), SeedForTransmission(1, 2, 3));
}

// The draw-centralization property the medium exists for: in shared
// mode a listener's reception is a pure function of (medium seed,
// sender, transmission index, listener index) — growing the roster
// cannot reorder anyone else's draws.
TEST(ChipMediumTest, RosterSizeCannotReorderSharedDraws) {
  const phy::ChipCodebook codebook;
  const auto process = BurstyParams();
  Rng payload(13);
  const BitVec body = RandomBody(payload, 120);
  const BitVec repair = RandomBody(payload, 40);

  auto solo = ChipMedium::Create(
      codebook, CollisionCorrelation::kSharedInterferer, 5, process);
  solo->AddListener(BurstyParams(), Rng(1));
  const auto solo_rx = solo->Broadcast(body);
  const auto solo_repair = solo->MakeUnicastChannel(0)(repair);

  auto trio = ChipMedium::Create(
      codebook, CollisionCorrelation::kSharedInterferer, 5, process);
  trio->AddListener(BurstyParams(), Rng(1));
  trio->AddListener(BurstyParams(0.3), Rng(2));
  trio->AddListener(BurstyParams(0.1), Rng(3));
  const auto trio_rx = trio->Broadcast(body);
  const auto trio_repair = trio->MakeUnicastChannel(0)(repair);

  ExpectSameSymbols(solo_rx[0], trio_rx[0]);
  ExpectSameSymbols(solo_repair, trio_repair);
}

// Unicast (repair) traffic advances the seed chain but stays out of
// the joint-loss stats: those describe correlated broadcast
// receptions only.
TEST(ChipMediumTest, UnicastTrafficDoesNotEnterJointStats) {
  const phy::ChipCodebook codebook;
  auto medium = ChipMedium::Create(
      codebook, CollisionCorrelation::kSharedInterferer, 9, BurstyParams());
  medium->AddListener(BurstyParams(), Rng(1));
  medium->AddListener(BurstyParams(), Rng(2));
  const auto unicast = medium->MakeUnicastChannel(0);

  Rng payload(3);
  medium->Broadcast(RandomBody(payload, 80));
  unicast(RandomBody(payload, 80));
  unicast(RandomBody(payload, 80));
  EXPECT_EQ(medium->StatsFor(0).broadcast_frames, 1u);
  EXPECT_EQ(medium->StatsFor(1).broadcast_frames, 1u);
  EXPECT_EQ(medium->medium_stats().broadcast_frames, 1u);
  EXPECT_EQ(medium->transmissions(), 3u);
}

}  // namespace
}  // namespace ppr::arq
