#include "arq/recovery_session.h"

#include <gtest/gtest.h>

#include <limits>

#include "arq/link_sim.h"
#include "common/crc.h"
#include "common/rng.h"
#include "fec/gf256.h"

namespace ppr::arq {
namespace {

BitVec RandomPayload(Rng& rng, std::size_t octets) {
  BitVec bits;
  for (std::size_t i = 0; i < octets * 8; ++i) {
    bits.PushBack(rng.Bernoulli(0.5));
  }
  return bits;
}

GilbertElliottParams DegradedParams() {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.03;
  params.p_bad_to_good = 0.12;
  params.chip_error_good = 0.004;
  params.chip_error_bad = 0.25;
  return params;
}

GilbertElliottParams StrongParams() {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.001;
  params.p_bad_to_good = 0.5;
  params.chip_error_good = 0.0005;
  params.chip_error_bad = 0.05;
  return params;
}

// A channel that delivers every codeword verbatim with a confident hint.
BodyChannel PerfectChannel() {
  return [](const BitVec& bits) {
    std::vector<phy::DecodedSymbol> out;
    out.reserve(bits.size() / 4);
    for (std::size_t i = 0; i < bits.size(); i += 4) {
      phy::DecodedSymbol s;
      s.symbol = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      s.hint = 0.0;
      s.hamming_distance = 0;
      out.push_back(s);
    }
    return out;
  };
}

// A channel that delivers nothing useful: every codeword zeroed with an
// infinitely bad hint (out of range).
BodyChannel DeadChannel() {
  return [](const BitVec& bits) {
    std::vector<phy::DecodedSymbol> out(bits.size() / 4);
    for (auto& s : out) {
      s.symbol = 0;
      s.hint = std::numeric_limits<double>::infinity();
      s.hamming_distance = 32;
    }
    return out;
  };
}

TEST(RecoverySessionTest, FactoryKnowsRelayStrategy) {
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  const auto strategy = MakeRecoveryStrategy(config);
  EXPECT_STREQ(strategy->Name(), "relay-coded-repair");
  EXPECT_NE(strategy->MakeRelayParticipant(1, 1, 512), nullptr);
}

TEST(RecoverySessionTest, OnlyRelayStrategyHasRelayRole) {
  for (const auto mode :
       {RecoveryMode::kChunkRetransmit, RecoveryMode::kCodedRepair}) {
    PpArqConfig config;
    config.recovery = mode;
    EXPECT_EQ(MakeRecoveryStrategy(config)->MakeRelayParticipant(1, 1, 512),
              nullptr);
  }
}

TEST(RecoverySessionTest, RequiresADestination) {
  PpArqConfig config;
  const auto strategy = MakeRecoveryStrategy(config);
  Rng rng(601);
  const BitVec body = PpArqSender::MakeBody(RandomPayload(rng, 40));
  RecoverySession session;
  session.AddParty(strategy->MakeSourceParticipant(body, 1));
  EXPECT_THROW(session.Run(4), std::logic_error);
}

TEST(RecoverySessionTest, RejectsSecondDestination) {
  PpArqConfig config;
  const auto strategy = MakeRecoveryStrategy(config);
  RecoverySession session;
  session.AddParty(strategy->MakeDestinationParticipant(1, 128));
  EXPECT_THROW(session.AddParty(strategy->MakeDestinationParticipant(1, 128)),
               std::invalid_argument);
}

// An independent re-implementation of the pre-session duplex loop
// (sender/receiver driven directly, one channel, frames crossed in plan
// order), preserved here verbatim so the session engine is compared
// against the legacy behavior rather than against itself.
ArqRunStats LegacyDuplexLoop(const BitVec& payload,
                             const PpArqConfig& config,
                             const RecoveryStrategy& strategy,
                             const BodyChannel& channel,
                             std::size_t max_rounds = 32) {
  ArqRunStats stats;
  const BitVec body = PpArqSender::MakeBody(payload);
  auto sender = strategy.MakeSender(body, 1);
  auto receiver =
      strategy.MakeReceiver(1, body.size() / config.bits_per_codeword);
  stats.forward_bits += body.size();
  ++stats.data_transmissions;
  receiver->IngestInitial(channel(body));
  for (std::size_t round = 0; round < max_rounds; ++round) {
    const auto fb_wire = receiver->BuildFeedbackWire();
    if (!fb_wire.has_value()) {
      stats.success = true;
      return stats;
    }
    stats.feedback_bits += fb_wire->size();
    const RepairPlan plan = sender->HandleFeedback(*fb_wire);
    stats.forward_bits += plan.wire_bits;
    stats.retransmission_bits.push_back(plan.wire_bits);
    ++stats.data_transmissions;
    std::vector<ReceivedRepairFrame> received;
    for (const auto& frame : plan.frames) {
      ReceivedRepairFrame rf;
      rf.range = frame.range;
      rf.aux = frame.aux;
      rf.origin = frame.origin;
      rf.coef_mask = frame.coef_mask;
      rf.suspicion = frame.suspicion;
      rf.symbols = channel(frame.bits);
      received.push_back(std::move(rf));
    }
    receiver->IngestRepair(received);
  }
  stats.success = receiver->Complete();
  return stats;
}

// The tentpole compatibility property: driving a strategy through
// RecoverySession with one source, one destination and one edge gives
// exactly the stats of the legacy duplex loop above — same channel draw
// order, same accounting — for every strategy.
TEST(RecoverySessionTest, TwoPartySessionMatchesDuplexExchange) {
  Rng prng(611);
  const BitVec payload = RandomPayload(prng, 180);
  const phy::ChipCodebook cb;
  for (const auto mode :
       {RecoveryMode::kChunkRetransmit, RecoveryMode::kCodedRepair}) {
    PpArqConfig config;
    config.recovery = mode;
    const auto strategy = MakeRecoveryStrategy(config);

    Rng rng_a(612);
    auto channel_a = MakeGilbertElliottChannel(cb, DegradedParams(), rng_a);
    const auto duplex =
        LegacyDuplexLoop(payload, config, *strategy, channel_a);

    Rng rng_b(612);
    auto channel_b = MakeGilbertElliottChannel(cb, DegradedParams(), rng_b);
    const auto session = RunRecoveryExchangeSession(payload, config, *strategy,
                                                    channel_b);

    EXPECT_TRUE(duplex.success);
    EXPECT_EQ(duplex.success, session.totals.success);
    EXPECT_EQ(duplex.data_transmissions, session.totals.data_transmissions);
    EXPECT_EQ(duplex.forward_bits, session.totals.forward_bits);
    EXPECT_EQ(duplex.feedback_bits, session.totals.feedback_bits);
    EXPECT_EQ(duplex.retransmission_bits, session.totals.retransmission_bits);
    // Per-party accounting adds up to the totals.
    ASSERT_EQ(session.parties.size(), 2u);
    EXPECT_EQ(session.parties[kSessionSourceId].repair_bits +
                  PpArqSender::MakeBody(payload).size(),
              session.totals.forward_bits);
    EXPECT_EQ(session.parties[kSessionDestinationId].feedback_bits,
              session.totals.feedback_bits);
  }
}

RelayExchangeChannels MakeGeChannels(const phy::ChipCodebook& cb,
                                     const GilbertElliottParams& direct,
                                     const GilbertElliottParams& overhear,
                                     const GilbertElliottParams& relay_link,
                                     Rng& direct_rng, Rng& overhear_rng,
                                     Rng& relay_rng) {
  RelayExchangeChannels channels;
  channels.source_to_destination =
      MakeGilbertElliottChannel(cb, direct, direct_rng);
  channels.source_to_relay = MakeGilbertElliottChannel(cb, overhear, overhear_rng);
  channels.relay_to_destination =
      MakeGilbertElliottChannel(cb, relay_link, relay_rng);
  return channels;
}

// The PR's acceptance scenario: a degraded direct path and a strong
// relay. Relay-coded recovery must complete every packet and put
// strictly fewer source-transmitted repair bits on the air than
// sender-only coded repair over the identical direct channel.
TEST(RecoverySessionTest, RelaySpendsFewerSourceRepairBitsThanCoded) {
  const phy::ChipCodebook cb;
  std::size_t relay_source_bits = 0;
  std::size_t coded_source_bits = 0;
  std::size_t relay_contributions = 0;
  for (const std::uint64_t seed : {621ull, 622ull, 623ull, 624ull}) {
    Rng prng(seed);
    const BitVec payload = RandomPayload(prng, 200);

    PpArqConfig relay_config;
    relay_config.recovery = RecoveryMode::kRelayCodedRepair;
    Rng direct_a(seed ^ 0xD1);
    Rng overhear(seed ^ 0x0E);
    Rng relay_link(seed ^ 0x51);
    const auto channels =
        MakeGeChannels(cb, DegradedParams(), StrongParams(), StrongParams(),
                       direct_a, overhear, relay_link);
    const auto relay = RunRelayRecoveryExchange(
        payload, relay_config, *MakeRecoveryStrategy(relay_config), channels);

    PpArqConfig coded_config;
    coded_config.recovery = RecoveryMode::kCodedRepair;
    Rng direct_b(seed ^ 0xD1);  // identical direct-channel trace
    auto coded_channel = MakeGilbertElliottChannel(cb, DegradedParams(), direct_b);
    const auto coded = RunRecoveryExchangeSession(
        payload, coded_config, *MakeRecoveryStrategy(coded_config),
        coded_channel);

    ASSERT_TRUE(relay.totals.success) << "seed=" << seed;
    ASSERT_TRUE(coded.totals.success) << "seed=" << seed;
    ASSERT_EQ(relay.parties.size(), 3u);
    relay_source_bits += relay.parties[kSessionSourceId].repair_bits;
    relay_contributions += relay.parties[kSessionRelayId].repair_bits;
    coded_source_bits += coded.parties[kSessionSourceId].repair_bits;
    // The degraded channel actually forced repair rounds.
    EXPECT_FALSE(coded.totals.retransmission_bits.empty()) << "seed=" << seed;
  }
  EXPECT_GT(relay_contributions, 0u);
  EXPECT_LT(relay_source_bits, coded_source_bits);
}

TEST(RecoverySessionTest, RelaySessionDeliversExactPayload) {
  const phy::ChipCodebook cb;
  Rng prng(631);
  const BitVec payload = RandomPayload(prng, 150);
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  Rng direct(632), overhear(633), relay_link(634);
  const auto channels =
      MakeGeChannels(cb, DegradedParams(), StrongParams(), StrongParams(),
                     direct, overhear, relay_link);

  const BitVec body = PpArqSender::MakeBody(payload);
  const auto strategy = MakeRecoveryStrategy(config);
  RecoverySession session;
  session.AddParty(strategy->MakeSourceParticipant(body, 1));
  const PartyId dest_id = session.AddParty(
      strategy->MakeDestinationParticipant(1, body.size() / 4));
  session.AddParty(strategy->MakeRelayParticipant(1, 1, body.size() / 4));
  session.SetEdgeChannel(0, dest_id, channels.source_to_destination);
  session.SetEdgeChannel(0, 2, channels.source_to_relay);
  session.SetEdgeChannel(2, dest_id, channels.relay_to_destination);
  session.TransmitInitial(0, body);
  const auto stats = session.Run(32);
  ASSERT_TRUE(stats.totals.success);
  EXPECT_EQ(static_cast<DestinationParticipant&>(session.party(dest_id))
                .AssembledPayload(),
            payload);
}

// A relay that overhears nothing must not wedge the exchange: the
// destination's delivery estimate for the silent relay decays to the
// floor and the source carries the packet alone.
TEST(RecoverySessionTest, SilentRelayFallsBackToSourceOnly) {
  const phy::ChipCodebook cb;
  Rng prng(641);
  const BitVec payload = RandomPayload(prng, 120);
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  RelayExchangeChannels channels;
  Rng direct(642);
  channels.source_to_destination =
      MakeGilbertElliottChannel(cb, DegradedParams(), direct);
  channels.source_to_relay = DeadChannel();  // the relay hears only noise
  channels.relay_to_destination = PerfectChannel();
  const auto stats = RunRelayRecoveryExchange(
      payload, config, *MakeRecoveryStrategy(config), channels);
  EXPECT_TRUE(stats.totals.success);
  EXPECT_EQ(stats.parties[kSessionRelayId].repair_bits, 0u);
  EXPECT_GT(stats.parties[kSessionSourceId].repair_bits, 0u);
}

// Satellite: relay-side SoftPHY misses. The relay's overheard copy
// contains wrong-but-confident codewords, so every equation it streams
// is consistent with a wrong body. The per-symbol wire CRC cannot catch
// this (the equations are "valid"), so the destination's
// decode-verify-evict loop must distrust the relay's equations and
// finish correctly from its own symbols plus the source's stream.
TEST(RecoverySessionTest, RelayMissDoesNotPoisonDestination) {
  const phy::ChipCodebook cb;
  Rng prng(651);
  const BitVec payload = RandomPayload(prng, 120);
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;

  RelayExchangeChannels channels;
  Rng direct(652);
  channels.source_to_destination =
      MakeGilbertElliottChannel(cb, DegradedParams(), direct);
  // The relay's copy: confidently wrong in a stretch of codewords — a
  // modeled SoftPHY miss (hint 0 despite flipped bits).
  channels.source_to_relay = [perfect =
                                  PerfectChannel()](const BitVec& bits) {
    auto symbols = perfect(bits);
    for (std::size_t i = 40; i < 80 && i < symbols.size(); ++i) {
      symbols[i].symbol = static_cast<std::uint8_t>(symbols[i].symbol ^ 0x5);
      symbols[i].hint = 0.0;
    }
    return symbols;
  };
  channels.relay_to_destination = PerfectChannel();

  const BitVec body = PpArqSender::MakeBody(payload);
  const auto strategy = MakeRecoveryStrategy(config);
  RecoverySession session;
  session.AddParty(strategy->MakeSourceParticipant(body, 1));
  const PartyId dest_id = session.AddParty(
      strategy->MakeDestinationParticipant(1, body.size() / 4));
  session.AddParty(strategy->MakeRelayParticipant(1, 1, body.size() / 4));
  session.SetEdgeChannel(0, dest_id, channels.source_to_destination);
  session.SetEdgeChannel(0, 2, channels.source_to_relay);
  session.SetEdgeChannel(2, dest_id, channels.relay_to_destination);
  session.TransmitInitial(0, body);
  const auto stats = session.Run(32);
  ASSERT_TRUE(stats.totals.success);
  EXPECT_EQ(static_cast<DestinationParticipant&>(session.party(dest_id))
                .AssembledPayload(),
            payload);
}

// --------------------------------------------------------------- N-relay

// The N=1 anchor of the generalized stack: the refactored wire/session
// must reproduce the pre-generalization kRelayCodedRepair exchange
// bit-for-bit on the repair path. These constants were captured from
// the fixed-two-count implementation (PR 2/3 era) on the identical
// channel construction; only the feedback wire is allowed to differ
// (it now carries an explicit party count, 56 bits per round instead
// of 48).
TEST(MultiRelaySessionTest, SingleRelayReproducesLegacyCrelayRepairPath) {
  struct Pinned {
    std::uint64_t seed;
    std::size_t rounds, data_transmissions, forward_bits;
    std::size_t source_repair_bits, relay_repair_bits;
  };
  const Pinned pinned[] = {
      {901, 1, 3, 2509, 640, 557},
      {902, 2, 4, 4813, 2656, 845},
      {903, 1, 3, 2797, 832, 653},
  };
  const phy::ChipCodebook cb;
  for (const auto& pin : pinned) {
    Rng prng(pin.seed);
    const BitVec payload = RandomPayload(prng, 160);
    PpArqConfig config;
    config.recovery = RecoveryMode::kRelayCodedRepair;
    Rng direct(pin.seed ^ 0xA), overhear(pin.seed ^ 0xB),
        relay_hop(pin.seed ^ 0xC);
    const auto channels =
        MakeGeChannels(cb, DegradedParams(), StrongParams(), StrongParams(),
                       direct, overhear, relay_hop);
    const auto stats = RunRelayRecoveryExchange(
        payload, config, *MakeRecoveryStrategy(config), channels);
    ASSERT_TRUE(stats.totals.success) << "seed=" << pin.seed;
    EXPECT_EQ(stats.rounds, pin.rounds) << "seed=" << pin.seed;
    EXPECT_EQ(stats.totals.data_transmissions, pin.data_transmissions)
        << "seed=" << pin.seed;
    EXPECT_EQ(stats.totals.forward_bits, pin.forward_bits)
        << "seed=" << pin.seed;
    EXPECT_EQ(stats.parties[kSessionSourceId].repair_bits,
              pin.source_repair_bits)
        << "seed=" << pin.seed;
    EXPECT_EQ(stats.parties[kSessionRelayId].repair_bits,
              pin.relay_repair_bits)
        << "seed=" << pin.seed;
    EXPECT_EQ(stats.totals.feedback_bits, stats.rounds * 56u)
        << "seed=" << pin.seed;
  }
}

MultiRelayExchangeChannels MakeDenseChannels(const BodyChannel& direct,
                                             std::size_t num_relays) {
  MultiRelayExchangeChannels channels;
  channels.source_to_destination = direct;
  for (std::size_t i = 0; i < num_relays; ++i) {
    channels.source_to_relay.push_back(PerfectChannel());
    channels.relay_to_destination.push_back(PerfectChannel());
  }
  return channels;
}

TEST(MultiRelaySessionTest, TwoRelaySessionDeliversExactPayload) {
  const phy::ChipCodebook cb;
  Rng prng(661);
  const BitVec payload = RandomPayload(prng, 150);
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  config.relay_parties = 2;
  MultiRelayExchangeChannels channels;
  // Channels hold a pointer to their Rng, so every stream outlives the
  // session.
  Rng direct(662), overhear_a(663), hop_a(663 ^ 0xFF), overhear_b(664),
      hop_b(664 ^ 0xFF);
  channels.source_to_destination =
      MakeGilbertElliottChannel(cb, DegradedParams(), direct);
  channels.source_to_relay = {
      MakeGilbertElliottChannel(cb, StrongParams(), overhear_a),
      MakeGilbertElliottChannel(cb, StrongParams(), overhear_b)};
  channels.relay_to_destination = {
      MakeGilbertElliottChannel(cb, StrongParams(), hop_a),
      MakeGilbertElliottChannel(cb, StrongParams(), hop_b)};
  const BitVec body = PpArqSender::MakeBody(payload);
  const auto strategy = MakeRecoveryStrategy(config);
  RecoverySession session;
  session.AddParty(strategy->MakeSourceParticipant(body, 1));
  const PartyId dest_id = session.AddParty(
      strategy->MakeDestinationParticipant(1, body.size() / 4));
  for (std::uint8_t r = 1; r <= 2; ++r) {
    const PartyId id = session.AddParty(
        strategy->MakeRelayParticipant(r, 1, body.size() / 4));
    session.SetEdgeChannel(0, id, channels.source_to_relay[r - 1]);
    session.SetEdgeChannel(id, dest_id,
                           channels.relay_to_destination[r - 1]);
  }
  session.SetEdgeChannel(0, dest_id, channels.source_to_destination);
  session.TransmitInitial(0, body);
  const auto stats = session.Run(32);
  ASSERT_TRUE(stats.totals.success);
  EXPECT_EQ(static_cast<DestinationParticipant&>(session.party(dest_id))
                .AssembledPayload(),
            payload);
  EXPECT_GT(stats.parties[kSessionRelayId].repair_bits +
                stats.parties[kSessionRelayId + 1].repair_bits,
            0u);
}

// The acceptance scenario for airtime scheduling: a dense (4
// overhearer) set behind a dead direct link. Unbudgeted, every relay
// streams each round; with a budget, per-round relay bits are capped
// and the worst-ranked relays defer — yet the session still completes
// (the relays' equations carry the packet).
TEST(MultiRelaySessionTest, AirtimeBudgetCapsPerRoundRelayBits) {
  constexpr std::size_t kBudgetBits = 2000;
  const auto run = [](std::size_t budget_bits) {
    Rng prng(671);
    const BitVec payload = RandomPayload(prng, 160);
    PpArqConfig config;
    config.recovery = RecoveryMode::kRelayCodedRepair;
    config.relay_parties = 4;
    config.relay_airtime_budget_bits = budget_bits;
    const auto channels = MakeDenseChannels(DeadChannel(), 4);
    return RunMultiRelayRecoveryExchange(
        payload, config, *MakeRecoveryStrategy(config), channels);
  };
  const auto unbudgeted = run(0);
  const auto budgeted = run(kBudgetBits);
  ASSERT_TRUE(unbudgeted.totals.success);
  ASSERT_TRUE(budgeted.totals.success);
  // The dense set genuinely contends: left alone it exceeds the budget
  // in at least one round; scheduled, it never does.
  EXPECT_GT(unbudgeted.max_round_relay_bits, kBudgetBits);
  EXPECT_LE(budgeted.max_round_relay_bits, kBudgetBits);
  EXPECT_GT(budgeted.max_round_relay_bits, 0u);
  EXPECT_EQ(unbudgeted.relay_deferrals, 0u);
  EXPECT_GT(budgeted.relay_deferrals, 0u);
}

// Satellite: a golden two-relay session transcript, pinned as a CRC
// constant and replayed under every available GF(256) backend. Catches
// both cross-backend divergence and cross-version drift (wire layout,
// allocator, seed partitioning, scheduling order) in one number.
TEST(MultiRelaySessionTest, GoldenTwoRelayTranscriptIsBackendInvariant) {
  constexpr std::uint32_t kGoldenTranscriptCrc = 0x074B461A;
  const auto run = [] {
    const phy::ChipCodebook cb;
    Rng prng(691);
    const BitVec payload = RandomPayload(prng, 180);
    PpArqConfig config;
    config.recovery = RecoveryMode::kRelayCodedRepair;
    config.relay_parties = 2;
    MultiRelayExchangeChannels channels;
    Rng direct(692), overhear_a(693), hop_a(694), overhear_b(695), hop_b(696);
    channels.source_to_destination =
        MakeGilbertElliottChannel(cb, DegradedParams(), direct);
    channels.source_to_relay = {
        MakeGilbertElliottChannel(cb, StrongParams(), overhear_a),
        MakeGilbertElliottChannel(cb, StrongParams(), overhear_b)};
    channels.relay_to_destination = {
        MakeGilbertElliottChannel(cb, StrongParams(), hop_a),
        MakeGilbertElliottChannel(cb, StrongParams(), hop_b)};
    const auto stats = RunMultiRelayRecoveryExchange(
        payload, config, *MakeRecoveryStrategy(config), channels);
    EXPECT_TRUE(stats.totals.success);
    // Serialize the observable transcript: totals, the per-party
    // breakdown, and the repair-message sizes in transmission order.
    BitVec transcript;
    transcript.AppendUint(stats.rounds, 16);
    transcript.AppendUint(stats.totals.data_transmissions, 16);
    transcript.AppendUint(stats.totals.forward_bits, 32);
    transcript.AppendUint(stats.totals.feedback_bits, 32);
    for (const auto& party : stats.parties) {
      transcript.AppendUint(party.repair_bits, 32);
      transcript.AppendUint(party.repair_messages, 16);
      transcript.AppendUint(party.feedback_bits, 32);
    }
    for (const auto bits : stats.totals.retransmission_bits) {
      transcript.AppendUint(bits, 32);
    }
    return Crc32Bits(transcript);
  };
  const std::uint32_t reference = [&] {
    fec::GfImplScope scope(fec::GfImpl::kScalar);
    return run();
  }();
  EXPECT_EQ(reference, kGoldenTranscriptCrc);
  for (const fec::GfImpl impl : fec::GfAvailableImpls()) {
    fec::GfImplScope scope(impl);
    ASSERT_TRUE(scope.ok());
    EXPECT_EQ(run(), kGoldenTranscriptCrc) << fec::GfImplName(impl);
  }
}

// ExOR ordering: under a tight budget the relay with the better
// overheard copy is served first; the poor-copy relay's turn comes
// when nothing affordable remains, so it stays off the air entirely.
// The broadcast rewiring pin: delivering the initial transmission
// through one BroadcastBodyChannel that wraps the same per-edge
// channels must reproduce the per-edge session exactly — same draws,
// same accounting — so MultiRelayExchangeChannels::initial_broadcast
// only changes WHERE the receptions come from, never the protocol.
TEST(MultiRelaySessionTest, InitialBroadcastMatchesPerEdgeDelivery) {
  const phy::ChipCodebook cb;
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  config.relay_parties = 2;
  const auto strategy = MakeRecoveryStrategy(config);

  const auto run = [&](bool broadcast) {
    Rng prng(671);
    const BitVec payload = RandomPayload(prng, 150);
    // Channels hold a pointer to their Rng, so every stream outlives
    // the session.
    Rng direct(672), overhear_a(673), hop_a(673 ^ 0xFF), overhear_b(674),
        hop_b(674 ^ 0xFF);
    MultiRelayExchangeChannels channels;
    channels.source_to_destination =
        MakeGilbertElliottChannel(cb, DegradedParams(), direct);
    const auto to_relay_a =
        MakeGilbertElliottChannel(cb, StrongParams(), overhear_a);
    const auto to_relay_b =
        MakeGilbertElliottChannel(cb, StrongParams(), overhear_b);
    channels.relay_to_destination = {
        MakeGilbertElliottChannel(cb, StrongParams(), hop_a),
        MakeGilbertElliottChannel(cb, StrongParams(), hop_b)};
    if (broadcast) {
      const auto to_destination = channels.source_to_destination;
      channels.initial_broadcast =
          [to_destination, to_relay_a, to_relay_b](const BitVec& bits) {
            std::vector<std::vector<phy::DecodedSymbol>> out;
            out.push_back(to_destination(bits));
            out.push_back(to_relay_a(bits));
            out.push_back(to_relay_b(bits));
            return out;
          };
    } else {
      channels.source_to_relay = {to_relay_a, to_relay_b};
    }
    return RunMultiRelayRecoveryExchange(payload, config, *strategy,
                                         channels);
  };

  const auto edges = run(false);
  const auto broadcast = run(true);
  EXPECT_EQ(edges.totals.success, broadcast.totals.success);
  EXPECT_EQ(edges.totals.forward_bits, broadcast.totals.forward_bits);
  EXPECT_EQ(edges.totals.feedback_bits, broadcast.totals.feedback_bits);
  EXPECT_EQ(edges.totals.retransmission_bits,
            broadcast.totals.retransmission_bits);
  EXPECT_EQ(edges.rounds, broadcast.rounds);
  ASSERT_EQ(edges.parties.size(), broadcast.parties.size());
  for (std::size_t i = 0; i < edges.parties.size(); ++i) {
    EXPECT_EQ(edges.parties[i].repair_bits, broadcast.parties[i].repair_bits);
    EXPECT_EQ(edges.parties[i].repair_messages,
              broadcast.parties[i].repair_messages);
    EXPECT_EQ(edges.parties[i].feedback_bits,
              broadcast.parties[i].feedback_bits);
  }
}

TEST(MultiRelaySessionTest, BudgetServesBetterRankedRelayFirst) {
  Rng prng(681);
  const BitVec payload = RandomPayload(prng, 160);
  PpArqConfig config;
  config.recovery = RecoveryMode::kRelayCodedRepair;
  config.relay_parties = 2;
  config.relay_airtime_budget_bits = 800;
  MultiRelayExchangeChannels channels;
  channels.source_to_destination = DeadChannel();
  // Relay 1 (lower party id): half its copy is honestly erased — a
  // poor overhearer. Relay 2: perfect copy, the better rank.
  channels.source_to_relay.push_back([](const BitVec& bits) {
    auto symbols = PerfectChannel()(bits);
    for (std::size_t i = 0; i < symbols.size() / 2; ++i) {
      symbols[i].hint = std::numeric_limits<double>::infinity();
    }
    return symbols;
  });
  channels.source_to_relay.push_back(PerfectChannel());
  channels.relay_to_destination.push_back(PerfectChannel());
  channels.relay_to_destination.push_back(PerfectChannel());
  const auto stats = RunMultiRelayRecoveryExchange(
      payload, config, *MakeRecoveryStrategy(config), channels);
  ASSERT_TRUE(stats.totals.success);
  EXPECT_GT(stats.parties[kSessionRelayId + 1].repair_bits, 0u);
  EXPECT_EQ(stats.parties[kSessionRelayId].repair_bits, 0u);
  EXPECT_GT(stats.relay_deferrals, 0u);
}

}  // namespace
}  // namespace ppr::arq
