#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr {
namespace {

TEST(CdfCollectorTest, BasicSummaries) {
  CdfCollector cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) cdf.Add(x);
  EXPECT_EQ(cdf.Count(), 5u);
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.Median(), 3.0);
}

TEST(CdfCollectorTest, QuantileNearestRank) {
  CdfCollector cdf;
  for (int i = 1; i <= 100; ++i) cdf.Add(i);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.9), 90.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
}

TEST(CdfCollectorTest, FractionAtOrBelow) {
  CdfCollector cdf;
  for (double x : {1.0, 2.0, 2.0, 3.0}) cdf.Add(x);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAbove(2.0), 0.25);
}

TEST(CdfCollectorTest, InterleavedAddAndQuery) {
  CdfCollector cdf;
  cdf.Add(1.0);
  EXPECT_DOUBLE_EQ(cdf.Median(), 1.0);
  cdf.Add(3.0);
  cdf.Add(2.0);
  EXPECT_DOUBLE_EQ(cdf.Median(), 2.0);
}

TEST(CdfCollectorTest, CdfPointsMonotone) {
  CdfCollector cdf;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) cdf.Add(rng.Normal());
  const auto points = cdf.CdfPoints(32);
  ASSERT_EQ(points.size(), 32u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(CdfCollectorTest, AddCountWeightsSamples) {
  CdfCollector cdf;
  cdf.AddCount(1.0, 3);
  cdf.Add(2.0);
  EXPECT_EQ(cdf.Count(), 4u);
  EXPECT_DOUBLE_EQ(cdf.Median(), 1.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_EQ(rs.Count(), 8u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 5.0);
  EXPECT_NEAR(rs.Variance(), 4.571428571, 1e-9);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats rs;
  rs.Add(42.0);
  EXPECT_DOUBLE_EQ(rs.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.StdDev(), 0.0);
}

TEST(RunningStatsTest, AgreesWithDirectComputation) {
  Rng rng(4);
  RunningStats rs;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    xs.push_back(x);
    rs.Add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(rs.Mean(), mean, 1e-9);
  EXPECT_NEAR(rs.Variance(), var, 1e-9);
}

TEST(IntHistogramTest, CdfAndCcdf) {
  IntHistogram h;
  h.Add(0, 50);
  h.Add(1, 30);
  h.Add(5, 20);
  EXPECT_EQ(h.Total(), 100u);
  EXPECT_DOUBLE_EQ(h.CdfAt(0), 0.5);
  EXPECT_DOUBLE_EQ(h.CdfAt(1), 0.8);
  EXPECT_DOUBLE_EQ(h.CdfAt(4), 0.8);
  EXPECT_DOUBLE_EQ(h.CdfAt(5), 1.0);
  EXPECT_DOUBLE_EQ(h.CcdfAbove(1), 0.2);
}

TEST(IntHistogramTest, CountAt) {
  IntHistogram h;
  h.Add(3);
  h.Add(3);
  EXPECT_EQ(h.CountAt(3), 2u);
  EXPECT_EQ(h.CountAt(4), 0u);
}

TEST(FormatCdfTest, EmitsLabelAndRows) {
  CdfCollector cdf;
  cdf.Add(1.0);
  cdf.Add(2.0);
  const std::string out = FormatCdf(cdf, 3, "test-series");
  EXPECT_NE(out.find("# test-series"), std::string::npos);
  EXPECT_NE(out.find('\t'), std::string::npos);
}

}  // namespace
}  // namespace ppr
