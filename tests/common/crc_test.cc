#include "common/crc.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace ppr {
namespace {

std::span<const std::uint8_t> AsBytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(Crc32Test, KnownVector123456789) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32(AsBytes("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32({}), 0x00000000u); }

TEST(Crc32Test, SingleByte) {
  EXPECT_EQ(Crc32(AsBytes("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Rng rng(77);
  std::vector<std::uint8_t> data(256);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  const std::uint32_t original = Crc32(data);
  for (int trial = 0; trial < 50; ++trial) {
    auto copy = data;
    const std::size_t byte = rng.UniformInt(copy.size());
    const int bit = static_cast<int>(rng.UniformInt(8));
    copy[byte] = static_cast<std::uint8_t>(copy[byte] ^ (1u << bit));
    EXPECT_NE(Crc32(copy), original);
  }
}

TEST(Crc32Test, DetectsAllBurstErrorsUpTo32Bits) {
  // CRC-32 guarantees detection of any burst no longer than the CRC.
  std::vector<std::uint8_t> data(64, 0x5A);
  const std::uint32_t original = Crc32(data);
  for (std::size_t start_bit = 0; start_bit < 64; ++start_bit) {
    for (std::size_t burst = 1; burst <= 32; ++burst) {
      auto copy = data;
      for (std::size_t b = start_bit; b < start_bit + burst; ++b) {
        copy[b / 8] = static_cast<std::uint8_t>(copy[b / 8] ^ (0x80u >> (b % 8)));
      }
      EXPECT_NE(Crc32(copy), original)
          << "undetected burst at bit " << start_bit << " len " << burst;
    }
  }
}

TEST(Crc16Test, KnownVector123456789) {
  // CRC-16/CCITT-FALSE check value.
  EXPECT_EQ(Crc16(AsBytes("123456789")), 0x29B1u);
}

TEST(Crc16Test, EmptyInputIsInitValue) { EXPECT_EQ(Crc16({}), 0xFFFFu); }

TEST(Crc16Test, DetectsSingleBitFlip) {
  Rng rng(78);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  const std::uint16_t original = Crc16(data);
  for (int trial = 0; trial < 50; ++trial) {
    auto copy = data;
    const std::size_t byte = rng.UniformInt(copy.size());
    const int bit = static_cast<int>(rng.UniformInt(8));
    copy[byte] = static_cast<std::uint8_t>(copy[byte] ^ (1u << bit));
    EXPECT_NE(Crc16(copy), original);
  }
}

TEST(CrcBitsTest, MatchesByteCrcForWholeOctets) {
  const std::uint8_t bytes[] = {0x12, 0x34, 0x56};
  const BitVec bits = BitVec::FromBytes(bytes);
  EXPECT_EQ(Crc32Bits(bits), Crc32(bytes));
  EXPECT_EQ(Crc16Bits(bits), Crc16(bytes));
}

TEST(CrcBitsTest, DistinguishesDifferentBitStrings) {
  const BitVec a = BitVec::FromString("10110");
  const BitVec b = BitVec::FromString("10111");
  EXPECT_NE(Crc32Bits(a), Crc32Bits(b));
}

}  // namespace
}  // namespace ppr
