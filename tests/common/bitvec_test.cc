#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ppr {
namespace {

TEST(BitVecTest, DefaultIsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVecTest, SizedConstructorInitializesAllBits) {
  BitVec zeros(100, false);
  EXPECT_EQ(zeros.size(), 100u);
  EXPECT_EQ(zeros.PopCount(), 0u);

  BitVec ones(100, true);
  EXPECT_EQ(ones.PopCount(), 100u);
}

TEST(BitVecTest, PushBackAndGet) {
  BitVec v;
  v.PushBack(true);
  v.PushBack(false);
  v.PushBack(true);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.Get(0));
  EXPECT_FALSE(v.Get(1));
  EXPECT_TRUE(v.Get(2));
}

TEST(BitVecTest, SetAndFlip) {
  BitVec v(8, false);
  v.Set(3, true);
  EXPECT_TRUE(v.Get(3));
  v.Flip(3);
  EXPECT_FALSE(v.Get(3));
  v.Flip(0);
  EXPECT_TRUE(v.Get(0));
}

TEST(BitVecTest, FromStringRoundTrip) {
  const std::string s = "1101100111000011";
  const BitVec v = BitVec::FromString(s);
  EXPECT_EQ(v.ToString(), s);
}

TEST(BitVecTest, FromStringRejectsBadCharacters) {
  EXPECT_THROW(BitVec::FromString("10x1"), std::invalid_argument);
}

TEST(BitVecTest, FromBytesIsMsbFirst) {
  const std::uint8_t bytes[] = {0xA5};  // 10100101
  const BitVec v = BitVec::FromBytes(bytes);
  EXPECT_EQ(v.ToString(), "10100101");
}

TEST(BitVecTest, ToBytesRoundTrip) {
  const std::uint8_t bytes[] = {0xDE, 0xAD, 0xBE, 0xEF};
  const BitVec v = BitVec::FromBytes(bytes);
  const auto out = v.ToBytes();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0xDE);
  EXPECT_EQ(out[1], 0xAD);
  EXPECT_EQ(out[2], 0xBE);
  EXPECT_EQ(out[3], 0xEF);
}

TEST(BitVecTest, ToBytesPadsFinalByteWithZeros) {
  BitVec v = BitVec::FromString("111");
  const auto out = v.ToBytes();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0xE0);
}

TEST(BitVecTest, AppendUintMsbFirst) {
  BitVec v;
  v.AppendUint(0b1011, 4);
  EXPECT_EQ(v.ToString(), "1011");
  v.AppendUint(0x3, 4);
  EXPECT_EQ(v.ToString(), "10110011");
}

TEST(BitVecTest, ReadUintInverseOfAppendUint) {
  BitVec v;
  v.AppendUint(0xCAFE, 16);
  v.AppendUint(0x7, 3);
  EXPECT_EQ(v.ReadUint(0, 16), 0xCAFEu);
  EXPECT_EQ(v.ReadUint(16, 3), 0x7u);
}

TEST(BitVecTest, ReadUint64BitBoundary) {
  BitVec v;
  v.AppendUint(0xFEDCBA9876543210ull, 64);
  v.AppendUint(0xA, 4);
  EXPECT_EQ(v.ReadUint(0, 64), 0xFEDCBA9876543210ull);
  EXPECT_EQ(v.ReadUint(64, 4), 0xAu);
  // Unaligned read crossing the word boundary.
  EXPECT_EQ(v.ReadUint(60, 8), 0x0Au);
}

TEST(BitVecTest, SliceExtractsRange) {
  const BitVec v = BitVec::FromString("0011010111");
  const BitVec s = v.Slice(2, 5);
  EXPECT_EQ(s.ToString(), "11010");
}

TEST(BitVecTest, SliceEmptyAndFull) {
  const BitVec v = BitVec::FromString("1010");
  EXPECT_EQ(v.Slice(0, 0).size(), 0u);
  EXPECT_EQ(v.Slice(0, 4), v);
}

TEST(BitVecTest, AppendBitsConcatenates) {
  BitVec a = BitVec::FromString("101");
  const BitVec b = BitVec::FromString("0110");
  a.AppendBits(b);
  EXPECT_EQ(a.ToString(), "1010110");
}

TEST(BitVecTest, HammingDistanceCountsDifferences) {
  const BitVec a = BitVec::FromString("10101010");
  const BitVec b = BitVec::FromString("10011010");
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

TEST(BitVecTest, HammingDistanceRequiresEqualSizes) {
  const BitVec a = BitVec::FromString("101");
  const BitVec b = BitVec::FromString("10");
  EXPECT_THROW(a.HammingDistance(b), std::invalid_argument);
}

TEST(BitVecTest, EqualityComparesContentAndSize) {
  EXPECT_EQ(BitVec::FromString("101"), BitVec::FromString("101"));
  EXPECT_FALSE(BitVec::FromString("101") == BitVec::FromString("1010"));
  EXPECT_FALSE(BitVec::FromString("101") == BitVec::FromString("100"));
}

TEST(BitVecTest, ClearResets) {
  BitVec v = BitVec::FromString("1111");
  v.Clear();
  EXPECT_TRUE(v.empty());
}

TEST(BitVecTest, RandomRoundTripThroughBytes) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 8 * (1 + rng.UniformInt(64));
    BitVec v;
    for (std::size_t i = 0; i < n; ++i) v.PushBack(rng.Bernoulli(0.5));
    const auto bytes = v.ToBytes();
    const BitVec back = BitVec::FromBytes(bytes);
    EXPECT_EQ(v, back);
  }
}

// Property sweep: popcount + hamming identities on random vectors.
class BitVecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitVecPropertyTest, HammingDistanceEqualsXorPopcount) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.UniformInt(300);
  BitVec a, b;
  for (std::size_t i = 0; i < n; ++i) {
    a.PushBack(rng.Bernoulli(0.5));
    b.PushBack(rng.Bernoulli(0.5));
  }
  std::size_t manual = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a.Get(i) != b.Get(i)) ++manual;
  }
  EXPECT_EQ(a.HammingDistance(b), manual);
  EXPECT_EQ(b.HammingDistance(a), manual);  // symmetric
}

TEST_P(BitVecPropertyTest, SliceThenAppendReconstructs) {
  Rng rng(GetParam() ^ 0xBEEF);
  const std::size_t n = 2 + rng.UniformInt(200);
  BitVec v;
  for (std::size_t i = 0; i < n; ++i) v.PushBack(rng.Bernoulli(0.5));
  const std::size_t cut = 1 + rng.UniformInt(n - 1);
  BitVec left = v.Slice(0, cut);
  const BitVec right = v.Slice(cut, n - cut);
  left.AppendBits(right);
  EXPECT_EQ(left, v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace ppr
