#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ppr {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformDoubleMeanIsHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(10);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.UniformInt(8)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // each bucket near 1000
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatchStandardNormal) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScalesAndShifts) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(16);
  Rng child = parent.Fork();
  // The child stream must not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(17);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace ppr
