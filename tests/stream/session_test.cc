#include "stream/session.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "common/bitvec.h"

namespace ppr::stream {
namespace {

// Lossless transport: every nibble decodes verbatim.
arq::BodyChannel CleanChannel() {
  return [](const BitVec& bits) {
    std::vector<phy::DecodedSymbol> symbols;
    for (std::size_t i = 0; i + 4 <= bits.size(); i += 4) {
      phy::DecodedSymbol s;
      s.symbol = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      symbols.push_back(s);
    }
    return symbols;
  };
}

// Deterministically erases every `period`-th frame (1-indexed) by
// corrupting its codewords so the CRC rejects it.
arq::BodyChannel PeriodicErasureChannel(std::size_t period) {
  auto counter = std::make_shared<std::size_t>(0);
  return [counter, period](const BitVec& bits) {
    const bool erase = ++*counter % period == 0;
    std::vector<phy::DecodedSymbol> symbols;
    for (std::size_t i = 0; i + 4 <= bits.size(); i += 4) {
      phy::DecodedSymbol s;
      s.symbol = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      if (erase) s.symbol ^= 0xF;
      symbols.push_back(s);
    }
    return symbols;
  };
}

StreamSessionConfig SmallConfig() {
  StreamSessionConfig config;
  config.window_capacity = 16;
  config.symbol_bytes = 16;
  config.total_packets = 120;
  return config;
}

TEST(StreamSessionTest, CleanChannelDeliversEverythingWithoutRepair) {
  const auto config = SmallConfig();
  const auto controller = MakeAckDeficitController();
  const auto stats = RunStreamSession(config, *controller, CleanChannel());
  EXPECT_EQ(stats.delivered, config.total_packets);
  EXPECT_EQ(stats.undelivered, 0u);
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(stats.payload_mismatches, 0u);
  // No loss reported, so the reactive controller never spends a repair
  // bit.
  EXPECT_EQ(stats.repair_sent, 0u);
  EXPECT_EQ(stats.latency_us.count, config.total_packets);
}

TEST(StreamSessionTest, LossyChannelRecoversEverything) {
  const auto config = SmallConfig();
  for (const auto make : {&MakeAckDeficitController}) {
    const auto controller = (*make)({});
    const auto stats =
        RunStreamSession(config, *controller, PeriodicErasureChannel(5));
    EXPECT_EQ(stats.delivered, config.total_packets);
    EXPECT_EQ(stats.undelivered, 0u);
    EXPECT_GT(stats.recovered, 0u);
    EXPECT_GT(stats.repair_sent, 0u);
    EXPECT_EQ(stats.payload_mismatches, 0u);
    EXPECT_GT(stats.source_frames_lost + stats.repair_frames_lost, 0u);
  }
}

TEST(StreamSessionTest, DeadlineControllerAlsoCompletesLossyFlow) {
  const auto config = SmallConfig();
  const auto controller = MakeDeadlineController();
  const auto stats =
      RunStreamSession(config, *controller, PeriodicErasureChannel(4));
  EXPECT_EQ(stats.delivered, config.total_packets);
  EXPECT_EQ(stats.payload_mismatches, 0u);
  EXPECT_GT(stats.recovered, 0u);
}

TEST(StreamSessionTest, DeterministicAcrossRuns) {
  const auto config = SmallConfig();
  const auto run = [&] {
    const auto controller = MakeDeadlineController();
    return RunStreamSession(config, *controller, PeriodicErasureChannel(4));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.repair_sent, b.repair_sent);
  EXPECT_EQ(a.source_bits, b.source_bits);
  EXPECT_EQ(a.repair_bits, b.repair_bits);
  EXPECT_EQ(a.finished_at_us, b.finished_at_us);
  EXPECT_EQ(a.latency_us, b.latency_us);
  EXPECT_EQ(a.recovered_latency_us, b.recovered_latency_us);
}

TEST(StreamSessionTest, RecoveredPacketsPayMoreLatency) {
  const auto config = SmallConfig();
  const auto controller = MakeAckDeficitController();
  const auto stats =
      RunStreamSession(config, *controller, PeriodicErasureChannel(5));
  ASSERT_GT(stats.recovered_latency_us.count, 0u);
  // A recovered packet waited for at least one feedback round; a clean
  // one only pays airtime + propagation.
  EXPECT_GT(stats.recovered_latency_us.ValueAtQuantile(0.5),
            stats.latency_us.ValueAtQuantile(0.1));
}

TEST(StreamSessionTest, BackpressureEngagesWhenWindowOutrunsAcks) {
  StreamSessionConfig config = SmallConfig();
  config.window_capacity = 4;
  config.packet_interval_us = 200;       // source much faster than feedback
  config.feedback_interval_us = 20'000;
  const auto controller = MakeAckDeficitController();
  const auto stats = RunStreamSession(config, *controller, CleanChannel());
  EXPECT_GT(stats.backpressure_stalls, 0u);
  EXPECT_EQ(stats.delivered, config.total_packets);
  EXPECT_EQ(stats.payload_mismatches, 0u);
}

StreamSessionConfig RsConfig() {
  StreamSessionConfig config = SmallConfig();
  config.codec = fec::CodecKind::kReedSolomon;
  config.rs_generation = 8;
  config.rs_parity = 4;
  return config;
}

TEST(StreamSessionTest, ReedSolomonCleanChannelSendsNoParity) {
  const auto config = RsConfig();
  const auto controller = MakeAckDeficitController();
  const auto stats = RunStreamSession(config, *controller, CleanChannel());
  EXPECT_EQ(stats.delivered, config.total_packets);
  EXPECT_EQ(stats.recovered, 0u);
  EXPECT_EQ(stats.repair_sent, 0u);
  EXPECT_EQ(stats.payload_mismatches, 0u);
}

TEST(StreamSessionTest, ReedSolomonGenerationsRecoverLossyStream) {
  const auto config = RsConfig();
  const auto controller = MakeAckDeficitController();
  const auto stats =
      RunStreamSession(config, *controller, PeriodicErasureChannel(5));
  EXPECT_EQ(stats.delivered, config.total_packets);
  EXPECT_EQ(stats.undelivered, 0u);
  EXPECT_GT(stats.recovered, 0u);
  EXPECT_GT(stats.repair_sent, 0u);
  EXPECT_EQ(stats.payload_mismatches, 0u);
}

TEST(StreamSessionTest, ReedSolomonIsDeterministicAcrossRuns) {
  const auto config = RsConfig();
  const auto run = [&] {
    const auto controller = MakeAckDeficitController();
    return RunStreamSession(config, *controller, PeriodicErasureChannel(4));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.repair_sent, b.repair_sent);
  EXPECT_EQ(a.repair_bits, b.repair_bits);
  EXPECT_EQ(a.finished_at_us, b.finished_at_us);
  EXPECT_EQ(a.latency_us, b.latency_us);
}

TEST(StreamSessionTest, ReedSolomonRejectsBadShapes) {
  const auto controller = MakeAckDeficitController();
  {
    auto config = RsConfig();
    config.symbol_bytes = 15;  // odd: GF(2^16) symbols are 2-byte words
    EXPECT_THROW(RunStreamSession(config, *controller, CleanChannel()),
                 std::invalid_argument);
  }
  {
    auto config = RsConfig();
    config.rs_generation = config.window_capacity + 1;
    EXPECT_THROW(RunStreamSession(config, *controller, CleanChannel()),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace ppr::stream
