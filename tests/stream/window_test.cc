#include "stream/window.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace ppr::stream {
namespace {

constexpr std::size_t kBytes = 8;

std::vector<std::uint8_t> Payload(Rng& rng) {
  std::vector<std::uint8_t> data(kBytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return data;
}

// Pushes `n` random symbols and returns their payloads by id.
std::vector<std::vector<std::uint8_t>> PushN(WindowEncoder& enc, Rng& rng,
                                             std::size_t n) {
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::size_t i = 0; i < n; ++i) {
    auto data = Payload(rng);
    const auto id = enc.Push(data);
    EXPECT_TRUE(id.has_value());
    sent.push_back(std::move(data));
  }
  return sent;
}

TEST(WindowEncoderTest, PushAssignsSequentialIdsAndBackpressures) {
  WindowEncoder enc(4, kBytes);
  Rng rng(1);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto id = enc.Push(Payload(rng));
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, i);
  }
  EXPECT_TRUE(enc.Full());
  // Window-full backpressure: the fifth push is refused, not queued.
  EXPECT_FALSE(enc.Push(Payload(rng)).has_value());
  EXPECT_EQ(enc.in_flight(), 4u);

  // A cumulative ack reopens exactly that much room.
  EXPECT_EQ(enc.Advance(2), 2u);
  EXPECT_FALSE(enc.Full());
  const auto id = enc.Push(Payload(rng));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 4u);
  // Stale and repeated acks are no-ops.
  EXPECT_EQ(enc.Advance(2), 0u);
  EXPECT_EQ(enc.Advance(1), 0u);
}

TEST(WindowEncoderTest, RepairSpansUnackedWindow) {
  WindowEncoder enc(8, kBytes);
  Rng rng(2);
  PushN(enc, rng, 5);
  enc.Advance(2);
  const auto repair = enc.MakeRepair(77);
  EXPECT_EQ(repair.first_id, 2u);
  EXPECT_EQ(repair.span, 3u);
  EXPECT_EQ(repair.seed, 77u);
  EXPECT_EQ(repair.data.size(), kBytes);
}

TEST(WindowDecoderTest, InOrderSourceDeliversImmediately) {
  WindowEncoder enc(8, kBytes);
  WindowDecoder dec(8, kBytes);
  Rng rng(3);
  const auto sent = PushN(enc, rng, 6);
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_TRUE(dec.AddSource(i, sent[i]));
    const auto out = dec.PopDeliverable();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].id, i);
    EXPECT_EQ(out[0].data, sent[i]);
    EXPECT_FALSE(out[0].recovered);
  }
  EXPECT_EQ(dec.next_expected(), 6u);
  EXPECT_EQ(dec.Deficit(), 0u);
}

TEST(WindowDecoderTest, RepairRecoversALostSymbol) {
  WindowEncoder enc(8, kBytes);
  WindowDecoder dec(8, kBytes);
  Rng rng(4);
  const auto sent = PushN(enc, rng, 4);
  // Symbol 1 is lost; the rest arrive.
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_TRUE(dec.AddSource(i, sent[i]));
  }
  EXPECT_EQ(dec.PopDeliverable().size(), 1u);  // only id 0
  EXPECT_EQ(dec.Deficit(), 1u);

  EXPECT_TRUE(dec.AddRepair(enc.MakeRepair(9)));
  const auto out = dec.PopDeliverable();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[0].data, sent[1]);
  EXPECT_TRUE(out[0].recovered);
  EXPECT_FALSE(out[1].recovered);
  EXPECT_EQ(dec.Deficit(), 0u);
  EXPECT_EQ(dec.rank(), 0u);
}

TEST(WindowDecoderTest, RepairSpanningAdvancedPrefixStillCounts) {
  WindowEncoder enc(8, kBytes);
  WindowDecoder dec(8, kBytes);
  Rng rng(5);
  const auto sent = PushN(enc, rng, 5);
  // ids 0..3 delivered and popped — the window prefix advances past
  // them. id 4 is lost.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(dec.AddSource(i, sent[i]));
  }
  EXPECT_EQ(dec.PopDeliverable().size(), 4u);
  EXPECT_EQ(dec.next_expected(), 4u);

  // A late repair spanning [0, 5) arrives AFTER the advance. The
  // retired ring substitutes ids 0..3 and the equation still recovers
  // id 4.
  const auto repair = enc.MakeRepair(31);
  ASSERT_EQ(repair.first_id, 0u);
  ASSERT_EQ(repair.span, 5u);
  EXPECT_TRUE(dec.AddRepair(repair));
  const auto out = dec.PopDeliverable();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 4u);
  EXPECT_EQ(out[0].data, sent[4]);
  EXPECT_TRUE(out[0].recovered);
}

TEST(WindowDecoderTest, DuplicateRepairIsRejectedWithoutDamage) {
  WindowEncoder enc(8, kBytes);
  WindowDecoder dec(8, kBytes);
  Rng rng(6);
  const auto sent = PushN(enc, rng, 4);
  EXPECT_TRUE(dec.AddSource(0, sent[0]));
  const auto repair = enc.MakeRepair(12);

  // Two losses, one equation: it banks but cannot recover yet.
  EXPECT_TRUE(dec.AddRepair(repair));
  EXPECT_EQ(dec.rank(), 1u);
  // The same equation again is linearly dependent.
  EXPECT_FALSE(dec.AddRepair(repair));
  EXPECT_EQ(dec.rank(), 1u);

  // A second, independent equation finishes the job.
  EXPECT_TRUE(dec.AddRepair(enc.MakeRepair(13)));
  EXPECT_TRUE(dec.AddSource(1, sent[1]));  // also a duplicate-ish path: known?
  const auto out = dec.PopDeliverable();
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].data, sent[i]);
}

TEST(WindowDecoderTest, ReorderedRepairBeforeItsSourceSymbols) {
  WindowEncoder enc(8, kBytes);
  WindowDecoder dec(8, kBytes);
  Rng rng(7);
  const auto sent = PushN(enc, rng, 3);
  // The repair overtakes every source symbol (full reorder).
  EXPECT_TRUE(dec.AddRepair(enc.MakeRepair(21)));
  EXPECT_EQ(dec.rank(), 1u);
  EXPECT_TRUE(dec.PopDeliverable().empty());

  // Two of three source symbols arrive late; the banked equation then
  // pins down the third.
  EXPECT_TRUE(dec.AddSource(2, sent[2]));
  EXPECT_TRUE(dec.AddSource(0, sent[0]));
  const auto out = dec.PopDeliverable();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].id, 1u);
  EXPECT_EQ(out[1].data, sent[1]);
  EXPECT_TRUE(out[1].recovered);
  EXPECT_FALSE(out[0].recovered);
  EXPECT_FALSE(out[2].recovered);
}

TEST(WindowDecoderTest, DuplicateAndStaleSourceFramesAreCounted) {
  WindowEncoder enc(4, kBytes);
  WindowDecoder dec(4, kBytes);
  Rng rng(8);
  const auto sent = PushN(enc, rng, 2);
  EXPECT_TRUE(dec.AddSource(0, sent[0]));
  EXPECT_FALSE(dec.AddSource(0, sent[0]));  // duplicate while known
  EXPECT_EQ(dec.PopDeliverable().size(), 1u);
  EXPECT_FALSE(dec.AddSource(0, sent[0]));  // stale: already delivered
  EXPECT_EQ(dec.stale_dropped(), 1u);
  // Far beyond the window: dropped, not banked.
  EXPECT_FALSE(dec.AddSource(1 + dec.capacity(), sent[1]));
  EXPECT_EQ(dec.overflow_dropped(), 1u);
}

TEST(WindowDecoderTest, SourceArrivingForAPivotColumnRebanksTheRow) {
  WindowEncoder enc(8, kBytes);
  WindowDecoder dec(8, kBytes);
  Rng rng(9);
  const auto sent = PushN(enc, rng, 3);
  // Two equations over three unknowns: rank 2, nothing recoverable.
  EXPECT_TRUE(dec.AddRepair(enc.MakeRepair(41)));
  EXPECT_TRUE(dec.AddRepair(enc.MakeRepair(42)));
  EXPECT_EQ(dec.rank(), 2u);
  // One symbol arrives verbatim — a column that is (very likely) a
  // pivot. Substituting it must leave two equations over the remaining
  // two unknowns, which now solve.
  EXPECT_TRUE(dec.AddSource(1, sent[1]));
  const auto out = dec.PopDeliverable();
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out[i].id, i);
    EXPECT_EQ(out[i].data, sent[i]);
  }
  EXPECT_TRUE(out[0].recovered);
  EXPECT_FALSE(out[1].recovered);
  EXPECT_TRUE(out[2].recovered);
}

TEST(WindowDecoderTest, LongStreamWithPeriodicLossStaysConsistent) {
  // A window's worth of churn many times over, so ring reuse, advance
  // shifting, and the retired ring all cycle repeatedly.
  constexpr std::size_t kCapacity = 8;
  WindowEncoder enc(kCapacity, kBytes);
  WindowDecoder dec(kCapacity, kBytes);
  Rng rng(10);
  std::vector<std::vector<std::uint8_t>> sent;
  std::size_t delivered = 0;
  std::uint32_t seed = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    if (enc.Full()) {
      // Recover the window with repairs until the ack catches up.
      while (dec.next_expected() < enc.next_id()) {
        dec.AddRepair(enc.MakeRepair(seed++));
        for (const auto& d : dec.PopDeliverable()) {
          EXPECT_EQ(d.data, sent[d.id]);
          ++delivered;
        }
      }
      enc.Advance(dec.next_expected());
    }
    auto data = Payload(rng);
    const auto id = enc.Push(data);
    ASSERT_TRUE(id.has_value());
    sent.push_back(std::move(data));
    // Every third symbol is lost.
    if (*id % 3 != 0) {
      EXPECT_TRUE(dec.AddSource(*id, sent[*id]));
      for (const auto& d : dec.PopDeliverable()) {
        EXPECT_EQ(d.data, sent[d.id]);
        ++delivered;
      }
    }
  }
  // Drain the tail.
  while (dec.next_expected() < enc.next_id()) {
    dec.AddRepair(enc.MakeRepair(seed++));
    for (const auto& d : dec.PopDeliverable()) {
      EXPECT_EQ(d.data, sent[d.id]);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 200u);
  EXPECT_EQ(dec.Deficit(), 0u);
}

}  // namespace
}  // namespace ppr::stream
