#include "stream/delivery_queue.h"

#include <gtest/gtest.h>

namespace ppr::stream {
namespace {

DeliverableSymbol Sym(SymbolId id, bool recovered) {
  DeliverableSymbol s;
  s.id = id;
  s.data = {static_cast<std::uint8_t>(id)};
  s.recovered = recovered;
  return s;
}

TEST(DeliveryQueueTest, StampsRecoveryLatencyPerPacket) {
  DeliveryQueue queue;
  queue.OnSourceSent(0, 1'000);
  queue.OnSourceSent(1, 2'000);
  ASSERT_TRUE(queue.SentAt(1).has_value());
  EXPECT_EQ(*queue.SentAt(1), 2'000u);

  EXPECT_EQ(queue.Release({Sym(0, false)}, 1'500), 1u);
  EXPECT_EQ(queue.Release({Sym(1, true)}, 9'000), 1u);
  ASSERT_EQ(queue.delivered().size(), 2u);
  EXPECT_EQ(queue.delivered()[0].LatencyUs(), 500u);
  EXPECT_FALSE(queue.delivered()[0].recovered);
  EXPECT_EQ(queue.delivered()[1].LatencyUs(), 7'000u);
  EXPECT_TRUE(queue.delivered()[1].recovered);
  EXPECT_EQ(queue.total_released(), 2u);
  // The send record is consumed on release.
  EXPECT_FALSE(queue.SentAt(1).has_value());
}

TEST(DeliveryQueueTest, UnknownOriginGetsZeroLatencyNotUnderflow) {
  DeliveryQueue queue;
  EXPECT_EQ(queue.Release({Sym(7, true)}, 500), 1u);
  EXPECT_EQ(queue.delivered()[0].LatencyUs(), 0u);
}

TEST(DeliveryQueueTest, TakeDeliveredDrains) {
  DeliveryQueue queue;
  queue.OnSourceSent(0, 0);
  queue.Release({Sym(0, false)}, 10);
  const auto taken = queue.TakeDelivered();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(queue.delivered().empty());
  EXPECT_EQ(queue.total_released(), 1u);  // the running count survives
}

}  // namespace
}  // namespace ppr::stream
