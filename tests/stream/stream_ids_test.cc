#include "stream/stream_ids.h"

#include <gtest/gtest.h>

namespace ppr::stream {
namespace {

TEST(StreamIdsTest, TruncateKeepsLowBits) {
  EXPECT_EQ(TruncateSymbolId(0), 0u);
  EXPECT_EQ(TruncateSymbolId(0xABCD), 0xABCDu);
  EXPECT_EQ(TruncateSymbolId(kWireIdSpan + 7), 7u);
  EXPECT_EQ(TruncateSymbolId(0x123456789ABCull), 0x6789ABCull & 0xFFFF);
}

TEST(StreamIdsTest, ExpandRoundTripsNearReference) {
  for (const SymbolId id : {SymbolId{0}, SymbolId{1}, SymbolId{1000},
                            kWireIdSpan - 1, kWireIdSpan, kWireIdSpan + 123,
                            SymbolId{1} << 40}) {
    const auto expanded = ExpandSymbolId(TruncateSymbolId(id), id);
    ASSERT_TRUE(expanded.has_value());
    EXPECT_EQ(*expanded, id);
  }
}

TEST(StreamIdsTest, ExpandResolvesAcrossEraBoundary) {
  // Reference just below an era boundary, id just above it (and vice
  // versa): the closest candidate lives in the adjacent era.
  const SymbolId boundary = kWireIdSpan * 5;
  const auto ahead = ExpandSymbolId(TruncateSymbolId(boundary + 3),
                                    boundary - 10);
  ASSERT_TRUE(ahead.has_value());
  EXPECT_EQ(*ahead, boundary + 3);

  const auto behind = ExpandSymbolId(TruncateSymbolId(boundary - 4),
                                     boundary + 10);
  ASSERT_TRUE(behind.has_value());
  EXPECT_EQ(*behind, boundary - 4);
}

TEST(StreamIdsTest, WraparoundAtTheAmbiguousGapBoundary) {
  // Exactly at the gap: still accepted. One past: rejected, because a
  // frame that stale could as well belong to the other side of the
  // wire-id circle.
  const SymbolId reference = kWireIdSpan * 3;
  const SymbolId at_gap = reference + kMaxAmbiguousIdGap;
  const auto ok = ExpandSymbolId(TruncateSymbolId(at_gap), reference);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, at_gap);

  const SymbolId past_gap = reference + kMaxAmbiguousIdGap + 1;
  EXPECT_FALSE(ExpandSymbolId(TruncateSymbolId(past_gap), reference)
                   .has_value());

  const SymbolId behind_gap = reference - kMaxAmbiguousIdGap - 1;
  EXPECT_FALSE(ExpandSymbolId(TruncateSymbolId(behind_gap), reference)
                   .has_value());
}

TEST(StreamIdsTest, NeverResolvesToNegativeId) {
  // A wire id just "behind" reference 0 must not wrap to a huge value;
  // the only candidates are in era 0 or +1, and the gap guard rejects
  // the far ones.
  const auto expanded = ExpandSymbolId(0xFFFF, 0);
  EXPECT_FALSE(expanded.has_value());
}

}  // namespace
}  // namespace ppr::stream
