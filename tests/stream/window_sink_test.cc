// WindowDecoder's EquationSink surface (satellite of the flow engine
// PR): a dense frontier-anchored equation fed through
// ConsumeEquationSpan must behave exactly like the equivalent
// seed-expanded repair fed through AddRepair.
#include "stream/window.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fec/equation_sink.h"
#include "fec/rlnc.h"

namespace ppr::stream {
namespace {

std::vector<std::uint8_t> RandomSymbol(Rng& rng, std::size_t bytes) {
  std::vector<std::uint8_t> data(bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return data;
}

// Expands a StreamRepairSymbol into the dense window-anchored row
// ConsumeEquationSpan speaks: coefs[i] applies to next_expected() + i.
std::vector<std::uint8_t> DenseCoefs(const StreamRepairSymbol& repair,
                                     const WindowDecoder& dec) {
  std::vector<std::uint8_t> dense(dec.capacity(), 0);
  const auto expanded = fec::RepairCoefficients(repair.seed, repair.span);
  for (std::uint16_t j = 0; j < repair.span; ++j) {
    const SymbolId id = repair.first_id + j;
    EXPECT_GE(id, dec.next_expected());
    dense[static_cast<std::size_t>(id - dec.next_expected())] = expanded[j];
  }
  return dense;
}

TEST(WindowSinkTest, ConsumeEquationSpanMatchesAddRepair) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kBytes = 16;
  Rng rng(941);
  WindowEncoder enc(kCapacity, kBytes);
  WindowDecoder via_repair(kCapacity, kBytes);
  WindowDecoder via_sink(kCapacity, kBytes);

  std::vector<std::vector<std::uint8_t>> sent;
  for (std::size_t i = 0; i < 6; ++i) {
    sent.push_back(RandomSymbol(rng, kBytes));
    ASSERT_TRUE(enc.Push(sent.back()).has_value());
  }
  // Ids 1 and 3 are lost; the rest arrive on both decoders.
  for (const SymbolId id : {0u, 2u, 4u, 5u}) {
    EXPECT_TRUE(via_repair.AddSource(id, sent[id]));
    EXPECT_TRUE(via_sink.AddSource(id, sent[id]));
  }
  // Two repairs close the two-symbol deficit; each goes to one decoder
  // as a seeded repair and to the other as the dense equivalent.
  for (const std::uint32_t seed : {71u, 72u}) {
    const StreamRepairSymbol repair = enc.MakeRepair(seed);
    const auto dense = DenseCoefs(repair, via_sink);
    const bool a = via_repair.AddRepair(repair);
    const bool b = via_sink.ConsumeEquationSpan(dense, repair.data);
    EXPECT_EQ(a, b) << "seed=" << seed;
    EXPECT_EQ(via_repair.rank(), via_sink.rank());
    EXPECT_EQ(via_repair.Deficit(), via_sink.Deficit());
  }
  const auto out_a = via_repair.PopDeliverable();
  const auto out_b = via_sink.PopDeliverable();
  ASSERT_EQ(out_a.size(), 6u);
  ASSERT_EQ(out_b.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(out_a[i].data, sent[i]);
    EXPECT_EQ(out_b[i].data, sent[i]);
    EXPECT_EQ(out_a[i].recovered, out_b[i].recovered);
  }
}

TEST(WindowSinkTest, PolymorphicSinkRejectsUselessEquations) {
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kBytes = 8;
  Rng rng(947);
  WindowDecoder dec(kCapacity, kBytes);
  fec::EquationSink& sink = dec;
  EXPECT_EQ(sink.equation_width(), kCapacity);
  EXPECT_EQ(sink.equation_bytes(), kBytes);
  // An all-zero equation carries nothing.
  const std::vector<std::uint8_t> zero_coefs(kCapacity, 0);
  const std::vector<std::uint8_t> zero_data(kBytes, 0);
  EXPECT_FALSE(sink.ConsumeEquationSpan(zero_coefs, zero_data));
  // An equation over an already-known column adds no rank.
  const auto symbol = RandomSymbol(rng, kBytes);
  EXPECT_TRUE(dec.AddSource(0, symbol));
  std::vector<std::uint8_t> unit(kCapacity, 0);
  unit[0] = 1;
  EXPECT_FALSE(sink.ConsumeEquationSpan(unit, symbol));
  // A fresh unknown column through the sink DOES add rank.
  std::vector<std::uint8_t> unit1(kCapacity, 0);
  unit1[0] = 0;
  unit1[1] = 1;
  const auto other = RandomSymbol(rng, kBytes);
  EXPECT_TRUE(sink.ConsumeEquationSpan(unit1, other));
  const auto out = dec.PopDeliverable();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].data, symbol);
  EXPECT_EQ(out[1].data, other);
}

}  // namespace
}  // namespace ppr::stream
