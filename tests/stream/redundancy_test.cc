#include "stream/redundancy.h"

#include <gtest/gtest.h>

namespace ppr::stream {
namespace {

ControllerInputs BaseInputs() {
  ControllerInputs in;
  in.now_us = 1'000'000;
  in.in_flight = 8;
  return in;
}

TEST(FixedRateControllerTest, OneRepairEveryKSourceSymbols) {
  FixedRateConfig config;
  config.source_per_repair = 3;
  const auto controller = MakeFixedRateController(config);
  std::size_t total = 0;
  for (int i = 0; i < 9; ++i) {
    total +=
        controller->RepairBudget(ControllerEvent::kSourceSent, BaseInputs());
  }
  EXPECT_EQ(total, 3u);
  // Ignores feedback and ticks entirely.
  auto in = BaseInputs();
  in.reported_deficit = 5;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kFeedbackReceived, in),
            0u);
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
}

TEST(FixedRateControllerTest, IdleWindowSendsNothing) {
  const auto controller = MakeFixedRateController({.source_per_repair = 1});
  auto in = BaseInputs();
  in.in_flight = 0;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kSourceSent, in), 0u);
}

TEST(AckDeficitControllerTest, EmitsDeficitMinusInFlight) {
  const auto controller = MakeAckDeficitController();
  auto in = BaseInputs();
  in.reported_deficit = 4;
  in.repairs_in_flight = 1;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kFeedbackReceived, in),
            3u);
  // Fully covered by repair already in the air: nothing more.
  in.repairs_in_flight = 5;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kFeedbackReceived, in),
            0u);
  // Only reacts to feedback.
  in.repairs_in_flight = 0;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kSourceSent, in), 0u);
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
}

TEST(DeadlineControllerTest, ProactiveCreditTracksLossEstimate) {
  DeadlineConfig config;
  config.cover_factor = 1.0;
  config.min_loss_estimate = 0.0;
  const auto controller = MakeDeadlineController(config);
  auto in = BaseInputs();
  in.loss_estimate = 0.25;
  // credit per source symbol = 0.25 / 0.75 = 1/3: one repair every 3.
  std::size_t total = 0;
  for (int i = 0; i < 30; ++i) {
    total += controller->RepairBudget(ControllerEvent::kSourceSent, in);
  }
  EXPECT_EQ(total, 10u);
}

TEST(DeadlineControllerTest, ProtectBurstFiresNearDeadlineWithCooldown) {
  DeadlineConfig config;
  config.deadline_us = 40'000;
  config.protect_ratio = 0.5;
  config.protect_cooldown_us = 5'000;
  config.min_loss_estimate = 0.1;
  const auto controller = MakeDeadlineController(config);

  auto in = BaseInputs();
  in.reported_deficit = 1;  // the receiver is known to be missing something
  in.oldest_unacked_age_us = 10'000;  // under the 20ms protect threshold
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);

  in.oldest_unacked_age_us = 25'000;  // over it
  const std::size_t burst =
      controller->RepairBudget(ControllerEvent::kTick, in);
  EXPECT_GT(burst, 0u);

  // Within the cooldown the burst must not repeat ...
  in.now_us += 1'000;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
  // ... after it, it may.
  in.now_us += 10'000;
  EXPECT_GT(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
}

TEST(DeadlineControllerTest, ProtectNeedsReportedDeficit) {
  const auto controller = MakeDeadlineController();
  auto in = BaseInputs();
  in.oldest_unacked_age_us = 35'000;  // well past the protect threshold
  in.reported_deficit = 0;            // but no evidence of missing equations
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
  in.reported_deficit = 2;
  EXPECT_GT(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
}

TEST(DeadlineControllerTest, ProtectHoldsWhileRecentRepairInFlight) {
  const auto controller = MakeDeadlineController();
  auto in = BaseInputs();
  in.reported_deficit = 1;
  in.oldest_unacked_age_us = 35'000;
  in.repair_sent = 3;  // repair activity observed right now
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
  // Still quiet shortly after ...
  in.now_us += DeadlineConfig{}.protect_quiet_us / 2;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
  // ... but once that repair has had its chance, protect may fire.
  in.now_us += DeadlineConfig{}.protect_quiet_us;
  EXPECT_GT(controller->RepairBudget(ControllerEvent::kTick, in), 0u);
}

TEST(DeadlineControllerTest, HonorsExplicitFeedbackDeficit) {
  const auto controller = MakeDeadlineController();
  auto in = BaseInputs();
  in.reported_deficit = 3;
  in.repairs_in_flight = 1;
  EXPECT_EQ(controller->RepairBudget(ControllerEvent::kFeedbackReceived, in),
            2u);
}

TEST(ControllerFactoryTest, KindsRoundTripNames) {
  for (const auto kind :
       {ControllerKind::kFixedRate, ControllerKind::kAckDeficit,
        ControllerKind::kDeadline}) {
    const auto controller = MakeController(kind);
    EXPECT_EQ(controller->name(), ControllerKindName(kind));
  }
}

}  // namespace
}  // namespace ppr::stream
