// Correlated overhearing on the shared broadcast medium: one collided
// transmission, heard by the destination and two overhearing relays
// registered on the same ppr::core::WaveformMedium. The interferer is
// drawn ONCE for the transmission and projected through each
// listener's geometry, so the per-listener SoftPHY hint traces flare
// over the same codeword span — the regime where a relay's "clean
// copy" can no longer be taken for granted. An independent-draw medium
// over the same parameters shows the legacy model for contrast: each
// listener collides (or not) on its own.
//
//   $ ./examples/example_correlated_overhearing
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "ppr/medium.h"

int main() {
  using namespace ppr;

  core::PipelineConfig pipeline;
  pipeline.modem.samples_per_chip = 4;
  pipeline.max_payload_octets = 256;

  // One listener template: quiet channel (Ec/N0 12 dB) so the burst is
  // the only impairment; each listener hears the interferer at its own
  // relative power (its geometry).
  const auto listener = [&](std::uint64_t seed, double interferer_db) {
    core::WaveformListenerParams p;
    p.pipeline = pipeline;
    p.ec_n0_db = 12.0;
    p.seed = seed;
    p.interferer_relative_db = interferer_db;
    // The private climate the independent (legacy) mode draws from;
    // ignored under a shared interferer, whose climate is the medium's.
    p.collision_probability = 1.0;
    p.interferer_octets = 60;
    return p;
  };

  // A collision on every transmission, 60-octet bursts.
  core::SharedClimate climate;
  climate.collision_probability = 1.0;
  climate.interferer_octets = 60;

  Rng rng(7);
  BitVec body;
  for (int i = 0; i < 120 * 2; ++i) body.AppendUint(rng.UniformInt(16), 4);

  const auto trace = [&](arq::CollisionCorrelation correlation) {
    auto medium = core::WaveformMedium::Create(correlation, /*seed=*/99,
                                               climate);
    medium->AddListener(listener(1, 3.0));   // destination
    medium->AddListener(listener(2, 6.0));   // relay near the interferer
    medium->AddListener(listener(3, -9.0));  // relay farther away
    const auto receptions = medium->Transmit({body});

    for (const auto& r : receptions) {
      std::size_t wrong = 0, lo = r.symbols.size(), hi = 0;
      for (std::size_t k = 0; k < r.symbols.size(); ++k) {
        if (r.symbols[k].symbol != body.ReadUint(4 * k, 4)) {
          ++wrong;
          lo = std::min(lo, k);
          hi = std::max(hi, k);
        }
      }
      std::printf("  listener %zu: collided=%d  ", r.listener,
                  r.collided ? 1 : 0);
      if (wrong == 0) {
        std::printf("no corrupted codewords\n");
      } else {
        std::printf("%3zu corrupted codewords in [%zu, %zu]\n", wrong, lo,
                    hi);
      }
      // A compact hint trace: one character per 8 codewords, taller =
      // worse worst-case Hamming hint in that bucket.
      std::printf("    hints: ");
      for (std::size_t k = 0; k < r.symbols.size(); k += 8) {
        int worst = 0;
        for (std::size_t j = k; j < std::min(k + 8, r.symbols.size()); ++j) {
          worst = std::max(worst, r.symbols[j].hamming_distance);
        }
        std::printf("%c", worst == 0           ? '.'
                          : worst <= 4         ? ':'
                          : worst <= 8         ? '|'
                                               : '#');
      }
      std::printf("\n");
    }
    const auto& stats = medium->medium_stats();
    std::printf("  joint collisions: %zu/%zu, P(overhear loss | direct "
                "loss) = %.2f\n",
                stats.joint_collision_frames, stats.broadcast_frames,
                arq::OverhearLossGivenDirectLoss(stats));
  };

  std::printf("shared interferer (one draw, every listener):\n");
  trace(arq::CollisionCorrelation::kSharedInterferer);
  std::printf("\nindependent draws (legacy per-hop model):\n");
  trace(arq::CollisionCorrelation::kIndependent);
  std::printf(
      "\nUnder the shared interferer the same codeword span flares at\n"
      "every listener (scaled by its geometry); under independent draws\n"
      "each listener is hit by its own private burst at its own offset,\n"
      "so the damage never lines up.\n");
  return 0;
}
