// Network-coded partial packet recovery: runs the same 200-byte packet
// transfer over the same bursty chip channel under both PP-ARQ recovery
// strategies and prints what each put on the air.
//
//   kChunkRetransmit — the paper's protocol: feedback names the
//     SoftPHY-flagged chunks, the sender resends those bits verbatim.
//   kCodedRepair     — feedback is a 4-byte deficit report; the sender
//     streams GF(256) RLNC repair symbols until the receiver's decoder
//     reaches full rank (src/fec/).
//
//   $ ./examples/example_coded_recovery
#include <cstdio>

#include "arq/link_sim.h"
#include "common/rng.h"

int main() {
  using namespace ppr;

  const phy::ChipCodebook codebook;
  arq::GilbertElliottParams channel_params;
  channel_params.p_good_to_bad = 0.02;
  channel_params.p_bad_to_good = 0.15;
  channel_params.chip_error_good = 0.002;
  channel_params.chip_error_bad = 0.25;

  Rng payload_rng(42);
  BitVec payload;
  for (std::size_t i = 0; i < 200 * 8; ++i) {
    payload.PushBack(payload_rng.Bernoulli(0.5));
  }

  std::printf("200-byte payload over a bursty channel "
              "(%.1f%% chip errors in bad bursts)\n\n",
              100.0 * channel_params.chip_error_bad);

  const auto run = [&](arq::RecoveryMode mode, const char* name) {
    arq::PpArqConfig config;
    config.recovery = mode;
    // Identical channel seed: both strategies face the same bursts.
    Rng channel_rng(7);
    const auto channel =
        arq::MakeGilbertElliottChannel(codebook, channel_params, channel_rng);
    const auto stats = arq::RunPpArqExchange(payload, config, channel);
    std::printf("%-18s %s after %zu transmission(s)\n", name,
                stats.success ? "delivered" : "FAILED",
                stats.data_transmissions);
    std::printf("  forward traffic:  %zu bytes (initial packet %zu)\n",
                stats.forward_bits / 8, (payload.size() + 32) / 8);
    std::printf("  feedback traffic: %zu bytes\n", stats.feedback_bits / 8);
    for (std::size_t r = 0; r < stats.retransmission_bits.size(); ++r) {
      std::printf("  repair round %zu:   %zu bytes\n", r + 1,
                  stats.retransmission_bits[r] / 8);
    }
    std::printf("\n");
  };

  run(arq::RecoveryMode::kChunkRetransmit, "chunk-retransmit:");
  run(arq::RecoveryMode::kCodedRepair, "coded-repair:");

  std::printf("Both strategies deliver the byte-identical packet; they "
              "differ in what\nrides the air to finish it. See "
              "src/arq/recovery_strategy.h for the API.\n");
  return 0;
}
