// N-relay partial packet recovery with airtime-budgeted, ExOR-style
// relay scheduling: a weak direct link overheard by four relays. The
// destination broadcasts one requested count per repair party
// (delivery-rate weighted); unbudgeted, every relay streams each
// round, while a per-round airtime budget makes the engine serve
// relays best-overhear-quality-first until the round's bits run out —
// worse-ranked relays truncate or defer.
//
//   $ ./examples/example_multi_relay_recovery
#include <cstdio>

#include "arq/recovery_session.h"
#include "common/rng.h"

int main() {
  using namespace ppr;

  const phy::ChipCodebook codebook;

  // Weak direct path: long, frequent error bursts.
  arq::GilbertElliottParams weak;
  weak.p_good_to_bad = 0.03;
  weak.p_bad_to_good = 0.12;
  weak.chip_error_good = 0.004;
  weak.chip_error_bad = 0.25;

  // Relay climates: every relay overhears and reaches the destination
  // well, with slightly different burst rates so their observed
  // qualities differ.
  const auto relay_params = [](double burst_rate) {
    arq::GilbertElliottParams p;
    p.p_good_to_bad = burst_rate;
    p.p_bad_to_good = 0.5;
    p.chip_error_good = 0.0005;
    p.chip_error_bad = 0.05;
    return p;
  };

  Rng payload_rng(42);
  BitVec payload;
  for (std::size_t i = 0; i < 200 * 8; ++i) {
    payload.PushBack(payload_rng.Bernoulli(0.5));
  }

  constexpr std::size_t kNumRelays = 4;
  constexpr std::size_t kBudgetBits = 1200;

  const auto run = [&](std::size_t budget_bits) {
    arq::PpArqConfig config;
    config.recovery = arq::RecoveryMode::kRelayCodedRepair;
    config.relay_parties = kNumRelays;
    config.relay_airtime_budget_bits = budget_bits;
    arq::MultiRelayExchangeChannels channels;
    Rng direct_rng(7);
    std::vector<Rng> relay_rngs;
    relay_rngs.reserve(2 * kNumRelays);
    for (std::size_t i = 0; i < 2 * kNumRelays; ++i) {
      relay_rngs.emplace_back(100 + i);
    }
    channels.source_to_destination =
        arq::MakeGilbertElliottChannel(codebook, weak, direct_rng);
    for (std::size_t i = 0; i < kNumRelays; ++i) {
      channels.source_to_relay.push_back(arq::MakeGilbertElliottChannel(
          codebook, relay_params(0.001 * static_cast<double>(i + 1)),
          relay_rngs[2 * i]));
      channels.relay_to_destination.push_back(arq::MakeGilbertElliottChannel(
          codebook, relay_params(0.001), relay_rngs[2 * i + 1]));
    }
    return arq::RunMultiRelayRecoveryExchange(
        payload, config, *arq::MakeRecoveryStrategy(config), channels);
  };

  std::printf("200-byte payload, weak direct link, %zu overhearing relays\n\n",
              kNumRelays);
  const auto print = [](const char* name, const arq::SessionRunStats& stats) {
    std::printf("%-28s %s after %zu round(s)\n", name,
                stats.totals.success ? "delivered" : "FAILED", stats.rounds);
    std::printf("  source repair:        %5zu bytes\n",
                stats.parties[arq::kSessionSourceId].repair_bits / 8);
    for (std::size_t p = arq::kSessionRelayId; p < stats.parties.size(); ++p) {
      std::printf("  relay %zu repair:       %5zu bytes\n",
                  p - arq::kSessionRelayId + 1,
                  stats.parties[p].repair_bits / 8);
    }
    std::printf("  busiest round (relay): %4zu bytes; deferrals: %zu\n\n",
                stats.max_round_relay_bits / 8, stats.relay_deferrals);
  };

  print("unbudgeted (all stream):", run(0));
  std::printf("per-round relay airtime budget: %zu bytes\n", kBudgetBits / 8);
  print("budgeted (ExOR schedule):", run(kBudgetBits));

  std::printf(
      "The feedback wire carries (seq, party_count, requested[i]...);\n"
      "see src/arq/recovery_session.h for the scheduling rules.\n");
  return 0;
}
