// Observability end to end: a two-relay recovery session on one shared
// chip-level medium, run under a ScopedObsContext so every layer —
// medium broadcasts and joint losses, session rounds and relay
// scheduling, coded-repair rank progress — records into one
// MetricRegistry and one Tracer. The run then exports the trace as
// JSONL (one event per line, integer nanoseconds) and as a Chrome
// trace-event file (load it at chrome://tracing or ui.perfetto.dev)
// and prints the merged metric snapshot as sorted-key JSON.
//
//   $ ./examples/example_traced_recovery [out_dir]
#include <cstdio>
#include <deque>
#include <string>

#include "arq/chip_medium.h"
#include "arq/recovery_session.h"
#include "common/rng.h"
#include "obs/obs.h"

int main(int argc, char** argv) {
  using namespace ppr;

  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const std::string jsonl_path = out_dir + "/traced_recovery.jsonl";
  const std::string chrome_path = out_dir + "/traced_recovery.trace.json";

  const phy::ChipCodebook codebook;

  // Weak direct path: long, frequent error bursts force repair rounds.
  arq::GilbertElliottParams weak;
  weak.p_good_to_bad = 0.03;
  weak.p_bad_to_good = 0.12;
  weak.chip_error_good = 0.004;
  weak.chip_error_bad = 0.25;

  arq::GilbertElliottParams relay_climate;
  relay_climate.p_good_to_bad = 0.002;
  relay_climate.p_bad_to_good = 0.5;
  relay_climate.chip_error_good = 0.0005;
  relay_climate.chip_error_bad = 0.05;

  Rng payload_rng(42);
  BitVec payload;
  for (std::size_t i = 0; i < 200 * 8; ++i) {
    payload.PushBack(payload_rng.Bernoulli(0.5));
  }

  constexpr std::size_t kNumRelays = 2;
  arq::PpArqConfig config;
  config.recovery = arq::RecoveryMode::kRelayCodedRepair;
  config.relay_parties = kNumRelays;
  const auto strategy = arq::MakeRecoveryStrategy(config);

  // One shared broadcast domain: the destination is listener 0 (the
  // joint-loss reference), the two overhearing relays follow. The
  // interferer is drawn once per transmission and projected through
  // every listener.
  auto medium = arq::ChipMedium::Create(
      codebook, arq::CollisionCorrelation::kSharedInterferer,
      /*medium_seed=*/99, weak);
  medium->AddListener(weak, Rng(7));
  medium->AddListener(relay_climate, Rng(8));
  medium->AddListener(relay_climate, Rng(9));

  arq::MultiRelayExchangeChannels channels;
  channels.initial_broadcast = medium->MakeBroadcastChannel();
  channels.source_to_destination = medium->MakeUnicastChannel(0);
  std::deque<Rng> relay_rngs;  // channels keep pointers to their Rngs
  for (std::size_t i = 0; i < kNumRelays; ++i) {
    relay_rngs.emplace_back(100 + i);
    channels.relay_to_destination.push_back(arq::MakeGilbertElliottChannel(
        codebook, relay_climate, relay_rngs.back()));
  }

  // Install the observability context for this thread: everything the
  // session touches records here, and restores to "off" on scope exit.
  obs::MetricRegistry registry;
  obs::Tracer tracer;
  arq::SessionRunStats stats;
  {
    obs::ScopedObsContext obs_scope(&registry, &tracer);
    stats = arq::RunMultiRelayRecoveryExchange(payload, config, *strategy,
                                               channels);
  }

  std::printf("200-byte payload over a shared medium, %zu relays: %s after "
              "%zu round(s)\n",
              kNumRelays, stats.totals.success ? "delivered" : "FAILED",
              stats.rounds);
  const auto& ms = medium->medium_stats();
  std::printf("medium: %llu transmissions, %zu/%zu joint collisions\n\n",
              static_cast<unsigned long long>(medium->transmissions()),
              ms.joint_collision_frames, ms.broadcast_frames);

  const obs::Snapshot snapshot = registry.TakeSnapshot();
  std::printf("metric snapshot (sorted keys, byte-stable):\n%s\n\n",
              snapshot.ToJson().c_str());

  if (!tracer.WriteJsonl(jsonl_path) ||
      !tracer.WriteChromeTrace(chrome_path)) {
    return 1;
  }
  std::printf("trace: %zu events (%zu dropped by the ring)\n", tracer.size(),
              tracer.dropped());
  std::printf("  %s\n  %s  <- open at chrome://tracing\n", jsonl_path.c_str(),
              chrome_path.c_str());
#if defined(PPR_OBS_OFF)
  std::printf("\n(built with PPR_OBS_OFF: hooks compiled out, exports are "
              "valid empty documents)\n");
#endif
  return 0;
}
