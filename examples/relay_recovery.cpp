// Relay-assisted partial packet recovery (Crelay): a weak direct link,
// a strong overhearing relay. The destination broadcasts its deficit;
// source AND relay answer with RLNC repair symbols from disjoint seed
// partitions, the burst split by who is cheaper to hear. Compare the
// repair bits the SOURCE pays against sender-only coded repair on the
// identical direct channel.
//
//   $ ./examples/example_relay_recovery
#include <cstdio>

#include "arq/recovery_session.h"
#include "common/rng.h"

int main() {
  using namespace ppr;

  const phy::ChipCodebook codebook;

  // Weak direct path: long, frequent error bursts.
  arq::GilbertElliottParams weak;
  weak.p_good_to_bad = 0.03;
  weak.p_bad_to_good = 0.12;
  weak.chip_error_good = 0.004;
  weak.chip_error_bad = 0.25;

  // Strong relay climate, both hops.
  arq::GilbertElliottParams strong;
  strong.p_good_to_bad = 0.001;
  strong.p_bad_to_good = 0.5;
  strong.chip_error_good = 0.0005;
  strong.chip_error_bad = 0.05;

  Rng payload_rng(42);
  BitVec payload;
  for (std::size_t i = 0; i < 200 * 8; ++i) {
    payload.PushBack(payload_rng.Bernoulli(0.5));
  }

  std::printf("200-byte payload; weak direct link (%.0f%% chip errors in\n"
              "bursts), strong relay overhearing the source\n\n",
              100.0 * weak.chip_error_bad);

  // Sender-only coded repair over the weak link.
  arq::PpArqConfig coded_config;
  coded_config.recovery = arq::RecoveryMode::kCodedRepair;
  Rng coded_direct(7);
  auto coded_channel =
      arq::MakeGilbertElliottChannel(codebook, weak, coded_direct);
  const auto coded = arq::RunRecoveryExchangeSession(
      payload, coded_config, *arq::MakeRecoveryStrategy(coded_config),
      coded_channel);

  // Relay-coded repair: identical weak direct channel, plus the relay.
  arq::PpArqConfig relay_config;
  relay_config.recovery = arq::RecoveryMode::kRelayCodedRepair;
  Rng relay_direct(7), overhear(8), relay_hop(9);
  arq::RelayExchangeChannels channels;
  channels.source_to_destination =
      arq::MakeGilbertElliottChannel(codebook, weak, relay_direct);
  channels.source_to_relay =
      arq::MakeGilbertElliottChannel(codebook, strong, overhear);
  channels.relay_to_destination =
      arq::MakeGilbertElliottChannel(codebook, strong, relay_hop);
  const auto relayed = arq::RunRelayRecoveryExchange(
      payload, relay_config, *arq::MakeRecoveryStrategy(relay_config),
      channels);

  const auto print = [](const char* name, const arq::SessionRunStats& stats) {
    std::printf("%-20s %s after %zu transmission(s), %zu feedback bytes\n",
                name, stats.totals.success ? "delivered" : "FAILED",
                stats.totals.data_transmissions,
                stats.totals.feedback_bits / 8);
    std::printf("  source repair bits:  %zu bytes\n",
                stats.parties[arq::kSessionSourceId].repair_bits / 8);
    if (stats.parties.size() > arq::kSessionRelayId) {
      std::printf("  relay repair bits:   %zu bytes\n",
                  stats.parties[arq::kSessionRelayId].repair_bits / 8);
    }
    std::printf("\n");
  };
  print("coded-repair:", coded);
  print("relay-coded-repair:", relayed);

  const std::size_t coded_source =
      coded.parties[arq::kSessionSourceId].repair_bits;
  const std::size_t relay_source =
      relayed.parties[arq::kSessionSourceId].repair_bits;
  if (coded_source > 0) {
    std::printf("The relay carried %zu bytes of repair; the source paid "
                "%.0f%% of what\nsender-only coded repair cost it.\n",
                relayed.parties[arq::kSessionRelayId].repair_bits / 8,
                100.0 * static_cast<double>(relay_source) /
                    static_cast<double>(coded_source));
  }
  std::printf("See src/arq/recovery_session.h for the session API.\n");
  return 0;
}
