// Streaming sliding-window recovery: a continuous packet flow over a
// bursty erasure link, recovered in-order by windowed RLNC repair
// under each of the three redundancy controllers (src/stream/).
//
// One shared channel realization (common random numbers) makes the
// controller comparison paired: every policy faces the exact same
// frame losses, so the latency and overhead differences printed at the
// end are the controllers' doing, not channel luck.
//
//   $ ./examples/example_streaming_recovery
#include <cstdio>
#include <string>

#include "sim/stream_experiment.h"
#include "stream/redundancy.h"

int main() {
  using namespace ppr;

  sim::StreamSweepConfig config;
  // One lossy, bursty cell: 15% stationary frame loss in bursts of ~3,
  // a 16-symbol window, and sparse feedback — the regime where WHEN a
  // controller spends a repair matters as much as how many it spends.
  config.loss_rates = {0.15};
  config.window_sizes = {16};
  config.session.total_packets = 2'000;
  config.session.feedback_interval_us = 16'000;

  std::printf("streaming %zu packets over a %.0f%% bursty erasure link "
              "(window %zu, feedback every %llu ms)\n\n",
              config.session.total_packets, 100.0 * config.loss_rates[0],
              config.window_sizes[0],
              static_cast<unsigned long long>(
                  config.session.feedback_interval_us / 1000));

  const auto result = sim::RunStreamRecoveryExperiment(config);

  std::printf("%-12s %10s %10s %10s %10s %9s\n", "controller", "p50_ms",
              "p95_ms", "p99_ms", "goodput", "overhead");
  for (const auto& point : result.points) {
    std::printf("%-12s %10.1f %10.1f %10.1f %8.0f/s %9.3f\n",
                std::string(stream::ControllerKindName(point.controller))
                    .c_str(),
                point.p50_latency_us / 1000.0, point.p95_latency_us / 1000.0,
                point.p99_latency_us / 1000.0, point.goodput_pps,
                point.repair_overhead);
  }

  std::printf(
      "\nfixed-rate pays repair whether or not anything was lost;\n"
      "ack-deficit spends the minimum but waits a feedback round to\n"
      "learn of each loss; deadline fires protect repairs early for\n"
      "stuck window tails — the next deficit report shrinks one-for-\n"
      "one, so it buys its latency tail without extra repair bits.\n");
  return 0;
}
