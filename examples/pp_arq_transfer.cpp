// PP-ARQ bulk transfer: moves a multi-kilobyte "file" over a bursty
// link with PP-ARQ and with the status-quo whole-packet ARQ, comparing
// how many bits each puts on the air (section 5 / Figure 16 of the
// paper: retransmit only the runs that are likely wrong).
//
//   $ ./examples/pp_arq_transfer
#include <cstdio>

#include "arq/link_sim.h"
#include "common/rng.h"

int main() {
  using namespace ppr;

  const phy::ChipCodebook codebook;
  const std::size_t packet_octets = 250;
  const int packets = 24;  // ~6 KB transfer

  // Bursty channel: collisions/fades arrive as bursts of bad codewords
  // (Gilbert-Elliott), the regime PP-ARQ's chunking is built for.
  arq::GilbertElliottParams channel_params;
  channel_params.p_good_to_bad = 0.01;
  channel_params.p_bad_to_good = 0.15;
  channel_params.chip_error_good = 0.002;
  channel_params.chip_error_bad = 0.3;

  arq::ArqRunStats pp_total, wp_total;
  Rng payload_rng(99);
  for (int i = 0; i < packets; ++i) {
    BitVec payload;
    for (std::size_t b = 0; b < packet_octets * 8; ++b) {
      payload.PushBack(payload_rng.Bernoulli(0.5));
    }
    // Identical channel realizations for a fair head-to-head.
    Rng chan_rng_a(1000 + i), chan_rng_b(1000 + i);
    auto chan_a = arq::MakeGilbertElliottChannel(codebook, channel_params,
                                                 chan_rng_a);
    auto chan_b = arq::MakeGilbertElliottChannel(codebook, channel_params,
                                                 chan_rng_b);

    const auto pp = arq::RunPpArqExchange(payload, arq::PpArqConfig{}, chan_a);
    const auto wp = arq::RunWholePacketArq(payload, chan_b, 200);

    pp_total.forward_bits += pp.forward_bits;
    pp_total.feedback_bits += pp.feedback_bits;
    pp_total.data_transmissions += pp.data_transmissions;
    pp_total.success = pp.success;
    wp_total.forward_bits += wp.forward_bits;
    wp_total.feedback_bits += wp.feedback_bits;
    wp_total.data_transmissions += wp.data_transmissions;
    wp_total.success = wp.success;
    if (!pp.success || !wp.success) {
      std::printf("packet %d failed to transfer\n", i);
      return 1;
    }
  }

  const double payload_bits = packets * packet_octets * 8.0;
  std::printf("transferred %d packets x %zu bytes over a bursty link\n\n",
              packets, packet_octets);
  std::printf("%-22s%-16s%-16s%-14s\n", "scheme", "forward bits",
              "feedback bits", "efficiency");
  std::printf("%-22s%-16zu%-16zu%-14.2f\n", "PP-ARQ",
              pp_total.forward_bits, pp_total.feedback_bits,
              payload_bits / static_cast<double>(pp_total.forward_bits));
  std::printf("%-22s%-16zu%-16zu%-14.2f\n", "whole-packet ARQ",
              wp_total.forward_bits, wp_total.feedback_bits,
              payload_bits / static_cast<double>(wp_total.forward_bits));
  std::printf("\nPP-ARQ sent %.1fx fewer forward-link bits (%zu vs %zu "
              "frames on the air).\n",
              static_cast<double>(wp_total.forward_bits) /
                  static_cast<double>(pp_total.forward_bits),
              pp_total.data_transmissions, wp_total.data_transmissions);
  return 0;
}
