// Partial packet recovery under a collision: demonstrates postamble
// decoding (section 4 of the paper). A strong frame captures the
// receiver while a weaker frame is on the air; the weak frame's
// preamble is destroyed, yet the receiver recovers its intact tail by
// synchronizing on the postamble and rolling back — then shows which
// codewords the SoftPHY threshold rule would keep.
//
//   $ ./examples/partial_recovery
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "phy/channel.h"
#include "ppr/receiver_pipeline.h"
#include "softphy/classifier.h"
#include "softphy/runlength.h"

int main() {
  using namespace ppr;

  core::PipelineConfig config;
  config.modem.samples_per_chip = 4;
  config.max_payload_octets = 256;
  const core::FrameModulator sender(config.modem);
  const core::ReceiverPipeline receiver(config);
  Rng rng(7);

  // Two senders, two frames. Frame B is 6 dB stronger (closer) and
  // starts while frame A is still in the air.
  const std::size_t octets = 150;
  std::vector<std::uint8_t> payload_a(octets), payload_b(octets);
  for (auto& b : payload_a) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  for (auto& b : payload_b) b = static_cast<std::uint8_t>(rng.UniformInt(256));

  frame::FrameHeader ha;
  ha.length = octets;
  ha.src = 0xA;
  ha.dst = 1;
  ha.seq = 100;
  frame::FrameHeader hb = ha;
  hb.src = 0xB;
  hb.seq = 200;

  auto wave_a = sender.Modulate(ha, payload_a);
  auto wave_b = sender.Modulate(hb, payload_b);
  phy::ApplyCarrierOffset(wave_a, 0.0, 0.4);
  phy::ApplyCarrierOffset(wave_b, 0.0, 2.9);
  phy::ApplyGain(wave_b, 2.0);  // +6 dB

  // Frame B starts 40% into frame A: it wipes out A's tail...
  const std::size_t start_a = 500;
  const std::size_t start_b = start_a + (wave_a.size() * 2) / 5;
  phy::SampleVec air(start_b + wave_b.size() + 500, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave_a, start_a);
  phy::MixInto(air, wave_b, start_b);
  phy::AddAwgn(air, 0.25, rng);

  const auto frames = receiver.Process(air);
  std::printf("recovered %zu frames from the collision\n\n", frames.size());

  const softphy::ThresholdClassifier classifier;  // eta = 6
  for (const auto& f : frames) {
    const auto symbols = f.PayloadSymbols();
    const auto labels = classifier.Label(symbols);
    const auto runs = softphy::ToRunLengthForm(labels);

    std::size_t good = 0;
    for (const bool b : labels) {
      if (b) ++good;
    }
    std::printf("frame src=0x%X seq=%u via %s: %zu/%zu payload codewords "
                "labeled good (%zu bad runs)\n",
                f.header.src, f.header.seq,
                f.sync == core::RecoveredFrame::SyncSource::kPreamble
                    ? "preamble"
                    : "postamble -> rolled back through the sample buffer",
                good, labels.size(), runs.NumBadRuns());
    for (std::size_t i = 0; i < runs.NumBadRuns(); ++i) {
      std::printf("  bad run %zu: codewords [%zu, %zu)\n", i,
                  runs.BadRunOffset(i),
                  runs.BadRunOffset(i) + runs.bad[i]);
    }
    std::printf("\n");
  }

  std::printf("the status quo would have delivered %s of these frames.\n",
              frames.size() >= 2 ? "at most one" : "none");
  return 0;
}
