// Quickstart: send one frame over a noisy channel and recover it with
// the full PPR receiver pipeline, printing the SoftPHY hints that
// annotate every decoded codeword.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "phy/channel.h"
#include "ppr/receiver_pipeline.h"

int main() {
  using namespace ppr;

  // 1. Configure the modem (4 samples per 2 Mchip/s chip) and build the
  //    sender and receiver.
  core::PipelineConfig config;
  config.modem.samples_per_chip = 4;
  config.max_payload_octets = 256;
  const core::FrameModulator sender(config.modem);
  const core::ReceiverPipeline receiver(config);

  // 2. Frame a payload: the header carries length/addresses/seq, and the
  //    frame format appends CRC-32, a trailer replica, and a postamble.
  const std::string message =
      "PPR: partial packet recovery demo -- bits don't share fate!";
  frame::FrameHeader header;
  header.length = static_cast<std::uint16_t>(message.size());
  header.dst = 0x0002;
  header.src = 0x0001;
  header.seq = 1;
  auto wave = sender.Modulate(
      header, {reinterpret_cast<const std::uint8_t*>(message.data()),
               message.size()});

  // 3. The channel: place the frame in a capture window and add noise at
  //    a chip SNR of 4 dB — low enough that some chips flip.
  Rng rng(2024);
  phy::ApplyCarrierOffset(wave, 0.0, 0.8);  // unknown carrier phase
  phy::SampleVec air(wave.size() + 2000, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, 1000);
  const double sigma =
      phy::NoiseSigmaForEcN0(std::pow(10.0, 0.4), 1.0,
                             config.modem.samples_per_chip);
  phy::AddAwgn(air, sigma, rng);

  // 4. Receive: the pipeline synchronizes (preamble or postamble),
  //    recovers carrier phase, despreads, and attaches a Hamming-
  //    distance hint to every 4-bit codeword.
  const auto frames = receiver.Process(air);
  if (frames.empty()) {
    std::printf("no frame recovered -- try a higher SNR\n");
    return 1;
  }
  const auto& f = frames[0];
  std::printf("recovered frame: src=%u dst=%u seq=%u len=%u (%s sync, "
              "score %.2f)\n",
              f.header.src, f.header.dst, f.header.seq, f.header.length,
              f.sync == core::RecoveredFrame::SyncSource::kPreamble
                  ? "preamble"
                  : "postamble",
              f.sync_score);

  const auto payload = f.PayloadBits().ToBytes();
  std::printf("payload: %.*s\n", static_cast<int>(payload.size()),
              reinterpret_cast<const char*>(payload.data()));

  // 5. SoftPHY hints: how confident the PHY was, per codeword.
  const auto symbols = f.PayloadSymbols();
  std::size_t worst = 0;
  double total = 0.0;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    total += symbols[i].hint;
    if (symbols[i].hint > symbols[worst].hint) worst = i;
  }
  std::printf("SoftPHY hints: mean Hamming distance %.2f over %zu "
              "codewords; worst codeword #%zu at distance %d\n",
              total / static_cast<double>(symbols.size()), symbols.size(),
              worst, symbols[worst].hamming_distance);
  std::printf("threshold rule (eta=6): %s\n",
              symbols[worst].hint <= 6.0
                  ? "every codeword labeled good"
                  : "some codewords would be re-requested by PP-ARQ");
  return 0;
}
