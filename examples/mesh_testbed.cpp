// The 27-node testbed in one program: runs the paper's Figure 7
// topology (23 senders, 4 software-radio receivers over nine rooms) at
// a chosen offered load and prints a per-link report comparing the
// status quo with PPR — the experiment behind Figures 8-12.
//
//   $ ./examples/mesh_testbed
#include <cstdio>

#include "sim/experiment.h"

int main() {
  using namespace ppr::sim;

  const double offered_load_bps = 6'900.0;  // near saturation
  auto config = MakePaperConfig(offered_load_bps, /*carrier_sense=*/false,
                                /*duration_s=*/20.0, /*seed=*/2718);

  const TestbedExperiment experiment(config);

  std::vector<SchemeConfig> schemes(3);
  schemes[0].scheme = Scheme::kPacketCrc;
  schemes[1].scheme = Scheme::kFragmentedCrc;
  schemes[1].num_fragments = 30;
  schemes[1].postamble = true;
  schemes[2].scheme = Scheme::kPpr;
  schemes[2].postamble = true;

  const auto result = experiment.Run(schemes);

  std::printf("27-node testbed, %.1f Kbit/s/node offered, %zu frames on "
              "the air in %.0f s\n\n",
              offered_load_bps / 1000.0, result.total_transmissions,
              result.duration_s);
  std::printf("%-8s%-8s%-8s%-14s%-14s%-14s\n", "sender", "recv", "SNR",
              "PacketCRC", "FragCRC+post", "PPR+post");
  double pkt_sum = 0.0, ppr_sum = 0.0;
  for (const auto& link : result.links) {
    std::printf("%-8zu%-8zu%-8.1f%-14.3f%-14.3f%-14.3f\n", link.sender,
                link.receiver, link.snr_db, link.Fdr(0), link.Fdr(1),
                link.Fdr(2));
    pkt_sum += link.Fdr(0);
    ppr_sum += link.Fdr(2);
  }
  std::printf("\nmean per-link frame delivery rate: status quo %.3f, "
              "PPR %.3f (%.1fx)\n",
              pkt_sum / static_cast<double>(result.links.size()),
              ppr_sum / static_cast<double>(result.links.size()),
              pkt_sum > 0 ? ppr_sum / pkt_sum : 0.0);
  return 0;
}
