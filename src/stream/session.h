// StreamSession: one live flow, source and destination, over a
// BodyChannel transport — the streaming counterpart of
// arq::RunRecoveryExchangeSession's discrete per-packet rounds.
//
// The session runs a deterministic virtual-time event loop
// (microsecond clock): source packets arrive on a fixed cadence, every
// forward frame pays its airtime (wire bits / link rate) on a FIFO
// link plus a propagation delay, the destination batches cumulative
// acknowledgments on a feedback interval, and the redundancy
// controller is consulted after each source send, on each feedback,
// and on a periodic tick. Forward frames cross the (lossy) BodyChannel
// and are erased when their CRC-32 fails; feedback is modeled reliable
// per the repo convention (short frames, forward-link evaluation), but
// its bits and latency are charged.
//
// Determinism: all randomness comes from the caller's channel and the
// config seed, timestamps are virtual, and metrics land both in the
// (optional) ambient obs context and in the returned
// StreamSessionStats histograms — the latter exist even under
// PPR_OBS_OFF, so the sim sweep's percentile reports never depend on
// wall clock or thread schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "arq/link_sim.h"
#include "fec/codec.h"
#include "obs/metrics.h"
#include "stream/redundancy.h"
#include "stream/stream_ids.h"

namespace ppr::stream {

struct StreamSessionConfig {
  std::size_t window_capacity = 32;
  std::size_t symbol_bytes = 32;  // source payload per symbol
  std::size_t total_packets = 400;

  // Virtual-time cadences, microseconds.
  std::uint64_t packet_interval_us = 1'000;
  std::uint64_t feedback_interval_us = 8'000;
  std::uint64_t tick_interval_us = 2'000;
  std::uint64_t propagation_us = 500;   // one-way delay, either direction
  double link_rate_bps = 2'000'000.0;   // forward-link serialization rate

  // Hard stop: a session that cannot finish by then reports what it has
  // (undelivered packets counted, never silently dropped).
  std::uint64_t max_duration_us = 60'000'000;

  // After the last source packet entered the window, feedback deficits
  // are flushed with repair regardless of controller, so every policy
  // pays the same tail-closing cost and comparisons isolate steady-state
  // behavior.
  bool closing_flush = true;

  // Deterministic payload generator seed (payloads are a pure function
  // of (seed, symbol id); the destination verifies every delivery).
  std::uint64_t payload_seed = 0x5EED;

  // Repair codec. kRlnc (default): every repair frame is a seeded
  // random combination over the live window — rateless, any repair
  // helps any loss it spans. kReedSolomon: ids are grouped into fixed
  // generations of rs_generation consecutive symbols; once a
  // generation is complete the source streams its precomputed GF(2^16)
  // RS parity symbols (repair wire reused: first_id = generation base,
  // span = rs_generation, seed = parity index), and the destination
  // runs one O(K log K) erasure decoder per generation, feeding
  // recovered symbols back into the window. Requires even symbol_bytes
  // and rs_generation <= window_capacity. The final partial generation
  // is zero-padded on both sides.
  fec::CodecKind codec = fec::CodecKind::kRlnc;
  std::size_t rs_generation = 16;
  std::size_t rs_parity = 8;
};

struct StreamSessionStats {
  // Frames on the air, forward direction.
  std::size_t source_sent = 0;
  std::size_t repair_sent = 0;
  std::size_t source_frames_lost = 0;  // CRC-failed at the destination
  std::size_t repair_frames_lost = 0;
  std::uint64_t source_bits = 0;
  std::uint64_t repair_bits = 0;
  std::uint64_t feedback_bits = 0;
  std::size_t feedback_frames = 0;

  // Delivery.
  std::size_t delivered = 0;
  std::size_t recovered = 0;  // delivered via repair decoding
  std::size_t undelivered = 0;
  std::size_t payload_mismatches = 0;  // delivered data != sent data
  std::size_t backpressure_stalls = 0;
  std::size_t decoder_stale_dropped = 0;
  std::size_t decoder_overflow_dropped = 0;
  std::size_t ambiguous_id_dropped = 0;

  std::uint64_t finished_at_us = 0;

  // Per-delivered-packet latency (send -> in-order release), and the
  // recovered-only subset. Log2-bucket snapshots: report percentiles
  // via ValueAtQuantile.
  obs::HistogramSnapshot latency_us;
  obs::HistogramSnapshot recovered_latency_us;

  // repair_bits / source_bits — the stream's repair overhead.
  double RepairOverhead() const {
    return source_bits == 0
               ? 0.0
               : static_cast<double>(repair_bits) /
                     static_cast<double>(source_bits);
  }
  // Delivered payload bits per second of virtual time.
  double GoodputBps() const {
    return finished_at_us == 0
               ? 0.0
               : static_cast<double>(delivered) * 1e6 /
                     static_cast<double>(finished_at_us);
  }
};

// Runs the whole flow to completion (or max_duration_us). The
// controller is consumed statefully; pass a fresh instance per run.
StreamSessionStats RunStreamSession(const StreamSessionConfig& config,
                                    RedundancyController& controller,
                                    const arq::BodyChannel& channel);

// The deterministic payload for symbol `id` — what the source sends
// and the destination checks against.
std::vector<std::uint8_t> StreamPayloadForId(std::uint64_t payload_seed,
                                             SymbolId id,
                                             std::size_t symbol_bytes);

}  // namespace ppr::stream
