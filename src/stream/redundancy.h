// Pluggable redundancy policy for the streaming recovery engine: WHEN
// to spend airtime on repair symbols, replacing the discrete
// feedback-round deficit loop of CodedRepairSession.
//
// The session consults the controller at three event kinds — after a
// source symbol is sent, when feedback arrives, and on a periodic tick
// — and emits as many repair symbols as the returned budget says. The
// three shipped policies span the design space:
//
//   fixed-rate   open-loop: one repair per k source symbols, blind to
//                loss. The baseline every adaptive scheme must beat.
//   ack-deficit  closed-loop reactive: trust the receiver's reported
//                equation deficit, emit what it still needs after
//                discounting repair already in flight. Minimal
//                overhead, but a loss is only repaired a feedback
//                interval + RTT after it happened.
//   deadline     reactive core plus protect bursts, after flec's `abc`
//                protect conditions: honor the reported deficit like
//                ack-deficit, but when the oldest undelivered symbol's
//                age approaches the flow deadline, stop waiting for the
//                next feedback round and fire a repair immediately.
//                Because a protect repair the receiver needed shows up
//                in the next deficit report (shrinking the next honor
//                ask one-for-one), the burst substitutes for — rather
//                than adds to — the reactive spend: same repair count,
//                strictly earlier recovery. An optional loss-rate
//                credit can layer proactive repair on top for
//                feedback-starved links (off by default; see
//                DeadlineConfig::cover_factor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

namespace ppr::stream {

// What the session knows when it asks for a repair budget. All times
// are virtual-clock microseconds.
struct ControllerInputs {
  std::uint64_t now_us = 0;
  // Encoder window occupancy (unacked source symbols) — a repair is
  // only worth emitting when this is nonzero.
  std::size_t in_flight = 0;
  std::uint64_t source_sent = 0;
  std::uint64_t repair_sent = 0;
  // The receiver's equation deficit as of the latest feedback: how many
  // more independent equations it needs to recover everything it has
  // seen referenced.
  std::size_t reported_deficit = 0;
  // Repair symbols sent recently enough that the latest feedback cannot
  // reflect them (sent within the last one-way delay).
  std::size_t repairs_in_flight = 0;
  // EWMA of the source-symbol loss rate, from feedback deltas.
  double loss_estimate = 0.0;
  // Age of the oldest unacknowledged source symbol; 0 when none.
  std::uint64_t oldest_unacked_age_us = 0;
};

// The moments a controller is consulted.
enum class ControllerEvent : std::uint8_t {
  kSourceSent,       // right after one source symbol went out
  kFeedbackReceived, // a StreamAck just updated the inputs
  kTick,             // periodic timer, for deadline-style policies
};

class RedundancyController {
 public:
  virtual ~RedundancyController() = default;
  virtual std::string_view name() const = 0;
  // How many repair symbols to emit right now. Stateful: the session
  // reports back nothing — the controller must count what it asked for
  // via `repair_sent` in the next inputs.
  virtual std::size_t RepairBudget(ControllerEvent event,
                                   const ControllerInputs& in) = 0;
};

// One repair after every `source_per_repair` source symbols.
struct FixedRateConfig {
  std::size_t source_per_repair = 4;
};

// Emit the receiver's reported deficit minus repair already in flight,
// on feedback only.
struct AckDeficitConfig {};

// Proactive credit + deadline protect.
struct DeadlineConfig {
  // Per-packet delivery deadline the flow cares about.
  std::uint64_t deadline_us = 40'000;
  // Fire the protect burst when oldest_unacked_age exceeds this
  // fraction of the deadline.
  double protect_ratio = 0.5;
  // Cover this multiple of the expected in-flight losses with
  // proactive repair credit (1.0 = exactly the EWMA estimate). Off by
  // default: on a link with working feedback the credit drains during
  // quiet stretches when the receiver needs nothing — pure overhead —
  // while the protect path already covers the latency tail at no extra
  // repair cost. Raise it when feedback is rare or unreliable.
  double cover_factor = 0.0;
  // Floor on the assumed loss rate so a quiet start still sends some
  // proactive repair.
  double min_loss_estimate = 0.01;
  // Minimum spacing between protect bursts.
  std::uint64_t protect_cooldown_us = 5'000;
  // After ANY repair went out (whichever path), hold the protect burst
  // this long: acks lag by up to a feedback round, so the stuck tail
  // that triggered it is likely already recovered or repair is still in
  // flight toward it. Roughly one feedback interval + RTT.
  std::uint64_t protect_quiet_us = 12'000;
  // Cap on one protect burst: the burst exists to reference and nudge a
  // stuck window tail, not to blanket-retransmit it.
  std::size_t max_protect_burst = 1;
  // Reactive (feedback-deficit) and protect repairs debit the shared
  // proactive credit budget; this floors how far it may go negative so
  // one loss burst cannot mute proactive cover indefinitely.
  double max_budget_debt = 12.0;
};

std::unique_ptr<RedundancyController> MakeFixedRateController(
    FixedRateConfig config = {});
std::unique_ptr<RedundancyController> MakeAckDeficitController(
    AckDeficitConfig config = {});
std::unique_ptr<RedundancyController> MakeDeadlineController(
    DeadlineConfig config = {});

// Named controller kinds for sweeps and CLI flags.
enum class ControllerKind : std::uint8_t { kFixedRate, kAckDeficit, kDeadline };

std::string_view ControllerKindName(ControllerKind kind);
std::unique_ptr<RedundancyController> MakeController(ControllerKind kind);

}  // namespace ppr::stream
