// Stream symbol identifiers and their wire truncation.
//
// A live flow numbers its source symbols with a monotonically
// increasing 64-bit SymbolId, but the wire carries only the low
// kWireIdBits bits (a 1500-byte frame cannot afford 8-byte ids per
// descriptor field). The receiver re-expands a truncated id against a
// reference it tracks (its in-order frontier): the candidate full id
// closest to the reference wins, and candidates farther than
// kMaxAmbiguousIdGap are rejected outright — the ambiguous-ID-gap
// guard of flec's window framework. The guard is what makes truncation
// safe: as long as the window (plus reordering slack) stays within the
// gap, exactly one candidate survives; a frame delayed beyond it is
// dropped rather than mis-filed into the wrong id era.
#pragma once

#include <cstdint>
#include <optional>

namespace ppr::stream {

using SymbolId = std::uint64_t;

inline constexpr unsigned kWireIdBits = 16;
inline constexpr std::uint64_t kWireIdSpan = std::uint64_t{1} << kWireIdBits;

// Widest |full - reference| distance a truncated id may resolve to.
// Must be < kWireIdSpan / 2 so the nearest candidate is unique; kept at
// a quarter span for slack against pathological reordering.
inline constexpr std::uint64_t kMaxAmbiguousIdGap = kWireIdSpan / 4;

inline std::uint16_t TruncateSymbolId(SymbolId id) {
  return static_cast<std::uint16_t>(id & (kWireIdSpan - 1));
}

// The full id with low bits `wire_id` closest to `reference`, or
// nullopt when even the closest candidate is farther than
// kMaxAmbiguousIdGap (or would be negative).
std::optional<SymbolId> ExpandSymbolId(std::uint16_t wire_id,
                                       SymbolId reference);

}  // namespace ppr::stream
