// In-order delivery with per-packet recovery-latency timestamps.
//
// The queue sits between WindowDecoder::PopDeliverable and the
// application: it pairs each released symbol with the (virtual-clock)
// time its source packet first went on the air, so every delivered
// packet carries its end-to-end delivery latency — the time a live
// flow's jitter buffer actually experiences, including the repair
// round-trips a recovered packet waited through.
//
// Send timestamps are recorded by the sending side of the harness (the
// sim's source and destination share the virtual clock); they are
// bookkeeping, not wire fields.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stream/window.h"

namespace ppr::stream {

struct DeliveredPacket {
  SymbolId id = 0;
  std::vector<std::uint8_t> data;
  bool recovered = false;  // decoded from repair rather than received verbatim
  std::uint64_t sent_at_us = 0;
  std::uint64_t delivered_at_us = 0;

  std::uint64_t LatencyUs() const { return delivered_at_us - sent_at_us; }
};

class DeliveryQueue {
 public:
  // Called when source symbol `id` first goes on the air.
  void OnSourceSent(SymbolId id, std::uint64_t now_us);

  // Timestamps and appends the symbols the decoder just released (in
  // id order). Returns how many were released. Released packets
  // accumulate in delivered() for the session to drain or inspect.
  std::size_t Release(std::vector<DeliverableSymbol> symbols,
                      std::uint64_t now_us);

  // When symbol `id` went on the air, if it is still undelivered — the
  // deadline controller's oldest-unacked age comes from here.
  std::optional<std::uint64_t> SentAt(SymbolId id) const {
    const auto it = sent_at_.find(id);
    if (it == sent_at_.end()) return std::nullopt;
    return it->second;
  }

  const std::vector<DeliveredPacket>& delivered() const { return delivered_; }
  std::vector<DeliveredPacket> TakeDelivered();
  std::size_t total_released() const { return total_released_; }

 private:
  std::unordered_map<SymbolId, std::uint64_t> sent_at_;
  std::vector<DeliveredPacket> delivered_;
  std::size_t total_released_ = 0;
};

}  // namespace ppr::stream
