#include "stream/session.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <optional>
#include <queue>
#include <stdexcept>
#include <utility>

#include "common/crc.h"
#include "common/rng.h"
#include "fec/reed_solomon.h"
#include "obs/obs.h"
#include "stream/delivery_queue.h"
#include "stream/window.h"

namespace ppr::stream {

namespace {

// ------------------------------------------------------------ wire codec
//
// Forward frames, MSB-first fields, CRC-32 over everything before it,
// zero-padded to a whole number of 4-bit codewords:
//
//   source:  type=0 (2) | wire_id (16)            | payload | crc32
//   repair:  type=1 (2) | first_id (16) | span (16) | seed (32) | payload | crc32

constexpr unsigned kTypeBits = 2;
constexpr unsigned kTypeSource = 0;
constexpr unsigned kTypeRepair = 1;
constexpr unsigned kCrcBits = 32;
// Feedback wire cost charged per StreamAck: truncated cumulative ack +
// deficit + loss estimate (8-bit fixed point) + crc.
constexpr std::size_t kFeedbackBits = kWireIdBits + 16 + 8 + kCrcBits;

BitVec FinishFrame(BitVec frame) {
  frame.AppendUint(Crc32Bits(frame), kCrcBits);
  while (frame.size() % 4 != 0) frame.PushBack(false);
  return frame;
}

BitVec EncodeSourceFrame(SymbolId id, const std::vector<std::uint8_t>& data) {
  BitVec frame;
  frame.AppendUint(kTypeSource, kTypeBits);
  frame.AppendUint(TruncateSymbolId(id), kWireIdBits);
  frame.AppendBits(BitVec::FromBytes(data));
  return FinishFrame(std::move(frame));
}

BitVec EncodeRepairFrame(const StreamRepairSymbol& repair) {
  BitVec frame;
  frame.AppendUint(kTypeRepair, kTypeBits);
  frame.AppendUint(TruncateSymbolId(repair.first_id), kWireIdBits);
  frame.AppendUint(repair.span, 16);
  frame.AppendUint(repair.seed, 32);
  frame.AppendBits(BitVec::FromBytes(repair.data));
  return FinishFrame(std::move(frame));
}

struct ParsedFrame {
  bool valid = false;  // CRC verified
  unsigned type = 0;
  std::uint16_t wire_id = 0;
  std::uint16_t span = 0;
  std::uint32_t seed = 0;
  std::vector<std::uint8_t> payload;
};

ParsedFrame ParseFrame(const BitVec& bits, std::size_t symbol_bytes) {
  ParsedFrame out;
  const std::size_t payload_bits = symbol_bytes * 8;
  if (bits.size() < kTypeBits + kWireIdBits + payload_bits + kCrcBits) {
    return out;
  }
  out.type = static_cast<unsigned>(bits.ReadUint(0, kTypeBits));
  const std::size_t header_bits =
      out.type == kTypeRepair ? kTypeBits + kWireIdBits + 16 + 32
                              : kTypeBits + kWireIdBits;
  const std::size_t body_bits = header_bits + payload_bits;
  if (bits.size() < body_bits + kCrcBits) return out;
  const auto stored_crc =
      static_cast<std::uint32_t>(bits.ReadUint(body_bits, kCrcBits));
  if (Crc32Bits(bits.Slice(0, body_bits)) != stored_crc) return out;
  out.wire_id = static_cast<std::uint16_t>(bits.ReadUint(kTypeBits,
                                                         kWireIdBits));
  if (out.type == kTypeRepair) {
    out.span = static_cast<std::uint16_t>(
        bits.ReadUint(kTypeBits + kWireIdBits, 16));
    out.seed = static_cast<std::uint32_t>(
        bits.ReadUint(kTypeBits + kWireIdBits + 16, 32));
  }
  const BitVec payload = bits.Slice(header_bits, payload_bits);
  out.payload = payload.ToBytes();
  out.valid = true;
  return out;
}

// ------------------------------------------------------------- event loop

enum class EventType : std::uint8_t {
  kSourcePacket,     // source cadence: next packet wants the window
  kFrameArrival,     // forward frame reaches the destination
  kFeedbackGen,      // destination batches an ack
  kFeedbackArrival,  // ack reaches the source
  kTick,             // controller timer at the source
};

struct Event {
  std::uint64_t at_us = 0;
  std::uint64_t seq = 0;  // FIFO tie-break: determinism at equal times
  EventType type = EventType::kTick;
  // kFrameArrival: the channel's output for this frame, captured at
  // send time so the stateful channel sees frames in transmission
  // order.
  std::vector<phy::DecodedSymbol> received;
  bool was_repair = false;
  // kFeedbackArrival payload (feedback is reliable; fields ride the
  // event, the wire cost is charged separately).
  SymbolId cumulative_ack = 0;
  std::size_t deficit = 0;
  double loss_estimate = 0.0;
  std::uint64_t generated_at_us = 0;
};

Event TimerEvent(std::uint64_t at_us, EventType type) {
  Event e;
  e.at_us = at_us;
  e.type = type;
  return e;
}

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at_us != b.at_us) return a.at_us > b.at_us;
    return a.seq > b.seq;
  }
};

}  // namespace

std::vector<std::uint8_t> StreamPayloadForId(std::uint64_t payload_seed,
                                             SymbolId id,
                                             std::size_t symbol_bytes) {
  Rng rng(payload_seed ^ (id * 0x9E3779B97F4A7C15ull) ^ (id >> 32));
  std::vector<std::uint8_t> data(symbol_bytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.UniformInt(256));
  return data;
}

StreamSessionStats RunStreamSession(const StreamSessionConfig& config,
                                    RedundancyController& controller,
                                    const arq::BodyChannel& channel) {
  StreamSessionStats stats;
  const bool rs_mode = config.codec == fec::CodecKind::kReedSolomon;
  const std::size_t gen_size = config.rs_generation;
  if (rs_mode) {
    fec::RsBlockSize(gen_size, config.rs_parity);  // validates shapes
    if (config.symbol_bytes % 2 != 0) {
      throw std::invalid_argument(
          "stream RS codec requires even symbol_bytes");
    }
    if (gen_size == 0 || gen_size > config.window_capacity) {
      throw std::invalid_argument(
          "rs_generation must be in [1, window_capacity]");
    }
  }
  WindowEncoder encoder(config.window_capacity, config.symbol_bytes);
  WindowDecoder decoder(config.window_capacity, config.symbol_bytes);
  DeliveryQueue queue;

  // Reed-Solomon generation state. The source recomputes a completed
  // generation's payloads on demand (payloads are a pure function of
  // (seed, id)), so no per-generation buffering: one reused encoder
  // plus a parity cache for generations still unacknowledged. The
  // destination holds one erasure decoder per in-flight generation,
  // pre-banking virtual zeros for the padded tail of the final one.
  std::optional<fec::ReedSolomonEncoder> rs_enc;
  if (rs_mode) {
    rs_enc.emplace(gen_size, config.rs_parity, config.symbol_bytes);
  }
  std::map<std::uint64_t, std::vector<std::vector<std::uint8_t>>> gen_parity;
  std::map<std::uint64_t, std::uint32_t> gen_parity_next;
  std::map<std::uint64_t, fec::ReedSolomonDecoder> rs_decs;
  const obs::LabelSet controller_label = {
      {"controller", std::string(controller.name())}};

  std::priority_queue<Event, std::vector<Event>, EventAfter> events;
  std::uint64_t next_seq = 0;
  const auto push_event = [&](Event e) {
    e.seq = next_seq++;
    events.push(std::move(e));
  };

  std::uint64_t now_us = 0;
  std::uint64_t link_free_us = 0;  // forward link is FIFO-serialized
  std::size_t packets_pushed = 0;
  std::size_t packets_waiting = 0;  // backpressured by a full window
  bool cadence_paused = false;      // source stops producing while blocked
  std::uint32_t repair_seed = 0;
  // Send times of recent repair frames: how many the latest feedback
  // cannot have seen yet.
  std::deque<std::uint64_t> repair_send_times;
  double loss_estimate = 0.0;
  std::size_t reported_deficit = 0;
  std::uint64_t last_feedback_gen_us = 0;
  // Destination-side deltas for the per-interval loss estimate.
  std::size_t dest_source_frames_ok = 0;
  std::size_t prev_dest_source_ok = 0;
  SymbolId prev_highest_seen = 0;

  const auto all_pushed = [&] {
    return packets_pushed == config.total_packets;
  };
  const auto flow_done = [&] {
    return all_pushed() && packets_waiting == 0 &&
           queue.total_released() >= config.total_packets;
  };

  // Sends one frame on the FIFO forward link: pays airtime from the
  // later of `now` and the link becoming free, then propagation. The
  // channel runs at send time so its state advances in frame order.
  const auto send_frame = [&](const BitVec& frame, bool is_repair) {
    const std::uint64_t airtime_us = static_cast<std::uint64_t>(
        static_cast<double>(frame.size()) * 1e6 / config.link_rate_bps);
    const std::uint64_t start = std::max(now_us, link_free_us);
    link_free_us = start + airtime_us;
    Event arrival;
    arrival.type = EventType::kFrameArrival;
    arrival.at_us = link_free_us + config.propagation_us;
    arrival.received = channel(frame);
    arrival.was_repair = is_repair;
    push_event(std::move(arrival));
    if (is_repair) {
      ++stats.repair_sent;
      stats.repair_bits += frame.size();
      repair_send_times.push_back(start);
      obs::Count("stream.session.repair_sent");
    } else {
      ++stats.source_sent;
      stats.source_bits += frame.size();
      obs::Count("stream.session.source_sent");
    }
  };

  const auto controller_inputs = [&] {
    ControllerInputs in;
    in.now_us = now_us;
    in.in_flight = encoder.in_flight();
    in.source_sent = stats.source_sent;
    in.repair_sent = stats.repair_sent;
    in.reported_deficit = reported_deficit;
    // Frames sent after (feedback generation - propagation) cannot be
    // reflected in that feedback.
    const std::uint64_t horizon =
        last_feedback_gen_us > config.propagation_us
            ? last_feedback_gen_us - config.propagation_us
            : 0;
    in.repairs_in_flight = static_cast<std::size_t>(std::count_if(
        repair_send_times.begin(), repair_send_times.end(),
        [&](std::uint64_t t) { return t >= horizon; }));
    in.loss_estimate = loss_estimate;
    if (encoder.in_flight() > 0) {
      if (const auto sent = queue.SentAt(encoder.first_unacked())) {
        in.oldest_unacked_age_us = now_us - *sent;
      }
    }
    return in;
  };

  // --- Reed-Solomon generation helpers (rs_mode only) ---
  // A generation is complete once every one of its ids has been pushed
  // (the final partial generation completes with the last push; its
  // tail is zero-padded on both sides).
  const auto gen_complete = [&](std::uint64_t g) {
    return (g + 1) * gen_size <= packets_pushed || all_pushed();
  };
  const auto parity_for =
      [&](std::uint64_t g) -> const std::vector<std::vector<std::uint8_t>>& {
    auto it = gen_parity.find(g);
    if (it == gen_parity.end()) {
      rs_enc->Reset();
      const std::vector<std::uint8_t> zeros(config.symbol_bytes, 0);
      for (std::size_t i = 0; i < gen_size; ++i) {
        const SymbolId id = g * gen_size + i;
        if (id < config.total_packets) {
          rs_enc->SetSource(i, StreamPayloadForId(config.payload_seed, id,
                                                  config.symbol_bytes));
        } else {
          rs_enc->SetSource(i, zeros);
        }
      }
      rs_enc->Finish();
      std::vector<std::vector<std::uint8_t>> parity;
      parity.reserve(config.rs_parity);
      for (std::size_t j = 0; j < config.rs_parity; ++j) {
        const auto p = rs_enc->Parity(j);
        parity.emplace_back(p.begin(), p.end());
      }
      it = gen_parity.emplace(g, std::move(parity)).first;
    }
    return it->second;
  };
  const auto rs_dec_for = [&](std::uint64_t g) -> fec::ReedSolomonDecoder& {
    auto it = rs_decs.find(g);
    if (it == rs_decs.end()) {
      it = rs_decs
               .try_emplace(g, gen_size, config.rs_parity, config.symbol_bytes)
               .first;
      // Virtual zeros for the padded tail of the final generation.
      const std::vector<std::uint8_t> zeros(config.symbol_bytes, 0);
      for (std::size_t i = 0; i < gen_size; ++i) {
        if (g * gen_size + i >= config.total_packets) {
          it->second.AddSourceSpan(i, zeros);
        }
      }
    }
    return it->second;
  };
  // Runs the generation's erasure decode when it first becomes
  // possible, feeding recovered symbols into the window decoder.
  const auto try_rs_decode = [&](std::uint64_t g,
                                 fec::ReedSolomonDecoder& dec) {
    if (!dec.CanDecode() || dec.Complete()) return;
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < gen_size; ++i) {
      if (!dec.HasSource(i)) missing.push_back(i);
    }
    dec.Decode();
    obs::Count("stream.session.rs_generations_decoded");
    for (const std::size_t i : missing) {
      const SymbolId id = g * gen_size + i;
      if (id < decoder.next_expected()) continue;  // already delivered
      const auto sym = dec.Symbol(i);
      decoder.AddSource(id, std::vector<std::uint8_t>(sym.begin(), sym.end()),
                        /*recovered=*/true);
    }
  };

  const auto emit_repairs = [&](std::size_t budget) {
    if (rs_mode) {
      // Parity of the oldest generation with unacknowledged symbols,
      // cycling through the rs_parity indices. Nothing to send until
      // that generation is complete (block-code latency: losses wait
      // for the generation to fill — bounded by gen_size packets).
      for (std::size_t i = 0; i < budget && encoder.in_flight() > 0; ++i) {
        const std::uint64_t g = encoder.first_unacked() / gen_size;
        if (!gen_complete(g)) break;
        const std::uint32_t j =
            gen_parity_next[g]++ % static_cast<std::uint32_t>(config.rs_parity);
        StreamRepairSymbol repair;
        repair.first_id = g * gen_size;
        repair.span = static_cast<std::uint16_t>(gen_size);
        repair.seed = j;
        repair.data = parity_for(g)[j];
        send_frame(EncodeRepairFrame(repair), /*is_repair=*/true);
      }
      return;
    }
    for (std::size_t i = 0; i < budget && encoder.in_flight() > 0; ++i) {
      send_frame(EncodeRepairFrame(encoder.MakeRepair(repair_seed++)),
                 /*is_repair=*/true);
    }
  };

  const auto consult = [&](ControllerEvent event) {
    emit_repairs(controller.RepairBudget(event, controller_inputs()));
  };

  // One source packet through window + wire; false on backpressure.
  const auto try_send_packet = [&] {
    auto payload = StreamPayloadForId(config.payload_seed,
                                      encoder.next_id(), config.symbol_bytes);
    const auto id = encoder.Push(std::move(payload));
    if (!id.has_value()) return false;
    queue.OnSourceSent(*id, now_us);
    send_frame(EncodeSourceFrame(*id, encoder.Symbol(*id)),
               /*is_repair=*/false);
    ++packets_pushed;
    consult(ControllerEvent::kSourceSent);
    return true;
  };

  // Releases whatever the decoder can deliver in order, verifying
  // payload integrity and recording latency.
  const auto release_deliverable = [&] {
    auto deliverable = decoder.PopDeliverable();
    if (deliverable.empty()) return;
    const std::size_t released = queue.Release(std::move(deliverable), now_us);
    const auto& all = queue.delivered();
    for (std::size_t i = all.size() - released; i < all.size(); ++i) {
      const DeliveredPacket& p = all[i];
      ++stats.delivered;
      const std::uint64_t latency = p.LatencyUs();
      stats.latency_us.Record(latency);
      obs::ObserveLabeled("stream.delivery.latency_us", controller_label,
                          latency);
      if (p.recovered) {
        ++stats.recovered;
        stats.recovered_latency_us.Record(latency);
        obs::ObserveLabeled("stream.delivery.recovered_latency_us",
                            controller_label, latency);
      }
      if (p.data !=
          StreamPayloadForId(config.payload_seed, p.id, config.symbol_bytes)) {
        ++stats.payload_mismatches;
      }
    }
  };

  // Prime the schedule.
  push_event(TimerEvent(0, EventType::kSourcePacket));
  push_event(
      TimerEvent(config.feedback_interval_us, EventType::kFeedbackGen));
  push_event(TimerEvent(config.tick_interval_us, EventType::kTick));

  while (!events.empty()) {
    Event e = events.top();
    events.pop();
    now_us = e.at_us;
    if (now_us > config.max_duration_us) break;

    switch (e.type) {
      case EventType::kSourcePacket: {
        if (all_pushed()) break;
        if (try_send_packet()) {
          if (!all_pushed()) {
            push_event(TimerEvent(now_us + config.packet_interval_us,
                                  EventType::kSourcePacket));
          }
        } else {
          // Window full: the flow-controlled source holds this packet
          // and pauses its cadence until an ack advances the window
          // (drained on feedback arrival).
          ++packets_waiting;
          cadence_paused = true;
          ++stats.backpressure_stalls;
          obs::Count("stream.session.backpressure");
        }
        break;
      }

      case EventType::kFrameArrival: {
        const BitVec bits = arq::SymbolsToLogicalBits(e.received);
        const ParsedFrame frame = ParseFrame(bits, config.symbol_bytes);
        if (!frame.valid) {
          if (e.was_repair) {
            ++stats.repair_frames_lost;
          } else {
            ++stats.source_frames_lost;
          }
          obs::CountLabeled("stream.session.frames_lost",
                            {{"type", e.was_repair ? "repair" : "source"}});
          break;
        }
        const auto id = ExpandSymbolId(frame.wire_id, decoder.highest_seen());
        if (!id.has_value()) {
          ++stats.ambiguous_id_dropped;
          obs::Count("stream.session.ambiguous_id_dropped");
          break;
        }
        if (frame.type == kTypeSource) {
          ++dest_source_frames_ok;
          decoder.AddSource(*id, frame.payload);
          if (rs_mode) {
            const std::uint64_t g = *id / gen_size;
            if ((g + 1) * gen_size > decoder.next_expected()) {
              auto& dec = rs_dec_for(g);
              dec.AddSourceSpan(*id - g * gen_size, frame.payload);
              try_rs_decode(g, dec);
            }
          }
        } else if (rs_mode) {
          // Parity frame: first_id is the generation base, seed the
          // parity index. Parity for a fully delivered generation is
          // stale; malformed descriptors are dropped.
          const std::uint64_t g = *id / gen_size;
          if (*id == g * gen_size && frame.span == gen_size &&
              frame.seed < config.rs_parity &&
              (g + 1) * gen_size > decoder.next_expected()) {
            auto& dec = rs_dec_for(g);
            dec.AddParitySpan(frame.seed, frame.payload);
            try_rs_decode(g, dec);
          }
        } else {
          StreamRepairSymbol repair;
          repair.first_id = *id;
          repair.span = frame.span;
          repair.seed = frame.seed;
          repair.data = frame.payload;
          decoder.AddRepair(repair);
        }
        release_deliverable();
        // Generations fully released in order need no decoder state.
        while (!rs_decs.empty() &&
               (rs_decs.begin()->first + 1) * gen_size <=
                   decoder.next_expected()) {
          rs_decs.erase(rs_decs.begin());
        }
        break;
      }

      case EventType::kFeedbackGen: {
        // Per-interval loss estimate over newly referenced ids.
        const std::size_t seen_delta =
            static_cast<std::size_t>(decoder.highest_seen() -
                                     prev_highest_seen);
        const std::size_t ok_delta =
            dest_source_frames_ok - prev_dest_source_ok;
        if (seen_delta > 0) {
          const double interval_loss = std::clamp(
              1.0 - static_cast<double>(ok_delta) /
                        static_cast<double>(seen_delta),
              0.0, 1.0);
          // EWMA; 0.25 reacts within a few intervals without chasing
          // single-interval noise.
          loss_estimate = 0.75 * loss_estimate + 0.25 * interval_loss;
        }
        prev_highest_seen = decoder.highest_seen();
        prev_dest_source_ok = dest_source_frames_ok;

        Event ack;
        ack.type = EventType::kFeedbackArrival;
        ack.at_us = now_us + config.propagation_us;
        ack.cumulative_ack = decoder.next_expected();
        ack.deficit = decoder.Deficit();
        ack.loss_estimate = loss_estimate;
        ack.generated_at_us = now_us;
        push_event(std::move(ack));
        stats.feedback_bits += kFeedbackBits;
        ++stats.feedback_frames;
        if (!flow_done()) {
          push_event(TimerEvent(now_us + config.feedback_interval_us,
                                EventType::kFeedbackGen));
        }
        break;
      }

      case EventType::kFeedbackArrival: {
        encoder.Advance(e.cumulative_ack);
        // Parity for fully acknowledged generations is dead weight.
        while (!gen_parity.empty() &&
               (gen_parity.begin()->first + 1) * gen_size <=
                   encoder.first_unacked()) {
          gen_parity_next.erase(gen_parity.begin()->first);
          gen_parity.erase(gen_parity.begin());
        }
        reported_deficit = e.deficit;
        last_feedback_gen_us = e.generated_at_us;
        // Drop repair-send records old enough that every future
        // feedback reflects them.
        const std::uint64_t horizon =
            e.generated_at_us > config.propagation_us
                ? e.generated_at_us - config.propagation_us
                : 0;
        while (!repair_send_times.empty() &&
               repair_send_times.front() < horizon) {
          repair_send_times.pop_front();
        }
        // The window advanced: admit backpressured packets first, so
        // their frames precede the repair that protects them.
        while (packets_waiting > 0 && try_send_packet()) --packets_waiting;
        if (cadence_paused && packets_waiting == 0) {
          cadence_paused = false;
          if (!all_pushed()) {
            push_event(TimerEvent(now_us + config.packet_interval_us,
                                  EventType::kSourcePacket));
          }
        }
        consult(ControllerEvent::kFeedbackReceived);
        if (config.closing_flush && all_pushed() && encoder.in_flight() > 0) {
          // Tail closing: identical for every controller (see config).
          // A zero reported deficit with nothing in flight means the
          // destination never saw the tail referenced — one repair both
          // references and (often) repairs it.
          const auto in = controller_inputs();
          std::size_t want = e.deficit > in.repairs_in_flight
                                 ? e.deficit - in.repairs_in_flight
                                 : 0;
          if (want == 0 && in.repairs_in_flight == 0) want = 1;
          emit_repairs(want);
        } else if ((cadence_paused || packets_waiting > 0) &&
                   encoder.in_flight() > 0 &&
                   controller_inputs().repairs_in_flight == 0) {
          // Stall watchdog, the mid-stream analogue of the closing
          // flush (and of TCP's zero-window probe): the window is full
          // and the controller left the air idle. In particular, when
          // an erasure burst swallows every frame of a full window the
          // destination has nothing to report a deficit against —
          // reported_deficit stays 0 and an ack-driven policy would
          // deadlock until max_duration. One repair per feedback round
          // references the window and restarts recovery; it charges
          // every controller identically.
          emit_repairs(1);
          obs::Count("stream.session.stall_probe");
        }
        break;
      }

      case EventType::kTick: {
        consult(ControllerEvent::kTick);
        if (!flow_done()) {
          push_event(TimerEvent(now_us + config.tick_interval_us,
                                EventType::kTick));
        }
        break;
      }
    }

    if (flow_done() && events.empty()) break;
  }

  stats.undelivered = config.total_packets - queue.total_released();
  stats.decoder_stale_dropped = decoder.stale_dropped();
  stats.decoder_overflow_dropped = decoder.overflow_dropped();
  stats.finished_at_us = now_us;
  obs::Count("stream.session.delivered", stats.delivered);
  obs::Count("stream.session.recovered", stats.recovered);
  return stats;
}

}  // namespace ppr::stream
