#include "stream/stream_ids.h"

namespace ppr::stream {

std::optional<SymbolId> ExpandSymbolId(std::uint16_t wire_id,
                                       SymbolId reference) {
  // Candidates share the reference's era or sit one era to either side;
  // one of the three is always the globally closest match.
  const SymbolId era = reference & ~(kWireIdSpan - 1);
  std::optional<SymbolId> best;
  std::uint64_t best_distance = 0;
  for (int delta = -1; delta <= 1; ++delta) {
    if (delta < 0 && era < kWireIdSpan) continue;
    const SymbolId candidate =
        era + static_cast<SymbolId>(delta) * kWireIdSpan + wire_id;
    const std::uint64_t distance =
        candidate >= reference ? candidate - reference : reference - candidate;
    if (!best.has_value() || distance < best_distance) {
      best = candidate;
      best_distance = distance;
    }
  }
  if (!best.has_value() || best_distance > kMaxAmbiguousIdGap) {
    return std::nullopt;
  }
  return best;
}

}  // namespace ppr::stream
