// Sliding-window RLNC for live streams: the continuous counterpart of
// the per-packet CodedRepairSession round loop.
//
// The source keeps a ring-buffered window of in-flight source symbols
// keyed by monotonically increasing SymbolIds. Repair symbols are
// random linear combinations spanning exactly the unacknowledged
// window [first_unacked, next_id); cumulative acknowledgments advance
// the window and retire the oldest symbols. The destination mirrors
// the window: source symbols land verbatim, repair symbols become
// equations over the window's still-unknown columns, and incremental
// Gauss-Jordan elimination recovers losses as soon as enough
// independent equations span them.
//
// Window advance never re-eliminates the surviving basis. The decoder
// substitutes every known symbol out of an equation at ingest (and a
// recovered pivot column is zero in every other row by Gauss-Jordan
// reduction), so by the time the in-order frontier passes a column its
// coefficient is zero in every banked row — retiring it is pure
// bookkeeping. Delivered symbols park in a retired ring one window
// deep, so a late repair spanning an already-advanced prefix still
// substitutes those ids instead of being dropped; only repairs
// reaching back past the retired ring are discarded as stale.
//
// Shapes follow flec's window_framework (ring-buffered symbol stores,
// ambiguous-ID-gap windowing) and FEC-SRv6's convolutional RLC (repair
// over a moving generation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/equation_sink.h"
#include "stream/stream_ids.h"

namespace ppr::stream {

// One repair symbol over the window [first_id, first_id + span).
// `seed` regenerates the span coefficients on both sides
// (fec::RepairCoefficients), so the wire cost is a descriptor plus the
// coded payload, never a coefficient vector.
struct StreamRepairSymbol {
  SymbolId first_id = 0;
  std::uint16_t span = 0;
  std::uint32_t seed = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const StreamRepairSymbol&) const = default;
};

// Source side: the ring of unacknowledged source symbols.
class WindowEncoder {
 public:
  WindowEncoder(std::size_t capacity, std::size_t symbol_bytes);

  std::size_t capacity() const { return ring_.size(); }
  std::size_t symbol_bytes() const { return symbol_bytes_; }
  SymbolId next_id() const { return next_id_; }
  SymbolId first_unacked() const { return first_unacked_; }
  std::size_t in_flight() const {
    return static_cast<std::size_t>(next_id_ - first_unacked_);
  }
  bool Full() const { return in_flight() == capacity(); }

  // Admits one source symbol (must be symbol_bytes long) and returns
  // its id — or nullopt when the window is full (backpressure: the
  // caller holds the packet until an acknowledgment advances the
  // window).
  std::optional<SymbolId> Push(std::vector<std::uint8_t> data);

  // A repair symbol spanning the whole unacknowledged window. Requires
  // in_flight() > 0.
  StreamRepairSymbol MakeRepair(std::uint32_t seed) const;

  // Cumulative acknowledgment: every id < `cumulative_ack` is
  // delivered. Returns how many symbols were retired. Acks below the
  // current window are stale no-ops; acks beyond next_id() clamp.
  std::size_t Advance(SymbolId cumulative_ack);

  // In-flight symbol by id; requires first_unacked() <= id < next_id().
  const std::vector<std::uint8_t>& Symbol(SymbolId id) const;

 private:
  std::size_t symbol_bytes_;
  SymbolId next_id_ = 0;
  SymbolId first_unacked_ = 0;
  std::vector<std::vector<std::uint8_t>> ring_;  // slot = id % capacity
};

// One in-order deliverable symbol popped from the decoder.
struct DeliverableSymbol {
  SymbolId id = 0;
  std::vector<std::uint8_t> data;
  bool recovered = false;  // true: decoded from repair, not received verbatim
};

// Destination side: known-symbol ring plus an equation basis over the
// window's unknown columns.
class WindowDecoder : public fec::EquationSink {
 public:
  WindowDecoder(std::size_t capacity, std::size_t symbol_bytes);

  std::size_t capacity() const { return capacity_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  // In-order frontier: every id below it has been popped via
  // PopDeliverable (and acknowledging it is cumulative).
  SymbolId next_expected() const { return base_; }
  // One past the highest id any frame has referenced.
  SymbolId highest_seen() const { return highest_seen_; }

  // Ids in [next_expected, highest_seen) that are neither known nor
  // pivot-covered minus banked rank — i.e. how many more independent
  // equations full recovery of the seen span needs.
  std::size_t Deficit() const;
  // Known or recovered symbols waiting in the window (including ones
  // not yet deliverable because of an earlier gap).
  std::size_t known_in_window() const { return known_count_; }
  std::size_t rank() const { return rank_; }

  // A source symbol received verbatim (id already expanded). Returns
  // true if it was new information. Frames beyond the window capacity
  // or older than the retired ring are dropped (false). `recovered`
  // marks a symbol decoded elsewhere (e.g. the Reed-Solomon generation
  // path) rather than received, for delivery provenance.
  bool AddSource(SymbolId id, std::vector<std::uint8_t> data,
                 bool recovered = false);

  // A repair equation; known symbols (delivered ones included, via the
  // retired ring) are substituted out and the remainder joins the
  // basis. Returns true if the rank increased. Stale repairs (span
  // entirely known, or reaching back past the retired ring) and
  // repairs overrunning the window return false.
  bool AddRepair(const StreamRepairSymbol& repair);

  // EquationSink: a dense equation anchored at the frontier — coefs[i]
  // applies to symbol next_expected() + i. Known columns (delivered or
  // recovered) are substituted out before the remainder joins the
  // basis, exactly as AddRepair does for seed-expanded equations, so a
  // driver holding "some EquationSink" (the flow engine, a
  // collision-recovery listener) feeds the stream decoder the same way
  // it feeds fec::RlncDecoder. Returns true if the rank increased.
  std::size_t equation_width() const override { return capacity_; }
  std::size_t equation_bytes() const override { return symbol_bytes_; }
  bool ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                           std::span<const std::uint8_t> data) override;

  // Pops the known prefix at the frontier, advancing the window. The
  // caller timestamps and releases them (stream/delivery_queue.h).
  std::vector<DeliverableSymbol> PopDeliverable();

  // Diagnostics for dropped input.
  std::size_t stale_dropped() const { return stale_dropped_; }
  std::size_t overflow_dropped() const { return overflow_dropped_; }

 private:
  struct Row {
    // coefs[i] applies to symbol base_ + i; Gauss-Jordan reduced
    // against every other pivot row, zero on every known column.
    std::vector<std::uint8_t> coefs;
    std::vector<std::uint8_t> data;
  };

  std::size_t Slot(SymbolId id) const {
    return static_cast<std::size_t>(id % capacity_);
  }
  bool Known(SymbolId id) const;
  const std::vector<std::uint8_t>& KnownData(SymbolId id) const;
  // Substitutes knowns out of a window-anchored dense row, reduces it
  // against the basis, inserts the surviving pivot, and extracts any
  // rows elimination turned into unit vectors. Returns true if the
  // rank increased.
  bool AddRow(std::vector<std::uint8_t> coefs, std::vector<std::uint8_t> data);
  void SetKnown(SymbolId id, std::vector<std::uint8_t> data, bool recovered);
  void ExtractUnitRows(std::size_t hint_col);

  std::size_t capacity_;
  std::size_t symbol_bytes_;
  SymbolId base_ = 0;          // in-order frontier == window column 0
  SymbolId highest_seen_ = 0;  // one past the highest referenced id
  std::size_t known_count_ = 0;
  std::size_t rank_ = 0;
  std::size_t stale_dropped_ = 0;
  std::size_t overflow_dropped_ = 0;
  // Active window [base_, base_ + capacity): known symbol data (slot =
  // id % capacity) with recovery provenance.
  std::vector<std::optional<std::vector<std::uint8_t>>> known_;
  std::vector<bool> recovered_;
  // Retired ring [base_ - capacity, base_): delivered data kept for
  // substituting late repairs that span the advanced prefix.
  std::vector<std::optional<std::vector<std::uint8_t>>> retired_;
  // pivots_[i] is the basis row whose leading column is base_ + i;
  // shifted on advance (retired columns are zero everywhere, so the
  // shift never re-eliminates).
  std::vector<std::optional<Row>> pivots_;
};

}  // namespace ppr::stream
