#include "stream/redundancy.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace ppr::stream {

namespace {

class FixedRateController final : public RedundancyController {
 public:
  explicit FixedRateController(FixedRateConfig config) : config_(config) {}

  std::string_view name() const override { return "fixed-rate"; }

  std::size_t RepairBudget(ControllerEvent event,
                           const ControllerInputs& in) override {
    if (event != ControllerEvent::kSourceSent || in.in_flight == 0) return 0;
    if (++since_repair_ < config_.source_per_repair) return 0;
    since_repair_ = 0;
    return 1;
  }

 private:
  FixedRateConfig config_;
  std::size_t since_repair_ = 0;
};

class AckDeficitController final : public RedundancyController {
 public:
  explicit AckDeficitController(AckDeficitConfig config) : config_(config) {}

  std::string_view name() const override { return "ack-deficit"; }

  std::size_t RepairBudget(ControllerEvent event,
                           const ControllerInputs& in) override {
    if (event != ControllerEvent::kFeedbackReceived || in.in_flight == 0) {
      return 0;
    }
    // The receiver needs `reported_deficit` more equations; repair
    // still in flight will satisfy part of it. Purely reactive: the
    // price is a feedback interval + RTT of latency on every loss, and
    // a lost repair is only re-requested by the NEXT feedback.
    if (in.reported_deficit <= in.repairs_in_flight) return 0;
    return in.reported_deficit - in.repairs_in_flight;
  }

 private:
  [[maybe_unused]] AckDeficitConfig config_;
};

class DeadlineController final : public RedundancyController {
 public:
  explicit DeadlineController(DeadlineConfig config) : config_(config) {}

  std::string_view name() const override { return "deadline"; }

  std::size_t RepairBudget(ControllerEvent event,
                           const ControllerInputs& in) override {
    // Track when the session last emitted any repair (whichever path
    // asked for it): the protect burst suppresses itself while repair
    // is already on the wire, like fast retransmit.
    if (in.repair_sent != last_repair_sent_) {
      last_repair_sent_ = in.repair_sent;
      last_repair_activity_us_ = in.now_us;
    }
    if (in.in_flight == 0) return 0;
    switch (event) {
      case ControllerEvent::kSourceSent: {
        // Proactive cover: each source symbol is lost with probability
        // ~loss, so accrue enough repair credit that expected losses
        // are already covered when feedback eventually reports them.
        const double loss =
            std::max(in.loss_estimate, config_.min_loss_estimate);
        credit_ += config_.cover_factor * loss / (1.0 - std::min(loss, 0.9));
        if (credit_ < 1.0) return 0;  // may be negative after a Debit
        const auto whole = static_cast<std::size_t>(credit_);
        credit_ -= static_cast<double>(whole);
        obs::Count("stream.ctrl.deadline.credit_repairs", whole);
        return whole;
      }
      case ControllerEvent::kFeedbackReceived:
        // Also honor the receiver's explicit ask (minus in-flight) so a
        // burst the proactive cover missed still gets repaired.
        if (in.reported_deficit > in.repairs_in_flight) {
          const std::size_t ask = in.reported_deficit - in.repairs_in_flight;
          obs::Count("stream.ctrl.deadline.deficit_repairs", ask);
          Debit(ask);
          return ask;
        }
        return 0;
      case ControllerEvent::kTick: {
        // Protect condition (flec `abc`): the oldest undelivered symbol
        // is running out of deadline — stop waiting for feedback and
        // blanket the window now.
        const auto threshold = static_cast<std::uint64_t>(
            config_.protect_ratio * static_cast<double>(config_.deadline_us));
        if (in.oldest_unacked_age_us < threshold) return 0;
        if (in.now_us - last_protect_us_ < config_.protect_cooldown_us &&
            last_protect_us_ != 0) {
          return 0;
        }
        // Repair already in the air can still unstick the tail; burst
        // only once it has had a chance and the tail is still old.
        if (in.now_us - last_repair_activity_us_ < config_.protect_quiet_us) {
          return 0;
        }
        // No reported deficit means no evidence the receiver is missing
        // equations — an old tail with a clean deficit is the session
        // stall watchdog's job, not protect's.
        if (in.reported_deficit == 0) return 0;
        last_protect_us_ = in.now_us;
        // Size the burst by the receiver's last reported deficit (stale,
        // but the best evidence of how many equations the stuck tail
        // still needs), with one as the floor — a single repair spanning
        // the window both references the tail and often recovers it.
        const auto burst =
            std::min(std::max<std::size_t>(in.reported_deficit, 1),
                     config_.max_protect_burst);
        obs::Count("stream.ctrl.deadline.protect_repairs", burst);
        Debit(burst);
        return burst;
      }
    }
    return 0;
  }

 private:
  // Every repair draws from the same proactive budget: reactive and
  // protect emissions debit the credit accumulator so the long-run
  // spend stays near cover_factor * loss / (1 - loss) per source
  // symbol no matter which path fired. The floor keeps one bad burst
  // from suppressing proactive cover for the rest of the flow.
  void Debit(std::size_t repairs) {
    credit_ = std::max(credit_ - static_cast<double>(repairs),
                       -config_.max_budget_debt);
  }

  DeadlineConfig config_;
  double credit_ = 0.0;
  std::uint64_t last_protect_us_ = 0;
  std::uint64_t last_repair_sent_ = 0;
  std::uint64_t last_repair_activity_us_ = 0;
};

}  // namespace

std::unique_ptr<RedundancyController> MakeFixedRateController(
    FixedRateConfig config) {
  return std::make_unique<FixedRateController>(config);
}

std::unique_ptr<RedundancyController> MakeAckDeficitController(
    AckDeficitConfig config) {
  return std::make_unique<AckDeficitController>(config);
}

std::unique_ptr<RedundancyController> MakeDeadlineController(
    DeadlineConfig config) {
  return std::make_unique<DeadlineController>(config);
}

std::string_view ControllerKindName(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kFixedRate:
      return "fixed-rate";
    case ControllerKind::kAckDeficit:
      return "ack-deficit";
    case ControllerKind::kDeadline:
      return "deadline";
  }
  return "unknown";
}

std::unique_ptr<RedundancyController> MakeController(ControllerKind kind) {
  switch (kind) {
    case ControllerKind::kFixedRate:
      return MakeFixedRateController();
    case ControllerKind::kAckDeficit:
      return MakeAckDeficitController();
    case ControllerKind::kDeadline:
      return MakeDeadlineController();
  }
  return MakeFixedRateController();
}

}  // namespace ppr::stream
