#include "stream/window.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fec/gf256.h"
#include "fec/rlnc.h"
#include "obs/obs.h"

namespace ppr::stream {

WindowEncoder::WindowEncoder(std::size_t capacity, std::size_t symbol_bytes)
    : symbol_bytes_(symbol_bytes), ring_(capacity) {
  if (capacity == 0 || symbol_bytes == 0) {
    throw std::invalid_argument("WindowEncoder: empty window");
  }
}

std::optional<SymbolId> WindowEncoder::Push(std::vector<std::uint8_t> data) {
  if (data.size() != symbol_bytes_) {
    throw std::invalid_argument("WindowEncoder::Push: symbol size mismatch");
  }
  if (Full()) return std::nullopt;
  const SymbolId id = next_id_++;
  ring_[static_cast<std::size_t>(id % capacity())] = std::move(data);
  return id;
}

StreamRepairSymbol WindowEncoder::MakeRepair(std::uint32_t seed) const {
  if (in_flight() == 0) {
    throw std::logic_error("WindowEncoder::MakeRepair: empty window");
  }
  StreamRepairSymbol out;
  out.first_id = first_unacked_;
  out.span = static_cast<std::uint16_t>(in_flight());
  out.seed = seed;
  out.data.assign(symbol_bytes_, 0);
  const auto coefs = fec::RepairCoefficients(seed, out.span);
  std::vector<fec::GfTerm> terms;
  terms.reserve(out.span);
  for (std::size_t j = 0; j < out.span; ++j) {
    if (coefs[j] == 0) continue;
    terms.push_back({coefs[j], Symbol(first_unacked_ + j)});
  }
  fec::GfAxpyN(out.data, terms);
  return out;
}

std::size_t WindowEncoder::Advance(SymbolId cumulative_ack) {
  const SymbolId target = std::min(cumulative_ack, next_id_);
  if (target <= first_unacked_) return 0;
  const std::size_t retired = static_cast<std::size_t>(target - first_unacked_);
  first_unacked_ = target;
  return retired;
}

const std::vector<std::uint8_t>& WindowEncoder::Symbol(SymbolId id) const {
  assert(id >= first_unacked_ && id < next_id_);
  return ring_[static_cast<std::size_t>(id % capacity())];
}

// ---------------------------------------------------------------- decoder

WindowDecoder::WindowDecoder(std::size_t capacity, std::size_t symbol_bytes)
    : capacity_(capacity),
      symbol_bytes_(symbol_bytes),
      known_(capacity),
      recovered_(capacity, false),
      retired_(capacity),
      pivots_(capacity) {
  if (capacity == 0 || symbol_bytes == 0) {
    throw std::invalid_argument("WindowDecoder: empty window");
  }
}

std::size_t WindowDecoder::Deficit() const {
  const std::size_t seen = static_cast<std::size_t>(highest_seen_ - base_);
  return seen - known_count_ - rank_;
}

bool WindowDecoder::Known(SymbolId id) const {
  return known_[Slot(id)].has_value();
}

const std::vector<std::uint8_t>& WindowDecoder::KnownData(SymbolId id) const {
  assert(Known(id));
  return *known_[Slot(id)];
}

bool WindowDecoder::AddSource(SymbolId id, std::vector<std::uint8_t> data,
                              bool recovered) {
  if (data.size() != symbol_bytes_) {
    throw std::invalid_argument("WindowDecoder::AddSource: size mismatch");
  }
  if (id < base_) {  // already delivered
    ++stale_dropped_;
    return false;
  }
  if (id >= base_ + capacity_) {
    ++overflow_dropped_;
    return false;
  }
  highest_seen_ = std::max(highest_seen_, id + 1);
  if (Known(id)) return false;  // duplicate
  const std::size_t col = static_cast<std::size_t>(id - base_);
  if (pivots_[col].has_value()) {
    // The column already carries an equation (lead coef 1 at `col`,
    // Gauss-Jordan reduced elsewhere). The verbatim symbol makes the
    // column known; the row, with the now-known term substituted out,
    // still relates the OTHER unknowns it references — re-bank it.
    Row row = std::move(*pivots_[col]);
    pivots_[col].reset();
    --rank_;
    row.coefs[col] = 0;
    fec::GfAxpy(row.data, 1, data);
    SetKnown(id, std::move(data), recovered);
    AddRow(std::move(row.coefs), std::move(row.data));
    ExtractUnitRows(col);
    return true;
  }
  SetKnown(id, std::move(data), recovered);
  ExtractUnitRows(col);
  return true;
}

bool WindowDecoder::AddRepair(const StreamRepairSymbol& repair) {
  if (repair.data.size() != symbol_bytes_ || repair.span == 0) {
    throw std::invalid_argument("WindowDecoder::AddRepair: bad shape");
  }
  const SymbolId end = repair.first_id + repair.span;
  if (end <= base_) {  // spans only delivered symbols
    ++stale_dropped_;
    return false;
  }
  if (repair.first_id + capacity_ < base_ ||
      (base_ >= capacity_ && repair.first_id < base_ - capacity_)) {
    // Reaches back past the retired ring: the delivered data needed to
    // substitute the prefix is gone.
    ++stale_dropped_;
    return false;
  }
  if (end > base_ + capacity_) {
    ++overflow_dropped_;
    return false;
  }
  highest_seen_ = std::max(highest_seen_, end);

  // Substitute every known symbol out of the equation; what is left is
  // a relation over the window's unknown columns only.
  std::vector<std::uint8_t> coefs(capacity_, 0);
  std::vector<std::uint8_t> data = repair.data;
  const auto span_coefs = fec::RepairCoefficients(repair.seed, repair.span);
  std::vector<fec::GfTerm> known_terms;
  bool any_unknown = false;
  for (std::size_t j = 0; j < repair.span; ++j) {
    const std::uint8_t c = span_coefs[j];
    if (c == 0) continue;
    const SymbolId id = repair.first_id + j;
    if (id < base_) {
      assert(retired_[Slot(id)].has_value());
      known_terms.push_back({c, *retired_[Slot(id)]});
    } else if (Known(id)) {
      known_terms.push_back({c, KnownData(id)});
    } else {
      coefs[static_cast<std::size_t>(id - base_)] = c;
      any_unknown = true;
    }
  }
  fec::GfAxpyN(data, known_terms);
  if (!any_unknown) return false;  // everything already known
  return AddRow(std::move(coefs), std::move(data));
}

bool WindowDecoder::ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                                        std::span<const std::uint8_t> data) {
  if (coefs.size() != capacity_ || data.size() != symbol_bytes_) {
    throw std::invalid_argument("WindowDecoder::ConsumeEquationSpan: shape");
  }
  // Window-anchored columns can never reach back before base_, so the
  // retired-ring staleness cases of AddRepair cannot arise: only the
  // known-column substitution remains.
  std::vector<std::uint8_t> row_coefs(capacity_, 0);
  std::vector<std::uint8_t> row_data(data.begin(), data.end());
  std::vector<fec::GfTerm> known_terms;
  bool any_unknown = false;
  SymbolId end = base_;
  for (std::size_t i = 0; i < capacity_; ++i) {
    const std::uint8_t c = coefs[i];
    if (c == 0) continue;
    const SymbolId id = base_ + i;
    end = id + 1;
    if (Known(id)) {
      known_terms.push_back({c, KnownData(id)});
    } else {
      row_coefs[i] = c;
      any_unknown = true;
    }
  }
  if (end == base_) return false;  // all-zero equation
  highest_seen_ = std::max(highest_seen_, end);
  fec::GfAxpyN(row_data, known_terms);
  if (!any_unknown) return false;  // everything already known
  return AddRow(std::move(row_coefs), std::move(row_data));
}

bool WindowDecoder::AddRow(std::vector<std::uint8_t> coefs,
                           std::vector<std::uint8_t> data) {
  // Forward-eliminate against the basis. Pivot rows are Gauss-Jordan
  // reduced (zero at every other pivot column), so the factors can be
  // read upfront and the sweep batched, as in fec::RlncDecoder.
  std::vector<fec::GfTerm> coef_terms, data_terms;
  for (std::size_t j = 0; j < capacity_; ++j) {
    if (coefs[j] == 0 || !pivots_[j].has_value()) continue;
    coef_terms.push_back({coefs[j], pivots_[j]->coefs});
    data_terms.push_back({coefs[j], pivots_[j]->data});
  }
  fec::GfAxpyN(coefs, coef_terms);
  fec::GfAxpyN(data, data_terms);

  std::size_t lead = capacity_;
  for (std::size_t j = 0; j < capacity_; ++j) {
    if (coefs[j] != 0) {
      lead = j;
      break;
    }
  }
  if (lead == capacity_) return false;  // linearly dependent

  const std::uint8_t inv = fec::GfInv(coefs[lead]);
  fec::GfScale(coefs, inv);
  fec::GfScale(data, inv);

  for (std::size_t j = 0; j < capacity_; ++j) {
    if (!pivots_[j].has_value()) continue;
    const std::uint8_t factor = pivots_[j]->coefs[lead];
    if (factor == 0) continue;
    fec::GfAxpy(pivots_[j]->coefs, factor, coefs);
    fec::GfAxpy(pivots_[j]->data, factor, data);
  }

  pivots_[lead] = Row{std::move(coefs), std::move(data)};
  ++rank_;
  ExtractUnitRows(lead);
  return true;
}

void WindowDecoder::SetKnown(SymbolId id, std::vector<std::uint8_t> data,
                             bool recovered) {
  const std::size_t col = static_cast<std::size_t>(id - base_);
  assert(col < capacity_ && !known_[Slot(id)].has_value());
  assert(!pivots_[col].has_value());
  // Substitute the new known out of every row still referencing the
  // column (possible when it was a non-pivot column).
  for (std::size_t j = 0; j < capacity_; ++j) {
    if (!pivots_[j].has_value()) continue;
    const std::uint8_t c = pivots_[j]->coefs[col];
    if (c == 0) continue;
    fec::GfAxpy(pivots_[j]->data, c, data);
    pivots_[j]->coefs[col] = 0;
  }
  known_[Slot(id)] = std::move(data);
  recovered_[Slot(id)] = recovered;
  ++known_count_;
}

void WindowDecoder::ExtractUnitRows(std::size_t hint_col) {
  // A pivot row reduced to a single nonzero coefficient IS its symbol:
  // extract it as known and retire the row. Extraction substitutes
  // nothing (the pivot column is zero in every other row by
  // Gauss-Jordan reduction), but SetKnown's substitution of
  // still-referenced non-pivot columns can shrink further rows to unit
  // weight, so iterate to a fixpoint.
  (void)hint_col;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t j = 0; j < capacity_; ++j) {
      if (!pivots_[j].has_value()) continue;
      const Row& row = *pivots_[j];
      bool unit = true;
      for (std::size_t k = 0; k < capacity_; ++k) {
        if (k != j && row.coefs[k] != 0) {
          unit = false;
          break;
        }
      }
      if (!unit) continue;
      assert(row.coefs[j] == 1);
      std::vector<std::uint8_t> data = std::move(pivots_[j]->data);
      pivots_[j].reset();
      --rank_;
      SetKnown(base_ + j, std::move(data), /*recovered=*/true);
      obs::Count("stream.window.recovered");
      changed = true;
    }
  }
}

std::vector<DeliverableSymbol> WindowDecoder::PopDeliverable() {
  std::vector<DeliverableSymbol> out;
  while (base_ < highest_seen_ && known_[Slot(base_)].has_value()) {
    DeliverableSymbol d;
    d.id = base_;
    d.data = std::move(*known_[Slot(base_)]);
    d.recovered = recovered_[Slot(base_)];
    known_[Slot(base_)].reset();
    recovered_[Slot(base_)] = false;
    --known_count_;
    // Park the delivered data in the retired ring (same slot: the ring
    // index of id and id + capacity coincide) for late repairs that
    // still span it.
    retired_[Slot(base_)] = d.data;
    out.push_back(std::move(d));
    ++base_;
  }
  if (out.empty()) return out;
  // Advance the basis alignment. Every retired column is known, hence
  // zero in every surviving row — dropping the prefix re-eliminates
  // nothing.
  const std::size_t shift = out.size();
  for (std::size_t j = 0; j < shift; ++j) assert(!pivots_[j].has_value());
  pivots_.erase(pivots_.begin(),
                pivots_.begin() + static_cast<std::ptrdiff_t>(shift));
  pivots_.resize(capacity_);
  for (auto& pivot : pivots_) {
    if (!pivot.has_value()) continue;
    auto& coefs = pivot->coefs;
    assert(std::all_of(coefs.begin(),
                       coefs.begin() + static_cast<std::ptrdiff_t>(shift),
                       [](std::uint8_t c) { return c == 0; }));
    coefs.erase(coefs.begin(),
                coefs.begin() + static_cast<std::ptrdiff_t>(shift));
    coefs.resize(capacity_, 0);
  }
  return out;
}

}  // namespace ppr::stream
