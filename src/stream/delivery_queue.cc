#include "stream/delivery_queue.h"

#include <utility>

#include "obs/obs.h"

namespace ppr::stream {

void DeliveryQueue::OnSourceSent(SymbolId id, std::uint64_t now_us) {
  sent_at_.emplace(id, now_us);
}

std::size_t DeliveryQueue::Release(std::vector<DeliverableSymbol> symbols,
                                   std::uint64_t now_us) {
  const std::size_t n = symbols.size();
  for (auto& s : symbols) {
    DeliveredPacket p;
    p.id = s.id;
    p.data = std::move(s.data);
    p.recovered = s.recovered;
    p.delivered_at_us = now_us;
    if (auto it = sent_at_.find(s.id); it != sent_at_.end()) {
      p.sent_at_us = it->second;
      sent_at_.erase(it);
    } else {
      p.sent_at_us = now_us;  // unknown origin: zero latency, not negative
    }
    obs::Observe("stream.delivery.latency_us", p.LatencyUs());
    if (p.recovered) {
      obs::Observe("stream.delivery.recovered_latency_us", p.LatencyUs());
    }
    delivered_.push_back(std::move(p));
  }
  total_released_ += n;
  return n;
}

std::vector<DeliveredPacket> DeliveryQueue::TakeDelivered() {
  return std::exchange(delivered_, {});
}

}  // namespace ppr::stream
