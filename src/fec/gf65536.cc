#include "fec/gf65536.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define PPR_GF16_X86 1
#include <immintrin.h>
#endif

namespace ppr::fec {
namespace {

struct Tables {
  // exp_ is doubled so log-domain sums index it without reduction.
  Gf16 exp_[2 * 65535];
  // log_[0] is a harmless 0 sentinel; callers never take log(0).
  Gf16 log_[65536];
};

const Tables& GetTables() {
  static const Tables t = [] {
    Tables tab;
    tab.log_[0] = 0;
    unsigned x = 1;
    for (unsigned i = 0; i < 65535; ++i) {
      tab.exp_[i] = static_cast<Gf16>(x);
      tab.exp_[i + 65535] = static_cast<Gf16>(x);
      tab.log_[x] = static_cast<Gf16>(i);
      x <<= 1;
      if (x & 0x10000) x ^= kGf16PrimitivePoly;
    }
    return tab;
  }();
  return t;
}

inline Gf16 MulTab(const Tables& t, Gf16 a, Gf16 b) {
  if (a == 0 || b == 0) return 0;
  return t.exp_[static_cast<unsigned>(t.log_[a]) + t.log_[b]];
}

// dst ^= src, word-wide over the byte image (spans carry no alignment
// guarantee, so everything goes through memcpy).
void XorWords(Gf16* dst, const Gf16* src, std::size_t n) {
  auto* d8 = reinterpret_cast<std::uint8_t*>(dst);
  const auto* s8 = reinterpret_cast<const std::uint8_t*>(src);
  const std::size_t bytes = n * sizeof(Gf16);
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t d, s;
    std::memcpy(&d, d8 + i, 8);
    std::memcpy(&s, s8 + i, 8);
    d ^= s;
    std::memcpy(d8 + i, &d, 8);
  }
  for (; i < bytes; ++i) d8[i] ^= s8[i];
}

void AxpyScalar(Gf16* dst, Gf16 coef, const Gf16* src, std::size_t n) {
  const Tables& t = GetTables();
  const unsigned lc = t.log_[coef];
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] != 0) dst[i] ^= t.exp_[lc + t.log_[src[i]]];
  }
}

void ScaleScalar(Gf16* data, Gf16 coef, std::size_t n) {
  const Tables& t = GetTables();
  const unsigned lc = t.log_[coef];
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] != 0) data[i] = t.exp_[lc + t.log_[data[i]]];
  }
}

#if defined(PPR_GF16_X86)

bool Avx2Supported() {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

// Split-nibble product tables for one 16-bit coefficient: the operand
// v = n0 + (n1<<4) + (n2<<8) + (n3<<12), and multiplication
// distributes over that XOR decomposition, so
//   coef*v = T[0][n0] ^ T[1][n1] ^ T[2][n2] ^ T[3][n3],
// with each T[j][.] a 16-bit product split into a low-byte and a
// high-byte PSHUFB table.
struct Mul16Tables {
  std::uint8_t lo[4][16];
  std::uint8_t hi[4][16];
};

Mul16Tables BuildMul16Tables(Gf16 coef) {
  const Tables& t = GetTables();
  Mul16Tables m;
  for (unsigned nib = 0; nib < 4; ++nib) {
    for (unsigned v = 0; v < 16; ++v) {
      const Gf16 p = MulTab(t, coef, static_cast<Gf16>(v << (4 * nib)));
      m.lo[nib][v] = static_cast<std::uint8_t>(p & 0xFF);
      m.hi[nib][v] = static_cast<std::uint8_t>(p >> 8);
    }
  }
  return m;
}

// The loaded/broadcast form of Mul16Tables plus the constant masks the
// kernels share.
struct Mul16Vecs {
  __m256i lo[4];
  __m256i hi[4];
  __m256i nib;
  __m256i byte;
};

__attribute__((target("avx2"))) inline Mul16Vecs LoadMul16(Gf16 coef) {
  const Mul16Tables m = BuildMul16Tables(coef);
  Mul16Vecs v;
  for (unsigned j = 0; j < 4; ++j) {
    v.lo[j] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(m.lo[j])));
    v.hi[j] = _mm256_broadcastsi128_si256(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(m.hi[j])));
  }
  v.nib = _mm256_set1_epi8(0x0F);
  v.byte = _mm256_set1_epi16(0x00FF);
  return v;
}

// coef * [a, b] for two vectors of 16 words each: deinterleave into a
// low-byte and a high-byte plane (PACKUSWB + lane fixup), four PSHUFB
// lookups per output plane, reinterleave (PUNPCK + lane fixup).
__attribute__((target("avx2"))) inline void Mul16Pair(const Mul16Vecs& v,
                                                      __m256i a, __m256i b,
                                                      __m256i* out_a,
                                                      __m256i* out_b) {
  const __m256i lo = _mm256_permute4x64_epi64(
      _mm256_packus_epi16(_mm256_and_si256(a, v.byte),
                          _mm256_and_si256(b, v.byte)),
      0xD8);
  const __m256i hi = _mm256_permute4x64_epi64(
      _mm256_packus_epi16(_mm256_srli_epi16(a, 8), _mm256_srli_epi16(b, 8)),
      0xD8);
  const __m256i n0 = _mm256_and_si256(lo, v.nib);
  const __m256i n1 = _mm256_and_si256(_mm256_srli_epi16(lo, 4), v.nib);
  const __m256i n2 = _mm256_and_si256(hi, v.nib);
  const __m256i n3 = _mm256_and_si256(_mm256_srli_epi16(hi, 4), v.nib);
  const __m256i plo = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_shuffle_epi8(v.lo[0], n0),
                       _mm256_shuffle_epi8(v.lo[1], n1)),
      _mm256_xor_si256(_mm256_shuffle_epi8(v.lo[2], n2),
                       _mm256_shuffle_epi8(v.lo[3], n3)));
  const __m256i phi = _mm256_xor_si256(
      _mm256_xor_si256(_mm256_shuffle_epi8(v.hi[0], n0),
                       _mm256_shuffle_epi8(v.hi[1], n1)),
      _mm256_xor_si256(_mm256_shuffle_epi8(v.hi[2], n2),
                       _mm256_shuffle_epi8(v.hi[3], n3)));
  const __m256i r1 = _mm256_unpacklo_epi8(plo, phi);
  const __m256i r2 = _mm256_unpackhi_epi8(plo, phi);
  *out_a = _mm256_permute2x128_si256(r1, r2, 0x20);
  *out_b = _mm256_permute2x128_si256(r1, r2, 0x31);
}

__attribute__((target("avx2"))) void AxpyAvx2(Gf16* dst, Gf16 coef,
                                              const Gf16* src, std::size_t n) {
  const Mul16Vecs v = LoadMul16(coef);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 16));
    __m256i pa, pb;
    Mul16Pair(v, a, b, &pa, &pb);
    const __m256i da =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i db =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 16));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(da, pa));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 16),
                        _mm256_xor_si256(db, pb));
  }
  AxpyScalar(dst + i, coef, src + i, n - i);
}

__attribute__((target("avx2"))) void ScaleAvx2(Gf16* data, Gf16 coef,
                                               std::size_t n) {
  const Mul16Vecs v = LoadMul16(coef);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i + 16));
    __m256i pa, pb;
    Mul16Pair(v, a, b, &pa, &pb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i), pa);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i + 16), pb);
  }
  ScaleScalar(data + i, coef, n - i);
}

// Fused butterflies: both symbols stream through the core once per
// call instead of once for the multiply and again for the XOR.
__attribute__((target("avx2"))) void ButterflyFwdAvx2(Gf16* x, Gf16* y,
                                                      Gf16 skew,
                                                      std::size_t n) {
  const Mul16Vecs v = LoadMul16(skew);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i ya =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i yb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 16));
    __m256i pa, pb;
    Mul16Pair(v, ya, yb, &pa, &pb);
    const __m256i xa = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)), pa);
    const __m256i xb = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 16)), pb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i), xa);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(x + i + 16), xb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i),
                        _mm256_xor_si256(ya, xa));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i + 16),
                        _mm256_xor_si256(yb, xb));
  }
  for (; i < n; ++i) {
    x[i] ^= MulTab(GetTables(), skew, y[i]);
    y[i] ^= x[i];
  }
}

__attribute__((target("avx2"))) void ButterflyInvAvx2(Gf16* x, Gf16* y,
                                                      Gf16 skew,
                                                      std::size_t n) {
  const Mul16Vecs v = LoadMul16(skew);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i ya = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)));
    const __m256i yb = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 16)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 16)));
    __m256i pa, pb;
    Mul16Pair(v, ya, yb, &pa, &pb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), ya);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i + 16), yb);
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(x + i),
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i)), pa));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(x + i + 16),
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 16)),
            pb));
  }
  for (; i < n; ++i) {
    y[i] ^= x[i];
    x[i] ^= MulTab(GetTables(), skew, y[i]);
  }
}

#endif  // PPR_GF16_X86

}  // namespace

Gf16 Gf16Exp(unsigned power) {
  assert(power < 2 * 65535);
  return GetTables().exp_[power];
}

unsigned Gf16Log(Gf16 a) {
  assert(a != 0);
  return GetTables().log_[a];
}

Gf16 Gf16Mul(Gf16 a, Gf16 b) { return MulTab(GetTables(), a, b); }

Gf16 Gf16Inv(Gf16 a) {
  assert(a != 0);
  const Tables& t = GetTables();
  return t.exp_[65535 - t.log_[a]];
}

Gf16 Gf16Div(Gf16 a, Gf16 b) {
  assert(b != 0);
  if (a == 0) return 0;
  const Tables& t = GetTables();
  return t.exp_[static_cast<unsigned>(t.log_[a]) + 65535 - t.log_[b]];
}

bool Gf16SimdActive() {
#if defined(PPR_GF16_X86)
  return Avx2Supported();
#else
  return false;
#endif
}

void Gf16Axpy(std::span<Gf16> dst, Gf16 coef, std::span<const Gf16> src) {
  const std::size_t n = std::min(dst.size(), src.size());
  if (n == 0 || coef == 0) return;
  if (coef == 1) {
    XorWords(dst.data(), src.data(), n);
    return;
  }
#if defined(PPR_GF16_X86)
  if (Avx2Supported() && n >= 32) {
    AxpyAvx2(dst.data(), coef, src.data(), n);
    return;
  }
#endif
  AxpyScalar(dst.data(), coef, src.data(), n);
}

void Gf16Scale(std::span<Gf16> data, Gf16 coef) {
  if (data.empty() || coef == 1) return;
  if (coef == 0) {
    std::memset(data.data(), 0, data.size() * sizeof(Gf16));
    return;
  }
#if defined(PPR_GF16_X86)
  if (Avx2Supported() && data.size() >= 32) {
    ScaleAvx2(data.data(), coef, data.size());
    return;
  }
#endif
  ScaleScalar(data.data(), coef, data.size());
}

void Gf16Xor(std::span<Gf16> dst, std::span<const Gf16> src) {
  XorWords(dst.data(), src.data(), std::min(dst.size(), src.size()));
}

void Gf16ButterflyFwd(std::span<Gf16> x, std::span<Gf16> y, Gf16 skew) {
  const std::size_t n = std::min(x.size(), y.size());
  if (skew == 0) {
    XorWords(y.data(), x.data(), n);
    return;
  }
#if defined(PPR_GF16_X86)
  if (Avx2Supported() && n >= 32) {
    ButterflyFwdAvx2(x.data(), y.data(), skew, n);
    return;
  }
#endif
  const Tables& t = GetTables();
  for (std::size_t i = 0; i < n; ++i) {
    x[i] ^= MulTab(t, skew, y[i]);
    y[i] ^= x[i];
  }
}

void Gf16ButterflyInv(std::span<Gf16> x, std::span<Gf16> y, Gf16 skew) {
  const std::size_t n = std::min(x.size(), y.size());
  if (skew == 0) {
    XorWords(y.data(), x.data(), n);
    return;
  }
#if defined(PPR_GF16_X86)
  if (Avx2Supported() && n >= 32) {
    ButterflyInvAvx2(x.data(), y.data(), skew, n);
    return;
  }
#endif
  const Tables& t = GetTables();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] ^= x[i];
    x[i] ^= MulTab(t, skew, y[i]);
  }
}

namespace gf16_ref {

void Axpy(std::span<Gf16> dst, Gf16 coef, std::span<const Gf16> src) {
  const std::size_t n = std::min(dst.size(), src.size());
  const Tables& t = GetTables();
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= MulTab(t, coef, src[i]);
}

void Scale(std::span<Gf16> data, Gf16 coef) {
  const Tables& t = GetTables();
  for (auto& v : data) v = MulTab(t, coef, v);
}

}  // namespace gf16_ref

}  // namespace ppr::fec
