// EquationSink: the one span-based ingest surface every linear-equation
// consumer in the tree implements.
//
// A recovery engine that banks equations — the block decoder
// (fec::RlncDecoder), the sliding-window stream decoder
// (stream::WindowDecoder), and whatever a future collision-recovery
// listener resolves superposed frames into — ultimately does the same
// thing: accept (coefficients, data) over some column space and fold it
// into an elimination basis. Before this interface each consumer had
// its own by-value entry point, so a driver that wanted to feed "either
// decoder" (the flow engine, engine/flow_engine.h) had to know which
// concrete type it held and pay a fresh vector allocation per call.
//
// ConsumeEquationSpan takes borrowed spans: the implementation copies
// into its own reused scratch (or eliminates in place) and the caller's
// buffers are untouched on return, so one staging buffer can feed a
// million flows without per-equation heap churn.
//
// Column-space convention: `coefs` has exactly equation_width() entries
// and the implementation defines what column i means — source-symbol i
// for the block decoder, window column base+i for the stream decoder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ppr::fec {

class EquationSink {
 public:
  virtual ~EquationSink() = default;

  // Columns an equation spans (coefs.size() must equal this).
  virtual std::size_t equation_width() const = 0;
  // Bytes per equation payload (data.size() must equal this).
  virtual std::size_t equation_bytes() const = 0;

  // Banks coefs . columns = data. Returns true when the equation was
  // new information (increased the basis rank); false when linearly
  // dependent, stale, or otherwise dropped. The spans are borrowed:
  // never retained past the call.
  virtual bool ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                                   std::span<const std::uint8_t> data) = 0;
};

}  // namespace ppr::fec
