// Per-flow codec selection: which erasure code a session runs.
//
// kRlnc is the default — rateless, dense random combinations, the
// right shape for small blocks, SoftPHY-labeled partial packets, and
// relay-masked equations (anything that needs DENSE rows banked and
// re-eliminated). kReedSolomon is the large-block specialist: a fixed
// parity budget, systematic framing, and an O(k log k) FFT erasure
// decode over GF(2^16) (reed_solomon.h) that breaks RLNC's O(k^2)
// Gaussian-elimination wall — but it only consumes erasures (unit
// rows), so flows that need dense equations stay on RLNC.
#pragma once

#include <optional>
#include <string_view>

namespace ppr::fec {

enum class CodecKind : std::uint8_t { kRlnc = 0, kReedSolomon };

constexpr std::string_view CodecKindName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kRlnc:
      return "rlnc";
    case CodecKind::kReedSolomon:
      return "rs";
  }
  return "unknown";
}

constexpr std::optional<CodecKind> CodecKindFromName(std::string_view name) {
  if (name == "rlnc") return CodecKind::kRlnc;
  if (name == "rs") return CodecKind::kReedSolomon;
  return std::nullopt;
}

}  // namespace ppr::fec
