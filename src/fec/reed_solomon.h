// Systematic Reed-Solomon erasure codec over GF(2^16) with O(n log n)
// encode and decode via the additive FFT (fft.h) — the large-block
// alternative to RLNC Gaussian elimination (codec.h::CodecKind), after
// flec's rs_gf65536 scheme (itself the leopard/LCH construction).
//
// Framing: K = the smallest power of two >= max(k, m). The codeword
// polynomial P (degree < K, novel basis) interpolates the k source
// symbols at evaluation points [0, k) and virtual zeros at [k, K);
// the m parity symbols are P's evaluations at points [K, K + m).
// Erasure decode treats every unreceived position — missing data,
// missing parity, and the never-materialized tail [K + m, 2K) — as an
// erasure of the length-2K codeword and recovers via the classic
// product trick: with erasure locator e(x) = prod (x ^ u) over erased
// points u, the padded received word d_u = c_u * e(u) equals the
// evaluation of N = P * e everywhere (it is 0 at erasures, where
// e(u) = 0). deg N < 2K, so one IFFT recovers N's coefficients; a
// formal derivative and one FFT yield N'(u) = P(u) * e'(u) at every
// erased u, and P(u) = N'(u) / e'(u) is the missing symbol. Total:
// three size-2K transforms + one derivative, O(K log K) symbol ops —
// against Gaussian elimination's O(k^2).
//
// The locator evaluations e(u) (and e'(u) at erased u) come from one
// log-domain pass: log e(u) = sum over erased v of log(u ^ v), with
// log 0 := 0 dropping the v == u term — which makes the same array
// serve as e(u) at survivors and e'(u) at erasures. Small blocks sum
// directly (O(2K * |E|)); large blocks use a Walsh-Hadamard XOR
// convolution over the full 65536-point domain mod 65535, where
// 65536 === 1 makes the inverse transform normalization-free.
//
// Scope: pure erasure code — ConsumeEquationSpan accepts only UNIT
// rows (this symbol arrived verbatim); dense RLNC-style equations
// return false. Flows that need dense rows (SoftPHY suspicion,
// relay-masked equations as primary repair) belong on RLNC; the
// session layers fall back per CodecKind. symbol_bytes must be even
// (symbols are arrays of 16-bit field elements).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fec/equation_sink.h"
#include "fec/gf65536.h"

namespace ppr::fec {

// Shared shape checks; throws std::invalid_argument on bad (k, m,
// symbol_bytes). k + m positions must fit the [0, K) + [K, K + m)
// framing: k <= 32768, m <= K.
std::size_t RsBlockSize(std::size_t k, std::size_t m);  // returns K

class ReedSolomonEncoder {
 public:
  ReedSolomonEncoder(std::size_t k, std::size_t m, std::size_t symbol_bytes);

  std::size_t num_source() const { return k_; }
  std::size_t num_parity() const { return m_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  // Stages source symbol i (copied). All k symbols must be set before
  // Finish(); setting after Finish() requires Reset() first.
  void SetSource(std::size_t i, std::span<const std::uint8_t> data);

  // Computes all m parity symbols in one batch (IFFT + coset FFT).
  void Finish();
  bool finished() const { return finished_; }

  // Parity symbol j; requires Finish().
  std::span<const std::uint8_t> Parity(std::size_t j) const;

  // Clears staged sources and parity for the next block.
  void Reset();

 private:
  std::size_t k_, m_, symbol_bytes_, words_, cap_;
  bool finished_ = false;
  std::vector<Gf16> work_;   // K x words: data, then P's coefficients
  std::vector<Gf16> coset_;  // K x words: P evaluated on [K, 2K)
};

class ReedSolomonDecoder : public EquationSink {
 public:
  ReedSolomonDecoder(std::size_t k, std::size_t m, std::size_t symbol_bytes);

  std::size_t num_source() const { return k_; }
  std::size_t num_parity() const { return m_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }

  // Returns true when the symbol was new (not yet banked).
  bool AddSourceSpan(std::size_t i, std::span<const std::uint8_t> data);
  bool AddParitySpan(std::size_t j, std::span<const std::uint8_t> data);

  std::size_t known_data() const { return known_data_; }
  std::size_t missing_data() const { return k_ - known_data_; }
  // Whether source symbol i is known (received or recovered).
  bool HasSource(std::size_t i) const { return have_.at(i); }
  // Independent symbols still needed before decoding is possible.
  std::size_t Deficit() const {
    const std::size_t have = known_data_ + known_parity_;
    return have >= k_ ? 0 : k_ - have;
  }
  bool CanDecode() const { return Deficit() == 0; }
  // All source symbols banked or recovered.
  bool Complete() const { return known_data_ == k_; }

  // Recovers every missing source symbol; requires CanDecode(). After
  // Decode(), Complete() holds and Symbol(i) is valid for all i.
  void Decode();

  // Source symbol i; requires it known (received or decoded).
  std::span<const std::uint8_t> Symbol(std::size_t i) const;

  // EquationSink: columns [0, k) are source symbols, [k, k + m) parity
  // symbols. Only unit rows are consumable — a dense row returns false
  // (callers needing dense ingest use CodecKind::kRlnc).
  std::size_t equation_width() const override { return k_ + m_; }
  std::size_t equation_bytes() const override { return symbol_bytes_; }
  bool ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                           std::span<const std::uint8_t> data) override;

  // Back to an empty block with the same shape.
  void Reset();

 private:
  std::size_t k_, m_, symbol_bytes_, words_, cap_;
  std::size_t known_data_ = 0, known_parity_ = 0;
  std::vector<Gf16> syms_;  // (k + m) x words received/recovered image
  std::vector<bool> have_;  // per position
  // Decode workspace, allocated on first Decode and reused.
  std::vector<Gf16> work_;     // 2K x words
  std::vector<Gf16> scratch_;  // 2K x words (formal derivative)
  std::vector<std::uint32_t> loc_;  // 2K locator logs
};

}  // namespace ppr::fec
