// Coded-repair session: the receiver-side bridge between SoftPHY
// labeling and RLNC decoding.
//
// The packet body is split into fixed-size, codeword-aligned symbols.
// Symbols whose codewords all pass the SoftPHY threshold enter the
// decoder as trusted systematic rows; the deficit (source count minus
// rank) is what the receiver reports upstream, and the sender streams
// that many coded repair symbols (plus headroom) instead of literal
// chunk copies. Rank completion yields a decode candidate; the caller
// verifies it (packet CRC-32). When verification fails — a SoftPHY miss
// put a wrong-but-confident symbol into the basis — EvictSuspects()
// drops the least trustworthy rows (doubling the batch each failure)
// and rebuilds the basis from the survivors plus every equation still
// banked. Rows come in two kinds: the receiver's own systematic
// symbols, and foreign equations from overhearing relays
// (ConsumeEquation with evictable=true), whose copy of the body may
// itself carry a miss; both share one suspicion ordering, so recovery
// converges even when every systematic row and every relay equation is
// poisoned: the source's repair stream alone can carry the packet.
// The session decodes through a per-flow CodecKind: kRlnc (default)
// banks arbitrary dense equations and eliminates; kReedSolomon treats
// repairs as indexed parity symbols of a systematic RS(k, k) code over
// GF(2^16) (fec/reed_solomon.h) — O(k log k) decode for large blocks,
// at the cost of rejecting dense relay equations (ConsumeEquation
// returns false) and requiring even symbol_bytes. Eviction still
// works under RS: a distrusted systematic symbol simply becomes an
// erasure on rebuild.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/bitvec.h"
#include "fec/codec.h"
#include "fec/reed_solomon.h"
#include "fec/rlnc.h"

namespace ppr::fec {

// Splits `body` into ceil(total_codewords / codewords_per_symbol)
// symbols of codewords_per_symbol * bits_per_codeword bits each (must be
// whole octets); the tail symbol is zero-padded.
std::vector<std::vector<std::uint8_t>> BodyToSymbols(
    const BitVec& body, std::size_t bits_per_codeword,
    std::size_t codewords_per_symbol);

// Inverse of BodyToSymbols; truncates the tail padding to `body_bits`.
BitVec SymbolsToBody(const std::vector<std::vector<std::uint8_t>>& symbols,
                     std::size_t body_bits);

class CodedRepairSession {
 public:
  // `received` is the receiver's current image of every symbol, `good`
  // the SoftPHY labeling (every codeword in the symbol under threshold),
  // and `suspicion` a per-symbol score (higher = less trustworthy; e.g.
  // the worst codeword hint) ordering evictions after a failed verify.
  // `codec` selects the decode engine; kReedSolomon requires even
  // symbol_bytes (16-bit field elements) and interprets repair seeds
  // as parity indices (see ConsumeRepair).
  CodedRepairSession(std::vector<std::vector<std::uint8_t>> received,
                     std::vector<bool> good, std::vector<double> suspicion,
                     CodecKind codec = CodecKind::kRlnc);

  std::size_t num_source() const { return received_.size(); }
  std::size_t symbol_bytes() const { return received_.front().size(); }
  CodecKind codec() const { return codec_; }

  // Independent symbols still needed before decoding is possible.
  std::size_t Deficit() const {
    return rs_ ? rs_->Deficit() : num_source() - decoder_.rank();
  }

  bool CanDecode() const { return rs_ ? rs_->CanDecode() : decoder_.Complete(); }

  // Banks a (CRC-validated) repair symbol from the source; returns true
  // if it increased the rank. Source equations are correct by
  // construction (the sender combines its own ground-truth bits), so
  // they are never candidates for eviction. Under kReedSolomon the
  // seed's in-party counter names the parity index — (counter - 1)
  // modulo num_source(), matching the sender's cycling emission — and
  // a re-received parity index is a dedup no-op (false).
  bool ConsumeRepair(const RepairSymbol& repair);

  // Banks an arbitrary (CRC-validated) equation: coefs . source = data.
  // `evictable` marks equations computed from a foreign, unverifiable
  // copy of the body (an overhearing relay): they pass the wire CRC yet
  // may still encode a SoftPHY miss, so a failed packet verify may
  // distrust them, ordered by `suspicion` alongside the systematic rows.
  // Under kReedSolomon every call returns false: an erasure code cannot
  // raise its rank from a dense combination — such flows stay on kRlnc.
  // `party` records provenance (the originating repair party,
  // fec::PartySeed convention: 0 = source, 1+ = relay ids): every
  // evictable equation a relay contributed was computed from the SAME
  // foreign body image, so one SoftPHY miss poisons the relay's whole
  // stream and eviction distrusts that party's equations as a group.
  bool ConsumeEquation(std::vector<std::uint8_t> coefs,
                       std::vector<std::uint8_t> data, double suspicion,
                       bool evictable, std::uint8_t party = 0);

  // Borrowed-span form of ConsumeEquation: the session banks its own
  // copy (eviction replay needs it) but the caller's buffers are never
  // consumed, so a driver can feed many sessions from one staging
  // buffer.
  bool ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                           std::span<const std::uint8_t> data,
                           double suspicion, bool evictable,
                           std::uint8_t party = 0);

  // Decoded source symbols; requires CanDecode().
  std::vector<std::vector<std::uint8_t>> Decode() const;

  // The last decode failed external verification: distrust the most
  // suspect of the still-trusted systematic symbols and the still-banked
  // evictable equation GROUPS (one suspicion ordering across both
  // kinds; an evictable party's equations form one candidate whose
  // suspicion is the worst across its banked rows, and evicting it
  // distrusts the party's whole stream) and rebuild the basis. Returns
  // how many rows were distrusted (0 when nothing evictable remains).
  std::size_t EvictSuspects();

  std::size_t num_trusted() const;
  std::size_t repairs_banked() const {
    return rs_ ? parity_bank_.size() : equations_.size();
  }
  // Still-banked (not distrusted) evictable equations from `party`.
  std::size_t equations_from(std::uint8_t party) const;

 private:
  struct BankedEquation {
    std::vector<std::uint8_t> coefs;
    std::vector<std::uint8_t> data;
    double suspicion = 0.0;
    bool evictable = false;
    bool distrusted = false;
    std::uint8_t party = 0;
  };

  void Rebuild();

  std::vector<std::vector<std::uint8_t>> received_;
  std::vector<bool> trusted_;
  std::vector<double> suspicion_;
  std::vector<BankedEquation> equations_;
  CodecKind codec_ = CodecKind::kRlnc;
  RlncDecoder decoder_;
  // kReedSolomon engine: RS(k, m = k) erasure decoder plus the banked
  // parity symbols (index, data) the eviction rebuild replays. Null
  // under kRlnc.
  std::unique_ptr<ReedSolomonDecoder> rs_;
  std::vector<std::pair<std::size_t, std::vector<std::uint8_t>>> parity_bank_;
  std::vector<bool> parity_seen_;
  std::size_t evict_batch_ = 1;
  // Session-lifetime scratch for seed-expanded repair coefficients;
  // ConsumeRepair reuses it instead of allocating a vector per symbol.
  std::vector<std::uint8_t> coef_scratch_;
};

}  // namespace ppr::fec
