#include "fec/gf256.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define PPR_GF256_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define PPR_GF256_ARM 1
#include <arm_neon.h>
#endif

namespace ppr::fec {
namespace {

struct Tables {
  // exp_ is doubled so log-domain sums index it without reduction.
  std::uint8_t exp_[510] = {};
  std::uint8_t log_[256] = {};
};

constexpr Tables BuildTables() {
  Tables t;
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp_[i] = static_cast<std::uint8_t>(x);
    t.exp_[i + 255] = static_cast<std::uint8_t>(x);
    t.log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kGfPrimitivePoly;
  }
  return t;
}

constexpr Tables kTables = BuildTables();

inline std::uint8_t MulTab(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kTables.exp_[kTables.log_[a] + kTables.log_[b]];
}

// Product of `coef` with every byte value; the scalar axpy row table.
void BuildRow(std::uint8_t coef, std::uint8_t row[256]) {
  row[0] = 0;
  const unsigned lc = kTables.log_[coef];
  for (unsigned v = 1; v < 256; ++v) {
    row[v] = kTables.exp_[lc + kTables.log_[v]];
  }
}

// Split-nibble product tables: coef * v == lo[v & 0xF] ^ hi[v >> 4],
// because multiplication distributes over the XOR that sums the two
// nibble contributions. 16 entries each fits one PSHUFB/TBL register.
struct NibbleTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

NibbleTables BuildNibbleTables(std::uint8_t coef) {
  NibbleTables t;
  for (unsigned v = 0; v < 16; ++v) {
    t.lo[v] = MulTab(coef, static_cast<std::uint8_t>(v));
    t.hi[v] = MulTab(coef, static_cast<std::uint8_t>(v << 4));
  }
  return t;
}

// coef == 1 on every backend: dst ^= src word-wide. The loads go
// through memcpy — the spans carry no alignment guarantee, so a
// reinterpret_cast<uint64_t*> load would be undefined behavior.
void XorBytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t d, s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// Tail shape shared by every backend: below table-build granularity the
// log-domain multiply wins (matters for the default 8-byte FEC symbols).
void AxpyLogDomain(std::uint8_t* dst, std::uint8_t coef,
                   const std::uint8_t* src, std::size_t n) {
  const unsigned lc = kTables.log_[coef];
  for (std::size_t i = 0; i < n; ++i) {
    if (src[i] != 0) dst[i] ^= kTables.exp_[lc + kTables.log_[src[i]]];
  }
}

void ScaleLogDomain(std::uint8_t* data, std::uint8_t coef, std::size_t n) {
  const unsigned lc = kTables.log_[coef];
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = data[i] == 0
                  ? std::uint8_t{0}
                  : kTables.exp_[lc + kTables.log_[data[i]]];
  }
}

// ----------------------------------------------------------- kernels
// All kernels take coef not in {0, 1}: the dispatcher has already
// short-circuited the no-op and XOR cases.

void AxpyScalar(std::uint8_t* dst, std::uint8_t coef, const std::uint8_t* src,
                std::size_t n) {
  if (n < 64) {
    AxpyLogDomain(dst, coef, src, n);
    return;
  }
  std::uint8_t row[256];
  BuildRow(coef, row);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void ScaleScalar(std::uint8_t* data, std::uint8_t coef, std::size_t n) {
  if (n < 64) {
    ScaleLogDomain(data, coef, n);
    return;
  }
  std::uint8_t row[256];
  BuildRow(coef, row);
  for (std::size_t i = 0; i < n; ++i) data[i] = row[data[i]];
}

#if defined(PPR_GF256_X86)

__attribute__((target("ssse3"))) void AxpySsse3(std::uint8_t* dst,
                                                std::uint8_t coef,
                                                const std::uint8_t* src,
                                                std::size_t n) {
  // Below one vector the table build buys nothing and the default
  // 8-byte FEC symbols live here: go straight to the log domain.
  if (n < 16) {
    AxpyLogDomain(dst, coef, src, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const __m128i vlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i vhi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i nib = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i p = _mm_xor_si128(
        _mm_shuffle_epi8(vlo, _mm_and_si128(s, nib)),
        _mm_shuffle_epi8(vhi, _mm_and_si128(_mm_srli_epi64(s, 4), nib)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d, p));
  }
  AxpyLogDomain(dst + i, coef, src + i, n - i);
}

__attribute__((target("ssse3"))) void ScaleSsse3(std::uint8_t* data,
                                                 std::uint8_t coef,
                                                 std::size_t n) {
  if (n < 16) {
    ScaleLogDomain(data, coef, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const __m128i vlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i vhi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i nib = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i p = _mm_xor_si128(
        _mm_shuffle_epi8(vlo, _mm_and_si128(s, nib)),
        _mm_shuffle_epi8(vhi, _mm_and_si128(_mm_srli_epi64(s, 4), nib)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(data + i), p);
  }
  ScaleLogDomain(data + i, coef, n - i);
}

__attribute__((target("avx2"))) void AxpyAvx2(std::uint8_t* dst,
                                              std::uint8_t coef,
                                              const std::uint8_t* src,
                                              std::size_t n) {
  // Below one 32-byte vector the log domain wins (and matches what the
  // pre-vectorization scalar path did for these sizes).
  if (n < 32) {
    AxpyLogDomain(dst, coef, src, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  // PSHUFB shuffles per 128-bit lane, so the table is duplicated into
  // both lanes.
  const __m256i vlo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i vhi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i nib = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(vlo, _mm256_and_si256(s, nib)),
        _mm256_shuffle_epi8(vhi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), nib)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  AxpyLogDomain(dst + i, coef, src + i, n - i);
}

__attribute__((target("avx2"))) void ScaleAvx2(std::uint8_t* data,
                                               std::uint8_t coef,
                                               std::size_t n) {
  if (n < 32) {
    ScaleLogDomain(data, coef, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const __m256i vlo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m256i vhi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m256i nib = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(vlo, _mm256_and_si256(s, nib)),
        _mm256_shuffle_epi8(vhi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), nib)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i), p);
  }
  ScaleLogDomain(data + i, coef, n - i);
}

// The GFNI constant-multiply matrix. GF2P8AFFINEQB computes, per
// destination byte, bit i = parity(matrix.byte[7-i] & src.byte) — an
// arbitrary GF(2)-linear map of the byte. Multiplication by a constant
// c is such a map (over ANY degree-8 polynomial basis, not just the
// instruction's own 0x11B reduction, which only its MULB sibling
// hard-codes): column j of the bit-matrix is c * 2^j in this field's
// 0x11D basis, so row i collects bit i of each column product.
std::uint64_t GfniMatrix(std::uint8_t coef) {
  std::uint8_t row[8] = {};
  for (unsigned j = 0; j < 8; ++j) {
    const std::uint8_t col = MulTab(coef, static_cast<std::uint8_t>(1u << j));
    for (unsigned i = 0; i < 8; ++i) {
      if (col & (1u << i)) row[i] |= static_cast<std::uint8_t>(1u << j);
    }
  }
  std::uint64_t m = 0;
  for (unsigned i = 0; i < 8; ++i) {
    m |= static_cast<std::uint64_t>(row[i]) << (8 * (7 - i));
  }
  return m;
}

__attribute__((target("gfni,avx2"))) void AxpyGfni(std::uint8_t* dst,
                                                   std::uint8_t coef,
                                                   const std::uint8_t* src,
                                                   std::size_t n) {
  if (n < 32) {
    AxpyLogDomain(dst, coef, src, n);
    return;
  }
  const __m256i m = _mm256_set1_epi64x(
      static_cast<long long>(GfniMatrix(coef)));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i p = _mm256_gf2p8affine_epi64_epi8(s, m, 0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  AxpyLogDomain(dst + i, coef, src + i, n - i);
}

__attribute__((target("gfni,avx2"))) void ScaleGfni(std::uint8_t* data,
                                                    std::uint8_t coef,
                                                    std::size_t n) {
  if (n < 32) {
    ScaleLogDomain(data, coef, n);
    return;
  }
  const __m256i m = _mm256_set1_epi64x(
      static_cast<long long>(GfniMatrix(coef)));
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i),
                        _mm256_gf2p8affine_epi64_epi8(s, m, 0));
  }
  ScaleLogDomain(data + i, coef, n - i);
}

// 512-bit GFNI variant, picked by CompiledBackend(kGfni) when the CPU
// also has AVX-512: same matrix, 64 products per instruction.
__attribute__((target("gfni,avx2,avx512f,avx512bw"))) void AxpyGfni512(
    std::uint8_t* dst, std::uint8_t coef, const std::uint8_t* src,
    std::size_t n) {
  if (n < 64) {
    AxpyGfni(dst, coef, src, n);
    return;
  }
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(GfniMatrix(coef)));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i p = _mm512_gf2p8affine_epi64_epi8(s, m, 0);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, p));
  }
  AxpyGfni(dst + i, coef, src + i, n - i);
}

__attribute__((target("gfni,avx2,avx512f,avx512bw"))) void ScaleGfni512(
    std::uint8_t* data, std::uint8_t coef, std::size_t n) {
  if (n < 64) {
    ScaleGfni(data, coef, n);
    return;
  }
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(GfniMatrix(coef)));
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i s = _mm512_loadu_si512(data + i);
    _mm512_storeu_si512(data + i, _mm512_gf2p8affine_epi64_epi8(s, m, 0));
  }
  ScaleGfni(data + i, coef, n - i);
}

// AVX-512BW split-nibble: the same two-shuffle shape as AVX2, but
// VPSHUFB over four 128-bit lanes at once.
__attribute__((target("avx2,avx512f,avx512bw"))) void AxpyAvx512(
    std::uint8_t* dst, std::uint8_t coef, const std::uint8_t* src,
    std::size_t n) {
  if (n < 64) {
    AxpyAvx2(dst, coef, src, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const __m512i vlo = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m512i vhi = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m512i nib = _mm512_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i s = _mm512_loadu_si512(src + i);
    const __m512i d = _mm512_loadu_si512(dst + i);
    const __m512i p = _mm512_xor_si512(
        _mm512_shuffle_epi8(vlo, _mm512_and_si512(s, nib)),
        _mm512_shuffle_epi8(vhi,
                            _mm512_and_si512(_mm512_srli_epi64(s, 4), nib)));
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(d, p));
  }
  AxpyAvx2(dst + i, coef, src + i, n - i);
}

__attribute__((target("avx2,avx512f,avx512bw"))) void ScaleAvx512(
    std::uint8_t* data, std::uint8_t coef, std::size_t n) {
  if (n < 64) {
    ScaleAvx2(data, coef, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const __m512i vlo = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.lo)));
  const __m512i vhi = _mm512_broadcast_i32x4(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(t.hi)));
  const __m512i nib = _mm512_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i s = _mm512_loadu_si512(data + i);
    const __m512i p = _mm512_xor_si512(
        _mm512_shuffle_epi8(vlo, _mm512_and_si512(s, nib)),
        _mm512_shuffle_epi8(vhi,
                            _mm512_and_si512(_mm512_srli_epi64(s, 4), nib)));
    _mm512_storeu_si512(data + i, p);
  }
  ScaleAvx2(data + i, coef, n - i);
}

#endif  // PPR_GF256_X86

#if defined(PPR_GF256_ARM)

// Per-byte shift: vshrq_n_u8 never smears bits across byte boundaries,
// so the high nibble needs no mask.
void AxpyNeon(std::uint8_t* dst, std::uint8_t coef, const std::uint8_t* src,
              std::size_t n) {
  if (n < 16) {
    AxpyLogDomain(dst, coef, src, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const uint8x16_t vlo = vld1q_u8(t.lo);
  const uint8x16_t vhi = vld1q_u8(t.hi);
  const uint8x16_t nib = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t p = veorq_u8(vqtbl1q_u8(vlo, vandq_u8(s, nib)),
                                  vqtbl1q_u8(vhi, vshrq_n_u8(s, 4)));
    vst1q_u8(dst + i, veorq_u8(d, p));
  }
  AxpyLogDomain(dst + i, coef, src + i, n - i);
}

void ScaleNeon(std::uint8_t* data, std::uint8_t coef, std::size_t n) {
  if (n < 16) {
    ScaleLogDomain(data, coef, n);
    return;
  }
  const NibbleTables t = BuildNibbleTables(coef);
  const uint8x16_t vlo = vld1q_u8(t.lo);
  const uint8x16_t vhi = vld1q_u8(t.hi);
  const uint8x16_t nib = vdupq_n_u8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(data + i);
    const uint8x16_t p = veorq_u8(vqtbl1q_u8(vlo, vandq_u8(s, nib)),
                                  vqtbl1q_u8(vhi, vshrq_n_u8(s, 4)));
    vst1q_u8(data + i, p);
  }
  ScaleLogDomain(data + i, coef, n - i);
}

#endif  // PPR_GF256_ARM

// ----------------------------------------------------------- dispatch

using AxpyFn = void (*)(std::uint8_t*, std::uint8_t, const std::uint8_t*,
                        std::size_t);
using ScaleFn = void (*)(std::uint8_t*, std::uint8_t, std::size_t);

struct Backend {
  AxpyFn axpy = nullptr;
  ScaleFn scale = nullptr;
};

std::optional<Backend> CompiledBackend(GfImpl impl) {
  switch (impl) {
    case GfImpl::kScalar:
      return Backend{AxpyScalar, ScaleScalar};
#if defined(PPR_GF256_X86)
    case GfImpl::kSsse3:
      return Backend{AxpySsse3, ScaleSsse3};
    case GfImpl::kAvx2:
      return Backend{AxpyAvx2, ScaleAvx2};
    case GfImpl::kGfni:
      // One backend name, widest compiled body the CPU can run: the
      // differential CI job pins "gfni" and gets 512-bit vectors where
      // the runner has them, 256-bit otherwise.
      if (__builtin_cpu_supports("avx512f") &&
          __builtin_cpu_supports("avx512bw")) {
        return Backend{AxpyGfni512, ScaleGfni512};
      }
      return Backend{AxpyGfni, ScaleGfni};
    case GfImpl::kAvx512:
      return Backend{AxpyAvx512, ScaleAvx512};
#endif
#if defined(PPR_GF256_ARM)
    case GfImpl::kNeon:
      return Backend{AxpyNeon, ScaleNeon};
#endif
    default:
      return std::nullopt;
  }
}

bool CpuSupports(GfImpl impl) {
  switch (impl) {
    case GfImpl::kScalar:
      return true;
#if defined(PPR_GF256_X86)
    case GfImpl::kSsse3:
      return __builtin_cpu_supports("ssse3");
    case GfImpl::kAvx2:
      return __builtin_cpu_supports("avx2");
    case GfImpl::kGfni:
      return __builtin_cpu_supports("gfni") && __builtin_cpu_supports("avx2");
    case GfImpl::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
#endif
#if defined(PPR_GF256_ARM)
    case GfImpl::kNeon:
      return true;  // NEON is baseline on aarch64.
#endif
    default:
      return false;
  }
}

struct Active {
  GfImpl impl;
  Backend backend;
};

Active& ActiveState() {
  static Active active = [] {
    GfImpl impl = GfImpl::kScalar;
    for (const GfImpl cand : {GfImpl::kGfni, GfImpl::kAvx512, GfImpl::kAvx2,
                              GfImpl::kSsse3, GfImpl::kNeon}) {
      if (GfImplAvailable(cand)) {
        impl = cand;
        break;
      }
    }
    if (const char* force = std::getenv("PPR_GF256_FORCE_IMPL")) {
      const auto forced = GfImplFromName(force);
      if (!forced || !GfImplAvailable(*forced)) {
        std::fprintf(stderr,
                     "PPR_GF256_FORCE_IMPL=%s: unknown or unavailable GF(256) "
                     "backend on this host\n",
                     force);
        std::abort();
      }
      impl = *forced;
    }
    return Active{impl, *CompiledBackend(impl)};
  }();
  return active;
}

// Per-thread, per-backend op counters: plain (non-atomic) uint64s are
// enough because only the owning thread reads or writes them.
#if !defined(PPR_OBS_OFF)

struct GfThreadCounters {
  std::uint64_t calls[kGfImplCount] = {};
  std::uint64_t bytes[kGfImplCount] = {};
};

GfThreadCounters& ThreadCounters() {
  static thread_local GfThreadCounters counters;
  return counters;
}

inline void CountOp(GfImpl impl, std::uint64_t bytes) {
  GfThreadCounters& c = ThreadCounters();
  const auto i = static_cast<std::size_t>(impl);
  ++c.calls[i];
  c.bytes[i] += bytes;
}

#else

inline void CountOp(GfImpl, std::uint64_t) {}

#endif  // PPR_OBS_OFF

}  // namespace

GfOpStats GfThreadStatsFor(GfImpl impl) {
#if !defined(PPR_OBS_OFF)
  const GfThreadCounters& c = ThreadCounters();
  const auto i = static_cast<std::size_t>(impl);
  return {c.calls[i], c.bytes[i]};
#else
  (void)impl;
  return {};
#endif
}

std::uint8_t GfExp(unsigned power) {
  assert(power < 510);
  return kTables.exp_[power];
}

std::uint8_t GfLog(std::uint8_t a) {
  assert(a != 0);
  return kTables.log_[a];
}

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) { return MulTab(a, b); }

std::uint8_t GfInv(std::uint8_t a) {
  assert(a != 0);
  return kTables.exp_[255 - kTables.log_[a]];
}

std::uint8_t GfDiv(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  return kTables.exp_[kTables.log_[a] + 255 - kTables.log_[b]];
}

std::string_view GfImplName(GfImpl impl) {
  switch (impl) {
    case GfImpl::kScalar:
      return "scalar";
    case GfImpl::kSsse3:
      return "ssse3";
    case GfImpl::kAvx2:
      return "avx2";
    case GfImpl::kNeon:
      return "neon";
    case GfImpl::kGfni:
      return "gfni";
    case GfImpl::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<GfImpl> GfImplFromName(std::string_view name) {
  for (const GfImpl impl : {GfImpl::kScalar, GfImpl::kSsse3, GfImpl::kAvx2,
                            GfImpl::kNeon, GfImpl::kGfni, GfImpl::kAvx512}) {
    if (name == GfImplName(impl)) return impl;
  }
  return std::nullopt;
}

bool GfImplAvailable(GfImpl impl) {
  return CompiledBackend(impl).has_value() && CpuSupports(impl);
}

std::vector<GfImpl> GfAvailableImpls() {
  std::vector<GfImpl> impls;
  for (const GfImpl impl : {GfImpl::kScalar, GfImpl::kSsse3, GfImpl::kAvx2,
                            GfImpl::kNeon, GfImpl::kGfni, GfImpl::kAvx512}) {
    if (GfImplAvailable(impl)) impls.push_back(impl);
  }
  return impls;
}

GfImpl GfActiveImpl() { return ActiveState().impl; }

bool GfSetImpl(GfImpl impl) {
  if (!GfImplAvailable(impl)) return false;
  ActiveState() = Active{impl, *CompiledBackend(impl)};
  return true;
}

void GfAxpy(std::span<std::uint8_t> dst, std::uint8_t coef,
            std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  const std::size_t n = std::min(dst.size(), src.size());
  if (n == 0 || coef == 0) return;
  CountOp(ActiveState().impl, n);
  if (coef == 1) {
    XorBytes(dst.data(), src.data(), n);
    return;
  }
  ActiveState().backend.axpy(dst.data(), coef, src.data(), n);
}

void GfAxpyN(std::span<std::uint8_t> dst, std::span<const GfTerm> terms) {
  const Active& active = ActiveState();
  const Backend& backend = active.backend;
  std::uint64_t counted = 0;
  for (const GfTerm& term : terms) {
    if (term.coef != 0) counted += std::min(term.src.size(), dst.size());
  }
  if (counted > 0) CountOp(active.impl, counted);
  // Walk dst in L1-resident blocks so one repair burst streams the
  // accumulator through cache once per block rather than once per term.
  // Worth it only for the vector kernels, whose per-block table setup
  // is 32 log/exp lookups; the scalar fallback rebuilds a 256-entry
  // row per (term, block), so it keeps the one-pass-per-term shape.
  constexpr std::size_t kBlock = 4096;
  const std::size_t block =
      active.impl == GfImpl::kScalar ? dst.size() : kBlock;
  for (std::size_t off = 0; off < dst.size(); off += block) {
    const std::size_t blk = std::min(block, dst.size() - off);
    for (const GfTerm& term : terms) {
      assert(term.src.size() == dst.size());
      if (term.coef == 0 || term.src.size() <= off) continue;
      const std::size_t n = std::min(blk, term.src.size() - off);
      if (term.coef == 1) {
        XorBytes(dst.data() + off, term.src.data() + off, n);
      } else {
        backend.axpy(dst.data() + off, term.coef, term.src.data() + off, n);
      }
    }
  }
}

void GfScale(std::span<std::uint8_t> data, std::uint8_t coef) {
  if (coef == 1 || data.empty()) return;
  CountOp(ActiveState().impl, data.size());
  if (coef == 0) {
    std::memset(data.data(), 0, data.size());
    return;
  }
  ActiveState().backend.scale(data.data(), coef, data.size());
}

}  // namespace ppr::fec
