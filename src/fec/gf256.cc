#include "fec/gf256.h"

#include <cassert>
#include <cstring>

namespace ppr::fec {
namespace {

struct Tables {
  // exp_ is doubled so log-domain sums index it without reduction.
  std::uint8_t exp_[510] = {};
  std::uint8_t log_[256] = {};
};

constexpr Tables BuildTables() {
  Tables t;
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    t.exp_[i] = static_cast<std::uint8_t>(x);
    t.exp_[i + 255] = static_cast<std::uint8_t>(x);
    t.log_[x] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= kGfPrimitivePoly;
  }
  return t;
}

constexpr Tables kTables = BuildTables();

// Product of `coef` with every byte value; the axpy row table.
void BuildRow(std::uint8_t coef, std::uint8_t row[256]) {
  row[0] = 0;
  const unsigned lc = kTables.log_[coef];
  for (unsigned v = 1; v < 256; ++v) {
    row[v] = kTables.exp_[lc + kTables.log_[v]];
  }
}

}  // namespace

std::uint8_t GfExp(unsigned power) {
  assert(power < 510);
  return kTables.exp_[power];
}

std::uint8_t GfLog(std::uint8_t a) {
  assert(a != 0);
  return kTables.log_[a];
}

std::uint8_t GfMul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kTables.exp_[kTables.log_[a] + kTables.log_[b]];
}

std::uint8_t GfInv(std::uint8_t a) {
  assert(a != 0);
  return kTables.exp_[255 - kTables.log_[a]];
}

std::uint8_t GfDiv(std::uint8_t a, std::uint8_t b) {
  assert(b != 0);
  if (a == 0) return 0;
  return kTables.exp_[kTables.log_[a] + 255 - kTables.log_[b]];
}

void GfAxpy(std::span<std::uint8_t> dst, std::uint8_t coef,
            std::span<const std::uint8_t> src) {
  assert(dst.size() == src.size());
  if (coef == 0) return;
  std::size_t i = 0;
  if (coef == 1) {
    // Pure XOR: run word-wide.
    for (; i + 8 <= dst.size(); i += 8) {
      std::uint64_t d, s;
      std::memcpy(&d, dst.data() + i, 8);
      std::memcpy(&s, src.data() + i, 8);
      d ^= s;
      std::memcpy(dst.data() + i, &d, 8);
    }
    for (; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  if (dst.size() < 64) {
    // Below this the 256-entry row build dominates; multiply in the
    // log domain directly (matters for the default 4-byte FEC symbols).
    const unsigned lc = kTables.log_[coef];
    for (; i < dst.size(); ++i) {
      if (src[i] != 0) dst[i] ^= kTables.exp_[lc + kTables.log_[src[i]]];
    }
    return;
  }
  std::uint8_t row[256];
  BuildRow(coef, row);
  for (; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

void GfScale(std::span<std::uint8_t> data, std::uint8_t coef) {
  if (coef == 1) return;
  if (coef == 0) {
    std::memset(data.data(), 0, data.size());
    return;
  }
  std::uint8_t row[256];
  BuildRow(coef, row);
  for (auto& b : data) b = row[b];
}

}  // namespace ppr::fec
