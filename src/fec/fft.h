// Additive FFT over GF(2^16) in the LCH novel polynomial basis
// (Lin-Chung-Han, "Novel polynomial basis and its application to
// Reed-Solomon erasure codes", FOCS'14) — the transform behind the
// O(n log n) Reed-Solomon codec (reed_solomon.h), in the style of
// flec's rs_gf65536 / leopard.
//
// Domain: the field itself under the standard basis beta_b = 2^b, so
// evaluation point u IS the field element u. V_i = span(beta_0 ..
// beta_{i-1}) = {0 .. 2^i - 1}. The subspace polynomials
//   W_0(x) = x,  W_{i+1}(x) = W_i(x)^2 ^ W_i(beta_i) * W_i(x)
// vanish exactly on V_i; their normalizations WHat_i = W_i / W_i(beta_i)
// are GF(2)-linear maps, constant on cosets of V_i, with
// WHat_i(beta_i) = 1. The novel basis polynomial for index j is
//   X_j(x) = product over set bits i of j of WHat_i(x),   deg X_j = j,
// so "degree < k" means "coefficients X_0 .. X_{k-1}" exactly as in
// the monomial basis.
//
// All transforms are in place over `n` equal-length symbols stored
// contiguously (symbol u at data + u*words), each symbol `words` Gf16
// values: the butterflies run over whole symbols, which is what makes
// the per-level work one fused Gf16Butterfly span pass per pair.
#pragma once

#include <cstddef>

#include "fec/gf65536.h"

namespace ppr::fec {

class AdditiveFft {
 public:
  // The per-process instance (tables are immutable after construction).
  static const AdditiveFft& Instance();

  // Evaluates WHat_i at point `u` (any 16-bit index; linearity folds it
  // from the basis images). i < 16.
  Gf16 SkewAt(unsigned i, unsigned u) const;

  // The formal-derivative constant of WHat_i: its coefficient on x
  // (a linearized polynomial's derivative is that constant).
  Gf16 DerivativeConst(unsigned i) const { return deriv_[i]; }

  // Coefficients (novel basis, X_0..X_{n-1}) -> evaluations at points
  // [base, base + n). n must be a power of two and base a multiple of
  // n, with base + n <= 65536.
  void Fft(Gf16* data, std::size_t words, std::size_t n,
           std::size_t base) const;

  // Evaluations at [base, base + n) -> novel-basis coefficients.
  void Ifft(Gf16* data, std::size_t words, std::size_t n,
            std::size_t base) const;

  // Formal derivative of a novel-basis polynomial with n coefficients
  // (n a power of two): since X_j' = sum over set bits i of j of
  // DerivativeConst(i) * X_{j ^ (1<<i)}, the map is a sum of
  // coefficient-index XOR-shifts. `scratch` must hold n*words values.
  void Derivative(Gf16* data, std::size_t words, std::size_t n,
                  Gf16* scratch) const;

 private:
  AdditiveFft();

  // lin_[i][b] = WHat_i(beta_b); SkewAt XOR-folds these over the set
  // bits of the point index.
  Gf16 lin_[16][16];
  Gf16 deriv_[16];
};

}  // namespace ppr::fec
