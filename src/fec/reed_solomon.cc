#include "fec/reed_solomon.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "fec/fft.h"

namespace ppr::fec {
namespace {

constexpr std::uint32_t kLogMod = 65535;  // order of the multiplicative group

// In-place Walsh-Hadamard transform over Z_65535. Self-inverse up to a
// factor of n = 65536 === 1 (mod 65535), so no normalization pass.
void Fwht(std::uint32_t* a, std::size_t n) {
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t i = 0; i < n; i += h << 1) {
      for (std::size_t j = i; j < i + h; ++j) {
        const std::uint32_t x = a[j];
        const std::uint32_t y = a[j + h];
        a[j] = (x + y) % kLogMod;
        a[j + h] = (x + kLogMod - y) % kLogMod;
      }
    }
  }
}

// FWHT of the discrete-log table over the full domain (log 0 := 0),
// computed once: the erasure-locator convolution reuses it per decode.
const std::vector<std::uint32_t>& FwhtLogTable() {
  static const std::vector<std::uint32_t> table = [] {
    std::vector<std::uint32_t> t(kGf16Order);
    t[0] = 0;
    for (unsigned v = 1; v < kGf16Order; ++v) {
      t[v] = Gf16Log(static_cast<Gf16>(v));
    }
    Fwht(t.data(), kGf16Order);
    return t;
  }();
  return table;
}

std::size_t Pow2Ceil(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::size_t ValidateSymbolBytes(std::size_t symbol_bytes) {
  if (symbol_bytes == 0 || symbol_bytes % 2 != 0) {
    throw std::invalid_argument(
        "ReedSolomon: symbol_bytes must be even (16-bit field elements)");
  }
  return symbol_bytes / 2;
}

}  // namespace

std::size_t RsBlockSize(std::size_t k, std::size_t m) {
  if (k == 0 || m == 0) {
    throw std::invalid_argument("ReedSolomon: k and m must be positive");
  }
  if (k > 32768 || m > 32768) {
    throw std::invalid_argument(
        "ReedSolomon: k and m are limited to 32768 (2K <= |GF(2^16)|)");
  }
  return Pow2Ceil(k > m ? k : m);
}

ReedSolomonEncoder::ReedSolomonEncoder(std::size_t k, std::size_t m,
                                       std::size_t symbol_bytes)
    : k_(k),
      m_(m),
      symbol_bytes_(symbol_bytes),
      words_(ValidateSymbolBytes(symbol_bytes)),
      cap_(RsBlockSize(k, m)),
      work_(cap_ * words_, 0),
      coset_(cap_ * words_, 0) {}

void ReedSolomonEncoder::SetSource(std::size_t i,
                                   std::span<const std::uint8_t> data) {
  if (i >= k_ || data.size() != symbol_bytes_) {
    throw std::invalid_argument("ReedSolomonEncoder: bad source symbol");
  }
  if (finished_) {
    throw std::logic_error("ReedSolomonEncoder: SetSource after Finish");
  }
  std::memcpy(work_.data() + i * words_, data.data(), symbol_bytes_);
}

void ReedSolomonEncoder::Finish() {
  if (finished_) return;
  const AdditiveFft& fft = AdditiveFft::Instance();
  // work_ rows [0, k) hold the data, [k, K) the virtual zeros: IFFT
  // turns evaluations on [0, K) into P's novel-basis coefficients,
  // and the coset FFT evaluates P on [K, 2K) — the parity points.
  fft.Ifft(work_.data(), words_, cap_, 0);
  std::memcpy(coset_.data(), work_.data(), cap_ * words_ * sizeof(Gf16));
  fft.Fft(coset_.data(), words_, cap_, cap_);
  finished_ = true;
}

std::span<const std::uint8_t> ReedSolomonEncoder::Parity(std::size_t j) const {
  assert(finished_ && j < m_);
  return {reinterpret_cast<const std::uint8_t*>(coset_.data() + j * words_),
          symbol_bytes_};
}

void ReedSolomonEncoder::Reset() {
  std::memset(work_.data(), 0, work_.size() * sizeof(Gf16));
  finished_ = false;
}

ReedSolomonDecoder::ReedSolomonDecoder(std::size_t k, std::size_t m,
                                       std::size_t symbol_bytes)
    : k_(k),
      m_(m),
      symbol_bytes_(symbol_bytes),
      words_(ValidateSymbolBytes(symbol_bytes)),
      cap_(RsBlockSize(k, m)),
      syms_((k + m) * words_, 0),
      have_(k + m, false) {}

bool ReedSolomonDecoder::AddSourceSpan(std::size_t i,
                                       std::span<const std::uint8_t> data) {
  if (i >= k_ || data.size() != symbol_bytes_) {
    throw std::invalid_argument("ReedSolomonDecoder: bad source symbol");
  }
  if (have_[i]) return false;
  std::memcpy(syms_.data() + i * words_, data.data(), symbol_bytes_);
  have_[i] = true;
  ++known_data_;
  return true;
}

bool ReedSolomonDecoder::AddParitySpan(std::size_t j,
                                       std::span<const std::uint8_t> data) {
  if (j >= m_ || data.size() != symbol_bytes_) {
    throw std::invalid_argument("ReedSolomonDecoder: bad parity symbol");
  }
  if (have_[k_ + j]) return false;
  std::memcpy(syms_.data() + (k_ + j) * words_, data.data(), symbol_bytes_);
  have_[k_ + j] = true;
  ++known_parity_;
  return true;
}

bool ReedSolomonDecoder::ConsumeEquationSpan(
    std::span<const std::uint8_t> coefs, std::span<const std::uint8_t> data) {
  if (coefs.size() != k_ + m_ || data.size() != symbol_bytes_) {
    throw std::invalid_argument("ReedSolomonDecoder: equation shape mismatch");
  }
  // Pure erasure code: only unit rows (one symbol received verbatim)
  // are consumable. A dense combination cannot raise this decoder's
  // rank — callers needing that route the flow to CodecKind::kRlnc.
  std::size_t unit = k_ + m_;
  for (std::size_t i = 0; i < coefs.size(); ++i) {
    if (coefs[i] == 0) continue;
    if (coefs[i] != 1 || unit != k_ + m_) return false;
    unit = i;
  }
  if (unit == k_ + m_) return false;
  return unit < k_ ? AddSourceSpan(unit, data) : AddParitySpan(unit - k_, data);
}

void ReedSolomonDecoder::Decode() {
  if (!CanDecode()) {
    throw std::logic_error("ReedSolomonDecoder: Decode before CanDecode");
  }
  if (Complete()) return;
  const std::size_t n2 = 2 * cap_;
  work_.assign(n2 * words_, 0);
  scratch_.resize(n2 * words_);
  loc_.assign(n2, 0);

  // Erased positions of the length-2K codeword: missing data, missing
  // parity, and the never-materialized evaluation tail [K + m, 2K).
  // Points [k, K) are KNOWN virtual zeros, not erasures.
  std::vector<std::uint32_t> erased;
  erased.reserve(n2);
  for (std::size_t u = 0; u < k_; ++u) {
    if (!have_[u]) erased.push_back(static_cast<std::uint32_t>(u));
  }
  for (std::size_t j = 0; j < m_; ++j) {
    if (!have_[k_ + j]) erased.push_back(static_cast<std::uint32_t>(cap_ + j));
  }
  for (std::size_t u = cap_ + m_; u < n2; ++u) {
    erased.push_back(static_cast<std::uint32_t>(u));
  }

  // loc_[u] = log e(point(u)) = sum over erased v of log(u ^ v), with
  // log 0 := 0 dropping the v == u term — so exp(loc_[u]) is e(u) at
  // surviving points and e'(u) = prod_{v != u} (u ^ v) at erased ones.
  if (n2 * erased.size() <= (std::size_t{1} << 21)) {
    for (std::size_t u = 0; u < n2; ++u) {
      std::uint64_t sum = 0;
      for (const std::uint32_t v : erased) {
        const std::uint32_t w = static_cast<std::uint32_t>(u) ^ v;
        if (w != 0) sum += Gf16Log(static_cast<Gf16>(w));
      }
      loc_[u] = static_cast<std::uint32_t>(sum % kLogMod);
    }
  } else {
    // XOR-convolution of the erasure indicator with the log table via
    // three full-domain FWHTs (one amortized into FwhtLogTable).
    std::vector<std::uint32_t> ind(kGf16Order, 0);
    for (const std::uint32_t v : erased) ind[v] = 1;
    Fwht(ind.data(), kGf16Order);
    const auto& flog = FwhtLogTable();
    for (std::size_t i = 0; i < kGf16Order; ++i) {
      ind[i] = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(ind[i]) * flog[i]) % kLogMod);
    }
    Fwht(ind.data(), kGf16Order);
    for (std::size_t u = 0; u < n2; ++u) loc_[u] = ind[u];
  }

  // d_u = c_u * e(u) at known points, 0 at erasures (and at the
  // virtual zeros, where c_u = 0): the evaluations of N = P * e.
  for (std::size_t u = 0; u < k_ + m_; ++u) {
    if (!have_[u]) continue;
    const std::size_t point = u < k_ ? u : cap_ + (u - k_);
    Gf16* row = work_.data() + point * words_;
    std::memcpy(row, syms_.data() + u * words_, words_ * sizeof(Gf16));
    Gf16Scale({row, words_}, Gf16Exp(loc_[point]));
  }

  // N has degree < 2K: IFFT recovers it exactly; N' = P e' at erased
  // points (P' e vanishes there); FFT brings N' back to the domain.
  const AdditiveFft& fft = AdditiveFft::Instance();
  fft.Ifft(work_.data(), words_, n2, 0);
  fft.Derivative(work_.data(), words_, n2, scratch_.data());
  fft.Fft(work_.data(), words_, n2, 0);

  for (std::size_t u = 0; u < k_; ++u) {
    if (have_[u]) continue;
    Gf16* row = work_.data() + u * words_;
    Gf16Scale({row, words_}, Gf16Inv(Gf16Exp(loc_[u])));
    std::memcpy(syms_.data() + u * words_, row, words_ * sizeof(Gf16));
    have_[u] = true;
    ++known_data_;
  }
}

std::span<const std::uint8_t> ReedSolomonDecoder::Symbol(std::size_t i) const {
  assert(i < k_ && have_[i]);
  return {reinterpret_cast<const std::uint8_t*>(syms_.data() + i * words_),
          symbol_bytes_};
}

void ReedSolomonDecoder::Reset() {
  std::fill(have_.begin(), have_.end(), false);
  known_data_ = 0;
  known_parity_ = 0;
}

}  // namespace ppr::fec
