#include "fec/fft.h"

#include <cassert>
#include <cstring>

namespace ppr::fec {

const AdditiveFft& AdditiveFft::Instance() {
  static const AdditiveFft fft;
  return fft;
}

AdditiveFft::AdditiveFft() {
  // w[b] = W_i(beta_b), advanced level by level:
  //   W_{i+1}(beta_b) = W_i(beta_b)^2 ^ W_i(beta_i) W_i(beta_b)
  //                   = w[b] * (w[b] ^ w[i]).
  // At each level, lin_[i][b] = w[b] / w[i] (zero for b < i, one for
  // b == i, since W_i vanishes on V_i and the normalizer is w[i]).
  Gf16 w[16];
  for (unsigned b = 0; b < 16; ++b) w[b] = static_cast<Gf16>(1u << b);
  // vprod = product of the nonzero elements of V_i; the x-coefficient
  // of W_i(x) = x * prod_{v in V_i, v != 0} (x ^ v) evaluated at the
  // XOR-expansion's constant term.
  Gf16 vprod = 1;
  for (unsigned i = 0; i < 16; ++i) {
    for (unsigned b = 0; b < 16; ++b) {
      lin_[i][b] = b < i ? 0 : Gf16Div(w[b], w[i]);
    }
    // W_i'(x) = prod of nonzero V_i elements, so WHat_i' = vprod / w[i].
    deriv_[i] = Gf16Div(vprod, w[i]);
    // Advance to level i+1 (also extends vprod over V_{i+1} \ V_i:
    // every new element is old ^ beta_i, i.e. indices 2^i .. 2^{i+1}-1).
    if (i + 1 < 16) {
      for (unsigned v = 1u << i; v < (2u << i); ++v) {
        vprod = Gf16Mul(vprod, static_cast<Gf16>(v));
      }
      const Gf16 wi = w[i];
      for (unsigned b = 0; b < 16; ++b) {
        w[b] = Gf16Mul(w[b], static_cast<Gf16>(w[b] ^ wi));
      }
    }
  }
}

Gf16 AdditiveFft::SkewAt(unsigned i, unsigned u) const {
  assert(i < 16);
  Gf16 s = 0;
  while (u != 0) {
    const unsigned b = static_cast<unsigned>(__builtin_ctz(u));
    s ^= lin_[i][b];
    u &= u - 1;
  }
  return s;
}

void AdditiveFft::Fft(Gf16* data, std::size_t words, std::size_t n,
                      std::size_t base) const {
  assert((n & (n - 1)) == 0 && base % n == 0 && base + n <= 65536);
  if (n < 2) return;
  unsigned level = 0;
  while ((std::size_t{1} << (level + 1)) < n) ++level;
  // level = log2(n) - 1 down to 0: split on WHat_level, one skew per
  // block (WHat_level is constant on the block's V_level coset).
  for (unsigned i = level;; --i) {
    const std::size_t half = std::size_t{1} << i;
    for (std::size_t block = 0; block < n; block += 2 * half) {
      const Gf16 skew = SkewAt(i, static_cast<unsigned>(base + block));
      for (std::size_t u = 0; u < half; ++u) {
        Gf16* x = data + (block + u) * words;
        Gf16* y = data + (block + half + u) * words;
        Gf16ButterflyFwd({x, words}, {y, words}, skew);
      }
    }
    if (i == 0) break;
  }
}

void AdditiveFft::Ifft(Gf16* data, std::size_t words, std::size_t n,
                       std::size_t base) const {
  assert((n & (n - 1)) == 0 && base % n == 0 && base + n <= 65536);
  if (n < 2) return;
  for (std::size_t half = 1; half < n; half *= 2) {
    unsigned i = 0;
    while ((std::size_t{1} << i) < half) ++i;
    for (std::size_t block = 0; block < n; block += 2 * half) {
      const Gf16 skew = SkewAt(i, static_cast<unsigned>(base + block));
      for (std::size_t u = 0; u < half; ++u) {
        Gf16* x = data + (block + u) * words;
        Gf16* y = data + (block + half + u) * words;
        Gf16ButterflyInv({x, words}, {y, words}, skew);
      }
    }
  }
}

void AdditiveFft::Derivative(Gf16* data, std::size_t words, std::size_t n,
                             Gf16* scratch) const {
  assert((n & (n - 1)) == 0);
  std::memset(scratch, 0, n * words * sizeof(Gf16));
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t bits = j;
    while (bits != 0) {
      const unsigned i = static_cast<unsigned>(__builtin_ctzll(bits));
      bits &= bits - 1;
      Gf16Axpy({scratch + (j ^ (std::size_t{1} << i)) * words, words},
               deriv_[i], {data + j * words, words});
    }
  }
  std::memcpy(data, scratch, n * words * sizeof(Gf16));
}

}  // namespace ppr::fec
