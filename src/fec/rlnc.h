// Systematic random linear network coding over GF(2^8).
//
// The source block is a fixed set of equal-size symbols (the
// codeword-aligned chunks of one packet body). Systematic transmission
// means the source symbols themselves cross the channel first (in PPR's
// case: the original packet transmission); repair symbols are random
// linear combinations of all source symbols, with the combination
// coefficients derived deterministically from a 32-bit seed so a repair
// symbol costs seed + payload on the wire rather than a full coefficient
// vector (the RLC convention of S-PRAC and the PQUIC FEC plugin).
//
// The decoder performs incremental Gauss-Jordan elimination: systematic
// symbols the receiver already trusts enter as identity rows, repair
// symbols as dense rows, and decoding succeeds as soon as the rank
// reaches the source block size. Each row is stored FUSED — one
// contiguous [coefs | data] buffer — so every elimination step (the
// forward sweep, the pivot normalization, the back-elimination) runs as
// a single GfAxpyN/GfScale/GfAxpy pass over coefficient and payload
// bytes together instead of two sweeps, halving dispatch overhead and
// streaming each row through cache once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fec/equation_sink.h"
#include "fec/gf256.h"

namespace ppr::fec {

// One coded repair symbol: `seed` regenerates the coefficient vector on
// both sides, `data` is the coded payload (symbol_bytes long).
struct RepairSymbol {
  std::uint32_t seed = 0;
  std::vector<std::uint8_t> data;

  bool operator==(const RepairSymbol&) const = default;
};

// The n_source combination coefficients a repair seed denotes.
std::vector<std::uint8_t> RepairCoefficients(std::uint32_t seed,
                                             std::size_t n_source);

// Allocation-free form: fills `coefs` (its size is n_source) with the
// same expansion. Hot paths (the flow engine's batch planner, decoder
// ingest) call this into reused scratch instead of allocating a vector
// per repair symbol.
void RepairCoefficientsInto(std::uint32_t seed, std::span<std::uint8_t> coefs);

// Partitions the 32-bit seed space by originating repair party so
// concurrent streams (the source plus any overhearing relays) can never
// emit colliding seeds: party p owns seeds [p << 24, (p + 1) << 24).
// Party 0 (the source) keeps the plain counter range existing senders
// already use. The partition is collision-free for every distinct
// (party, counter mod 2^24) pair, which covers arbitrary relay ids up
// to kMaxRepairParties - 1 — the widest roster the 8-bit wire origin
// field can name.
inline constexpr std::size_t kMaxRepairParties = 256;
std::uint32_t PartySeed(std::uint8_t party, std::uint32_t counter);

// Provenance tag for equations distilled from collided receptions
// (src/collide/). Relay rosters are capped at 254 ids
// (RelayCodedStrategy), so the top party id can never name a relay and
// is reserved for collision provenance: evicting a poisoned stripping
// chain as a group never distrusts genuine relay traffic.
inline constexpr std::uint8_t kCollisionResolvedParty = 0xFF;

// Inverse projections of PartySeed: the owning party and the in-party
// counter a seed denotes. SeedParty(PartySeed(p, c)) == p and
// SeedCounter(PartySeed(p, c)) == c mod 2^24 for every p, c.
std::uint8_t SeedParty(std::uint32_t seed);
std::uint32_t SeedCounter(std::uint32_t seed);

// A repair equation over a PARTIAL view of the source block (the relay
// case): coefficients are regenerated densely from `seed`, then zeroed
// wherever `have` is false, and the combination runs over `symbols`
// (the relay's own copies). The receiving decoder must apply the same
// mask to accept the equation; the mask travels with the frame
// descriptor. `symbols` indices with have[i] == false are never read.
RepairSymbol MakeMaskedRepair(
    const std::vector<std::vector<std::uint8_t>>& symbols,
    const std::vector<bool>& have, std::uint32_t seed);

// The masked coefficient vector the receiver must use for a relay
// equation: RepairCoefficients(seed) with non-`have` entries zeroed.
std::vector<std::uint8_t> MaskedCoefficients(std::uint32_t seed,
                                             const std::vector<bool>& have);

class RlncEncoder {
 public:
  // All source symbols must be non-empty and the same size.
  explicit RlncEncoder(std::vector<std::vector<std::uint8_t>> source);

  std::size_t num_source() const { return source_.size(); }
  std::size_t symbol_bytes() const { return source_.front().size(); }
  const std::vector<std::vector<std::uint8_t>>& source() const {
    return source_;
  }

  RepairSymbol MakeRepair(std::uint32_t seed) const;

 private:
  std::vector<std::vector<std::uint8_t>> source_;
};

class RlncDecoder : public EquationSink {
 public:
  RlncDecoder(std::size_t n_source, std::size_t symbol_bytes);

  std::size_t num_source() const { return n_source_; }
  std::size_t symbol_bytes() const { return symbol_bytes_; }
  std::size_t rank() const { return rank_; }
  bool Complete() const { return rank_ == n_source_; }

  // A systematic symbol received (or trusted) verbatim. Returns true if
  // it increased the rank.
  bool AddSource(std::size_t index, std::vector<std::uint8_t> data);

  // Borrowed-span form of AddSource: `data` is copied into reused
  // internal scratch, so a caller replaying a retained block
  // (CodedRepairSession::Rebuild) allocates nothing per call.
  bool AddSourceSpan(std::size_t index, std::span<const std::uint8_t> data);

  // A coded repair symbol; coefficients are regenerated from its seed.
  bool AddRepair(const RepairSymbol& repair);

  // Batch ingest: every repair in order, coefficients expanded into one
  // reused scratch buffer. Returns how many increased the rank.
  std::size_t AddRepairBatch(std::span<const RepairSymbol> repairs);

  // A raw equation: coefs (n_source long) . source = data.
  bool AddEquation(std::vector<std::uint8_t> coefs,
                   std::vector<std::uint8_t> data);

  // Borrowed-span form of AddEquation; the decoder copies into reused
  // scratch and retired pivot rows are recycled, so steady-state ingest
  // (dependent equations, post-Reset rebuilds) performs no allocation.
  bool AddEquationSpan(std::span<const std::uint8_t> coefs,
                       std::span<const std::uint8_t> data);

  // EquationSink: column i is source symbol i.
  std::size_t equation_width() const override { return n_source_; }
  std::size_t equation_bytes() const override { return symbol_bytes_; }
  bool ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                           std::span<const std::uint8_t> data) override {
    return AddEquationSpan(coefs, data);
  }

  // Back to rank 0 with the same shape. Pivot row buffers are parked in
  // a spare pool and reused by later insertions — cheaper than
  // reconstructing the decoder when a session rebuilds its elimination
  // state (CodedRepairSession::Rebuild).
  void Reset();

  // Decoded source symbol `i` (a view into the pivot row, valid until
  // the next mutating call); requires Complete().
  std::span<const std::uint8_t> Symbol(std::size_t i) const;

 private:
  // One fused row: n_source_ coefficient bytes followed by symbol_bytes_
  // payload bytes, eliminated together in single GF passes.
  using Row = std::vector<std::uint8_t>;

  std::size_t row_bytes() const { return n_source_ + symbol_bytes_; }
  std::span<const std::uint8_t> RowCoefs(const Row& row) const {
    return {row.data(), n_source_};
  }

  // Runs the elimination sweep over the fused work row (work_),
  // inserting the surviving pivot. The shared core of every ingest
  // entry point.
  bool EliminateWork();
  Row TakeSpareRow();

  std::size_t n_source_;
  std::size_t symbol_bytes_;
  std::size_t rank_ = 0;
  // pivot_[i] holds the row whose leading coefficient is column i,
  // scaled to 1 and with zeros at every other pivot column (Gauss-Jordan
  // reduced). At full rank each row is the unit vector e_i, so its data
  // half IS source symbol i.
  std::vector<std::optional<Row>> pivot_;
  // Reused scratch: the in-flight fused equation, the batched
  // elimination term list, seed-expanded coefficients, and retired row
  // buffers.
  Row work_;
  std::vector<GfTerm> terms_;
  std::vector<std::uint8_t> coef_scratch_;
  std::vector<Row> spare_;
};

}  // namespace ppr::fec
