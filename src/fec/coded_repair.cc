#include "fec/coded_repair.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ppr::fec {

std::vector<std::vector<std::uint8_t>> BodyToSymbols(
    const BitVec& body, std::size_t bits_per_codeword,
    std::size_t codewords_per_symbol) {
  const std::size_t symbol_bits = bits_per_codeword * codewords_per_symbol;
  if (symbol_bits == 0 || symbol_bits % 8 != 0) {
    throw std::invalid_argument(
        "BodyToSymbols: symbol size must be whole octets");
  }
  if (body.size() % bits_per_codeword != 0) {
    throw std::invalid_argument("BodyToSymbols: ragged body");
  }
  const std::size_t n = (body.size() + symbol_bits - 1) / symbol_bits;
  std::vector<std::vector<std::uint8_t>> symbols;
  symbols.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t begin = s * symbol_bits;
    const std::size_t len = std::min(symbol_bits, body.size() - begin);
    BitVec chunk = body.Slice(begin, len);
    while (chunk.size() < symbol_bits) chunk.PushBack(false);
    symbols.push_back(chunk.ToBytes());
  }
  return symbols;
}

BitVec SymbolsToBody(const std::vector<std::vector<std::uint8_t>>& symbols,
                     std::size_t body_bits) {
  BitVec body;
  for (const auto& s : symbols) {
    body.AppendBits(BitVec::FromBytes(s));
    if (body.size() >= body_bits) break;
  }
  if (body.size() < body_bits) {
    throw std::invalid_argument("SymbolsToBody: symbols cover too few bits");
  }
  return body.Slice(0, body_bits);
}

namespace {

const std::vector<std::vector<std::uint8_t>>& ValidatedBlock(
    const std::vector<std::vector<std::uint8_t>>& received) {
  if (received.empty() || received.front().empty()) {
    throw std::invalid_argument("CodedRepairSession: empty source block");
  }
  return received;
}

}  // namespace

CodedRepairSession::CodedRepairSession(
    std::vector<std::vector<std::uint8_t>> received, std::vector<bool> good,
    std::vector<double> suspicion)
    : received_(std::move(received)),
      trusted_(std::move(good)),
      suspicion_(std::move(suspicion)),
      decoder_(ValidatedBlock(received_).size(), received_.front().size()) {
  if (trusted_.size() != received_.size() ||
      suspicion_.size() != received_.size()) {
    throw std::invalid_argument("CodedRepairSession: label shape mismatch");
  }
  Rebuild();
}

bool CodedRepairSession::ConsumeRepair(const RepairSymbol& repair) {
  if (repair.data.size() != symbol_bytes()) {
    throw std::invalid_argument("ConsumeRepair: symbol size mismatch");
  }
  repairs_.push_back(repair);
  return decoder_.AddRepair(repair);
}

std::vector<std::vector<std::uint8_t>> CodedRepairSession::Decode() const {
  assert(CanDecode());
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(num_source());
  for (std::size_t i = 0; i < num_source(); ++i) {
    out.push_back(decoder_.Symbol(i));
  }
  return out;
}

std::size_t CodedRepairSession::EvictSuspects() {
  // Most suspect trusted symbols first; stable order for determinism.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < num_source(); ++i) {
    if (trusted_[i]) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return suspicion_[a] > suspicion_[b];
                   });
  const std::size_t count = std::min(evict_batch_, order.size());
  for (std::size_t k = 0; k < count; ++k) trusted_[order[k]] = false;
  evict_batch_ *= 2;
  if (count > 0) Rebuild();
  return count;
}

std::size_t CodedRepairSession::num_trusted() const {
  std::size_t n = 0;
  for (const bool t : trusted_) n += t ? 1 : 0;
  return n;
}

void CodedRepairSession::Rebuild() {
  decoder_ = RlncDecoder(num_source(), symbol_bytes());
  for (std::size_t i = 0; i < num_source(); ++i) {
    if (trusted_[i]) decoder_.AddSource(i, received_[i]);
  }
  for (const auto& r : repairs_) decoder_.AddRepair(r);
}

}  // namespace ppr::fec
