#include "fec/coded_repair.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "obs/obs.h"

namespace ppr::fec {

std::vector<std::vector<std::uint8_t>> BodyToSymbols(
    const BitVec& body, std::size_t bits_per_codeword,
    std::size_t codewords_per_symbol) {
  const std::size_t symbol_bits = bits_per_codeword * codewords_per_symbol;
  if (symbol_bits == 0 || symbol_bits % 8 != 0) {
    throw std::invalid_argument(
        "BodyToSymbols: symbol size must be whole octets");
  }
  if (body.size() % bits_per_codeword != 0) {
    throw std::invalid_argument("BodyToSymbols: ragged body");
  }
  const std::size_t n = (body.size() + symbol_bits - 1) / symbol_bits;
  std::vector<std::vector<std::uint8_t>> symbols;
  symbols.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t begin = s * symbol_bits;
    const std::size_t len = std::min(symbol_bits, body.size() - begin);
    BitVec chunk = body.Slice(begin, len);
    while (chunk.size() < symbol_bits) chunk.PushBack(false);
    symbols.push_back(chunk.ToBytes());
  }
  return symbols;
}

BitVec SymbolsToBody(const std::vector<std::vector<std::uint8_t>>& symbols,
                     std::size_t body_bits) {
  BitVec body;
  for (const auto& s : symbols) {
    body.AppendBits(BitVec::FromBytes(s));
    if (body.size() >= body_bits) break;
  }
  if (body.size() < body_bits) {
    throw std::invalid_argument("SymbolsToBody: symbols cover too few bits");
  }
  return body.Slice(0, body_bits);
}

namespace {

const std::vector<std::vector<std::uint8_t>>& ValidatedBlock(
    const std::vector<std::vector<std::uint8_t>>& received) {
  if (received.empty() || received.front().empty()) {
    throw std::invalid_argument("CodedRepairSession: empty source block");
  }
  return received;
}

}  // namespace

CodedRepairSession::CodedRepairSession(
    std::vector<std::vector<std::uint8_t>> received, std::vector<bool> good,
    std::vector<double> suspicion, CodecKind codec)
    : received_(std::move(received)),
      trusted_(std::move(good)),
      suspicion_(std::move(suspicion)),
      codec_(codec),
      decoder_(ValidatedBlock(received_).size(), received_.front().size()) {
  if (trusted_.size() != received_.size() ||
      suspicion_.size() != received_.size()) {
    throw std::invalid_argument("CodedRepairSession: label shape mismatch");
  }
  if (codec_ == CodecKind::kReedSolomon) {
    // RS(k, m = k): the parity budget matches the worst possible
    // deficit, and the cycling parity index never skips coverage.
    rs_ = std::make_unique<ReedSolomonDecoder>(
        received_.size(), received_.size(), received_.front().size());
    parity_seen_.assign(num_source(), false);
  }
  Rebuild();
}

bool CodedRepairSession::ConsumeRepair(const RepairSymbol& repair) {
  if (rs_) {
    const std::size_t m = num_source();
    const std::size_t j = (SeedCounter(repair.seed) % m + m - 1) % m;
    if (parity_seen_[j]) return false;  // cycling resend of a banked index
    parity_seen_[j] = true;
    parity_bank_.emplace_back(j, repair.data);
    obs::Count("fec.coded.equations.source");
    const bool rank_up = rs_->AddParitySpan(j, repair.data);
    if (rank_up) obs::Count("fec.coded.rank_increments");
    return rank_up;
  }
  coef_scratch_.resize(num_source());
  RepairCoefficientsInto(repair.seed, coef_scratch_);
  return ConsumeEquationSpan(coef_scratch_, repair.data, /*suspicion=*/0.0,
                             /*evictable=*/false);
}

bool CodedRepairSession::ConsumeEquation(std::vector<std::uint8_t> coefs,
                                         std::vector<std::uint8_t> data,
                                         double suspicion, bool evictable,
                                         std::uint8_t party) {
  return ConsumeEquationSpan(coefs, data, suspicion, evictable, party);
}

bool CodedRepairSession::ConsumeEquationSpan(std::span<const std::uint8_t> coefs,
                                             std::span<const std::uint8_t> data,
                                             double suspicion, bool evictable,
                                             std::uint8_t party) {
  if (coefs.size() != num_source() || data.size() != symbol_bytes()) {
    throw std::invalid_argument("ConsumeEquation: shape mismatch");
  }
  // An erasure code cannot consume a dense combination; flows relying
  // on relay equations select CodecKind::kRlnc.
  if (rs_) return false;
  BankedEquation eq;
  eq.coefs.assign(coefs.begin(), coefs.end());
  eq.data.assign(data.begin(), data.end());
  eq.suspicion = suspicion;
  eq.evictable = evictable;
  eq.party = party;
  equations_.push_back(std::move(eq));
  const bool rank_up = decoder_.AddEquationSpan(coefs, data);
  obs::Count(party == 0 ? "fec.coded.equations.source"
                        : "fec.coded.equations.relay");
  if (rank_up) obs::Count("fec.coded.rank_increments");
  obs::TraceInstant("coded.equation", "fec", [&] {
    return obs::TraceArgs{
        {"party", static_cast<std::int64_t>(party)},
        {"rank", static_cast<std::int64_t>(decoder_.rank())},
        {"rank_up", rank_up ? 1 : 0}};
  });
  return rank_up;
}

std::vector<std::vector<std::uint8_t>> CodedRepairSession::Decode() const {
  assert(CanDecode());
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(num_source());
  if (rs_) {
    rs_->Decode();
    for (std::size_t i = 0; i < num_source(); ++i) {
      const auto sym = rs_->Symbol(i);
      out.emplace_back(sym.begin(), sym.end());
    }
    return out;
  }
  for (std::size_t i = 0; i < num_source(); ++i) {
    const auto sym = decoder_.Symbol(i);
    out.emplace_back(sym.begin(), sym.end());
  }
  return out;
}

std::size_t CodedRepairSession::EvictSuspects() {
  // One candidate list across both row kinds — still-trusted systematic
  // symbols (individually) and evictable equations grouped by
  // originating party (a relay's equations all share the relay's body
  // image, so a miss poisons them together) — most suspect first;
  // stable order for determinism. A party group's suspicion is the
  // worst across its still-banked rows.
  struct Candidate {
    double suspicion;
    bool is_party;
    std::size_t index;  // symbol index, or the party id
  };
  std::vector<Candidate> order;
  for (std::size_t i = 0; i < num_source(); ++i) {
    if (trusted_[i]) order.push_back({suspicion_[i], false, i});
  }
  std::map<std::uint8_t, double> party_suspicion;
  for (const auto& eq : equations_) {
    if (!eq.evictable || eq.distrusted) continue;
    auto [it, inserted] = party_suspicion.try_emplace(eq.party, eq.suspicion);
    if (!inserted) it->second = std::max(it->second, eq.suspicion);
  }
  for (const auto& [party, suspicion] : party_suspicion) {
    order.push_back({suspicion, true, party});
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.suspicion > b.suspicion;
                   });
  const std::size_t picks = std::min(evict_batch_, order.size());
  std::size_t rows = 0;
  for (std::size_t k = 0; k < picks; ++k) {
    if (order[k].is_party) {
      for (auto& eq : equations_) {
        if (eq.evictable && !eq.distrusted &&
            eq.party == static_cast<std::uint8_t>(order[k].index)) {
          eq.distrusted = true;
          ++rows;
        }
      }
    } else {
      trusted_[order[k].index] = false;
      ++rows;
    }
  }
  evict_batch_ *= 2;
  obs::Count("fec.coded.evictions");
  obs::Count("fec.coded.evicted_rows", rows);
  obs::TraceInstant("coded.evict", "fec", [&] {
    return obs::TraceArgs{{"candidates", static_cast<std::int64_t>(order.size())},
                          {"rows", static_cast<std::int64_t>(rows)}};
  });
  if (rows > 0) Rebuild();
  return rows;
}

std::size_t CodedRepairSession::equations_from(std::uint8_t party) const {
  std::size_t n = 0;
  for (const auto& eq : equations_) {
    if (eq.evictable && !eq.distrusted && eq.party == party) ++n;
  }
  return n;
}

std::size_t CodedRepairSession::num_trusted() const {
  std::size_t n = 0;
  for (const bool t : trusted_) n += t ? 1 : 0;
  return n;
}

void CodedRepairSession::Rebuild() {
  obs::Count("fec.coded.rebuilds");
  if (rs_) {
    // A distrusted systematic symbol is simply an erasure here: the
    // replayed basis is the still-trusted rows plus every banked
    // parity index.
    rs_->Reset();
    for (std::size_t i = 0; i < num_source(); ++i) {
      if (trusted_[i]) rs_->AddSourceSpan(i, received_[i]);
    }
    for (const auto& [j, data] : parity_bank_) rs_->AddParitySpan(j, data);
    return;
  }
  decoder_.Reset();
  // Span-based replay: the banked rows are borrowed, not copied, and the
  // decoder's Reset() parked its retired pivot rows for reuse, so a
  // rebuild allocates nothing in steady state.
  for (std::size_t i = 0; i < num_source(); ++i) {
    if (trusted_[i]) decoder_.AddSourceSpan(i, received_[i]);
  }
  for (const auto& eq : equations_) {
    // Once the basis is full every further replay is linearly dependent
    // and would only pay the elimination sweep to find that out.
    if (decoder_.Complete()) break;
    if (!eq.distrusted) decoder_.AddEquationSpan(eq.coefs, eq.data);
  }
}

}  // namespace ppr::fec
