#include "fec/rlnc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "fec/gf256.h"

namespace ppr::fec {

void RepairCoefficientsInto(std::uint32_t seed,
                            std::span<std::uint8_t> coefs) {
  // Mix the seed so consecutive seeds (the sender uses a counter) give
  // unrelated streams even through the first few draws.
  Rng rng(0x9E3779B97F4A7C15ull ^ (static_cast<std::uint64_t>(seed) << 17 |
                                   static_cast<std::uint64_t>(seed)));
  for (auto& c : coefs) c = static_cast<std::uint8_t>(rng.UniformInt(256));
}

std::vector<std::uint8_t> RepairCoefficients(std::uint32_t seed,
                                             std::size_t n_source) {
  std::vector<std::uint8_t> coefs(n_source);
  RepairCoefficientsInto(seed, coefs);
  return coefs;
}

std::uint32_t PartySeed(std::uint8_t party, std::uint32_t counter) {
  return (static_cast<std::uint32_t>(party) << 24) | (counter & 0xFFFFFFu);
}

std::uint8_t SeedParty(std::uint32_t seed) {
  return static_cast<std::uint8_t>(seed >> 24);
}

std::uint32_t SeedCounter(std::uint32_t seed) { return seed & 0xFFFFFFu; }

std::vector<std::uint8_t> MaskedCoefficients(std::uint32_t seed,
                                             const std::vector<bool>& have) {
  auto coefs = RepairCoefficients(seed, have.size());
  for (std::size_t i = 0; i < have.size(); ++i) {
    if (!have[i]) coefs[i] = 0;
  }
  return coefs;
}

RepairSymbol MakeMaskedRepair(
    const std::vector<std::vector<std::uint8_t>>& symbols,
    const std::vector<bool>& have, std::uint32_t seed) {
  if (symbols.size() != have.size() || symbols.empty()) {
    throw std::invalid_argument("MakeMaskedRepair: mask shape mismatch");
  }
  std::size_t width = 0;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (have[i]) width = symbols[i].size();
  }
  if (width == 0) {
    throw std::invalid_argument("MakeMaskedRepair: empty mask");
  }
  RepairSymbol out;
  out.seed = seed;
  out.data.assign(width, 0);
  const auto coefs = MaskedCoefficients(seed, have);
  std::vector<GfTerm> terms;
  terms.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (coefs[i] == 0) continue;
    if (symbols[i].size() != width) {
      throw std::invalid_argument("MakeMaskedRepair: ragged symbols");
    }
    terms.push_back({coefs[i], symbols[i]});
  }
  GfAxpyN(out.data, terms);
  return out;
}

RlncEncoder::RlncEncoder(std::vector<std::vector<std::uint8_t>> source)
    : source_(std::move(source)) {
  if (source_.empty() || source_.front().empty()) {
    throw std::invalid_argument("RlncEncoder: empty source block");
  }
  for (const auto& s : source_) {
    if (s.size() != source_.front().size()) {
      throw std::invalid_argument("RlncEncoder: ragged source symbols");
    }
  }
}

RepairSymbol RlncEncoder::MakeRepair(std::uint32_t seed) const {
  RepairSymbol out;
  out.seed = seed;
  out.data.assign(symbol_bytes(), 0);
  const auto coefs = RepairCoefficients(seed, num_source());
  std::vector<GfTerm> terms;
  terms.reserve(num_source());
  for (std::size_t i = 0; i < num_source(); ++i) {
    if (coefs[i] != 0) terms.push_back({coefs[i], source_[i]});
  }
  GfAxpyN(out.data, terms);
  return out;
}

RlncDecoder::RlncDecoder(std::size_t n_source, std::size_t symbol_bytes)
    : n_source_(n_source), symbol_bytes_(symbol_bytes), pivot_(n_source) {
  if (n_source == 0 || symbol_bytes == 0) {
    throw std::invalid_argument("RlncDecoder: empty source block");
  }
}

bool RlncDecoder::AddSource(std::size_t index, std::vector<std::uint8_t> data) {
  return AddSourceSpan(index, data);
}

bool RlncDecoder::AddSourceSpan(std::size_t index,
                                std::span<const std::uint8_t> data) {
  assert(index < n_source_);
  if (data.size() != symbol_bytes_) {
    throw std::invalid_argument("RlncDecoder: equation shape mismatch");
  }
  work_.assign(row_bytes(), 0);
  work_[index] = 1;
  std::copy(data.begin(), data.end(), work_.begin() + n_source_);
  return EliminateWork();
}

bool RlncDecoder::AddRepair(const RepairSymbol& repair) {
  return AddRepairBatch({&repair, 1}) != 0;
}

std::size_t RlncDecoder::AddRepairBatch(std::span<const RepairSymbol> repairs) {
  std::size_t gained = 0;
  coef_scratch_.resize(n_source_);
  for (const auto& repair : repairs) {
    if (Complete()) break;
    RepairCoefficientsInto(repair.seed, coef_scratch_);
    if (AddEquationSpan(coef_scratch_, repair.data)) ++gained;
  }
  return gained;
}

bool RlncDecoder::AddEquation(std::vector<std::uint8_t> coefs,
                              std::vector<std::uint8_t> data) {
  return AddEquationSpan(coefs, data);
}

bool RlncDecoder::AddEquationSpan(std::span<const std::uint8_t> coefs,
                                  std::span<const std::uint8_t> data) {
  if (coefs.size() != n_source_ || data.size() != symbol_bytes_) {
    throw std::invalid_argument("RlncDecoder: equation shape mismatch");
  }
  work_.resize(row_bytes());
  std::copy(coefs.begin(), coefs.end(), work_.begin());
  std::copy(data.begin(), data.end(), work_.begin() + n_source_);
  return EliminateWork();
}

bool RlncDecoder::EliminateWork() {
  // Forward-eliminate against every existing pivot. Pivot rows are
  // Gauss-Jordan reduced — zero at every OTHER pivot column — so
  // eliminating against pivot j never changes the factor a later pivot
  // sees; all factors can be read upfront and the whole sweep batched
  // into ONE GfAxpyN over the fused [coefs | data] rows: coefficient
  // and payload bytes are eliminated in the same pass instead of two.
  terms_.clear();
  for (std::size_t j = 0; j < n_source_; ++j) {
    if (work_[j] == 0 || !pivot_[j].has_value()) continue;
    terms_.push_back({work_[j], *pivot_[j]});
  }
  GfAxpyN(work_, terms_);

  // Find the new pivot column, if any rank survives.
  std::size_t lead = n_source_;
  for (std::size_t j = 0; j < n_source_; ++j) {
    if (work_[j] != 0) {
      lead = j;
      break;
    }
  }
  if (lead == n_source_) return false;  // linearly dependent

  GfScale(work_, GfInv(work_[lead]));

  // Back-eliminate the new column from existing rows so the basis stays
  // Gauss-Jordan reduced — again one fused pass per affected row.
  for (std::size_t j = 0; j < n_source_; ++j) {
    if (!pivot_[j].has_value()) continue;
    const std::uint8_t factor = (*pivot_[j])[lead];
    if (factor == 0) continue;
    GfAxpy(*pivot_[j], factor, work_);
  }

  // Swap the work row into a (possibly recycled) pivot row; the retired
  // buffer becomes the next call's work scratch.
  Row row = TakeSpareRow();
  row.swap(work_);
  pivot_[lead] = std::move(row);
  ++rank_;
  return true;
}

RlncDecoder::Row RlncDecoder::TakeSpareRow() {
  if (spare_.empty()) return Row{};
  Row row = std::move(spare_.back());
  spare_.pop_back();
  return row;
}

void RlncDecoder::Reset() {
  // Park retired pivot rows for reuse: a rebuild (the
  // CodedRepairSession evict-and-replay loop) re-inserts the same
  // number of rows it just dropped, so steady state allocates nothing.
  for (auto& p : pivot_) {
    if (p.has_value()) spare_.push_back(std::move(*p));
    p.reset();
  }
  rank_ = 0;
}

std::span<const std::uint8_t> RlncDecoder::Symbol(std::size_t i) const {
  assert(Complete());
  assert(i < n_source_ && pivot_[i].has_value());
  return std::span<const std::uint8_t>(*pivot_[i]).subspan(n_source_,
                                                           symbol_bytes_);
}

}  // namespace ppr::fec
