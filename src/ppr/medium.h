// Shared broadcast-medium API over the waveform PHY: one transmission,
// correlated receptions at every registered listener.
//
// The paper's testbed is a broadcast medium — when an interferer
// collides with a transmission, every co-located receiver of that
// transmission (the destination AND the overhearing relays) sees the
// same burst. The pre-medium channel layer wired each hop as a private
// arq::BodyChannel with its own collision draws, which systematically
// overstates multi-relay repair value: under private draws a relay
// usually holds a clean copy exactly when the destination lost its
// own, which a shared interferer does not allow.
//
// WaveformMedium fixes the model. A medium owns a roster of listeners
// (each with its own gain, Ec/N0, CFO, and timing skew — its
// geometry); Transmit() is one transmission event:
//
//   * Under CollisionCorrelation::kSharedInterferer the interferer
//     presence, burst content, carrier phase, and relative timing are
//     drawn ONCE per transmission — from a seed that is a pure
//     function of (medium seed, sender, transmission index), see
//     arq::SeedForTransmission — and projected through each listener's
//     own geometry. Per-listener AWGN stays private (a derived
//     per-(transmission, listener) stream), so losses correlate
//     without being identical.
//   * Under kIndependent each listener reproduces the legacy
//     MakeWaveformChannel draws bit-for-bit from its own persistent
//     Rng: private collision draws, the pre-medium behavior. A
//     single-listener medium IS the old point-to-point channel.
//
// Listener 0 is the reference listener (the destination in the session
// runners); the joint-loss statistics condition on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arq/chip_medium.h"
#include "arq/link_sim.h"
#include "common/rng.h"
#include "ppr/receiver_pipeline.h"

namespace ppr::core {

struct WaveformChannelParams;  // ppr/link.h

// One listener's receive geometry. `channel` carries the pipeline
// configuration, the chip-level SNR, the private-collision climate
// (kIndependent mode), and the listener's private seed; the remaining
// knobs project the shared transmission through this listener's
// position.
struct WaveformListenerParams {
  PipelineConfig pipeline;
  double ec_n0_db = 6.0;           // chip-level SNR of this hop
  double collision_probability = 0.0;   // kIndependent: private draw
  double interferer_relative_db = 0.0;  // interferer power at THIS listener
  std::size_t interferer_octets = 300;  // kIndependent: private burst length
  std::uint64_t seed = 1;          // private noise/collision stream
  double gain = 1.0;               // voltage gain on the data signal
  double cfo = 0.0;                // residual carrier offset, cycles/sample
  double timing_offset = 0.0;      // fractional-sample timing skew
};

// One transmission event. `sender` is the transmitting node's identity
// in the medium's seed chain (per-sender transmission counters);
// `seed` overrides the derived per-transmission seed, e.g. to force a
// specific interferer draw in tests.
struct Transmission {
  Transmission() = default;
  Transmission(BitVec bits, std::size_t sender_id = 0,
               std::optional<std::uint64_t> seed_override = std::nullopt)
      : body_bits(std::move(bits)), sender(sender_id), seed(seed_override) {}

  BitVec body_bits;  // ARQ body bits, a multiple of 4
  std::size_t sender = 0;
  std::optional<std::uint64_t> seed;
};

// kSharedInterferer: the transmission-level interferer climate
// (presence probability and burst length are medium properties; the
// burst's power at each listener is the listener's own
// interferer_relative_db).
struct SharedClimate {
  double collision_probability = 0.0;
  std::size_t interferer_octets = 300;
};

class WaveformMedium : public std::enable_shared_from_this<WaveformMedium> {
 public:
  using ListenerId = std::size_t;

  struct Reception {
    ListenerId listener = 0;
    std::vector<phy::DecodedSymbol> symbols;  // one per body codeword
    bool collided = false;         // an interferer overlapped this copy
    bool frame_recovered = false;  // the pipeline found the frame
    bool corrupted = false;        // unrecovered, or >=1 wrong codeword
  };

  static std::shared_ptr<WaveformMedium> Create(
      arq::CollisionCorrelation correlation, std::uint64_t medium_seed,
      const SharedClimate& climate = {});

  // Registers a listener; ids are assigned in call order and order the
  // receptions.
  ListenerId AddListener(const WaveformListenerParams& params);

  // The per-transmission seed for this medium's chain:
  // arq::SeedForTransmission(medium_seed, sender, tx_index).
  std::uint64_t SeedForTransmission(std::size_t sender,
                                    std::uint64_t tx_index) const;

  // One transmission -> one reception per listener, in listener order.
  // Counted in the joint-loss stats.
  std::vector<Reception> Transmit(const Transmission& tx);

  // arq adapters. The broadcast channel runs Transmit() with sender 0;
  // a listener (unicast) channel is a later transmission in the same
  // sender stream heard only by that listener (repair traffic) — it
  // advances the sender's transmission counter and shares the seed
  // chain but does not enter the joint-loss stats.
  arq::BroadcastBodyChannel MakeBroadcastChannel(std::size_t sender = 0);
  arq::BodyChannel MakeListenerChannel(ListenerId listener,
                                       std::size_t sender = 0);

  const arq::ListenerLossStats& StatsFor(ListenerId listener) const;
  const arq::SharedMediumStats& medium_stats() const { return medium_stats_; }
  std::size_t num_listeners() const { return listeners_.size(); }

 private:
  WaveformMedium(arq::CollisionCorrelation correlation,
                 std::uint64_t medium_seed, const SharedClimate& climate);

  struct Listener {
    WaveformListenerParams params;
    FrameModulator modulator;
    ReceiverPipeline pipeline;
    Rng rng;  // kIndependent: the legacy per-channel stream
    arq::ListenerLossStats stats;

    explicit Listener(const WaveformListenerParams& p)
        : params(p),
          modulator(p.pipeline.modem),
          pipeline(p.pipeline),
          rng(p.seed) {}
  };

  // The once-per-transmission draw a shared medium projects through
  // every listener.
  struct SharedDraw {
    std::uint64_t tx_seed = 0;
    double carrier_phase = 0.0;
    bool collided = false;
    std::vector<std::uint8_t> burst_octets;
    phy::SampleVec burst_wave;  // burst_octets modulated, phase applied
    double burst_phase = 0.0;
    double offset_fraction = 0.0;  // burst start as a fraction of slack
  };

  std::vector<Reception> TransmitImpl(const BitVec& bits, std::size_t sender,
                                      std::optional<std::uint64_t> seed,
                                      std::optional<ListenerId> only);
  Reception ReceiveAt(Listener& listener, ListenerId id,
                      const frame::FrameHeader& header,
                      const std::vector<std::uint8_t>& payload,
                      const BitVec& bits, const SharedDraw& shared,
                      const phy::SampleVec& base_wave,
                      const phy::ModemConfig& base_modem);

  arq::CollisionCorrelation correlation_;
  std::uint64_t medium_seed_;
  SharedClimate climate_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::uint64_t> tx_index_;  // per-sender counters, lazily grown
  arq::SharedMediumStats medium_stats_;
};

// The listener geometry implied by a legacy point-to-point channel
// parameter block (ppr/link.h): unit gain, no CFO or timing skew.
WaveformListenerParams ListenerFromChannelParams(
    const WaveformChannelParams& params);

}  // namespace ppr::core
