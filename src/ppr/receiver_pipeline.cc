#include "ppr/receiver_pipeline.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "phy/spreader.h"

namespace ppr::core {
namespace {

constexpr std::size_t kChipsPerOctet = 2 * phy::kChipsPerSymbol;

phy::SampleVec ModulatePattern(const phy::ModemConfig& modem,
                               const std::vector<std::uint8_t>& octets) {
  const phy::ChipCodebook codebook;
  const phy::MskModulator modulator(modem);
  const BitVec chips =
      phy::SpreadBits(codebook, BitVec::FromBytes(octets));
  return modulator.Modulate(chips);
}

}  // namespace

std::vector<phy::DecodedSymbol> RecoveredFrame::PayloadSymbols() const {
  const std::size_t first = frame::kHeaderOctets * 2;
  const std::size_t count = static_cast<std::size_t>(header.length) * 2;
  if (first + count > body_symbols.size()) return {};
  return {body_symbols.begin() + static_cast<std::ptrdiff_t>(first),
          body_symbols.begin() + static_cast<std::ptrdiff_t>(first + count)};
}

BitVec RecoveredFrame::PayloadBits() const {
  BitVec bits;
  for (const auto& s : PayloadSymbols()) bits.AppendUint(s.symbol, 4);
  return bits;
}

std::vector<phy::DecodedSymbol> RecoveredFrame::ArqBodySymbols() const {
  const std::size_t first = frame::kHeaderOctets * 2;
  const std::size_t count =
      (static_cast<std::size_t>(header.length) + frame::kPayloadCrcOctets) * 2;
  if (first + count > body_symbols.size()) return {};
  return {body_symbols.begin() + static_cast<std::ptrdiff_t>(first),
          body_symbols.begin() + static_cast<std::ptrdiff_t>(first + count)};
}

FrameModulator::FrameModulator(const phy::ModemConfig& config)
    : modulator_(config) {}

phy::SampleVec FrameModulator::Modulate(
    const frame::FrameHeader& header,
    std::span<const std::uint8_t> payload) const {
  return ModulateOctets(frame::BuildFrameOctets(header, payload));
}

phy::SampleVec FrameModulator::ModulateOctets(
    std::span<const std::uint8_t> octets) const {
  const BitVec chips =
      phy::SpreadBits(codebook_, BitVec::FromBytes(octets));
  return modulator_.Modulate(chips);
}

ReceiverPipeline::ReceiverPipeline(const PipelineConfig& config)
    : config_(config),
      demod_(config.modem),
      preamble_correlator_(
          ModulatePattern(config.modem, frame::PreamblePatternOctets())),
      postamble_correlator_(
          ModulatePattern(config.modem, frame::PostamblePatternOctets())) {}

double ReceiverPipeline::PreambleScoreAt(const phy::SampleVec& samples,
                                         std::size_t n) const {
  return preamble_correlator_.ScoreAt(samples, n);
}

double ReceiverPipeline::PostambleScoreAt(const phy::SampleVec& samples,
                                          std::size_t n) const {
  return postamble_correlator_.ScoreAt(samples, n);
}

std::vector<phy::DecodedSymbol> ReceiverPipeline::DecodeSymbols(
    const phy::SampleVec& samples, std::int64_t chip0_sample,
    std::size_t num_symbols, double carrier_phase) const {
  const int sps = config_.modem.samples_per_chip;
  // Derotate by the sync-derived phase estimate so the I/Q axes align
  // with the transmission regardless of its carrier phase.
  const phy::Sample derotate{std::cos(-carrier_phase),
                             std::sin(-carrier_phase)};
  std::vector<double> soft(num_symbols * phy::kChipsPerSymbol, 0.0);
  for (std::size_t k = 0; k < soft.size(); ++k) {
    const std::int64_t base =
        chip0_sample + static_cast<std::int64_t>(k) * sps;
    const phy::Sample c =
        derotate * demod_.DemodulateChipComplexAt(samples, base);
    soft[k] = (k % 2 == 0) ? c.real() : c.imag();
  }
  return phy::DespreadSoft(codebook_, soft, config_.hint_kind);
}

std::optional<RecoveredFrame> ReceiverPipeline::DecodeFromPreamble(
    const phy::SampleVec& samples, const phy::SyncHit& hit) const {
  const int sps = config_.modem.samples_per_chip;
  const std::int64_t frame_start = static_cast<std::int64_t>(hit.sample_offset);
  const std::int64_t header_chip0 =
      frame_start + static_cast<std::int64_t>(frame::kSyncPrefixOctets *
                                              kChipsPerOctet) *
                        sps;

  const auto header_symbols =
      DecodeSymbols(samples, header_chip0, frame::kHeaderOctets * 2, hit.phase);
  const auto header_octets =
      phy::DecodedSymbolsToBits(header_symbols).ToBytes();
  const auto header = frame::DecodeHeader(header_octets);
  if (!header.has_value()) return std::nullopt;
  if (header->length > config_.max_payload_octets) return std::nullopt;

  const frame::FrameLayout layout(header->length);
  const auto body_tx =
      DecodeSymbols(samples, header_chip0, layout.BodyOctets() * 2, hit.phase);

  RecoveredFrame frame;
  frame.sync = RecoveredFrame::SyncSource::kPreamble;
  frame.sync_score = hit.score;
  frame.frame_start_sample = hit.sample_offset;
  frame.header = *header;
  frame.body_symbols = phy::ToLogicalNibbleOrder(body_tx);
  return frame;
}

std::optional<RecoveredFrame> ReceiverPipeline::DecodeFromPostamble(
    const phy::SampleVec& samples, const phy::SyncHit& hit) const {
  const int sps = config_.modem.samples_per_chip;
  const std::int64_t postamble_chip0 =
      static_cast<std::int64_t>(hit.sample_offset);

  // Step 1-3 (section 4): roll back the trailer, parse it, verify its
  // checksum.
  const std::int64_t trailer_chip0 =
      postamble_chip0 -
      static_cast<std::int64_t>(frame::kTrailerOctets * kChipsPerOctet) * sps;
  const auto trailer_symbols =
      DecodeSymbols(samples, trailer_chip0, frame::kTrailerOctets * 2,
                    hit.phase);
  const auto trailer_octets =
      phy::DecodedSymbolsToBits(trailer_symbols).ToBytes();
  const auto header = frame::DecodeHeader(trailer_octets);
  if (!header.has_value()) return std::nullopt;
  if (header->length > config_.max_payload_octets) return std::nullopt;

  // Step 4: roll back the full frame and decode as much as possible.
  const frame::FrameLayout layout(header->length);
  const std::int64_t frame_start =
      postamble_chip0 -
      static_cast<std::int64_t>(layout.PostambleOffset() * kChipsPerOctet) *
          sps;
  const std::int64_t header_chip0 =
      frame_start + static_cast<std::int64_t>(frame::kSyncPrefixOctets *
                                              kChipsPerOctet) *
                        sps;
  const auto body_tx =
      DecodeSymbols(samples, header_chip0, layout.BodyOctets() * 2, hit.phase);

  RecoveredFrame frame;
  frame.sync = RecoveredFrame::SyncSource::kPostamble;
  frame.sync_score = hit.score;
  frame.frame_start_sample =
      frame_start < 0 ? 0 : static_cast<std::uint64_t>(frame_start);
  frame.header = *header;
  frame.header_from_trailer = true;
  frame.body_symbols = phy::ToLogicalNibbleOrder(body_tx);
  return frame;
}

std::vector<RecoveredFrame> ReceiverPipeline::Process(
    const phy::SampleVec& samples) const {
  std::vector<RecoveredFrame> frames;
  const int sps = config_.modem.samples_per_chip;
  const std::size_t pattern_len = preamble_correlator_.ReferenceLength();

  // Preamble path first, as a live receiver would.
  const auto pre_hits = preamble_correlator_.FindPeaks(
      samples, config_.sync_threshold, pattern_len);
  for (const auto& hit : pre_hits) {
    if (auto frame = DecodeFromPreamble(samples, hit)) {
      frames.push_back(std::move(*frame));
    }
  }

  // Postamble path recovers frames the preamble path missed.
  const auto post_hits = postamble_correlator_.FindPeaks(
      samples, config_.sync_threshold, pattern_len);
  for (const auto& hit : post_hits) {
    auto frame = DecodeFromPostamble(samples, hit);
    if (!frame.has_value()) continue;
    // Skip frames already recovered via their preamble: same start
    // offset (within a couple of chips of tolerance).
    const auto tolerance = static_cast<std::uint64_t>(4 * sps);
    const bool duplicate =
        std::any_of(frames.begin(), frames.end(), [&](const RecoveredFrame& f) {
          const std::uint64_t a = f.frame_start_sample;
          const std::uint64_t b = frame->frame_start_sample;
          return (a > b ? a - b : b - a) <= tolerance;
        });
    if (!duplicate) frames.push_back(std::move(*frame));
  }

  std::sort(frames.begin(), frames.end(),
            [](const RecoveredFrame& a, const RecoveredFrame& b) {
              return a.frame_start_sample < b.frame_start_sample;
            });
  return frames;
}

StreamingReceiver::StreamingReceiver(const PipelineConfig& config)
    : config_(config),
      pipeline_(config),
      buffer_([&] {
        // Hold two maximal frames so a frame completing at "now" is
        // fully in the buffer alongside the next frame's beginning.
        const frame::FrameLayout layout(config.max_payload_octets);
        const std::size_t frame_samples =
            (layout.TotalChips() + 2) *
            static_cast<std::size_t>(config.modem.samples_per_chip);
        return 2 * frame_samples;
      }()) {}

void StreamingReceiver::Push(const phy::SampleVec& samples) {
  buffer_.PushAll(samples);
  Scan(/*final_scan=*/false);
}

void StreamingReceiver::Flush() { Scan(/*final_scan=*/true); }

void StreamingReceiver::Scan(bool final_scan) {
  const std::uint64_t first = buffer_.OldestAvailable();
  const std::uint64_t end = buffer_.EndIndex();
  if (end <= first) return;
  const auto window =
      buffer_.Window(first, static_cast<std::size_t>(end - first));
  const auto found = pipeline_.Process(window);
  const auto tolerance = static_cast<std::uint64_t>(
      4 * config_.modem.samples_per_chip);
  for (const auto& f : found) {
    if (!final_scan) {
      // Defer frames whose tail has not fully arrived; decoding them now
      // would bake in garbage for the missing samples.
      const frame::FrameLayout layout(f.header.length);
      const std::uint64_t frame_samples =
          (layout.TotalChips() + 2) *
          static_cast<std::uint64_t>(config_.modem.samples_per_chip);
      if (f.frame_start_sample + frame_samples > window.size()) continue;
    }
    const std::uint64_t absolute = first + f.frame_start_sample;
    const bool seen = std::any_of(
        frames_.begin(), frames_.end(), [&](const RecoveredFrame& g) {
          const std::uint64_t a = g.frame_start_sample;
          return (a > absolute ? a - absolute : absolute - a) <= tolerance;
        });
    if (seen) continue;
    RecoveredFrame copy = f;
    copy.frame_start_sample = absolute;
    frames_.push_back(std::move(copy));
  }
}

}  // namespace ppr::core
