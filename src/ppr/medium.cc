#include "ppr/medium.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "obs/obs.h"
#include "phy/channel.h"
#include "ppr/link.h"

namespace ppr::core {
namespace {

// Fills a vector of all-bad codewords: the ARQ layer treats these as
// "nothing useful received".
std::vector<phy::DecodedSymbol> AllBad(std::size_t count) {
  std::vector<phy::DecodedSymbol> out(count);
  for (auto& s : out) {
    s.symbol = 0;
    s.hint = std::numeric_limits<double>::infinity();
    s.hamming_distance = phy::kChipsPerSymbol;
  }
  return out;
}

}  // namespace

WaveformListenerParams ListenerFromChannelParams(
    const WaveformChannelParams& params) {
  WaveformListenerParams listener;
  listener.pipeline = params.pipeline;
  listener.ec_n0_db = params.ec_n0_db;
  listener.collision_probability = params.collision_probability;
  listener.interferer_relative_db = params.interferer_relative_db;
  listener.interferer_octets = params.interferer_octets;
  listener.seed = params.seed;
  return listener;
}

WaveformMedium::WaveformMedium(arq::CollisionCorrelation correlation,
                               std::uint64_t medium_seed,
                               const SharedClimate& climate)
    : correlation_(correlation), medium_seed_(medium_seed), climate_(climate) {}

std::shared_ptr<WaveformMedium> WaveformMedium::Create(
    arq::CollisionCorrelation correlation, std::uint64_t medium_seed,
    const SharedClimate& climate) {
  return std::shared_ptr<WaveformMedium>(
      new WaveformMedium(correlation, medium_seed, climate));
}

WaveformMedium::ListenerId WaveformMedium::AddListener(
    const WaveformListenerParams& params) {
  listeners_.push_back(std::make_unique<Listener>(params));
  return listeners_.size() - 1;
}

std::uint64_t WaveformMedium::SeedForTransmission(
    std::size_t sender, std::uint64_t tx_index) const {
  return arq::SeedForTransmission(medium_seed_, sender, tx_index);
}

WaveformMedium::Reception WaveformMedium::ReceiveAt(
    Listener& l, ListenerId id, const frame::FrameHeader& header,
    const std::vector<std::uint8_t>& payload, const BitVec& bits,
    const SharedDraw& shared, const phy::SampleVec& base_wave,
    const phy::ModemConfig& base_modem) {
  const bool independent =
      correlation_ == arq::CollisionCorrelation::kIndependent;
  const std::size_t nibbles = bits.size() / 4;
  Reception r;
  r.listener = id;

  // Modulation depends only on the modem config; the transmission's
  // base waveform is modulated once and re-done here only when this
  // listener's modem differs from the reference's.
  const bool same_modem =
      l.params.pipeline.modem.samples_per_chip == base_modem.samples_per_chip &&
      l.params.pipeline.modem.amplitude == base_modem.amplitude;
  phy::SampleVec wave =
      same_modem ? base_wave : l.modulator.Modulate(header, payload);
  // The transmitter's carrier phase: the transmission's own draw on a
  // shared medium, this listener's private draw in the legacy model.
  const double phase =
      independent ? l.rng.UniformDouble(0.0, 2.0 * std::numbers::pi)
                  : shared.carrier_phase;
  phy::ApplyCarrierOffset(wave, l.params.cfo, phase);
  if (l.params.gain != 1.0) phy::ApplyGain(wave, l.params.gain);
  if (l.params.timing_offset != 0.0) {
    wave = phy::FractionalDelay(wave, l.params.timing_offset);
  }

  // Guard padding so sync search starts and ends in noise.
  const int sps = l.params.pipeline.modem.samples_per_chip;
  const std::size_t guard = static_cast<std::size_t>(64 * sps);
  phy::SampleVec air(wave.size() + 2 * guard, phy::Sample{0.0, 0.0});
  phy::MixInto(air, wave, guard);

  // Collision: a concurrent burst overlapping part of the frame. On a
  // shared medium the burst (content, phase, relative timing) is the
  // transmission's, projected here at this listener's interferer
  // power; in the legacy model everything is a private draw.
  if (independent) {
    r.collided = l.rng.Bernoulli(l.params.collision_probability);
    if (r.collided) {
      std::vector<std::uint8_t> junk(l.params.interferer_octets);
      for (auto& b : junk) {
        b = static_cast<std::uint8_t>(l.rng.UniformInt(256));
      }
      phy::SampleVec burst = l.modulator.ModulateOctets(junk);
      phy::ApplyCarrierOffset(
          burst, 0.0, l.rng.UniformDouble(0.0, 2.0 * std::numbers::pi));
      const double gain =
          std::pow(10.0, l.params.interferer_relative_db / 20.0);
      const std::size_t span =
          air.size() > burst.size() ? air.size() - burst.size() : 1;
      const std::size_t offset = l.rng.UniformInt(span);
      phy::MixInto(air, burst, offset, gain);
    }
  } else {
    r.collided = shared.collided;
    if (r.collided) {
      phy::SampleVec remodulated;
      const phy::SampleVec* burst = &shared.burst_wave;
      if (!same_modem) {
        remodulated = l.modulator.ModulateOctets(shared.burst_octets);
        phy::ApplyCarrierOffset(remodulated, 0.0, shared.burst_phase);
        burst = &remodulated;
      }
      const double gain =
          std::pow(10.0, l.params.interferer_relative_db / 20.0);
      const std::size_t span =
          air.size() > burst->size() ? air.size() - burst->size() : 1;
      const std::size_t offset = std::min(
          static_cast<std::size_t>(shared.offset_fraction *
                                   static_cast<double>(span)),
          span - 1);
      phy::MixInto(air, *burst, offset, gain);
    }
  }

  const double sigma = phy::NoiseSigmaForEcN0(
      std::pow(10.0, l.params.ec_n0_db / 10.0),
      l.params.pipeline.modem.amplitude, sps);
  if (independent) {
    phy::AddAwgn(air, sigma, l.rng);
  } else {
    // Private noise from a per-(transmission, listener) derived stream:
    // independent across listeners, reorderable by nothing.
    Rng noise(arq::SeedForTransmission(shared.tx_seed ^ l.params.seed,
                                       id + 1, 0));
    phy::AddAwgn(air, sigma, noise);
  }

  const auto frames = l.pipeline.Process(air);
  // Use the recovered frame matching this transmission's seq (there is
  // at most one expected frame per call).
  for (const auto& f : frames) {
    if (f.header.seq != header.seq || f.header.length != payload.size()) {
      continue;
    }
    auto symbols = f.PayloadSymbols();
    if (symbols.size() < nibbles) break;
    symbols.resize(nibbles);  // drop padding codewords
    r.frame_recovered = true;
    r.symbols = std::move(symbols);
    for (std::size_t k = 0; k < nibbles; ++k) {
      if (r.symbols[k].symbol != bits.ReadUint(4 * k, 4)) {
        r.corrupted = true;
        break;
      }
    }
    return r;
  }
  r.symbols = AllBad(nibbles);
  r.corrupted = true;
  return r;
}

std::vector<WaveformMedium::Reception> WaveformMedium::TransmitImpl(
    const BitVec& bits, std::size_t sender, std::optional<std::uint64_t> seed,
    std::optional<ListenerId> only) {
  if (listeners_.empty()) {
    throw std::logic_error("WaveformMedium: transmit with no listeners");
  }
  if (tx_index_.size() <= sender) tx_index_.resize(sender + 1, 0);
  const std::uint64_t tx_index = ++tx_index_[sender];
  obs::Count("medium.waveform.transmissions");
  obs::Count("medium.waveform.transmitted_bits", bits.size());
  obs::ScopedTimer tx_timer(
      obs::TimingsEnabled()
          ? obs::CurrentMetrics()->GetHistogram("medium.waveform.tx_ns")
          : nullptr,
      obs::CurrentTracer(), "medium.tx", "medium", [&] {
        return obs::TraceArgs{
            {"bits", static_cast<std::int64_t>(bits.size())},
            {"sender", static_cast<std::int64_t>(sender)},
            {"unicast", only.has_value() ? 1 : 0}};
      });

  // Pad the body to whole octets for framing.
  BitVec padded = bits;
  while (padded.size() % 8 != 0) padded.PushBack(false);
  const auto payload = padded.ToBytes();

  frame::FrameHeader header;
  header.length = static_cast<std::uint16_t>(payload.size());
  header.dst = 2;
  header.src = 1;
  header.seq = static_cast<std::uint16_t>(tx_index);

  // The transmission's waveform is one signal: modulate it once, with
  // the first targeted listener's modem as the reference (ReceiveAt
  // re-modulates only for a listener whose modem config differs).
  const Listener& reference = *listeners_.at(only.value_or(0));
  const phy::ModemConfig& base_modem = reference.params.pipeline.modem;
  const phy::SampleVec base_wave = reference.modulator.Modulate(header, payload);

  SharedDraw shared;
  if (correlation_ == arq::CollisionCorrelation::kSharedInterferer) {
    shared.tx_seed = seed.value_or(SeedForTransmission(sender, tx_index));
    Rng tx_rng(shared.tx_seed);
    shared.carrier_phase = tx_rng.UniformDouble(0.0, 2.0 * std::numbers::pi);
    shared.collided = tx_rng.Bernoulli(climate_.collision_probability);
    if (shared.collided) {
      shared.burst_octets.resize(climate_.interferer_octets);
      for (auto& b : shared.burst_octets) {
        b = static_cast<std::uint8_t>(tx_rng.UniformInt(256));
      }
      shared.burst_phase = tx_rng.UniformDouble(0.0, 2.0 * std::numbers::pi);
      shared.offset_fraction = tx_rng.UniformDouble();
      shared.burst_wave = reference.modulator.ModulateOctets(shared.burst_octets);
      phy::ApplyCarrierOffset(shared.burst_wave, 0.0, shared.burst_phase);
    }
  }

  std::vector<Reception> receptions;
  if (only.has_value()) {
    receptions.push_back(ReceiveAt(*listeners_.at(*only), *only, header,
                                   payload, bits, shared, base_wave,
                                   base_modem));
    return receptions;
  }
  receptions.reserve(listeners_.size());
  for (ListenerId id = 0; id < listeners_.size(); ++id) {
    receptions.push_back(ReceiveAt(*listeners_[id], id, header, payload, bits,
                                   shared, base_wave, base_modem));
  }

  // Joint-loss accounting vs listener 0, broadcast transmissions only.
  std::vector<arq::ReceptionLossFlags> flags;
  std::vector<arq::ListenerLossStats*> stats;
  flags.reserve(receptions.size());
  stats.reserve(listeners_.size());
  for (ListenerId id = 0; id < listeners_.size(); ++id) {
    flags.push_back({receptions[id].collided, receptions[id].corrupted});
    stats.push_back(&listeners_[id]->stats);
  }
  arq::AccumulateJointLossStats(flags, stats, medium_stats_);
  return receptions;
}

std::vector<WaveformMedium::Reception> WaveformMedium::Transmit(
    const Transmission& tx) {
  return TransmitImpl(tx.body_bits, tx.sender, tx.seed, std::nullopt);
}

arq::BroadcastBodyChannel WaveformMedium::MakeBroadcastChannel(
    std::size_t sender) {
  auto self = shared_from_this();
  return [self, sender](const BitVec& bits) {
    auto receptions = self->TransmitImpl(bits, sender, std::nullopt,
                                         std::nullopt);
    std::vector<std::vector<phy::DecodedSymbol>> out;
    out.reserve(receptions.size());
    for (auto& r : receptions) out.push_back(std::move(r.symbols));
    return out;
  };
}

arq::BodyChannel WaveformMedium::MakeListenerChannel(ListenerId listener,
                                                     std::size_t sender) {
  if (listener >= listeners_.size()) {
    throw std::invalid_argument("WaveformMedium: no such listener");
  }
  auto self = shared_from_this();
  return [self, listener, sender](const BitVec& bits) {
    return std::move(self->TransmitImpl(bits, sender, std::nullopt, listener)
                         .front()
                         .symbols);
  };
}

const arq::ListenerLossStats& WaveformMedium::StatsFor(
    ListenerId listener) const {
  return listeners_.at(listener)->stats;
}

}  // namespace ppr::core
