// The full PPR waveform receiver (Figure 1): frame synchronization on
// preambles AND postambles, matched-filter demodulation, DSSS
// despreading with SoftPHY hints, and header/trailer parsing. This is
// the software equivalent of the paper's GNU Radio receiver.
//
// Preamble path: correlate for [preamble|SFD]; an intact header then
// frames the packet. Postamble path (section 4): correlate for
// [postamble|PSFD]; roll back the trailer's worth of samples, parse and
// CRC-check the trailer, then roll back the whole frame and decode
// everything the buffer still holds.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "frame/frame_format.h"
#include "phy/despreader.h"
#include "phy/frame_sync.h"
#include "phy/msk_modem.h"
#include "phy/sample_buffer.h"

namespace ppr::core {

struct PipelineConfig {
  phy::ModemConfig modem;          // samples/chip, amplitude
  double sync_threshold = 0.60;    // normalized correlation for sync
  std::size_t max_payload_octets = 1600;  // bounds rollback distance
  phy::HintKind hint_kind = phy::HintKind::kHammingDistance;
};

struct RecoveredFrame {
  enum class SyncSource { kPreamble, kPostamble };

  SyncSource sync = SyncSource::kPreamble;
  double sync_score = 0.0;
  // Absolute sample index where the frame's first chip begins.
  std::uint64_t frame_start_sample = 0;
  frame::FrameHeader header;
  bool header_from_trailer = false;  // framed via the trailer replica

  // Decoded body (header..trailer octets) in logical nibble order:
  // symbol k carries bits [4k, 4k+4) of the body octet stream.
  std::vector<phy::DecodedSymbol> body_symbols;

  // Payload codewords (logical order) and bytes-with-hints access.
  std::vector<phy::DecodedSymbol> PayloadSymbols() const;
  BitVec PayloadBits() const;
  // Payload || payload-CRC codewords: the PP-ARQ protocol body.
  std::vector<phy::DecodedSymbol> ArqBodySymbols() const;
};

// Sender-side helper: frame -> chips -> waveform.
class FrameModulator {
 public:
  explicit FrameModulator(const phy::ModemConfig& config);

  phy::SampleVec Modulate(const frame::FrameHeader& header,
                          std::span<const std::uint8_t> payload) const;
  phy::SampleVec ModulateOctets(std::span<const std::uint8_t> octets) const;

  const phy::ChipCodebook& codebook() const { return codebook_; }

 private:
  phy::ChipCodebook codebook_;
  phy::MskModulator modulator_;
};

// Offline (capture-based) receiver: processes a complete sample capture
// and recovers every frame it can, via preambles first and postambles
// for anything the preamble path missed. The testbed's GNU Radio
// receivers are trace-based in the same way (section 7.1).
class ReceiverPipeline {
 public:
  explicit ReceiverPipeline(const PipelineConfig& config);

  std::vector<RecoveredFrame> Process(const phy::SampleVec& samples) const;

  // Exposed for tests: the two sync correlators' scores.
  double PreambleScoreAt(const phy::SampleVec& samples, std::size_t n) const;
  double PostambleScoreAt(const phy::SampleVec& samples, std::size_t n) const;

  const PipelineConfig& config() const { return config_; }

 private:
  std::optional<RecoveredFrame> DecodeFromPreamble(
      const phy::SampleVec& samples, const phy::SyncHit& hit) const;
  std::optional<RecoveredFrame> DecodeFromPostamble(
      const phy::SampleVec& samples, const phy::SyncHit& hit) const;

  // Demodulates + despreads `num_symbols` codewords whose first chip
  // begins at `chip0_sample` (possibly negative region reads as zeros),
  // derotating by the sync-derived carrier phase estimate.
  std::vector<phy::DecodedSymbol> DecodeSymbols(const phy::SampleVec& samples,
                                                std::int64_t chip0_sample,
                                                std::size_t num_symbols,
                                                double carrier_phase) const;

  PipelineConfig config_;
  phy::ChipCodebook codebook_;
  phy::MskDemodulator demod_;
  phy::WaveformCorrelator preamble_correlator_;
  phy::WaveformCorrelator postamble_correlator_;
};

// Streaming receiver: accepts samples incrementally, keeps a circular
// buffer sized to one maximal frame (as section 4 prescribes), and
// emits frames as their sync patterns are observed.
class StreamingReceiver {
 public:
  explicit StreamingReceiver(const PipelineConfig& config);

  // Feeds samples; any frames whose sync completes inside the buffered
  // window are appended to the internal result list.
  void Push(const phy::SampleVec& samples);
  // Signals end of capture; scans any unscanned tail.
  void Flush();

  const std::vector<RecoveredFrame>& Frames() const { return frames_; }

 private:
  void Scan(bool final_scan);

  PipelineConfig config_;
  ReceiverPipeline pipeline_;
  phy::SampleRingBuffer buffer_;
  std::vector<RecoveredFrame> frames_;
};

}  // namespace ppr::core
