// Point-to-point PPR link over the waveform PHY: every data-direction
// transmission (initial packets and PP-ARQ retransmissions) is framed,
// modulated, pushed through an AWGN + collision channel, and recovered
// by the full receiver pipeline. This is the configuration of the
// paper's section 7.5 experiment (one GNU Radio sender, one receiver,
// 250-byte packets, Figure 16).
//
// Feedback frames are modeled as reliable out-of-band messages: they
// are tiny compared to data frames and the paper's reverse link is
// likewise assumed to function.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "arq/link_sim.h"
#include "arq/recovery_session.h"
#include "common/rng.h"
#include "ppr/medium.h"
#include "ppr/receiver_pipeline.h"

namespace ppr::core {

struct WaveformChannelParams {
  PipelineConfig pipeline;
  double ec_n0_db = 6.0;  // chip-level SNR of the link
  // Probability that a given transmission suffers a collision from a
  // concurrent sender, the power of that interferer relative to the
  // signal, and the octet length of the interfering burst.
  double collision_probability = 0.0;
  double interferer_relative_db = 0.0;
  std::size_t interferer_octets = 300;
  std::uint64_t seed = 1;
};

// Builds an arq::BodyChannel that carries body bits inside real frames
// over the waveform: pad to octets, frame, modulate, add noise (and a
// colliding burst with the configured probability), then run the
// receiver pipeline and return the payload codewords with their hints.
// When the pipeline fails to recover the frame at all, every codeword
// comes back with an infinitely-bad hint (the ARQ layer then re-requests
// everything it still needs).
//
// Implemented as a single-listener WaveformMedium (ppr/medium.h) in
// CollisionCorrelation::kIndependent mode, which reproduces the
// original point-to-point channel bit-for-bit.
arq::BodyChannel MakeWaveformChannel(const WaveformChannelParams& params);

// One PP-ARQ packet exchange over the waveform channel, under the
// recovery strategy `arq_config.recovery` selects.
arq::ArqRunStats RunWaveformPpArq(std::size_t payload_octets,
                                  const arq::PpArqConfig& arq_config,
                                  const WaveformChannelParams& params,
                                  Rng& payload_rng);

// The relay-capable waveform variant: a second receiver overhears the
// source at its own SNR/collision climate (`overhear`), and the
// relay -> destination hop is its own waveform link (`relay_link`).
struct RelayWaveformParams {
  WaveformChannelParams overhear;     // source -> relay copy
  WaveformChannelParams relay_link;   // relay -> destination
};

// One kRelayCodedRepair exchange with every hop carried by a real
// waveform channel. The per-party breakdown (ids in
// arq/recovery_session.h) is what separates source-transmitted repair
// bits from the relay's contribution.
arq::SessionRunStats RunWaveformRelayRecovery(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& direct, const RelayWaveformParams& relay,
    Rng& payload_rng);

// Joint-loss statistics of one waveform session's shared medium:
// listener 0 is the destination, listener i the i-th relay's overheard
// copy; `medium` aggregates across the roster (the
// overhear-loss-given-direct-loss correlation the session saw).
struct WaveformMediumStats {
  arq::SharedMediumStats medium;
  std::vector<arq::ListenerLossStats> listeners;
};

// The N-relay waveform session, rebuilt on the shared medium: the
// source's initial transmission is ONE WaveformMedium broadcast heard
// by the destination and every relay (collision draws correlated per
// `correlation`), the source's repair frames continue the
// destination-listener stream, and each relay -> destination hop is
// its own real AWGN+collision channel. `arq_config.relay_parties` is
// overridden to relays.size() and
// `arq_config.relay_airtime_budget_bits` becomes the session's
// per-round relay budget, so dense overhearer sets contend for airtime
// exactly as in the channel-abstracted simulator.
//
// Under kIndependent every hop draws privately, bit-for-bit the
// pre-medium behavior (relay hops seeded by their own params.seed);
// under kSharedInterferer the interferer climate comes from `direct`
// (its collision probability and burst length), each listener projects
// the shared burst at its own interferer_relative_db, and every hop
// seed derives from the medium chain (arq::SeedForTransmission on
// direct.seed), so roster size cannot reorder draws.
arq::SessionRunStats RunWaveformMultiRelayRecovery(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& direct,
    const std::vector<RelayWaveformParams>& relays, Rng& payload_rng,
    arq::CollisionCorrelation correlation =
        arq::CollisionCorrelation::kIndependent,
    WaveformMediumStats* medium_stats = nullptr);

// Runs the same payload under each recovery strategy, each over an
// identically seeded direct waveform channel, so their repair traffic
// is directly comparable (the coded-vs-uncoded Figure 16 variant).
// When `relay` is supplied the comparison grows its third leg:
// kRelayCodedRepair over the same direct channel plus the overhearing
// topology.
struct RecoveryComparison {
  arq::ArqRunStats chunk;
  arq::ArqRunStats coded;
  std::optional<arq::SessionRunStats> relay;
  // Relay leg only: the shared medium's joint-loss view.
  WaveformMediumStats relay_medium;
  // Relay leg only: initial transmissions that collided on the shared
  // medium yet decoded clean at the destination. Previously these were
  // indistinguishable from corrupted-then-retransmitted frames in this
  // report; counting them separately lets the sim report
  // collision-recovery yield honestly.
  std::size_t collided_recovered = 0;
};

RecoveryComparison CompareRecoveryStrategies(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& params, std::uint64_t payload_seed,
    const RelayWaveformParams* relay = nullptr,
    arq::CollisionCorrelation correlation =
        arq::CollisionCorrelation::kIndependent);

}  // namespace ppr::core
