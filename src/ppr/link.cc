#include "ppr/link.h"

#include "arq/chip_medium.h"
#include "ppr/medium.h"

namespace ppr::core {

arq::BodyChannel MakeWaveformChannel(const WaveformChannelParams& params) {
  auto medium = WaveformMedium::Create(arq::CollisionCorrelation::kIndependent,
                                       params.seed);
  const auto id = medium->AddListener(ListenerFromChannelParams(params));
  return medium->MakeListenerChannel(id);
}

arq::ArqRunStats RunWaveformPpArq(std::size_t payload_octets,
                                  const arq::PpArqConfig& arq_config,
                                  const WaveformChannelParams& params,
                                  Rng& payload_rng) {
  BitVec payload;
  for (std::size_t i = 0; i < payload_octets; ++i) {
    payload.AppendUint(payload_rng.UniformInt(256), 8);
  }
  const auto channel = MakeWaveformChannel(params);
  return arq::RunPpArqExchange(payload, arq_config, channel);
}

arq::SessionRunStats RunWaveformMultiRelayRecovery(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& direct,
    const std::vector<RelayWaveformParams>& relays, Rng& payload_rng,
    arq::CollisionCorrelation correlation,
    WaveformMediumStats* medium_stats) {
  BitVec payload;
  for (std::size_t i = 0; i < payload_octets; ++i) {
    payload.AppendUint(payload_rng.UniformInt(256), 8);
  }
  arq::PpArqConfig config = arq_config;
  config.recovery = arq::RecoveryMode::kRelayCodedRepair;
  config.relay_parties = relays.size();

  // One shared medium carries the source's broadcast: the destination
  // is listener 0, each relay's overheard copy a further listener. The
  // shared-interferer climate (presence, burst length) is the direct
  // path's; every listener projects the burst at its own relative
  // power.
  auto medium = WaveformMedium::Create(
      correlation, direct.seed,
      {direct.collision_probability, direct.interferer_octets});
  medium->AddListener(ListenerFromChannelParams(direct));
  for (const auto& relay : relays) {
    medium->AddListener(ListenerFromChannelParams(relay.overhear));
  }

  arq::MultiRelayExchangeChannels channels;
  channels.initial_broadcast = medium->MakeBroadcastChannel();
  channels.source_to_destination = medium->MakeListenerChannel(0);
  channels.relay_to_destination.reserve(relays.size());
  for (std::size_t i = 0; i < relays.size(); ++i) {
    WaveformChannelParams hop = relays[i].relay_link;
    if (correlation == arq::CollisionCorrelation::kSharedInterferer) {
      // Centralized seed ownership: the relay's transmit domain derives
      // from the medium chain instead of whatever ad-hoc seed the hop
      // params carry, so roster size cannot reorder draws.
      hop.seed = arq::SeedForTransmission(direct.seed,
                                          arq::kSessionRelayId + i, 0);
    }
    channels.relay_to_destination.push_back(MakeWaveformChannel(hop));
  }

  const auto strategy = arq::MakeRecoveryStrategy(config);
  auto stats = arq::RunMultiRelayRecoveryExchange(payload, config, *strategy,
                                                  channels);
  if (medium_stats) {
    medium_stats->medium = medium->medium_stats();
    medium_stats->listeners.clear();
    for (std::size_t i = 0; i < medium->num_listeners(); ++i) {
      medium_stats->listeners.push_back(medium->StatsFor(i));
    }
  }
  return stats;
}

arq::SessionRunStats RunWaveformRelayRecovery(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& direct, const RelayWaveformParams& relay,
    Rng& payload_rng) {
  return RunWaveformMultiRelayRecovery(payload_octets, arq_config, direct,
                                       {relay}, payload_rng);
}

RecoveryComparison CompareRecoveryStrategies(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& params, std::uint64_t payload_seed,
    const RelayWaveformParams* relay, arq::CollisionCorrelation correlation) {
  RecoveryComparison out;
  arq::PpArqConfig config = arq_config;

  config.recovery = arq::RecoveryMode::kChunkRetransmit;
  Rng chunk_rng(payload_seed);
  out.chunk = RunWaveformPpArq(payload_octets, config, params, chunk_rng);

  config.recovery = arq::RecoveryMode::kCodedRepair;
  Rng coded_rng(payload_seed);
  out.coded = RunWaveformPpArq(payload_octets, config, params, coded_rng);

  if (relay) {
    Rng relay_rng(payload_seed);
    out.relay = RunWaveformMultiRelayRecovery(payload_octets, arq_config,
                                              params, {*relay}, relay_rng,
                                              correlation, &out.relay_medium);
    out.collided_recovered =
        out.relay_medium.medium.reference_collided_recovered_frames;
  }
  return out;
}

}  // namespace ppr::core
