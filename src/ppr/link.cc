#include "ppr/link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numbers>

#include "phy/channel.h"

namespace ppr::core {
namespace {

// Fills a vector of all-bad codewords: the ARQ layer treats these as
// "nothing useful received".
std::vector<phy::DecodedSymbol> AllBad(std::size_t count) {
  std::vector<phy::DecodedSymbol> out(count);
  for (auto& s : out) {
    s.symbol = 0;
    s.hint = std::numeric_limits<double>::infinity();
    s.hamming_distance = phy::kChipsPerSymbol;
  }
  return out;
}

}  // namespace

arq::BodyChannel MakeWaveformChannel(const WaveformChannelParams& params) {
  struct State {
    WaveformChannelParams params;
    FrameModulator modulator;
    ReceiverPipeline pipeline;
    Rng rng;
    std::uint16_t next_seq = 1;

    explicit State(const WaveformChannelParams& p)
        : params(p),
          modulator(p.pipeline.modem),
          pipeline(p.pipeline),
          rng(p.seed) {}
  };
  auto state = std::make_shared<State>(params);

  return [state](const BitVec& bits) -> std::vector<phy::DecodedSymbol> {
    auto& s = *state;
    const std::size_t nibbles = bits.size() / 4;
    // Pad the body to whole octets for framing.
    BitVec padded = bits;
    while (padded.size() % 8 != 0) padded.PushBack(false);
    const auto payload = padded.ToBytes();

    frame::FrameHeader header;
    header.length = static_cast<std::uint16_t>(payload.size());
    header.dst = 2;
    header.src = 1;
    header.seq = s.next_seq++;

    phy::SampleVec wave = s.modulator.Modulate(header, payload);
    // Each transmitter has its own carrier phase; the receiver recovers
    // it from the sync correlation.
    phy::ApplyCarrierOffset(wave, 0.0,
                            s.rng.UniformDouble(0.0, 2.0 * std::numbers::pi));

    // Guard padding so sync search starts and ends in noise.
    const int sps = s.params.pipeline.modem.samples_per_chip;
    const std::size_t guard = static_cast<std::size_t>(64 * sps);
    phy::SampleVec air(wave.size() + 2 * guard, phy::Sample{0.0, 0.0});
    phy::MixInto(air, wave, guard);

    // Collision: a concurrent burst overlapping part of the frame.
    if (s.rng.Bernoulli(s.params.collision_probability)) {
      std::vector<std::uint8_t> junk(s.params.interferer_octets);
      for (auto& b : junk) {
        b = static_cast<std::uint8_t>(s.rng.UniformInt(256));
      }
      phy::SampleVec burst = s.modulator.ModulateOctets(junk);
      phy::ApplyCarrierOffset(
          burst, 0.0, s.rng.UniformDouble(0.0, 2.0 * std::numbers::pi));
      const double gain =
          std::pow(10.0, s.params.interferer_relative_db / 20.0);
      const std::size_t span = air.size() > burst.size()
                                   ? air.size() - burst.size()
                                   : 1;
      const std::size_t offset = s.rng.UniformInt(span);
      phy::MixInto(air, burst, offset, gain);
    }

    const double sigma = phy::NoiseSigmaForEcN0(
        std::pow(10.0, s.params.ec_n0_db / 10.0),
        s.params.pipeline.modem.amplitude, sps);
    phy::AddAwgn(air, sigma, s.rng);

    const auto frames = s.pipeline.Process(air);
    // Use the recovered frame matching this transmission's seq (there is
    // at most one expected frame per call).
    for (const auto& f : frames) {
      if (f.header.seq != header.seq || f.header.length != payload.size()) {
        continue;
      }
      auto symbols = f.PayloadSymbols();
      if (symbols.size() < nibbles) break;
      symbols.resize(nibbles);  // drop padding codewords
      return symbols;
    }
    return AllBad(nibbles);
  };
}

arq::ArqRunStats RunWaveformPpArq(std::size_t payload_octets,
                                  const arq::PpArqConfig& arq_config,
                                  const WaveformChannelParams& params,
                                  Rng& payload_rng) {
  BitVec payload;
  for (std::size_t i = 0; i < payload_octets; ++i) {
    payload.AppendUint(payload_rng.UniformInt(256), 8);
  }
  const auto channel = MakeWaveformChannel(params);
  return arq::RunPpArqExchange(payload, arq_config, channel);
}

arq::SessionRunStats RunWaveformMultiRelayRecovery(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& direct,
    const std::vector<RelayWaveformParams>& relays, Rng& payload_rng) {
  BitVec payload;
  for (std::size_t i = 0; i < payload_octets; ++i) {
    payload.AppendUint(payload_rng.UniformInt(256), 8);
  }
  arq::PpArqConfig config = arq_config;
  config.recovery = arq::RecoveryMode::kRelayCodedRepair;
  config.relay_parties = relays.size();
  arq::MultiRelayExchangeChannels channels;
  channels.source_to_destination = MakeWaveformChannel(direct);
  channels.source_to_relay.reserve(relays.size());
  channels.relay_to_destination.reserve(relays.size());
  for (const auto& relay : relays) {
    channels.source_to_relay.push_back(MakeWaveformChannel(relay.overhear));
    channels.relay_to_destination.push_back(
        MakeWaveformChannel(relay.relay_link));
  }
  const auto strategy = arq::MakeRecoveryStrategy(config);
  return arq::RunMultiRelayRecoveryExchange(payload, config, *strategy,
                                            channels);
}

arq::SessionRunStats RunWaveformRelayRecovery(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& direct, const RelayWaveformParams& relay,
    Rng& payload_rng) {
  return RunWaveformMultiRelayRecovery(payload_octets, arq_config, direct,
                                       {relay}, payload_rng);
}

RecoveryComparison CompareRecoveryStrategies(
    std::size_t payload_octets, const arq::PpArqConfig& arq_config,
    const WaveformChannelParams& params, std::uint64_t payload_seed,
    const RelayWaveformParams* relay) {
  RecoveryComparison out;
  arq::PpArqConfig config = arq_config;

  config.recovery = arq::RecoveryMode::kChunkRetransmit;
  Rng chunk_rng(payload_seed);
  out.chunk = RunWaveformPpArq(payload_octets, config, params, chunk_rng);

  config.recovery = arq::RecoveryMode::kCodedRepair;
  Rng coded_rng(payload_seed);
  out.coded = RunWaveformPpArq(payload_octets, config, params, coded_rng);

  if (relay) {
    Rng relay_rng(payload_seed);
    out.relay = RunWaveformRelayRecovery(payload_octets, arq_config, params,
                                         *relay, relay_rng);
  }
  return out;
}

}  // namespace ppr::core
