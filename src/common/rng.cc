#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ppr {
namespace {

// splitmix64: seeds the xoshiro state from a single 64-bit value, per the
// generator authors' recommendation.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  // Box-Muller; draws two uniforms per normal. u1 is kept away from zero
  // so the log is finite.
  double u1 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = UniformDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

Rng Rng::Fork() {
  return Rng(Next());
}

}  // namespace ppr
