#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ppr {

void CdfCollector::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void CdfCollector::AddCount(double value, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) samples_.push_back(value);
  sorted_valid_ = false;
}

void CdfCollector::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double CdfCollector::Min() const {
  assert(!samples_.empty());
  EnsureSorted();
  return sorted_.front();
}

double CdfCollector::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return sorted_.back();
}

double CdfCollector::Mean() const {
  assert(!samples_.empty());
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double CdfCollector::Quantile(double q) const {
  assert(!samples_.empty());
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double CdfCollector::FractionAtOrBelow(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double CdfCollector::FractionAbove(double x) const {
  return 1.0 - FractionAtOrBelow(x);
}

std::vector<std::pair<double, double>> CdfCollector::CdfPoints(
    std::size_t num_points) const {
  std::vector<std::pair<double, double>> points;
  if (samples_.empty() || num_points == 0) return points;
  EnsureSorted();
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  points.reserve(num_points);
  if (num_points == 1 || hi == lo) {
    points.emplace_back(lo, FractionAtOrBelow(lo));
    return points;
  }
  for (std::size_t i = 0; i < num_points; ++i) {
    // Pin the final grid point to the max sample exactly so the CDF
    // reaches 1.0 despite floating-point rounding of the interpolation.
    const double x = (i == num_points - 1)
                         ? hi
                         : lo + (hi - lo) * static_cast<double>(i) /
                                    static_cast<double>(num_points - 1);
    points.emplace_back(x, FractionAtOrBelow(x));
  }
  return points;
}

void RunningStats::Add(double value) {
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double RunningStats::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void IntHistogram::Add(long key, std::size_t count) {
  buckets_[key] += count;
  total_ += count;
}

std::size_t IntHistogram::CountAt(long key) const {
  const auto it = buckets_.find(key);
  return it == buckets_.end() ? 0 : it->second;
}

double IntHistogram::CdfAt(long key) const {
  if (total_ == 0) return 0.0;
  std::size_t below = 0;
  for (const auto& [k, c] : buckets_) {
    if (k > key) break;
    below += c;
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double IntHistogram::CcdfAbove(long key) const { return 1.0 - CdfAt(key); }

std::string FormatCdf(const CdfCollector& cdf, std::size_t num_points,
                      const std::string& label) {
  std::ostringstream out;
  out << "# " << label << "\n";
  for (const auto& [x, f] : cdf.CdfPoints(num_points)) {
    out << x << "\t" << f << "\n";
  }
  return out.str();
}

}  // namespace ppr
