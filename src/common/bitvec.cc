#include "common/bitvec.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace ppr {

BitVec::BitVec(std::size_t n, bool value)
    : words_((n + kWordBits - 1) / kWordBits,
             value ? ~std::uint64_t{0} : std::uint64_t{0}),
      size_(n) {
  if (value && size_ % kWordBits != 0) {
    // Keep unused high bits of the last word zero so PopCount and
    // equality can operate on whole words.
    words_.back() &= (std::uint64_t{1} << (size_ % kWordBits)) - 1;
  }
}

BitVec BitVec::FromString(std::string_view bits) {
  BitVec v;
  for (char c : bits) {
    if (c == '0') {
      v.PushBack(false);
    } else if (c == '1') {
      v.PushBack(true);
    } else {
      throw std::invalid_argument("BitVec::FromString: bad character");
    }
  }
  return v;
}

BitVec BitVec::FromBytes(std::span<const std::uint8_t> bytes) {
  BitVec v;
  for (std::uint8_t b : bytes) v.AppendUint(b, 8);
  return v;
}

bool BitVec::Get(std::size_t i) const {
  assert(i < size_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void BitVec::Set(std::size_t i, bool value) {
  assert(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::Flip(std::size_t i) {
  assert(i < size_);
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

void BitVec::PushBack(bool bit) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  if (bit) words_.back() |= std::uint64_t{1} << (size_ % kWordBits);
  ++size_;
}

void BitVec::AppendUint(std::uint64_t value, unsigned width) {
  assert(width <= 64);
  for (unsigned i = width; i-- > 0;) {
    PushBack((value >> i) & 1u);
  }
}

void BitVec::AppendBits(const BitVec& other) {
  for (std::size_t i = 0; i < other.size_; ++i) PushBack(other.Get(i));
}

std::uint64_t BitVec::ReadUint(std::size_t pos, unsigned width) const {
  assert(width <= 64);
  assert(pos + width <= size_);
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    value = (value << 1) | static_cast<std::uint64_t>(Get(pos + i));
  }
  return value;
}

BitVec BitVec::Slice(std::size_t pos, std::size_t count) const {
  assert(pos + count <= size_);
  BitVec out;
  for (std::size_t i = 0; i < count; ++i) out.PushBack(Get(pos + i));
  return out;
}

std::vector<std::uint8_t> BitVec::ToBytes() const {
  std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    if (Get(i)) out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
  }
  return out;
}

std::string BitVec::ToString() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(Get(i) ? '1' : '0');
  return s;
}

std::size_t BitVec::HammingDistance(const BitVec& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVec::HammingDistance: size mismatch");
  }
  std::size_t d = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    d += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  }
  return d;
}

std::size_t BitVec::PopCount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

bool BitVec::operator==(const BitVec& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void BitVec::Clear() {
  words_.clear();
  size_ = 0;
}

}  // namespace ppr
