// CRC implementations used by the framing and ARQ layers.
//
// - CRC-32 (IEEE 802.3 polynomial, reflected): whole-packet and
//   per-fragment checksums, as in the paper's Packet CRC and Fragmented
//   CRC schemes ("32-bit CRC check", section 7.2).
// - CRC-16/CCITT (as used for the 802.15.4 frame check sequence): header
//   and trailer checksums, where a 2-byte check keeps overhead small.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitvec.h"

namespace ppr {

// Computes the IEEE CRC-32 (polynomial 0xEDB88320, reflected, init and
// final XOR 0xFFFFFFFF) over a byte span.
std::uint32_t Crc32(std::span<const std::uint8_t> data);

// CRC-32 over a bit vector: the bits are packed MSB-first into bytes
// (zero-padded) and the byte CRC is computed. Used for run/fragment
// checks where payload boundaries are in bits.
std::uint32_t Crc32Bits(const BitVec& bits);

// CRC-16/CCITT-FALSE (polynomial 0x1021, init 0xFFFF), the FCS used by
// IEEE 802.15.4 frames.
std::uint16_t Crc16(std::span<const std::uint8_t> data);

std::uint16_t Crc16Bits(const BitVec& bits);

}  // namespace ppr
