// Compact growable bit vector used throughout PPR for payload bits,
// chip streams, and the bit-efficient PP-ARQ feedback encoding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ppr {

// A sequence of bits with O(1) append and random access. Bits are stored
// LSB-first within each 64-bit word; the logical order of bits is the
// append order. This is the common currency between the framing layer
// (payload bits), the spreader (bits -> chips), and the feedback codec
// (variable-width fields).
class BitVec {
 public:
  BitVec() = default;

  // Constructs a vector of `n` bits, all initialised to `value`.
  explicit BitVec(std::size_t n, bool value = false);

  // Builds a BitVec from a string of '0'/'1' characters. Any other
  // character throws std::invalid_argument. Intended for tests and for
  // writing down known chip sequences readably.
  static BitVec FromString(std::string_view bits);

  // Unpacks bytes MSB-first (network order within a byte), the convention
  // used by 802.15.4 framing in this codebase.
  static BitVec FromBytes(std::span<const std::uint8_t> bytes);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(std::size_t i) const;
  void Set(std::size_t i, bool value);
  // Flips bit `i`; used by the channel models to inject chip errors.
  void Flip(std::size_t i);

  void PushBack(bool bit);
  // Appends the low `width` bits of `value`, most-significant first.
  // Width must be <= 64.
  void AppendUint(std::uint64_t value, unsigned width);
  void AppendBits(const BitVec& other);

  // Reads `width` bits starting at `pos`, most-significant first.
  // Requires pos + width <= size().
  std::uint64_t ReadUint(std::size_t pos, unsigned width) const;

  // Extracts bits [pos, pos + count) as a new vector.
  BitVec Slice(std::size_t pos, std::size_t count) const;

  // Packs to bytes MSB-first; the final byte is zero-padded if size() is
  // not a multiple of 8.
  std::vector<std::uint8_t> ToBytes() const;

  std::string ToString() const;

  // Number of positions at which *this and `other` differ. Sizes must
  // match. This is the Hamming-distance primitive behind the SoftPHY hint.
  std::size_t HammingDistance(const BitVec& other) const;

  // Number of set bits.
  std::size_t PopCount() const;

  bool operator==(const BitVec& other) const;

  void Clear();

 private:
  static constexpr std::size_t kWordBits = 64;
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace ppr
