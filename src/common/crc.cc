#include "common/crc.h"

#include <array>

namespace ppr {
namespace {

std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = MakeCrc32Table();
  return table;
}

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data) {
  const auto& table = Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32Bits(const BitVec& bits) {
  const auto bytes = bits.ToBytes();
  return Crc32(bytes);
}

std::uint16_t Crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFFu;
  for (std::uint8_t b : data) {
    crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(b) << 8));
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 0x8000u)
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

std::uint16_t Crc16Bits(const BitVec& bits) {
  const auto bytes = bits.ToBytes();
  return Crc16(bytes);
}

}  // namespace ppr
