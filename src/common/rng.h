// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in this repository is seeded explicitly so that runs
// are reproducible bit-for-bit. The generator is xoshiro256**, which is
// fast, has a 256-bit state, and passes BigCrush; it is more than
// adequate for Monte-Carlo channel simulation.
#pragma once

#include <cstdint>

namespace ppr {

// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
// Satisfies the UniformRandomBitGenerator requirements so it can be used
// with <random> distributions, but the common draws (uniform, normal,
// bernoulli) are provided as members to keep call sites terse and to
// guarantee identical streams across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return Next(); }
  std::uint64_t Next();

  // Uniform in [0, 1).
  double UniformDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box-Muller (deterministic across platforms,
  // unlike std::normal_distribution).
  double Normal();
  double Normal(double mean, double stddev);

  // Exponential with the given rate (mean 1/rate). rate must be > 0.
  double Exponential(double rate);

  // Derives an independent child generator; used to give each node /
  // link / packet its own stream so adding a node does not perturb the
  // draws of others.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace ppr
