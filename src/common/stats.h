// Statistics collectors used by the experiment harness: empirical CDFs
// (the paper's primary presentation format), running summaries, and
// fixed-width histograms.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace ppr {

// Collects samples and answers empirical-distribution queries. All query
// methods operate on a sorted copy maintained lazily, so interleaving
// Add() and queries is permitted.
class CdfCollector {
 public:
  void Add(double value);
  void AddCount(double value, std::size_t count);

  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;

  // Empirical quantile via nearest-rank; q in [0, 1].
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  // Fraction of samples <= x (the CDF evaluated at x).
  double FractionAtOrBelow(double x) const;

  // Fraction of samples > x (the complementary CDF, as in Figs. 14/15).
  double FractionAbove(double x) const;

  // Evenly spaced (x, F(x)) points suitable for printing a CDF series.
  std::vector<std::pair<double, double>> CdfPoints(std::size_t num_points) const;

  const std::vector<double>& Samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Welford running mean/variance; cheap to keep per-link.
class RunningStats {
 public:
  void Add(double value);
  std::size_t Count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const;
  double StdDev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Integer-keyed histogram; used for Hamming-distance distributions where
// the support is {0..32}.
class IntHistogram {
 public:
  void Add(long key, std::size_t count = 1);
  std::size_t Total() const { return total_; }
  std::size_t CountAt(long key) const;

  // Cumulative fraction of mass at keys <= key.
  double CdfAt(long key) const;
  // Fraction of mass at keys > key.
  double CcdfAbove(long key) const;

  const std::map<long, std::size_t>& Buckets() const { return buckets_; }

 private:
  std::map<long, std::size_t> buckets_;
  std::size_t total_ = 0;
};

// Formats a CDF as gnuplot-style two-column text, matching how the
// paper's figures are plotted. Used by the bench binaries.
std::string FormatCdf(const CdfCollector& cdf, std::size_t num_points,
                      const std::string& label);

}  // namespace ppr
