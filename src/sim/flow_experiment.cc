#include "sim/flow_experiment.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace ppr::sim {

namespace {

void AccumulateStats(engine::EngineStats& into,
                     const engine::EngineStats& from) {
  into.flows_spawned += from.flows_spawned;
  into.flows_completed += from.flows_completed;
  into.flows_failed += from.flows_failed;
  into.compat_completed += from.compat_completed;
  into.rounds += from.rounds;
  into.repairs_sent += from.repairs_sent;
  into.repairs_delivered += from.repairs_delivered;
  into.batch_calls += from.batch_calls;
  into.batch_bytes += from.batch_bytes;
}

}  // namespace

FlowExperimentResult RunFlowEngineExperiment(
    const FlowExperimentConfig& config) {
  if (config.num_shards == 0) {
    throw std::invalid_argument("RunFlowEngineExperiment: zero shards");
  }
  const std::size_t shards = config.num_shards;
  std::vector<engine::EngineStats> shard_stats(shards);
  std::vector<obs::Snapshot> shard_metrics(shards);

  // One shard = one engine = one registry; flow f belongs to shard
  // f % shards. Nothing below depends on the executing thread.
  const auto run_shard = [&](std::size_t shard) {
    obs::MetricRegistry registry;
    obs::ScopedObsContext obs_scope(&registry, /*tracer=*/nullptr,
                                    /*record_timings=*/false);
    engine::EngineConfig engine_config = config.engine;
    engine_config.seed =
        config.seed ^ (0xA24BAED4963EE407ull * (shard + 1));
    engine::FlowEngine eng(engine_config);
    for (std::size_t f = shard; f < config.flows; f += shards) {
      eng.SpawnFlow(static_cast<engine::FlowId>(f));
    }
    eng.RunAll();
    shard_stats[shard] = eng.stats();
    shard_metrics[shard] = registry.TakeSnapshot();
  };

  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t num_threads = std::max<std::size_t>(
      1, std::min(shards, config.num_threads ? config.num_threads
                                             : (hw ? hw : 1)));
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t s = next.fetch_add(1); s < shards;
         s = next.fetch_add(1)) {
      run_shard(s);
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  FlowExperimentResult result;
  result.shards = shards;
  for (std::size_t s = 0; s < shards; ++s) {
    AccumulateStats(result.totals, shard_stats[s]);
    result.metrics.Merge(shard_metrics[s]);
  }
  return result;
}

}  // namespace ppr::sim
