#include "sim/delivery.h"

#include <cassert>

#include "frame/frag_crc.h"

namespace ppr::sim {

std::string SchemeConfig::Name() const {
  std::string base;
  switch (scheme) {
    case Scheme::kPacketCrc:
      base = "Packet CRC";
      break;
    case Scheme::kFragmentedCrc:
      base = "Fragmented CRC";
      break;
    case Scheme::kPpr:
      base = "PPR";
      break;
  }
  base += postamble ? ", postamble decoding" : ", no postamble";
  return base;
}

DeliveryOutcome EvaluateDelivery(const ReceptionRecord& record,
                                 const ReceiverModel& model,
                                 const SchemeConfig& scheme) {
  DeliveryOutcome out;

  // Framing: the status quo needs a preamble and an intact header; with
  // postamble decoding the trailer substitutes for a corrupted header,
  // and a postamble alone recovers packets whose preamble was lost
  // (section 4).
  if (scheme.postamble) {
    out.acquired = (record.preamble_sync &&
                    (record.header_ok || record.trailer_ok)) ||
                   (record.postamble_sync && record.trailer_ok);
  } else {
    out.acquired = record.preamble_sync && record.header_ok;
  }
  if (!out.acquired) return out;

  const std::size_t payload_first = model.PayloadCwOffset();
  const std::size_t payload_cws = model.PayloadCwCount();
  const std::size_t payload_octets = model.Layout().payload_octets();
  const auto& trace = record.trace;

  switch (scheme.scheme) {
    case Scheme::kPacketCrc: {
      // The CRC verifies iff payload and CRC-field codewords all decoded
      // correctly.
      const std::size_t crc_cws = frame::kPayloadCrcOctets * 2;
      bool all_ok = true;
      for (std::size_t i = 0; i < payload_cws + crc_cws && all_ok; ++i) {
        all_ok = trace[payload_first + i].correct;
      }
      if (all_ok) out.delivered_bits = payload_octets * 8;
      break;
    }
    case Scheme::kFragmentedCrc: {
      const frame::FragmentPlan plan(payload_octets, scheme.num_fragments);
      for (std::size_t f = 0; f < plan.num_fragments(); ++f) {
        const std::size_t first_cw =
            payload_first + plan.FragmentOffset(f) * 2;
        const std::size_t n_cws = plan.FragmentSize(f) * 2;
        bool ok = true;
        for (std::size_t i = 0; i < n_cws && ok; ++i) {
          ok = trace[first_cw + i].correct;
        }
        if (ok) out.delivered_bits += plan.FragmentSize(f) * 8;
      }
      break;
    }
    case Scheme::kPpr: {
      for (std::size_t i = 0; i < payload_cws; ++i) {
        const auto& cw = trace[payload_first + i];
        if (static_cast<double>(cw.distance) <= scheme.eta) {
          if (cw.correct) {
            out.delivered_bits += 4;
          } else {
            out.wrong_bits += 4;  // a SoftPHY miss
          }
        }
      }
      break;
    }
  }
  return out;
}

std::size_t SchemeAirtimeOctets(const SchemeConfig& scheme,
                                std::size_t payload_octets) {
  // Status quo frame: preamble + SFD + header + payload + packet CRC.
  std::size_t octets = frame::kSyncPrefixOctets + frame::kHeaderOctets +
                       payload_octets + frame::kPayloadCrcOctets;
  if (scheme.postamble) {
    octets += frame::kTrailerOctets + frame::kSyncSuffixOctets;
  }
  if (scheme.scheme == Scheme::kFragmentedCrc) {
    const frame::FragmentPlan plan(payload_octets, scheme.num_fragments);
    octets += 4 * plan.num_fragments();
  }
  return octets;
}

}  // namespace ppr::sim
