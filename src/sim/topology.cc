#include "sim/topology.h"

#include <algorithm>
#include <cassert>

namespace ppr::sim {

std::vector<std::size_t> OverhearingRelays(const RadioMedium& medium,
                                           std::size_t sender,
                                           std::size_t receiver,
                                           double min_snr_db) {
  struct Candidate {
    std::size_t node;
    double bottleneck_snr_db;
  };
  std::vector<Candidate> candidates;
  for (std::size_t node = 0; node < medium.NumNodes(); ++node) {
    if (node == sender || node == receiver) continue;
    const double overhear = medium.LinkSnrDb(sender, node);
    const double reach = medium.LinkSnrDb(node, receiver);
    const double bottleneck = std::min(overhear, reach);
    if (bottleneck < min_snr_db) continue;
    candidates.push_back({node, bottleneck});
  }
  // Bottleneck-SNR ties break toward the lower node id explicitly (not
  // just by sort stability), so roster order is a pure function of the
  // medium and can never drift with how callers shard or reorder their
  // sweeps.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.bottleneck_snr_db != b.bottleneck_snr_db) {
                return a.bottleneck_snr_db > b.bottleneck_snr_db;
              }
              return a.node < b.node;
            });
  std::vector<std::size_t> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(c.node);
  return out;
}

const std::vector<std::size_t>& OverhearingRelayCache::Get(
    std::size_t sender, std::size_t receiver, double min_snr_db) {
  const auto key = std::make_tuple(sender, receiver, min_snr_db);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  return cache_
      .emplace(key, OverhearingRelays(*medium_, sender, receiver, min_snr_db))
      .first->second;
}

TestbedTopology::TestbedTopology(const TestbedConfig& config)
    : config_(config) {
  Rng rng(config_.seed);
  positions_.reserve(NumNodes());

  // Senders: round-robin across the nine rooms (3x3 grid), uniformly
  // placed within each room with a small margin from the walls.
  const int grid = 3;
  const double room_w = config_.floor_width_m / grid;
  const double room_h = config_.floor_height_m / grid;
  const double margin = 0.5;
  for (std::size_t i = 0; i < config_.num_senders; ++i) {
    const int room = static_cast<int>(i % 9);
    const int rx_cell = room % grid;
    const int ry_cell = room / grid;
    Point p;
    p.x = rx_cell * room_w + rng.UniformDouble(margin, room_w - margin);
    p.y = ry_cell * room_h + rng.UniformDouble(margin, room_h - margin);
    positions_.push_back(p);
  }

  // Receivers: spread along the floor's long axis at staggered heights,
  // mirroring Figure 7's R1..R4 placement among the senders.
  assert(config_.num_receivers >= 1);
  for (std::size_t i = 0; i < config_.num_receivers; ++i) {
    Point p;
    const double frac = (static_cast<double>(i) + 0.5) /
                        static_cast<double>(config_.num_receivers);
    p.x = frac * config_.floor_width_m;
    p.y = (i % 2 == 0) ? config_.floor_height_m * 0.3
                       : config_.floor_height_m * 0.7;
    positions_.push_back(p);
  }
}

MediumConfig IndoorMediumConfig(const TestbedConfig& testbed,
                                std::uint64_t seed) {
  MediumConfig config;
  config.seed = seed;
  const double w = testbed.floor_width_m;
  const double h = testbed.floor_height_m;
  config.wall_xs = {w / 3.0, 2.0 * w / 3.0};
  config.wall_ys = {h / 3.0, 2.0 * h / 3.0};
  config.wall_loss_db = 7.0;
  // Lossy indoor propagation (cluttered office at 2.4 GHz) plus a
  // modest-sensitivity software-radio receiver: calibrated so a sink
  // hears roughly 4-8 of the 23 senders with the best links near
  // perfect and many marginal, as the paper reports.
  config.reference_loss_db = 52.0;
  config.path_loss_exponent = 3.3;
  config.noise_floor_dbm = -88.0;
  return config;
}

std::size_t TestbedTopology::SenderId(std::size_t i) const {
  assert(i < config_.num_senders);
  return i;
}

std::size_t TestbedTopology::ReceiverId(std::size_t i) const {
  assert(i < config_.num_receivers);
  return config_.num_senders + i;
}

bool TestbedTopology::IsReceiver(std::size_t node) const {
  return node >= config_.num_senders && node < NumNodes();
}

}  // namespace ppr::sim
