// Chip-level receiver model for the testbed simulator.
//
// For every transmission audible at a receiver, the model decodes each
// 32-chip codeword through the real ChipCodebook despreader after
// injecting chip errors at the codeword's instantaneous SINR
// (interference = sum of concurrently received powers). The output is a
// reception record carrying per-codeword decode outcomes and SoftPHY
// hints plus the PHY-level synchronization facts (preamble lock,
// postamble detection, header/trailer integrity) that the delivery
// schemes interpret.
//
// This mirrors the paper's methodology of capturing symbol-level traces
// at the GNU Radio receivers and post-processing them per scheme
// (section 7.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "frame/frame_format.h"
#include "phy/chip_sequences.h"
#include "sim/medium.h"
#include "sim/traffic.h"

namespace ppr::sim {

struct CodewordOutcome {
  std::uint8_t true_symbol = 0;
  std::uint8_t symbol = 0;     // decoded
  std::uint8_t distance = 0;   // Hamming-distance SoftPHY hint
  bool correct = false;
};

struct ReceptionRecord {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  std::uint16_t seq = 0;
  double start_s = 0.0;

  // PHY synchronization facts (scheme-independent).
  bool preamble_sync = false;   // receiver idle + preamble/SFD decodable
  bool postamble_sync = false;  // postamble/PSFD decodable
  bool header_ok = false;       // every header codeword correct
  bool trailer_ok = false;      // every trailer codeword correct

  // One outcome per frame codeword (sync prefix through sync suffix);
  // populated only when preamble_sync or postamble_sync.
  std::vector<CodewordOutcome> trace;

  double snr_db = 0.0;  // interference-free link SNR
};

struct ReceiverModelConfig {
  std::size_t payload_octets = 1500;
  // Links with interference-free SNR below this are not processed at
  // all (the receiver cannot hear the sender).
  double min_audible_snr_db = -2.0;
  // Sync detection tolerances: required correct codewords out of the
  // 8-codeword preamble/postamble run (the SFD / PSFD pair must decode
  // exactly).
  int min_sync_run_correct = 6;
  // Co-channel 802.15.4 interference damages chips harder than equal-
  // power Gaussian noise would suggest (the interferer is a constant-
  // envelope signal, not noise). Interference power is multiplied by
  // this factor before the SINR -> chip-error-rate mapping, calibrated
  // against the waveform-level collision pipeline.
  double interference_penalty = 3.0;
  // Residual link impairments, modeled as a two-state (Gilbert-Elliott)
  // process per reception: links are mostly clean (a small chip-error
  // floor that keeps correct-codeword hints at 0-1, as in Figure 3) but
  // suffer short impairment bursts during which chips break at a high
  // rate. Burst frequency varies by more than an order of magnitude
  // across links, per the loss studies the paper cites [1,26,27]: each
  // link draws its per-codeword burst-entry probability from a
  // lognormal with median `impairment_rate` and the given log-sigma.
  double good_chip_floor = 0.008;
  double impairment_rate = 3e-4;
  double impairment_spread_sigma = 1.5;
  double impairment_exit = 0.3;      // mean burst ~3.3 codewords
  double impaired_chip_error = 0.35;
  // Small-scale multipath fading: block Ricean fading with this
  // coherence time, K factor (linear; 0 = Rayleigh), applied per
  // (transmitter, receiver, time-segment). With ~49 ms frames and
  // ~15 ms coherence, a fade dip corrupts part of a frame — the
  // paper's "only a small number of bits in a packet are in error".
  double fading_coherence_s = 0.008;
  double ricean_k = 1.5;
  bool fading_enabled = true;
  std::uint64_t seed = 1234;
};

class ReceiverModel {
 public:
  ReceiverModel(const RadioMedium& medium, const ReceiverModelConfig& config);

  const frame::FrameLayout& Layout() const { return layout_; }

  // Codeword index ranges within the frame trace.
  std::size_t PayloadCwOffset() const { return layout_.PayloadOffset() * 2; }
  std::size_t PayloadCwCount() const { return layout_.payload_octets() * 2; }
  std::size_t BodyCwOffset() const { return layout_.HeaderOffset() * 2; }
  std::size_t BodyCwCount() const { return layout_.BodyOctets() * 2; }

  // Processes every transmission in `schedule` as heard by `receiver`,
  // invoking `on_reception` for each audible one (in time order). The
  // record reference is only valid during the callback.
  void ProcessReceiver(
      std::size_t receiver, const std::vector<Transmission>& schedule,
      const std::function<void(const ReceptionRecord&)>& on_reception) const;

  const ReceiverModelConfig& config() const { return config_; }

 private:
  // True symbols for a (sender, seq) frame: sync patterns at both ends,
  // deterministic pseudo-random test pattern in the body.
  std::vector<std::uint8_t> TrueSymbols(std::size_t sender,
                                        std::uint16_t seq) const;

  const RadioMedium& medium_;
  ReceiverModelConfig config_;
  frame::FrameLayout layout_;
  phy::ChipCodebook codebook_;
};

}  // namespace ppr::sim
