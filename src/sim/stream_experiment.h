// Streaming recovery sweep: loss rate x window size x redundancy
// controller, each point one deterministic StreamSession on a bursty
// frame-erasure link, reporting recovery-latency percentiles (p50 /
// p95 / p99 via obs::HistogramSnapshot::ValueAtQuantile) and goodput
// next to repair-bit overhead.
//
// Determinism at any thread count follows the RunLinkRecoveryExperiment
// pattern: a serial pass enumerates points and pre-generates each
// (loss, window) cell's frame-fate sequence from a fork of the sweep
// seed — shared by all controllers in the cell, so controller
// comparisons are paired on one channel realization (common random
// numbers) — then workers pull point indices from an atomic counter
// and write disjoint result slots, and per-point metric registries
// (timings off) merge in point order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "stream/redundancy.h"
#include "stream/session.h"

namespace ppr::sim {

struct StreamSweepConfig {
  std::vector<double> loss_rates = {0.05, 0.15, 0.25};
  std::vector<std::size_t> window_sizes = {16, 32};
  std::vector<stream::ControllerKind> controllers = {
      stream::ControllerKind::kFixedRate,
      stream::ControllerKind::kAckDeficit,
      stream::ControllerKind::kDeadline,
  };

  // Mean erased-frame burst length of the Gilbert-Elliott erasure
  // process (1.0 = memoryless).
  double mean_burst_frames = 3.0;

  // Per-point session shape; window_capacity is overridden by the
  // sweep's window axis.
  stream::StreamSessionConfig session;

  std::uint64_t seed = 20070827;  // SIGCOMM '07, why not
  std::size_t num_threads = 0;    // 0 = hardware concurrency
};

struct StreamPointResult {
  double loss_rate = 0.0;
  std::size_t window_size = 0;
  stream::ControllerKind controller = stream::ControllerKind::kFixedRate;

  double p50_latency_us = 0.0;
  double p95_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double goodput_pps = 0.0;      // delivered packets per second
  double repair_overhead = 0.0;  // repair bits / source bits

  stream::StreamSessionStats stats;
};

struct StreamExperimentResult {
  std::vector<StreamPointResult> points;
  // Per-point registries merged in point order (thread-invariant).
  obs::Snapshot metrics;

  // The point for (loss, window, controller), or nullptr.
  const StreamPointResult* Find(double loss_rate, std::size_t window_size,
                                stream::ControllerKind controller) const;
};

StreamExperimentResult RunStreamRecoveryExperiment(
    const StreamSweepConfig& config);

}  // namespace ppr::sim
