#include "sim/traffic.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace ppr::sim {
namespace {

struct Arrival {
  double time = 0.0;
  std::size_t sender = 0;
  std::uint16_t seq = 0;

  bool operator>(const Arrival& other) const { return time > other.time; }
};

}  // namespace

std::vector<Transmission> GenerateSchedule(
    const TrafficConfig& config, const RadioMedium& medium,
    const std::vector<std::size_t>& senders) {
  assert(config.frame_total_chips > 0);
  const double frame_duration =
      static_cast<double>(config.frame_total_chips) * kSecondsPerChip;
  const double arrival_rate =
      config.offered_load_bps / static_cast<double>(config.payload_bits);

  Rng rng(config.seed);

  // Independent Poisson arrivals per sender.
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>>
      arrivals;
  std::vector<Rng> sender_rngs;
  sender_rngs.reserve(senders.size());
  std::vector<std::uint16_t> seqs(senders.size(), 0);
  for (std::size_t i = 0; i < senders.size(); ++i) {
    sender_rngs.push_back(rng.Fork());
    const double first = sender_rngs.back().Exponential(arrival_rate);
    if (first < config.duration_s) {
      arrivals.push(Arrival{first, i, 0});
    }
  }

  const double cs_threshold_mw = DbmToMilliwatts(config.cs_threshold_dbm);

  std::vector<Transmission> schedule;
  // Earliest time each sender is free (no self-overlap: a node has one
  // radio).
  std::vector<double> sender_free(senders.size(), 0.0);

  while (!arrivals.empty()) {
    Arrival a = arrivals.top();
    arrivals.pop();

    double start = std::max(a.time, sender_free[a.sender]);

    if (config.carrier_sense) {
      // Defer while any already-scheduled transmission is audible above
      // the CS threshold at this sender. The schedule is generated in
      // time order, so checking against `schedule` is sufficient.
      bool deferred = true;
      while (deferred) {
        deferred = false;
        for (const auto& t : schedule) {
          if (t.End() <= start || t.start_s > start) continue;
          const double p_mw =
              medium.RxPowerMw(t.sender, senders[a.sender]);
          if (p_mw >= cs_threshold_mw) {
            // Busy: re-sense shortly after this transmission ends plus a
            // small random backoff to break synchronization.
            start = t.End() +
                    sender_rngs[a.sender].Exponential(
                        1.0 / config.cs_backoff_mean_s);
            deferred = true;
            break;
          }
        }
      }
    }

    if (start < config.duration_s) {
      Transmission t;
      t.sender = senders[a.sender];
      t.seq = seqs[a.sender]++;
      t.start_s = start;
      t.duration_s = frame_duration;
      schedule.push_back(t);
      sender_free[a.sender] = t.End();
    }

    // Next arrival for this sender.
    const double next =
        a.time + sender_rngs[a.sender].Exponential(arrival_rate);
    if (next < config.duration_s) {
      arrivals.push(Arrival{next, a.sender, seqs[a.sender]});
    }
  }

  std::sort(schedule.begin(), schedule.end(),
            [](const Transmission& x, const Transmission& y) {
              return x.start_s < y.start_s;
            });
  return schedule;
}

}  // namespace ppr::sim
