#include "sim/receiver_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "phy/channel.h"
#include "phy/spreader.h"

namespace ppr::sim {
namespace {

// Seconds occupied by one 32-chip codeword at 2 Mchip/s: 16 us.
constexpr double kCodewordSeconds =
    static_cast<double>(ppr::phy::kChipsPerSymbol) * kSecondsPerChip;

// Mixes a stable per-frame RNG seed from the experiment seed and the
// frame identity (SplitMix-style avalanche).
std::uint64_t FrameSeed(std::uint64_t base, std::size_t sender,
                        std::uint16_t seq) {
  std::uint64_t x = base ^ (static_cast<std::uint64_t>(sender) << 32) ^
                    (static_cast<std::uint64_t>(seq) << 1) ^ 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

// Block Ricean power gain for one (tx, rx, coherence-segment) triple.
// Deterministic in its inputs so a transmission fades identically
// whether it is the decoded signal or an interferer.
double FadingGain(std::uint64_t base, std::size_t tx, std::size_t rx,
                  std::int64_t segment, double ricean_k) {
  Rng rng(FrameSeed(base ^ 0xFAD1FAD1FAD1FAD1ull,
                    tx * 1315423911u + rx,
                    static_cast<std::uint16_t>(segment & 0xFFFF)) ^
          static_cast<std::uint64_t>(segment));
  const double mu = std::sqrt(ricean_k / (ricean_k + 1.0));
  const double sigma = std::sqrt(0.5 / (ricean_k + 1.0));
  const double x = rng.Normal(mu, sigma);
  const double y = rng.Normal(0.0, sigma);
  return x * x + y * y;  // E[gain] == 1
}

}  // namespace

ReceiverModel::ReceiverModel(const RadioMedium& medium,
                             const ReceiverModelConfig& config)
    : medium_(medium), config_(config), layout_(config.payload_octets) {}

std::vector<std::uint8_t> ReceiverModel::TrueSymbols(std::size_t sender,
                                                     std::uint16_t seq) const {
  std::vector<std::uint8_t> symbols(layout_.TotalSymbols(), 0);

  // Sync prefix: preamble octets then SFD, two symbols per octet (low
  // nibble first, matching the spreader convention).
  const auto pre = frame::PreamblePatternOctets();
  for (std::size_t i = 0; i < pre.size(); ++i) {
    symbols[2 * i] = pre[i] & 0xF;
    symbols[2 * i + 1] = (pre[i] >> 4) & 0xF;
  }
  // Body: deterministic test pattern (uniform random symbols), as in the
  // paper's known-test-pattern experiments.
  Rng rng(FrameSeed(config_.seed, sender, seq));
  const std::size_t body_first = frame::kSyncPrefixOctets * 2;
  const std::size_t body_count = layout_.BodyOctets() * 2;
  for (std::size_t i = 0; i < body_count; ++i) {
    symbols[body_first + i] = static_cast<std::uint8_t>(rng.UniformInt(16));
  }
  // Sync suffix: postamble octets then the post-SFD.
  const auto post = frame::PostamblePatternOctets();
  const std::size_t post_first = layout_.PostambleOffset() * 2;
  for (std::size_t i = 0; i < post.size(); ++i) {
    symbols[post_first + 2 * i] = post[i] & 0xF;
    symbols[post_first + 2 * i + 1] = (post[i] >> 4) & 0xF;
  }
  return symbols;
}

void ReceiverModel::ProcessReceiver(
    std::size_t receiver, const std::vector<Transmission>& schedule,
    const std::function<void(const ReceptionRecord&)>& on_reception) const {
  const std::size_t num_cws = layout_.TotalSymbols();
  const double noise_mw = medium_.NoiseFloorMw();

  // The receiver's preamble detector is busy (locked) while it is
  // receiving a frame it synchronized on; later-starting frames cannot
  // grab it (the "undesirable capture" situation postambles rescue).
  double locked_until = -1.0;

  Rng rx_rng(config_.seed ^ (0xC0FFEEull + receiver));

  ReceptionRecord record;
  for (std::size_t ti = 0; ti < schedule.size(); ++ti) {
    const Transmission& t = schedule[ti];
    if (t.sender == receiver) continue;
    const double snr_db = medium_.LinkSnrDb(t.sender, receiver);
    if (snr_db < config_.min_audible_snr_db) continue;

    record.sender = t.sender;
    record.receiver = receiver;
    record.seq = t.seq;
    record.start_s = t.start_s;
    record.snr_db = snr_db;
    record.preamble_sync = false;
    record.postamble_sync = false;
    record.header_ok = false;
    record.trailer_ok = false;
    record.trace.clear();

    // Gather interferers overlapping this transmission. The schedule is
    // sorted by start time; scan a window around ti.
    struct Interferer {
      double start, end, power_mw;
      std::size_t sender;
    };
    std::vector<Interferer> interferers;
    for (std::size_t j = ti; j-- > 0;) {
      const Transmission& o = schedule[j];
      // Frames all share one duration, so anything starting more than
      // one duration earlier cannot overlap.
      if (o.End() <= t.start_s) {
        if (t.start_s - o.start_s > o.duration_s) break;
        continue;
      }
      if (o.sender == t.sender || o.sender == receiver) continue;
      interferers.push_back({o.start_s, o.End(),
                             medium_.RxPowerMw(o.sender, receiver), o.sender});
    }
    for (std::size_t j = ti + 1; j < schedule.size(); ++j) {
      const Transmission& o = schedule[j];
      if (o.start_s >= t.End()) break;
      if (o.sender == t.sender || o.sender == receiver) continue;
      interferers.push_back({o.start_s, o.End(),
                             medium_.RxPowerMw(o.sender, receiver), o.sender});
    }

    // Per-link impairment-burst rate (lognormal across links) and the
    // burst state machine for this reception.
    double burst_enter_p = 0.0;
    if (config_.impairment_rate > 0.0) {
      Rng floor_rng(FrameSeed(config_.seed ^ 0xF100F100ull,
                              t.sender * 131u + receiver, 0));
      burst_enter_p = std::min(
          0.2, config_.impairment_rate *
                   std::exp(floor_rng.Normal(
                       0.0, config_.impairment_spread_sigma)));
    }
    bool impaired = false;

    // Decode every codeword at its own SINR.
    const double p_signal_avg_mw = medium_.RxPowerMw(t.sender, receiver);
    const auto true_symbols = TrueSymbols(t.sender, t.seq);
    assert(true_symbols.size() == num_cws);
    record.trace.resize(num_cws);
    const double coherence =
        config_.fading_coherence_s > 0.0 ? config_.fading_coherence_s : 1.0;
    for (std::size_t cw = 0; cw < num_cws; ++cw) {
      const double w0 = t.start_s + static_cast<double>(cw) * kCodewordSeconds;
      const double w1 = w0 + kCodewordSeconds;
      const auto segment = static_cast<std::int64_t>(w0 / coherence);
      double p_signal_mw = p_signal_avg_mw;
      if (config_.fading_enabled) {
        p_signal_mw *= FadingGain(config_.seed, t.sender, receiver, segment,
                                  config_.ricean_k);
      }
      double interference_mw = 0.0;
      for (const auto& intf : interferers) {
        const double overlap =
            std::min(w1, intf.end) - std::max(w0, intf.start);
        if (overlap > 0.0) {
          double p = intf.power_mw;
          if (config_.fading_enabled) {
            p *= FadingGain(config_.seed, intf.sender, receiver, segment,
                            config_.ricean_k);
          }
          interference_mw += p * (overlap / kCodewordSeconds);
        }
      }
      const double sinr =
          p_signal_mw /
          (noise_mw + config_.interference_penalty * interference_mw);
      const double p_sinr = phy::ChipErrorProbability(sinr);
      // Advance the impairment burst state and combine the error
      // processes (independent): SINR-driven errors plus either the
      // clean-state floor or the in-burst error rate.
      if (impaired) {
        impaired = !rx_rng.Bernoulli(config_.impairment_exit);
      } else {
        impaired = rx_rng.Bernoulli(burst_enter_p);
      }
      const double p_res =
          impaired ? config_.impaired_chip_error : config_.good_chip_floor;
      const double p_chip = p_sinr + p_res - p_sinr * p_res;

      const std::uint8_t true_sym = true_symbols[cw];
      const phy::ChipWord sent = codebook_.Codeword(true_sym);
      const phy::ChipWord received =
          sent ^ phy::SampleChipErrorMask(rx_rng, p_chip);
      int distance = 0;
      const int decoded = codebook_.DecodeHard(received, &distance);

      CodewordOutcome& out = record.trace[cw];
      out.true_symbol = true_sym;
      out.symbol = static_cast<std::uint8_t>(decoded);
      out.distance = static_cast<std::uint8_t>(distance);
      out.correct = decoded == true_sym;
    }

    // Synchronization facts from the decoded sync codewords.
    const auto run_correct = [&](std::size_t first, std::size_t count) {
      int n = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (record.trace[first + i].correct) ++n;
      }
      return n;
    };
    const std::size_t preamble_cws = frame::kPreambleOctets * 2;
    const std::size_t sfd_first = preamble_cws;
    const bool sfd_ok = record.trace[sfd_first].correct &&
                        record.trace[sfd_first + 1].correct;
    const bool preamble_run_ok =
        run_correct(0, preamble_cws) >= config_.min_sync_run_correct;
    const bool idle = t.start_s >= locked_until;
    record.preamble_sync = idle && sfd_ok && preamble_run_ok;
    if (record.preamble_sync) locked_until = t.End();

    const std::size_t post_first = layout_.PostambleOffset() * 2;
    const std::size_t post_cws = frame::kPostambleOctets * 2;
    const std::size_t psfd_first = post_first + post_cws;
    const bool psfd_ok = record.trace[psfd_first].correct &&
                         record.trace[psfd_first + 1].correct;
    const bool post_run_ok =
        run_correct(post_first, post_cws) >= config_.min_sync_run_correct;
    record.postamble_sync = psfd_ok && post_run_ok;

    record.header_ok =
        run_correct(layout_.HeaderOffset() * 2, frame::kHeaderOctets * 2) ==
        static_cast<int>(frame::kHeaderOctets * 2);
    record.trailer_ok =
        run_correct(layout_.TrailerOffset() * 2, frame::kTrailerOctets * 2) ==
        static_cast<int>(frame::kTrailerOctets * 2);

    on_reception(record);
  }
}

}  // namespace ppr::sim
