// Offered-load traffic generation and the CSMA MAC (sections 7.1-7.2).
//
// Each sender generates fixed-size packets at a configured offered load
// (bits/s) with Poisson arrivals, then transmits them either immediately
// (carrier sense disabled, as in Figs. 9-12) or after the medium is
// sensed idle (carrier sense enabled, Fig. 8). The output is a global
// transmission timeline the receiver model consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "sim/medium.h"

namespace ppr::sim {

// 802.15.4 2.4 GHz chip rate: 2 Mchip/s (section 6).
inline constexpr double kChipRateHz = 2'000'000.0;
inline constexpr double kSecondsPerChip = 1.0 / kChipRateHz;

struct Transmission {
  std::size_t sender = 0;   // node id
  std::uint16_t seq = 0;    // per-sender sequence number
  double start_s = 0.0;     // airtime start
  double duration_s = 0.0;  // airtime length
  double End() const { return start_s + duration_s; }
};

struct TrafficConfig {
  double offered_load_bps = 3'500.0;  // per node (paper: 3.5/6.9/13.8 k)
  double duration_s = 60.0;           // simulated time
  std::size_t frame_total_chips = 0;  // on-air chips per frame
  bool carrier_sense = false;
  double cs_threshold_dbm = -85.0;    // busy if any signal above this
  double cs_backoff_mean_s = 0.002;   // random re-check delay when busy
  std::size_t payload_bits = 12'000;  // 1500 bytes; sets arrival rate
  std::uint64_t seed = 99;
};

// Generates the global transmission schedule for all senders. With
// carrier sense on, a sender defers (with random exponential backoff)
// while any other scheduled transmission is above the CS threshold at
// its own position; queued packets transmit back-to-back once the medium
// clears. Arrival processes are independent per sender.
std::vector<Transmission> GenerateSchedule(const TrafficConfig& config,
                                           const RadioMedium& medium,
                                           const std::vector<std::size_t>& senders);

}  // namespace ppr::sim
