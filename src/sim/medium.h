// Radio medium model for the 27-node indoor testbed (Figure 7).
//
// Static link gains: log-distance path loss with per-link lognormal
// shadowing, the standard indoor propagation model. Interference is
// handled per-codeword by the receiver model (SINR = P_rx divided by
// noise plus the sum of concurrently received powers), which is where
// the paper's collision-driven bit errors come from.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace ppr::sim {

struct Point {
  double x = 0.0;  // meters
  double y = 0.0;
};

double Distance(const Point& a, const Point& b);

struct MediumConfig {
  double tx_power_dbm = 0.0;        // CC2420 default class output
  double path_loss_exponent = 3.0;  // indoor office
  double reference_loss_db = 40.0;  // at 1 m, 2.4 GHz
  double shadowing_sigma_db = 6.0;  // lognormal shadowing per link
  double noise_floor_dbm = -98.0;   // thermal + receiver noise figure
  std::uint64_t seed = 1;           // shadowing draws
  // Multi-wall (COST-231-style) attenuation: each crossing of a wall
  // line adds `wall_loss_db`. This is what limits a sink to hearing a
  // handful of the 23 senders in a nine-room office (Figure 7).
  std::vector<double> wall_xs;  // vertical wall positions (m)
  std::vector<double> wall_ys;  // horizontal wall positions (m)
  double wall_loss_db = 8.0;
};

// Number of wall lines the segment a-b crosses.
int CountWallCrossings(const Point& a, const Point& b,
                       const std::vector<double>& wall_xs,
                       const std::vector<double>& wall_ys);

double DbmToMilliwatts(double dbm);
double MilliwattsToDbm(double mw);

// Precomputes the static gain matrix between every pair of node
// positions. Shadowing is symmetric (gain[a][b] == gain[b][a]) and fixed
// for the lifetime of the medium, modeling a quasi-static indoor
// environment.
class RadioMedium {
 public:
  RadioMedium(std::vector<Point> positions, const MediumConfig& config);

  std::size_t NumNodes() const { return positions_.size(); }
  const Point& Position(std::size_t node) const { return positions_[node]; }

  // Received power at `to` for a transmission from `from`.
  double RxPowerDbm(std::size_t from, std::size_t to) const;
  double RxPowerMw(std::size_t from, std::size_t to) const;

  double NoiseFloorMw() const { return noise_mw_; }
  double NoiseFloorDbm() const { return config_.noise_floor_dbm; }

  // SNR (no interference) of the link in dB; used to decide which links
  // are audible at all.
  double LinkSnrDb(std::size_t from, std::size_t to) const;

  const MediumConfig& config() const { return config_; }

 private:
  std::vector<Point> positions_;
  MediumConfig config_;
  double noise_mw_;
  std::vector<double> rx_power_mw_;  // NumNodes x NumNodes, row-major

  double& PowerEntry(std::size_t from, std::size_t to);
  const double& PowerEntry(std::size_t from, std::size_t to) const;
};

}  // namespace ppr::sim
