#include "sim/stream_experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "obs/obs.h"

namespace ppr::sim {

namespace {

// Pre-generated frame fates from a Gilbert-Elliott chain: fates[i] is
// true when the i-th frame on the air is erased. Stationary loss =
// loss_rate, mean erased burst = mean_burst_frames. Generating the
// fate sequence once per (loss, window) cell and sharing it across the
// controllers under comparison is common-random-numbers variance
// reduction: every controller faces the same channel realization, so
// an overhead or latency difference between them is the controllers'
// doing, not one of them drawing a luckier channel.
std::vector<std::uint8_t> MakeFrameFates(double loss_rate,
                                         double mean_burst_frames,
                                         std::size_t count, Rng& rng) {
  std::vector<std::uint8_t> fates(count, 0);
  if (loss_rate <= 0.0) return fates;
  if (loss_rate >= 1.0) {
    std::fill(fates.begin(), fates.end(), std::uint8_t{1});
    return fates;
  }
  if (mean_burst_frames < 1.0) mean_burst_frames = 1.0;
  const double p_bad_to_good = 1.0 / mean_burst_frames;
  const double p_good_to_bad =
      loss_rate * p_bad_to_good / (1.0 - loss_rate);
  bool bad = false;
  for (auto& fate : fates) {
    const double u = rng.UniformDouble();
    if (bad) {
      if (u < p_bad_to_good) bad = false;
    } else {
      if (u < p_good_to_bad) bad = true;
    }
    fate = bad ? 1 : 0;
  }
  return fates;
}

// Frame-level erasure channel over the BodyChannel interface: good
// frames decode verbatim, bad frames are corrupted (symbol bits XORed)
// so the receiver's CRC-32 rejects them — the same erasure surface a
// chip-level burst produces. The i-th frame transmitted consumes
// fates[i] (wrapping, deterministically, if the session somehow
// outruns the pre-generated sequence).
arq::BodyChannel MakeFrameErasureChannel(
    std::shared_ptr<const std::vector<std::uint8_t>> fates) {
  auto index = std::make_shared<std::size_t>(0);
  return [fates, index](const BitVec& bits) {
    const bool bad =
        !fates->empty() && (*fates)[(*index)++ % fates->size()] != 0;
    std::vector<phy::DecodedSymbol> symbols;
    symbols.reserve(bits.size() / 4);
    for (std::size_t i = 0; i + 4 <= bits.size(); i += 4) {
      phy::DecodedSymbol s;
      s.symbol = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      if (bad) {
        s.symbol ^= 0xF;  // corrupted codeword: CRC will reject the frame
        s.hint = 1.0;
        s.hamming_distance = 16;
      }
      symbols.push_back(s);
    }
    return symbols;
  };
}

struct StreamJob {
  double loss_rate = 0.0;
  std::size_t window_size = 0;
  stream::ControllerKind controller = stream::ControllerKind::kFixedRate;
  std::shared_ptr<const std::vector<std::uint8_t>> fates;
};

StreamPointResult RunOnePoint(const StreamSweepConfig& config, StreamJob job,
                              obs::Snapshot* metrics) {
  // Everything this point runs records into a registry private to the
  // point; wall-clock timings are excluded so the snapshot depends only
  // on the point's deterministic work.
  obs::MetricRegistry registry;
  obs::ScopedObsContext obs_scope(&registry, /*tracer=*/nullptr,
                                  /*record_timings=*/false);

  stream::StreamSessionConfig session = config.session;
  session.window_capacity = job.window_size;

  const auto channel = MakeFrameErasureChannel(job.fates);
  const auto controller = stream::MakeController(job.controller);

  StreamPointResult point;
  point.loss_rate = job.loss_rate;
  point.window_size = job.window_size;
  point.controller = job.controller;
  point.stats = stream::RunStreamSession(session, *controller, channel);

  const auto& hist = point.stats.latency_us;
  point.p50_latency_us = hist.ValueAtQuantile(0.50);
  point.p95_latency_us = hist.ValueAtQuantile(0.95);
  point.p99_latency_us = hist.ValueAtQuantile(0.99);
  point.goodput_pps = point.stats.GoodputBps();
  point.repair_overhead = point.stats.RepairOverhead();

  if (metrics) *metrics = registry.TakeSnapshot();
  return point;
}

}  // namespace

const StreamPointResult* StreamExperimentResult::Find(
    double loss_rate, std::size_t window_size,
    stream::ControllerKind controller) const {
  for (const auto& p : points) {
    if (p.window_size == window_size && p.controller == controller &&
        std::abs(p.loss_rate - loss_rate) < 1e-12) {
      return &p;
    }
  }
  return nullptr;
}

StreamExperimentResult RunStreamRecoveryExperiment(
    const StreamSweepConfig& config) {
  // Serial pass: enumerate the sweep grid in a fixed order. Each
  // (loss, window) cell pre-generates one frame-fate sequence from a
  // fork of the root Rng, shared by every controller in the cell —
  // paired comparisons on an identical channel realization, identical
  // at any thread count.
  std::vector<StreamJob> jobs;
  // Frames on the air per session: every source packet once, repairs
  // at well under one per source packet for any sane controller, plus
  // the closing flush. 4x + slack never wraps in practice.
  const std::size_t fate_count = 4 * config.session.total_packets + 1024;
  for (const double loss : config.loss_rates) {
    for (const std::size_t window : config.window_sizes) {
      // Seed each cell from (sweep seed, loss, window) rather than from
      // enumeration order, so a cell's channel realization does not
      // depend on which other cells the sweep happens to include — the
      // smoke sweep and the full sweep see byte-identical channels at
      // their shared points.
      const std::uint64_t cell_salt =
          static_cast<std::uint64_t>(window) * 0x9E3779B97F4A7C15ULL ^
          static_cast<std::uint64_t>(loss * 1e6) * 0xC2B2AE3D27D4EB4FULL;
      Rng cell_rng(config.seed ^ cell_salt);
      auto fates = std::make_shared<const std::vector<std::uint8_t>>(
          MakeFrameFates(loss, config.mean_burst_frames, fate_count,
                         cell_rng));
      for (const auto controller : config.controllers) {
        StreamJob job;
        job.loss_rate = loss;
        job.window_size = window;
        job.controller = controller;
        job.fates = fates;
        jobs.push_back(job);
      }
    }
  }

  // Parallel pass: points are independent; workers pull indices and
  // write disjoint slots.
  std::vector<StreamPointResult> points(jobs.size());
  std::vector<obs::Snapshot> point_metrics(jobs.size());
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t num_threads = std::max<std::size_t>(
      1, std::min(jobs.size(),
                  config.num_threads ? config.num_threads : (hw ? hw : 1)));
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t j = next.fetch_add(1); j < jobs.size();
         j = next.fetch_add(1)) {
      points[j] = RunOnePoint(config, jobs[j], &point_metrics[j]);
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  StreamExperimentResult result;
  result.points = std::move(points);
  // Merge per-point snapshots in grid order — independent of which
  // worker ran which point.
  for (const auto& snap : point_metrics) result.metrics.Merge(snap);
  return result;
}

}  // namespace ppr::sim
