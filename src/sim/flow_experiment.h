// Many-flows driver for the flow-table engine (engine/flow_engine.h).
//
// Flows are sharded by flow id into a FIXED number of shards, each
// shard owning its own FlowEngine and obs::MetricRegistry; worker
// threads pull whole shards. Because the shard partition and every
// per-shard RNG stream depend only on ids and seeds — never on which
// thread ran the shard or how many threads exist — the per-shard
// results and the shard-order merged snapshot are bit-identical at any
// thread count (the same discipline sim/experiment.cc uses for links).
#pragma once

#include <cstddef>
#include <cstdint>

#include "engine/flow_engine.h"
#include "obs/metrics.h"

namespace ppr::sim {

struct FlowExperimentConfig {
  // Per-shard engine shape; the per-shard seed is derived from
  // `seed` + shard id on top of this.
  engine::EngineConfig engine;
  std::size_t flows = 1000;
  // Fixed shard count — the determinism unit. Thread count may vary
  // freely underneath it.
  std::size_t num_shards = 8;
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  std::uint64_t seed = 1;
};

struct FlowExperimentResult {
  engine::EngineStats totals;  // summed over shards in shard order
  std::size_t shards = 0;
  // Per-shard registries merged in shard order: thread-count-invariant.
  obs::Snapshot metrics;
};

FlowExperimentResult RunFlowEngineExperiment(const FlowExperimentConfig& config);

}  // namespace ppr::sim
