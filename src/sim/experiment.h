// Experiment orchestration: one simulated run of the 27-node testbed at
// a given offered load, evaluated under any set of delivery schemes.
// This is the engine behind the paper's Figures 3 and 8-15 and Table 2.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "arq/link_sim.h"
#include "arq/pp_arq.h"
#include "collide/zigzag.h"
#include "obs/metrics.h"
#include "sim/delivery.h"
#include "sim/medium.h"
#include "sim/receiver_model.h"
#include "sim/topology.h"
#include "sim/traffic.h"

namespace ppr::sim {

struct ExperimentConfig {
  TestbedConfig testbed;
  MediumConfig medium;
  TrafficConfig traffic;
  ReceiverModelConfig receiver;
  // Links whose interference-free SNR falls below this never deliver
  // anything useful and are excluded from per-link distributions,
  // mirroring the paper's "senders a sink can hear".
  double min_link_snr_db = 0.0;
};

// Accumulated statistics for one (sender, receiver) link under one
// scheme.
struct LinkSchemeStats {
  double equivalent_frames_delivered = 0.0;  // sum of per-frame fractions
  std::size_t delivered_bits = 0;            // correct payload bits
  std::size_t wrong_bits = 0;                // PPR miss bits
  std::size_t acquired_frames = 0;
};

struct LinkResult {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  double snr_db = 0.0;
  std::size_t frames_sent = 0;  // frames the sender transmitted
  std::vector<LinkSchemeStats> schemes;  // parallel to the scheme list

  // Equivalent frame delivery rate (Figs. 8-10): equivalent frames
  // delivered divided by frames transmitted on the link.
  double Fdr(std::size_t scheme_index) const;

  // Per-link goodput in bits/s, accounting scheme airtime overhead
  // (Figs. 11-12).
  double ThroughputBps(std::size_t scheme_index, const SchemeConfig& scheme,
                       std::size_t payload_octets, double duration_s) const;
};

struct ExperimentResult {
  std::vector<LinkResult> links;
  std::size_t total_transmissions = 0;
  double duration_s = 0.0;
  std::size_t payload_octets = 0;
};

// Observer invoked for every audible reception; used by the
// figure-specific benches to collect hint statistics (Hamming
// distributions, miss lengths) from the same run.
using ReceptionObserver =
    std::function<void(const ReceptionRecord&, const ReceiverModel&)>;

class TestbedExperiment {
 public:
  explicit TestbedExperiment(const ExperimentConfig& config);

  // Simulates one run and evaluates `schemes` over every reception.
  ExperimentResult Run(const std::vector<SchemeConfig>& schemes,
                       const ReceptionObserver& observer = nullptr) const;

  const RadioMedium& medium() const { return medium_; }
  const TestbedTopology& topology() const { return topology_; }

 private:
  ExperimentConfig config_;
  TestbedTopology topology_;
  RadioMedium medium_;
};

// Canonical experiment configuration matching the paper's setup:
// 1500-byte frames, 23 senders, 4 receivers, given offered load per
// node (bits/s) and carrier-sense setting.
ExperimentConfig MakePaperConfig(double offered_load_bps, bool carrier_sense,
                                 double duration_s = 60.0,
                                 std::uint64_t seed = 42);

// ------------------------------------------------------------------------
// Per-link PP-ARQ recovery experiment: replays every audible testbed
// link as a bursty chip-error channel at the link's SNR (clean-state
// error rate from the SNR, impairment bursts from the receiver-model
// parameters) and runs full PP-ARQ exchanges under the recovery
// strategy `recovery.arq.recovery` selects. This is how a strategy
// choice (chunk retransmission vs coded vs relay-coded repair) is
// evaluated across the whole testbed rather than a single hand-built
// link. Under kRelayCodedRepair each link recruits its top
// `max_relays` overhearers best-bottleneck-first (sim/topology.h:
// OverhearingRelays, memoized via OverhearingRelayCache across a
// sweep's strategy/relay-count legs); links nobody overhears fall back
// to the two-party exchange.
//
// Links are independent, so the sweep is sharded across a thread pool;
// per-link seeding is fixed before any worker runs, making results
// identical at every thread count.

struct RecoveryExperimentConfig {
  arq::PpArqConfig arq;  // includes the RecoveryMode under test
  std::size_t payload_octets = 250;
  std::size_t packets_per_link = 4;
  std::size_t max_rounds = 32;
  std::uint64_t seed = 99;
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  // kRelayCodedRepair: the bottleneck SNR an overhearer must clear to
  // be recruited. Lower than the audibility threshold on purpose: a
  // marginal relay still contributes rank-increasing equations, and the
  // destination's burst split discounts lossy parties on its own.
  double relay_min_snr_db = 3.0;
  // kRelayCodedRepair: how many of a link's ranked overhearers are
  // recruited (the session is sized to however many actually exist,
  // down to two-party when none do). The per-round relay airtime
  // budget rides in arq.relay_airtime_budget_bits.
  std::size_t max_relays = 1;
  // CompareLinkRecoveryStrategies only: extra kRelayCodedRepair legs,
  // one per entry, each overriding max_relays (e.g. {1, 2, 4} to study
  // how repair airtime scales with roster size over identical links).
  std::vector<std::size_t> relay_count_sweep;
  // How collisions correlate across the source's co-located listeners
  // (the destination and every recruited relay) on each link.
  // kIndependent keeps the legacy private per-hop impairment draws;
  // kSharedInterferer draws ONE impairment-burst timeline per
  // transmission and projects it through every listener
  // (arq::ChipMedium) — the broadcast-medium regime the paper's
  // testbed actually exhibits, where a collision that costs the
  // destination its copy usually costs the overhearers theirs too.
  arq::CollisionCorrelation correlation =
      arq::CollisionCorrelation::kIndependent;
  // kCollisionResolve: probability that a packet's initial transmission
  // is a two-party double collision (the same interfering packet heard
  // twice at different offsets — the ZigZag precondition). Episode
  // draws come from arq::SeedForCollisionRound, a stream disjoint from
  // every existing seed chain, so 0.0 keeps any mode bit-identical to
  // a run without the subsystem.
  double collision_contention = 0.0;
  std::size_t collision_interferer_octets = 0;  // 0 = payload_octets
  double collision_chip_error_p = 0.005;  // chip noise inside a collision
  std::size_t collision_max_offset = 0;   // codewords; 0 = auto (body/4)
  collide::StripConfig collision_strip;
  // Off = the discard baseline: episodes still collide (and cost the
  // same initial airtime) but nothing is distilled from them.
  bool collision_resolve = true;
};

inline constexpr std::size_t kNoRelay = static_cast<std::size_t>(-1);

struct LinkRecoveryStats {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  double snr_db = 0.0;
  std::size_t packets = 0;
  std::size_t completed = 0;
  std::size_t repair_bits = 0;    // forward repair traffic (excl. initial)
  std::size_t feedback_bits = 0;  // reverse-direction traffic
  std::size_t feedback_rounds = 0;
  // kRelayCodedRepair: the recruited overhearers best-first (empty when
  // the link ran two-party; `relay` mirrors the front entry for the
  // single-relay consumers) and the split of repair_bits between the
  // source and the relay set.
  std::size_t relay = kNoRelay;
  std::vector<std::size_t> relays;
  std::size_t source_repair_bits = 0;
  std::size_t relay_repair_bits = 0;
  // Relay airtime scheduling (arq::SessionRunStats):
  // max_round_relay_bits is the MAX across the link's packets (the
  // quantity a budget caps), relay_deferrals the sum.
  std::size_t max_round_relay_bits = 0;
  std::size_t relay_deferrals = 0;
  // Shared-medium joint-loss accounting over the link's initial
  // (broadcast) transmissions, relay links only (arq::ChipMedium;
  // zero on two-party links). "Collision" = an impairment burst
  // overlapped that copy; "loss" = >=1 codeword decoded wrong.
  std::size_t direct_collision_frames = 0;  // destination copy hit
  std::size_t joint_collision_frames = 0;   // destination AND >=1 relay hit
  std::size_t direct_loss_frames = 0;       // destination copy corrupted
  std::size_t joint_loss_frames = 0;        // ...and >=1 relay's copy too
  // P(some relay's copy lost | the destination's copy lost): the
  // overhear-loss-given-direct-loss correlation. 0 without relays or
  // direct losses.
  double OverhearLossGivenDirectLoss() const;
  // kCollisionResolve: collision-episode accounting on this link
  // (src/collide/). `collided_recovered_frames` counts initially
  // collided packets the exchange nonetheless delivered — on relay
  // links it is the shared medium's collided-but-clean count instead.
  std::size_t collision_episodes = 0;
  std::size_t collision_codewords_stripped = 0;
  std::size_t collision_equations_banked = 0;
  std::size_t collision_pairs_resolved = 0;
  std::size_t collision_abandoned = 0;
  std::size_t collision_rank_gained = 0;
  std::size_t collided_recovered_frames = 0;
};

struct RecoveryExperimentResult {
  std::vector<LinkRecoveryStats> links;
  std::size_t packets = 0;
  std::size_t completed = 0;
  std::size_t total_repair_bits = 0;
  std::size_t total_feedback_bits = 0;
  std::size_t total_source_repair_bits = 0;
  std::size_t total_relay_repair_bits = 0;
  std::size_t total_direct_collision_frames = 0;
  std::size_t total_joint_collision_frames = 0;
  std::size_t total_direct_loss_frames = 0;
  std::size_t total_joint_loss_frames = 0;
  std::size_t total_collision_episodes = 0;
  std::size_t total_collision_codewords_stripped = 0;
  std::size_t total_collision_equations_banked = 0;
  std::size_t total_collision_pairs_resolved = 0;
  std::size_t total_collision_abandoned = 0;
  std::size_t total_collision_rank_gained = 0;
  std::size_t total_collided_recovered_frames = 0;
  // Per-link obs::MetricRegistry snapshots (sessions, coded repair,
  // medium, GF(256) backend bytes), merged in link order. Per-link
  // work is deterministic and wall-clock timings are excluded, so this
  // is byte-identical at every num_threads. Empty under PPR_OBS_OFF.
  obs::Snapshot metrics;
};

RecoveryExperimentResult RunLinkRecoveryExperiment(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery);

// Same run against a prebuilt topology/medium, recruiting relays
// through the shared cache — how a sweep's legs avoid recomputing each
// link's overhearer roster.
RecoveryExperimentResult RunLinkRecoveryExperiment(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery,
    const TestbedTopology& topology, const RadioMedium& medium,
    OverhearingRelayCache& relay_cache);

// Evaluates all three recovery strategies over the identical testbed
// (same links, same per-link seeds), the whole-testbed counterpart of
// core::CompareRecoveryStrategies. `recovery.relay_count_sweep` adds
// further kRelayCodedRepair legs at other roster sizes; every leg
// shares one OverhearingRelayCache, whose hit/miss counts are
// reported.
struct RecoveryStrategyComparison {
  RecoveryExperimentResult chunk;
  RecoveryExperimentResult coded;
  RecoveryExperimentResult relay;  // at recovery.max_relays
  // One (max_relays, result) per relay_count_sweep entry.
  std::vector<std::pair<std::size_t, RecoveryExperimentResult>> relay_sweep;
  std::size_t relay_cache_hits = 0;
  std::size_t relay_cache_misses = 0;
};

RecoveryStrategyComparison CompareLinkRecoveryStrategies(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery);

}  // namespace ppr::sim
