#include "sim/experiment.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "arq/link_sim.h"
#include "phy/channel.h"

namespace ppr::sim {

double LinkResult::Fdr(std::size_t scheme_index) const {
  if (frames_sent == 0) return 0.0;
  return schemes[scheme_index].equivalent_frames_delivered /
         static_cast<double>(frames_sent);
}

double LinkResult::ThroughputBps(std::size_t scheme_index,
                                 const SchemeConfig& scheme,
                                 std::size_t payload_octets,
                                 double duration_s) const {
  if (duration_s <= 0.0) return 0.0;
  const double overhead_factor =
      static_cast<double>(payload_octets) /
      static_cast<double>(SchemeAirtimeOctets(scheme, payload_octets));
  return static_cast<double>(schemes[scheme_index].delivered_bits) *
         overhead_factor / duration_s;
}

TestbedExperiment::TestbedExperiment(const ExperimentConfig& config)
    : config_(config),
      topology_(config.testbed),
      medium_(topology_.Positions(), config.medium) {}

ExperimentResult TestbedExperiment::Run(
    const std::vector<SchemeConfig>& schemes,
    const ReceptionObserver& observer) const {
  // Build the traffic schedule once; every receiver hears the same air.
  std::vector<std::size_t> senders;
  senders.reserve(topology_.NumSenders());
  for (std::size_t i = 0; i < topology_.NumSenders(); ++i) {
    senders.push_back(topology_.SenderId(i));
  }

  ReceiverModel model(medium_, config_.receiver);
  TrafficConfig traffic = config_.traffic;
  traffic.frame_total_chips = model.Layout().TotalChips();
  traffic.payload_bits = config_.receiver.payload_octets * 8;
  const auto schedule = GenerateSchedule(traffic, medium_, senders);

  // Frames sent per sender (denominator of every link FDR).
  std::map<std::size_t, std::size_t> frames_sent;
  for (const auto& t : schedule) ++frames_sent[t.sender];

  const std::size_t payload_bits = config_.receiver.payload_octets * 8;

  ExperimentResult result;
  result.total_transmissions = schedule.size();
  result.duration_s = traffic.duration_s;
  result.payload_octets = config_.receiver.payload_octets;

  // Audible links, in deterministic order.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> link_index;
  for (std::size_t r = 0; r < topology_.NumReceivers(); ++r) {
    const std::size_t receiver = topology_.ReceiverId(r);
    for (std::size_t s = 0; s < topology_.NumSenders(); ++s) {
      const std::size_t sender = topology_.SenderId(s);
      const double snr = medium_.LinkSnrDb(sender, receiver);
      if (snr < config_.min_link_snr_db) continue;
      LinkResult link;
      link.sender = sender;
      link.receiver = receiver;
      link.snr_db = snr;
      link.frames_sent = frames_sent.count(sender) ? frames_sent[sender] : 0;
      link.schemes.resize(schemes.size());
      link_index[{sender, receiver}] = result.links.size();
      result.links.push_back(link);
    }
  }

  for (std::size_t r = 0; r < topology_.NumReceivers(); ++r) {
    const std::size_t receiver = topology_.ReceiverId(r);
    model.ProcessReceiver(
        receiver, schedule, [&](const ReceptionRecord& record) {
          if (observer) observer(record, model);
          const auto it = link_index.find({record.sender, receiver});
          if (it == link_index.end()) return;
          LinkResult& link = result.links[it->second];
          for (std::size_t k = 0; k < schemes.size(); ++k) {
            const auto outcome = EvaluateDelivery(record, model, schemes[k]);
            auto& stats = link.schemes[k];
            if (outcome.acquired) ++stats.acquired_frames;
            stats.delivered_bits += outcome.delivered_bits;
            stats.wrong_bits += outcome.wrong_bits;
            stats.equivalent_frames_delivered +=
                static_cast<double>(outcome.delivered_bits) /
                static_cast<double>(payload_bits);
          }
        });
  }
  return result;
}

RecoveryExperimentResult RunLinkRecoveryExperiment(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery) {
  const TestbedTopology topology(config.testbed);
  const RadioMedium medium(topology.Positions(), config.medium);
  const phy::ChipCodebook codebook;
  const auto strategy = arq::MakeRecoveryStrategy(recovery.arq);

  RecoveryExperimentResult result;
  Rng root(recovery.seed);
  for (std::size_t r = 0; r < topology.NumReceivers(); ++r) {
    for (std::size_t i = 0; i < topology.NumSenders(); ++i) {
      const std::size_t sender = topology.SenderId(i);
      const std::size_t receiver = topology.ReceiverId(r);
      const double snr_db = medium.LinkSnrDb(sender, receiver);
      // Every link draws from `root` in a fixed order so the draw
      // sequence is identical across recovery modes.
      Rng link_rng = root.Fork();
      if (snr_db < config.min_link_snr_db) continue;

      // Clean-state chip errors at the link SNR (plus the receiver
      // model's error floor); impairment bursts per the model.
      arq::GilbertElliottParams ge;
      ge.chip_error_good =
          std::min(0.5, phy::ChipErrorProbability(
                            std::pow(10.0, snr_db / 10.0)) +
                            config.receiver.good_chip_floor);
      ge.chip_error_bad = config.receiver.impaired_chip_error;
      ge.p_good_to_bad = config.receiver.impairment_rate;
      ge.p_bad_to_good = config.receiver.impairment_exit;

      LinkRecoveryStats link;
      link.sender = sender;
      link.receiver = receiver;
      link.snr_db = snr_db;
      Rng channel_rng = link_rng.Fork();
      Rng payload_rng = link_rng.Fork();
      const auto channel =
          arq::MakeGilbertElliottChannel(codebook, ge, channel_rng);
      for (std::size_t p = 0; p < recovery.packets_per_link; ++p) {
        BitVec payload;
        for (std::size_t b = 0; b < recovery.payload_octets; ++b) {
          payload.AppendUint(payload_rng.UniformInt(256), 8);
        }
        const auto stats = arq::RunRecoveryExchange(
            payload, recovery.arq, *strategy, channel, recovery.max_rounds);
        ++link.packets;
        if (stats.success) ++link.completed;
        link.feedback_bits += stats.feedback_bits;
        link.feedback_rounds += stats.data_transmissions - 1;
        for (const auto bits : stats.retransmission_bits) {
          link.repair_bits += bits;
        }
      }
      result.packets += link.packets;
      result.completed += link.completed;
      result.total_repair_bits += link.repair_bits;
      result.total_feedback_bits += link.feedback_bits;
      result.links.push_back(link);
    }
  }
  return result;
}

ExperimentConfig MakePaperConfig(double offered_load_bps, bool carrier_sense,
                                 double duration_s, std::uint64_t seed) {
  ExperimentConfig config;
  config.testbed.seed = 7;  // fixed topology across loads, like the paper
  config.medium = IndoorMediumConfig(config.testbed, /*seed=*/11);
  config.traffic.offered_load_bps = offered_load_bps;
  config.traffic.carrier_sense = carrier_sense;
  config.traffic.duration_s = duration_s;
  config.traffic.seed = seed;
  config.receiver.payload_octets = 1500;
  config.receiver.seed = seed ^ 0xABCDEF;
  config.min_link_snr_db = 3.0;
  return config;
}

}  // namespace ppr::sim
