#include "sim/experiment.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <thread>

#include "arq/chip_medium.h"
#include "arq/link_sim.h"
#include "arq/recovery_session.h"
#include "collide/runner.h"
#include "fec/gf256.h"
#include "obs/obs.h"
#include "phy/channel.h"

namespace ppr::sim {

double LinkRecoveryStats::OverhearLossGivenDirectLoss() const {
  if (direct_loss_frames == 0) return 0.0;
  return static_cast<double>(joint_loss_frames) /
         static_cast<double>(direct_loss_frames);
}

double LinkResult::Fdr(std::size_t scheme_index) const {
  if (frames_sent == 0) return 0.0;
  return schemes[scheme_index].equivalent_frames_delivered /
         static_cast<double>(frames_sent);
}

double LinkResult::ThroughputBps(std::size_t scheme_index,
                                 const SchemeConfig& scheme,
                                 std::size_t payload_octets,
                                 double duration_s) const {
  if (duration_s <= 0.0) return 0.0;
  const double overhead_factor =
      static_cast<double>(payload_octets) /
      static_cast<double>(SchemeAirtimeOctets(scheme, payload_octets));
  return static_cast<double>(schemes[scheme_index].delivered_bits) *
         overhead_factor / duration_s;
}

TestbedExperiment::TestbedExperiment(const ExperimentConfig& config)
    : config_(config),
      topology_(config.testbed),
      medium_(topology_.Positions(), config.medium) {}

ExperimentResult TestbedExperiment::Run(
    const std::vector<SchemeConfig>& schemes,
    const ReceptionObserver& observer) const {
  // Build the traffic schedule once; every receiver hears the same air.
  std::vector<std::size_t> senders;
  senders.reserve(topology_.NumSenders());
  for (std::size_t i = 0; i < topology_.NumSenders(); ++i) {
    senders.push_back(topology_.SenderId(i));
  }

  ReceiverModel model(medium_, config_.receiver);
  TrafficConfig traffic = config_.traffic;
  traffic.frame_total_chips = model.Layout().TotalChips();
  traffic.payload_bits = config_.receiver.payload_octets * 8;
  const auto schedule = GenerateSchedule(traffic, medium_, senders);

  // Frames sent per sender (denominator of every link FDR).
  std::map<std::size_t, std::size_t> frames_sent;
  for (const auto& t : schedule) ++frames_sent[t.sender];

  const std::size_t payload_bits = config_.receiver.payload_octets * 8;

  ExperimentResult result;
  result.total_transmissions = schedule.size();
  result.duration_s = traffic.duration_s;
  result.payload_octets = config_.receiver.payload_octets;

  // Audible links, in deterministic order.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> link_index;
  for (std::size_t r = 0; r < topology_.NumReceivers(); ++r) {
    const std::size_t receiver = topology_.ReceiverId(r);
    for (std::size_t s = 0; s < topology_.NumSenders(); ++s) {
      const std::size_t sender = topology_.SenderId(s);
      const double snr = medium_.LinkSnrDb(sender, receiver);
      if (snr < config_.min_link_snr_db) continue;
      LinkResult link;
      link.sender = sender;
      link.receiver = receiver;
      link.snr_db = snr;
      link.frames_sent = frames_sent.count(sender) ? frames_sent[sender] : 0;
      link.schemes.resize(schemes.size());
      link_index[{sender, receiver}] = result.links.size();
      result.links.push_back(link);
    }
  }

  for (std::size_t r = 0; r < topology_.NumReceivers(); ++r) {
    const std::size_t receiver = topology_.ReceiverId(r);
    model.ProcessReceiver(
        receiver, schedule, [&](const ReceptionRecord& record) {
          if (observer) observer(record, model);
          const auto it = link_index.find({record.sender, receiver});
          if (it == link_index.end()) return;
          LinkResult& link = result.links[it->second];
          for (std::size_t k = 0; k < schemes.size(); ++k) {
            const auto outcome = EvaluateDelivery(record, model, schemes[k]);
            auto& stats = link.schemes[k];
            if (outcome.acquired) ++stats.acquired_frames;
            stats.delivered_bits += outcome.delivered_bits;
            stats.wrong_bits += outcome.wrong_bits;
            stats.equivalent_frames_delivered +=
                static_cast<double>(outcome.delivered_bits) /
                static_cast<double>(payload_bits);
          }
        });
  }
  return result;
}

namespace {

// Gilbert-Elliott parameters for a hop at the given SNR: clean-state
// chip errors at the link SNR (plus the receiver model's error floor);
// impairment bursts per the model.
arq::GilbertElliottParams LinkGeParams(const ExperimentConfig& config,
                                       double snr_db) {
  arq::GilbertElliottParams ge;
  ge.chip_error_good =
      std::min(0.5, phy::ChipErrorProbability(std::pow(10.0, snr_db / 10.0)) +
                        config.receiver.good_chip_floor);
  ge.chip_error_bad = config.receiver.impaired_chip_error;
  ge.p_good_to_bad = config.receiver.impairment_rate;
  ge.p_bad_to_good = config.receiver.impairment_exit;
  return ge;
}

// One audible link's work item: everything a worker needs, including
// its pre-forked RNG, fixed before any thread runs.
struct LinkJob {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  double snr_db = 0.0;
  std::vector<std::size_t> relays;  // best-first roster, may be empty
  std::vector<double> overhear_snr_db;  // parallel to relays
  std::vector<double> relay_snr_db;
  Rng link_rng{0};
};

// `fallback` replaces `strategy` on relay-mode links with no recruited
// overhearer: a two-party exchange under the relay-aware destination
// would waste its round-one burst split on parties that do not exist,
// so such links run plain coded repair instead. Relay-mode links
// instead build their own strategy sized to the recruited roster.
LinkRecoveryStats RunOneLink(const ExperimentConfig& config,
                             const RecoveryExperimentConfig& recovery,
                             const arq::RecoveryStrategy& fallback,
                             const phy::ChipCodebook& codebook, LinkJob job,
                             obs::Snapshot* metrics) {
  // Everything this link runs — sessions, chip medium, coded repair —
  // records into a registry private to the link; wall-clock timings are
  // excluded so the snapshot depends only on the link's (deterministic)
  // work, not on scheduling. GF(256) kernel work is attributed via
  // before/after thread-local deltas: only this link runs on this
  // thread in between.
  obs::MetricRegistry registry;
  obs::ScopedObsContext obs_scope(&registry, /*tracer=*/nullptr,
                                  /*record_timings=*/false);
  std::array<fec::GfOpStats, fec::kGfImplCount> gf_before;
  const auto gf_impls = fec::GfAvailableImpls();
  for (const fec::GfImpl impl : gf_impls) {
    gf_before[static_cast<std::size_t>(impl)] = fec::GfThreadStatsFor(impl);
  }
  LinkRecoveryStats link;
  link.sender = job.sender;
  link.receiver = job.receiver;
  link.snr_db = job.snr_db;
  link.relays = job.relays;
  link.relay = job.relays.empty() ? kNoRelay : job.relays.front();
  Rng channel_rng = job.link_rng.Fork();
  Rng payload_rng = job.link_rng.Fork();
  const bool use_relay = !job.relays.empty();

  arq::BodyChannel channel;
  arq::MultiRelayExchangeChannels channels;
  std::shared_ptr<arq::ChipMedium> medium;
  std::unique_ptr<arq::RecoveryStrategy> relay_strategy;
  arq::PpArqConfig relay_config = recovery.arq;
  // The relay-hop channels hold pointers to their Rngs, so those
  // streams need addresses stable for the whole link (deque never
  // relocates).
  std::deque<Rng> relay_rngs;
  if (use_relay) {
    // The source's broadcast domain is one shared chip-level medium:
    // destination first (listener 0, the joint-loss reference), then
    // each recruited overhearer. The medium seed is a pure function of
    // (experiment seed, link), so neither roster size nor thread
    // schedule can reorder the shared-interferer draws; in independent
    // mode every listener replays the legacy per-hop channel from its
    // own forked stream (overhear then relay hop, per roster slot, the
    // pre-medium fork order).
    medium = arq::ChipMedium::Create(
        codebook, recovery.correlation,
        arq::SeedForTransmission(recovery.seed, job.sender, job.receiver),
        LinkGeParams(config, job.snr_db));
    medium->AddListener(LinkGeParams(config, job.snr_db), channel_rng);
    for (std::size_t i = 0; i < job.relays.size(); ++i) {
      medium->AddListener(LinkGeParams(config, job.overhear_snr_db[i]),
                          job.link_rng.Fork());
      relay_rngs.push_back(job.link_rng.Fork());
      channels.relay_to_destination.push_back(arq::MakeGilbertElliottChannel(
          codebook, LinkGeParams(config, job.relay_snr_db[i]),
          relay_rngs.back()));
    }
    channels.initial_broadcast = medium->MakeBroadcastChannel();
    channels.source_to_destination = medium->MakeUnicastChannel(0);
    // The session is sized to the roster this link actually recruited.
    relay_config.relay_parties = job.relays.size();
    relay_strategy = arq::MakeRecoveryStrategy(relay_config);
  } else {
    channel = arq::MakeGilbertElliottChannel(
        codebook, LinkGeParams(config, job.snr_db), channel_rng);
  }

  // Collision episodes ride only on two-party kCollisionResolve links;
  // their draws come from SeedForCollisionRound — disjoint from every
  // channel/payload stream, so contention 0 consumes nothing and the
  // run is bit-identical to plain coded repair.
  const bool collision_mode =
      !use_relay &&
      recovery.arq.recovery == arq::RecoveryMode::kCollisionResolve &&
      recovery.collision_contention > 0.0;
  const std::uint64_t link_medium_seed =
      arq::SeedForTransmission(recovery.seed, job.sender, job.receiver);
  collide::CollisionListenerConfig listener_config;
  listener_config.strip = recovery.collision_strip;
  listener_config.codewords_per_fec_symbol =
      recovery.arq.codewords_per_fec_symbol;
  collide::CollisionEpisodeParams episode_params;
  episode_params.b_octets = recovery.collision_interferer_octets
                                ? recovery.collision_interferer_octets
                                : recovery.payload_octets;
  episode_params.chip_error_p = recovery.collision_chip_error_p;
  episode_params.max_offset = recovery.collision_max_offset;

  for (std::size_t p = 0; p < recovery.packets_per_link; ++p) {
    BitVec payload;
    for (std::size_t b = 0; b < recovery.payload_octets; ++b) {
      payload.AppendUint(payload_rng.UniformInt(256), 8);
    }
    if (collision_mode) {
      // Under kSharedInterferer one interferer draw serves the whole
      // broadcast (the episode is a property of the transmission);
      // under kIndependent each receiver experiences its own collision
      // draw, so the receiver identity salts the stream.
      const std::uint64_t episode_seed =
          recovery.correlation == arq::CollisionCorrelation::kSharedInterferer
              ? arq::SeedForCollisionRound(link_medium_seed, p, 0)
              : arq::SeedForCollisionRound(link_medium_seed, p,
                                           1 + job.receiver);
      Rng episode_rng(episode_seed);
      if (episode_rng.Bernoulli(recovery.collision_contention)) {
        const auto outcome = collide::RunCollisionRecoveryExchange(
            payload, recovery.arq, fallback, channel, episode_params,
            episode_rng, listener_config, recovery.collision_resolve,
            recovery.max_rounds);
        ++link.packets;
        if (outcome.totals.success) {
          ++link.completed;
          ++link.collided_recovered_frames;
        }
        link.feedback_bits += outcome.totals.feedback_bits;
        link.feedback_rounds += outcome.rounds;
        for (const auto bits : outcome.totals.retransmission_bits) {
          link.repair_bits += bits;
          link.source_repair_bits += bits;
        }
        ++link.collision_episodes;
        link.collision_codewords_stripped += outcome.collide.codewords_stripped;
        link.collision_equations_banked += outcome.equations_banked;
        link.collision_pairs_resolved += outcome.collide.pairs_resolved;
        link.collision_abandoned += outcome.collide.episodes_abandoned;
        link.collision_rank_gained += outcome.rank_gained;
        continue;
      }
    }
    arq::SessionRunStats stats;
    if (use_relay) {
      stats = arq::RunMultiRelayRecoveryExchange(payload, relay_config,
                                                 *relay_strategy, channels,
                                                 recovery.max_rounds);
      for (std::size_t i = 0; i < job.relays.size(); ++i) {
        link.relay_repair_bits +=
            stats.parties[arq::kSessionRelayId + i].repair_bits;
      }
      link.max_round_relay_bits =
          std::max(link.max_round_relay_bits, stats.max_round_relay_bits);
      link.relay_deferrals += stats.relay_deferrals;
    } else {
      stats = arq::RunRecoveryExchangeSession(payload, recovery.arq, fallback,
                                              channel, recovery.max_rounds);
    }
    link.source_repair_bits += stats.parties[arq::kSessionSourceId].repair_bits;
    ++link.packets;
    if (stats.totals.success) ++link.completed;
    link.feedback_bits += stats.totals.feedback_bits;
    link.feedback_rounds += stats.rounds;
    for (const auto bits : stats.totals.retransmission_bits) {
      link.repair_bits += bits;
    }
  }
  if (medium) {
    const auto& ms = medium->medium_stats();
    link.direct_collision_frames = ms.reference_collision_frames;
    link.joint_collision_frames = ms.joint_collision_frames;
    link.direct_loss_frames = ms.reference_corrupted_frames;
    link.joint_loss_frames = ms.joint_corrupted_frames;
    link.collided_recovered_frames = ms.reference_collided_recovered_frames;
  }
  for (const fec::GfImpl impl : gf_impls) {
    const fec::GfOpStats delta =
        fec::GfThreadStatsFor(impl) - gf_before[static_cast<std::size_t>(impl)];
    if (delta.calls == 0) continue;
    const obs::LabelSet labels = {
        {"impl", std::string(fec::GfImplName(impl))}};
    registry.GetCounter("fec.gf256.calls", labels)->Add(delta.calls);
    registry.GetCounter("fec.gf256.bytes", labels)->Add(delta.bytes);
  }
  if (metrics) *metrics = registry.TakeSnapshot();
  return link;
}

}  // namespace

RecoveryExperimentResult RunLinkRecoveryExperiment(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery,
    const TestbedTopology& topology, const RadioMedium& medium,
    OverhearingRelayCache& relay_cache) {
  const phy::ChipCodebook codebook;
  const bool relay_mode =
      recovery.arq.recovery == arq::RecoveryMode::kRelayCodedRepair;
  // Relay-less links under relay mode degrade to plain coded repair;
  // non-relay modes run `fallback` on every link.
  arq::PpArqConfig fallback_config = recovery.arq;
  if (relay_mode) fallback_config.recovery = arq::RecoveryMode::kCodedRepair;
  const auto fallback = arq::MakeRecoveryStrategy(fallback_config);

  // Serial pass: enumerate audible links and fix their seeds. Every
  // (sender, receiver) pair forks `root` in the same order whether or
  // not it is audible, so the draw sequence is identical across
  // recovery modes and thread counts. Relay rosters come from the
  // shared cache, computed at most once per (link, min_snr) however
  // many legs a sweep runs.
  std::vector<LinkJob> jobs;
  Rng root(recovery.seed);
  for (std::size_t r = 0; r < topology.NumReceivers(); ++r) {
    for (std::size_t i = 0; i < topology.NumSenders(); ++i) {
      const std::size_t sender = topology.SenderId(i);
      const std::size_t receiver = topology.ReceiverId(r);
      const double snr_db = medium.LinkSnrDb(sender, receiver);
      Rng link_rng = root.Fork();
      if (snr_db < config.min_link_snr_db) continue;
      LinkJob job;
      job.sender = sender;
      job.receiver = receiver;
      job.snr_db = snr_db;
      job.link_rng = link_rng;
      if (relay_mode && recovery.max_relays > 0) {
        const auto& overhearers =
            relay_cache.Get(sender, receiver, recovery.relay_min_snr_db);
        const std::size_t take =
            std::min(recovery.max_relays, overhearers.size());
        for (std::size_t k = 0; k < take; ++k) {
          const std::size_t relay = overhearers[k];
          job.relays.push_back(relay);
          job.overhear_snr_db.push_back(medium.LinkSnrDb(sender, relay));
          job.relay_snr_db.push_back(medium.LinkSnrDb(relay, receiver));
        }
      }
      jobs.push_back(job);
    }
  }

  // Parallel pass: links are independent; workers pull job indices and
  // write disjoint result slots.
  std::vector<LinkRecoveryStats> links(jobs.size());
  std::vector<obs::Snapshot> link_metrics(jobs.size());
  const std::size_t hw = std::thread::hardware_concurrency();
  const std::size_t num_threads = std::max<std::size_t>(
      1, std::min(jobs.size(),
                  recovery.num_threads ? recovery.num_threads
                                       : (hw ? hw : 1)));
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t j = next.fetch_add(1); j < jobs.size();
         j = next.fetch_add(1)) {
      links[j] = RunOneLink(config, recovery, *fallback, codebook, jobs[j],
                            &link_metrics[j]);
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  RecoveryExperimentResult result;
  result.links = std::move(links);
  // Merge per-link snapshots in link (job) order — independent of which
  // worker ran which link, so the merged snapshot is thread-invariant.
  for (const auto& snap : link_metrics) result.metrics.Merge(snap);
  for (const auto& link : result.links) {
    result.packets += link.packets;
    result.completed += link.completed;
    result.total_repair_bits += link.repair_bits;
    result.total_feedback_bits += link.feedback_bits;
    result.total_source_repair_bits += link.source_repair_bits;
    result.total_relay_repair_bits += link.relay_repair_bits;
    result.total_direct_collision_frames += link.direct_collision_frames;
    result.total_joint_collision_frames += link.joint_collision_frames;
    result.total_direct_loss_frames += link.direct_loss_frames;
    result.total_joint_loss_frames += link.joint_loss_frames;
    result.total_collision_episodes += link.collision_episodes;
    result.total_collision_codewords_stripped +=
        link.collision_codewords_stripped;
    result.total_collision_equations_banked += link.collision_equations_banked;
    result.total_collision_pairs_resolved += link.collision_pairs_resolved;
    result.total_collision_abandoned += link.collision_abandoned;
    result.total_collision_rank_gained += link.collision_rank_gained;
    result.total_collided_recovered_frames += link.collided_recovered_frames;
  }
  return result;
}

RecoveryExperimentResult RunLinkRecoveryExperiment(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery) {
  const TestbedTopology topology(config.testbed);
  const RadioMedium medium(topology.Positions(), config.medium);
  OverhearingRelayCache relay_cache(medium);
  return RunLinkRecoveryExperiment(config, recovery, topology, medium,
                                   relay_cache);
}

RecoveryStrategyComparison CompareLinkRecoveryStrategies(
    const ExperimentConfig& config, const RecoveryExperimentConfig& recovery) {
  const TestbedTopology topology(config.testbed);
  const RadioMedium medium(topology.Positions(), config.medium);
  OverhearingRelayCache relay_cache(medium);
  const auto run = [&](const RecoveryExperimentConfig& variant) {
    return RunLinkRecoveryExperiment(config, variant, topology, medium,
                                     relay_cache);
  };
  RecoveryStrategyComparison out;
  RecoveryExperimentConfig variant = recovery;
  variant.arq.recovery = arq::RecoveryMode::kChunkRetransmit;
  out.chunk = run(variant);
  variant.arq.recovery = arq::RecoveryMode::kCodedRepair;
  out.coded = run(variant);
  variant.arq.recovery = arq::RecoveryMode::kRelayCodedRepair;
  out.relay = run(variant);
  for (const std::size_t max_relays : recovery.relay_count_sweep) {
    variant.max_relays = max_relays;
    out.relay_sweep.emplace_back(max_relays, run(variant));
  }
  out.relay_cache_hits = relay_cache.hits();
  out.relay_cache_misses = relay_cache.misses();
  return out;
}

ExperimentConfig MakePaperConfig(double offered_load_bps, bool carrier_sense,
                                 double duration_s, std::uint64_t seed) {
  ExperimentConfig config;
  config.testbed.seed = 7;  // fixed topology across loads, like the paper
  config.medium = IndoorMediumConfig(config.testbed, /*seed=*/11);
  config.traffic.offered_load_bps = offered_load_bps;
  config.traffic.carrier_sense = carrier_sense;
  config.traffic.duration_s = duration_s;
  config.traffic.seed = seed;
  config.receiver.payload_octets = 1500;
  config.receiver.seed = seed ^ 0xABCDEF;
  config.min_link_snr_db = 3.0;
  return config;
}

}  // namespace ppr::sim
