// The 27-node indoor testbed layout (Figure 7): 23 sender nodes and four
// receivers spread over nine rooms of an office floor. The paper's exact
// coordinates are not published, so the layout is synthesized
// deterministically: a 3x3 grid of rooms (the floor is roughly 100 x 50
// feet, i.e. ~30 x 15 m), senders scattered within rooms, receivers
// placed so each hears a handful of senders — matching the paper's
// observation that "each sink had between 4 and 8 sender nodes that it
// could hear".
#pragma once

#include <cstddef>
#include <map>
#include <tuple>
#include <vector>

#include "sim/medium.h"

namespace ppr::sim {

struct TestbedConfig {
  std::size_t num_senders = 23;
  std::size_t num_receivers = 4;
  double floor_width_m = 30.0;   // ~100 ft
  double floor_height_m = 15.0;  // ~50 ft
  std::uint64_t seed = 7;        // placement draws
};

class TestbedTopology {
 public:
  explicit TestbedTopology(const TestbedConfig& config = {});

  std::size_t NumSenders() const { return config_.num_senders; }
  std::size_t NumReceivers() const { return config_.num_receivers; }
  std::size_t NumNodes() const {
    return config_.num_senders + config_.num_receivers;
  }

  // Node ids: senders are [0, NumSenders), receivers follow.
  std::size_t SenderId(std::size_t i) const;
  std::size_t ReceiverId(std::size_t i) const;
  bool IsReceiver(std::size_t node) const;

  const std::vector<Point>& Positions() const { return positions_; }

  const TestbedConfig& config() const { return config_; }

 private:
  TestbedConfig config_;
  std::vector<Point> positions_;
};

// Medium configuration matching the testbed's nine-room floor: interior
// wall lines at the thirds of each axis, calibrated so each receiver
// hears a handful (not all) of the senders.
MediumConfig IndoorMediumConfig(const TestbedConfig& testbed,
                                std::uint64_t seed);

// Topology hook for relay-assisted recovery: the nodes (other than the
// link's own endpoints) that overhear `sender` AND can reach `receiver`,
// both hops at `min_snr_db` or better, ordered best-first by the
// bottleneck hop min(SNR(sender->node), SNR(node->receiver)); exact
// bottleneck ties order by node id, so recruitment is seed-stable
// however the surrounding sweep is sharded. The front entry is the
// link's natural Crelay relay; the top k are an N-relay roster.
std::vector<std::size_t> OverhearingRelays(const RadioMedium& medium,
                                           std::size_t sender,
                                           std::size_t receiver,
                                           double min_snr_db);

// Memoizes OverhearingRelays per (sender, receiver, min_snr_db) against
// one fixed medium, so a strategy sweep that replays the same topology
// (CompareLinkRecoveryStrategies, relay-count sweeps) computes each
// link's roster once. Not thread-safe: intended for the serial
// job-enumeration pass of the experiment runners.
class OverhearingRelayCache {
 public:
  explicit OverhearingRelayCache(const RadioMedium& medium)
      : medium_(&medium) {}

  const std::vector<std::size_t>& Get(std::size_t sender,
                                      std::size_t receiver,
                                      double min_snr_db);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  const RadioMedium* medium_;
  std::map<std::tuple<std::size_t, std::size_t, double>,
           std::vector<std::size_t>>
      cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ppr::sim
