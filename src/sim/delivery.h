// Delivery schemes evaluated over reception traces (section 7.2):
//
//   1. Packet CRC — whole-packet CRC-32; deliver all payload bits or
//      none (the status quo).
//   2. Fragmented CRC — per-fragment CRC-32; deliver the fragments that
//      verify (section 3.4).
//   3. PPR — deliver exactly the bits whose codewords have Hamming
//      distance <= eta (section 3.2; eta = 6 in the paper).
//
// Each scheme is evaluated with and without postamble decoding. The
// evaluation is trace post-processing, as in the paper: every scheme
// sees the same decoded symbols and hints.
#pragma once

#include <cstddef>
#include <string>

#include "sim/receiver_model.h"

namespace ppr::sim {

enum class Scheme { kPacketCrc, kFragmentedCrc, kPpr };

struct SchemeConfig {
  Scheme scheme = Scheme::kPpr;
  bool postamble = false;        // postamble decoding enabled
  std::size_t num_fragments = 30;  // FragCRC: chunks per packet (Table 2)
  double eta = 6.0;                // PPR threshold

  std::string Name() const;
};

struct DeliveryOutcome {
  bool acquired = false;           // scheme could frame the packet
  std::size_t delivered_bits = 0;  // correct payload bits delivered
  std::size_t wrong_bits = 0;      // incorrect bits delivered (PPR misses)
};

// Applies one scheme to one reception trace. `payload_cw_offset` /
// `payload_cw_count` locate the payload codewords in the trace;
// `crc_cw_count` the packet CRC codewords that follow it.
DeliveryOutcome EvaluateDelivery(const ReceptionRecord& record,
                                 const ReceiverModel& model,
                                 const SchemeConfig& scheme);

// On-air octets per frame under a scheme (for goodput normalization):
// the status quo frame (preamble..payload CRC) plus the scheme's
// additions — trailer+postamble for postamble variants, per-fragment
// CRCs for FragCRC.
std::size_t SchemeAirtimeOctets(const SchemeConfig& scheme,
                                std::size_t payload_octets);

}  // namespace ppr::sim
