#include "sim/medium.h"

#include <cassert>
#include <cmath>

namespace ppr::sim {

double Distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

double DbmToMilliwatts(double dbm) { return std::pow(10.0, dbm / 10.0); }

double MilliwattsToDbm(double mw) { return 10.0 * std::log10(mw); }

int CountWallCrossings(const Point& a, const Point& b,
                       const std::vector<double>& wall_xs,
                       const std::vector<double>& wall_ys) {
  int crossings = 0;
  for (double w : wall_xs) {
    if ((a.x - w) * (b.x - w) < 0.0) ++crossings;
  }
  for (double w : wall_ys) {
    if ((a.y - w) * (b.y - w) < 0.0) ++crossings;
  }
  return crossings;
}

RadioMedium::RadioMedium(std::vector<Point> positions,
                         const MediumConfig& config)
    : positions_(std::move(positions)),
      config_(config),
      noise_mw_(DbmToMilliwatts(config.noise_floor_dbm)),
      rx_power_mw_(positions_.size() * positions_.size(), 0.0) {
  Rng rng(config_.seed);
  const std::size_t n = positions_.size();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      const double d = std::max(0.5, Distance(positions_[a], positions_[b]));
      const double path_loss_db =
          config_.reference_loss_db +
          10.0 * config_.path_loss_exponent * std::log10(d) +
          config_.wall_loss_db *
              CountWallCrossings(positions_[a], positions_[b],
                                 config_.wall_xs, config_.wall_ys);
      const double shadowing_db = rng.Normal(0.0, config_.shadowing_sigma_db);
      const double rx_dbm = config_.tx_power_dbm - path_loss_db - shadowing_db;
      const double mw = DbmToMilliwatts(rx_dbm);
      PowerEntry(a, b) = mw;
      PowerEntry(b, a) = mw;
    }
  }
}

double& RadioMedium::PowerEntry(std::size_t from, std::size_t to) {
  return rx_power_mw_[from * positions_.size() + to];
}

const double& RadioMedium::PowerEntry(std::size_t from, std::size_t to) const {
  return rx_power_mw_[from * positions_.size() + to];
}

double RadioMedium::RxPowerMw(std::size_t from, std::size_t to) const {
  assert(from < positions_.size() && to < positions_.size());
  assert(from != to);
  return PowerEntry(from, to);
}

double RadioMedium::RxPowerDbm(std::size_t from, std::size_t to) const {
  return MilliwattsToDbm(RxPowerMw(from, to));
}

double RadioMedium::LinkSnrDb(std::size_t from, std::size_t to) const {
  return RxPowerDbm(from, to) - config_.noise_floor_dbm;
}

}  // namespace ppr::sim
