#include "phy/msk_modem.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ppr::phy {
namespace {

std::vector<double> MakeHalfSinePulse(int samples_per_chip, double amplitude) {
  if (samples_per_chip < 2) {
    throw std::invalid_argument("ModemConfig: samples_per_chip must be >= 2");
  }
  const int len = 2 * samples_per_chip;
  std::vector<double> pulse(static_cast<std::size_t>(len));
  for (int m = 0; m < len; ++m) {
    pulse[static_cast<std::size_t>(m)] =
        amplitude * std::sin(std::numbers::pi * m / len);
  }
  return pulse;
}

}  // namespace

MskModulator::MskModulator(const ModemConfig& config)
    : config_(config),
      pulse_(MakeHalfSinePulse(config.samples_per_chip, config.amplitude)) {}

std::size_t MskModulator::NumSamples(std::size_t num_chips) const {
  return (num_chips + 1) * static_cast<std::size_t>(config_.samples_per_chip);
}

SampleVec MskModulator::Modulate(const BitVec& chips) const {
  const int sps = config_.samples_per_chip;
  SampleVec out(NumSamples(chips.size()), Sample{0.0, 0.0});
  for (std::size_t k = 0; k < chips.size(); ++k) {
    const double level = chips.Get(k) ? 1.0 : -1.0;
    const std::size_t base = k * static_cast<std::size_t>(sps);
    const bool on_i = (k % 2 == 0);
    for (std::size_t m = 0; m < pulse_.size(); ++m) {
      const double v = level * pulse_[m];
      if (on_i) {
        out[base + m] += Sample{v, 0.0};
      } else {
        out[base + m] += Sample{0.0, v};
      }
    }
  }
  return out;
}

MskDemodulator::MskDemodulator(const ModemConfig& config)
    : config_(config),
      pulse_(MakeHalfSinePulse(config.samples_per_chip, 1.0)) {
  for (double p : pulse_) pulse_energy_ += p * p;
}

double MskDemodulator::DemodulateChipAt(const SampleVec& samples,
                                        std::int64_t base_sample,
                                        bool on_i) const {
  double acc = 0.0;
  for (std::size_t m = 0; m < pulse_.size(); ++m) {
    const std::int64_t idx = base_sample + static_cast<std::int64_t>(m);
    if (idx < 0) continue;
    if (idx >= static_cast<std::int64_t>(samples.size())) break;
    const auto& s = samples[static_cast<std::size_t>(idx)];
    acc += (on_i ? s.real() : s.imag()) * pulse_[m];
  }
  return acc;
}

Sample MskDemodulator::DemodulateChipComplexAt(const SampleVec& samples,
                                               std::int64_t base_sample) const {
  Sample acc{0.0, 0.0};
  for (std::size_t m = 0; m < pulse_.size(); ++m) {
    const std::int64_t idx = base_sample + static_cast<std::int64_t>(m);
    if (idx < 0) continue;
    if (idx >= static_cast<std::int64_t>(samples.size())) break;
    acc += samples[static_cast<std::size_t>(idx)] * pulse_[m];
  }
  return acc;
}

double MskDemodulator::DemodulateChip(const SampleVec& samples,
                                      std::size_t start_sample,
                                      std::size_t chip_index) const {
  const int sps = config_.samples_per_chip;
  const std::size_t base =
      start_sample + chip_index * static_cast<std::size_t>(sps);
  const bool on_i = (chip_index % 2 == 0);
  double acc = 0.0;
  for (std::size_t m = 0; m < pulse_.size(); ++m) {
    const std::size_t idx = base + m;
    if (idx >= samples.size()) break;  // zero-padding past the end
    const double component = on_i ? samples[idx].real() : samples[idx].imag();
    acc += component * pulse_[m];
  }
  return acc;
}

std::vector<double> MskDemodulator::Demodulate(const SampleVec& samples,
                                               std::size_t start_sample,
                                               std::size_t num_chips) const {
  std::vector<double> soft(num_chips, 0.0);
  for (std::size_t k = 0; k < num_chips; ++k) {
    soft[k] = DemodulateChip(samples, start_sample, k);
  }
  return soft;
}

BitVec HardChips(const std::vector<double>& soft_chips) {
  BitVec chips;
  for (double v : soft_chips) chips.PushBack(v >= 0.0);
  return chips;
}

}  // namespace ppr::phy
