// Symbol/chip timing recovery.
//
// Two mechanisms, mirroring section 4's discussion:
//  - A non-data-aided timing search (energy maximization over candidate
//    sample offsets) that "permits synchronization at any time during a
//    transmission" — this is what postamble decoding relies on, since the
//    receiver must symbol-synchronize stored samples without having heard
//    the preamble.
//  - A decision-directed Mueller & Muller tracker for fine tracking of a
//    slowly drifting offset, the classical reference [21] cited by the
//    paper.
#pragma once

#include <cstddef>

#include "phy/msk_modem.h"

namespace ppr::phy {

struct TimingEstimate {
  std::size_t offset_samples = 0;  // best chip-0 start offset in samples
  double metric = 0.0;             // energy metric at the best offset
};

// Searches integer sample offsets in [0, search_span) for the offset
// maximizing the mean |matched filter output| over `probe_chips` chips.
// `search_span` is typically 2 * samples_per_chip (one I/Q pulse period).
TimingEstimate FindChipTiming(const MskDemodulator& demod,
                              const SampleVec& samples,
                              std::size_t search_span,
                              std::size_t probe_chips);

// Classical Mueller & Muller timing-error detector operating on
// matched-filter soft outputs sampled at the chip rate. The caller feeds
// successive soft chips; the tracker accumulates a fractional-offset
// correction that the caller applies when choosing the next window.
class MuellerMullerTracker {
 public:
  // `gain` is the loop gain (step size per chip); small values (~0.05)
  // give stable convergence in tests.
  explicit MuellerMullerTracker(double gain);

  // Updates with the current soft output and returns the accumulated
  // timing correction in (fractional) samples.
  double Update(double soft_now);

  double Correction() const { return correction_; }

 private:
  double gain_;
  double prev_soft_ = 0.0;
  double prev_decision_ = 0.0;
  double correction_ = 0.0;
  bool primed_ = false;
};

}  // namespace ppr::phy
