#include "phy/timing_recovery.h"

#include <cmath>

namespace ppr::phy {

TimingEstimate FindChipTiming(const MskDemodulator& demod,
                              const SampleVec& samples,
                              std::size_t search_span,
                              std::size_t probe_chips) {
  TimingEstimate best;
  best.metric = -1.0;
  for (std::size_t offset = 0; offset < search_span; ++offset) {
    double metric = 0.0;
    for (std::size_t k = 0; k < probe_chips; ++k) {
      metric += std::abs(demod.DemodulateChip(samples, offset, k));
    }
    if (metric > best.metric) {
      best.metric = metric;
      best.offset_samples = offset;
    }
  }
  return best;
}

MuellerMullerTracker::MuellerMullerTracker(double gain) : gain_(gain) {}

double MuellerMullerTracker::Update(double soft_now) {
  const double decision_now = soft_now >= 0.0 ? 1.0 : -1.0;
  if (primed_) {
    // e[k] = d[k-1] * x[k] - d[k] * x[k-1]; positive error means we are
    // sampling late, so the correction moves the window earlier.
    const double error = prev_decision_ * soft_now - decision_now * prev_soft_;
    correction_ -= gain_ * error;
  }
  prev_soft_ = soft_now;
  prev_decision_ = decision_now;
  primed_ = true;
  return correction_;
}

}  // namespace ppr::phy
