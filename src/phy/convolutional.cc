#include "phy/convolutional.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace ppr::phy {
namespace {

constexpr unsigned kStates = ConvolutionalCode::kNumStates;
constexpr unsigned kTail = ConvolutionalCode::kConstraint - 1;

// Output pair for (state, input). The 7-bit register is the new input
// in the LSB with the state's six previous bits above it.
struct Branch {
  std::uint8_t out0, out1;  // code bits
  std::uint8_t next;        // next state
};

std::array<std::array<Branch, 2>, kStates> BuildTrellis() {
  std::array<std::array<Branch, 2>, kStates> trellis{};
  for (unsigned s = 0; s < kStates; ++s) {
    for (unsigned b = 0; b < 2; ++b) {
      const std::uint32_t reg = (s << 1) | b;
      Branch br;
      br.out0 = static_cast<std::uint8_t>(
          std::popcount(reg & ConvolutionalCode::kG0) & 1u);
      br.out1 = static_cast<std::uint8_t>(
          std::popcount(reg & ConvolutionalCode::kG1) & 1u);
      br.next = static_cast<std::uint8_t>(reg & (kStates - 1));
      trellis[s][b] = br;
    }
  }
  return trellis;
}

const std::array<std::array<Branch, 2>, kStates>& Trellis() {
  static const auto trellis = BuildTrellis();
  return trellis;
}

// Shared Viterbi core: `branch_metric(step, out0, out1)` returns the
// cost of emitting the given code-bit pair at trellis step `step`
// (lower is better).
template <typename MetricFn>
ViterbiResult Decode(std::size_t info_bits, std::size_t steps,
                     const MetricFn& branch_metric) {
  const auto& trellis = Trellis();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> metric(kStates, kInf), next_metric(kStates, kInf);
  metric[0] = 0.0;  // encoder starts in state 0

  // Per step and state: chosen predecessor state, input bit, and the
  // merge margin (metric gap to the losing path; SOVA-style hint).
  struct Decision {
    std::uint8_t prev = 0;
    std::uint8_t bit = 0;
    double margin = 0.0;
  };
  std::vector<std::vector<Decision>> decisions(
      steps, std::vector<Decision>(kStates));

  for (std::size_t t = 0; t < steps; ++t) {
    std::fill(next_metric.begin(), next_metric.end(), kInf);
    // For each destination state track the best and second-best
    // incoming path.
    std::vector<double> second(kStates, kInf);
    for (unsigned s = 0; s < kStates; ++s) {
      if (metric[s] == kInf) continue;
      for (unsigned b = 0; b < 2; ++b) {
        const Branch& br = trellis[s][b];
        const double m = metric[s] + branch_metric(t, br.out0, br.out1);
        if (m < next_metric[br.next]) {
          second[br.next] = next_metric[br.next];
          next_metric[br.next] = m;
          decisions[t][br.next] =
              Decision{static_cast<std::uint8_t>(s),
                       static_cast<std::uint8_t>(b), 0.0};
        } else if (m < second[br.next]) {
          second[br.next] = m;
        }
      }
    }
    for (unsigned ns = 0; ns < kStates; ++ns) {
      decisions[t][ns].margin =
          second[ns] == kInf ? 1e9 : second[ns] - next_metric[ns];
    }
    metric.swap(next_metric);
  }

  // Terminated trellis: trace back from state 0.
  ViterbiResult result;
  result.path_metric = metric[0];
  std::vector<std::uint8_t> bits(steps);
  std::vector<double> margins(steps);
  unsigned state = 0;
  for (std::size_t t = steps; t-- > 0;) {
    const Decision& d = decisions[t][state];
    bits[t] = d.bit;
    margins[t] = d.margin;
    state = d.prev;
  }
  for (std::size_t t = 0; t < info_bits; ++t) {
    result.bits.PushBack(bits[t] != 0);
    result.reliability.push_back(margins[t]);
  }
  return result;
}

}  // namespace

BitVec ConvolutionalEncode(const BitVec& bits) {
  const auto& trellis = Trellis();
  BitVec out;
  unsigned state = 0;
  const auto push = [&](unsigned b) {
    const Branch& br = trellis[state][b];
    out.PushBack(br.out0 != 0);
    out.PushBack(br.out1 != 0);
    state = br.next;
  };
  for (std::size_t i = 0; i < bits.size(); ++i) {
    push(bits.Get(i) ? 1u : 0u);
  }
  for (unsigned i = 0; i < kTail; ++i) push(0u);  // terminate at state 0
  return out;
}

ViterbiResult ViterbiDecodeHard(const BitVec& coded, std::size_t info_bits) {
  const std::size_t steps = info_bits + kTail;
  if (coded.size() != 2 * steps) {
    throw std::invalid_argument("ViterbiDecodeHard: length mismatch");
  }
  return Decode(info_bits, steps,
                [&](std::size_t t, std::uint8_t o0, std::uint8_t o1) {
                  double m = 0.0;
                  if (coded.Get(2 * t) != (o0 != 0)) m += 1.0;
                  if (coded.Get(2 * t + 1) != (o1 != 0)) m += 1.0;
                  return m;
                });
}

ViterbiResult ViterbiDecodeSoft(const std::vector<double>& coded_soft,
                                std::size_t info_bits) {
  const std::size_t steps = info_bits + kTail;
  if (coded_soft.size() != 2 * steps) {
    throw std::invalid_argument("ViterbiDecodeSoft: length mismatch");
  }
  return Decode(info_bits, steps,
                [&](std::size_t t, std::uint8_t o0, std::uint8_t o1) {
                  // Negative correlation so lower = better.
                  const double l0 = o0 ? 1.0 : -1.0;
                  const double l1 = o1 ? 1.0 : -1.0;
                  return -(l0 * coded_soft[2 * t] + l1 * coded_soft[2 * t + 1]);
                });
}

std::vector<DecodedSymbol> ViterbiToSoftPhySymbols(
    const ViterbiResult& result) {
  if (result.bits.size() % 4 != 0) {
    throw std::invalid_argument(
        "ViterbiToSoftPhySymbols: bits not a multiple of 4");
  }
  std::vector<DecodedSymbol> symbols;
  symbols.reserve(result.bits.size() / 4);
  for (std::size_t i = 0; i < result.bits.size(); i += 4) {
    DecodedSymbol d;
    d.symbol = static_cast<std::uint8_t>(result.bits.ReadUint(i, 4));
    double weakest = std::numeric_limits<double>::infinity();
    for (std::size_t b = 0; b < 4; ++b) {
      weakest = std::min(weakest, result.reliability[i + b]);
    }
    // Monotonicity contract: lower hint = more confident.
    d.hint = -weakest;
    d.hamming_distance = 0;
    symbols.push_back(d);
  }
  return symbols;
}

}  // namespace ppr::phy
