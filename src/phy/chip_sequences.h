// IEEE 802.15.4 (2.4 GHz O-QPSK PHY) direct-sequence spread spectrum
// codebook: sixteen quasi-orthogonal 32-chip sequences, each encoding one
// 4-bit symbol (b = 4, B = 32 in the paper's notation, section 2).
//
// The standard derives the sixteen sequences from one base sequence:
// symbols 1..7 are successive 4-chip right-rotations of symbol 0, and
// symbols 8..15 repeat symbols 0..7 with every odd-indexed chip inverted
// (conjugation of the O-QPSK Q channel). We generate the table from that
// rule and verify the published rows in tests.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitvec.h"

namespace ppr::phy {

inline constexpr int kBitsPerSymbol = 4;    // b
inline constexpr int kChipsPerSymbol = 32;  // B
inline constexpr int kNumSymbols = 16;      // 2^b

// The 32 chips of one codeword packed LSB = chip 0. Chip values are
// 0/1; on air a chip c maps to the antipodal level 2c - 1.
using ChipWord = std::uint32_t;

// Accessor for the 802.15.4 codebook. The table is built once and
// shared; the class is cheap to copy (it only references the table).
class ChipCodebook {
 public:
  ChipCodebook();

  // The 32-chip codeword for a 4-bit symbol value in [0, 16).
  ChipWord Codeword(int symbol) const;

  // Chip `i` (0..31) of `symbol`'s codeword.
  bool Chip(int symbol, int i) const;

  // The codeword as a BitVec of 32 chips (chip 0 first).
  BitVec CodewordBits(int symbol) const;

  // Hard-decision decode: returns the symbol whose codeword is nearest in
  // Hamming distance to `received`, and writes that distance (the SoftPHY
  // hint of section 3.2) to `*distance`. Ties resolve to the smallest
  // symbol value, deterministically.
  int DecodeHard(ChipWord received, int* distance) const;

  // Soft-decision decode (section 3.1, "correlation metric"): `soft`
  // holds one soft chip value per chip position (sign = chip decision,
  // magnitude = reliability, e.g. matched-filter outputs). Returns the
  // symbol maximizing sum_j (2*c_ij - 1) * soft_j and writes that best
  // correlation to `*correlation` and the margin over the runner-up to
  // `*margin` (both optional).
  int DecodeSoft(const std::array<double, kChipsPerSymbol>& soft,
                 double* correlation, double* margin) const;

  // Minimum pairwise Hamming distance over all distinct codeword pairs;
  // a property of the codebook used to reason about hint quality.
  int MinPairwiseDistance() const;

 private:
  std::array<ChipWord, kNumSymbols> table_;
};

// Hamming distance between two packed chip words.
int ChipHamming(ChipWord a, ChipWord b);

}  // namespace ppr::phy
