// DSSS spreading: packet bits -> 4-bit symbols -> 32-chip codewords.
//
// Follows the 802.15.4 convention of splitting each octet into two 4-bit
// symbols, low nibble first. The chip stream is what the modulator turns
// into a waveform and what the chip-level testbed simulator perturbs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "phy/chip_sequences.h"

namespace ppr::phy {

// Maps a bit stream to symbols. The bit count must be a multiple of 4;
// framing layers guarantee this by construction (whole octets).
std::vector<std::uint8_t> BitsToSymbols(const BitVec& bits);

// Inverse of BitsToSymbols.
BitVec SymbolsToBits(const std::vector<std::uint8_t>& symbols);

// Spreads symbols to a chip stream (32 chips per symbol, chip 0 first).
BitVec SpreadSymbols(const ChipCodebook& codebook,
                     const std::vector<std::uint8_t>& symbols);

// Convenience: bits -> chips in one step.
BitVec SpreadBits(const ChipCodebook& codebook, const BitVec& bits);

}  // namespace ppr::phy
