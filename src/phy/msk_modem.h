// MSK (O-QPSK with half-sine pulse shaping) modulator and demodulator,
// the modulation used by the CC2420 / 802.15.4 2.4 GHz PHY (section 6).
//
// Chip k (0-based) is transmitted on the I channel when k is even and on
// the Q channel when k is odd, shaped by a half-sine pulse of duration
// two chip periods starting at chip time k. Adjacent same-channel pulses
// abut without overlap, so a half-sine matched filter per chip window
// recovers each chip without inter-chip interference at ideal timing.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/bitvec.h"

namespace ppr::phy {

using Sample = std::complex<double>;
using SampleVec = std::vector<Sample>;

struct ModemConfig {
  int samples_per_chip = 4;  // oversampling factor
  double amplitude = 1.0;    // per-channel pulse amplitude
};

// Modulates a chip stream (0/1 chips, chip 0 first) to complex baseband.
// The output holds (num_chips + 1) * samples_per_chip samples because the
// final chip's half-sine extends one chip period past the last chip
// boundary.
class MskModulator {
 public:
  explicit MskModulator(const ModemConfig& config);

  SampleVec Modulate(const BitVec& chips) const;

  // Number of output samples for a given chip count.
  std::size_t NumSamples(std::size_t num_chips) const;

  const ModemConfig& config() const { return config_; }

 private:
  ModemConfig config_;
  std::vector<double> pulse_;  // half-sine, 2 * samples_per_chip long
};

// Matched-filter demodulator. Given samples and the sample index where
// chip 0 begins, produces one soft value per chip: the correlation of the
// chip's 2*sps window with the half-sine pulse on the chip's channel
// (real part for even chips, imaginary for odd). Sign is the hard chip
// decision; magnitude is reliability.
class MskDemodulator {
 public:
  explicit MskDemodulator(const ModemConfig& config);

  // Demodulates `num_chips` chips starting at `start_sample`. Windows
  // that extend past the end of `samples` are treated as zero-padded
  // (producing low-confidence soft values), so a truncated reception
  // still yields a full-length soft chip vector.
  std::vector<double> Demodulate(const SampleVec& samples,
                                 std::size_t start_sample,
                                 std::size_t num_chips) const;

  // Soft value for a single chip window (used by timing search).
  double DemodulateChip(const SampleVec& samples, std::size_t start_sample,
                        std::size_t chip_index) const;

  // Soft value for a chip whose pulse begins at (possibly negative)
  // sample index `base_sample`, on the I channel when `on_i`. Samples
  // outside the capture contribute zero, so rollback decoding past the
  // buffered window degrades gracefully instead of failing.
  double DemodulateChipAt(const SampleVec& samples, std::int64_t base_sample,
                          bool on_i) const;

  // Complex matched-filter correlation for one chip window; the caller
  // derotates by its carrier-phase estimate and takes the real or
  // imaginary part. Used by receivers that perform sync-aided carrier
  // phase recovery.
  Sample DemodulateChipComplexAt(const SampleVec& samples,
                                 std::int64_t base_sample) const;

  // Matched-filter energy (sum of squared pulse taps) — the scale of a
  // clean soft output is amplitude * this value.
  double PulseEnergy() const { return pulse_energy_; }

  const ModemConfig& config() const { return config_; }

 private:
  ModemConfig config_;
  std::vector<double> pulse_;
  double pulse_energy_ = 0.0;
};

// Converts hard chips out of soft values (v >= 0 -> 1).
BitVec HardChips(const std::vector<double>& soft_chips);

}  // namespace ppr::phy
