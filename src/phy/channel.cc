#include "phy/channel.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ppr::phy {

double QFunction(double x) { return 0.5 * std::erfc(x / std::numbers::sqrt2); }

double ChipErrorProbability(double ec_n0_linear) {
  if (ec_n0_linear <= 0.0) return 0.5;
  return QFunction(std::sqrt(2.0 * ec_n0_linear));
}

double NoiseSigmaForEcN0(double ec_n0_linear, double amplitude,
                         int samples_per_chip) {
  assert(ec_n0_linear > 0.0);
  const double pulse_energy = static_cast<double>(samples_per_chip);
  return amplitude * std::sqrt(pulse_energy / (2.0 * ec_n0_linear));
}

void AddAwgn(SampleVec& samples, double sigma, Rng& rng) {
  if (sigma <= 0.0) return;
  for (auto& s : samples) {
    s += Sample{rng.Normal(0.0, sigma), rng.Normal(0.0, sigma)};
  }
}

void ApplyGain(SampleVec& samples, double gain) {
  for (auto& s : samples) s *= gain;
}

void ApplyCarrierOffset(SampleVec& samples, double cfo, double phase) {
  for (std::size_t n = 0; n < samples.size(); ++n) {
    const double theta =
        2.0 * std::numbers::pi * cfo * static_cast<double>(n) + phase;
    samples[n] *= Sample{std::cos(theta), std::sin(theta)};
  }
}

void MixInto(SampleVec& mix, const SampleVec& signal, std::size_t offset,
             double gain) {
  if (mix.size() < offset + signal.size()) {
    mix.resize(offset + signal.size(), Sample{0.0, 0.0});
  }
  for (std::size_t i = 0; i < signal.size(); ++i) {
    mix[offset + i] += gain * signal[i];
  }
}

std::uint32_t SampleChipErrorMask(Rng& rng, double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return 0xFFFFFFFFu;
  std::uint32_t mask = 0;
  if (p < 0.1) {
    // Geometric skipping: jump straight to the next error position.
    const double log1mp = std::log1p(-p);
    double position = 0.0;
    for (;;) {
      double u = rng.UniformDouble();
      if (u < 1e-300) u = 1e-300;
      position += std::floor(std::log(u) / log1mp) + 1.0;
      if (position > 32.0) break;
      mask |= std::uint32_t{1} << (static_cast<std::uint32_t>(position) - 1);
    }
  } else {
    for (int i = 0; i < 32; ++i) {
      if (rng.Bernoulli(p)) mask |= std::uint32_t{1} << i;
    }
  }
  return mask;
}

SampleVec FractionalDelay(const SampleVec& signal, double delay_samples) {
  assert(delay_samples >= 0.0);
  const auto whole = static_cast<std::size_t>(std::floor(delay_samples));
  const double frac = delay_samples - static_cast<double>(whole);
  SampleVec out(signal.size() + whole + 1, Sample{0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) {
    // Linear interpolation distributes sample i across output positions
    // whole+i and whole+i+1.
    out[whole + i] += (1.0 - frac) * signal[i];
    out[whole + i + 1] += frac * signal[i];
  }
  return out;
}

}  // namespace ppr::phy
