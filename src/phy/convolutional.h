// Convolutional coding with a soft-output Viterbi decoder — the
// alternative receiver structure of Figure 1 and the SOVA confidence
// hint of sections 3.1 and 8.1: "a particularly interesting instance of
// a confidence metric when convolutional decoding is used ... is the
// output of the Viterbi decoder".
//
// The encoder is the classic rate-1/2, constraint-length-7 code
// (polynomials 0o171 and 0o133, the "Voyager" code used across wireless
// standards). The decoder runs hard- or soft-input Viterbi and emits a
// per-bit reliability: the path-metric margin between the survivor and
// its best competitor at each trellis step (a SOVA-style hint — larger
// margin means higher confidence, so the SoftPHY hint is its negation
// to preserve the lower-is-better monotonicity contract).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "phy/despreader.h"

namespace ppr::phy {

struct ConvolutionalCode {
  // Generator polynomials, constraint length 7 (64 states).
  static constexpr unsigned kConstraint = 7;
  static constexpr unsigned kNumStates = 1u << (kConstraint - 1);
  static constexpr std::uint32_t kG0 = 0171;
  static constexpr std::uint32_t kG1 = 0133;
};

// Encodes `bits` at rate 1/2, appending (kConstraint - 1) zero tail
// bits so the trellis terminates in state 0. Output length is
// 2 * (bits.size() + 6).
BitVec ConvolutionalEncode(const BitVec& bits);

// One decoded information bit with its SOVA-style reliability.
struct ViterbiBit {
  bool bit = false;
  // Minimum survivor-vs-competitor metric margin over the traceback
  // window for this bit; larger = more reliable.
  double reliability = 0.0;
};

struct ViterbiResult {
  BitVec bits;                     // decoded information bits (tail removed)
  std::vector<double> reliability; // per decoded bit, larger = better
  double path_metric = 0.0;        // total metric of the winning path
};

// Hard-input Viterbi: `coded` holds the received code bits (possibly
// corrupted); metric is Hamming distance. `info_bits` is the number of
// information bits the caller expects (excluding the tail).
ViterbiResult ViterbiDecodeHard(const BitVec& coded, std::size_t info_bits);

// Soft-input Viterbi: one soft value per code bit, sign = bit decision
// (negative = 0), magnitude = confidence; metric is correlation.
ViterbiResult ViterbiDecodeSoft(const std::vector<double>& coded_soft,
                                std::size_t info_bits);

// Groups Viterbi per-bit reliabilities into 4-bit "codeword" hints so
// the convolutional receiver plugs into the same SoftPHY interface as
// the DSSS despreader: symbol k gets the weakest reliability among its
// four bits, negated (lower hint = more confident).
std::vector<DecodedSymbol> ViterbiToSoftPhySymbols(const ViterbiResult& result);

}  // namespace ppr::phy
