#include "phy/chip_sequences.h"

#include <bit>
#include <cassert>
#include <limits>

namespace ppr::phy {
namespace {

// Base chip sequence for symbol 0, chips c0..c31, from the 802.15.4
// standard's symbol-to-chip table.
constexpr char kBaseSequence[] = "11011001110000110101001000101110";

ChipWord PackFromString(const char* s) {
  ChipWord w = 0;
  for (int i = 0; i < kChipsPerSymbol; ++i) {
    if (s[i] == '1') w |= (ChipWord{1} << i);
  }
  return w;
}

// Right-rotate the 32-chip sequence by `n` chip positions: chip i of the
// result is chip (i - n) mod 32 of the input.
ChipWord RotateRight(ChipWord w, int n) {
  n &= 31;
  if (n == 0) return w;
  return std::rotl(w, n);  // chip i lives in bit i, so rotl moves chips right
}

constexpr ChipWord kOddChipMask = 0xAAAAAAAAu;

std::array<ChipWord, kNumSymbols> BuildTable() {
  std::array<ChipWord, kNumSymbols> table{};
  const ChipWord base = PackFromString(kBaseSequence);
  for (int s = 0; s < 8; ++s) {
    table[static_cast<std::size_t>(s)] = RotateRight(base, 4 * s);
  }
  for (int s = 0; s < 8; ++s) {
    table[static_cast<std::size_t>(s + 8)] =
        table[static_cast<std::size_t>(s)] ^ kOddChipMask;
  }
  return table;
}

}  // namespace

ChipCodebook::ChipCodebook() : table_(BuildTable()) {}

ChipWord ChipCodebook::Codeword(int symbol) const {
  assert(symbol >= 0 && symbol < kNumSymbols);
  return table_[static_cast<std::size_t>(symbol)];
}

bool ChipCodebook::Chip(int symbol, int i) const {
  assert(i >= 0 && i < kChipsPerSymbol);
  return (Codeword(symbol) >> i) & 1u;
}

BitVec ChipCodebook::CodewordBits(int symbol) const {
  BitVec v;
  for (int i = 0; i < kChipsPerSymbol; ++i) v.PushBack(Chip(symbol, i));
  return v;
}

int ChipCodebook::DecodeHard(ChipWord received, int* distance) const {
  int best_symbol = 0;
  int best_distance = std::numeric_limits<int>::max();
  for (int s = 0; s < kNumSymbols; ++s) {
    const int d = ChipHamming(received, table_[static_cast<std::size_t>(s)]);
    if (d < best_distance) {
      best_distance = d;
      best_symbol = s;
    }
  }
  if (distance != nullptr) *distance = best_distance;
  return best_symbol;
}

int ChipCodebook::DecodeSoft(const std::array<double, kChipsPerSymbol>& soft,
                             double* correlation, double* margin) const {
  double best = -std::numeric_limits<double>::infinity();
  double second = -std::numeric_limits<double>::infinity();
  int best_symbol = 0;
  for (int s = 0; s < kNumSymbols; ++s) {
    const ChipWord cw = table_[static_cast<std::size_t>(s)];
    double corr = 0.0;
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      const double level = ((cw >> i) & 1u) ? 1.0 : -1.0;
      corr += level * soft[static_cast<std::size_t>(i)];
    }
    if (corr > best) {
      second = best;
      best = corr;
      best_symbol = s;
    } else if (corr > second) {
      second = corr;
    }
  }
  if (correlation != nullptr) *correlation = best;
  if (margin != nullptr) *margin = best - second;
  return best_symbol;
}

int ChipCodebook::MinPairwiseDistance() const {
  int min_d = kChipsPerSymbol;
  for (int a = 0; a < kNumSymbols; ++a) {
    for (int b = a + 1; b < kNumSymbols; ++b) {
      min_d = std::min(min_d, ChipHamming(table_[static_cast<std::size_t>(a)],
                                          table_[static_cast<std::size_t>(b)]));
    }
  }
  return min_d;
}

int ChipHamming(ChipWord a, ChipWord b) { return std::popcount(a ^ b); }

}  // namespace ppr::phy
