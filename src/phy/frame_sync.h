// Preamble and postamble frame synchronization by waveform correlation.
//
// The receiver slides a reference waveform (the modulated sync pattern:
// zero-symbol run followed by the SFD, or followed by the post-SFD for
// postambles) across the received samples and reports peaks of the
// normalized correlation magnitude. A peak at offset n means the sync
// pattern's chip 0 begins at sample n, which also fixes chip timing for
// the rest of the frame.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/msk_modem.h"

namespace ppr::phy {

struct SyncHit {
  std::size_t sample_offset = 0;  // where the reference's chip 0 begins
  double score = 0.0;             // normalized correlation in [0, 1]
  // Carrier-phase estimate of the matched transmission: the argument of
  // the complex correlation. A receiver derotates by this before
  // demodulating (sync-aided carrier phase recovery).
  double phase = 0.0;
};

class WaveformCorrelator {
 public:
  // `reference` is the clean modulated waveform of the sync pattern.
  explicit WaveformCorrelator(SampleVec reference);

  // Normalized correlation magnitude of the reference against the
  // received window starting at `n` (0 if the window runs past the end).
  double ScoreAt(const SampleVec& rx, std::size_t n) const;

  // Score plus carrier-phase estimate (arg of the complex correlation).
  double ScoreAt(const SampleVec& rx, std::size_t n, double* phase) const;

  // All local peaks with score >= threshold, at least `min_separation`
  // samples apart (the stronger peak wins within a separation window).
  std::vector<SyncHit> FindPeaks(const SampleVec& rx, double threshold,
                                 std::size_t min_separation) const;

  // The single best-scoring offset in [from, to); returns score 0 when
  // the range is empty.
  SyncHit BestInRange(const SampleVec& rx, std::size_t from,
                      std::size_t to) const;

  std::size_t ReferenceLength() const { return reference_.size(); }

 private:
  SampleVec reference_;
  double reference_energy_ = 0.0;
};

}  // namespace ppr::phy
