#include "phy/spreader.h"

#include <cassert>
#include <stdexcept>

namespace ppr::phy {

std::vector<std::uint8_t> BitsToSymbols(const BitVec& bits) {
  if (bits.size() % kBitsPerSymbol != 0) {
    throw std::invalid_argument("BitsToSymbols: bit count not a multiple of 4");
  }
  std::vector<std::uint8_t> symbols;
  symbols.reserve(bits.size() / kBitsPerSymbol);
  // Octets are transmitted low nibble first; within the BitVec we store
  // octets MSB-first, so symbol k of an octet pair is built from the
  // appropriate nibble. We process nibble-by-nibble: bits [4i, 4i+4) form
  // one nibble MSB-first; for each octet (two nibbles) the low nibble
  // (second in the BitVec) is sent first.
  const std::size_t num_nibbles = bits.size() / kBitsPerSymbol;
  for (std::size_t n = 0; n < num_nibbles; n += 2) {
    const auto high =
        static_cast<std::uint8_t>(bits.ReadUint(n * kBitsPerSymbol, 4));
    if (n + 1 < num_nibbles) {
      const auto low =
          static_cast<std::uint8_t>(bits.ReadUint((n + 1) * kBitsPerSymbol, 4));
      symbols.push_back(low);   // low nibble of the octet first
      symbols.push_back(high);  // then the high nibble
    } else {
      symbols.push_back(high);  // lone trailing nibble
    }
  }
  return symbols;
}

BitVec SymbolsToBits(const std::vector<std::uint8_t>& symbols) {
  BitVec bits;
  const std::size_t n = symbols.size();
  for (std::size_t i = 0; i < n; i += 2) {
    if (i + 1 < n) {
      // Symbols arrive low nibble first; reassemble the octet MSB-first.
      bits.AppendUint(symbols[i + 1] & 0xF, 4);
      bits.AppendUint(symbols[i] & 0xF, 4);
    } else {
      bits.AppendUint(symbols[i] & 0xF, 4);
    }
  }
  return bits;
}

BitVec SpreadSymbols(const ChipCodebook& codebook,
                     const std::vector<std::uint8_t>& symbols) {
  BitVec chips;
  for (std::uint8_t s : symbols) {
    assert(s < kNumSymbols);
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      chips.PushBack(codebook.Chip(s, i));
    }
  }
  return chips;
}

BitVec SpreadBits(const ChipCodebook& codebook, const BitVec& bits) {
  return SpreadSymbols(codebook, BitsToSymbols(bits));
}

}  // namespace ppr::phy
