#include "phy/sample_buffer.h"

#include <cassert>

namespace ppr::phy {

SampleRingBuffer::SampleRingBuffer(std::size_t capacity)
    : data_(capacity, Sample{0.0, 0.0}) {
  assert(capacity > 0);
}

void SampleRingBuffer::Push(Sample s) {
  data_[static_cast<std::size_t>(end_ % data_.size())] = s;
  ++end_;
}

void SampleRingBuffer::PushAll(const SampleVec& samples) {
  for (const auto& s : samples) Push(s);
}

std::uint64_t SampleRingBuffer::OldestAvailable() const {
  return end_ > data_.size() ? end_ - data_.size() : 0;
}

bool SampleRingBuffer::Contains(std::uint64_t index) const {
  return index >= OldestAvailable() && index < end_;
}

Sample SampleRingBuffer::At(std::uint64_t index) const {
  if (!Contains(index)) return Sample{0.0, 0.0};
  return data_[static_cast<std::size_t>(index % data_.size())];
}

SampleVec SampleRingBuffer::Window(std::uint64_t first,
                                   std::size_t count) const {
  SampleVec out(count, Sample{0.0, 0.0});
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = At(first + i);
  }
  return out;
}

}  // namespace ppr::phy
