// Circular buffer of received samples enabling postamble "roll back"
// (section 4): the receiver keeps as many samples as one maximally-sized
// packet occupies, so that when a postamble is detected it can decode the
// packet body it never synchronized on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "phy/msk_modem.h"

namespace ppr::phy {

// Fixed-capacity ring buffer with absolute (monotonically increasing)
// sample indexing. Push() advances the stream; samples older than
// capacity are overwritten and reads of them return zero (and can be
// detected via OldestAvailable()).
class SampleRingBuffer {
 public:
  explicit SampleRingBuffer(std::size_t capacity);

  void Push(Sample s);
  void PushAll(const SampleVec& samples);

  // Total samples ever pushed; the next Push() receives this index.
  std::uint64_t EndIndex() const { return end_; }

  // Oldest absolute index still retained.
  std::uint64_t OldestAvailable() const;

  // True if the absolute index is still in the buffer.
  bool Contains(std::uint64_t index) const;

  // Sample at absolute index; zero if evicted or not yet written.
  Sample At(std::uint64_t index) const;

  // Copies [first, first + count) into a contiguous vector; evicted or
  // future positions read as zero. This is the rollback primitive: the
  // receiver pipeline asks for the window preceding a postamble hit.
  SampleVec Window(std::uint64_t first, std::size_t count) const;

  std::size_t Capacity() const { return data_.size(); }

 private:
  SampleVec data_;
  std::uint64_t end_ = 0;  // absolute index one past the newest sample
};

}  // namespace ppr::phy
