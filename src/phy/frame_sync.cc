#include "phy/frame_sync.h"

#include <algorithm>
#include <cmath>

namespace ppr::phy {

WaveformCorrelator::WaveformCorrelator(SampleVec reference)
    : reference_(std::move(reference)) {
  for (const auto& s : reference_) reference_energy_ += std::norm(s);
}

double WaveformCorrelator::ScoreAt(const SampleVec& rx, std::size_t n) const {
  return ScoreAt(rx, n, nullptr);
}

double WaveformCorrelator::ScoreAt(const SampleVec& rx, std::size_t n,
                                   double* phase) const {
  if (reference_.empty() || n + reference_.size() > rx.size()) return 0.0;
  Sample acc{0.0, 0.0};
  double rx_energy = 0.0;
  for (std::size_t m = 0; m < reference_.size(); ++m) {
    const Sample& r = rx[n + m];
    acc += std::conj(reference_[m]) * r;
    rx_energy += std::norm(r);
  }
  const double denom = std::sqrt(reference_energy_ * rx_energy);
  if (denom <= 0.0) return 0.0;
  if (phase != nullptr) *phase = std::arg(acc);
  return std::abs(acc) / denom;
}

std::vector<SyncHit> WaveformCorrelator::FindPeaks(
    const SampleVec& rx, double threshold, std::size_t min_separation) const {
  std::vector<SyncHit> hits;
  if (rx.size() < reference_.size()) return hits;
  const std::size_t last = rx.size() - reference_.size();
  for (std::size_t n = 0; n <= last; ++n) {
    double phase = 0.0;
    const double score = ScoreAt(rx, n, &phase);
    if (score < threshold) continue;
    if (!hits.empty() && n - hits.back().sample_offset < min_separation) {
      // Within the separation window keep only the stronger hit.
      if (score > hits.back().score) {
        hits.back() = SyncHit{n, score, phase};
      }
      continue;
    }
    hits.push_back(SyncHit{n, score, phase});
  }
  return hits;
}

SyncHit WaveformCorrelator::BestInRange(const SampleVec& rx, std::size_t from,
                                        std::size_t to) const {
  SyncHit best;
  to = std::min(to, rx.size());
  for (std::size_t n = from; n < to; ++n) {
    double phase = 0.0;
    const double score = ScoreAt(rx, n, &phase);
    if (score > best.score) {
      best = SyncHit{n, score, phase};
    }
  }
  return best;
}

}  // namespace ppr::phy
