// Complex-baseband channel models: AWGN, gain/attenuation, delay,
// carrier offset, and superposition of concurrent transmissions
// (collisions). These stand in for the over-the-air channel between the
// CC2420 senders and the USRP receivers of the paper's testbed.
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "phy/msk_modem.h"

namespace ppr::phy {

// Gaussian Q function: P(N(0,1) > x).
double QFunction(double x);

// Probability of a chip error for antipodal chips through a matched
// filter at chip SNR (Ec/N0) `ec_n0_linear`: Q(sqrt(2 * Ec/N0)). This is
// the link between the waveform channel and the chip-level testbed
// simulator — both produce the same chip error statistics at equal SNR.
double ChipErrorProbability(double ec_n0_linear);

// Noise standard deviation per real dimension that realizes a target
// chip-level Ec/N0 for half-sine MSK pulses with the given amplitude and
// oversampling. Derivation: matched-filter signal level = A * Ep where
// Ep = sum p^2[m] = sps; noise variance after the filter = sigma^2 * Ep;
// Ec = A^2 * Ep and N0 = 2 sigma^2, so Ec/N0 = A^2 * Ep / (2 sigma^2).
double NoiseSigmaForEcN0(double ec_n0_linear, double amplitude,
                         int samples_per_chip);

// Adds white Gaussian noise (independent per real dimension) in place.
void AddAwgn(SampleVec& samples, double sigma, Rng& rng);

// Scales a signal by a (voltage) gain.
void ApplyGain(SampleVec& samples, double gain);

// Applies a carrier frequency/phase offset: s[n] *= exp(j*(2*pi*cfo*n + phase)),
// with `cfo` in cycles per sample.
void ApplyCarrierOffset(SampleVec& samples, double cfo, double phase);

// Adds `signal` into `mix` starting at sample `offset`, growing `mix` if
// needed. Models concurrent transmissions superposing at a receiver.
void MixInto(SampleVec& mix, const SampleVec& signal, std::size_t offset,
             double gain = 1.0);

// Returns `signal` delayed by a fractional number of samples using linear
// interpolation; used to model senders whose chip clocks are not aligned
// to the receiver sample grid.
SampleVec FractionalDelay(const SampleVec& signal, double delay_samples);

// Draws a 32-chip error mask where each chip flips independently with
// probability `p`. Used by the chip-level testbed simulator; the
// geometric-skip sampler keeps the common low-error-rate case cheap.
std::uint32_t SampleChipErrorMask(Rng& rng, double p);

}  // namespace ppr::phy
