#include "phy/despreader.h"

#include "phy/spreader.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace ppr::phy {
namespace {

ChipWord PackWindow(const BitVec& chips, std::size_t start) {
  ChipWord w = 0;
  for (int i = 0; i < kChipsPerSymbol; ++i) {
    if (chips.Get(start + static_cast<std::size_t>(i))) {
      w |= ChipWord{1} << i;
    }
  }
  return w;
}

}  // namespace

std::vector<DecodedSymbol> DespreadHard(const ChipCodebook& codebook,
                                        const BitVec& chips) {
  if (chips.size() % kChipsPerSymbol != 0) {
    throw std::invalid_argument("DespreadHard: chip count not a multiple of 32");
  }
  std::vector<DecodedSymbol> out;
  out.reserve(chips.size() / kChipsPerSymbol);
  for (std::size_t pos = 0; pos < chips.size(); pos += kChipsPerSymbol) {
    const ChipWord received = PackWindow(chips, pos);
    DecodedSymbol d;
    int distance = 0;
    d.symbol = static_cast<std::uint8_t>(codebook.DecodeHard(received, &distance));
    d.hamming_distance = distance;
    d.hint = static_cast<double>(distance);
    out.push_back(d);
  }
  return out;
}

std::vector<DecodedSymbol> DespreadSoft(const ChipCodebook& codebook,
                                        const std::vector<double>& soft_chips,
                                        HintKind kind) {
  if (soft_chips.size() % kChipsPerSymbol != 0) {
    throw std::invalid_argument("DespreadSoft: chip count not a multiple of 32");
  }
  std::vector<DecodedSymbol> out;
  out.reserve(soft_chips.size() / kChipsPerSymbol);
  for (std::size_t pos = 0; pos < soft_chips.size(); pos += kChipsPerSymbol) {
    std::array<double, kChipsPerSymbol> window{};
    ChipWord hard = 0;
    double energy = 0.0;
    for (int i = 0; i < kChipsPerSymbol; ++i) {
      const double v = soft_chips[pos + static_cast<std::size_t>(i)];
      window[static_cast<std::size_t>(i)] = v;
      if (v >= 0.0) hard |= ChipWord{1} << i;
      energy += std::abs(v);
    }

    DecodedSymbol d;
    int hard_distance = 0;
    const int hard_symbol = codebook.DecodeHard(hard, &hard_distance);
    d.hamming_distance = hard_distance;

    switch (kind) {
      case HintKind::kHammingDistance: {
        d.symbol = static_cast<std::uint8_t>(hard_symbol);
        d.hint = static_cast<double>(hard_distance);
        break;
      }
      case HintKind::kSoftCorrelation: {
        double correlation = 0.0;
        double margin = 0.0;
        const int soft_symbol = codebook.DecodeSoft(window, &correlation, &margin);
        d.symbol = static_cast<std::uint8_t>(soft_symbol);
        // Normalize by total |energy| so the hint is scale invariant;
        // negate so lower = more confident (monotonicity contract).
        const double denom = energy > 0.0 ? energy : 1.0;
        d.hint = -(margin / denom);
        break;
      }
      case HintKind::kMatchedFilterEnergy: {
        d.symbol = static_cast<std::uint8_t>(hard_symbol);
        d.hint = -(energy / kChipsPerSymbol);
        break;
      }
    }
    out.push_back(d);
  }
  return out;
}

std::vector<DecodedSymbol> ToLogicalNibbleOrder(
    std::vector<DecodedSymbol> symbols) {
  if (symbols.size() % 2 != 0) {
    throw std::invalid_argument("ToLogicalNibbleOrder: odd symbol count");
  }
  for (std::size_t i = 0; i + 1 < symbols.size(); i += 2) {
    std::swap(symbols[i], symbols[i + 1]);
  }
  return symbols;
}

BitVec DecodedSymbolsToBits(const std::vector<DecodedSymbol>& symbols) {
  std::vector<std::uint8_t> values;
  values.reserve(symbols.size());
  for (const auto& d : symbols) values.push_back(d.symbol);
  return SymbolsToBits(values);
}

}  // namespace ppr::phy
