// DSSS despreading with SoftPHY hints.
//
// This is the code path the whole paper hinges on: every 32-chip window
// is decoded to the nearest codeword and annotated with a confidence
// hint. Both the waveform receiver (matched-filter chips) and the
// chip-level testbed simulator (SINR-driven chip flips) feed this same
// despreader, so hint statistics are produced by one implementation.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "phy/chip_sequences.h"

namespace ppr::phy {

// Which PHY hint accompanies each decoded symbol (section 3.1 lays out
// three options; Hamming distance is the one the paper evaluates).
enum class HintKind {
  kHammingDistance,     // hard-decision decoding distance (section 3.2)
  kSoftCorrelation,     // soft-decision correlation margin
  kMatchedFilterEnergy  // mean |matched filter output| across the codeword
};

// One decoded symbol plus its SoftPHY annotation. `hint` follows the
// monotonicity contract of section 3.3: *lower* is always more
// confident, regardless of HintKind (correlation-style metrics are
// negated internally so that one comparison direction serves all kinds).
struct DecodedSymbol {
  std::uint8_t symbol = 0;  // 4-bit value
  double hint = 0.0;        // lower = more confident
  int hamming_distance = 0; // always populated for diagnostics
};

// Despreads a hard chip stream. The chip count must be a multiple of 32.
std::vector<DecodedSymbol> DespreadHard(const ChipCodebook& codebook,
                                        const BitVec& chips);

// Despreads a soft chip stream (one double per chip, sign = decision).
// `kind` selects how the hint is derived:
//  - kHammingDistance: slice signs to hard chips, decode, distance hint.
//  - kSoftCorrelation: soft decode; hint = -(margin / codeword energy).
//  - kMatchedFilterEnergy: hard decode; hint = -(mean |soft chip|).
std::vector<DecodedSymbol> DespreadSoft(const ChipCodebook& codebook,
                                        const std::vector<double>& soft_chips,
                                        HintKind kind);

// Reassembles the bit stream from decoded symbols (inverse of the
// spreader's nibble ordering).
BitVec DecodedSymbolsToBits(const std::vector<DecodedSymbol>& symbols);

// Reorders transmission-order symbols (low nibble of each octet first)
// into logical nibble order (high nibble first, so symbol k carries bits
// [4k, 4k+4) of the octet stream). Requires an even symbol count.
std::vector<DecodedSymbol> ToLogicalNibbleOrder(
    std::vector<DecodedSymbol> symbols);

}  // namespace ppr::phy
