#include "softphy/runlength.h"

#include <cassert>

namespace ppr::softphy {

std::vector<Run> ComputeRuns(const std::vector<bool>& labels) {
  std::vector<Run> runs;
  for (bool good : labels) {
    if (!runs.empty() && runs.back().good == good) {
      ++runs.back().length;
    } else {
      runs.push_back(Run{good, 1});
    }
  }
  return runs;
}

RunLengthForm ToRunLengthForm(const std::vector<bool>& labels) {
  RunLengthForm form;
  const auto runs = ComputeRuns(labels);
  std::size_t i = 0;
  if (!runs.empty() && runs[0].good) {
    form.leading_good = runs[0].length;
    i = 1;
  }
  while (i < runs.size()) {
    assert(!runs[i].good);
    form.bad.push_back(runs[i].length);
    ++i;
    if (i < runs.size() && runs[i].good) {
      form.good_after.push_back(runs[i].length);
      ++i;
    } else {
      form.good_after.push_back(0);  // bad run ends the packet
    }
  }
  return form;
}

std::size_t RunLengthForm::BadRunOffset(std::size_t i) const {
  assert(i < bad.size());
  std::size_t offset = leading_good;
  for (std::size_t k = 0; k < i; ++k) {
    offset += bad[k] + good_after[k];
  }
  return offset;
}

std::size_t RunLengthForm::TotalCodewords() const {
  std::size_t total = leading_good;
  for (std::size_t k = 0; k < bad.size(); ++k) {
    total += bad[k] + good_after[k];
  }
  return total;
}

}  // namespace ppr::softphy
