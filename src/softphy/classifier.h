// SoftPHY hint interpretation (sections 3.2 and 3.3): a threshold rule
// labels each decoded codeword "good" (hint <= eta) or "bad", plus an
// adaptive variant that tunes eta from observed outcomes while relying
// only on the monotonicity contract — lower hint always means higher
// confidence — so higher layers never depend on what the hint *is*.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/despreader.h"

namespace ppr::softphy {

// The paper's default Hamming-distance threshold ("Here we choose
// eta = 6", section 7.2).
inline constexpr double kDefaultEta = 6.0;

// Fixed-threshold rule: good iff hint <= eta.
class ThresholdClassifier {
 public:
  explicit ThresholdClassifier(double eta = kDefaultEta);

  double eta() const { return eta_; }

  bool IsGood(const phy::DecodedSymbol& symbol) const;
  std::vector<bool> Label(const std::vector<phy::DecodedSymbol>& symbols) const;

 private:
  double eta_;
};

// Adapts eta to hold the false-alarm rate near a target while keeping
// the miss rate low, using only post-facto correctness feedback (e.g.
// CRC outcomes of delivered runs). The update never inspects hint
// semantics, only the ordering, per the architectural argument of
// section 3.3.
class AdaptiveThresholdClassifier {
 public:
  struct Config {
    double initial_eta = kDefaultEta;
    double min_eta = 0.0;
    double max_eta = 32.0;
    double target_false_alarm = 0.005;  // ~5 in 1000 (section 7.4.2)
    double step = 0.25;                 // eta adjustment per Observe batch
    std::size_t batch = 256;            // decisions per adjustment
  };

  explicit AdaptiveThresholdClassifier(const Config& config);

  double eta() const { return eta_; }

  bool IsGood(const phy::DecodedSymbol& symbol) const;
  std::vector<bool> Label(const std::vector<phy::DecodedSymbol>& symbols) const;

  // Reports ground truth for one previously-labeled codeword: whether it
  // was labeled good and whether it actually decoded correctly. Every
  // `batch` observations eta moves toward the false-alarm target.
  void Observe(bool labeled_good, bool actually_correct);

  double ObservedFalseAlarmRate() const;
  double ObservedMissRate() const;

 private:
  Config config_;
  double eta_;
  // Counters within the current adaptation batch.
  std::size_t correct_ = 0;
  std::size_t false_alarms_ = 0;  // correct but labeled bad
  std::size_t incorrect_ = 0;
  std::size_t misses_ = 0;        // incorrect but labeled good
  std::size_t seen_ = 0;
};

}  // namespace ppr::softphy
