// Run-length representation of a labeled packet (expression 2 of the
// paper): alternating runs of "good" and "bad" codewords,
// lambda^b_1 lambda^g_1 ... lambda^b_L lambda^g_L. This is the input to
// the PP-ARQ dynamic program.
#pragma once

#include <cstddef>
#include <vector>

namespace ppr::softphy {

struct Run {
  bool good = false;
  std::size_t length = 0;  // in codewords (symbols)

  bool operator==(const Run&) const = default;
};

// Collapses per-codeword labels into alternating runs (lengths > 0).
std::vector<Run> ComputeRuns(const std::vector<bool>& labels);

// The paper's canonical form: L bad runs (lambda^b_i) with the good runs
// that *follow* each bad run (lambda^g_i, possibly zero for the last).
// A leading good run (before the first bad run) is never retransmitted
// and is reported separately.
struct RunLengthForm {
  std::size_t leading_good = 0;          // codewords before the first bad run
  std::vector<std::size_t> bad;          // lambda^b_1 .. lambda^b_L
  std::vector<std::size_t> good_after;   // lambda^g_1 .. lambda^g_L

  std::size_t NumBadRuns() const { return bad.size(); }
  bool AllGood() const { return bad.empty(); }

  // Start offset (in codewords) of bad run `i` within the packet.
  std::size_t BadRunOffset(std::size_t i) const;

  // Total codewords represented.
  std::size_t TotalCodewords() const;
};

RunLengthForm ToRunLengthForm(const std::vector<bool>& labels);

}  // namespace ppr::softphy
