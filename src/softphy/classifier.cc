#include "softphy/classifier.h"

#include <algorithm>

namespace ppr::softphy {

ThresholdClassifier::ThresholdClassifier(double eta) : eta_(eta) {}

bool ThresholdClassifier::IsGood(const phy::DecodedSymbol& symbol) const {
  return symbol.hint <= eta_;
}

std::vector<bool> ThresholdClassifier::Label(
    const std::vector<phy::DecodedSymbol>& symbols) const {
  std::vector<bool> labels(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    labels[i] = IsGood(symbols[i]);
  }
  return labels;
}

AdaptiveThresholdClassifier::AdaptiveThresholdClassifier(const Config& config)
    : config_(config), eta_(config.initial_eta) {}

bool AdaptiveThresholdClassifier::IsGood(
    const phy::DecodedSymbol& symbol) const {
  return symbol.hint <= eta_;
}

std::vector<bool> AdaptiveThresholdClassifier::Label(
    const std::vector<phy::DecodedSymbol>& symbols) const {
  std::vector<bool> labels(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    labels[i] = IsGood(symbols[i]);
  }
  return labels;
}

void AdaptiveThresholdClassifier::Observe(bool labeled_good,
                                          bool actually_correct) {
  if (actually_correct) {
    ++correct_;
    if (!labeled_good) ++false_alarms_;
  } else {
    ++incorrect_;
    if (labeled_good) ++misses_;
  }
  if (++seen_ < config_.batch) return;

  // One adjustment per batch: raising eta lowers the false-alarm rate
  // (fewer correct codewords labeled bad) at the cost of more misses;
  // lowering it does the opposite. Move eta one step toward the target.
  const double fa = ObservedFalseAlarmRate();
  if (fa > config_.target_false_alarm) {
    eta_ = std::min(config_.max_eta, eta_ + config_.step);
  } else {
    eta_ = std::max(config_.min_eta, eta_ - config_.step);
  }
  correct_ = false_alarms_ = incorrect_ = misses_ = seen_ = 0;
}

double AdaptiveThresholdClassifier::ObservedFalseAlarmRate() const {
  if (correct_ == 0) return 0.0;
  return static_cast<double>(false_alarms_) / static_cast<double>(correct_);
}

double AdaptiveThresholdClassifier::ObservedMissRate() const {
  if (incorrect_ == 0) return 0.0;
  return static_cast<double>(misses_) / static_cast<double>(incorrect_);
}

}  // namespace ppr::softphy
