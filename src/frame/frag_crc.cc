#include "frame/frag_crc.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/crc.h"

namespace ppr::frame {

FragmentPlan::FragmentPlan(std::size_t payload_octets,
                           std::size_t num_fragments)
    : payload_octets_(payload_octets), num_fragments_(num_fragments) {
  if (num_fragments_ == 0) {
    throw std::invalid_argument("FragmentPlan: need at least one fragment");
  }
  if (num_fragments_ > payload_octets_ && payload_octets_ > 0) {
    num_fragments_ = payload_octets_;  // no empty fragments
  }
}

std::size_t FragmentPlan::FragmentSize(std::size_t index) const {
  assert(index < num_fragments_);
  const std::size_t base = payload_octets_ / num_fragments_;
  const std::size_t remainder = payload_octets_ % num_fragments_;
  return base + (index < remainder ? 1 : 0);
}

std::size_t FragmentPlan::FragmentOffset(std::size_t index) const {
  assert(index < num_fragments_);
  const std::size_t base = payload_octets_ / num_fragments_;
  const std::size_t remainder = payload_octets_ % num_fragments_;
  return base * index + std::min(index, remainder);
}

std::vector<std::uint8_t> BuildFragmentedPayload(
    std::span<const std::uint8_t> payload, const FragmentPlan& plan) {
  assert(payload.size() == plan.payload_octets());
  std::vector<std::uint8_t> wire;
  wire.reserve(plan.WireOctets());
  for (std::size_t f = 0; f < plan.num_fragments(); ++f) {
    const auto frag = payload.subspan(plan.FragmentOffset(f), plan.FragmentSize(f));
    wire.insert(wire.end(), frag.begin(), frag.end());
    const std::uint32_t crc = Crc32(frag);
    wire.push_back(static_cast<std::uint8_t>(crc >> 24));
    wire.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  }
  return wire;
}

FragmentCheckResult CheckFragmentedPayload(std::span<const std::uint8_t> wire,
                                           const FragmentPlan& plan) {
  if (wire.size() != plan.WireOctets()) {
    throw std::invalid_argument("CheckFragmentedPayload: wire size mismatch");
  }
  FragmentCheckResult result;
  result.fragment_ok.resize(plan.num_fragments(), false);
  result.payload.assign(plan.payload_octets(), 0);

  std::size_t wire_pos = 0;
  for (std::size_t f = 0; f < plan.num_fragments(); ++f) {
    const std::size_t size = plan.FragmentSize(f);
    const auto frag = wire.subspan(wire_pos, size);
    wire_pos += size;
    const std::uint32_t got =
        (static_cast<std::uint32_t>(wire[wire_pos]) << 24) |
        (static_cast<std::uint32_t>(wire[wire_pos + 1]) << 16) |
        (static_cast<std::uint32_t>(wire[wire_pos + 2]) << 8) |
        static_cast<std::uint32_t>(wire[wire_pos + 3]);
    wire_pos += 4;
    const bool ok = Crc32(frag) == got;
    result.fragment_ok[f] = ok;
    if (ok) {
      std::copy(frag.begin(), frag.end(),
                result.payload.begin() +
                    static_cast<std::ptrdiff_t>(plan.FragmentOffset(f)));
      result.delivered_octets += size;
    }
  }
  return result;
}

}  // namespace ppr::frame
