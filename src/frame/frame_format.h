// PPR frame format (Figure 2 of the paper).
//
// On-air octet layout:
//
//   PREAMBLE  4 x 0x00          } standard 802.15.4 sync
//   SFD       0xA7              }
//   LEN       2 octets          } header: payload length (octets),
//   DST       2 octets          }   destination, source, sequence
//   SRC       2 octets          }
//   SEQ       2 octets          }
//   HCRC      2 octets CRC-16 over LEN..SEQ
//   PAYLOAD   N octets
//   PCRC      4 octets CRC-32 over PAYLOAD
//   LEN'       }
//   DST'       } trailer: replica of the header fields plus its own
//   SRC'       } CRC-16, so a postamble-synchronized receiver can frame
//   SEQ'       } the packet (section 4)
//   TCRC      2 octets CRC-16 over LEN'..SEQ'
//   POSTAMBLE 4 x 0xFF          } postamble sync, distinct from the
//   PSFD      0xE5              }   preamble so the two are not confused
//
// Every octet maps to two 4-bit symbols (low nibble first), each spread
// to a 32-chip codeword.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bitvec.h"

namespace ppr::frame {

inline constexpr std::size_t kPreambleOctets = 4;
inline constexpr std::uint8_t kPreambleOctet = 0x00;
inline constexpr std::uint8_t kSfdOctet = 0xA7;
inline constexpr std::size_t kPostambleOctets = 4;
inline constexpr std::uint8_t kPostambleOctet = 0xFF;
inline constexpr std::uint8_t kPostSfdOctet = 0xE5;

inline constexpr std::size_t kHeaderFieldOctets = 8;   // LEN DST SRC SEQ
inline constexpr std::size_t kHeaderOctets = 10;       // + HCRC
inline constexpr std::size_t kPayloadCrcOctets = 4;    // PCRC
inline constexpr std::size_t kTrailerOctets = 10;      // fields + TCRC
inline constexpr std::size_t kSyncPrefixOctets =
    kPreambleOctets + 1;  // preamble + SFD
inline constexpr std::size_t kSyncSuffixOctets =
    kPostambleOctets + 1;  // postamble + PSFD

// Link-layer addressing and length fields carried in both header and
// trailer.
struct FrameHeader {
  std::uint16_t length = 0;  // payload octets
  std::uint16_t dst = 0;
  std::uint16_t src = 0;
  std::uint16_t seq = 0;

  bool operator==(const FrameHeader&) const = default;
};

// Serializes the four fields plus CRC-16 (10 octets).
std::vector<std::uint8_t> EncodeHeader(const FrameHeader& header);

// Parses and CRC-checks 10 octets; nullopt when the CRC fails.
std::optional<FrameHeader> DecodeHeader(std::span<const std::uint8_t> octets);

// Layout bookkeeping for a frame with a given payload size. All offsets
// are in octets from the start of the on-air frame (first preamble
// octet); symbol offsets are octet offsets times two.
class FrameLayout {
 public:
  explicit FrameLayout(std::size_t payload_octets);

  std::size_t payload_octets() const { return payload_octets_; }

  std::size_t HeaderOffset() const { return kSyncPrefixOctets; }
  std::size_t PayloadOffset() const { return HeaderOffset() + kHeaderOctets; }
  std::size_t PayloadCrcOffset() const {
    return PayloadOffset() + payload_octets_;
  }
  std::size_t TrailerOffset() const {
    return PayloadCrcOffset() + kPayloadCrcOctets;
  }
  std::size_t PostambleOffset() const {
    return TrailerOffset() + kTrailerOctets;
  }
  std::size_t TotalOctets() const {
    return PostambleOffset() + kSyncSuffixOctets;
  }

  std::size_t TotalSymbols() const { return TotalOctets() * 2; }
  std::size_t TotalChips() const { return TotalSymbols() * 32; }

  // Octets between SFD and postamble (header..trailer): the region a
  // preamble-synchronized receiver decodes.
  std::size_t BodyOctets() const {
    return TotalOctets() - kSyncPrefixOctets - kSyncSuffixOctets;
  }

 private:
  std::size_t payload_octets_;
};

// Builds the complete on-air octet sequence for a frame.
std::vector<std::uint8_t> BuildFrameOctets(const FrameHeader& header,
                                           std::span<const std::uint8_t> payload);

// CRC-32 of a payload (the PCRC field value).
std::uint32_t PayloadCrc(std::span<const std::uint8_t> payload);

// Reference sync-pattern octets for the correlators.
std::vector<std::uint8_t> PreamblePatternOctets();   // 0x00 x4, 0xA7
std::vector<std::uint8_t> PostamblePatternOctets();  // 0xFF x4, 0xE5

}  // namespace ppr::frame
