// Fragmented-CRC payloads (section 3.4): the payload is split into
// fragments, each followed by a 32-bit CRC over the preceding fragment,
// so a receiver can deliver the fragments that verify and discard only
// the corrupted ones. This is the paper's strongest SoftPHY-free
// baseline (Table 2 picks the best fragment count post-facto).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ppr::frame {

// How a payload of `payload_octets` splits into `num_fragments` pieces:
// sizes are as even as possible (first `Remainder()` fragments get one
// extra octet).
class FragmentPlan {
 public:
  FragmentPlan(std::size_t payload_octets, std::size_t num_fragments);

  std::size_t num_fragments() const { return num_fragments_; }
  std::size_t payload_octets() const { return payload_octets_; }

  std::size_t FragmentSize(std::size_t index) const;
  // Offset of fragment `index` within the original (un-fragmented)
  // payload.
  std::size_t FragmentOffset(std::size_t index) const;

  // On-air octets: payload plus one CRC-32 per fragment.
  std::size_t WireOctets() const {
    return payload_octets_ + 4 * num_fragments_;
  }

 private:
  std::size_t payload_octets_;
  std::size_t num_fragments_;
};

// Interleaves per-fragment CRC-32s into the payload:
//   frag0 CRC0 frag1 CRC1 ... fragF-1 CRCF-1
std::vector<std::uint8_t> BuildFragmentedPayload(
    std::span<const std::uint8_t> payload, const FragmentPlan& plan);

struct FragmentCheckResult {
  std::vector<bool> fragment_ok;       // per fragment, CRC verified
  std::vector<std::uint8_t> payload;   // reassembled payload, zeros where bad
  std::size_t delivered_octets = 0;    // octets in verified fragments
};

// Verifies each fragment of a received wire payload (possibly corrupted)
// and reassembles the deliverable portion. `wire` must have exactly
// plan.WireOctets() octets.
FragmentCheckResult CheckFragmentedPayload(std::span<const std::uint8_t> wire,
                                           const FragmentPlan& plan);

}  // namespace ppr::frame
