#include "frame/frame_format.h"

#include <cassert>

#include "common/crc.h"

namespace ppr::frame {
namespace {

void AppendU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

std::uint16_t ReadU16(std::span<const std::uint8_t> bytes, std::size_t pos) {
  return static_cast<std::uint16_t>((bytes[pos] << 8) | bytes[pos + 1]);
}

}  // namespace

std::vector<std::uint8_t> EncodeHeader(const FrameHeader& header) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderOctets);
  AppendU16(out, header.length);
  AppendU16(out, header.dst);
  AppendU16(out, header.src);
  AppendU16(out, header.seq);
  const std::uint16_t crc = Crc16({out.data(), kHeaderFieldOctets});
  AppendU16(out, crc);
  return out;
}

std::optional<FrameHeader> DecodeHeader(std::span<const std::uint8_t> octets) {
  if (octets.size() < kHeaderOctets) return std::nullopt;
  const std::uint16_t expect = Crc16(octets.subspan(0, kHeaderFieldOctets));
  const std::uint16_t got = ReadU16(octets, kHeaderFieldOctets);
  if (expect != got) return std::nullopt;
  FrameHeader h;
  h.length = ReadU16(octets, 0);
  h.dst = ReadU16(octets, 2);
  h.src = ReadU16(octets, 4);
  h.seq = ReadU16(octets, 6);
  return h;
}

FrameLayout::FrameLayout(std::size_t payload_octets)
    : payload_octets_(payload_octets) {}

std::vector<std::uint8_t> BuildFrameOctets(
    const FrameHeader& header, std::span<const std::uint8_t> payload) {
  assert(header.length == payload.size());
  const FrameLayout layout(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(layout.TotalOctets());

  for (std::size_t i = 0; i < kPreambleOctets; ++i) {
    out.push_back(kPreambleOctet);
  }
  out.push_back(kSfdOctet);

  const auto header_octets = EncodeHeader(header);
  out.insert(out.end(), header_octets.begin(), header_octets.end());

  out.insert(out.end(), payload.begin(), payload.end());
  AppendU32(out, PayloadCrc(payload));

  // Trailer replicates the header (fields + its own CRC-16).
  out.insert(out.end(), header_octets.begin(), header_octets.end());

  for (std::size_t i = 0; i < kPostambleOctets; ++i) {
    out.push_back(kPostambleOctet);
  }
  out.push_back(kPostSfdOctet);

  assert(out.size() == layout.TotalOctets());
  return out;
}

std::uint32_t PayloadCrc(std::span<const std::uint8_t> payload) {
  return Crc32(payload);
}

std::vector<std::uint8_t> PreamblePatternOctets() {
  std::vector<std::uint8_t> out(kPreambleOctets, kPreambleOctet);
  out.push_back(kSfdOctet);
  return out;
}

std::vector<std::uint8_t> PostamblePatternOctets() {
  std::vector<std::uint8_t> out(kPostambleOctets, kPostambleOctet);
  out.push_back(kPostSfdOctet);
  return out;
}

}  // namespace ppr::frame
