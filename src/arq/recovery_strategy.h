// Pluggable recovery strategies for PP-ARQ.
//
// A strategy owns one question: given the receiver's view of a partial
// packet, what does the sender put on the air to finish it? Two
// implementations ship:
//
//   kChunkRetransmit — the paper's protocol: the receiver's dynamic
//     program picks chunks, the sender retransmits exactly those bits
//     (PpArqSender/PpArqReceiver, unchanged).
//   kCodedRepair — the S-PRAC/Crelay direction: feedback carries only a
//     deficit count, and the sender streams systematic RLNC repair
//     symbols (src/fec/) until the receiver's decoder reaches full rank.
//     Repair symbols carry their own CRC-32, so corrupted ones are
//     dropped rather than poisoning the basis, and any overhearing node
//     could in principle contribute symbols — the hook for future
//     relay-assisted strategies.
//
// Both sides of a strategy share a wire format for feedback; the run
// loop (arq/link_sim.h: RunRecoveryExchange) only moves opaque bits.
// Frame descriptors (ranges, coefficient seeds) travel reliably with
// each repair frame, exactly as chunk-mode segment descriptors do.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arq/pp_arq.h"
#include "common/bitvec.h"
#include "phy/despreader.h"

namespace ppr::arq {

// One forward-direction repair frame.
struct RepairFrame {
  // Chunk mode: the segment's codeword extent in the packet body.
  // Coded mode: the extent of this frame's own bits (offset 0).
  CodewordRange range;
  std::uint32_t aux = 0;  // coded mode: repair-coefficient seed
  BitVec bits;            // crosses the body channel
};

struct RepairPlan {
  std::vector<RepairFrame> frames;
  // Airtime of the whole plan, descriptors included (chunk mode: the
  // EncodeRetransmission wire size).
  std::size_t wire_bits = 0;
};

// A repair frame as decoded at the receiver.
struct ReceivedRepairFrame {
  CodewordRange range;
  std::uint32_t aux = 0;
  std::vector<phy::DecodedSymbol> symbols;
};

class RecoverySender {
 public:
  virtual ~RecoverySender() = default;

  // Builds the repair plan answering one feedback wire. Feedback frames
  // are reliable at this layer, so an unparsable wire is a codec bug:
  // implementations throw std::logic_error rather than limping on.
  virtual RepairPlan HandleFeedback(const BitVec& feedback_wire) = 0;
};

class RecoveryReceiver {
 public:
  virtual ~RecoveryReceiver() = default;

  // Initial reception of the whole body, one DecodedSymbol per codeword.
  virtual void IngestInitial(
      const std::vector<phy::DecodedSymbol>& symbols) = 0;

  virtual bool Complete() const = 0;

  // Wire feedback for the next round; nullopt once Complete().
  virtual std::optional<BitVec> BuildFeedbackWire() = 0;

  virtual void IngestRepair(
      const std::vector<ReceivedRepairFrame>& frames) = 0;

  virtual BitVec AssembledPayload() const = 0;

  virtual std::size_t rounds() const = 0;
};

// Factory pairing the two ends of one strategy.
class RecoveryStrategy {
 public:
  virtual ~RecoveryStrategy() = default;

  virtual const char* Name() const = 0;

  // `body_bits` is payload || CRC-32 (PpArqSender::MakeBody).
  virtual std::unique_ptr<RecoverySender> MakeSender(
      const BitVec& body_bits, std::uint16_t seq) const = 0;

  virtual std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const = 0;
};

// Builds the strategy selected by `config.recovery`.
std::unique_ptr<RecoveryStrategy> MakeRecoveryStrategy(
    const PpArqConfig& config);

}  // namespace ppr::arq
