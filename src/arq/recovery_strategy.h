// Pluggable recovery strategies for PP-ARQ.
//
// A strategy owns one question: given the receiver's view of a partial
// packet, what goes on the air to finish it? Four implementations ship:
//
//   kChunkRetransmit — the paper's protocol: the receiver's dynamic
//     program picks chunks, the sender retransmits exactly those bits
//     (PpArqSender/PpArqReceiver, unchanged).
//   kCodedRepair — the S-PRAC direction: feedback carries a requested
//     repair count (sized adaptively, arq/adaptive_burst.h), and the
//     sender streams systematic RLNC repair symbols (src/fec/) until
//     the receiver's decoder reaches full rank. Repair symbols carry
//     their own CRC-32, so corrupted ones are dropped rather than
//     poisoning the basis.
//   kRelayCodedRepair — the Crelay direction, generalized to N relays:
//     overhearing relays with their own partial copies of the initial
//     transmission also answer the destination's (broadcast) feedback,
//     each streaming masked RLNC equations from its own partition of
//     the seed space; the destination splits each round's burst across
//     all repair parties in proportion to their observed delivery
//     rates, and the session engine schedules relay airtime
//     (ExOR-style ranking + per-round budget, recovery_session.h).
//   kCollisionResolve — coded repair composed with the collision
//     listener (src/collide/): the receiver also implements
//     CollisionEquationConsumer, banking equations distilled from
//     collided receptions into the same decoder session under a
//     collision provenance tag.
//
// All parties of a strategy share a wire format for feedback; the run
// loops (arq/link_sim.h: RunRecoveryExchange for the duplex case,
// arq/recovery_session.h for multi-party) only move opaque bits. Frame
// descriptors (ranges, coefficient seeds, masks) travel reliably with
// each repair frame, exactly as chunk-mode segment descriptors do.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "arq/pp_arq.h"
#include "collide/equations.h"
#include "common/bitvec.h"
#include "phy/despreader.h"

namespace ppr::arq {

// One forward-direction repair frame.
struct RepairFrame {
  RepairFrame() = default;
  RepairFrame(CodewordRange r, std::uint32_t a, BitVec b)
      : range(r), aux(a), bits(std::move(b)) {}

  // Chunk mode: the segment's codeword extent in the packet body.
  // Coded mode: the extent of this frame's own bits (offset 0).
  CodewordRange range;
  std::uint32_t aux = 0;  // coded mode: base repair-coefficient seed
  BitVec bits;            // crosses the body channel
  // Relay-coded descriptor extras, carried reliably like range/aux.
  // `origin` is the repair party (0 = source, 1+ = relay id); a
  // non-empty `coef_mask` (one bit per FEC source symbol) restricts the
  // seed's coefficient vector to the symbols the origin actually holds;
  // `suspicion` is the origin's worst SoftPHY hint across those
  // symbols, ordering eviction if the equation turns out poisoned.
  std::uint8_t origin = 0;
  BitVec coef_mask;
  double suspicion = 0.0;
};

struct RepairPlan {
  std::vector<RepairFrame> frames;
  // Airtime of the whole plan, descriptors included (chunk mode: the
  // EncodeRetransmission wire size).
  std::size_t wire_bits = 0;
};

// A repair frame as decoded at the receiver.
struct ReceivedRepairFrame {
  ReceivedRepairFrame() = default;
  ReceivedRepairFrame(CodewordRange r, std::uint32_t a,
                      std::vector<phy::DecodedSymbol> s)
      : range(r), aux(a), symbols(std::move(s)) {}

  CodewordRange range;
  std::uint32_t aux = 0;
  std::vector<phy::DecodedSymbol> symbols;
  std::uint8_t origin = 0;
  BitVec coef_mask;
  double suspicion = 0.0;
};

// The generalized coded feedback wire: seq, then an explicit party
// count, then one requested repair-symbol count per party — index 0 is
// always the source, 1..N the relay ids. Two-party coded repair is the
// party_count == 1 special case; the original Crelay wire's fixed
// (requested_src, requested_relay) pair is party_count == 2. Zero
// counts are legal (a party the destination wants silent this round).
struct CodedFeedbackWire {
  std::uint16_t seq = 0;
  std::vector<std::size_t> requested;  // index = repair party id

  bool operator==(const CodedFeedbackWire&) const = default;
};

// Wire layout: seq (16 bits), party_count (8 bits, >= 1), then
// party_count 16-bit counts. Decode returns nullopt on a truncated
// wire or a zero party count.
BitVec EncodeCodedFeedbackWire(const CodedFeedbackWire& feedback);
std::optional<CodedFeedbackWire> DecodeCodedFeedbackWire(const BitVec& wire);

class RecoverySender {
 public:
  virtual ~RecoverySender() = default;

  // Builds the repair plan answering one feedback wire. Feedback frames
  // are reliable at this layer, so an unparsable wire is a codec bug:
  // implementations throw std::logic_error rather than limping on.
  virtual RepairPlan HandleFeedback(const BitVec& feedback_wire) = 0;
};

class RecoveryReceiver {
 public:
  virtual ~RecoveryReceiver() = default;

  // Initial reception of the whole body, one DecodedSymbol per codeword.
  virtual void IngestInitial(
      const std::vector<phy::DecodedSymbol>& symbols) = 0;

  virtual bool Complete() const = 0;

  // Wire feedback for the next round; nullopt once Complete().
  virtual std::optional<BitVec> BuildFeedbackWire() = 0;

  virtual void IngestRepair(
      const std::vector<ReceivedRepairFrame>& frames) = 0;

  virtual BitVec AssembledPayload() const = 0;

  virtual std::size_t rounds() const = 0;
};

// Side door for the collision-resolution listener (src/collide/): a
// receiver that additionally accepts GF(256) equations distilled from
// collided receptions. kCollisionResolve receivers implement this
// alongside RecoveryReceiver; callers discover it by dynamic_cast so
// the base interface stays untouched for every other strategy.
class CollisionEquationConsumer {
 public:
  virtual ~CollisionEquationConsumer() = default;

  // Banks the equations into the decoder (evictable, under the
  // collision provenance tag) and returns the rank actually gained.
  // Equations whose coefficient width does not match the FEC block are
  // skipped.
  virtual std::size_t IngestCollisionEquations(
      const std::vector<collide::CollisionEquation>& equations) = 0;
};

// Multi-party session roles (arq/recovery_session.h). Every strategy
// can be driven as a session: the default source/destination
// participants wrap MakeSender/MakeReceiver, and strategies without a
// relay role return nullptr from MakeRelayParticipant.
class RecoveryParticipant;
class DestinationParticipant;

// Factory for the parties of one strategy.
class RecoveryStrategy {
 public:
  virtual ~RecoveryStrategy() = default;

  virtual const char* Name() const = 0;

  // `body_bits` is payload || CRC-32 (PpArqSender::MakeBody).
  virtual std::unique_ptr<RecoverySender> MakeSender(
      const BitVec& body_bits, std::uint16_t seq) const = 0;

  virtual std::unique_ptr<RecoveryReceiver> MakeReceiver(
      std::uint16_t seq, std::size_t total_codewords) const = 0;

  // Session roles. The defaults (recovery_session.cc) adapt the duplex
  // pair above, so two-party sessions behave exactly like the legacy
  // sender/receiver exchange.
  virtual std::unique_ptr<RecoveryParticipant> MakeSourceParticipant(
      const BitVec& body_bits, std::uint16_t seq) const;
  virtual std::unique_ptr<DestinationParticipant> MakeDestinationParticipant(
      std::uint16_t seq, std::size_t total_codewords) const;
  // An overhearing relay (relay_id >= 1 keys its repair-seed partition);
  // nullptr when the strategy has no relay role.
  virtual std::unique_ptr<RecoveryParticipant> MakeRelayParticipant(
      std::uint8_t relay_id, std::uint16_t seq,
      std::size_t total_codewords) const;
};

// Builds the strategy selected by `config.recovery`.
std::unique_ptr<RecoveryStrategy> MakeRecoveryStrategy(
    const PpArqConfig& config);

}  // namespace ppr::arq
