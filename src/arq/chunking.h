// PP-ARQ receiver-side chunking (section 5.1): given the run-length
// representation of a partially-received packet, choose which chunks
// (consecutive groups of bad runs, possibly swallowing the short good
// runs between them) to request for retransmission, minimizing the
// expected feedback-plus-retransmission bit cost.
//
// Cost model, following Equations 4 and 5 of the paper with lengths in
// bits:
//   C(c_ii)  = log2(S) + log2(lambda^b_i) + min(lambda^g_i, lambda_C)
//   C(c_ij)  = min( 2*log2(S) + sum_{l=i..j-1} lambda^g_l,
//                   min_{k in [i, j)} C(c_ik) + C(c_k+1,j) )
// where S is the packet size in bits and lambda_C the checksum length.
// The recursion exhibits optimal substructure over partitions of the bad
// runs into consecutive chunks; the memoized implementation is O(L^3).
#pragma once

#include <cstddef>
#include <vector>

#include "softphy/runlength.h"

namespace ppr::arq {

struct ChunkingConfig {
  std::size_t packet_bits = 0;    // S
  std::size_t checksum_bits = 32; // lambda_C
  std::size_t bits_per_codeword = 4;
};

// One chunk the receiver asks the sender to retransmit: bad runs
// [first_bad_run, last_bad_run] inclusive, with precomputed codeword
// extent within the packet.
struct Chunk {
  std::size_t first_bad_run = 0;
  std::size_t last_bad_run = 0;
  std::size_t offset_codewords = 0;  // start of first bad run
  std::size_t length_codewords = 0;  // through the end of the last bad run

  bool operator==(const Chunk&) const = default;
};

struct ChunkingResult {
  std::vector<Chunk> chunks;  // in packet order
  double cost_bits = 0.0;     // optimal DP cost
};

// Runs the dynamic program on a packet's run-length form. Returns no
// chunks when the packet has no bad runs.
ChunkingResult ComputeOptimalChunks(const softphy::RunLengthForm& runs,
                                    const ChunkingConfig& config);

// Exhaustive reference: enumerates all 2^(L-1) partitions of the bad
// runs into consecutive chunks and returns the cheapest under the same
// cost model. Exponential; only for testing small inputs against the DP.
ChunkingResult ComputeOptimalChunksBruteForce(
    const softphy::RunLengthForm& runs, const ChunkingConfig& config);

// Cost of one chunk [i, j] left intact (the non-split alternative in the
// DP); exposed for tests and for the feedback-size accounting.
double IntactChunkCost(const softphy::RunLengthForm& runs,
                       const ChunkingConfig& config, std::size_t i,
                       std::size_t j);

}  // namespace ppr::arq
