#include "arq/feedback.h"

#include <bit>
#include <cassert>

#include "common/crc.h"

namespace ppr::arq {
namespace {

constexpr unsigned kSeqBits = 16;
constexpr unsigned kCountBits = 16;

// 4-bit alignment so retransmitted segments begin on carrier codeword
// boundaries (each carrier codeword conveys 4 payload bits).
void PadToNibble(BitVec& bits) {
  while (bits.size() % 4 != 0) bits.PushBack(false);
}

std::size_t NibbleAlign(std::size_t pos) { return (pos + 3) & ~std::size_t{3}; }

}  // namespace

unsigned RangeFieldWidth(std::size_t total_codewords) {
  // Enough bits to express any offset in [0, total] and any length in
  // [0, total].
  unsigned width = std::bit_width(total_codewords);
  return width == 0 ? 1 : width;
}

std::vector<CodewordRange> ComputeGaps(
    const std::vector<CodewordRange>& requests, std::size_t total_codewords) {
  std::vector<CodewordRange> gaps;
  std::size_t cursor = 0;
  for (const auto& r : requests) {
    assert(r.offset >= cursor);
    if (r.offset > cursor) {
      gaps.push_back(CodewordRange{cursor, r.offset - cursor});
    }
    cursor = r.offset + r.length;
  }
  if (cursor < total_codewords) {
    gaps.push_back(CodewordRange{cursor, total_codewords - cursor});
  }
  return gaps;
}

BitVec EncodeFeedback(const FeedbackPacket& feedback,
                      const BitVec& assembled_bits,
                      std::size_t total_codewords,
                      std::size_t bits_per_codeword,
                      std::size_t checksum_bits) {
  assert(assembled_bits.size() == total_codewords * bits_per_codeword);
  const unsigned width = RangeFieldWidth(total_codewords);
  BitVec wire;
  wire.AppendUint(feedback.seq, kSeqBits);
  wire.AppendUint(feedback.requests.size(), kCountBits);
  for (const auto& r : feedback.requests) {
    wire.AppendUint(r.offset, width);
    wire.AppendUint(r.length, width);
  }
  // Gap verification data in deterministic order.
  for (const auto& gap : ComputeGaps(feedback.requests, total_codewords)) {
    const std::size_t gap_bits = gap.length * bits_per_codeword;
    const BitVec gap_data =
        assembled_bits.Slice(gap.offset * bits_per_codeword, gap_bits);
    if (gap_bits < checksum_bits) {
      wire.AppendBits(gap_data);  // literal bits, cheaper than a checksum
    } else {
      wire.AppendUint(Crc32Bits(gap_data), 32);
    }
  }
  return wire;
}

std::optional<DecodedFeedback> DecodeFeedback(const BitVec& wire,
                                              std::size_t total_codewords,
                                              std::size_t bits_per_codeword,
                                              std::size_t checksum_bits) {
  const unsigned width = RangeFieldWidth(total_codewords);
  std::size_t pos = 0;
  const auto have = [&](std::size_t n) { return pos + n <= wire.size(); };

  if (!have(kSeqBits + kCountBits)) return std::nullopt;
  DecodedFeedback out;
  out.feedback.seq = static_cast<std::uint16_t>(wire.ReadUint(pos, kSeqBits));
  pos += kSeqBits;
  const std::size_t count = wire.ReadUint(pos, kCountBits);
  pos += kCountBits;

  std::size_t cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!have(2u * width)) return std::nullopt;
    CodewordRange r;
    r.offset = wire.ReadUint(pos, width);
    pos += width;
    r.length = wire.ReadUint(pos, width);
    pos += width;
    // Structural validation: ranges must be in order and in bounds.
    if (r.length == 0 || r.offset < cursor ||
        r.offset + r.length > total_codewords) {
      return std::nullopt;
    }
    cursor = r.offset + r.length;
    out.feedback.requests.push_back(r);
  }

  for (const auto& gap :
       ComputeGaps(out.feedback.requests, total_codewords)) {
    GapCheck check;
    check.range = gap;
    const std::size_t gap_bits = gap.length * bits_per_codeword;
    if (gap_bits < checksum_bits) {
      if (!have(gap_bits)) return std::nullopt;
      check.literal = true;
      check.literal_bits = wire.Slice(pos, gap_bits);
      pos += gap_bits;
    } else {
      if (!have(32)) return std::nullopt;
      check.crc32 = static_cast<std::uint32_t>(wire.ReadUint(pos, 32));
      pos += 32;
    }
    out.gaps.push_back(std::move(check));
  }
  return out;
}

BitVec EncodeRetransmission(const RetransmissionPacket& packet,
                            std::size_t total_codewords,
                            [[maybe_unused]] std::size_t bits_per_codeword) {
  const unsigned width = RangeFieldWidth(total_codewords);
  BitVec wire;
  wire.AppendUint(packet.seq, kSeqBits);
  wire.AppendUint(packet.segments.size(), kCountBits);
  for (const auto& seg : packet.segments) {
    wire.AppendUint(seg.range.offset, width);
    wire.AppendUint(seg.range.length, width);
  }
  // Align so every segment's payload bits begin on a carrier codeword
  // boundary and per-codeword SoftPHY hints map one-to-one.
  PadToNibble(wire);
  for (const auto& seg : packet.segments) {
    assert(seg.bits.size() == seg.range.length * bits_per_codeword);
    wire.AppendBits(seg.bits);
    PadToNibble(wire);
  }
  return wire;
}

std::optional<RetransmissionPacket> DecodeRetransmission(
    const BitVec& wire, std::size_t total_codewords,
    std::size_t bits_per_codeword) {
  const unsigned width = RangeFieldWidth(total_codewords);
  std::size_t pos = 0;
  const auto have = [&](std::size_t n) { return pos + n <= wire.size(); };

  if (!have(kSeqBits + kCountBits)) return std::nullopt;
  RetransmissionPacket out;
  out.seq = static_cast<std::uint16_t>(wire.ReadUint(pos, kSeqBits));
  pos += kSeqBits;
  const std::size_t count = wire.ReadUint(pos, kCountBits);
  pos += kCountBits;

  std::vector<CodewordRange> ranges;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!have(2u * width)) return std::nullopt;
    CodewordRange r;
    r.offset = wire.ReadUint(pos, width);
    pos += width;
    r.length = wire.ReadUint(pos, width);
    pos += width;
    if (r.length == 0 || r.offset < cursor ||
        r.offset + r.length > total_codewords) {
      return std::nullopt;
    }
    cursor = r.offset + r.length;
    ranges.push_back(r);
  }

  pos = NibbleAlign(pos);
  for (const auto& r : ranges) {
    const std::size_t seg_bits = r.length * bits_per_codeword;
    if (!have(seg_bits)) return std::nullopt;
    RetransmitSegment seg;
    seg.range = r;
    seg.bits = wire.Slice(pos, seg_bits);
    pos += seg_bits;
    pos = NibbleAlign(pos);
    out.segments.push_back(std::move(seg));
  }
  return out;
}

}  // namespace ppr::arq
