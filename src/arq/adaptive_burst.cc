#include "arq/adaptive_burst.h"

#include <algorithm>
#include <stdexcept>

namespace ppr::arq {

std::size_t BurstSizeForTarget(std::size_t deficit, double delivery_p,
                               double target, std::size_t cap) {
  if (deficit == 0) return 0;
  delivery_p = std::min(delivery_p, 1.0);
  if (delivery_p <= 0.0) {
    throw std::invalid_argument("BurstSizeForTarget: delivery_p must be > 0");
  }
  target = std::clamp(target, 0.0, 1.0);
  if (deficit >= cap) return cap;
  if (delivery_p >= 1.0) return deficit;

  const double q = 1.0 - delivery_p;
  for (std::size_t n = deficit; n < cap; ++n) {
    // P[Binomial(n, p) >= deficit] via the upper-tail sum; terms are
    // built incrementally from C(n, deficit) p^deficit q^(n-deficit).
    double term = 1.0;
    for (std::size_t k = 0; k < deficit; ++k) {
      term *= delivery_p * static_cast<double>(n - k) /
              static_cast<double>(deficit - k);
    }
    for (std::size_t k = 0; k < n - deficit; ++k) term *= q;
    double tail = term;
    for (std::size_t k = deficit; k < n && tail < target; ++k) {
      // term(k+1) = term(k) * (n-k)/(k+1) * p/q.
      term *= static_cast<double>(n - k) / static_cast<double>(k + 1) *
              delivery_p / q;
      tail += term;
    }
    if (tail >= target) return n;
  }
  return cap;
}

RepairDeliveryEstimator::RepairDeliveryEstimator(double prior)
    : prior_(std::clamp(prior, kFloor, 1.0)) {}

double RepairDeliveryEstimator::DeliveryRate() const {
  if (requested_ == 0) return prior_;
  const double rate =
      static_cast<double>(delivered_) / static_cast<double>(requested_);
  return std::clamp(rate, kFloor, 1.0);
}

}  // namespace ppr::arq
