// Single-link ARQ exchanges over a pluggable symbol channel.
//
// The channel abstraction maps transmitted bits to received
// DecodedSymbols (one per 4-bit codeword, with SoftPHY hints), letting
// the same ARQ logic run over (a) a memoryless chip-error channel,
// (b) a Gilbert-Elliott bursty channel — collisions and fades produce
// bursts of bad codewords, the regime PP-ARQ's chunking is designed
// for — or (c) the full waveform PHY (src/ppr/link.h).
//
// Feedback frames are modeled as reliable: they are short, and the paper
// likewise evaluates forward-link recovery (section 7.5).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "arq/pp_arq.h"
#include "arq/recovery_strategy.h"
#include "common/bitvec.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"
#include "phy/despreader.h"

namespace ppr::arq {

// Maps transmitted bits (a multiple of 4) to received codewords.
using BodyChannel =
    std::function<std::vector<phy::DecodedSymbol>(const BitVec&)>;

// One transmission heard by several listeners at once: returns one
// reception (a vector of DecodedSymbols) per registered listener, in
// listener order. Backed by a shared medium (arq/chip_medium.h,
// ppr/medium.h) the receptions are correlated — the same interferer
// draw projected through each listener's own geometry; backed by
// private per-hop channels they are independent.
using BroadcastBodyChannel =
    std::function<std::vector<std::vector<phy::DecodedSymbol>>(const BitVec&)>;

// How collisions correlate across the co-located listeners of one
// transmission. The paper's testbed is a broadcast medium: an
// interferer that collides with a transmission hits the destination
// AND the overhearing relays, so private per-hop collision draws
// (kIndependent, the legacy model) systematically overstate how often
// a relay holds a clean copy exactly when the destination needs one.
enum class CollisionCorrelation {
  kIndependent,       // each hop draws its own collisions (legacy)
  kSharedInterferer,  // one interferer draw per transmission, projected
                      // through every listener
};

struct ArqRunStats {
  bool success = false;
  std::size_t data_transmissions = 0;  // initial + retransmission frames
  std::size_t forward_bits = 0;        // data-direction bits on the air
  std::size_t feedback_bits = 0;       // reverse-direction bits
  // Size in bits of each retransmission frame (Figure 16 plots the CDF
  // of these, in bytes, for PP-ARQ).
  std::vector<std::size_t> retransmission_bits;
};

// Runs a full PP-ARQ exchange for one packet payload under the recovery
// strategy `config.recovery` selects (chunk retransmission by default).
// `max_rounds` bounds total feedback rounds (beyond PpArqConfig
// escalation).
ArqRunStats RunPpArqExchange(const BitVec& payload_bits,
                             const PpArqConfig& config,
                             const BodyChannel& channel,
                             std::size_t max_rounds = 32);

// Same exchange with an explicit strategy instance (e.g. to reuse one
// strategy across packets or to plug in a custom implementation).
ArqRunStats RunRecoveryExchange(const BitVec& payload_bits,
                                const PpArqConfig& config,
                                const RecoveryStrategy& strategy,
                                const BodyChannel& channel,
                                std::size_t max_rounds = 32);

// Status quo: retransmit the whole packet until its CRC-32 verifies.
ArqRunStats RunWholePacketArq(const BitVec& payload_bits,
                              const BodyChannel& channel,
                              std::size_t max_rounds = 32);

// Fragmented-CRC ARQ: per-fragment CRC-32s; each round retransmits only
// the fragments that have not yet verified; feedback is a one-bit-per-
// fragment bitmap.
ArqRunStats RunFragmentedArq(const BitVec& payload_bits,
                             std::size_t num_fragments,
                             const BodyChannel& channel,
                             std::size_t max_rounds = 32);

// Memoryless channel: every chip flips with probability `chip_error_p`;
// codewords decode through the real despreader, so hints are genuine
// Hamming distances.
BodyChannel MakeChipErrorChannel(const phy::ChipCodebook& codebook,
                                 double chip_error_p, Rng& rng);

// Gilbert-Elliott bursty channel: a two-state Markov chain (good/bad)
// advances per codeword; chips flip at the state's error rate. Models
// collision bursts.
struct GilbertElliottParams {
  double p_good_to_bad = 0.01;
  double p_bad_to_good = 0.2;
  double chip_error_good = 0.001;
  double chip_error_bad = 0.2;
};

BodyChannel MakeGilbertElliottChannel(const phy::ChipCodebook& codebook,
                                      const GilbertElliottParams& params,
                                      Rng& rng);

// Extracts the logical bit stream from ARQ-layer codewords (codeword i
// carries bits [4i, 4i+4), MSB first).
BitVec SymbolsToLogicalBits(const std::vector<phy::DecodedSymbol>& symbols);

// Decodes one logical nibble through the codebook with each chip
// flipped independently at `chip_error_p`: the primitive the synthetic
// channels above and the chip-level broadcast medium
// (arq/chip_medium.h) share.
phy::DecodedSymbol ChipTransmitNibble(const phy::ChipCodebook& codebook,
                                      std::uint8_t nibble,
                                      double chip_error_p, Rng& rng);

}  // namespace ppr::arq
