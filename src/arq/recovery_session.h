// Multi-party recovery session: the message-routed protocol engine that
// replaced the hard-coded sender/receiver duplex loop.
//
// A session is a set of RecoveryParticipants — one source, one
// destination, any number of overhearing relays — connected by directed
// edges, each with its own BodyChannel (loss process). Participants
// never see the topology: they ingest typed, addressed SessionMessages
// (kFeedback, kRepair) and emit messages in response; the RecoverySession
// engine routes every emitted message, pushing repair bits through the
// per-edge channel of each (from, to) hop so a relay->destination hop
// suffers its own corruption, independent of the source's.
//
// One round = the destination opens with its feedback (broadcast:
// every other party hears it for free — feedback frames are tiny and
// modeled reliable, as in arq/link_sim.h), then every reply is routed
// until the round drains: the source answers feedback with repair, a
// relay answers with its own repair, the destination ingests both.
//
// The two-party configuration reproduces the legacy
// RunRecoveryExchange loop exactly — same channel draw order, same
// accounting — which is what keeps kChunkRetransmit bit-for-bit
// identical under the redesign. Any number of relays plug in as
// additional participants and edges.
//
// Relay airtime scheduling (ExOR-style): when a per-round relay
// airtime budget is set, the engine services relay parties in
// descending order of their self-reported RepairQuality (the observed
// bottleneck quality of their overheard copy; ties broken by party id)
// and hands each the budget still unspent this round. A relay
// truncates its burst to fit and defers outright when nothing remains,
// so a dense overhearer set cannot all stream at once — exactly the
// deferral discipline ExOR's forwarder list imposes on opportunistic
// next hops. The source is never budgeted: its repair stream is the
// correctness backstop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "arq/link_sim.h"
#include "arq/recovery_strategy.h"
#include "common/bitvec.h"

namespace ppr::arq {

using PartyId = std::size_t;
inline constexpr PartyId kBroadcastId = static_cast<PartyId>(-1);
// "No budget": an effectively infinite per-round relay airtime budget.
inline constexpr std::size_t kNoAirtimeBudget = static_cast<std::size_t>(-1);

enum class PartyRole { kSource, kDestination, kRelay };
enum class SessionMessageType { kFeedback, kRepair };

// A message as emitted by a participant. `from` is stamped by the
// engine; `to` defaults to broadcast (every other party).
struct SessionMessage {
  SessionMessageType type = SessionMessageType::kFeedback;
  PartyId from = kBroadcastId;
  PartyId to = kBroadcastId;
  BitVec feedback_wire;             // kFeedback: reliable control bits
  std::vector<RepairFrame> frames;  // kRepair: bits cross the edge channel
  // Airtime of the whole message, descriptors included. Ignored for
  // kFeedback (the wire's size is the airtime).
  std::size_t wire_bits = 0;
};

// The same message as seen by one recipient: repair bits have crossed
// that recipient's edge channel and arrive as decoded codewords.
struct DeliveredMessage {
  SessionMessageType type = SessionMessageType::kFeedback;
  PartyId from = kBroadcastId;
  PartyId to = kBroadcastId;
  BitVec feedback_wire;
  std::vector<ReceivedRepairFrame> frames;
  // Relay parties only: the round's still-unspent relay airtime (bits)
  // at the moment this message reached them. A budgeted relay must
  // keep its repair reply's wire_bits within this, truncating or
  // deferring as needed; kNoAirtimeBudget means unbudgeted.
  std::size_t relay_budget_bits = kNoAirtimeBudget;
};

class RecoveryParticipant {
 public:
  virtual ~RecoveryParticipant() = default;

  virtual PartyRole role() const = 0;

  // This party's own copy of the initial transmission, as heard over its
  // edge from the source (one DecodedSymbol per codeword). Parties with
  // no edge from the source are never called.
  virtual void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) = 0;

  // Round opener; only the destination emits here (its feedback). An
  // empty result from the destination ends the exchange.
  virtual std::vector<SessionMessage> StartRound() { return {}; }

  // ExOR-style self-ranking for relay airtime scheduling: relays
  // return their observed bottleneck quality (higher = served first
  // when a round's relay airtime is budgeted). Non-relay parties keep
  // the default.
  virtual double RepairQuality() { return 0.0; }

  // Typed, addressed ingest; replies are routed within the same round.
  virtual std::vector<SessionMessage> HandleMessage(
      const DeliveredMessage& msg) = 0;
};

// The destination additionally owns completion and the assembled packet.
class DestinationParticipant : public RecoveryParticipant {
 public:
  PartyRole role() const final { return PartyRole::kDestination; }
  virtual bool Complete() const = 0;
  virtual BitVec AssembledPayload() const = 0;
  virtual std::size_t rounds() const = 0;
};

// Adapters: any duplex RecoverySender/RecoveryReceiver pair runs as a
// two-party session. The sender answers each feedback with exactly one
// repair message (even when the plan is empty), preserving the legacy
// loop's per-round accounting.
std::unique_ptr<RecoveryParticipant> MakeSenderParticipant(
    std::unique_ptr<RecoverySender> sender);
std::unique_ptr<DestinationParticipant> MakeReceiverParticipant(
    std::unique_ptr<RecoveryReceiver> receiver);

// Per-party traffic, indexed by PartyId (the destination's entry counts
// its feedback; repair parties count data-direction airtime after the
// initial transmission).
struct PartyTraffic {
  std::size_t repair_bits = 0;
  std::size_t repair_messages = 0;
  std::size_t feedback_bits = 0;
};

struct SessionRunStats {
  ArqRunStats totals;
  std::vector<PartyTraffic> parties;
  // Feedback rounds executed. Not derivable from
  // totals.data_transmissions in multi-party sessions, where one round
  // can carry several repair messages.
  std::size_t rounds = 0;
  // Relay airtime scheduling: the largest per-round total of relay
  // repair bits (the quantity a finite budget caps), and how many
  // budgeted feedback deliveries to a relay produced no repair reply —
  // its turn in the ExOR order came with too little of the round's
  // airtime left to afford a frame, so it deferred. (Only ticks when a
  // budget is set; a relay silenced for other reasons — zero requested,
  // nothing trusted — also counts, so read it as "budgeted turns that
  // put nothing on the air".)
  std::size_t max_round_relay_bits = 0;
  std::size_t relay_deferrals = 0;
};

// One directed data edge: the loss process for repair bits on the
// from -> to hop. Feedback does not consult channels (reliable); a
// kRepair message is simply not heard on edges without a channel.
struct SessionEdge {
  PartyId from = kBroadcastId;
  PartyId to = kBroadcastId;
  BodyChannel channel;
};

// Correlated initial delivery: TransmitInitial(from, body) makes ONE
// transmission on `channel` and hands reception i to listeners[i],
// instead of pushing the body through each per-edge channel privately.
// Edges from `from` then carry only post-initial (repair) traffic.
// Backed by a shared medium (arq/chip_medium.h or ppr/medium.h) this
// is what makes collisions hit the destination and the overhearing
// relays together.
struct SessionBroadcast {
  PartyId from = kBroadcastId;
  std::vector<PartyId> listeners;
  BroadcastBodyChannel channel;
};

// The whole topology a session needs, consumed at construction. Party
// ids are assigned later by AddParty in call order, so edges name
// parties that do not exist yet; the session validates the topology
// against the roster when traffic first moves (TransmitInitial / Run).
struct SessionConfig {
  std::vector<SessionEdge> edges;
  std::optional<SessionBroadcast> initial_broadcast;
  // Per-round cap on total relay repair airtime (bits, descriptors
  // included); 0 means unlimited. See the ExOR scheduling note atop
  // this header.
  std::size_t relay_airtime_budget_bits = 0;
};

class RecoverySession {
 public:
  // A session with no edges; the deprecated setters below can still
  // patch the topology in afterwards.
  RecoverySession() = default;

  // The immutable-topology form: every edge, the optional initial
  // broadcast, and the relay budget arrive together and never change.
  explicit RecoverySession(SessionConfig config);

  // Registers a participant; ids are assigned in call order and double
  // as the routing order for broadcast delivery. Exactly one
  // destination is required by Run().
  PartyId AddParty(std::unique_ptr<RecoveryParticipant> participant);

  // DEPRECATED forwarding shims, kept one release so callers migrate
  // to SessionConfig incrementally. These validate eagerly against the
  // current roster (the historical behavior); the config path defers
  // validation to first traffic.
  void SetEdgeChannel(PartyId from, PartyId to, BodyChannel channel);
  void SetInitialBroadcast(PartyId from, std::vector<PartyId> listeners,
                           BroadcastBodyChannel channel);
  void SetRelayAirtimeBudget(std::size_t bits_per_round);

  // The initial packet transmission: one broadcast from `source`; every
  // party with an incoming edge from it ingests its own loss-process
  // copy. Counts one data transmission of body.size() bits.
  void TransmitInitial(PartyId source, const BitVec& body);

  // Runs feedback rounds until the destination stops emitting feedback
  // or max_rounds is reached.
  SessionRunStats Run(std::size_t max_rounds);

  // One feedback round, scheduler-steppable (the flow engine drives
  // many sessions by interleaving RunRound calls): the destination
  // opens, every reply routes until the round drains. Returns false —
  // without counting a round — when the destination emitted no
  // feedback: the exchange is complete and stats().totals.success is
  // already set.
  bool RunRound();

  // Final accounting for a driver that stopped stepping RunRound
  // before it returned false (a round cap): success = destination
  // completeness, exactly as Run()'s max_rounds exit.
  SessionRunStats Conclude();

  const SessionRunStats& stats() const { return stats_; }

  RecoveryParticipant& party(PartyId id) { return *parties_.at(id); }
  std::size_t num_parties() const { return parties_.size(); }

 private:
  DestinationParticipant* Destination() const;
  void ValidateTopology() const;
  void Deliver(const SessionMessage& msg);
  void Account(const SessionMessage& msg);
  std::vector<PartyId> RecipientOrder(const SessionMessage& msg);

  std::vector<std::unique_ptr<RecoveryParticipant>> parties_;
  std::map<std::pair<PartyId, PartyId>, BodyChannel> edges_;
  PartyId broadcast_from_ = kBroadcastId;
  std::vector<PartyId> broadcast_listeners_;
  BroadcastBodyChannel broadcast_channel_;
  SessionRunStats stats_;
  std::size_t relay_airtime_budget_ = kNoAirtimeBudget;  // per round
  std::size_t round_budget_left_ = kNoAirtimeBudget;
  std::size_t round_relay_bits_ = 0;
  bool topology_validated_ = false;
};

// Channels of the canonical three-party (Crelay) topology.
struct RelayExchangeChannels {
  BodyChannel source_to_destination;
  BodyChannel source_to_relay;       // the relay's overheard copy
  BodyChannel relay_to_destination;
};

// Channels of the N-relay topology: relay i (party id
// kSessionRelayId + i, repair party id i + 1) overhears the source on
// source_to_relay[i] and reaches the destination on
// relay_to_destination[i]. The two vectors must be the same length —
// unless `initial_broadcast` is set, in which case source_to_relay may
// be left empty: the broadcast carries the only source -> relay
// traffic (relays never ingest repair), and source_to_destination
// carries the source's post-initial repair frames.
struct MultiRelayExchangeChannels {
  BodyChannel source_to_destination;
  std::vector<BodyChannel> source_to_relay;
  std::vector<BodyChannel> relay_to_destination;
  // Shared-medium initial delivery: one transmission, one reception
  // per listener in session order (destination first, then relays).
  BroadcastBodyChannel initial_broadcast;
};

// Party ids the exchange runners assign (indexes into
// SessionRunStats::parties); relays follow contiguously from
// kSessionRelayId.
inline constexpr PartyId kSessionSourceId = 0;
inline constexpr PartyId kSessionDestinationId = 1;
inline constexpr PartyId kSessionRelayId = 2;

// Runs one packet through a source + N relays + destination session
// under `strategy` (the relay parties come from MakeRelayParticipant
// and must be supported; `config.relay_parties` must cover the roster,
// and `config.relay_airtime_budget_bits` becomes the session's
// per-round relay budget). Every relay overhears the initial
// transmission on its own channel and answers the destination's
// broadcast feedback, scheduled by the engine.
SessionRunStats RunMultiRelayRecoveryExchange(
    const BitVec& payload_bits, const PpArqConfig& config,
    const RecoveryStrategy& strategy,
    const MultiRelayExchangeChannels& channels, std::size_t max_rounds = 32);

// The single-relay special case, preserved as the N=1 configuration.
SessionRunStats RunRelayRecoveryExchange(const BitVec& payload_bits,
                                         const PpArqConfig& config,
                                         const RecoveryStrategy& strategy,
                                         const RelayExchangeChannels& channels,
                                         std::size_t max_rounds = 32);

// Two-party session form of arq/link_sim.h's RunRecoveryExchange,
// exposing the per-party breakdown.
SessionRunStats RunRecoveryExchangeSession(const BitVec& payload_bits,
                                           const PpArqConfig& config,
                                           const RecoveryStrategy& strategy,
                                           const BodyChannel& channel,
                                           std::size_t max_rounds = 32);

}  // namespace ppr::arq
