#include "arq/link_sim.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <stdexcept>

#include "arq/recovery_session.h"
#include "common/crc.h"
#include "phy/channel.h"

namespace ppr::arq {

phy::DecodedSymbol ChipTransmitNibble(const phy::ChipCodebook& codebook,
                                      std::uint8_t nibble,
                                      double chip_error_p, Rng& rng) {
  const phy::ChipWord sent = codebook.Codeword(nibble);
  const phy::ChipWord received =
      sent ^ phy::SampleChipErrorMask(rng, chip_error_p);
  phy::DecodedSymbol d;
  int distance = 0;
  d.symbol = static_cast<std::uint8_t>(codebook.DecodeHard(received, &distance));
  d.hamming_distance = distance;
  d.hint = static_cast<double>(distance);
  return d;
}

BitVec SymbolsToLogicalBits(const std::vector<phy::DecodedSymbol>& symbols) {
  BitVec bits;
  for (const auto& s : symbols) bits.AppendUint(s.symbol, 4);
  return bits;
}

ArqRunStats RunPpArqExchange(const BitVec& payload_bits,
                             const PpArqConfig& config,
                             const BodyChannel& channel,
                             std::size_t max_rounds) {
  const auto strategy = MakeRecoveryStrategy(config);
  return RunRecoveryExchange(payload_bits, config, *strategy, channel,
                             max_rounds);
}

ArqRunStats RunRecoveryExchange(const BitVec& payload_bits,
                                const PpArqConfig& config,
                                const RecoveryStrategy& strategy,
                                const BodyChannel& channel,
                                std::size_t max_rounds) {
  // The duplex exchange is the two-party recovery session
  // (arq/recovery_session.h); the session engine reproduces the legacy
  // loop's channel draw order and accounting exactly.
  return RunRecoveryExchangeSession(payload_bits, config, strategy, channel,
                                    max_rounds)
      .totals;
}

ArqRunStats RunWholePacketArq(const BitVec& payload_bits,
                              const BodyChannel& channel,
                              std::size_t max_rounds) {
  ArqRunStats stats;
  BitVec body = payload_bits;
  body.AppendUint(Crc32Bits(payload_bits), 32);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    stats.forward_bits += body.size();
    ++stats.data_transmissions;
    if (round > 0) stats.retransmission_bits.push_back(body.size());

    const BitVec received = SymbolsToLogicalBits(channel(body));
    const BitVec payload = received.Slice(0, received.size() - 32);
    const auto crc =
        static_cast<std::uint32_t>(received.ReadUint(received.size() - 32, 32));
    stats.feedback_bits += 1;  // ACK/NACK
    if (Crc32Bits(payload) == crc) {
      stats.success = true;
      return stats;
    }
  }
  return stats;
}

ArqRunStats RunFragmentedArq(const BitVec& payload_bits,
                             std::size_t num_fragments,
                             const BodyChannel& channel,
                             std::size_t max_rounds) {
  if (payload_bits.size() % 8 != 0) {
    throw std::invalid_argument("RunFragmentedArq: payload must be octets");
  }
  const std::size_t payload_octets = payload_bits.size() / 8;
  num_fragments = std::min(num_fragments, payload_octets);
  assert(num_fragments > 0);

  // Fragment extents (octet-aligned, as even as possible).
  struct Frag {
    std::size_t bit_offset, bit_len;
    bool have = false;
  };
  std::vector<Frag> frags;
  const std::size_t base = payload_octets / num_fragments;
  const std::size_t rem = payload_octets % num_fragments;
  std::size_t octet = 0;
  for (std::size_t f = 0; f < num_fragments; ++f) {
    const std::size_t size = base + (f < rem ? 1 : 0);
    frags.push_back(Frag{octet * 8, size * 8, false});
    octet += size;
  }

  ArqRunStats stats;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool all = true;
    for (const auto& f : frags) all = all && f.have;
    if (all) {
      stats.success = true;
      return stats;
    }

    ++stats.data_transmissions;
    std::size_t round_bits = 0;
    for (auto& f : frags) {
      if (f.have) continue;
      BitVec unit = payload_bits.Slice(f.bit_offset, f.bit_len);
      unit.AppendUint(Crc32Bits(payload_bits.Slice(f.bit_offset, f.bit_len)),
                      32);
      round_bits += unit.size();
      const BitVec received = SymbolsToLogicalBits(channel(unit));
      const BitVec frag = received.Slice(0, received.size() - 32);
      const auto crc = static_cast<std::uint32_t>(
          received.ReadUint(received.size() - 32, 32));
      if (Crc32Bits(frag) == crc) f.have = true;
    }
    stats.forward_bits += round_bits;
    if (round > 0) stats.retransmission_bits.push_back(round_bits);
    stats.feedback_bits += num_fragments;  // bitmap
  }
  bool all = true;
  for (const auto& f : frags) all = all && f.have;
  stats.success = all;
  return stats;
}

BodyChannel MakeChipErrorChannel(const phy::ChipCodebook& codebook,
                                 double chip_error_p, Rng& rng) {
  Rng* rng_ptr = &rng;
  const phy::ChipCodebook* cb = &codebook;
  return [cb, chip_error_p, rng_ptr](const BitVec& bits) {
    if (bits.size() % 4 != 0) {
      throw std::invalid_argument("channel: bits not a multiple of 4");
    }
    std::vector<phy::DecodedSymbol> out;
    out.reserve(bits.size() / 4);
    for (std::size_t i = 0; i < bits.size(); i += 4) {
      const auto nibble = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      out.push_back(ChipTransmitNibble(*cb, nibble, chip_error_p, *rng_ptr));
    }
    return out;
  };
}

BodyChannel MakeGilbertElliottChannel(const phy::ChipCodebook& codebook,
                                      const GilbertElliottParams& params,
                                      Rng& rng) {
  // State persists across calls (shared_ptr keeps the lambda copyable).
  auto in_bad = std::make_shared<bool>(false);
  Rng* rng_ptr = &rng;
  const phy::ChipCodebook* cb = &codebook;
  return [cb, params, rng_ptr, in_bad](const BitVec& bits) {
    if (bits.size() % 4 != 0) {
      throw std::invalid_argument("channel: bits not a multiple of 4");
    }
    std::vector<phy::DecodedSymbol> out;
    out.reserve(bits.size() / 4);
    for (std::size_t i = 0; i < bits.size(); i += 4) {
      if (*in_bad) {
        if (rng_ptr->Bernoulli(params.p_bad_to_good)) *in_bad = false;
      } else {
        if (rng_ptr->Bernoulli(params.p_good_to_bad)) *in_bad = true;
      }
      const double p =
          *in_bad ? params.chip_error_bad : params.chip_error_good;
      const auto nibble = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      out.push_back(ChipTransmitNibble(*cb, nibble, p, *rng_ptr));
    }
    return out;
  };
}

}  // namespace ppr::arq
