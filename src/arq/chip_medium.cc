#include "arq/chip_medium.h"

#include <stdexcept>

#include "obs/obs.h"

namespace ppr::arq {
namespace {

// SplitMix64 finalizer: the standard 64-bit avalanche mix, used to
// derive statistically independent seeds from structured inputs.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Domain separator for SeedForCollisionRound. SeedForTransmission
// chains start from Mix64(medium_seed); salting the medium seed first
// puts collision chains in a different orbit of the same mix, so the
// two families cannot alias for any (sender, tx) / (tx_a, tx_b) pair.
constexpr std::uint64_t kCollisionSeedSalt = 0xC011D0D0C011D0D0ULL;

}  // namespace

std::uint64_t SeedForTransmission(std::uint64_t medium_seed,
                                  std::size_t sender,
                                  std::uint64_t tx_index) {
  std::uint64_t s = Mix64(medium_seed);
  s = Mix64(s ^ static_cast<std::uint64_t>(sender));
  return Mix64(s ^ tx_index);
}

std::uint64_t SeedForCollisionRound(std::uint64_t medium_seed,
                                    std::uint64_t tx_a, std::uint64_t tx_b) {
  std::uint64_t s = Mix64(medium_seed ^ kCollisionSeedSalt);
  s = Mix64(s ^ tx_a);
  return Mix64(s ^ tx_b);
}

double OverhearLossGivenDirectLoss(const ListenerLossStats& stats) {
  if (stats.reference_corrupted_frames == 0) return 0.0;
  return static_cast<double>(stats.joint_corrupted_frames) /
         static_cast<double>(stats.reference_corrupted_frames);
}

double OverhearLossGivenDirectLoss(const SharedMediumStats& stats) {
  if (stats.reference_corrupted_frames == 0) return 0.0;
  return static_cast<double>(stats.joint_corrupted_frames) /
         static_cast<double>(stats.reference_corrupted_frames);
}

void AccumulateJointLossStats(const std::vector<ReceptionLossFlags>& receptions,
                              const std::vector<ListenerLossStats*>& listeners,
                              SharedMediumStats& medium) {
  const bool ref_collided = receptions.front().collided;
  const bool ref_corrupted = receptions.front().corrupted;
  ++medium.broadcast_frames;
  if (ref_collided) ++medium.reference_collision_frames;
  if (ref_corrupted) ++medium.reference_corrupted_frames;
  if (ref_collided && !ref_corrupted) {
    ++medium.reference_collided_recovered_frames;
  }
  bool other_collided = false;
  bool other_corrupted = false;
  for (std::size_t i = 0; i < listeners.size(); ++i) {
    auto& s = *listeners[i];
    ++s.broadcast_frames;
    if (receptions[i].collided) ++s.collision_frames;
    if (receptions[i].corrupted) ++s.corrupted_frames;
    if (receptions[i].collided && !receptions[i].corrupted) {
      ++s.collided_recovered_frames;
    }
    if (ref_collided && receptions[i].collided) ++s.joint_collision_frames;
    if (ref_corrupted) {
      ++s.reference_corrupted_frames;
      if (receptions[i].corrupted) ++s.joint_corrupted_frames;
    }
    if (i > 0 && receptions[i].collided) other_collided = true;
    if (i > 0 && receptions[i].corrupted) other_corrupted = true;
  }
  if (ref_collided && other_collided) ++medium.joint_collision_frames;
  if (ref_corrupted && other_corrupted) ++medium.joint_corrupted_frames;
  obs::Count("medium.broadcasts");
  if (ref_collided) obs::Count("medium.ref_collisions");
  if (ref_collided && !ref_corrupted) {
    obs::Count("medium.ref_collisions_recovered");
  }
  if (ref_corrupted) obs::Count("medium.ref_losses");
  if (ref_collided && other_collided) obs::Count("medium.joint_collisions");
  if (ref_corrupted && other_corrupted) {
    obs::Count("medium.joint_losses");
    obs::TraceInstant("medium.joint_loss", "medium", [&] {
      return obs::TraceArgs{
          {"listeners", static_cast<std::int64_t>(listeners.size())}};
    });
  } else if (ref_collided) {
    obs::TraceInstant("medium.collision", "medium", [&] {
      return obs::TraceArgs{
          {"joint", (ref_collided && other_collided) ? 1 : 0},
          {"listeners", static_cast<std::int64_t>(listeners.size())}};
    });
  }
}

ChipMedium::ChipMedium(const phy::ChipCodebook& codebook,
                       CollisionCorrelation correlation,
                       std::uint64_t medium_seed,
                       const GilbertElliottParams& process,
                       std::size_t sender)
    : codebook_(codebook),
      correlation_(correlation),
      medium_seed_(medium_seed),
      process_(process),
      sender_(sender) {}

std::shared_ptr<ChipMedium> ChipMedium::Create(
    const phy::ChipCodebook& codebook, CollisionCorrelation correlation,
    std::uint64_t medium_seed, const GilbertElliottParams& process,
    std::size_t sender) {
  return std::shared_ptr<ChipMedium>(new ChipMedium(
      codebook, correlation, medium_seed, process, sender));
}

std::size_t ChipMedium::AddListener(const GilbertElliottParams& params,
                                    Rng rng) {
  listeners_.push_back(Listener{params, rng, false, {}});
  return listeners_.size() - 1;
}

ChipMedium::Reception ChipMedium::ReceiveAt(
    Listener& listener, const BitVec& bits,
    const std::vector<bool>& shared_states, std::uint64_t tx_seed,
    std::size_t listener_index) {
  if (bits.size() % 4 != 0) {
    throw std::invalid_argument("ChipMedium: bits not a multiple of 4");
  }
  Reception r;
  r.symbols.reserve(bits.size() / 4);
  if (correlation_ == CollisionCorrelation::kIndependent) {
    // The legacy Gilbert-Elliott channel, draw for draw, from this
    // listener's persistent Rng and Markov state.
    for (std::size_t i = 0; i < bits.size(); i += 4) {
      if (listener.in_bad) {
        if (listener.rng.Bernoulli(listener.params.p_bad_to_good)) {
          listener.in_bad = false;
        }
      } else {
        if (listener.rng.Bernoulli(listener.params.p_good_to_bad)) {
          listener.in_bad = true;
        }
      }
      if (listener.in_bad) r.collided = true;
      const double p = listener.in_bad ? listener.params.chip_error_bad
                                       : listener.params.chip_error_good;
      const auto nibble = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
      r.symbols.push_back(
          ChipTransmitNibble(codebook_, nibble, p, listener.rng));
      if (r.symbols.back().symbol != nibble) r.corrupted = true;
    }
    return r;
  }
  // kSharedInterferer: the timeline is the shared draw; only the chip
  // flips are this listener's own, from a per-(transmission, listener)
  // derived stream so no roster or schedule can reorder them.
  Rng flips(SeedForTransmission(tx_seed, listener_index + 1, 0));
  for (std::size_t i = 0; i < bits.size(); i += 4) {
    const bool bad = shared_states[i / 4];
    if (bad) r.collided = true;
    const double p = bad ? listener.params.chip_error_bad
                         : listener.params.chip_error_good;
    const auto nibble = static_cast<std::uint8_t>(bits.ReadUint(i, 4));
    r.symbols.push_back(ChipTransmitNibble(codebook_, nibble, p, flips));
    if (r.symbols.back().symbol != nibble) r.corrupted = true;
  }
  return r;
}

// One interferer timeline per transmission: the burst either overlaps
// this transmission or not, identically for every listener. Each
// transmission starts interference-free.
std::vector<bool> ChipMedium::DrawTimeline(std::size_t codewords,
                                           std::uint64_t tx_seed) const {
  Rng process_rng(tx_seed);
  std::vector<bool> states(codewords);
  bool bad = false;
  for (std::size_t k = 0; k < states.size(); ++k) {
    if (bad) {
      if (process_rng.Bernoulli(process_.p_bad_to_good)) bad = false;
    } else {
      if (process_rng.Bernoulli(process_.p_good_to_bad)) bad = true;
    }
    states[k] = bad;
  }
  return states;
}

std::vector<std::vector<phy::DecodedSymbol>> ChipMedium::Broadcast(
    const BitVec& bits) {
  if (listeners_.empty()) {
    throw std::logic_error("ChipMedium: broadcast with no listeners");
  }
  ++tx_index_;
  obs::Count("medium.chip.transmissions");
  obs::Count("medium.chip.transmitted_bits", bits.size());
  std::vector<bool> shared_states;
  std::uint64_t tx_seed = 0;
  if (correlation_ == CollisionCorrelation::kSharedInterferer) {
    tx_seed = SeedForTransmission(medium_seed_, sender_, tx_index_);
    shared_states = DrawTimeline(bits.size() / 4, tx_seed);
  }

  std::vector<Reception> receptions;
  receptions.reserve(listeners_.size());
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    receptions.push_back(
        ReceiveAt(listeners_[i], bits, shared_states, tx_seed, i));
  }

  std::vector<ReceptionLossFlags> flags;
  std::vector<ListenerLossStats*> stats;
  flags.reserve(receptions.size());
  stats.reserve(listeners_.size());
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    flags.push_back({receptions[i].collided, receptions[i].corrupted});
    stats.push_back(&listeners_[i].stats);
  }
  AccumulateJointLossStats(flags, stats, medium_stats_);

  std::vector<std::vector<phy::DecodedSymbol>> out;
  out.reserve(receptions.size());
  for (auto& r : receptions) out.push_back(std::move(r.symbols));
  return out;
}

BroadcastBodyChannel ChipMedium::MakeBroadcastChannel() {
  auto self = shared_from_this();
  return [self](const BitVec& bits) { return self->Broadcast(bits); };
}

BodyChannel ChipMedium::MakeUnicastChannel(std::size_t listener) {
  if (listener >= listeners_.size()) {
    throw std::invalid_argument("ChipMedium: no such listener");
  }
  auto self = shared_from_this();
  return [self, listener](const BitVec& bits) {
    ++self->tx_index_;
    obs::Count("medium.chip.transmissions");
    obs::Count("medium.chip.transmitted_bits", bits.size());
    std::vector<bool> shared_states;
    std::uint64_t tx_seed = 0;
    if (self->correlation_ == CollisionCorrelation::kSharedInterferer) {
      tx_seed = SeedForTransmission(self->medium_seed_, self->sender_,
                                    self->tx_index_);
      shared_states = self->DrawTimeline(bits.size() / 4, tx_seed);
    }
    return self
        ->ReceiveAt(self->listeners_[listener], bits, shared_states, tx_seed,
                    listener)
        .symbols;
  };
}

const ListenerLossStats& ChipMedium::StatsFor(std::size_t listener) const {
  return listeners_.at(listener).stats;
}

}  // namespace ppr::arq
