#include "arq/recovery_session.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"

namespace ppr::arq {
namespace {

class SenderParticipant : public RecoveryParticipant {
 public:
  explicit SenderParticipant(std::unique_ptr<RecoverySender> sender)
      : sender_(std::move(sender)) {}

  PartyRole role() const override { return PartyRole::kSource; }

  void IngestInitial(const std::vector<phy::DecodedSymbol>&) override {
    // The source owns the original bits; its own transmission carries no
    // information for it.
  }

  std::vector<SessionMessage> HandleMessage(
      const DeliveredMessage& msg) override {
    if (msg.type != SessionMessageType::kFeedback) return {};
    RepairPlan plan = sender_->HandleFeedback(msg.feedback_wire);
    SessionMessage reply;
    reply.type = SessionMessageType::kRepair;
    reply.to = msg.from;
    reply.frames = std::move(plan.frames);
    reply.wire_bits = plan.wire_bits;
    return {std::move(reply)};
  }

 private:
  std::unique_ptr<RecoverySender> sender_;
};

class ReceiverParticipant : public DestinationParticipant {
 public:
  explicit ReceiverParticipant(std::unique_ptr<RecoveryReceiver> receiver)
      : receiver_(std::move(receiver)) {}

  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols) override {
    receiver_->IngestInitial(symbols);
  }

  std::vector<SessionMessage> StartRound() override {
    const auto wire = receiver_->BuildFeedbackWire();
    if (!wire.has_value()) return {};
    SessionMessage fb;
    fb.type = SessionMessageType::kFeedback;
    fb.to = kBroadcastId;
    fb.feedback_wire = *wire;
    fb.wire_bits = wire->size();
    return {std::move(fb)};
  }

  std::vector<SessionMessage> HandleMessage(
      const DeliveredMessage& msg) override {
    if (msg.type == SessionMessageType::kRepair) {
      receiver_->IngestRepair(msg.frames);
    }
    return {};
  }

  bool Complete() const override { return receiver_->Complete(); }
  BitVec AssembledPayload() const override {
    return receiver_->AssembledPayload();
  }
  std::size_t rounds() const override { return receiver_->rounds(); }

 private:
  std::unique_ptr<RecoveryReceiver> receiver_;
};

}  // namespace

std::unique_ptr<RecoveryParticipant> MakeSenderParticipant(
    std::unique_ptr<RecoverySender> sender) {
  return std::make_unique<SenderParticipant>(std::move(sender));
}

std::unique_ptr<DestinationParticipant> MakeReceiverParticipant(
    std::unique_ptr<RecoveryReceiver> receiver) {
  return std::make_unique<ReceiverParticipant>(std::move(receiver));
}

// Default session roles: adapt the duplex pair.
std::unique_ptr<RecoveryParticipant> RecoveryStrategy::MakeSourceParticipant(
    const BitVec& body_bits, std::uint16_t seq) const {
  return MakeSenderParticipant(MakeSender(body_bits, seq));
}

std::unique_ptr<DestinationParticipant>
RecoveryStrategy::MakeDestinationParticipant(
    std::uint16_t seq, std::size_t total_codewords) const {
  return MakeReceiverParticipant(MakeReceiver(seq, total_codewords));
}

std::unique_ptr<RecoveryParticipant> RecoveryStrategy::MakeRelayParticipant(
    std::uint8_t, std::uint16_t, std::size_t) const {
  return nullptr;  // this strategy has no relay role
}

RecoverySession::RecoverySession(SessionConfig config) {
  for (auto& edge : config.edges) {
    if (edge.from == edge.to) {
      throw std::invalid_argument("RecoverySession: bad edge");
    }
    edges_[{edge.from, edge.to}] = std::move(edge.channel);
  }
  if (config.initial_broadcast.has_value()) {
    auto& bcast = *config.initial_broadcast;
    if (!bcast.channel) {
      throw std::invalid_argument("RecoverySession: null broadcast channel");
    }
    for (const PartyId id : bcast.listeners) {
      if (id == bcast.from) {
        throw std::invalid_argument("RecoverySession: bad broadcast listener");
      }
    }
    broadcast_from_ = bcast.from;
    broadcast_listeners_ = std::move(bcast.listeners);
    broadcast_channel_ = std::move(bcast.channel);
  }
  relay_airtime_budget_ = config.relay_airtime_budget_bits == 0
                              ? kNoAirtimeBudget
                              : config.relay_airtime_budget_bits;
}

// Config-time edges name parties that did not exist yet; check them
// against the final roster once, when traffic first moves.
void RecoverySession::ValidateTopology() const {
  for (const auto& [edge, channel] : edges_) {
    if (edge.first >= parties_.size() || edge.second >= parties_.size()) {
      throw std::invalid_argument("RecoverySession: edge names unknown party");
    }
  }
  for (const PartyId id : broadcast_listeners_) {
    if (id >= parties_.size()) {
      throw std::invalid_argument(
          "RecoverySession: broadcast listener unknown");
    }
  }
}

PartyId RecoverySession::AddParty(
    std::unique_ptr<RecoveryParticipant> participant) {
  if (!participant) {
    throw std::invalid_argument("RecoverySession: null participant");
  }
  if (participant->role() == PartyRole::kDestination && Destination()) {
    throw std::invalid_argument("RecoverySession: one destination only");
  }
  parties_.push_back(std::move(participant));
  stats_.parties.emplace_back();
  return parties_.size() - 1;
}

void RecoverySession::SetEdgeChannel(PartyId from, PartyId to,
                                     BodyChannel channel) {
  if (from >= parties_.size() || to >= parties_.size() || from == to) {
    throw std::invalid_argument("RecoverySession: bad edge");
  }
  edges_[{from, to}] = std::move(channel);
}

void RecoverySession::SetInitialBroadcast(PartyId from,
                                          std::vector<PartyId> listeners,
                                          BroadcastBodyChannel channel) {
  if (!channel) {
    throw std::invalid_argument("RecoverySession: null broadcast channel");
  }
  for (const PartyId id : listeners) {
    if (id >= parties_.size() || id == from) {
      throw std::invalid_argument("RecoverySession: bad broadcast listener");
    }
  }
  broadcast_from_ = from;
  broadcast_listeners_ = std::move(listeners);
  broadcast_channel_ = std::move(channel);
}

void RecoverySession::SetRelayAirtimeBudget(std::size_t bits_per_round) {
  relay_airtime_budget_ = bits_per_round == 0 ? kNoAirtimeBudget
                                              : bits_per_round;
}

DestinationParticipant* RecoverySession::Destination() const {
  for (const auto& p : parties_) {
    if (p->role() == PartyRole::kDestination) {
      return static_cast<DestinationParticipant*>(p.get());
    }
  }
  return nullptr;
}

void RecoverySession::TransmitInitial(PartyId source, const BitVec& body) {
  if (!topology_validated_) {
    ValidateTopology();
    topology_validated_ = true;
  }
  stats_.totals.forward_bits += body.size();
  ++stats_.totals.data_transmissions;
  if (broadcast_channel_ && broadcast_from_ == source) {
    const auto receptions = broadcast_channel_(body);
    if (receptions.size() != broadcast_listeners_.size()) {
      throw std::logic_error(
          "RecoverySession: broadcast reception count != listener count");
    }
    for (std::size_t i = 0; i < receptions.size(); ++i) {
      parties_.at(broadcast_listeners_[i])->IngestInitial(receptions[i]);
    }
    return;
  }
  for (PartyId to = 0; to < parties_.size(); ++to) {
    if (to == source) continue;
    const auto edge = edges_.find({source, to});
    if (edge == edges_.end()) continue;
    parties_[to]->IngestInitial(edge->second(body));
  }
}

void RecoverySession::Account(const SessionMessage& msg) {
  PartyTraffic& party = stats_.parties.at(msg.from);
  if (msg.type == SessionMessageType::kFeedback) {
    stats_.totals.feedback_bits += msg.feedback_wire.size();
    party.feedback_bits += msg.feedback_wire.size();
    obs::Count("arq.session.feedback_bits", msg.feedback_wire.size());
    obs::TraceInstant("session.feedback", "arq", [&] {
      return obs::TraceArgs{
          {"bits", static_cast<std::int64_t>(msg.feedback_wire.size())},
          {"from", static_cast<std::int64_t>(msg.from)}};
    });
    return;
  }
  stats_.totals.forward_bits += msg.wire_bits;
  stats_.totals.retransmission_bits.push_back(msg.wire_bits);
  ++stats_.totals.data_transmissions;
  party.repair_bits += msg.wire_bits;
  ++party.repair_messages;
  const bool from_relay = parties_[msg.from]->role() == PartyRole::kRelay;
  if (from_relay) {
    round_relay_bits_ += msg.wire_bits;
  }
  obs::Count("arq.session.repair_messages");
  obs::Count(from_relay ? "arq.session.repair_bits.relay"
                        : "arq.session.repair_bits.source",
             msg.wire_bits);
  obs::TraceInstant("session.repair", "arq", [&] {
    return obs::TraceArgs{
        {"bits", static_cast<std::int64_t>(msg.wire_bits)},
        {"frames", static_cast<std::int64_t>(msg.frames.size())},
        {"from", static_cast<std::int64_t>(msg.from)},
        {"relay", from_relay ? 1 : 0}};
  });
}

// Broadcast delivery order: non-relay parties in id order (the source
// always answers feedback before any relay, as in the pre-scheduling
// engine), then relays ranked ExOR-style — best self-reported quality
// first, ties by id (stable sort over an id-ordered list).
std::vector<PartyId> RecoverySession::RecipientOrder(
    const SessionMessage& msg) {
  std::vector<PartyId> order;
  std::vector<std::pair<double, PartyId>> relays;
  for (PartyId to = 0; to < parties_.size(); ++to) {
    if (to == msg.from) continue;
    if (msg.to != kBroadcastId && msg.to != to) continue;
    if (parties_[to]->role() == PartyRole::kRelay) {
      relays.emplace_back(parties_[to]->RepairQuality(), to);
    } else {
      order.push_back(to);
    }
  }
  std::stable_sort(relays.begin(), relays.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  for (const auto& [quality, id] : relays) order.push_back(id);
  return order;
}

void RecoverySession::Deliver(const SessionMessage& msg) {
  std::deque<SessionMessage> queue;
  queue.push_back(msg);
  // A routing hop can only shrink the message set back toward the
  // destination, but guard against a misbehaving participant pair
  // ping-ponging forever within one round.
  std::size_t hops = 0;
  const std::size_t max_hops = 8 * parties_.size() + 8;
  while (!queue.empty()) {
    if (++hops > max_hops) {
      throw std::logic_error("RecoverySession: round did not drain");
    }
    SessionMessage m = std::move(queue.front());
    queue.pop_front();
    Account(m);
    for (const PartyId to : RecipientOrder(m)) {
      const bool budgeted_relay =
          parties_[to]->role() == PartyRole::kRelay &&
          m.type == SessionMessageType::kFeedback &&
          relay_airtime_budget_ != kNoAirtimeBudget;
      DeliveredMessage delivered;
      delivered.type = m.type;
      delivered.from = m.from;
      delivered.to = m.to;
      if (m.type == SessionMessageType::kFeedback) {
        delivered.feedback_wire = m.feedback_wire;
        if (budgeted_relay) {
          delivered.relay_budget_bits = round_budget_left_;
        }
      } else {
        // Repair bits cross this recipient's edge channel; no channel
        // means the hop is simply out of range.
        const auto edge = edges_.find({m.from, to});
        if (edge == edges_.end()) continue;
        delivered.frames.reserve(m.frames.size());
        for (const auto& frame : m.frames) {
          ReceivedRepairFrame rf;
          rf.range = frame.range;
          rf.aux = frame.aux;
          rf.origin = frame.origin;
          rf.coef_mask = frame.coef_mask;
          rf.suspicion = frame.suspicion;
          rf.symbols = edge->second(frame.bits);
          delivered.frames.push_back(std::move(rf));
        }
      }
      auto replies = parties_[to]->HandleMessage(delivered);
      bool relay_sent_repair = false;
      for (auto& reply : replies) {
        if (budgeted_relay && reply.type == SessionMessageType::kRepair) {
          // A budgeted relay's repair spends the round's remaining
          // airtime; later (worse-ranked) relays see what is left.
          relay_sent_repair = true;
          round_budget_left_ -=
              std::min(round_budget_left_, reply.wire_bits);
        }
        reply.from = to;
        queue.push_back(std::move(reply));
      }
      if (budgeted_relay && !relay_sent_repair) {
        ++stats_.relay_deferrals;
        obs::Count("arq.session.relay_deferrals");
        obs::TraceInstant("session.relay_deferral", "arq", [&] {
          return obs::TraceArgs{
              {"budget_left", static_cast<std::int64_t>(round_budget_left_)},
              {"relay", static_cast<std::int64_t>(to)}};
        });
      }
    }
  }
}

bool RecoverySession::RunRound() {
  DestinationParticipant* destination = Destination();
  if (!destination) {
    throw std::logic_error("RecoverySession: no destination party");
  }
  if (!topology_validated_) {
    ValidateTopology();
    topology_validated_ = true;
  }
  PartyId destination_id = 0;
  for (PartyId id = 0; id < parties_.size(); ++id) {
    if (parties_[id].get() == destination) destination_id = id;
  }
  auto opening = destination->StartRound();
  if (opening.empty()) {
    stats_.totals.success = true;
    obs::Count("arq.session.completed");
    return false;
  }
  ++stats_.rounds;
  round_budget_left_ = relay_airtime_budget_;
  round_relay_bits_ = 0;
  obs::Count("arq.session.rounds");
  const std::uint64_t round_start_ns = obs::NowNs();
  for (auto& msg : opening) {
    msg.from = destination_id;
    Deliver(msg);
  }
  const std::uint64_t round_ns = obs::NowNs() - round_start_ns;
  obs::ObserveDuration("arq.session.round_ns", round_ns);
  obs::Observe("arq.session.round_relay_bits", round_relay_bits_);
  obs::TraceComplete("session.round", "arq", round_start_ns, round_ns, [&] {
    return obs::TraceArgs{
        {"relay_bits", static_cast<std::int64_t>(round_relay_bits_)},
        {"round", static_cast<std::int64_t>(stats_.rounds)}};
  });
  stats_.max_round_relay_bits =
      std::max(stats_.max_round_relay_bits, round_relay_bits_);
  return true;
}

SessionRunStats RecoverySession::Conclude() {
  DestinationParticipant* destination = Destination();
  if (!destination) {
    throw std::logic_error("RecoverySession: no destination party");
  }
  stats_.totals.success = destination->Complete();
  obs::Count(stats_.totals.success ? "arq.session.completed"
                                   : "arq.session.failed");
  return stats_;
}

SessionRunStats RecoverySession::Run(std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (!RunRound()) return stats_;
  }
  return Conclude();
}

SessionRunStats RunRecoveryExchangeSession(const BitVec& payload_bits,
                                           const PpArqConfig& config,
                                           const RecoveryStrategy& strategy,
                                           const BodyChannel& channel,
                                           std::size_t max_rounds) {
  const BitVec body = PpArqSender::MakeBody(payload_bits);
  if (body.size() % config.bits_per_codeword != 0) {
    throw std::invalid_argument(
        "RunRecoveryExchange: body bits must be a whole number of codewords");
  }
  SessionConfig topology;
  topology.edges.push_back(
      {kSessionSourceId, kSessionDestinationId, channel});
  RecoverySession session(std::move(topology));
  const PartyId source =
      session.AddParty(strategy.MakeSourceParticipant(body, /*seq=*/1));
  session.AddParty(strategy.MakeDestinationParticipant(
      /*seq=*/1, body.size() / config.bits_per_codeword));
  session.TransmitInitial(source, body);
  return session.Run(max_rounds);
}

SessionRunStats RunMultiRelayRecoveryExchange(
    const BitVec& payload_bits, const PpArqConfig& config,
    const RecoveryStrategy& strategy,
    const MultiRelayExchangeChannels& channels, std::size_t max_rounds) {
  if (channels.source_to_relay.size() != channels.relay_to_destination.size() &&
      !(channels.initial_broadcast && channels.source_to_relay.empty())) {
    throw std::invalid_argument(
        "RunMultiRelayRecoveryExchange: per-relay channel vectors must "
        "be the same length");
  }
  const std::size_t num_relays = channels.relay_to_destination.size();
  if (num_relays == 0 || config.relay_parties < num_relays) {
    throw std::invalid_argument(
        "RunMultiRelayRecoveryExchange: config.relay_parties must cover "
        "the relay roster");
  }
  const BitVec body = PpArqSender::MakeBody(payload_bits);
  if (body.size() % config.bits_per_codeword != 0) {
    throw std::invalid_argument(
        "RunMultiRelayRecoveryExchange: body bits must be whole codewords");
  }
  const std::size_t total_codewords = body.size() / config.bits_per_codeword;
  static_assert(kSessionSourceId == 0 && kSessionDestinationId == 1 &&
                kSessionRelayId == 2);
  // Party ids follow AddParty call order deterministically, so the
  // whole topology is expressible up front.
  SessionConfig topology;
  topology.edges.push_back({kSessionSourceId, kSessionDestinationId,
                            channels.source_to_destination});
  for (std::size_t i = 0; i < num_relays; ++i) {
    const PartyId relay_party = kSessionRelayId + i;
    if (i < channels.source_to_relay.size() && channels.source_to_relay[i]) {
      topology.edges.push_back(
          {kSessionSourceId, relay_party, channels.source_to_relay[i]});
    }
    topology.edges.push_back({relay_party, kSessionDestinationId,
                              channels.relay_to_destination[i]});
  }
  if (channels.initial_broadcast) {
    SessionBroadcast bcast;
    bcast.from = kSessionSourceId;
    bcast.listeners.push_back(kSessionDestinationId);
    for (std::size_t i = 0; i < num_relays; ++i) {
      bcast.listeners.push_back(kSessionRelayId + i);
    }
    bcast.channel = channels.initial_broadcast;
    topology.initial_broadcast = std::move(bcast);
  }
  topology.relay_airtime_budget_bits = config.relay_airtime_budget_bits;
  RecoverySession session(std::move(topology));
  const PartyId source =
      session.AddParty(strategy.MakeSourceParticipant(body, /*seq=*/1));
  session.AddParty(
      strategy.MakeDestinationParticipant(/*seq=*/1, total_codewords));
  for (std::size_t i = 0; i < num_relays; ++i) {
    auto relay = strategy.MakeRelayParticipant(
        static_cast<std::uint8_t>(i + 1), /*seq=*/1, total_codewords);
    if (!relay) {
      throw std::invalid_argument(
          "RunMultiRelayRecoveryExchange: strategy has no relay role");
    }
    session.AddParty(std::move(relay));
  }
  session.TransmitInitial(source, body);
  return session.Run(max_rounds);
}

SessionRunStats RunRelayRecoveryExchange(const BitVec& payload_bits,
                                         const PpArqConfig& config,
                                         const RecoveryStrategy& strategy,
                                         const RelayExchangeChannels& channels,
                                         std::size_t max_rounds) {
  MultiRelayExchangeChannels multi;
  multi.source_to_destination = channels.source_to_destination;
  multi.source_to_relay = {channels.source_to_relay};
  multi.relay_to_destination = {channels.relay_to_destination};
  return RunMultiRelayRecoveryExchange(payload_bits, config, strategy, multi,
                                       max_rounds);
}

}  // namespace ppr::arq
