#include "arq/pp_arq.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/crc.h"
#include "softphy/runlength.h"

namespace ppr::arq {
namespace {

constexpr double kForcedBadHint = std::numeric_limits<double>::infinity();

}  // namespace

PpArqSender::PpArqSender(BitVec body_bits, std::uint16_t seq,
                         const PpArqConfig& config)
    : body_(std::move(body_bits)), seq_(seq), config_(config) {
  if (body_.size() % config_.bits_per_codeword != 0) {
    throw std::invalid_argument(
        "PpArqSender: body bits must be a whole number of codewords");
  }
}

BitVec PpArqSender::MakeBody(const BitVec& payload_bits) {
  BitVec body = payload_bits;
  body.AppendUint(Crc32Bits(payload_bits), 32);
  return body;
}

RetransmissionPacket PpArqSender::HandleFeedback(
    const DecodedFeedback& feedback) const {
  const std::size_t bpc = config_.bits_per_codeword;
  std::vector<CodewordRange> to_send = feedback.feedback.requests;

  // Verify every gap: a mismatch means the receiver is holding wrong
  // bits it believes are good (a SoftPHY miss); resend that gap too.
  for (const auto& gap : feedback.gaps) {
    const BitVec original =
        body_.Slice(gap.range.offset * bpc, gap.range.length * bpc);
    bool matches = false;
    if (gap.literal) {
      matches = original == gap.literal_bits;
    } else {
      matches = Crc32Bits(original) == gap.crc32;
    }
    if (!matches) to_send.push_back(gap.range);
  }

  std::sort(to_send.begin(), to_send.end(),
            [](const CodewordRange& a, const CodewordRange& b) {
              return a.offset < b.offset;
            });
  // Merge adjacent/overlapping ranges so segments stay disjoint.
  std::vector<CodewordRange> merged;
  for (const auto& r : to_send) {
    if (!merged.empty() &&
        r.offset <= merged.back().offset + merged.back().length) {
      const std::size_t end = std::max(
          merged.back().offset + merged.back().length, r.offset + r.length);
      merged.back().length = end - merged.back().offset;
    } else {
      merged.push_back(r);
    }
  }

  RetransmissionPacket out;
  out.seq = seq_;
  for (const auto& r : merged) {
    RetransmitSegment seg;
    seg.range = r;
    seg.bits = body_.Slice(r.offset * bpc, r.length * bpc);
    out.segments.push_back(std::move(seg));
  }
  return out;
}

PpArqReceiver::PpArqReceiver(std::uint16_t seq, std::size_t total_codewords,
                             const PpArqConfig& config)
    : config_(config),
      seq_(seq),
      bits_(total_codewords * config.bits_per_codeword, false),
      hints_(total_codewords, kForcedBadHint) {
  if (total_codewords * config.bits_per_codeword <= 32) {
    throw std::invalid_argument(
        "PpArqReceiver: body must exceed the 32-bit trailing CRC");
  }
}

void PpArqReceiver::IngestInitial(
    const std::vector<phy::DecodedSymbol>& symbols) {
  if (symbols.size() != hints_.size()) {
    throw std::invalid_argument("IngestInitial: codeword count mismatch");
  }
  const std::size_t bpc = config_.bits_per_codeword;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].hint <= hints_[i]) {
      hints_[i] = symbols[i].hint;
      for (std::size_t b = 0; b < bpc; ++b) {
        bits_.Set(i * bpc + b,
                  (symbols[i].symbol >> (bpc - 1 - b)) & 1u);
      }
    }
  }
  received_anything_ = true;
}

void PpArqReceiver::IngestRetransmission(
    const std::vector<ReceivedSegment>& segments) {
  const std::size_t bpc = config_.bits_per_codeword;
  for (const auto& seg : segments) {
    if (seg.symbols.size() != seg.range.length ||
        seg.range.offset + seg.range.length > hints_.size()) {
      continue;  // malformed segment; ignore, next round re-requests
    }
    const bool solicited = CoveredByRequests(seg.range, last_requests_);
    for (std::size_t k = 0; k < seg.range.length; ++k) {
      const std::size_t cw = seg.range.offset + k;
      const auto& sym = seg.symbols[k];
      bool take = sym.hint <= hints_[cw];
      if (!solicited && !take) {
        // Gap correction: the sender says our stored copy is wrong. If
        // the new copy looks good, take it anyway; otherwise poison the
        // stored hint so the codeword is re-requested next round.
        if (sym.hint <= config_.eta) {
          take = true;
        } else {
          hints_[cw] = kForcedBadHint;
        }
      }
      if (take) {
        hints_[cw] = sym.hint;
        for (std::size_t b = 0; b < bpc; ++b) {
          bits_.Set(cw * bpc + b, (sym.symbol >> (bpc - 1 - b)) & 1u);
        }
      }
    }
  }
}

bool PpArqReceiver::Complete() const {
  if (!received_anything_) return false;
  const std::size_t payload_bits = bits_.size() - 32;
  const BitVec payload = bits_.Slice(0, payload_bits);
  const auto stored_crc =
      static_cast<std::uint32_t>(bits_.ReadUint(payload_bits, 32));
  return Crc32Bits(payload) == stored_crc;
}

std::vector<bool> PpArqReceiver::Labels() const {
  std::vector<bool> labels(hints_.size());
  for (std::size_t i = 0; i < hints_.size(); ++i) {
    labels[i] = hints_[i] <= config_.eta;
  }
  return labels;
}

std::optional<FeedbackPacket> PpArqReceiver::BuildFeedback() {
  if (Complete()) return std::nullopt;
  ++rounds_;

  FeedbackPacket fb;
  fb.seq = seq_;

  if (rounds_ > config_.max_partial_rounds) {
    // Escalate: partial recovery is not converging (e.g. persistent
    // misses below threshold); ask for everything.
    fb.requests = {CodewordRange{0, hints_.size()}};
    last_requests_ = fb.requests;
    return fb;
  }

  const auto runs = softphy::ToRunLengthForm(Labels());
  if (runs.AllGood()) {
    // CRC fails yet everything is labeled good: an undetected miss.
    // Request the full body; the gap-verification path would also catch
    // this, but only after a round trip.
    fb.requests = {CodewordRange{0, hints_.size()}};
    last_requests_ = fb.requests;
    return fb;
  }

  ChunkingConfig chunk_config;
  chunk_config.packet_bits = bits_.size();
  chunk_config.checksum_bits = config_.checksum_bits;
  chunk_config.bits_per_codeword = config_.bits_per_codeword;
  const auto chunking = ComputeOptimalChunks(runs, chunk_config);
  fb.requests.reserve(chunking.chunks.size());
  for (const auto& c : chunking.chunks) {
    fb.requests.push_back(CodewordRange{c.offset_codewords, c.length_codewords});
  }
  last_requests_ = fb.requests;
  return fb;
}

BitVec PpArqReceiver::EncodeFeedbackWire(const FeedbackPacket& feedback) const {
  return EncodeFeedback(feedback, bits_, hints_.size(),
                        config_.bits_per_codeword, config_.checksum_bits);
}

BitVec PpArqReceiver::AssembledPayload() const {
  return bits_.Slice(0, bits_.size() - 32);
}

bool CoveredByRequests(const CodewordRange& range,
                       const std::vector<CodewordRange>& requests) {
  for (const auto& r : requests) {
    if (range.offset >= r.offset &&
        range.offset + range.length <= r.offset + r.length) {
      return true;
    }
  }
  return false;
}

}  // namespace ppr::arq
