// Chip-level twin of the waveform shared medium (ppr/medium.h): one
// transmission, correlated receptions at every registered listener.
//
// The interferer is the Gilbert-Elliott bad state. Under
// CollisionCorrelation::kSharedInterferer the medium draws ONE
// bad-state timeline per transmission — from a seed that is a pure
// function of (medium seed, sender, transmission index), see
// SeedForTransmission — and projects it through every listener: the
// same codeword span is impaired everywhere, at each listener's own
// per-state chip error rate, while the chip flips themselves stay
// private per listener. Under kIndependent every listener reproduces
// MakeGilbertElliottChannel bit-for-bit from its own persistent Rng:
// private collision draws, the pre-medium behavior.
//
// Listener 0 is the reference listener (the destination in the session
// runners); the joint-loss statistics condition on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arq/link_sim.h"
#include "common/rng.h"
#include "phy/chip_sequences.h"

namespace ppr::arq {

// Deterministic per-transmission seed: a pure function of the medium
// seed, the transmitting node, and the transmission's index in that
// sender's stream — NOT of the listener roster size, channel call
// order, or thread schedule. This centralizes the per-hop seed
// derivation that used to be ad hoc per channel (every hop hashing its
// own WaveformChannelParams::seed).
std::uint64_t SeedForTransmission(std::uint64_t medium_seed,
                                  std::size_t sender, std::uint64_t tx_index);

// Deterministic seed for one collision episode between two
// transmissions (src/collide/): a pure function of the medium seed and
// the two colliding transmission identities. Salted so its outputs
// never alias any SeedForTransmission value on the same medium — the
// collision subsystem's draws (interferer packet contents, overlap
// offsets, chip noise) come from a provably disjoint stream, keeping
// collision-off runs bit-identical to today's.
std::uint64_t SeedForCollisionRound(std::uint64_t medium_seed,
                                    std::uint64_t tx_a, std::uint64_t tx_b);

// Per-listener joint-loss accounting over broadcast transmissions.
// "Collision" means the interferer (the bad state / a burst)
// overlapped this listener's copy; "corrupted" means at least one
// codeword decoded wrong.
struct ListenerLossStats {
  std::size_t broadcast_frames = 0;
  std::size_t collision_frames = 0;
  std::size_t corrupted_frames = 0;
  // Collided frames that nonetheless decoded clean (capture effect, or
  // a downstream resolver recovered them). Kept distinct from
  // `corrupted_frames` so strategy comparisons do not fold recovered
  // collisions into losses.
  std::size_t collided_recovered_frames = 0;
  // Correlation against the reference listener (listener 0), counted
  // on the same transmission:
  std::size_t joint_collision_frames = 0;  // collided here AND at ref
  std::size_t joint_corrupted_frames = 0;  // corrupted here AND at ref
  std::size_t reference_corrupted_frames = 0;  // conditional denominator
};

// P(this listener lost the transmission | the reference listener lost
// it) — the overhear-loss-given-direct-loss correlation a shared
// interferer creates. 0 when the reference listener never lost.
double OverhearLossGivenDirectLoss(const ListenerLossStats& stats);

// Transmission-level aggregate across the whole roster, again
// conditioned on the reference listener: "joint" counts transmissions
// where the reference AND at least one other listener were hit.
struct SharedMediumStats {
  std::size_t broadcast_frames = 0;
  std::size_t reference_collision_frames = 0;
  std::size_t reference_corrupted_frames = 0;
  std::size_t reference_collided_recovered_frames = 0;
  std::size_t joint_collision_frames = 0;
  std::size_t joint_corrupted_frames = 0;
};

double OverhearLossGivenDirectLoss(const SharedMediumStats& stats);

// One broadcast's loss outcome at one listener, as both media observe
// it.
struct ReceptionLossFlags {
  bool collided = false;
  bool corrupted = false;
};

// Folds one broadcast's per-listener outcomes into the per-listener
// and medium-level joint-loss stats (entry i and listeners[i] belong
// to listener i; listener 0 is the reference). Shared by ChipMedium
// and ppr::core::WaveformMedium so the joint-stats semantics cannot
// drift apart.
void AccumulateJointLossStats(const std::vector<ReceptionLossFlags>& receptions,
                              const std::vector<ListenerLossStats*>& listeners,
                              SharedMediumStats& medium);

class ChipMedium : public std::enable_shared_from_this<ChipMedium> {
 public:
  // `process` supplies the shared burst timeline's state-transition
  // probabilities (kSharedInterferer only; each listener's per-state
  // chip error rates always come from its own params). `sender` is the
  // transmitting node's identity in SeedForTransmission.
  static std::shared_ptr<ChipMedium> Create(const phy::ChipCodebook& codebook,
                                            CollisionCorrelation correlation,
                                            std::uint64_t medium_seed,
                                            const GilbertElliottParams& process,
                                            std::size_t sender = 0);

  // Registers a listener; ids are assigned in call order. The Rng seeds
  // the listener's private draws (taken by value so the medium owns the
  // stream; kIndependent replays it exactly as the legacy channel
  // would).
  std::size_t AddListener(const GilbertElliottParams& params, Rng rng);

  // One shared-medium transmission: the interferer timeline is drawn
  // once and every listener receives its own projection, in listener
  // order. Counted in the joint-loss stats.
  std::vector<std::vector<phy::DecodedSymbol>> Broadcast(const BitVec& bits);

  // arq adapters. The broadcast channel runs Broadcast(); a unicast
  // channel is a later transmission in the same sender stream heard
  // only by `listener` (repair traffic) — it advances the transmission
  // counter and shares the seed chain but does not enter the
  // joint-loss stats.
  BroadcastBodyChannel MakeBroadcastChannel();
  BodyChannel MakeUnicastChannel(std::size_t listener);

  const ListenerLossStats& StatsFor(std::size_t listener) const;
  const SharedMediumStats& medium_stats() const { return medium_stats_; }
  std::size_t num_listeners() const { return listeners_.size(); }
  std::uint64_t transmissions() const { return tx_index_; }

 private:
  ChipMedium(const phy::ChipCodebook& codebook,
             CollisionCorrelation correlation, std::uint64_t medium_seed,
             const GilbertElliottParams& process, std::size_t sender);

  struct Listener {
    GilbertElliottParams params;
    Rng rng;
    bool in_bad = false;  // kIndependent: persistent Markov state
    ListenerLossStats stats;
  };

  struct Reception {
    std::vector<phy::DecodedSymbol> symbols;
    bool collided = false;
    bool corrupted = false;
  };

  Reception ReceiveAt(Listener& listener, const BitVec& bits,
                      const std::vector<bool>& shared_states,
                      std::uint64_t tx_seed, std::size_t listener_index);
  std::vector<bool> DrawTimeline(std::size_t codewords,
                                 std::uint64_t tx_seed) const;

  phy::ChipCodebook codebook_;
  CollisionCorrelation correlation_;
  std::uint64_t medium_seed_;
  GilbertElliottParams process_;
  std::size_t sender_;
  std::uint64_t tx_index_ = 0;
  std::vector<Listener> listeners_;
  SharedMediumStats medium_stats_;
};

}  // namespace ppr::arq
