#include "arq/chunking.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ppr::arq {
namespace {

double Log2AtLeastOne(double x) { return std::log2(std::max(1.0, x)); }

// Builds the chunk descriptor for bad runs [i, j].
Chunk MakeChunk(const softphy::RunLengthForm& runs, std::size_t i,
                std::size_t j) {
  Chunk c;
  c.first_bad_run = i;
  c.last_bad_run = j;
  c.offset_codewords = runs.BadRunOffset(i);
  const std::size_t end =
      runs.BadRunOffset(j) + runs.bad[j];  // end of last bad run
  c.length_codewords = end - c.offset_codewords;
  return c;
}

}  // namespace

double IntactChunkCost(const softphy::RunLengthForm& runs,
                       const ChunkingConfig& config, std::size_t i,
                       std::size_t j) {
  assert(i <= j && j < runs.NumBadRuns());
  const double log_s = Log2AtLeastOne(static_cast<double>(config.packet_bits));
  const double bpc = static_cast<double>(config.bits_per_codeword);
  if (i == j) {
    // Equation 4: describe one run (log S for the offset, log lambda^b
    // for the length) and cover the following good run with a checksum
    // (or the run itself when shorter than a checksum).
    const double lambda_b = static_cast<double>(runs.bad[i]) * bpc;
    const double lambda_g = static_cast<double>(runs.good_after[i]) * bpc;
    return log_s + Log2AtLeastOne(lambda_b) +
           std::min(lambda_g, static_cast<double>(config.checksum_bits));
  }
  // Equation 5, non-split alternative: one (offset, length) descriptor
  // (2 log S) plus re-sending every good run interior to the chunk.
  double interior_good = 0.0;
  for (std::size_t l = i; l < j; ++l) {
    interior_good += static_cast<double>(runs.good_after[l]) * bpc;
  }
  return 2.0 * log_s + interior_good;
}

ChunkingResult ComputeOptimalChunks(const softphy::RunLengthForm& runs,
                                    const ChunkingConfig& config) {
  ChunkingResult result;
  const std::size_t L = runs.NumBadRuns();
  if (L == 0) return result;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // cost[i][j]: optimal cost of covering bad runs [i, j].
  // split[i][j]: chosen split point k (chunks [i,k] and [k+1,j]), or
  // SIZE_MAX when the chunk is left intact.
  std::vector<std::vector<double>> cost(L, std::vector<double>(L, kInf));
  std::vector<std::vector<std::size_t>> split(
      L, std::vector<std::size_t>(L, std::numeric_limits<std::size_t>::max()));

  for (std::size_t i = 0; i < L; ++i) {
    cost[i][i] = IntactChunkCost(runs, config, i, i);
  }
  for (std::size_t span = 2; span <= L; ++span) {
    for (std::size_t i = 0; i + span <= L; ++i) {
      const std::size_t j = i + span - 1;
      double best = IntactChunkCost(runs, config, i, j);
      std::size_t best_split = std::numeric_limits<std::size_t>::max();
      for (std::size_t k = i; k < j; ++k) {
        const double c = cost[i][k] + cost[k + 1][j];
        if (c < best) {
          best = c;
          best_split = k;
        }
      }
      cost[i][j] = best;
      split[i][j] = best_split;
    }
  }

  // Reconstruct the optimal partition.
  struct Range {
    std::size_t i, j;
  };
  std::vector<Range> stack{{0, L - 1}};
  std::vector<Chunk> chunks;
  while (!stack.empty()) {
    const Range r = stack.back();
    stack.pop_back();
    const std::size_t k = split[r.i][r.j];
    if (k == std::numeric_limits<std::size_t>::max()) {
      chunks.push_back(MakeChunk(runs, r.i, r.j));
    } else {
      // Push right first so chunks come out in packet order.
      stack.push_back(Range{k + 1, r.j});
      stack.push_back(Range{r.i, k});
    }
  }
  // The stack reconstruction emits left ranges last; sort by offset to
  // guarantee packet order regardless of traversal details.
  std::sort(chunks.begin(), chunks.end(),
            [](const Chunk& a, const Chunk& b) {
              return a.offset_codewords < b.offset_codewords;
            });

  result.chunks = std::move(chunks);
  result.cost_bits = cost[0][L - 1];
  return result;
}

ChunkingResult ComputeOptimalChunksBruteForce(
    const softphy::RunLengthForm& runs, const ChunkingConfig& config) {
  ChunkingResult best;
  const std::size_t L = runs.NumBadRuns();
  if (L == 0) return best;
  if (L > 20) {
    throw std::invalid_argument("brute force limited to L <= 20");
  }
  best.cost_bits = std::numeric_limits<double>::infinity();

  // Bit b of `mask` set means "there is a partition boundary after bad
  // run b" (b in [0, L-1)).
  const std::size_t num_masks = std::size_t{1} << (L - 1);
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    double total = 0.0;
    std::vector<Chunk> chunks;
    std::size_t start = 0;
    for (std::size_t b = 0; b < L; ++b) {
      const bool boundary = (b == L - 1) || ((mask >> b) & 1u);
      if (boundary) {
        total += IntactChunkCost(runs, config, start, b);
        chunks.push_back(MakeChunk(runs, start, b));
        start = b + 1;
      }
    }
    if (total < best.cost_bits) {
      best.cost_bits = total;
      best.chunks = std::move(chunks);
    }
  }
  return best;
}

}  // namespace ppr::arq
