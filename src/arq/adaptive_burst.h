// Adaptive repair-burst sizing for the coded recovery strategies.
//
// The old policy padded every burst by a fixed 25% headroom
// (PpArqConfig::repair_overhead). The adaptive policy instead tracks the
// per-party repair-symbol delivery rate observed inside the coded
// session — symbols requested vs. symbols that arrived with a valid
// per-symbol CRC — and sizes the next burst so that the round completes
// (at least `deficit` symbols land) with a configured target
// probability. On a clean channel the estimate converges to 1 and the
// burst to exactly deficit + 0; on a lossy channel the estimate drops
// and bursts grow to keep the per-round completion probability at
// target. `repair_overhead` survives as the prior: before any symbols
// have been requested the delivery rate is assumed to be
// 1 / (1 + repair_overhead), reproducing the old headroom on round one.
#pragma once

#include <cstddef>

namespace ppr::arq {

// Smallest n >= deficit such that P[Binomial(n, delivery_p) >= deficit]
// >= target, capped at `cap`. deficit == 0 returns 0; delivery_p is
// clamped to (0, 1].
std::size_t BurstSizeForTarget(std::size_t deficit, double delivery_p,
                               double target, std::size_t cap);

// Tracks one repair party's delivery rate across rounds.
class RepairDeliveryEstimator {
 public:
  // `prior` is the delivery rate assumed before any evidence.
  explicit RepairDeliveryEstimator(double prior);

  // The receiver asked this party for `n` symbols this round.
  void OnRequested(std::size_t n) { requested_ += n; }

  // `n` symbols from this party arrived with a valid CRC.
  void OnDelivered(std::size_t n) { delivered_ += n; }

  // Current estimate, clamped to [kFloor, 1]; the prior until the first
  // request has been issued. A party that never answers (no relay in
  // range) decays to the floor, steering the burst split back to whoever
  // does answer.
  double DeliveryRate() const;

  std::size_t requested() const { return requested_; }
  std::size_t delivered() const { return delivered_; }

  static constexpr double kFloor = 0.05;

 private:
  double prior_;
  std::size_t requested_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace ppr::arq
