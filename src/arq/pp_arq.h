// PP-ARQ sender and receiver state machines (section 5.2, "the
// streaming ACK PP-ARQ protocol").
//
//   1. The sender transmits the full packet with a checksum appended.
//   2. The receiver decodes (possibly partially), labels codewords with
//      the SoftPHY threshold rule, and computes the optimal feedback
//      chunk set with the dynamic program of section 5.1.
//   3. The receiver sends the compact feedback packet (empty when the
//      packet checksum verifies).
//   4. The sender retransmits exactly the requested runs, plus any gap
//      whose verification data (CRC or literal bits) does not match what
//      it sent — this is how SoftPHY "misses" are caught and repaired.
//
// The protocol data unit covered here is the packet body: payload
// followed by its CRC-32. Transport of feedback/retransmission frames is
// the link layer's job; tests drive these classes with synthetic
// DecodedSymbol streams.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "arq/chunking.h"
#include "arq/feedback.h"
#include "common/bitvec.h"
#include "fec/codec.h"
#include "phy/despreader.h"
#include "softphy/classifier.h"

namespace ppr::arq {

// How the sender answers feedback about a partial packet (see
// arq/recovery_strategy.h for the pluggable interface).
enum class RecoveryMode {
  // Section 5.2: retransmit the SoftPHY-flagged chunks verbatim.
  kChunkRetransmit,
  // Stream systematic RLNC repair symbols (src/fec/) sized by the
  // receiver's erasure estimate instead of literal chunk copies.
  kCodedRepair,
  // Crelay, generalized to N relays: coded repair where overhearing
  // relays with their own (partial) copies of the initial transmission
  // also stream repair equations, each from a relay-id-partitioned
  // seed space; the destination broadcasts per-party burst requests
  // split by observed delivery rate (arq/recovery_session.h runs the
  // multi-party exchange and schedules relay airtime).
  kRelayCodedRepair,
  // Coded repair plus a collision-resolution listener (src/collide/):
  // the receiver additionally accepts GF(256) equations distilled from
  // collided receptions — fully stripped ZigZag symbols as unit
  // equations, unresolved superpositions as two-term cross-cancelled
  // equations — banked under a collision-provenance tag so a poisoned
  // stripping chain is evicted as a group. Requires CodecKind::kRlnc.
  kCollisionResolve,
};

struct PpArqConfig {
  double eta = softphy::kDefaultEta;  // SoftPHY threshold
  std::size_t bits_per_codeword = 4;
  std::size_t checksum_bits = 32;
  // After this many feedback rounds without convergence the receiver
  // requests a full resend; after 2x this many it reports failure.
  std::size_t max_partial_rounds = 8;
  RecoveryMode recovery = RecoveryMode::kChunkRetransmit;
  // Coded-repair knobs: codewords per FEC symbol (symbol bits must be
  // whole octets); the prior fractional loss assumed for repair symbols
  // before any delivery evidence (burst sizing is adaptive, see
  // arq/adaptive_burst.h — this seeds the round-one estimate at
  // 1 / (1 + repair_overhead)); and the per-round completion
  // probability bursts are sized to hit.
  std::size_t codewords_per_fec_symbol = 16;
  double repair_overhead = 0.25;
  double repair_target_completion = 0.9;
  // kCodedRepair decode engine: kRlnc (default; dense equations,
  // Gaussian elimination) or kReedSolomon (indexed parity over
  // GF(2^16), O(k log k) for large blocks; requires even FEC symbol
  // bytes and no relay parties — see fec/codec.h).
  fec::CodecKind fec_codec = fec::CodecKind::kRlnc;
  // kRelayCodedRepair: the relay roster size the session plans for.
  // The destination's feedback wire carries one requested count per
  // repair party (source first, then relay ids 1..relay_parties), and
  // MakeRelayParticipant accepts ids in that range. 1 reproduces the
  // original single-relay Crelay configuration.
  std::size_t relay_parties = 1;
  // Per-round cap on TOTAL relay repair airtime (bits, descriptors
  // included); 0 = unlimited. Enforced by RecoverySession: relays are
  // serviced in ExOR order (best observed overhear quality first) and
  // each truncates or defers once the round's budget is spent.
  std::size_t relay_airtime_budget_bits = 0;
};

// A retransmitted segment as decoded at the receiver: hints accompany
// each codeword so the receiver can decide whether the new copy is more
// trustworthy than what it holds.
struct ReceivedSegment {
  CodewordRange range;
  std::vector<phy::DecodedSymbol> symbols;  // one per codeword in range
};

// Sender side: owns the original packet body bits (payload || CRC-32).
class PpArqSender {
 public:
  PpArqSender(BitVec body_bits, std::uint16_t seq, const PpArqConfig& config);

  const BitVec& body_bits() const { return body_; }
  std::uint16_t seq() const { return seq_; }
  std::size_t total_codewords() const {
    return body_.size() / config_.bits_per_codeword;
  }

  // Builds the retransmission answering `feedback`: all requested
  // ranges, plus any gap whose verification data mismatches the original
  // (a receiver-side miss). Ranges are merged/sorted.
  RetransmissionPacket HandleFeedback(const DecodedFeedback& feedback) const;

  // Convenience: packet body for the initial transmission.
  static BitVec MakeBody(const BitVec& payload_bits);

 private:
  BitVec body_;
  std::uint16_t seq_;
  PpArqConfig config_;
};

// Receiver side: assembles the packet body across rounds.
class PpArqReceiver {
 public:
  PpArqReceiver(std::uint16_t seq, std::size_t total_codewords,
                const PpArqConfig& config);

  // Initial reception of the whole body (one DecodedSymbol per
  // codeword). Also used for full resends.
  void IngestInitial(const std::vector<phy::DecodedSymbol>& symbols);

  // Patches the body with retransmitted segments. Segments the receiver
  // asked for replace stored codewords when the new hint is at least as
  // good; unsolicited segments (gap corrections: the sender detected the
  // stored bits were wrong) replace stored codewords when the new copy
  // looks good, and otherwise force the codeword bad so the next round
  // re-requests it.
  void IngestRetransmission(const std::vector<ReceivedSegment>& segments);

  // True once the assembled payload verifies against the assembled
  // CRC-32 (the last 32 bits of the body).
  bool Complete() const;

  // Feedback for the next round; nullopt when Complete(). After
  // max_partial_rounds the request escalates to the entire body.
  std::optional<FeedbackPacket> BuildFeedback();

  // Wire encoding of the given feedback against the current assembly
  // (exposes the size the receiver actually pays).
  BitVec EncodeFeedbackWire(const FeedbackPacket& feedback) const;

  // Assembled body/payload.
  const BitVec& AssembledBody() const { return bits_; }
  BitVec AssembledPayload() const;

  std::size_t rounds() const { return rounds_; }
  std::size_t total_codewords() const { return hints_.size(); }

 private:
  std::vector<bool> Labels() const;

  PpArqConfig config_;
  std::uint16_t seq_;
  BitVec bits_;                        // current body image
  std::vector<double> hints_;          // per-codeword best hint so far
  std::vector<CodewordRange> last_requests_;
  std::size_t rounds_ = 0;
  bool received_anything_ = false;
};

// True when `range` appears (exactly or as a sub-range) in `requests`.
bool CoveredByRequests(const CodewordRange& range,
                       const std::vector<CodewordRange>& requests);

}  // namespace ppr::arq
