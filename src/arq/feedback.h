// Wire encoding of PP-ARQ control packets (section 5.2).
//
// Feedback (receiver -> sender): the requested chunks as fixed-width
// (offset, length) codeword ranges, followed by verification data for
// every gap (packet region not covered by a request): a CRC-32 of the
// receiver's bits when the gap is long, or the literal bits when the gap
// is shorter than a checksum (the min(lambda^g, lambda_C) rule of
// Equation 4). Gap layout is derived deterministically from the chunk
// list on both sides, so no per-gap framing is needed.
//
// Retransmission (sender -> receiver): the requested segments (offset,
// length, bits), 4-bit aligned so each retransmitted codeword occupies
// whole codewords of the carrier frame and inherits per-codeword hints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "arq/chunking.h"

namespace ppr::arq {

// A codeword range [offset, offset + length).
struct CodewordRange {
  std::size_t offset = 0;
  std::size_t length = 0;

  bool operator==(const CodewordRange&) const = default;
};

struct FeedbackPacket {
  std::uint16_t seq = 0;
  std::vector<CodewordRange> requests;  // in packet order, non-overlapping

  bool operator==(const FeedbackPacket&) const = default;
};

struct RetransmitSegment {
  CodewordRange range;
  BitVec bits;  // range.length * bits_per_codeword bits

  bool operator==(const RetransmitSegment&) const = default;
};

struct RetransmissionPacket {
  std::uint16_t seq = 0;
  std::vector<RetransmitSegment> segments;

  bool operator==(const RetransmissionPacket&) const = default;
};

// Width in bits of one offset/length field for a packet of
// `total_codewords` codewords (the ceil(log2) the cost model denotes
// log S).
unsigned RangeFieldWidth(std::size_t total_codewords);

// The gaps complementary to `requests` within [0, total_codewords).
std::vector<CodewordRange> ComputeGaps(
    const std::vector<CodewordRange>& requests, std::size_t total_codewords);

// Encodes feedback including gap verification data computed over
// `assembled_bits` (the receiver's current packet image,
// total_codewords * bits_per_codeword bits).
BitVec EncodeFeedback(const FeedbackPacket& feedback,
                      const BitVec& assembled_bits,
                      std::size_t total_codewords,
                      std::size_t bits_per_codeword,
                      std::size_t checksum_bits);

// Decoded feedback as seen by the sender: the requests plus, for each
// gap, either the literal receiver bits or their CRC-32.
struct GapCheck {
  CodewordRange range;
  bool literal = false;
  BitVec literal_bits;      // when literal
  std::uint32_t crc32 = 0;  // when !literal
};

struct DecodedFeedback {
  FeedbackPacket feedback;
  std::vector<GapCheck> gaps;
};

std::optional<DecodedFeedback> DecodeFeedback(const BitVec& wire,
                                              std::size_t total_codewords,
                                              std::size_t bits_per_codeword,
                                              std::size_t checksum_bits);

BitVec EncodeRetransmission(const RetransmissionPacket& packet,
                            std::size_t total_codewords,
                            std::size_t bits_per_codeword);

std::optional<RetransmissionPacket> DecodeRetransmission(
    const BitVec& wire, std::size_t total_codewords,
    std::size_t bits_per_codeword);

}  // namespace ppr::arq
